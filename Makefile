# Convenience targets for the WebFINDIT reproduction. Everything is plain
# go tooling; the targets only bundle the invocations CI and EXPERIMENTS.md
# rely on.

GO ?= go

.PHONY: verify race bench test build vet

# verify is the tier-1 gate: build + vet + full test suite.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

# race runs the full suite under the race detector (the multiplexed IIOP
# layer and the parallel coalition fan-out are exercised concurrently).
race:
	$(GO) test -race ./...

# bench regenerates the benchmark series recorded in EXPERIMENTS.md.
bench:
	$(GO) test -bench=. -benchmem .

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...
