# Convenience targets for the WebFINDIT reproduction. Everything is plain
# go tooling; the targets only bundle the invocations CI and EXPERIMENTS.md
# rely on.

GO ?= go

.PHONY: verify race bench test build vet ci fmt-check cover cover-check bench-smoke chaos sim sim-scale fuzz-smoke bench-json bench-json-smoke bench-diff bench-diff-smoke lint

# COVER_FLOOR is the coverage ratchet: verify fails below this total.
# Raise it when coverage grows; never lower it (PR-2 baseline was 74.3%,
# PR-6 measured 78.0%, PR-7 measured 78.2%, PR-9 measured 78.4%, PR-10
# measured 79.1%).
COVER_FLOOR = 79.0

# verify is the tier-1 gate: build + vet + full test suite.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

# ci mirrors .github/workflows/ci.yml: formatting gate, tier-1 verify,
# race detector, chaos suite, simulation suite, coverage ratchet, fuzz
# smoke, and a one-iteration benchmark smoke.
ci: fmt-check verify race chaos sim cover-check fuzz-smoke bench-smoke bench-diff-smoke

# chaos runs the fault-injection suites (injected connect failures, latency,
# drops and resets; retry/breaker behaviour; partial-result degradation)
# under the race detector — both the simnet ports and the socket smokes.
chaos:
	$(GO) test -race -run 'Chaos' ./internal/orb ./internal/query

# sim runs the deterministic simulation suite under the race detector: the
# simnet transport tests and the model-based federation test over its fixed
# seed matrix. Replay one failing seed with:
#   go test ./internal/simtest -run TestModelAgainstOracle -simnet.seed=N
sim:
	$(GO) test -race ./internal/simnet ./internal/simtest

# sim-scale runs the large-topology gossip scenarios on their own, verbosely
# and under the race detector: the 300-node convergence proof (cold start and
# one-mutation dissemination in O(log N) rounds, message count below the flat
# fan-out baseline), the gossip determinism replay, and representative
# re-election. Replay one failing seed with:
#   go test ./internal/simtest -run TestGossipConvergence300 -simnet.seed=N
sim-scale:
	$(GO) test -race -v -run 'TestGossipConvergence300|TestGossipDeterministicReplay|TestGossipRepresentativeReelection|TestDifferentialHierarchy' ./internal/simtest

# fuzz-smoke runs every fuzz target briefly: enough to catch regressions on
# the checked-in corpus plus a short random walk, without a full campaign.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzGIOPRoundTrip -fuzztime=5s ./internal/giop
	$(GO) test -run='^$$' -fuzz=FuzzGIOPRead -fuzztime=5s ./internal/giop
	$(GO) test -run='^$$' -fuzz=FuzzWTLParse -fuzztime=5s ./internal/wtl
	$(GO) test -run='^$$' -fuzz=FuzzSQLParse -fuzztime=5s ./internal/relational
	$(GO) test -run='^$$' -fuzz=FuzzGossipDelta -fuzztime=5s ./internal/gossip

# fmt-check fails if any file needs gofmt (CI's formatting gate).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

# cover writes an aggregate coverage profile (uploaded as a CI artifact);
# the recorded baseline total lives in EXPERIMENTS.md.
cover:
	$(GO) test -coverprofile=coverage.out ./...

# cover-check is the ratchet: fail CI when total coverage drops below
# COVER_FLOOR.
cover-check: cover
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor" >&2; exit 1; }

# bench-smoke runs every benchmark exactly once: cheap insurance that
# benchmark setup code still works, without a full measurement run.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# race runs the full suite under the race detector (the multiplexed IIOP
# layer and the parallel coalition fan-out are exercised concurrently).
race:
	$(GO) test -race ./...

# bench regenerates the benchmark series recorded in EXPERIMENTS.md.
bench:
	$(GO) test -bench=. -benchmem .

# bench-json runs the root benchmark series plus the federated planner,
# streaming and gossip-convergence benchmarks and commits the numbers as a
# machine-readable artifact (BENCH_PR10.json) via cmd/benchjson. Three counts
# per benchmark: the diff gate collapses repeats to the fastest run, which is
# what survives the CPU noise of a shared single-core host.
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem -count=3 . ./internal/query ./internal/simtest | $(GO) run ./cmd/benchjson > BENCH_PR10.json

# bench-json-smoke exercises the same pipeline at one iteration per
# benchmark, discarding the output: cheap insurance that the parser keeps up
# with the bench format.
bench-json-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem . | $(GO) run ./cmd/benchjson > /dev/null

# bench-diff compares the two committed benchmark artifacts and fails on a
# >20% ns/op regression in the named engine and planner benchmarks (the
# wire-path benchmarks swing more than 20% with host noise alone, so they
# are reported by a plain `benchjson diff` but not gated). Benchmarks new
# in the later artifact are skipped by the inner join, so extending the
# -bench list ahead of the artifact is safe.
bench-diff:
	$(GO) run ./cmd/benchjson diff \
		-bench SQLScanFilter,SQLHashJoin,SQLGroupBy,OODBExtentFilter,SQLParse,WTLParse,SQLInsert,SQLPointSelect,FederatedPushdown,FederatedTopK,FederatedSemiJoin,GossipConvergence \
		BENCH_PR9.json BENCH_PR10.json

# bench-diff-smoke exercises the diff gate end to end without a full
# measurement run: convert a one-iteration bench pass to JSON and diff it
# against itself (self-diff is always within threshold), proving the
# convert -> diff pipeline still parses and joins.
bench-diff-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem . | $(GO) run ./cmd/benchjson > .bench-smoke.json
	$(GO) run ./cmd/benchjson diff .bench-smoke.json .bench-smoke.json
	@rm -f .bench-smoke.json

# lint mirrors CI's lint job: vet always, then staticcheck and govulncheck
# pinned by version. Both tools are fetched with `go run`; when the module
# proxy is unreachable (offline/sandboxed runs) they are skipped with a
# notice rather than failing the build, so `make lint` is safe everywhere
# and strict where it matters (CI).
STATICCHECK = honnef.co/go/tools/cmd/staticcheck@2025.1.1
GOVULNCHECK = golang.org/x/vuln/cmd/govulncheck@v1.1.4
lint: vet
	@if $(GO) run $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK) ./... ; \
	else \
		echo "lint: staticcheck unavailable (no module proxy access); skipped" >&2 ; \
	fi
	@if $(GO) run $(GOVULNCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(GOVULNCHECK) ./... ; \
	else \
		echo "lint: govulncheck unavailable (no module proxy access); skipped" >&2 ; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...
