# Convenience targets for the WebFINDIT reproduction. Everything is plain
# go tooling; the targets only bundle the invocations CI and EXPERIMENTS.md
# rely on.

GO ?= go

.PHONY: verify race bench test build vet ci fmt-check cover bench-smoke chaos bench-json bench-json-smoke

# verify is the tier-1 gate: build + vet + full test suite.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

# ci mirrors .github/workflows/ci.yml: formatting gate, tier-1 verify,
# race detector, chaos suite, coverage profile, and a one-iteration
# benchmark smoke.
ci: fmt-check verify race chaos cover bench-smoke

# chaos runs the fault-injection suites (injected connect failures, latency,
# drops and resets; retry/breaker behaviour; partial-result degradation)
# under the race detector.
chaos:
	$(GO) test -race -run 'Chaos' ./internal/orb ./internal/query

# fmt-check fails if any file needs gofmt (CI's formatting gate).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

# cover writes an aggregate coverage profile (uploaded as a CI artifact);
# the recorded baseline total lives in EXPERIMENTS.md.
cover:
	$(GO) test -coverprofile=coverage.out ./...

# bench-smoke runs every benchmark exactly once: cheap insurance that
# benchmark setup code still works, without a full measurement run.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# race runs the full suite under the race detector (the multiplexed IIOP
# layer and the parallel coalition fan-out are exercised concurrently).
race:
	$(GO) test -race ./...

# bench regenerates the benchmark series recorded in EXPERIMENTS.md.
bench:
	$(GO) test -bench=. -benchmem .

# bench-json runs the root benchmark series and commits the numbers as a
# machine-readable artifact (BENCH_PR4.json) via cmd/benchjson.
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem . | $(GO) run ./cmd/benchjson > BENCH_PR4.json

# bench-json-smoke exercises the same pipeline at one iteration per
# benchmark, discarding the output: cheap insurance that the parser keeps up
# with the bench format.
bench-json-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem . | $(GO) run ./cmd/benchjson > /dev/null

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...
