// Benchmarks backing the experiment series of EXPERIMENTS.md (B1-B5). The
// paper reports no quantitative tables, so these benches characterise the
// architecture's claims: the two-level organisation's scalability (B1), the
// colocated-vs-IIOP invocation split (B2), wire costs (B3), data-layer
// engine costs (B4), and metadata-vs-data query costs on the healthcare
// world (B5).
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/codb"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/giop"
	"repro/internal/idl"
	"repro/internal/mdcache"
	"repro/internal/medworld"
	"repro/internal/oodb"
	"repro/internal/orb"
	"repro/internal/query"
	"repro/internal/relational"
	"repro/internal/wtl"
)

// ---- B3: wire costs ----

func benchPayload() idl.Any {
	return idl.Struct(
		idl.F("name", idl.String("Royal Brisbane Hospital")),
		idl.F("beds", idl.Long(850)),
		idl.F("types", idl.Strings([]string{"ResearchProjects", "PatientHistory", "MedicalStudents"})),
	)
}

func BenchmarkCDREncode(b *testing.B) {
	payload := benchPayload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := cdr.NewEncoder(cdr.BigEndian)
		payload.Marshal(e)
	}
}

func BenchmarkCDRDecode(b *testing.B) {
	payload := benchPayload()
	e := cdr.NewEncoder(cdr.BigEndian)
	payload.Marshal(e)
	buf := e.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := idl.UnmarshalAny(cdr.NewDecoder(buf, cdr.BigEndian)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGIOPRoundTrip(b *testing.B) {
	e := giop.NewBodyEncoder(cdr.BigEndian)
	(&giop.RequestHeader{
		RequestID: 1, ResponseExpected: true,
		ObjectKey: []byte("CoDatabase/RBH"), Operation: "find_coalitions",
	}).Marshal(e)
	benchPayload().Marshal(e)
	msg := &giop.Message{Type: giop.MsgRequest, Order: cdr.BigEndian, Body: e.Bytes()}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := giop.Write(&buf, msg); err != nil {
			b.Fatal(err)
		}
		m, err := giop.Read(&buf)
		if err != nil {
			b.Fatal(err)
		}
		m.Release()
	}
}

// ---- B2: colocated vs IIOP invocation ----

func newEchoORB(b *testing.B, disableColocation bool) (*orb.ORB, *orb.ObjectRef) {
	b.Helper()
	o := orb.New(orb.Options{Product: orb.Orbix, DisableColocation: disableColocation})
	if err := o.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(o.Shutdown)
	iface := idl.MustParse("interface Echo { string echo(in string s); };")[0]
	h := orb.NewHandler(iface).On("echo", func(args []idl.Any) (idl.Any, error) {
		return args[0], nil
	})
	ior, err := o.Activate("Echo", h)
	if err != nil {
		b.Fatal(err)
	}
	return o, o.Resolve(ior)
}

func BenchmarkInvokeColocated(b *testing.B) {
	_, ref := newEchoORB(b, false)
	arg := idl.String("ping")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Invoke("echo", arg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInvokeIIOP(b *testing.B) {
	_, ref := newEchoORB(b, true)
	arg := idl.String("ping")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Invoke("echo", arg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvokeIIOPParallel drives the same socket invocation from many
// concurrent callers. The client multiplexes them over one pipelined IIOP
// connection, so throughput should scale well past the serial
// BenchmarkInvokeIIOP number: callers overlap their round-trip latencies
// instead of queueing for a connection.
func BenchmarkInvokeIIOPParallel(b *testing.B) {
	_, ref := newEchoORB(b, true)
	arg := idl.String("ping")
	// Ensure at least 8 concurrent callers even on a single-core runner
	// (RunParallel starts SetParallelism × GOMAXPROCS goroutines).
	if p := runtime.GOMAXPROCS(0); p < 8 {
		b.SetParallelism((8 + p - 1) / p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := ref.Invoke("echo", arg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- B4: data-layer engine costs ----

func benchSQLDB(b *testing.B, rows int) *relational.Database {
	b.Helper()
	db := relational.NewDatabase("bench", relational.DialectOracle)
	if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(32), grp INT)"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE g (grp INT PRIMARY KEY, label VARCHAR(16))"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'row-%d', %d)", i, i, i%10)); err != nil {
			b.Fatal(err)
		}
	}
	for g := 0; g < 10; g++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO g VALUES (%d, 'g%d')", g, g)); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkSQLInsert(b *testing.B) {
	db := relational.NewDatabase("bench", relational.DialectOracle)
	if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(32))"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'row')", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLPointSelect(b *testing.B) {
	db := benchSQLDB(b, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT name FROM t WHERE id = 2500"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLScanFilter(b *testing.B) {
	db := benchSQLDB(b, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT COUNT(*) FROM t WHERE grp = 3"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLHashJoin(b *testing.B) {
	db := benchSQLDB(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT COUNT(*) FROM t JOIN g ON t.grp = g.grp"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLGroupBy(b *testing.B) {
	db := benchSQLDB(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT grp, COUNT(*), AVG(id) FROM t GROUP BY grp"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOODBExtentFilter(b *testing.B) {
	db := oodb.NewDB("bench")
	if _, err := db.DefineClass("C", "", oodb.Attribute{Name: "n", Type: oodb.AttrInt}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if _, err := db.NewObject("C", map[string]any{"n": i}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := oodb.Query(db, "SELECT n FROM C WHERE n >= 4990"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Parsers ----

func BenchmarkSQLParse(b *testing.B) {
	const q = "SELECT a.funding, COUNT(*) FROM research_projects a JOIN x ON a.id = x.id WHERE a.title = 'AIDS and drugs' AND a.funding > 100 GROUP BY a.funding ORDER BY 1 LIMIT 10"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := relational.ParseSQL(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWTLParse(b *testing.B) {
	const q = `Funding(ResearchProjects.Title, (ResearchProjects.Title = "AIDS and drugs")) On Royal Brisbane Hospital;`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wtl.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- B5: metadata vs data queries on the Medical World ----

var (
	benchWorldOnce sync.Once
	benchWorld     *medworld.World
	benchWorldErr  error
)

func getBenchWorld(b *testing.B) *medworld.World {
	b.Helper()
	benchWorldOnce.Do(func() {
		benchWorld, benchWorldErr = medworld.Build()
	})
	if benchWorldErr != nil {
		b.Fatal(benchWorldErr)
	}
	return benchWorld
}

func BenchmarkMetaQuery(b *testing.B) {
	w := getBenchWorld(b)
	qut, _ := w.Node(medworld.QUT)
	s := qut.NewSession()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Execute(context.Background(), "Find Coalitions With Information Medical Research;"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDataQuery(b *testing.B) {
	w := getBenchWorld(b)
	qut, _ := w.Node(medworld.QUT)
	s := qut.NewSession()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Execute(context.Background(), `Query Royal Brisbane Hospital Using Native "select * from medical_students";`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDataQueryIIOP(b *testing.B) {
	w := getBenchWorld(b)
	rbh, _ := w.Node(medworld.RBH)
	client := orb.New(orb.Options{Product: orb.OrbixWeb, DisableColocation: true})
	b.Cleanup(client.Shutdown)
	ref, err := client.ResolveString(rbh.Descriptor.ISIRef)
	if err != nil {
		b.Fatal(err)
	}
	conn := gateway.NewRemoteConn(ref)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Query(context.Background(), "select * from medical_students"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- B2 (continued): coalition query decomposition, serial vs parallel ----

// slowConn is a gateway connection whose queries take a fixed wall-clock
// time, standing in for a remote member database reached over a WAN. It
// makes the fan-out benchmarks latency-bound rather than CPU-bound, which is
// the regime the parallel decomposition targets.
type slowConn struct {
	name  string
	delay time.Duration
}

func (c *slowConn) Query(_ context.Context, q string) (*gateway.Result, error) {
	time.Sleep(c.delay)
	return &gateway.Result{
		Columns: []string{"v"},
		Rows:    [][]idl.Any{{idl.String(c.name)}},
	}, nil
}
func (c *slowConn) QueryCursor(ctx context.Context, q string, _ int) (gateway.RowIter, error) {
	res, err := c.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	return gateway.NewSliceIter(res), nil
}
func (c *slowConn) Exec(ctx context.Context, q string) (*gateway.Result, error) {
	return c.Query(ctx, q)
}
func (c *slowConn) Begin() error    { return nil }
func (c *slowConn) Commit() error   { return nil }
func (c *slowConn) Rollback() error { return nil }
func (c *slowConn) Meta() gateway.SourceMeta {
	return gateway.SourceMeta{Engine: core.EngineMSQL, Database: c.name, Model: "relational"}
}
func (c *slowConn) Tables() []string { return []string{"t"} }
func (c *slowConn) Close() error     { return nil }

// buildSlowFed wires a coalition of n members whose ISIs answer after delay,
// returning a query processor homed on the coalition's co-database.
func buildSlowFed(b *testing.B, n int, delay time.Duration) *query.Processor {
	b.Helper()
	o := orb.New(orb.Options{Product: orb.Orbix})
	if err := o.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(o.Shutdown)
	home := codb.New("slow-home")
	if err := home.DefineCoalition("SlowTopic", "", "synthetic slow members"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("slow-%02d", i)
		ior, err := o.Activate("ISI/"+name, gateway.NewISIServant(&slowConn{name: name, delay: delay}))
		if err != nil {
			b.Fatal(err)
		}
		d := &codb.SourceDescriptor{
			Name:   name,
			Engine: core.EngineMSQL,
			ISIRef: orb.Stringify(ior),
			Interface: []codb.ExportedType{{
				Name: "Records",
				Functions: []codb.ExportedFunction{{
					Name: "Fetch", Returns: "string", Table: "t", ResultColumn: "v",
				}},
			}},
		}
		if err := home.AddMember("SlowTopic", d); err != nil {
			b.Fatal(err)
		}
	}
	codbIOR, err := o.Activate("CoDatabase/slow-home", codb.NewServant(home))
	if err != nil {
		b.Fatal(err)
	}
	p, err := query.New(query.Config{
		ORB:       o,
		Home:      "slow-home",
		Local:     codb.NewClient(o.Resolve(codbIOR)),
		LocalCoDB: home,
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkCoalitionFanOut measures coalition query decomposition with the
// member calls issued serially (FanOut=1, the pre-parallel behaviour) and in
// parallel (FanOut=0, bounded worker pool). The medworld pair runs the real
// healthcare federation in-process; the slowfed pair gives every member a
// fixed 2ms service time, so serial latency grows with the member count
// while parallel latency tracks the slowest member.
func BenchmarkCoalitionFanOut(b *testing.B) {
	const medQ = `Budget(Projects.Title) On Coalition Research;`
	runMed := func(b *testing.B, fanOut int) {
		w := getBenchWorld(b)
		qut, _ := w.Node(medworld.QUT)
		qut.Processor.SetFanOut(fanOut)
		b.Cleanup(func() { qut.Processor.SetFanOut(0) })
		s := qut.NewSession()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Execute(context.Background(), medQ); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("medworld/serial", func(b *testing.B) { runMed(b, 1) })
	b.Run("medworld/parallel", func(b *testing.B) { runMed(b, 0) })

	const members = 8
	const delay = 2 * time.Millisecond
	const slowQ = `Fetch(Records.V) On Coalition SlowTopic;`
	runSlow := func(b *testing.B, fanOut int) {
		p := buildSlowFed(b, members, delay)
		p.SetFanOut(fanOut)
		s := p.NewSession()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := s.Execute(context.Background(), slowQ)
			if err != nil {
				b.Fatal(err)
			}
			if len(resp.Result.Rows) != members {
				b.Fatalf("rows = %d, want %d", len(resp.Result.Rows), members)
			}
		}
	}
	b.Run("slowfed/serial", func(b *testing.B) { runSlow(b, 1) })
	b.Run("slowfed/parallel", func(b *testing.B) { runSlow(b, 0) })
}

// buildFaultFed wires a coalition of n members, each ISI on its own ORB so
// fault rules can target individual member addresses. The returned client
// ORB (home side) has colocation disabled so every member call crosses the
// injectable transport.
func buildFaultFed(b *testing.B, n int, delay time.Duration) (*query.Processor, *orb.ORB, []string) {
	b.Helper()
	client := orb.New(orb.Options{Product: orb.Orbix, DisableColocation: true})
	if err := client.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(client.Shutdown)
	home := codb.New("fault-home")
	if err := home.DefineCoalition("FaultTopic", "", "synthetic faulty members"); err != nil {
		b.Fatal(err)
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		mo := orb.New(orb.Options{Product: orb.Orbix})
		if err := mo.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(mo.Shutdown)
		name := fmt.Sprintf("fault-%02d", i)
		ior, err := mo.Activate("ISI/"+name, gateway.NewISIServant(&slowConn{name: name, delay: delay}))
		if err != nil {
			b.Fatal(err)
		}
		d := &codb.SourceDescriptor{
			Name:   name,
			Engine: core.EngineMSQL,
			ISIRef: orb.Stringify(ior),
			Interface: []codb.ExportedType{{
				Name: "Records",
				Functions: []codb.ExportedFunction{{
					Name: "Fetch", Returns: "string", Table: "t", ResultColumn: "v",
				}},
			}},
		}
		if err := home.AddMember("FaultTopic", d); err != nil {
			b.Fatal(err)
		}
		addrs[i] = mo.Addr()
	}
	codbIOR, err := client.Activate("CoDatabase/fault-home", codb.NewServant(home))
	if err != nil {
		b.Fatal(err)
	}
	p, err := query.New(query.Config{
		ORB:       client,
		Home:      "fault-home",
		Local:     codb.NewClient(client.Resolve(codbIOR)),
		LocalCoDB: home,
	})
	if err != nil {
		b.Fatal(err)
	}
	return p, client, addrs
}

// BenchmarkCoalitionFanOutFaults measures coalition query decomposition
// when some members are unreachable: 8 members with 1ms service time, of
// which 0, 1 or 3 fail at connect. Degradation collects the survivors'
// rows, so throughput should stay close to the healthy case instead of
// collapsing (the dead members fail fast at the injected dial).
func BenchmarkCoalitionFanOutFaults(b *testing.B) {
	const members = 8
	const delay = time.Millisecond
	const q = `Fetch(Records.V) On Coalition FaultTopic;`
	for _, dead := range []int{0, 1, 3} {
		b.Run(fmt.Sprintf("dead=%d", dead), func(b *testing.B) {
			p, client, addrs := buildFaultFed(b, members, delay)
			if dead > 0 {
				rules := make([]orb.FaultRule, dead)
				for i := 0; i < dead; i++ {
					rules[i] = orb.FaultRule{Addr: addrs[i], FailConnect: 1}
				}
				client.SetFaultPlan(&orb.FaultPlan{Rules: rules})
			}
			s := p.NewSession()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := s.Execute(context.Background(), q)
				if err != nil {
					b.Fatal(err)
				}
				if len(resp.Result.Rows) != members-dead {
					b.Fatalf("rows = %d, want %d", len(resp.Result.Rows), members-dead)
				}
			}
		})
	}
}

// ---- B6: discovery with the federation metadata cache ----

// buildDiscoveryFed wires a home co-database whose coalition lists n peer
// members, each peer's co-database served from its own ORB — so stage-3
// discovery probes are genuine IIOP round trips, the traffic the metadata
// cache absorbs.
func buildDiscoveryFed(b *testing.B, n int, cache *mdcache.Cache) *query.Processor {
	b.Helper()
	o := orb.New(orb.Options{Product: orb.Orbix})
	if err := o.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(o.Shutdown)
	home := codb.New("disc-home")
	if err := home.DefineCoalition("DiscTopic", "", "synthetic discovery members"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		po := orb.New(orb.Options{Product: orb.Orbix})
		if err := po.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(po.Shutdown)
		name := fmt.Sprintf("disc-%02d", i)
		peer := codb.New(name)
		if err := peer.DefineCoalition(fmt.Sprintf("Peer-%02d", i), "", "peer records"); err != nil {
			b.Fatal(err)
		}
		ior, err := po.Activate("CoDatabase/"+name, codb.NewServant(peer))
		if err != nil {
			b.Fatal(err)
		}
		d := &codb.SourceDescriptor{
			Name:    name,
			Engine:  core.EngineMSQL,
			CoDBRef: orb.Stringify(ior),
		}
		if err := home.AddMember("DiscTopic", d); err != nil {
			b.Fatal(err)
		}
	}
	codbIOR, err := o.Activate("CoDatabase/disc-home", codb.NewServant(home))
	if err != nil {
		b.Fatal(err)
	}
	p, err := query.New(query.Config{
		ORB:       o,
		Home:      "disc-home",
		Local:     codb.NewClient(o.Resolve(codbIOR)),
		LocalCoDB: home,
		Cache:     cache,
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkDiscoveryCached measures repeat-topic discovery over 8 remote
// coalition peers: uncached (every resolve re-probes every peer over IIOP),
// cached (after one warm-up the resolve is answered from the metadata
// cache), and cached with concurrent sessions (hits plus singleflight
// coalescing under contention).
func BenchmarkDiscoveryCached(b *testing.B) {
	const peers = 8
	const q = "Find Coalitions With Information zebra;"
	run := func(b *testing.B, cache *mdcache.Cache) {
		p := buildDiscoveryFed(b, peers, cache)
		s := p.NewSession()
		// Warm-up resolve: populates the cache (when present) and faults in
		// the peer connections for both variants.
		if _, err := s.Execute(context.Background(), q); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Execute(context.Background(), q); err != nil {
				b.Fatal(err)
			}
			s.Trace() // drain the layer trace, as an interactive caller would
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, nil) })
	b.Run("cached", func(b *testing.B) {
		run(b, mdcache.New(mdcache.Options{TTL: time.Hour}))
	})
	b.Run("cached-parallel", func(b *testing.B) {
		p := buildDiscoveryFed(b, peers, mdcache.New(mdcache.Options{TTL: time.Hour}))
		if _, err := p.NewSession().Execute(context.Background(), q); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			s := p.NewSession()
			for pb.Next() {
				if _, err := s.Execute(context.Background(), q); err != nil {
					b.Fatal(err)
				}
				s.Trace()
			}
		})
	})
}

// ---- B1: resolution latency vs federation size, two-level vs flat ----

func buildScaleFed(b *testing.B, n int, flat bool) (*core.Federation, *core.Node) {
	b.Helper()
	f, err := core.NewFederation()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(f.Shutdown)
	const coalitionSize = 8
	names := make([]string, n)
	products := []orb.Product{orb.Orbix, orb.OrbixWeb, orb.VisiBroker}
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("db-%04d", i)
		if _, err := f.AddNode(products[i%3], core.NodeConfig{
			Name:            names[i],
			Engine:          core.EngineMSQL,
			InformationType: fmt.Sprintf("topic-%d records", i/coalitionSize),
			Schema:          "CREATE TABLE t (a INT);",
		}); err != nil {
			b.Fatal(err)
		}
	}
	if flat {
		if err := f.DefineCoalition("Everything", "", "all records", names...); err != nil {
			b.Fatal(err)
		}
	} else {
		for start := 0; start < n; start += coalitionSize {
			end := start + coalitionSize
			if end > n {
				end = n
			}
			if err := f.DefineCoalition(fmt.Sprintf("Topic-%d", start/coalitionSize), "",
				fmt.Sprintf("topic-%d records", start/coalitionSize), names[start:end]...); err != nil {
				b.Fatal(err)
			}
		}
	}
	home, _ := f.Node(names[0])
	return f, home
}

func benchResolution(b *testing.B, n int, flat bool) {
	_, home := buildScaleFed(b, n, flat)
	s := home.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Execute(context.Background(), "Find Coalitions With Information topic-0 records;"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolutionScaleTwoLevel(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchResolution(b, n, false) })
	}
}

func BenchmarkResolutionScaleFlat(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchResolution(b, n, true) })
	}
}

// BenchmarkWorldBuild measures the cost of assembling the full healthcare
// federation (28 databases, 3 ORBs, all wiring).
func BenchmarkWorldBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := medworld.Build()
		if err != nil {
			b.Fatal(err)
		}
		w.Shutdown()
	}
}
