// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark runs can be committed as machine-readable
// artifacts (BENCH_PR4.json) and diffed across changes.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem . | go run ./cmd/benchjson > BENCH.json
//
// Lines that are not benchmark results (the goos/goarch/pkg preamble, PASS,
// ok) are folded into the environment header when recognised and otherwise
// ignored, so the tool can consume raw `go test` output unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: name, iteration count and the per-op
// measurements go test reported (ns/op always; B/op and allocs/op with
// -benchmem; any other unit is kept under Extra).
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	Package string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	rep := Report{Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one result line of the standard bench format:
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   12 allocs/op
//
// The trailing -8 (GOMAXPROCS suffix) is kept as part of the name. Value and
// unit tokens after the iteration count come in pairs.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
			seen = true
		case "B/op":
			v := val
			r.BytesPerOp = &v
		case "allocs/op":
			v := val
			r.AllocsPerOp = &v
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = val
		}
	}
	return r, seen
}
