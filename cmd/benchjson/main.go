// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark runs can be committed as machine-readable
// artifacts (BENCH_PR4.json, BENCH_PR6.json) and diffed across changes.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem . | go run ./cmd/benchjson > BENCH.json
//	go run ./cmd/benchjson diff [-max-regress 20] [-bench Substr] OLD.json NEW.json
//
// In convert mode, lines that are not benchmark results (the goos/goarch/pkg
// preamble, PASS, ok) are folded into the environment header when recognised
// and otherwise ignored, so the tool can consume raw `go test` output
// unfiltered.
//
// In diff mode, the two reports are joined on benchmark name (the trailing
// -N GOMAXPROCS suffix is ignored, so runs from machines with different core
// counts still match) and a delta table is printed. The exit status is 1 when
// any benchmark present in both reports regressed in ns/op by more than
// -max-regress percent, making the command usable as a CI gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line: name, iteration count and the per-op
// measurements go test reported (ns/op always; B/op and allocs/op with
// -benchmem; any other unit is kept under Extra).
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	Package string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(diffMain(os.Args[2:]))
	}
	convertMain()
}

func convertMain() {
	rep := Report{Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one result line of the standard bench format:
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   12 allocs/op
//
// The trailing -8 (GOMAXPROCS suffix) is kept as part of the name. Value and
// unit tokens after the iteration count come in pairs.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
			seen = true
		case "B/op":
			v := val
			r.BytesPerOp = &v
		case "allocs/op":
			v := val
			r.AllocsPerOp = &v
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = val
		}
	}
	return r, seen
}

// diffMain implements `benchjson diff OLD.json NEW.json`: print per-benchmark
// deltas and return 1 when any shared benchmark regressed in ns/op beyond the
// threshold.
func diffMain(argv []string) int {
	fs := flag.NewFlagSet("benchjson diff", flag.ExitOnError)
	maxRegress := fs.Float64("max-regress", 20,
		"fail when ns/op regresses by more than this percentage")
	benchFilter := fs.String("bench", "",
		"only compare benchmarks whose name contains one of these comma-separated substrings")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: benchjson diff [-max-regress PCT] [-bench SUBSTR] OLD.json NEW.json")
		fs.PrintDefaults()
	}
	fs.Parse(argv)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	oldRep, err := loadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRep, err := loadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}

	oldByName := indexResults(oldRep)
	newByName := indexResults(newRep)
	names := make([]string, 0, len(oldByName))
	for name := range oldByName {
		if _, ok := newByName[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-28s %14s %14s %9s %14s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "allocs/op")
	failed := false
	compared := 0
	var filters []string
	if *benchFilter != "" {
		filters = strings.Split(*benchFilter, ",")
	}
	for _, name := range names {
		if len(filters) > 0 && !matchesAny(name, filters) {
			continue
		}
		o, n := oldByName[name], newByName[name]
		compared++
		pct := 0.0
		if o.NsPerOp > 0 {
			pct = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		mark := ""
		if pct > *maxRegress {
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %+8.1f%% %14s%s\n",
			name, o.NsPerOp, n.NsPerOp, pct, allocsDelta(o, n), mark)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmarks in common between the two reports")
		return 2
	}
	if failed {
		fmt.Fprintf(w, "FAIL: ns/op regression beyond %.0f%% threshold\n", *maxRegress)
		w.Flush()
		return 1
	}
	fmt.Fprintf(w, "ok: %d benchmark(s) within %.0f%% threshold\n", compared, *maxRegress)
	return 0
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// indexResults keys a report's results by benchmark name with the trailing
// -N GOMAXPROCS suffix stripped, so BenchmarkFoo-8 and BenchmarkFoo-16 from
// different machines compare as the same benchmark. Duplicate names
// (`go test -count=N`) collapse to the fastest run: best-of-N is the
// noise-robust statistic for a regression gate on a shared host, where the
// slower samples measure interference, not the code.
func indexResults(rep *Report) map[string]Result {
	out := make(map[string]Result, len(rep.Results))
	for _, r := range rep.Results {
		name := stripProcSuffix(r.Name)
		if prev, ok := out[name]; !ok || r.NsPerOp < prev.NsPerOp {
			out[name] = r
		}
	}
	return out
}

// stripProcSuffix removes a trailing -<digits> from a benchmark name.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

func matchesAny(name string, substrs []string) bool {
	for _, s := range substrs {
		if s != "" && strings.Contains(name, s) {
			return true
		}
	}
	return false
}

func allocsDelta(o, n Result) string {
	if o.AllocsPerOp == nil || n.AllocsPerOp == nil {
		return "-"
	}
	return fmt.Sprintf("%.0f->%.0f", *o.AllocsPerOp, *n.AllocsPerOp)
}
