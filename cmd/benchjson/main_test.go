package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fp(v float64) *float64 { return &v }

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkSQLScanFilter-8   1502    795329 ns/op   147618 B/op   584 allocs/op")
	if !ok {
		t.Fatal("expected parse to succeed")
	}
	if r.Name != "BenchmarkSQLScanFilter-8" || r.Iterations != 1502 || r.NsPerOp != 795329 {
		t.Fatalf("unexpected result %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 147618 || r.AllocsPerOp == nil || *r.AllocsPerOp != 584 {
		t.Fatalf("unexpected memory stats %+v", r)
	}
	if _, ok := parseBenchLine("ok  repro 1.2s"); ok {
		t.Fatal("non-benchmark line should not parse")
	}
}

func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":   "BenchmarkFoo",
		"BenchmarkFoo-16":  "BenchmarkFoo",
		"BenchmarkFoo":     "BenchmarkFoo",
		"BenchmarkFoo-bar": "BenchmarkFoo-bar",
		"BenchmarkFoo-":    "BenchmarkFoo-",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDiffWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	// Same benchmark under different GOMAXPROCS suffixes must still join.
	oldPath := writeReport(t, dir, "old.json", Report{Results: []Result{
		{Name: "BenchmarkA-8", NsPerOp: 1000, AllocsPerOp: fp(50)},
		{Name: "BenchmarkB-8", NsPerOp: 2000},
	}})
	newPath := writeReport(t, dir, "new.json", Report{Results: []Result{
		{Name: "BenchmarkA-16", NsPerOp: 1100, AllocsPerOp: fp(40)},
		{Name: "BenchmarkB-16", NsPerOp: 1500},
	}})
	if code := diffMain([]string{oldPath, newPath}); code != 0 {
		t.Fatalf("diff within threshold: got exit %d, want 0", code)
	}
}

func TestDiffRegressionFails(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", Report{Results: []Result{
		{Name: "BenchmarkA-8", NsPerOp: 1000},
		{Name: "BenchmarkB-8", NsPerOp: 1000},
	}})
	newPath := writeReport(t, dir, "new.json", Report{Results: []Result{
		{Name: "BenchmarkA-8", NsPerOp: 1300}, // +30% > default 20%
		{Name: "BenchmarkB-8", NsPerOp: 900},
	}})
	if code := diffMain([]string{oldPath, newPath}); code != 1 {
		t.Fatalf("regression: got exit %d, want 1", code)
	}
	// A looser threshold accepts the same pair.
	if code := diffMain([]string{"-max-regress", "50", oldPath, newPath}); code != 0 {
		t.Fatalf("loose threshold: got exit %d, want 0", code)
	}
	// Filtering to the non-regressed benchmark passes.
	if code := diffMain([]string{"-bench", "BenchmarkB", oldPath, newPath}); code != 0 {
		t.Fatalf("filtered diff: got exit %d, want 0", code)
	}
	// A comma-separated filter list matches any of its entries.
	if code := diffMain([]string{"-bench", "NoSuch,BenchmarkA", oldPath, newPath}); code != 1 {
		t.Fatalf("comma filter including regressed benchmark: got exit %d, want 1", code)
	}
}

func TestDiffDisjointReports(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", Report{Results: []Result{
		{Name: "BenchmarkA-8", NsPerOp: 1000},
	}})
	newPath := writeReport(t, dir, "new.json", Report{Results: []Result{
		{Name: "BenchmarkZ-8", NsPerOp: 1000},
	}})
	if code := diffMain([]string{oldPath, newPath}); code != 2 {
		t.Fatalf("disjoint reports: got exit %d, want 2", code)
	}
}
