// Command experiments regenerates every figure-level artefact of the paper
// (Figures 1-6, the §2.3 walkthroughs) and measures the shape-level
// performance series recorded in EXPERIMENTS.md (B1-B5). The paper reports
// no quantitative tables, so the B-series are this reproduction's
// characterisation of the architecture's claims: scalable two-level
// organisation, colocated vs socket invocation, wire costs, engine costs,
// and metadata-vs-data query costs.
//
//	experiments             # run everything
//	experiments -exp fig1   # one experiment: fig1..fig6, q1, q2, b1..b5
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cdr"
	"repro/internal/codb"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/idl"
	"repro/internal/medworld"
	"repro/internal/oodb"
	"repro/internal/orb"
	"repro/internal/relational"
)

func main() {
	log.SetFlags(0)
	exp := flag.String("exp", "all", "experiment id: fig1..fig6, q1, q2, b1..b5, all")
	flag.Parse()

	experiments := []struct {
		id  string
		fn  func() error
		hdr string
	}{
		{"fig1", fig1, "FIG1: coalitions and service links in the Medical World (Figure 1)"},
		{"fig2", fig2, "FIG2: implementation map — 3 ORBs, 5 engines, 28 databases, IIOP (Figure 2)"},
		{"fig3", fig3, "FIG3: four-layer query trace (Figure 3)"},
		{"fig4", fig4, "FIG4: Display Documentation of RBH (Figure 4)"},
		{"fig5", fig5, "FIG5: the RBH HTML document (Figure 5)"},
		{"fig6", fig6, "FIG6: select * from medical_students on RBH (Figure 6)"},
		{"q1", q1, "Q1: the full §2.3 walkthrough"},
		{"q2", q2, "Q2: Medical Insurance discovery via coalition peers"},
		{"b1", b1, "B1: resolution latency vs federation size — two-level vs flat"},
		{"b2", b2, "B2: colocated vs socket IIOP invocation latency"},
		{"b3", b3, "B3: CDR / GIOP wire costs"},
		{"b4", b4, "B4: data-layer engine costs per dialect"},
		{"b5", b5, "B5: metadata vs data query cost on the Medical World"},
	}
	ran := false
	for _, e := range experiments {
		if *exp != "all" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		ran = true
		fmt.Printf("\n===== %s =====\n", e.hdr)
		if err := e.fn(); err != nil {
			log.Fatalf("%s: %v", e.id, err)
		}
	}
	if !ran {
		log.Fatalf("unknown experiment %q", *exp)
	}
}

// world caches the medical world across experiments in one run.
var cachedWorld *medworld.World

func getWorld() (*medworld.World, error) {
	if cachedWorld != nil {
		return cachedWorld, nil
	}
	w, err := medworld.Build()
	if err != nil {
		return nil, err
	}
	cachedWorld = w
	return w, nil
}

func fig1() error {
	w, err := getWorld()
	if err != nil {
		return err
	}
	fmt.Printf("databases: %d (want 14)\n", len(w.NodeNames()))
	fmt.Printf("coalitions: %d (want 5)\n", len(w.Coalitions()))
	fmt.Printf("service links: %d (want 9)\n", len(w.Links()))
	for _, c := range w.Coalitions() {
		fmt.Printf("  coalition %-22s %v\n", c, w.Members(c))
	}
	for _, l := range w.Links() {
		fmt.Printf("  link %-28s %s %q -> %s %q\n", l.Name, l.FromKind, l.From, l.ToKind, l.To)
	}
	return nil
}

func fig2() error {
	w, err := getWorld()
	if err != nil {
		return err
	}
	byEngine := map[string][]string{}
	for _, name := range medworld.DatabaseNames() {
		engine, product, _ := medworld.Placement(name)
		byEngine[engine] = append(byEngine[engine], fmt.Sprintf("%s (%s)", name, product))
	}
	engines := make([]string, 0, len(byEngine))
	for e := range byEngine {
		engines = append(engines, e)
	}
	sort.Strings(engines)
	for _, e := range engines {
		fmt.Printf("  %-12s %s\n", e, strings.Join(byEngine[e], ", "))
	}
	// Cross-ORB reachability matrix over pure IIOP.
	client := orb.New(orb.Options{Product: orb.OrbixWeb, DisableColocation: true})
	defer client.Shutdown()
	reachable := 0
	for _, name := range medworld.DatabaseNames() {
		n, _ := w.Node(name)
		ref, err := client.ResolveString(n.Descriptor.ISIRef)
		if err != nil {
			return err
		}
		ok, err := ref.Locate()
		if err != nil {
			return err
		}
		if ok {
			reachable++
		}
	}
	fmt.Printf("ISIs reachable over IIOP from a foreign ORB: %d/14\n", reachable)
	fmt.Printf("databases + co-databases: %d (want 28)\n", 2*len(w.NodeNames()))
	return nil
}

func fig3() error {
	w, err := getWorld()
	if err != nil {
		return err
	}
	qut, _ := w.Node(medworld.QUT)
	s := qut.NewSession()
	if _, err := s.Execute(context.Background(), "Find Coalitions With Information Medical Research;"); err != nil {
		return err
	}
	if _, err := s.Execute(context.Background(), `Funding(ResearchProjects.Title, (ResearchProjects.Title = "AIDS and drugs")) On Royal Brisbane Hospital;`); err != nil {
		return err
	}
	for _, line := range s.Trace() {
		fmt.Println("  " + line.String())
	}
	return nil
}

func fig4() error {
	w, err := getWorld()
	if err != nil {
		return err
	}
	qut, _ := w.Node(medworld.QUT)
	s := qut.NewSession()
	for _, stmt := range []string{
		"Display Instances of Class Research;",
		"Display Document of Instance Royal Brisbane Hospital Of Class Research;",
	} {
		resp, err := s.Execute(context.Background(), stmt)
		if err != nil {
			return err
		}
		fmt.Printf("wtl> %s\n%s\n", stmt, resp.Text)
	}
	return nil
}

func fig5() error {
	w, err := getWorld()
	if err != nil {
		return err
	}
	rbh, _ := w.Node(medworld.RBH)
	d, ok := rbh.CoDB.FindSource(medworld.RBH)
	if !ok {
		return fmt.Errorf("RBH descriptor missing")
	}
	fmt.Println(d.DocumentHTML)
	return nil
}

func fig6() error {
	w, err := getWorld()
	if err != nil {
		return err
	}
	qut, _ := w.Node(medworld.QUT)
	s := qut.NewSession()
	resp, err := s.Execute(context.Background(), `Query Royal Brisbane Hospital Using Native "select * from medical_students";`)
	if err != nil {
		return err
	}
	fmt.Println(resp.Text)
	return nil
}

func q1() error {
	w, err := getWorld()
	if err != nil {
		return err
	}
	qut, _ := w.Node(medworld.QUT)
	s := qut.NewSession()
	for _, stmt := range []string{
		"Find Coalitions With Information Medical Research;",
		"Connect To Coalition Research;",
		"Display SubClasses of Class Research;",
		"Display Instances of Class Research;",
		"Display Document of Instance Royal Brisbane Hospital Of Class Research;",
		"Display Access Information of Instance Royal Brisbane Hospital;",
		`Funding(ResearchProjects.Title, (ResearchProjects.Title = "AIDS and drugs"));`,
	} {
		resp, err := s.Execute(context.Background(), stmt)
		if err != nil {
			return fmt.Errorf("%s: %w", stmt, err)
		}
		fmt.Printf("wtl> %s\n%s\n\n", stmt, resp.Text)
	}
	return nil
}

func q2() error {
	w, err := getWorld()
	if err != nil {
		return err
	}
	qut, _ := w.Node(medworld.QUT)
	s := qut.NewSession()
	for _, stmt := range []string{
		`Find Coalitions With Information "Medical Insurance";`,
		"Connect To Coalition Medical Insurance;",
		"Display Instances of Class Medical Insurance;",
	} {
		resp, err := s.Execute(context.Background(), stmt)
		if err != nil {
			return fmt.Errorf("%s: %w", stmt, err)
		}
		fmt.Printf("wtl> %s\n%s\n\n", stmt, resp.Text)
	}
	return nil
}

// ---- B-series measurements ----

// measure runs fn n times and returns the per-iteration latency.
func measure(n int, fn func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}

// buildScaleFederation creates N minimal databases organised either as
// K-member coalitions (two-level) or one global coalition (flat).
func buildScaleFederation(n, coalitionSize int, flat bool) (*core.Federation, *core.Node, error) {
	f, err := core.NewFederation()
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, n)
	products := []orb.Product{orb.Orbix, orb.OrbixWeb, orb.VisiBroker}
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("db-%04d", i)
		_, err := f.AddNode(products[i%3], core.NodeConfig{
			Name:            names[i],
			Engine:          core.EngineMSQL,
			InformationType: fmt.Sprintf("topic-%d records", i/coalitionSize),
			Schema:          "CREATE TABLE t (a INT);",
		})
		if err != nil {
			f.Shutdown()
			return nil, nil, err
		}
	}
	if flat {
		if err := f.DefineCoalition("Everything", "", "all records", names...); err != nil {
			f.Shutdown()
			return nil, nil, err
		}
	} else {
		for start := 0; start < n; start += coalitionSize {
			end := start + coalitionSize
			if end > n {
				end = n
			}
			cname := fmt.Sprintf("Topic-%d", start/coalitionSize)
			if err := f.DefineCoalition(cname, "",
				fmt.Sprintf("topic-%d records", start/coalitionSize), names[start:end]...); err != nil {
				f.Shutdown()
				return nil, nil, err
			}
		}
	}
	home, _ := f.Node(names[0])
	return f, home, nil
}

func b1() error {
	fmt.Println("resolution latency for `Find Coalitions With Information topic-0 records`")
	fmt.Println("size   two-level(us)  flat(us)   ratio")
	for _, n := range []int{16, 64, 256} {
		var twoLevel, flatDur time.Duration
		for _, flat := range []bool{false, true} {
			f, home, err := buildScaleFederation(n, 8, flat)
			if err != nil {
				return err
			}
			s := home.NewSession()
			d, err := measure(50, func() error {
				_, err := s.Execute(context.Background(), "Find Coalitions With Information topic-0 records;")
				return err
			})
			f.Shutdown()
			if err != nil {
				return err
			}
			if flat {
				flatDur = d
			} else {
				twoLevel = d
			}
		}
		fmt.Printf("%-6d %-14.1f %-10.1f %.2fx\n", n,
			float64(twoLevel.Microseconds()), float64(flatDur.Microseconds()),
			float64(flatDur)/float64(twoLevel))
	}
	return nil
}

func b2() error {
	mk := func(disable bool) (*orb.ORB, *orb.ObjectRef, error) {
		o := orb.New(orb.Options{Product: orb.Orbix, DisableColocation: disable})
		if err := o.Listen("127.0.0.1:0"); err != nil {
			return nil, nil, err
		}
		iface := idl.MustParse("interface Echo { string echo(in string s); };")[0]
		h := orb.NewHandler(iface).On("echo", func(args []idl.Any) (idl.Any, error) {
			return args[0], nil
		})
		ior, err := o.Activate("Echo", h)
		if err != nil {
			o.Shutdown()
			return nil, nil, err
		}
		return o, o.Resolve(ior), nil
	}
	for _, mode := range []struct {
		name    string
		disable bool
		iters   int
	}{{"colocated (in-process bridge)", false, 20000}, {"socket IIOP", true, 5000}} {
		o, ref, err := mk(mode.disable)
		if err != nil {
			return err
		}
		d, err := measure(mode.iters, func() error {
			_, err := ref.Invoke("echo", idl.String("ping"))
			return err
		})
		o.Shutdown()
		if err != nil {
			return err
		}
		fmt.Printf("%-32s %8.2f us/call\n", mode.name, float64(d.Nanoseconds())/1000)
	}
	return nil
}

func b3() error {
	payload := idl.Struct(
		idl.F("name", idl.String("Royal Brisbane Hospital")),
		idl.F("beds", idl.Long(850)),
		idl.F("types", idl.Strings([]string{"ResearchProjects", "PatientHistory", "MedicalStudents"})),
	)
	e := cdr.NewEncoder(cdr.BigEndian)
	payload.Marshal(e)
	size := e.Len()
	encDur, err := measure(200000, func() error {
		enc := cdr.NewEncoder(cdr.BigEndian)
		payload.Marshal(enc)
		return nil
	})
	if err != nil {
		return err
	}
	decDur, err := measure(200000, func() error {
		_, err := idl.UnmarshalAny(cdr.NewDecoder(e.Bytes(), cdr.BigEndian))
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("descriptor payload: %d bytes\n", size)
	fmt.Printf("CDR encode: %.0f ns/op   decode: %.0f ns/op\n",
		float64(encDur.Nanoseconds()), float64(decDur.Nanoseconds()))
	return nil
}

func b4() error {
	fmt.Println("engine       op                 us/op")
	for _, dialect := range []relational.Dialect{relational.DialectOracle, relational.DialectMSQL} {
		db := relational.NewDatabase("bench", dialect)
		if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(32), grp INT)"); err != nil {
			return err
		}
		for i := 0; i < 2000; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'row-%d', %d)", i, i, i%10)); err != nil {
				return err
			}
		}
		ops := []struct {
			name string
			sql  string
		}{
			{"point select (pk)", "SELECT name FROM t WHERE id = 1234"},
			{"scan + filter", "SELECT COUNT(*) FROM t WHERE grp = 3"},
		}
		for _, op := range ops {
			if err := dialect.Check(mustParse(op.sql)); err != nil {
				fmt.Printf("%-12s %-18s (refused: %v)\n", dialect.Name, op.name, err)
				continue
			}
			d, err := measure(2000, func() error {
				_, err := db.Query(op.sql)
				return err
			})
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %-18s %8.1f\n", dialect.Name, op.name, float64(d.Microseconds()))
		}
	}
	// OO extent scan.
	odb := oodb.NewDB("bench")
	if _, err := odb.DefineClass("C", "", oodb.Attribute{Name: "n", Type: oodb.AttrInt}); err != nil {
		return err
	}
	for i := 0; i < 2000; i++ {
		if _, err := odb.NewObject("C", map[string]any{"n": i}); err != nil {
			return err
		}
	}
	d, err := measure(2000, func() error {
		_, _, err := oodb.Query(odb, "SELECT n FROM C WHERE n >= 1990")
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-18s %8.1f\n", "ObjectStore", "extent + filter", float64(d.Microseconds()))
	return nil
}

func b5() error {
	w, err := getWorld()
	if err != nil {
		return err
	}
	qut, _ := w.Node(medworld.QUT)
	rbh, _ := w.Node(medworld.RBH)
	s := qut.NewSession()
	meta, err := measure(500, func() error {
		_, err := s.Execute(context.Background(), "Find Coalitions With Information Medical Research;")
		return err
	})
	if err != nil {
		return err
	}
	full, err := measure(500, func() error {
		_, err := s.Execute(context.Background(), `Query Royal Brisbane Hospital Using Native "select * from medical_students";`)
		return err
	})
	if err != nil {
		return err
	}
	// The bare ISI round trip, colocated vs forced-socket, isolating the
	// IIOP premium the paper's deployment paid for remote sources.
	coloRef, err := rbh.Config.ORB.ResolveString(rbh.Descriptor.ISIRef)
	if err != nil {
		return err
	}
	coloConn := gateway.NewRemoteConn(coloRef)
	colocated, err := measure(2000, func() error {
		_, err := coloConn.Query(context.Background(), "select * from medical_students")
		return err
	})
	if err != nil {
		return err
	}
	client := orb.New(orb.Options{Product: orb.OrbixWeb, DisableColocation: true})
	defer client.Shutdown()
	ref, err := client.ResolveString(rbh.Descriptor.ISIRef)
	if err != nil {
		return err
	}
	conn := gateway.NewRemoteConn(ref)
	remote, err := measure(2000, func() error {
		_, err := conn.Query(context.Background(), "select * from medical_students")
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("metadata query (Find Coalitions, full query layer): %8.1f us\n", float64(meta.Microseconds()))
	fmt.Printf("data query (full query layer incl. lookup):        %8.1f us\n", float64(full.Microseconds()))
	fmt.Printf("bare ISI query, colocated:                          %8.1f us\n", float64(colocated.Microseconds()))
	fmt.Printf("bare ISI query, socket IIOP:                        %8.1f us\n", float64(remote.Microseconds()))
	return nil
}

func mustParse(sql string) relational.Statement {
	stmt, err := relational.ParseSQL(sql)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return stmt
}

var _ = codb.SourceDescriptor{}
