// Command medworld boots the paper's full healthcare testbed (Figures 1-2)
// and serves the WebFINDIT browser UI for one of its nodes over HTTP. It is
// the reproduction's equivalent of the deployed prototype of §4-5.
//
//	medworld -http 127.0.0.1:8080 -node "QUT Research"
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/browser"
	"repro/internal/medworld"
	"repro/internal/orb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("medworld: ")
	httpAddr := flag.String("http", "127.0.0.1:8080", "browser UI address")
	nodeName := flag.String("node", medworld.QUT, "node whose browser to serve")
	flag.Parse()

	world, err := medworld.Build()
	if err != nil {
		log.Fatal(err)
	}
	defer world.Shutdown()

	fmt.Println("Medical World is up:")
	for _, p := range []orb.Product{orb.Orbix, orb.OrbixWeb, orb.VisiBroker} {
		o := world.ORB(p)
		fmt.Printf("  ORB %-10s at %s serving %d object(s)\n", p, o.Addr(), len(o.ActiveKeys()))
	}
	for _, c := range world.Coalitions() {
		fmt.Printf("  coalition %-22s members: %v\n", c, world.Members(c))
	}
	fmt.Printf("  %d service links\n", len(world.Links()))

	node, ok := world.Node(*nodeName)
	if !ok {
		log.Fatalf("no node %q; one of %v", *nodeName, world.NodeNames())
	}
	fmt.Printf("\nBrowser for %q at http://%s/\n", *nodeName, *httpAddr)
	if err := http.ListenAndServe(*httpAddr, browser.NewServer(node).Handler()); err != nil {
		log.Fatal(err)
	}
}
