// Command webfindit-node runs one WebFINDIT participant as a standalone
// process: its database engine, co-database, ISI and co-database servants on
// an IIOP endpoint, an optional HTTP browser UI, and optional registration
// with a naming service — so multiple processes form a real distributed
// federation, as in the paper's deployment.
//
// Usage:
//
//	webfindit-node -config node.json [-serve-naming]
//
// Config file format (JSON):
//
//	{
//	  "name": "Royal Brisbane Hospital",
//	  "engine": "Oracle",                  // Oracle|mSQL|DB2|Sybase|ObjectStore|Ontos
//	  "orb": "VisiBroker",                 // Orbix|OrbixWeb|VisiBroker
//	  "listen": "127.0.0.1:9001",          // IIOP endpoint
//	  "http": "127.0.0.1:8080",            // optional browser UI endpoint
//	  "naming": "127.0.0.1:9000",          // optional naming service to register with
//	  "information_type": "Research and Medical",
//	  "documentation": "http://example.org/rbh",
//	  "schema": "CREATE TABLE t (a INT);", // inline SQL, or:
//	  "schema_file": "schema.sql",
//	  "slow_call_ms": 50,                  // slow-call log threshold (0 = off)
//	  "call_timeout_ms": 2000,             // per-invocation IIOP deadline (0 = none)
//	  "retry_attempts": 3,                 // attempts for idempotent calls (0/1 = no retry)
//	  "breaker_threshold": 5,              // consecutive failures to open an endpoint breaker (0 = off)
//	  "breaker_cooldown_ms": 1000,         // open-state cooldown before the half-open probe
//	  "min_members": 1,                    // coalition-query quorum (0 = 1)
//	  "member_timeout_ms": 500,            // per-member fan-out deadline (0 = none)
//	  "mdcache_ttl_ms": 2000,              // metadata cache positive TTL (0 = default, -1 disables the cache)
//	  "mdcache_neg_ttl_ms": 250,           // metadata cache negative TTL (0 = default)
//	  "mdcache_max_entries": 4096,         // metadata cache LRU bound (0 = default)
//	  "disable_streaming": false,          // member sub-queries materialize instead of paging cursors
//	  "disable_semijoin": false,           // semi-joins filter at the coordinator only (no key pushdown)
//	  "semijoin_key_limit": 64,            // largest key set pushed as IN lists; larger sets go Bloom (0 = default 64)
//	  "semijoin_bloom_bits": 10,           // Bloom prefilter bits per build-side key (0 = default 10)
//	  "cursor_max_open": 32,               // server-side cursor cap per servant (0 = default 32)
//	  "cursor_idle_ms": 120000,            // idle cursor reap TTL (0 = default 2 minutes)
//	  "disable_gossip": false,             // turn off the anti-entropy membership agent
//	  "gossip_interval_ms": 1000,          // gossip round pacing (0 = default 1s)
//	  "gossip_fanout": 3,                  // peers contacted per gossip round (0 = default 3)
//	  "subcoalition_size": 32,             // coalition size before discovery routes via representatives (0 = default 32, -1 = flat only)
//	  "fragment_threshold_bytes": 262144,  // GIOP fragmentation threshold (0 = default 256 KiB, -1 off)
//	  "chaos": { "seed": 1, "rules": [...] }, // optional fault-injection plan
//	  "interface": [ { "name": "T", "functions": [ ... ] } ]
//	}
//
// The -chaos flag loads a fault-injection plan (same JSON shape as the
// "chaos" config field) and applies it to the node's outbound IIOP calls,
// overriding the config field. Breaker states are published at
// /debug/metrics alongside the ORB counters.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/browser"
	"repro/internal/codb"
	"repro/internal/core"
	"repro/internal/naming"
	"repro/internal/orb"
	"repro/internal/relational"
	"repro/internal/trace"
	"repro/internal/wtl"
)

type nodeFile struct {
	Name            string `json:"name"`
	Engine          string `json:"engine"`
	ORB             string `json:"orb"`
	Listen          string `json:"listen"`
	HTTP            string `json:"http"`
	Naming          string `json:"naming"`
	InformationType string `json:"information_type"`
	Documentation   string `json:"documentation"`
	DocumentHTML    string `json:"document_html"`
	Location        string `json:"location"`
	Schema          string `json:"schema"`
	SchemaFile      string `json:"schema_file"`
	// SlowCallMS sets the tracer's slow-call threshold in milliseconds:
	// spans at least this slow are kept in the slow-call ring
	// (/debug/trace/slow) and logged. 0 disables the slow-call log.
	SlowCallMS int `json:"slow_call_ms"`
	// Fault-tolerance policy for outbound IIOP calls and coalition fan-out.
	CallTimeoutMS     int `json:"call_timeout_ms"`
	RetryAttempts     int `json:"retry_attempts"`
	BreakerThreshold  int `json:"breaker_threshold"`
	BreakerCooldownMS int `json:"breaker_cooldown_ms"`
	MinMembers        int `json:"min_members"`
	MemberTimeoutMS   int `json:"member_timeout_ms"`
	// Federation metadata cache knobs. TTL -1 disables the cache entirely;
	// 0 keeps the built-in defaults (2s positive, 250ms negative, 4096
	// entries). Stats are published at /debug/metrics under "mdcache".
	MDCacheTTLMS      int `json:"mdcache_ttl_ms"`
	MDCacheNegTTLMS   int `json:"mdcache_neg_ttl_ms"`
	MDCacheMaxEntries int `json:"mdcache_max_entries"`
	// Federated planner knobs. DisablePushdown runs every coalition member
	// on the bare fragment with full coordinator compensation (the planner's
	// differential-testing mode); MergeBufRows bounds each member's
	// streaming-merge channel (0 = default 64). DisableSemiJoin keeps
	// semi-join key sets at the coordinator (no IN pushdown, no Bloom);
	// SemiJoinKeyLimit is the exact-IN/Bloom crossover (0 = default 64);
	// SemiJoinBloomBits sizes the Bloom prefilter per build-side key
	// (0 = default 10). Planner counters are published at /debug/metrics
	// under "planner".
	DisablePushdown   bool `json:"disable_pushdown"`
	MergeBufRows      int  `json:"merge_buf_rows"`
	DisableSemiJoin   bool `json:"disable_semijoin"`
	SemiJoinKeyLimit  int  `json:"semijoin_key_limit"`
	SemiJoinBloomBits int  `json:"semijoin_bloom_bits"`
	// Streaming-reply knobs. DisableStreaming makes member sub-queries
	// materialize whole results in one round trip instead of paging through
	// server-side cursors; CursorMaxOpen caps cursors held open per servant
	// (0 = default 32); CursorIdleMS is the idle-reap TTL (0 = default 2
	// minutes); FragmentThresholdBytes is the GIOP message size past which
	// replies fragment on the wire (0 = default 256 KiB, -1 disables
	// fragmentation). Cursor counters are published at /debug/metrics under
	// "cursors".
	DisableStreaming bool `json:"disable_streaming"`
	CursorMaxOpen    int  `json:"cursor_max_open"`
	CursorIdleMS     int  `json:"cursor_idle_ms"`
	// Gossip membership and hierarchical-discovery knobs. DisableGossip
	// turns the anti-entropy agent off (the node then answers gossip callers
	// with BAD_OPERATION, like a pre-gossip peer); GossipIntervalMS paces
	// rounds (0 = default 1000); GossipFanout is the peers contacted per
	// round (0 = default 3); SubCoalitionSize is the coalition size above
	// which stage-3 discovery routes through sub-coalition representatives
	// (0 = default 32, -1 keeps flat fan-out for every size). Agent counters
	// — rounds, deltas sent/applied, digest/delta bytes, convergence lag —
	// are published at /debug/metrics under "gossip".
	DisableGossip          bool                `json:"disable_gossip"`
	GossipIntervalMS       int                 `json:"gossip_interval_ms"`
	GossipFanout           int                 `json:"gossip_fanout"`
	SubCoalitionSize       int                 `json:"subcoalition_size"`
	FragmentThresholdBytes int                 `json:"fragment_threshold_bytes"`
	Chaos                  *orb.FaultPlan      `json:"chaos"`
	Interface              []codb.ExportedType `json:"interface"`
	// InterfaceWTL declares the exported interface in the paper's WebTassili
	// syntax (Type X { attribute ...; function ...; }) instead of JSON.
	InterfaceWTL string `json:"interface_wtl"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("webfindit-node: ")
	configPath := flag.String("config", "", "path to the node's JSON config")
	serveNaming := flag.Bool("serve-naming", false, "also host a naming service on this node's ORB")
	chaosPath := flag.String("chaos", "", "path to a JSON fault-injection plan applied to outbound IIOP calls")
	flag.Parse()
	if *configPath == "" {
		log.Fatal("the -config flag is required")
	}
	data, err := os.ReadFile(*configPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg nodeFile
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parse %s: %v", *configPath, err)
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.ORB == "" {
		cfg.ORB = string(orb.Orbix)
	}

	tracer := trace.New(trace.Options{
		SlowThreshold: time.Duration(cfg.SlowCallMS) * time.Millisecond,
		SlowLog:       log.Printf,
	})
	tracer.Publish("node", func() any { return cfg.Name })

	faults := cfg.Chaos
	if *chaosPath != "" {
		body, err := os.ReadFile(*chaosPath)
		if err != nil {
			log.Fatal(err)
		}
		var plan orb.FaultPlan
		if err := json.Unmarshal(body, &plan); err != nil {
			log.Fatalf("parse %s: %v", *chaosPath, err)
		}
		faults = &plan
	}
	o := orb.New(orb.Options{
		Product:     orb.Product(cfg.ORB),
		CallTimeout: time.Duration(cfg.CallTimeoutMS) * time.Millisecond,
		Retry:       orb.RetryPolicy{MaxAttempts: cfg.RetryAttempts},
		Breaker: orb.BreakerPolicy{
			Threshold: cfg.BreakerThreshold,
			Cooldown:  time.Duration(cfg.BreakerCooldownMS) * time.Millisecond,
		},
		FragmentThreshold: cfg.FragmentThresholdBytes,
		Faults:            faults,
	})
	o.EnableTracing(tracer)
	tracer.Publish("orb", func() any { return o.Stats.Snapshot() })
	tracer.Publish("breakers", func() any { return o.BreakerSnapshot() })
	if faults != nil {
		log.Printf("chaos: fault-injection plan active (%d rule(s))", len(faults.Rules))
	}
	if err := o.Listen(cfg.Listen); err != nil {
		log.Fatal(err)
	}
	defer o.Shutdown()
	log.Printf("ORB %s listening on %s", cfg.ORB, o.Addr())

	if *serveNaming {
		if _, _, err := naming.Serve(o); err != nil {
			log.Fatal(err)
		}
		log.Printf("naming service active at %s", o.Addr())
	}

	iface := cfg.Interface
	if cfg.InterfaceWTL != "" {
		parsed, err := codb.ParseInterface(cfg.InterfaceWTL)
		if err != nil {
			log.Fatalf("interface_wtl: %v", err)
		}
		iface = append(iface, parsed...)
	}
	schema := cfg.Schema
	if cfg.SchemaFile != "" {
		body, err := os.ReadFile(cfg.SchemaFile)
		if err != nil {
			log.Fatal(err)
		}
		schema = string(body)
	}
	node, err := core.NewNode(core.NodeConfig{
		Name:            cfg.Name,
		Engine:          cfg.Engine,
		ORB:             o,
		InformationType: cfg.InformationType,
		Documentation:   cfg.Documentation,
		DocumentHTML:    cfg.DocumentHTML,
		Location:        cfg.Location,
		Interface:       iface,
		Schema:          schema,

		DisableMDCache:    cfg.MDCacheTTLMS < 0,
		MDCacheTTL:        time.Duration(max(cfg.MDCacheTTLMS, 0)) * time.Millisecond,
		MDCacheNegTTL:     time.Duration(cfg.MDCacheNegTTLMS) * time.Millisecond,
		MDCacheMaxEntries: cfg.MDCacheMaxEntries,
		DisablePushdown:   cfg.DisablePushdown,
		MergeBufRows:      cfg.MergeBufRows,
		DisableStreaming:  cfg.DisableStreaming,
		DisableSemiJoin:   cfg.DisableSemiJoin,
		SemiJoinKeyLimit:  cfg.SemiJoinKeyLimit,
		SemiJoinBloomBits: cfg.SemiJoinBloomBits,
		CursorMaxOpen:     cfg.CursorMaxOpen,
		CursorIdleTTL:     time.Duration(cfg.CursorIdleMS) * time.Millisecond,
		DisableGossip:     cfg.DisableGossip,
		GossipInterval:    time.Duration(cfg.GossipIntervalMS) * time.Millisecond,
		GossipFanout:      cfg.GossipFanout,
		SubCoalitionSize:  cfg.SubCoalitionSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	if node.Gossip != nil {
		tracer.Publish("gossip", func() any { return node.Gossip.Stats() })
		ctx, stopGossip := context.WithCancel(context.Background())
		defer stopGossip()
		go node.StartGossip(ctx)
		log.Print("gossip agent active")
	}
	if node.MDCache != nil {
		tracer.Publish("mdcache", func() any { return node.MDCache.Snapshot() })
	}
	if node.RelDB != nil {
		tracer.Publish("plancache", func() any { return node.RelDB.PlanCacheStats() })
	}
	tracer.Publish("planner", func() any { return node.Processor.PlannerStats() })
	tracer.Publish("cursors", func() any { return node.CursorStats() })
	tracer.Publish("parserpool", func() any {
		return map[string]any{
			"sql": relational.SQLParserPoolStats(),
			"wtl": wtl.PoolStats(),
		}
	})
	if cfg.MinMembers > 0 || cfg.MemberTimeoutMS > 0 {
		node.Processor.SetMemberPolicy(cfg.MinMembers,
			time.Duration(cfg.MemberTimeoutMS)*time.Millisecond)
	}
	log.Printf("node %q up: engine=%s wrapper=%s", cfg.Name, cfg.Engine, node.Descriptor.Wrapper)
	fmt.Printf("ISI IOR:        %s\n", node.Descriptor.ISIRef)
	fmt.Printf("CoDatabase IOR: %s\n", node.Descriptor.CoDBRef)

	if cfg.Naming != "" {
		// The naming host may still be coming up when a federation is launched
		// as a batch of processes, so registration retries briefly instead of
		// failing on the first refused dial.
		deadline := time.Now().Add(10 * time.Second)
		for {
			err := func() error {
				nc, err := naming.ClientFor(o, cfg.Naming)
				if err != nil {
					return err
				}
				if err := nc.Rebind("WebFINDIT/CoDatabases/"+cfg.Name, node.Descriptor.CoDBRef); err != nil {
					return fmt.Errorf("register co-database: %w", err)
				}
				if err := nc.Rebind("WebFINDIT/ISIs/"+cfg.Name, node.Descriptor.ISIRef); err != nil {
					return fmt.Errorf("register ISI: %w", err)
				}
				return nil
			}()
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				log.Fatalf("register with naming service: %v", err)
			}
			log.Printf("register with naming service: %v (retrying)", err)
			time.Sleep(200 * time.Millisecond)
		}
		log.Printf("registered with naming service at %s", cfg.Naming)
	}

	if cfg.HTTP != "" {
		mux := http.NewServeMux()
		mux.Handle("/", browser.NewServer(node).Handler())
		// Observability endpoints: per-operation latency histograms and
		// counters, recent/slow spans, published vars (ORB stats included).
		mux.Handle("/debug/", tracer.Handler())
		srv := &http.Server{Addr: cfg.HTTP, Handler: mux}
		go func() {
			log.Printf("browser UI at http://%s/ (metrics at /debug/metrics, traces at /debug/trace)", cfg.HTTP)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
		}()
		defer srv.Close()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
}
