package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/codb"
	"repro/internal/gateway"
	"repro/internal/naming"
	"repro/internal/orb"
)

// TestNodeProcessEndToEnd builds the webfindit-node binary and runs it as a
// real OS process: IIOP endpoint, naming service, HTTP browser UI, and a
// WebTassili data query through the whole stack.
func TestNodeProcessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "webfindit-node")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	iiopPort := freePort(t)
	httpPort := freePort(t)
	cfg := map[string]any{
		"name":             "Royal Brisbane Hospital",
		"engine":           "Oracle",
		"orb":              "VisiBroker",
		"listen":           fmt.Sprintf("127.0.0.1:%d", iiopPort),
		"http":             fmt.Sprintf("127.0.0.1:%d", httpPort),
		"information_type": "Research and Medical",
		"schema": "CREATE TABLE research_projects (title VARCHAR(128), funding FLOAT);" +
			" INSERT INTO research_projects VALUES ('AIDS and drugs', 1250000);",
		"interface_wtl": "Type ResearchProjects { attribute string ResearchProjects.Title;" +
			" function real Funding(string ResearchProjects.Title x, Predicate(x)); }",
	}
	cfgData, _ := json.Marshal(cfg)
	cfgPath := filepath.Join(dir, "node.json")
	if err := os.WriteFile(cfgPath, cfgData, 0o644); err != nil {
		t.Fatal(err)
	}

	logPath := filepath.Join(dir, "node.log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer logFile.Close()
	cmd := exec.Command(bin, "-config", cfgPath, "-serve-naming")
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	readLog := func() string {
		data, _ := os.ReadFile(logPath)
		return string(data)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	// Wait for the HTTP UI to come up.
	base := fmt.Sprintf("http://127.0.0.1:%d", httpPort)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/api/coalitions")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node did not come up:\n%s", readLog())
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The paper's Funding query through the process boundary.
	body, _ := json.Marshal(map[string]string{
		"statement": `Funding(ResearchProjects.Title, (ResearchProjects.Title = "AIDS and drugs")) On Royal Brisbane Hospital;`,
	})
	resp, err := http.Post(base+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %v\nlog:\n%s", resp.StatusCode, out, readLog())
	}
	translated, _ := out["translated"].(string)
	if !strings.Contains(translated, "SELECT a.Funding FROM research_projects a WHERE a.Title = 'AIDS and drugs'") {
		t.Errorf("translated = %q", translated)
	}
	result, _ := out["result"].(map[string]any)
	rows, _ := result["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}

	// The process printed its IORs on stdout.
	if !strings.Contains(readLog(), "ISI IOR:        IOR:") {
		t.Errorf("missing IOR banner:\n%s", readLog())
	}
}

func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

// TestTwoProcessFederation runs two node processes: the first hosts the
// naming service, the second registers with it. A third-party client ORB
// (this test) resolves both through naming and queries their co-databases
// and data over IIOP — a real multi-process WebFINDIT deployment.
func TestTwoProcessFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "webfindit-node")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	start := func(name string, cfg map[string]any, extra ...string) (*exec.Cmd, func() string) {
		t.Helper()
		data, _ := json.Marshal(cfg)
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		logPath := filepath.Join(dir, name+".log")
		logFile, err := os.Create(logPath)
		if err != nil {
			t.Fatal(err)
		}
		args := append([]string{"-config", path}, extra...)
		cmd := exec.Command(bin, args...)
		cmd.Stdout = logFile
		cmd.Stderr = logFile
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
			logFile.Close()
		})
		return cmd, func() string {
			data, _ := os.ReadFile(logPath)
			return string(data)
		}
	}

	aPort := freePort(t)
	aAddr := fmt.Sprintf("127.0.0.1:%d", aPort)
	_, aLog := start("rbh", map[string]any{
		"name": "Royal Brisbane Hospital", "engine": "Oracle", "orb": "VisiBroker",
		"listen":           aAddr,
		"naming":           aAddr, // registers with its own naming service
		"information_type": "Research and Medical",
		"schema":           "CREATE TABLE t (a INT); INSERT INTO t VALUES (7);",
	}, "-serve-naming")

	bPort := freePort(t)
	_, bLog := start("qut", map[string]any{
		"name": "QUT Research", "engine": "mSQL", "orb": "OrbixWeb",
		"listen":           fmt.Sprintf("127.0.0.1:%d", bPort),
		"naming":           aAddr,
		"information_type": "university medical research",
		"schema":           "CREATE TABLE p (x INT);",
	})

	// A third-party client ORB in this test process.
	client := orb.New(orb.Options{Product: orb.Orbix})
	if err := client.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer client.Shutdown()
	nc, err := naming.ClientFor(client, aAddr)
	if err != nil {
		t.Fatal(err)
	}

	// Both processes register within a few seconds.
	deadline := time.Now().Add(10 * time.Second)
	var names []string
	for {
		names, err = nc.List("WebFINDIT/CoDatabases/")
		if err == nil && len(names) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registrations = %v, %v\nA:\n%s\nB:\n%s", names, err, aLog(), bLog())
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Query each process's co-database over IIOP.
	for _, name := range []string{"Royal Brisbane Hospital", "QUT Research"} {
		ref, err := nc.ResolveRef(client, "WebFINDIT/CoDatabases/"+name)
		if err != nil {
			t.Fatal(err)
		}
		owner, err := codb.NewClient(ref).Owner(context.Background())
		if err != nil || owner != name {
			t.Errorf("owner of %s = %q, %v", name, owner, err)
		}
	}

	// And data through RBH's ISI, in another process, on another ORB.
	isiIOR, err := nc.Resolve("WebFINDIT/ISIs/Royal Brisbane Hospital")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := client.ResolveString(isiIOR)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gateway.NewRemoteConn(ref).Query(context.Background(), "SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 7 {
		t.Errorf("cross-process rows = %+v", res.Rows)
	}
	// mSQL's dialect surfaces across the process boundary too.
	isiB, err := nc.Resolve("WebFINDIT/ISIs/QUT Research")
	if err != nil {
		t.Fatal(err)
	}
	refB, _ := client.ResolveString(isiB)
	_, err = gateway.NewRemoteConn(refB).Query(context.Background(), "SELECT COUNT(*) FROM p")
	if err == nil || !strings.Contains(err.Error(), "mSQL") {
		t.Errorf("cross-process dialect error = %v", err)
	}
}
