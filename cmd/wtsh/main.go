// Command wtsh is an interactive WebTassili shell. By default it boots the
// paper's Medical World testbed in-process and opens a session on a chosen
// node; with -codb it instead connects to a remote node's co-database IOR
// (metadata-only access across processes).
//
//	wtsh                          # session on QUT Research in the medical world
//	wtsh -node "Royal Brisbane Hospital"
//	wtsh -codb IOR:... -home You  # remote metadata session
//
// Shell commands:
//
//	\nodes     list the databases in the world
//	\trace     print and clear the layer trace of the last statements
//	\help      show the WebTassili statement forms
//	\quit      exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/codb"
	"repro/internal/medworld"
	"repro/internal/orb"
	"repro/internal/query"
)

const help = `WebTassili statements:
  Find Coalitions With Information <topic>;
  Connect To Coalition <name>;
  Display SubClasses Of Class <name>;
  Display Instances Of Class <name>;
  Display Document Of Instance <name> [Of Class <name>];
  Display Access Information Of Instance <name>;
  Display Interface Of Instance <name>;
  Search Type <name>;
  <Function>(<Type.Column>, (<Type.Column> = "literal" [AND ...])) [On <source>];
  Query <source> Using Native "<native query>";
  Create Coalition <name> [Under <parent>] [Description "<text>"];
  Create Service Link <name> From coalition|database <a> To coalition|database <b> [Information "<t>"];
  Join Coalition <name>;
  Leave Coalition <name>;`

func main() {
	log.SetFlags(0)
	nodeName := flag.String("node", medworld.QUT, "node to open the session on")
	codbIOR := flag.String("codb", "", "connect to a remote co-database IOR instead of booting the medical world")
	home := flag.String("home", "wtsh", "home database name for remote sessions")
	script := flag.String("c", "", "execute the given statement(s), separated by newlines, and exit")
	flag.Parse()

	var session *query.Session
	var nodeNames []string

	if *codbIOR != "" {
		o := orb.New(orb.Options{Product: orb.OrbixWeb})
		if err := o.Listen("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer o.Shutdown()
		ref, err := o.ResolveString(*codbIOR)
		if err != nil {
			log.Fatal(err)
		}
		p, err := query.New(query.Config{
			ORB: o, Home: *home, Local: codb.NewClient(ref),
		})
		if err != nil {
			log.Fatal(err)
		}
		session = p.NewSession()
		fmt.Printf("connected to remote co-database; session home %q\n", *home)
	} else {
		fmt.Println("booting the Medical World testbed...")
		world, err := medworld.Build()
		if err != nil {
			log.Fatal(err)
		}
		defer world.Shutdown()
		node, ok := world.Node(*nodeName)
		if !ok {
			log.Fatalf("no node %q; use one of %v", *nodeName, world.NodeNames())
		}
		session = node.NewSession()
		nodeNames = world.NodeNames()
		fmt.Printf("session open on %q — type \\help for the statement forms\n", *nodeName)
	}

	if *script != "" {
		for _, line := range strings.Split(*script, "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			fmt.Printf("wtl> %s\n", line)
			resp, err := session.Execute(context.Background(), line)
			if err != nil {
				log.Fatalf("%s: %v", line, err)
			}
			fmt.Println(resp.Text)
		}
		return
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("wtl> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\help`:
			fmt.Println(help)
		case line == `\nodes`:
			for _, n := range nodeNames {
				fmt.Println("  " + n)
			}
		case line == `\trace`:
			for _, t := range session.Trace() {
				fmt.Println("  " + t.String())
			}
		default:
			resp, err := session.Execute(context.Background(), line)
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println(resp.Text)
				if resp.Translated != "" {
					fmt.Printf("(wrapper produced: %s)\n", resp.Translated)
				}
			}
		}
		fmt.Print("wtl> ")
	}
}
