// Package repro is a from-scratch Go reproduction of "Using Java and CORBA
// for Implementing Internet Databases" (Bouguettaya, Benatallah, Ouzzani,
// Hendra — ICDE 1999): the WebFINDIT architecture for dynamic coupling of
// Web-accessible databases.
//
// The implementation lives under internal/:
//
//   - internal/cdr, internal/giop, internal/idl, internal/orb,
//     internal/naming — the CORBA substrate (CDR encoding, GIOP/IIOP,
//     IDL, three interoperating ORB products, naming service)
//   - internal/relational, internal/oodb — the database engines standing in
//     for Oracle/mSQL/DB2/Sybase and ObjectStore/Ontos
//   - internal/gateway — the JDBC-like driver layer and the ISI servants
//   - internal/codb — co-databases (the meta-data layer)
//   - internal/wtl, internal/query — the WebTassili language and the query
//     processor with the paper's two-level resolution algorithm
//   - internal/core — nodes and federations
//   - internal/browser — the HTTP browser UI (Java-applet stand-in)
//   - internal/medworld — the paper's healthcare testbed (Figures 1-2)
//
// See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
