// Command federation demonstrates the dynamic, autonomy-preserving side of
// WebFINDIT: information sources join and leave coalitions at their own
// discretion, coalitions form and dissolve, and service links are created at
// run time — all across three ORB products talking IIOP over real TCP
// sockets, with a CORBA-style naming service locating the servants.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/codb"
	"repro/internal/core"
	"repro/internal/naming"
	"repro/internal/orb"
)

func main() {
	fed, err := core.NewFederation()
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Shutdown()

	// A naming service runs on the Orbix instance; every node binds its
	// servants so any client can find them by name.
	reg, _, err := naming.Serve(fed.ORB(orb.Orbix))
	if err != nil {
		log.Fatal(err)
	}
	_ = reg

	mkNode := func(product orb.Product, name, engine, topic, schema string) *core.Node {
		n, err := fed.AddNode(product, core.NodeConfig{
			Name: name, Engine: engine, InformationType: topic, Schema: schema,
		})
		if err != nil {
			log.Fatal(err)
		}
		nc, err := naming.ClientFor(n.Config.ORB, fed.ORB(orb.Orbix).Addr())
		if err != nil {
			log.Fatal(err)
		}
		if err := nc.Rebind("WebFINDIT/CoDatabases/"+name, n.Descriptor.CoDBRef); err != nil {
			log.Fatal(err)
		}
		if err := nc.Rebind("WebFINDIT/ISIs/"+name, n.Descriptor.ISIRef); err != nil {
			log.Fatal(err)
		}
		return n
	}

	fmt.Println("Booting four autonomous databases on three ORB products...")
	lab := mkNode(orb.VisiBroker, "Pathology Lab", core.EngineOracle,
		"pathology test results",
		"CREATE TABLE tests (id INT PRIMARY KEY, patient VARCHAR(64), result VARCHAR(32)); INSERT INTO tests VALUES (1, 'A. Howe', 'negative');")
	imaging := mkNode(orb.OrbixWeb, "Imaging Centre", core.EngineDB2,
		"radiology and imaging",
		"CREATE TABLE scans (id INT PRIMARY KEY, patient VARCHAR(64), modality VARCHAR(16)); INSERT INTO scans VALUES (1, 'B. Tran', 'MRI');")
	pharmacy := mkNode(orb.Orbix, "Pharmacy", core.EngineMSQL,
		"dispensed prescriptions",
		"CREATE TABLE scripts (id INT PRIMARY KEY, patient VARCHAR(64), drug VARCHAR(32)); INSERT INTO scripts VALUES (1, 'A. Howe', 'amoxicillin');")
	billing := mkNode(orb.VisiBroker, "Billing Office", core.EngineSybase,
		"account billing",
		"CREATE TABLE invoices (id INT PRIMARY KEY, patient VARCHAR(64), amount FLOAT); INSERT INTO invoices VALUES (1, 'B. Tran', 145.0);")
	_ = billing

	fmt.Println("\n-- Coalition formation --")
	if err := fed.DefineCoalition("Diagnostics", "",
		"diagnostic services: pathology and imaging", "Pathology Lab", "Imaging Centre"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Coalition Diagnostics formed with Pathology Lab and Imaging Centre.")

	// The pharmacy discovers the coalition through a service link, then
	// joins it via WebTassili — dynamic, data-driven coupling.
	if err := fed.AddLink(core.LinkSpec{
		Name: "Pharmacy_to_Diagnostics", FromKind: "database", From: "Pharmacy",
		ToKind: "coalition", To: "Diagnostics", InfoType: "diagnostic services",
	}); err != nil {
		log.Fatal(err)
	}
	s := pharmacy.NewSession()
	resp, err := s.Execute(context.Background(), "Find Coalitions With Information diagnostic services;")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPharmacy discovery:")
	fmt.Println(resp.Text)

	if _, err := s.Execute(context.Background(), "Join Coalition Diagnostics;"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPharmacy joined Diagnostics via WebTassili.")
	members, _ := lab.CoDB.Members("Diagnostics")
	names := make([]string, len(members))
	for i, m := range members {
		names[i] = m.Name
	}
	fmt.Printf("Pathology Lab now sees members: %v\n", names)

	// Cross-ORB data access inside the coalition.
	fmt.Println("\n-- Cross-ORB query inside the coalition --")
	resp, err = s.Execute(context.Background(), `Query Imaging Centre Using Native "SELECT patient, modality FROM scans";`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(resp.Text)

	// Leaving at the member's discretion.
	fmt.Println("-- Departure --")
	if _, err := s.Execute(context.Background(), "Leave Coalition Diagnostics;"); err != nil {
		log.Fatal(err)
	}
	members, _ = lab.CoDB.Members("Diagnostics")
	fmt.Printf("After leave, Pathology Lab sees %d member(s).\n", len(members))

	// Coalition dissolution at a member's co-database.
	if err := imaging.CoDB.DissolveCoalition("Diagnostics"); err != nil {
		log.Fatal(err)
	}
	left, _ := imaging.CoDB.Members("Diagnostics")
	fmt.Printf("Imaging Centre dissolved its copy of Diagnostics: %d member(s) remain there.\n", len(left))

	// The naming service has been tracking everything.
	nc, err := naming.ClientFor(fed.ORB(orb.VisiBroker), fed.ORB(orb.Orbix).Addr())
	if err != nil {
		log.Fatal(err)
	}
	bound, err := nc.List("WebFINDIT/")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- Naming service contents --")
	for _, n := range bound {
		fmt.Println("  " + n)
	}

	// ORB statistics show the traffic really crossed IIOP sockets between
	// different ORB products.
	fmt.Println("\n-- ORB statistics --")
	for _, p := range []orb.Product{orb.Orbix, orb.OrbixWeb, orb.VisiBroker} {
		o := fed.ORB(p)
		fmt.Printf("  %-10s served=%d colocated=%d iiop=%d bytesSent=%d\n", p,
			o.Stats.RequestsServed.Load(), o.Stats.ColocatedCalls.Load(),
			o.Stats.IIOPCalls.Load(), o.Stats.BytesSent.Load())
	}

	// Show interoperability explicitly: disable colocation on a fresh
	// client ORB and call every node over the socket.
	fmt.Println("\n-- Pure-IIOP reachability check --")
	client := orb.New(orb.Options{Product: orb.OrbixWeb, DisableColocation: true})
	defer client.Shutdown()
	for _, name := range []string{"Pathology Lab", "Imaging Centre", "Pharmacy", "Billing Office"} {
		ior, err := nc.Resolve("WebFINDIT/ISIs/" + name)
		if err != nil {
			log.Fatal(err)
		}
		ref, err := client.ResolveString(ior)
		if err != nil {
			log.Fatal(err)
		}
		found, err := ref.Locate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s locatable over IIOP: %t\n", name, found)
	}
	_ = codb.SourceDescriptor{}
}
