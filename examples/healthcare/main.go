// Command healthcare replays the paper's evaluation (§5 and the §2.3
// walkthrough) on the full Medical World testbed: fourteen databases and
// their fourteen co-databases on five DBMS engines behind three
// IIOP-interoperating ORBs, organised into five coalitions and nine service
// links (Figures 1 and 2).
//
// The session output corresponds to Figures 4-6: browsing the Research
// coalition, displaying the Royal Brisbane Hospital documentation, and
// running "select * from medical_students" against the hospital database.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/medworld"
)

func main() {
	fmt.Println("Building the Medical World (14 databases + 14 co-databases,")
	fmt.Println("5 engines, 3 ORBs, 5 coalitions, 9 service links)...")
	world, err := medworld.Build()
	if err != nil {
		log.Fatal(err)
	}
	defer world.Shutdown()

	fmt.Println()
	fmt.Println("== Topology (Figure 1) ==")
	for _, c := range world.Coalitions() {
		fmt.Printf("coalition %-22s members: %v\n", c, world.Members(c))
	}
	for _, l := range world.Links() {
		fmt.Printf("service link %-28s %s %q -> %s %q\n", l.Name, l.FromKind, l.From, l.ToKind, l.To)
	}

	// The §5 session runs from QUT Research, as in the paper.
	qut, _ := world.Node(medworld.QUT)
	session := qut.NewSession()

	run := func(stmt string) {
		fmt.Printf("\nwtl> %s\n", stmt)
		resp, err := session.Execute(context.Background(), stmt)
		if err != nil {
			log.Fatalf("%s: %v", stmt, err)
		}
		fmt.Println(resp.Text)
		if resp.Translated != "" {
			fmt.Printf("(wrapper produced: %s)\n", resp.Translated)
		}
	}

	fmt.Println("\n== The §2.3 / §5 walkthrough from QUT Research ==")
	run("Find Coalitions With Information Medical Research;")
	run("Connect To Coalition Research;")
	run("Display SubClasses of Class Research;")
	run("Display Instances of Class Research;")
	run("Display Document of Instance Royal Brisbane Hospital Of Class Research;") // Figure 4
	run("Display Access Information of Instance Royal Brisbane Hospital;")
	run(`Funding(ResearchProjects.Title, (ResearchProjects.Title = "AIDS and drugs"));`)

	fmt.Println("\n== Figure 5: the RBH documentation page ==")
	resp, err := session.Execute(context.Background(), "Display Documentation of Instance Royal Brisbane Hospital;")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(resp.DocHTML)

	fmt.Println("== Figure 6: native SQL on the hospital database ==")
	run(`Query Royal Brisbane Hospital Using Native "select * from medical_students";`)

	fmt.Println("\n== The second walkthrough: discovering Medical Insurance ==")
	run(`Find Coalitions With Information "Medical Insurance";`)
	run("Connect To Coalition Medical Insurance;")
	run("Display Instances of Class Medical Insurance;")
	run(`Premium(Policies.Holder, (Policies.Holder = "A. Howe")) On Medibank;`)

	fmt.Println("\n== Layer trace of the last statement (Figure 3) ==")
	for _, line := range session.Trace() {
		fmt.Println("  " + line.String())
	}
}
