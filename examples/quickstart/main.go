// Command quickstart is the smallest useful WebFINDIT federation: two
// databases on different ORB products form one coalition; a session on one
// node discovers the coalition, browses it, and queries the other node's
// data through its exported interface.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/codb"
	"repro/internal/core"
	"repro/internal/orb"
)

func main() {
	// A federation boots one instance of each ORB product on loopback.
	fed, err := core.NewFederation()
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Shutdown()

	// A hospital database on Oracle behind VisiBroker.
	if _, err := fed.AddNode(orb.VisiBroker, core.NodeConfig{
		Name:            "City Hospital",
		Engine:          core.EngineOracle,
		InformationType: "hospital admissions",
		Documentation:   "http://example.org/city-hospital",
		Schema: `
			CREATE TABLE admissions (id INT PRIMARY KEY, patient VARCHAR(64), ward VARCHAR(16), days INT);
			INSERT INTO admissions VALUES
				(1, 'A. Howe', '3A', 4),
				(2, 'B. Tran', '7C', 11),
				(3, 'C. Ng', '3A', 2);`,
		Interface: []codb.ExportedType{{
			Name: "Admissions",
			Functions: []codb.ExportedFunction{{
				Name:    "Days",
				Returns: "int",
				Args:    []codb.TypedMember{{Type: "string", Name: "Admissions.Patient"}},
				Table:   "admissions", ResultColumn: "days", ArgColumn: "patient",
			}},
		}},
	}); err != nil {
		log.Fatal(err)
	}

	// A clinic database on mSQL behind OrbixWeb.
	clinic, err := fed.AddNode(orb.OrbixWeb, core.NodeConfig{
		Name:            "Suburb Clinic",
		Engine:          core.EngineMSQL,
		InformationType: "general practice visits",
		Schema: `
			CREATE TABLE visits (id INT PRIMARY KEY, patient VARCHAR(64), reason VARCHAR(32));
			INSERT INTO visits VALUES (1, 'C. Ng', 'follow-up');`,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Both join the Healthcare coalition: each co-database learns the
	// coalition class and both member descriptors.
	if err := fed.DefineCoalition("Healthcare", "",
		"hospital and clinic patient data", "City Hospital", "Suburb Clinic"); err != nil {
		log.Fatal(err)
	}

	// A user of the clinic explores the information space with WebTassili.
	session := clinic.NewSession()
	for _, stmt := range []string{
		"Find Coalitions With Information hospital admissions;",
		"Connect To Coalition Healthcare;",
		"Display Instances of Class Healthcare;",
		"Display Access Information of Instance City Hospital;",
		`Days(Admissions.Patient, (Admissions.Patient = "B. Tran")) On City Hospital;`,
		`Query City Hospital Using Native "SELECT ward, COUNT(*) AS n FROM admissions GROUP BY ward ORDER BY ward";`,
	} {
		fmt.Printf("wtl> %s\n", stmt)
		resp, err := session.Execute(context.Background(), stmt)
		if err != nil {
			log.Fatalf("%s: %v", stmt, err)
		}
		fmt.Println(resp.Text)
		if resp.Translated != "" {
			fmt.Printf("(wrapper produced: %s)\n", resp.Translated)
		}
		fmt.Println()
	}
}
