// Package browser implements the query-layer user interface of WebFINDIT.
// The paper ships a Java applet that talks to CORBA objects; this
// reproduction serves the same role with an HTTP + JSON + HTML interface in
// front of a node's query processor. It educates users about the available
// information space (coalitions, instances, documentation) and submits
// WebTassili queries.
package browser

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strings"
	"sync"

	"repro/internal/codb"
	"repro/internal/core"
	"repro/internal/query"
)

// Server exposes one node's WebFINDIT services over HTTP.
type Server struct {
	node *core.Node

	mu       sync.Mutex
	sessions map[string]*query.Session
	nextID   int
}

// NewServer creates a browser server for a node.
func NewServer(node *core.Node) *Server {
	return &Server{node: node, sessions: make(map[string]*query.Session)}
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("POST /api/session", s.handleNewSession)
	mux.HandleFunc("POST /api/query", s.handleQuery)
	mux.HandleFunc("GET /api/coalitions", s.handleCoalitions)
	mux.HandleFunc("GET /api/coalitions/{name}/instances", s.handleInstances)
	mux.HandleFunc("GET /api/sources/{name}/document", s.handleDocument)
	mux.HandleFunc("GET /api/sources/{name}/access", s.handleAccess)
	return mux
}

// session returns the session identified by the request's sid (creating the
// default session on first use).
func (s *Server) session(r *http.Request) *query.Session {
	sid := r.URL.Query().Get("sid")
	if sid == "" {
		sid = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[sid]
	if !ok {
		sess = s.node.NewSession()
		s.sessions[sid] = sess
	}
	return sess
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleNewSession allocates a fresh session and returns its id.
func (s *Server) handleNewSession(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.nextID++
	sid := fmt.Sprintf("s%d", s.nextID)
	s.sessions[sid] = s.node.NewSession()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"sid": sid})
}

// queryRequest is the /api/query body.
type queryRequest struct {
	Statement string `json:"statement"`
}

// leadJSON mirrors query.Lead for the wire.
type leadJSON struct {
	Coalition string  `json:"coalition"`
	Score     float64 `json:"score"`
	Via       string  `json:"via"`
}

// resultJSON carries a tabular result.
type resultJSON struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// memberJSON is one fanned-out member's outcome in the /api/query reply.
type memberJSON struct {
	Member    string `json:"member"`
	Attempts  int    `json:"attempts"`
	LatencyUS int64  `json:"latency_us"`
	ErrClass  string `json:"err_class,omitempty"`
	Err       string `json:"err,omitempty"`
}

// queryResponse is the /api/query reply.
type queryResponse struct {
	Text       string       `json:"text"`
	Leads      []leadJSON   `json:"leads,omitempty"`
	Names      []string     `json:"names,omitempty"`
	Sources    []string     `json:"sources,omitempty"`
	DocURL     string       `json:"doc_url,omitempty"`
	DocHTML    string       `json:"doc_html,omitempty"`
	Translated string       `json:"translated,omitempty"`
	Result     *resultJSON  `json:"result,omitempty"`
	Coalition  string       `json:"coalition,omitempty"`
	Source     string       `json:"source,omitempty"`
	Trace      []string     `json:"trace,omitempty"`
	Partial    bool         `json:"partial,omitempty"`
	Members    []memberJSON `json:"members,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("browser: bad request body: %w", err))
		return
	}
	if strings.TrimSpace(req.Statement) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("browser: empty statement"))
		return
	}
	sess := s.session(r)
	resp, err := sess.Execute(r.Context(), req.Statement)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := queryResponse{
		Text:       resp.Text,
		Names:      resp.Names,
		DocURL:     resp.DocURL,
		DocHTML:    resp.DocHTML,
		Translated: resp.Translated,
		Coalition:  sess.Coalition,
		Source:     sess.Source,
		Partial:    resp.Partial,
	}
	for _, ev := range sess.Trace() {
		out.Trace = append(out.Trace, ev.String())
	}
	for _, m := range resp.Members {
		out.Members = append(out.Members, memberJSON{
			Member:    m.Member,
			Attempts:  m.Attempts,
			LatencyUS: m.Latency.Microseconds(),
			ErrClass:  m.ErrClass,
			Err:       m.Err,
		})
	}
	for _, l := range resp.Leads {
		out.Leads = append(out.Leads, leadJSON{Coalition: l.Coalition, Score: l.Score, Via: l.Via})
	}
	for _, d := range resp.Sources {
		out.Sources = append(out.Sources, d.Name)
	}
	if resp.Result != nil {
		rj := &resultJSON{Columns: resp.Result.Columns}
		for _, row := range resp.Result.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			rj.Rows = append(rj.Rows, cells)
		}
		out.Result = rj
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCoalitions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"coalitions": s.node.CoDB.Coalitions(),
	})
}

// sourceJSON is the descriptor shape exposed to the UI.
type sourceJSON struct {
	Name            string   `json:"name"`
	InformationType string   `json:"information_type"`
	Documentation   string   `json:"documentation"`
	Location        string   `json:"location"`
	Wrapper         string   `json:"wrapper"`
	Engine          string   `json:"engine"`
	ORB             string   `json:"orb"`
	Interface       []string `json:"interface"`
}

func toSourceJSON(d *codb.SourceDescriptor) sourceJSON {
	return sourceJSON{
		Name:            d.Name,
		InformationType: d.InformationType,
		Documentation:   d.Documentation,
		Location:        d.Location,
		Wrapper:         d.Wrapper,
		Engine:          d.Engine,
		ORB:             d.ORB,
		Interface:       d.InterfaceNames(),
	}
}

func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	members, err := s.node.CoDB.Members(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	out := make([]sourceJSON, len(members))
	for i, m := range members {
		out[i] = toSourceJSON(m)
	}
	writeJSON(w, http.StatusOK, map[string]any{"coalition": name, "instances": out})
}

// handleDocument serves a source's documentation page (Figure 5: "displays
// the content of the HTML file containing the documentation").
func (s *Server) handleDocument(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, ok := s.node.CoDB.FindSource(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("browser: no source %s", name))
		return
	}
	if d.DocumentHTML == "" {
		writeError(w, http.StatusNotFound, fmt.Errorf("browser: source %s has no document", name))
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, d.DocumentHTML)
}

func (s *Server) handleAccess(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, ok := s.node.CoDB.FindSource(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("browser: no source %s", name))
		return
	}
	writeJSON(w, http.StatusOK, toSourceJSON(d))
}

// indexTemplate is the browser page: a WebTassili input plus an information
// space panel, standing in for the applet of Figures 4-6.
var indexTemplate = template.Must(template.New("index").Parse(`<!doctype html>
<html>
<head><title>WebFINDIT — {{.Node}}</title>
<style>
body { font-family: sans-serif; margin: 2rem; }
textarea { width: 100%; height: 4rem; font-family: monospace; }
pre { background: #f4f4f4; padding: 1rem; overflow-x: auto; }
.cols { display: flex; gap: 2rem; }
.col { flex: 1; }
</style>
</head>
<body>
<h1>WebFINDIT browser — node {{.Node}}</h1>
<div class="cols">
<div class="col">
<h2>WebTassili query</h2>
<textarea id="stmt">Find Coalitions With Information Medical Research;</textarea>
<p><button onclick="run()">Submit</button></p>
<pre id="out"></pre>
</div>
<div class="col">
<h2>Known coalitions</h2>
<ul>{{range .Coalitions}}<li>{{.}}</li>{{end}}</ul>
</div>
</div>
<script>
async function run() {
  const stmt = document.getElementById('stmt').value;
  const res = await fetch('/api/query', {method: 'POST',
    headers: {'Content-Type': 'application/json'},
    body: JSON.stringify({statement: stmt})});
  const data = await res.json();
  document.getElementById('out').textContent = JSON.stringify(data, null, 2);
}
</script>
</body>
</html>
`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = indexTemplate.Execute(w, map[string]any{
		"Node":       s.node.Config.Name,
		"Coalitions": s.node.CoDB.Coalitions(),
	})
}
