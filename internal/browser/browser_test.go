package browser

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/codb"
	"repro/internal/core"
	"repro/internal/orb"
)

// newTestServer builds a two-node federation and a browser on node Alpha.
func newTestServer(t *testing.T) (*httptest.Server, *core.Federation) {
	t.Helper()
	f, err := core.NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Shutdown)
	alpha, err := f.AddNode(orb.VisiBroker, core.NodeConfig{
		Name: "Alpha", Engine: core.EngineOracle,
		InformationType: "clinical records",
		Documentation:   "http://example.org/alpha",
		DocumentHTML:    "<html><body><h1>Alpha docs</h1></body></html>",
		Schema:          "CREATE TABLE t (a INT); INSERT INTO t VALUES (7);",
		Interface: []codb.ExportedType{{
			Name: "T",
			Functions: []codb.ExportedFunction{{
				Name: "A", Returns: "int", Table: "t", ResultColumn: "a", ArgColumn: "a",
			}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddNode(orb.Orbix, core.NodeConfig{
		Name: "Beta", Engine: core.EngineDB2,
		InformationType: "billing records",
		Schema:          "CREATE TABLE u (b INT);",
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.DefineCoalition("Clinical", "", "clinical data", "Alpha", "Beta"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(alpha).Handler())
	t.Cleanup(srv.Close)
	return srv, f
}

func postQuery(t *testing.T, base, sid, stmt string) (int, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"statement": stmt})
	url := base + "/api/query"
	if sid != "" {
		url += "?sid=" + sid
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestIndexPage(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	text := string(body)
	if !strings.Contains(text, "WebFINDIT browser") || !strings.Contains(text, "Clinical") {
		t.Errorf("index page:\n%s", text)
	}
	// Unknown paths 404.
	resp2, _ := http.Get(srv.URL + "/nope")
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Errorf("unknown path status = %d", resp2.StatusCode)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	status, out := postQuery(t, srv.URL, "", "Find Coalitions With Information clinical records;")
	if status != 200 {
		t.Fatalf("status = %d: %v", status, out)
	}
	leads, _ := out["leads"].([]any)
	if len(leads) == 0 {
		t.Fatalf("no leads: %v", out)
	}
	first := leads[0].(map[string]any)
	if first["coalition"] != "Clinical" {
		t.Errorf("lead = %v", first)
	}
	if trace, _ := out["trace"].([]any); len(trace) == 0 {
		t.Error("no trace returned")
	}

	// Session state persists across calls on the same sid.
	status, _ = postQuery(t, srv.URL, "", "Connect To Coalition Clinical;")
	if status != 200 {
		t.Fatalf("connect status = %d", status)
	}
	status, out = postQuery(t, srv.URL, "", "Display Instances of Class Clinical;")
	if status != 200 {
		t.Fatalf("instances status = %d", status)
	}
	srcs, _ := out["sources"].([]any)
	if len(srcs) != 2 {
		t.Errorf("sources = %v", srcs)
	}

	// Data query returns a tabular result.
	status, out = postQuery(t, srv.URL, "", `Query Alpha Using Native "SELECT a FROM t";`)
	if status != 200 {
		t.Fatalf("native status = %d: %v", status, out)
	}
	result, _ := out["result"].(map[string]any)
	if result == nil {
		t.Fatalf("no result: %v", out)
	}
	rows, _ := result["rows"].([]any)
	if len(rows) != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func TestQueryErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	status, out := postQuery(t, srv.URL, "", "Gibberish;")
	if status != 422 || out["error"] == nil {
		t.Errorf("parse error status = %d, %v", status, out)
	}
	status, _ = postQuery(t, srv.URL, "", "")
	if status != 400 {
		t.Errorf("empty statement status = %d", status)
	}
	resp, err := http.Post(srv.URL+"/api/query", "application/json", strings.NewReader("{bad json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad json status = %d", resp.StatusCode)
	}
}

func TestSessionsAreIsolated(t *testing.T) {
	srv, _ := newTestServer(t)
	// Create a named session and connect it to the coalition.
	resp, err := http.Post(srv.URL+"/api/session", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sess map[string]string
	json.NewDecoder(resp.Body).Decode(&sess)
	resp.Body.Close()
	sid := sess["sid"]
	if sid == "" {
		t.Fatal("no sid")
	}
	if status, _ := postQuery(t, srv.URL, sid, "Connect To Coalition Clinical;"); status != 200 {
		t.Fatal("connect failed")
	}
	_, out := postQuery(t, srv.URL, sid, "Display Instances of Class Clinical;")
	if out["coalition"] != "Clinical" {
		t.Errorf("named session coalition = %v", out["coalition"])
	}
	// The default session is untouched.
	_, out = postQuery(t, srv.URL, "", "Find Coalitions With Information clinical records;")
	if out["coalition"] != nil && out["coalition"] != "" {
		t.Errorf("default session coalition = %v", out["coalition"])
	}
}

func TestCoalitionsAndInstancesEndpoints(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/api/coalitions")
	if err != nil {
		t.Fatal(err)
	}
	var cs map[string][]string
	json.NewDecoder(resp.Body).Decode(&cs)
	resp.Body.Close()
	if len(cs["coalitions"]) != 1 || cs["coalitions"][0] != "Clinical" {
		t.Errorf("coalitions = %v", cs)
	}

	resp, err = http.Get(srv.URL + "/api/coalitions/Clinical/instances")
	if err != nil {
		t.Fatal(err)
	}
	var inst map[string]any
	json.NewDecoder(resp.Body).Decode(&inst)
	resp.Body.Close()
	if got, _ := inst["instances"].([]any); len(got) != 2 {
		t.Errorf("instances = %v", inst)
	}

	resp, _ = http.Get(srv.URL + "/api/coalitions/Nope/instances")
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown coalition status = %d", resp.StatusCode)
	}
}

func TestDocumentAndAccessEndpoints(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/api/sources/Alpha/document")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "Alpha docs") {
		t.Errorf("document: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type = %s", ct)
	}

	resp, err = http.Get(srv.URL + "/api/sources/Alpha/access")
	if err != nil {
		t.Fatal(err)
	}
	var acc map[string]any
	json.NewDecoder(resp.Body).Decode(&acc)
	resp.Body.Close()
	if acc["wrapper"] != "WebTassiliOracle" || acc["engine"] != "Oracle" {
		t.Errorf("access = %v", acc)
	}

	// Beta has no document body.
	resp, _ = http.Get(srv.URL + "/api/sources/Beta/document")
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("no-document status = %d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/api/sources/Nobody/access")
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown source status = %d", resp.StatusCode)
	}
}
