// Package cdr implements the OMG Common Data Representation (CDR) used by
// GIOP/IIOP messages: a byte-aligned, endianness-tagged binary encoding for
// primitive types, strings, sequences and encapsulations.
//
// The encoding follows CDR 1.0 alignment rules: every primitive is aligned to
// its natural size relative to the start of the stream (or of the enclosing
// encapsulation). Both big- and little-endian transfer syntaxes are
// supported; receivers honour the byte-order flag carried in GIOP headers and
// encapsulations.
package cdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ByteOrder identifies a CDR transfer syntax byte order.
type ByteOrder byte

const (
	// BigEndian is the canonical network byte order (flag 0).
	BigEndian ByteOrder = 0
	// LittleEndian is the x86-native byte order (flag 1).
	LittleEndian ByteOrder = 1
)

func (o ByteOrder) String() string {
	if o == BigEndian {
		return "big-endian"
	}
	return "little-endian"
}

func (o ByteOrder) order() binary.ByteOrder {
	if o == BigEndian {
		return binary.BigEndian
	}
	return binary.LittleEndian
}

// ErrShortBuffer is returned when a decoder runs out of input.
var ErrShortBuffer = errors.New("cdr: short buffer")

// Encoder builds a CDR stream. The zero value is not ready for use; call
// NewEncoder. Alignment is computed relative to the stream start plus a base
// offset so the encoder can marshal GIOP bodies whose alignment origin is the
// start of the message.
type Encoder struct {
	buf   []byte
	order ByteOrder
	base  int
}

// NewEncoder returns an encoder using the given byte order.
func NewEncoder(order ByteOrder) *Encoder {
	return &Encoder{order: order}
}

// NewEncoderAt returns an encoder whose alignment origin is offset bytes
// before the first written byte. GIOP request bodies use the message start as
// alignment origin, so an encoder for a body following a 12-byte header is
// created with offset 12.
func NewEncoderAt(order ByteOrder, offset int) *Encoder {
	return &Encoder{order: order, base: offset}
}

// Bytes returns the encoded stream. The slice is owned by the encoder and is
// invalidated by further writes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes written so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Order reports the encoder's byte order.
func (e *Encoder) Order() ByteOrder { return e.order }

// Reset discards all written data, retaining the buffer for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// ResetFor discards all written data and reconfigures the byte order and
// alignment origin, retaining the buffer: the reuse hook for encoder pooling
// (giop.AcquireBodyEncoder), where one scratch encoder serves messages of
// differing orders over its lifetime.
func (e *Encoder) ResetFor(order ByteOrder, offset int) {
	e.buf = e.buf[:0]
	e.order = order
	e.base = offset
}

// align pads the stream with zero bytes until the next write position is a
// multiple of n (relative to the alignment origin).
func (e *Encoder) align(n int) {
	pos := e.base + len(e.buf)
	pad := (n - pos%n) % n
	for i := 0; i < pad; i++ {
		e.buf = append(e.buf, 0)
	}
}

// WriteOctet appends a single unaligned byte.
func (e *Encoder) WriteOctet(b byte) { e.buf = append(e.buf, b) }

// WriteBool appends a boolean as a single octet (1 = true, 0 = false).
func (e *Encoder) WriteBool(v bool) {
	if v {
		e.WriteOctet(1)
	} else {
		e.WriteOctet(0)
	}
}

// WriteUShort appends a 16-bit unsigned integer aligned to 2 bytes.
func (e *Encoder) WriteUShort(v uint16) {
	e.align(2)
	var tmp [2]byte
	e.order.order().PutUint16(tmp[:], v)
	e.buf = append(e.buf, tmp[:]...)
}

// WriteShort appends a 16-bit signed integer aligned to 2 bytes.
func (e *Encoder) WriteShort(v int16) { e.WriteUShort(uint16(v)) }

// WriteULong appends a 32-bit unsigned integer aligned to 4 bytes.
func (e *Encoder) WriteULong(v uint32) {
	e.align(4)
	var tmp [4]byte
	e.order.order().PutUint32(tmp[:], v)
	e.buf = append(e.buf, tmp[:]...)
}

// WriteLong appends a 32-bit signed integer aligned to 4 bytes.
func (e *Encoder) WriteLong(v int32) { e.WriteULong(uint32(v)) }

// WriteULongLong appends a 64-bit unsigned integer aligned to 8 bytes.
func (e *Encoder) WriteULongLong(v uint64) {
	e.align(8)
	var tmp [8]byte
	e.order.order().PutUint64(tmp[:], v)
	e.buf = append(e.buf, tmp[:]...)
}

// WriteLongLong appends a 64-bit signed integer aligned to 8 bytes.
func (e *Encoder) WriteLongLong(v int64) { e.WriteULongLong(uint64(v)) }

// WriteFloat appends a 32-bit IEEE 754 float aligned to 4 bytes.
func (e *Encoder) WriteFloat(v float32) { e.WriteULong(math.Float32bits(v)) }

// WriteDouble appends a 64-bit IEEE 754 float aligned to 8 bytes.
func (e *Encoder) WriteDouble(v float64) { e.WriteULongLong(math.Float64bits(v)) }

// WriteString appends a CDR string: a ulong byte count (including the
// terminating NUL) followed by the bytes and a NUL terminator.
func (e *Encoder) WriteString(s string) {
	e.WriteULong(uint32(len(s) + 1))
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, 0)
}

// WriteOctets appends a sequence<octet>: a ulong length followed by the raw
// bytes (no terminator, no per-element alignment).
func (e *Encoder) WriteOctets(b []byte) {
	e.WriteULong(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// WriteStrings appends a sequence<string>.
func (e *Encoder) WriteStrings(ss []string) {
	e.WriteULong(uint32(len(ss)))
	for _, s := range ss {
		e.WriteString(s)
	}
}

// WriteEncapsulation appends a CDR encapsulation: a sequence<octet> whose
// first octet is the byte-order flag of the nested stream. The callback
// receives a fresh encoder for the nested stream.
func (e *Encoder) WriteEncapsulation(order ByteOrder, fn func(*Encoder)) {
	nested := NewEncoderAt(order, 1) // the order flag occupies offset 0
	fn(nested)
	e.WriteULong(uint32(1 + nested.Len()))
	e.WriteOctet(byte(order))
	e.buf = append(e.buf, nested.Bytes()...)
}

// Decoder reads a CDR stream produced by an Encoder (or a peer ORB).
type Decoder struct {
	buf   []byte
	pos   int
	order ByteOrder
	base  int
}

// NewDecoder returns a decoder over buf using the given byte order.
func NewDecoder(buf []byte, order ByteOrder) *Decoder {
	return &Decoder{buf: buf, order: order}
}

// NewDecoderAt returns a decoder whose alignment origin is offset bytes
// before the start of buf (see NewEncoderAt).
func NewDecoderAt(buf []byte, order ByteOrder, offset int) *Decoder {
	return &Decoder{buf: buf, order: order, base: offset}
}

// Order reports the decoder's byte order.
func (d *Decoder) Order() ByteOrder { return d.order }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Pos reports the current read offset within the buffer.
func (d *Decoder) Pos() int { return d.pos }

func (d *Decoder) align(n int) error {
	pos := d.base + d.pos
	pad := (n - pos%n) % n
	if d.pos+pad > len(d.buf) {
		return ErrShortBuffer
	}
	d.pos += pad
	return nil
}

func (d *Decoder) take(n int) ([]byte, error) {
	if d.pos+n > len(d.buf) {
		return nil, ErrShortBuffer
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

// ReadOctet reads a single byte.
func (d *Decoder) ReadOctet() (byte, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// ReadBool reads a boolean octet.
func (d *Decoder) ReadBool() (bool, error) {
	b, err := d.ReadOctet()
	return b != 0, err
}

// ReadUShort reads an aligned 16-bit unsigned integer.
func (d *Decoder) ReadUShort() (uint16, error) {
	if err := d.align(2); err != nil {
		return 0, err
	}
	b, err := d.take(2)
	if err != nil {
		return 0, err
	}
	return d.order.order().Uint16(b), nil
}

// ReadShort reads an aligned 16-bit signed integer.
func (d *Decoder) ReadShort() (int16, error) {
	v, err := d.ReadUShort()
	return int16(v), err
}

// ReadULong reads an aligned 32-bit unsigned integer.
func (d *Decoder) ReadULong() (uint32, error) {
	if err := d.align(4); err != nil {
		return 0, err
	}
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return d.order.order().Uint32(b), nil
}

// ReadLong reads an aligned 32-bit signed integer.
func (d *Decoder) ReadLong() (int32, error) {
	v, err := d.ReadULong()
	return int32(v), err
}

// ReadULongLong reads an aligned 64-bit unsigned integer.
func (d *Decoder) ReadULongLong() (uint64, error) {
	if err := d.align(8); err != nil {
		return 0, err
	}
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return d.order.order().Uint64(b), nil
}

// ReadLongLong reads an aligned 64-bit signed integer.
func (d *Decoder) ReadLongLong() (int64, error) {
	v, err := d.ReadULongLong()
	return int64(v), err
}

// ReadFloat reads an aligned 32-bit IEEE 754 float.
func (d *Decoder) ReadFloat() (float32, error) {
	v, err := d.ReadULong()
	return math.Float32frombits(v), err
}

// ReadDouble reads an aligned 64-bit IEEE 754 float.
func (d *Decoder) ReadDouble() (float64, error) {
	v, err := d.ReadULongLong()
	return math.Float64frombits(v), err
}

// ReadString reads a CDR string.
func (d *Decoder) ReadString() (string, error) {
	n, err := d.ReadULong()
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", fmt.Errorf("cdr: string with zero length (missing NUL)")
	}
	b, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	if b[n-1] != 0 {
		return "", fmt.Errorf("cdr: string not NUL-terminated")
	}
	return string(b[:n-1]), nil
}

// ReadOctets reads a sequence<octet>. The returned slice aliases the decoder
// buffer; copy it if it must outlive the input.
func (d *Decoder) ReadOctets() ([]byte, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	return d.take(int(n))
}

// ReadStrings reads a sequence<string>.
func (d *Decoder) ReadStrings() ([]string, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	ss := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		s, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		ss = append(ss, s)
	}
	return ss, nil
}

// ReadEncapsulation reads a CDR encapsulation and returns a decoder over the
// nested stream, honouring its embedded byte-order flag.
func (d *Decoder) ReadEncapsulation() (*Decoder, error) {
	body, err := d.ReadOctets()
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("cdr: empty encapsulation")
	}
	return NewDecoderAt(body[1:], ByteOrder(body[0]&1), 1), nil
}
