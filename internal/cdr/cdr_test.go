package cdr

import (
	"testing"
	"testing/quick"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		e := NewEncoder(order)
		e.WriteOctet(0xAB)
		e.WriteBool(true)
		e.WriteBool(false)
		e.WriteShort(-1234)
		e.WriteUShort(65000)
		e.WriteLong(-123456789)
		e.WriteULong(4000000000)
		e.WriteLongLong(-1 << 60)
		e.WriteULongLong(1 << 63)
		e.WriteFloat(3.5)
		e.WriteDouble(-2.25)
		e.WriteString("hello, CORBA")
		e.WriteOctets([]byte{1, 2, 3})
		e.WriteStrings([]string{"a", "bb", ""})

		d := NewDecoder(e.Bytes(), order)
		if v, _ := d.ReadOctet(); v != 0xAB {
			t.Errorf("%s octet = %x", order, v)
		}
		if v, _ := d.ReadBool(); !v {
			t.Errorf("%s bool1", order)
		}
		if v, _ := d.ReadBool(); v {
			t.Errorf("%s bool2", order)
		}
		if v, _ := d.ReadShort(); v != -1234 {
			t.Errorf("%s short = %d", order, v)
		}
		if v, _ := d.ReadUShort(); v != 65000 {
			t.Errorf("%s ushort = %d", order, v)
		}
		if v, _ := d.ReadLong(); v != -123456789 {
			t.Errorf("%s long = %d", order, v)
		}
		if v, _ := d.ReadULong(); v != 4000000000 {
			t.Errorf("%s ulong = %d", order, v)
		}
		if v, _ := d.ReadLongLong(); v != -1<<60 {
			t.Errorf("%s longlong = %d", order, v)
		}
		if v, _ := d.ReadULongLong(); v != 1<<63 {
			t.Errorf("%s ulonglong = %d", order, v)
		}
		if v, _ := d.ReadFloat(); v != 3.5 {
			t.Errorf("%s float = %f", order, v)
		}
		if v, _ := d.ReadDouble(); v != -2.25 {
			t.Errorf("%s double = %f", order, v)
		}
		if v, _ := d.ReadString(); v != "hello, CORBA" {
			t.Errorf("%s string = %q", order, v)
		}
		if v, _ := d.ReadOctets(); len(v) != 3 || v[2] != 3 {
			t.Errorf("%s octets = %v", order, v)
		}
		ss, err := d.ReadStrings()
		if err != nil || len(ss) != 3 || ss[1] != "bb" || ss[2] != "" {
			t.Errorf("%s strings = %v (%v)", order, ss, err)
		}
		if d.Remaining() != 0 {
			t.Errorf("%s: %d bytes left over", order, d.Remaining())
		}
	}
}

func TestAlignment(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteOctet(1) // offset 0
	e.WriteULong(7) // must pad to offset 4
	b := e.Bytes()
	if len(b) != 8 {
		t.Fatalf("len = %d, want 8 (1 octet + 3 pad + 4)", len(b))
	}
	if b[1] != 0 || b[2] != 0 || b[3] != 0 {
		t.Errorf("padding not zeroed: %v", b)
	}
	e2 := NewEncoder(BigEndian)
	e2.WriteOctet(1)
	e2.WriteDouble(1.0) // pads to 8
	if e2.Len() != 16 {
		t.Errorf("double alignment: len = %d, want 16", e2.Len())
	}
}

func TestAlignmentWithBaseOffset(t *testing.T) {
	// Simulates a GIOP body: alignment origin 12 bytes before the buffer.
	e := NewEncoderAt(BigEndian, 12)
	e.WriteULong(1) // 12 is 4-aligned: no padding
	if e.Len() != 4 {
		t.Fatalf("len = %d", e.Len())
	}
	e = NewEncoderAt(BigEndian, 13)
	e.WriteULong(1) // 13 -> pad 3
	if e.Len() != 7 {
		t.Fatalf("len = %d, want 7", e.Len())
	}
	d := NewDecoderAt(e.Bytes(), BigEndian, 13)
	v, err := d.ReadULong()
	if err != nil || v != 1 {
		t.Fatalf("read back %d, %v", v, err)
	}
}

func TestEncapsulation(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteEncapsulation(LittleEndian, func(inner *Encoder) {
		inner.WriteULong(99)
		inner.WriteString("nested")
	})
	d := NewDecoder(e.Bytes(), BigEndian)
	inner, err := d.ReadEncapsulation()
	if err != nil {
		t.Fatal(err)
	}
	if inner.Order() != LittleEndian {
		t.Errorf("inner order = %v", inner.Order())
	}
	if v, _ := inner.ReadULong(); v != 99 {
		t.Errorf("inner ulong = %d", v)
	}
	if s, _ := inner.ReadString(); s != "nested" {
		t.Errorf("inner string = %q", s)
	}
}

func TestShortBufferErrors(t *testing.T) {
	d := NewDecoder([]byte{1, 2}, BigEndian)
	if _, err := d.ReadULong(); err == nil {
		t.Error("no error on short ulong")
	}
	d = NewDecoder([]byte{0, 0, 0, 10, 'a'}, BigEndian)
	if _, err := d.ReadString(); err == nil {
		t.Error("no error on truncated string")
	}
	d = NewDecoder(nil, BigEndian)
	if _, err := d.ReadOctet(); err == nil {
		t.Error("no error on empty buffer")
	}
}

func TestStringValidation(t *testing.T) {
	// Zero-length CDR string (missing NUL) must be rejected.
	e := NewEncoder(BigEndian)
	e.WriteULong(0)
	d := NewDecoder(e.Bytes(), BigEndian)
	if _, err := d.ReadString(); err == nil {
		t.Error("zero-length string accepted")
	}
	// Non-NUL-terminated string rejected.
	e = NewEncoder(BigEndian)
	e.WriteULong(2)
	e.WriteOctet('a')
	e.WriteOctet('b')
	d = NewDecoder(e.Bytes(), BigEndian)
	if _, err := d.ReadString(); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string, order bool) bool {
		// CDR strings carry no NULs (NUL-terminated on the wire).
		for i := 0; i < len(s); i++ {
			if s[i] == 0 {
				return true
			}
		}
		o := BigEndian
		if order {
			o = LittleEndian
		}
		e := NewEncoder(o)
		e.WriteString(s)
		d := NewDecoder(e.Bytes(), o)
		got, err := d.ReadString()
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNumericRoundTrip(t *testing.T) {
	f := func(a int64, b uint32, c int16, d float64) bool {
		e := NewEncoder(LittleEndian)
		e.WriteLongLong(a)
		e.WriteULong(b)
		e.WriteShort(c)
		e.WriteDouble(d)
		dec := NewDecoder(e.Bytes(), LittleEndian)
		ga, _ := dec.ReadLongLong()
		gb, _ := dec.ReadULong()
		gc, _ := dec.ReadShort()
		gd, err := dec.ReadDouble()
		if err != nil {
			return false
		}
		return ga == a && gb == b && gc == c && (gd == d || (d != d && gd != gd))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteString("data")
	e.Reset()
	if e.Len() != 0 {
		t.Errorf("after reset len = %d", e.Len())
	}
	e.WriteULong(5)
	if e.Len() != 4 {
		t.Errorf("reuse after reset: len = %d", e.Len())
	}
}
