package codb

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/oodb"
)

// Schema class names used by every co-database.
const (
	ClassInformationType = "InformationType"
	ClassCoalitionInfo   = "CoalitionDescriptor"
	ClassServiceLink     = "ServiceLink"
	ClassCoalitionLink   = "CoalitionLink"
	ClassDatabaseLink    = "DatabaseLink"
)

// CoDatabase is the metadata database attached to one participating
// database. It holds only what its owner is entitled to know: the coalitions
// the owner belongs to (with their member descriptors), and the service
// links of those coalitions and of the owner itself — the partial-knowledge
// property the paper's discovery algorithm depends on.
type CoDatabase struct {
	owner     string
	db        *oodb.DB
	ownerDesc *SourceDescriptor
	// version is the monotonic schema version: every successful mutation of
	// the coalition lattice, membership or link set bumps it. Remote caches
	// compare it (via the servant's cheap version() op) to revalidate entries
	// without refetching member lists.
	version atomic.Uint64
}

// New creates a co-database for the named owner database and bootstraps the
// standard schema.
func New(owner string) *CoDatabase {
	cd := &CoDatabase{owner: owner, db: oodb.NewDB("codb-" + owner)}
	must := func(_ *oodb.Class, err error) {
		if err != nil {
			panic("codb: bootstrap: " + err.Error())
		}
	}
	// Root of the coalition lattice. Instances of coalition classes are
	// source descriptors, so descriptor attributes live on the root.
	must(cd.db.DefineClass(ClassInformationType, "",
		oodb.Attribute{Name: "Name", Type: oodb.AttrString},
		oodb.Attribute{Name: "InformationType", Type: oodb.AttrString},
		oodb.Attribute{Name: "Documentation", Type: oodb.AttrString},
		oodb.Attribute{Name: "DocumentHTML", Type: oodb.AttrString},
		oodb.Attribute{Name: "Location", Type: oodb.AttrString},
		oodb.Attribute{Name: "Wrapper", Type: oodb.AttrString},
		oodb.Attribute{Name: "DSN", Type: oodb.AttrString},
		oodb.Attribute{Name: "ISIRef", Type: oodb.AttrString},
		oodb.Attribute{Name: "CoDBRef", Type: oodb.AttrString},
		oodb.Attribute{Name: "Engine", Type: oodb.AttrString},
		oodb.Attribute{Name: "ORB", Type: oodb.AttrString},
		oodb.Attribute{Name: "InterfaceJSON", Type: oodb.AttrString},
	))
	// Class-level coalition metadata (the engine has no class attributes).
	must(cd.db.DefineClass(ClassCoalitionInfo, "",
		oodb.Attribute{Name: "Name", Type: oodb.AttrString},
		oodb.Attribute{Name: "Description", Type: oodb.AttrString},
		oodb.Attribute{Name: "Synonyms", Type: oodb.AttrStringList},
	))
	// Service-link sub-schema, with the paper's two subclasses.
	must(cd.db.DefineClass(ClassServiceLink, "",
		oodb.Attribute{Name: "Name", Type: oodb.AttrString},
		oodb.Attribute{Name: "FromKind", Type: oodb.AttrString},
		oodb.Attribute{Name: "From", Type: oodb.AttrString},
		oodb.Attribute{Name: "ToKind", Type: oodb.AttrString},
		oodb.Attribute{Name: "To", Type: oodb.AttrString},
		oodb.Attribute{Name: "Description", Type: oodb.AttrString},
		oodb.Attribute{Name: "InfoType", Type: oodb.AttrString},
		oodb.Attribute{Name: "CoDBRef", Type: oodb.AttrString},
	))
	must(cd.db.DefineClass(ClassCoalitionLink, ClassServiceLink))
	must(cd.db.DefineClass(ClassDatabaseLink, ClassServiceLink))
	return cd
}

// Owner returns the name of the database this co-database is attached to.
func (cd *CoDatabase) Owner() string { return cd.owner }

// DB exposes the underlying object database (read-mostly; used by the
// browser layer and tests).
func (cd *CoDatabase) DB() *oodb.DB { return cd.db }

// Version returns the monotonic schema version. It starts at 0 for a fresh
// (or restored) co-database and increases on every successful mutation of
// coalitions, members or links.
func (cd *CoDatabase) Version() uint64 { return cd.version.Load() }

// bump records a schema mutation.
func (cd *CoDatabase) bump() { cd.version.Add(1) }

// reserved class names cannot be coalition names.
func isReserved(name string) bool {
	switch strings.ToLower(name) {
	case strings.ToLower(ClassInformationType), strings.ToLower(ClassCoalitionInfo),
		strings.ToLower(ClassServiceLink), strings.ToLower(ClassCoalitionLink),
		strings.ToLower(ClassDatabaseLink):
		return true
	}
	return false
}

// DefineCoalition declares a coalition class. parent is "" for a top-level
// coalition (directly under InformationType) or the name of an enclosing
// coalition for topic specialisation.
func (cd *CoDatabase) DefineCoalition(name, parent, description string, synonyms ...string) error {
	if isReserved(name) {
		return fmt.Errorf("codb: %s is a reserved class name", name)
	}
	super := ClassInformationType
	if parent != "" {
		if _, ok := cd.db.Class(parent); !ok {
			return fmt.Errorf("codb: parent coalition %s not known here", parent)
		}
		super = parent
	}
	if _, err := cd.db.DefineClass(name, super); err != nil {
		return err
	}
	_, err := cd.db.NewObject(ClassCoalitionInfo, map[string]any{
		"Name":        name,
		"Description": description,
		"Synonyms":    synonyms,
	})
	if err == nil {
		cd.bump()
	}
	return err
}

// HasCoalition reports whether the coalition class exists here.
func (cd *CoDatabase) HasCoalition(name string) bool {
	if isReserved(name) {
		return false
	}
	c, ok := cd.db.Class(name)
	if !ok {
		return false
	}
	root, _ := cd.db.Class(ClassInformationType)
	return c.IsSubclassOf(root) && c.Name() != ClassInformationType
}

// Coalitions lists all coalition classes known here, sorted.
func (cd *CoDatabase) Coalitions() []string {
	subs, err := cd.db.SubClasses(ClassInformationType, false)
	if err != nil {
		return nil
	}
	out := make([]string, 0, len(subs))
	for _, c := range subs {
		out = append(out, c.Name())
	}
	return out
}

// CoalitionInfo returns a coalition's description and synonyms.
func (cd *CoDatabase) CoalitionInfo(name string) (description string, synonyms []string, ok bool) {
	o, err := cd.db.SelectFirst(ClassCoalitionInfo, false, func(o *oodb.Object) bool {
		return strings.EqualFold(o.String("Name"), name)
	})
	if err != nil || o == nil {
		return "", nil, false
	}
	return o.String("Description"), o.Strings("Synonyms"), true
}

// SubCoalitions lists the coalitions directly (or transitively) below name.
func (cd *CoDatabase) SubCoalitions(name string, direct bool) ([]string, error) {
	if !cd.HasCoalition(name) {
		return nil, fmt.Errorf("codb: no coalition %s known here", name)
	}
	subs, err := cd.db.SubClasses(name, direct)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(subs))
	for _, c := range subs {
		out = append(out, c.Name())
	}
	return out, nil
}

func descriptorAttrs(d *SourceDescriptor) map[string]any {
	return map[string]any{
		"Name":            d.Name,
		"InformationType": d.InformationType,
		"Documentation":   d.Documentation,
		"DocumentHTML":    d.DocumentHTML,
		"Location":        d.Location,
		"Wrapper":         d.Wrapper,
		"DSN":             d.DSN,
		"ISIRef":          d.ISIRef,
		"CoDBRef":         d.CoDBRef,
		"Engine":          d.Engine,
		"ORB":             d.ORB,
		"InterfaceJSON":   marshalInterface(d.Interface),
	}
}

func objectToDescriptor(o *oodb.Object) *SourceDescriptor {
	return &SourceDescriptor{
		Name:            o.String("Name"),
		InformationType: o.String("InformationType"),
		Documentation:   o.String("Documentation"),
		DocumentHTML:    o.String("DocumentHTML"),
		Location:        o.String("Location"),
		Wrapper:         o.String("Wrapper"),
		DSN:             o.String("DSN"),
		ISIRef:          o.String("ISIRef"),
		CoDBRef:         o.String("CoDBRef"),
		Engine:          o.String("Engine"),
		ORB:             o.String("ORB"),
		Interface:       unmarshalInterface(o.String("InterfaceJSON")),
	}
}

// AddMember advertises a source descriptor as an instance of a coalition.
func (cd *CoDatabase) AddMember(coalition string, d *SourceDescriptor) error {
	if !cd.HasCoalition(coalition) {
		return fmt.Errorf("codb: no coalition %s known here", coalition)
	}
	if d.Name == "" {
		return fmt.Errorf("codb: source descriptor needs a name")
	}
	if existing, _ := cd.member(coalition, d.Name); existing != nil {
		return fmt.Errorf("codb: %s is already a member of %s", d.Name, coalition)
	}
	_, err := cd.db.NewObject(coalition, descriptorAttrs(d))
	if err == nil {
		cd.bump()
	}
	return err
}

func (cd *CoDatabase) member(coalition, name string) (*oodb.Object, error) {
	return cd.db.SelectFirst(coalition, true, func(o *oodb.Object) bool {
		return strings.EqualFold(o.String("Name"), name)
	})
}

// RemoveMember withdraws a database from a coalition (the paper's "sites
// join and leave these clusters at their own discretion").
func (cd *CoDatabase) RemoveMember(coalition, name string) error {
	if !cd.HasCoalition(coalition) {
		return fmt.Errorf("codb: no coalition %s known here", coalition)
	}
	o, err := cd.member(coalition, name)
	if err != nil {
		return err
	}
	if o == nil {
		return fmt.Errorf("codb: %s is not a member of %s", name, coalition)
	}
	if err := cd.db.Delete(o.ID()); err != nil {
		return err
	}
	cd.bump()
	return nil
}

// Members lists a coalition's member descriptors (including sub-coalition
// members), sorted by name.
func (cd *CoDatabase) Members(coalition string) ([]*SourceDescriptor, error) {
	if !cd.HasCoalition(coalition) {
		return nil, fmt.Errorf("codb: no coalition %s known here", coalition)
	}
	objs, err := cd.db.Extent(coalition, true)
	if err != nil {
		return nil, err
	}
	out := make([]*SourceDescriptor, 0, len(objs))
	seen := make(map[string]bool, len(objs))
	for _, o := range objs {
		d := objectToDescriptor(o)
		// A database advertised in both a coalition and one of its
		// sub-coalitions is listed once.
		key := strings.ToLower(d.Name)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// SetOwnerDescriptor records the owner database's own access information,
// which the paper says every co-database stores regardless of coalition
// membership.
func (cd *CoDatabase) SetOwnerDescriptor(d *SourceDescriptor) {
	cd.ownerDesc = d
	cd.bump()
}

// OwnerDescriptor returns the owner's access information (nil if unset).
func (cd *CoDatabase) OwnerDescriptor() *SourceDescriptor { return cd.ownerDesc }

// FindSource locates a descriptor by database name: in the coalition
// lattice, or the owner's own descriptor.
func (cd *CoDatabase) FindSource(name string) (*SourceDescriptor, bool) {
	o, err := cd.db.SelectFirst(ClassInformationType, true, func(o *oodb.Object) bool {
		return strings.EqualFold(o.String("Name"), name)
	})
	if err == nil && o != nil {
		return objectToDescriptor(o), true
	}
	if cd.ownerDesc != nil && strings.EqualFold(cd.ownerDesc.Name, name) {
		return cd.ownerDesc, true
	}
	return nil, false
}

// MemberOf lists the coalitions the owner database is a member of (the
// shallow extents containing its descriptor).
func (cd *CoDatabase) MemberOf() []string {
	var out []string
	for _, coalition := range cd.Coalitions() {
		objs, err := cd.db.Extent(coalition, false)
		if err != nil {
			continue
		}
		for _, o := range objs {
			if strings.EqualFold(o.String("Name"), cd.owner) {
				out = append(out, coalition)
				break
			}
		}
	}
	return out
}

// DissolveCoalition removes all members of a coalition (class definitions
// are immutable in the engine, so dissolution empties the extent and marks
// the descriptor).
func (cd *CoDatabase) DissolveCoalition(name string) error {
	members, err := cd.Members(name)
	if err != nil {
		return err
	}
	for _, m := range members {
		if err := cd.RemoveMember(name, m.Name); err != nil {
			return err
		}
	}
	if o, _ := cd.db.SelectFirst(ClassCoalitionInfo, false, func(o *oodb.Object) bool {
		return strings.EqualFold(o.String("Name"), name)
	}); o != nil {
		if err := cd.db.Set(o.ID(), "Description", "(dissolved)"); err != nil {
			return err
		}
	}
	cd.bump()
	return nil
}

// AddLink records a service link. Links whose From is a coalition are
// CoalitionLink instances, otherwise DatabaseLink (the paper's two
// sub-schemas).
func (cd *CoDatabase) AddLink(l *ServiceLink) error {
	if l.Name == "" {
		return fmt.Errorf("codb: service link needs a name")
	}
	class := ClassDatabaseLink
	if l.FromKind == "coalition" {
		class = ClassCoalitionLink
	}
	if existing := cd.findLink(l.Name); existing != nil {
		return fmt.Errorf("codb: service link %s already recorded", l.Name)
	}
	_, err := cd.db.NewObject(class, map[string]any{
		"Name":        l.Name,
		"FromKind":    l.FromKind,
		"From":        l.From,
		"ToKind":      l.ToKind,
		"To":          l.To,
		"Description": l.Description,
		"InfoType":    l.InfoType,
		"CoDBRef":     l.CoDBRef,
	})
	if err == nil {
		cd.bump()
	}
	return err
}

func (cd *CoDatabase) findLink(name string) *oodb.Object {
	o, _ := cd.db.SelectFirst(ClassServiceLink, true, func(o *oodb.Object) bool {
		return strings.EqualFold(o.String("Name"), name)
	})
	return o
}

// RemoveLink deletes a service link by name.
func (cd *CoDatabase) RemoveLink(name string) error {
	o := cd.findLink(name)
	if o == nil {
		return fmt.Errorf("codb: no service link %s", name)
	}
	if err := cd.db.Delete(o.ID()); err != nil {
		return err
	}
	cd.bump()
	return nil
}

func objectToLink(o *oodb.Object) *ServiceLink {
	return &ServiceLink{
		Name:        o.String("Name"),
		FromKind:    o.String("FromKind"),
		From:        o.String("From"),
		ToKind:      o.String("ToKind"),
		To:          o.String("To"),
		Description: o.String("Description"),
		InfoType:    o.String("InfoType"),
		CoDBRef:     o.String("CoDBRef"),
	}
}

// Links lists all service links known here, sorted by name.
func (cd *CoDatabase) Links() []*ServiceLink {
	objs, err := cd.db.Extent(ClassServiceLink, true)
	if err != nil {
		return nil
	}
	out := make([]*ServiceLink, 0, len(objs))
	for _, o := range objs {
		out = append(out, objectToLink(o))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LinksFrom lists the links whose From side is the given coalition or
// database name.
func (cd *CoDatabase) LinksFrom(name string) []*ServiceLink {
	var out []*ServiceLink
	for _, l := range cd.Links() {
		if strings.EqualFold(l.From, name) {
			out = append(out, l)
		}
	}
	return out
}

// Match is one discovery hit: a coalition (or link target) that appears to
// offer the requested information, with an explanation for user education.
type Match struct {
	Coalition string  // coalition (or target) name
	Score     float64 // fraction of query tokens matched
	Via       string  // how it was found: "local", "link:<name>"
	CoDBRef   string  // co-database that can expand this match ("" = here)
}

// tokenise lower-cases and splits a topic phrase into word tokens, dropping
// connective noise words so "Research and Medical" matches both topics.
func tokenise(s string) []string {
	drop := map[string]bool{"and": true, "or": true, "the": true, "of": true, "in": true}
	fields := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !('a' <= r && r <= 'z' || '0' <= r && r <= '9')
	})
	out := fields[:0]
	for _, f := range fields {
		if !drop[f] {
			out = append(out, f)
		}
	}
	return out
}

// vocabulary builds the searchable token set of a coalition: its name, its
// description and synonyms, and the information types of its members.
func (cd *CoDatabase) vocabulary(coalition string) map[string]bool {
	vocab := make(map[string]bool)
	add := func(s string) {
		for _, tok := range tokenise(s) {
			vocab[tok] = true
		}
	}
	add(coalition)
	if desc, syns, ok := cd.CoalitionInfo(coalition); ok {
		add(desc)
		for _, s := range syns {
			add(s)
		}
	}
	if members, err := cd.Members(coalition); err == nil {
		for _, m := range members {
			add(m.InformationType)
		}
	}
	return vocab
}

// FindCoalitions scores the locally known coalitions against an information
// topic. This is the first step of the paper's resolution algorithm; the
// query processor escalates to links and peers when it comes back empty.
func (cd *CoDatabase) FindCoalitions(topic string) []Match {
	toks := tokenise(topic)
	if len(toks) == 0 {
		return nil
	}
	var out []Match
	for _, coalition := range cd.Coalitions() {
		vocab := cd.vocabulary(coalition)
		hit := 0
		for _, tok := range toks {
			if vocab[tok] {
				hit++
			}
		}
		if hit > 0 {
			out = append(out, Match{
				Coalition: coalition,
				Score:     float64(hit) / float64(len(toks)),
				Via:       "local",
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Coalition < out[j].Coalition
	})
	return out
}

// FindLinks scores the locally known service links against a topic,
// returning matches that point at remote information spaces.
func (cd *CoDatabase) FindLinks(topic string) []Match {
	toks := tokenise(topic)
	if len(toks) == 0 {
		return nil
	}
	var out []Match
	for _, l := range cd.Links() {
		vocab := make(map[string]bool)
		for _, tok := range tokenise(l.To + " " + l.InfoType + " " + l.Description) {
			vocab[tok] = true
		}
		hit := 0
		for _, tok := range toks {
			if vocab[tok] {
				hit++
			}
		}
		if hit > 0 {
			out = append(out, Match{
				Coalition: l.To,
				Score:     float64(hit) / float64(len(toks)),
				Via:       "link:" + l.Name,
				CoDBRef:   l.CoDBRef,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Coalition < out[j].Coalition
	})
	return out
}

// ---- Persistence ----

// codbSnapshot is the serialised form of a co-database.
type codbSnapshot struct {
	Owner     string            `json:"owner"`
	OwnerDesc *SourceDescriptor `json:"owner_descriptor,omitempty"`
	DB        json.RawMessage   `json:"db"`
}

// Snapshot serialises the co-database (schema, coalition lattice, members,
// links, owner descriptor) to JSON, so a node can persist its metadata
// across restarts.
func (cd *CoDatabase) Snapshot() ([]byte, error) {
	dbData, err := cd.db.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("codb: snapshot: %w", err)
	}
	return json.MarshalIndent(codbSnapshot{
		Owner:     cd.owner,
		OwnerDesc: cd.ownerDesc,
		DB:        dbData,
	}, "", "  ")
}

// Restore rebuilds a co-database from a Snapshot.
func Restore(data []byte) (*CoDatabase, error) {
	var snap codbSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("codb: restore: %w", err)
	}
	db, err := oodb.Load(snap.DB)
	if err != nil {
		return nil, fmt.Errorf("codb: restore: %w", err)
	}
	if _, ok := db.Class(ClassInformationType); !ok {
		return nil, fmt.Errorf("codb: restore: snapshot is not a co-database")
	}
	return &CoDatabase{owner: snap.Owner, db: db, ownerDesc: snap.OwnerDesc}, nil
}
