package codb

import (
	"context"
	"strings"
	"testing"

	"repro/internal/orb"
)

// newRBHCoDB builds a co-database resembling the Royal Brisbane Hospital's
// in the paper: member of Research and Medical, knowing two service links.
func newRBHCoDB(t *testing.T) *CoDatabase {
	t.Helper()
	cd := New("Royal Brisbane Hospital")
	if err := cd.DefineCoalition("Research", "", "medical research conducted in Queensland", "science"); err != nil {
		t.Fatal(err)
	}
	if err := cd.DefineCoalition("Medical", "", "hospitals and medical care providers"); err != nil {
		t.Fatal(err)
	}
	rbh := &SourceDescriptor{
		Name:            "Royal Brisbane Hospital",
		InformationType: "Research and Medical",
		Documentation:   "http://www.medicine.uq.edu.au/RBH",
		Location:        "dba.icis.qut.edu.au",
		Wrapper:         "WebTassiliOracle",
		Engine:          "Oracle",
		ORB:             "VisiBroker",
		Interface: []ExportedType{
			{
				Name: "ResearchProjects",
				Attributes: []TypedMember{
					{Type: "string", Name: "ResearchProjects.Title"},
					{Type: "string", Name: "ResearchProjects.Keywords"},
				},
				Functions: []ExportedFunction{{
					Name: "Funding", Returns: "real",
					Args:         []TypedMember{{Type: "string", Name: "ResearchProjects.Title"}},
					Table:        "ResearchProjects",
					ResultColumn: "Funding",
					ArgColumn:    "Title",
				}},
			},
			{Name: "PatientHistory"},
		},
	}
	if err := cd.AddMember("Research", rbh); err != nil {
		t.Fatal(err)
	}
	if err := cd.AddMember("Medical", rbh); err != nil {
		t.Fatal(err)
	}
	if err := cd.AddMember("Research", &SourceDescriptor{
		Name: "QUT Research", InformationType: "Research"}); err != nil {
		t.Fatal(err)
	}
	if err := cd.AddLink(&ServiceLink{
		Name: "Medical_to_MedicalInsurance", FromKind: "coalition", From: "Medical",
		ToKind: "coalition", To: "Medical Insurance",
		Description: "insurance claims for medical procedures", InfoType: "Medical Insurance",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cd.AddLink(&ServiceLink{
		Name: "SGF_to_Medical", FromKind: "database", From: "State Government Funding",
		ToKind: "coalition", To: "Medical", InfoType: "funding",
	}); err != nil {
		t.Fatal(err)
	}
	return cd
}

func TestCoalitionDefinition(t *testing.T) {
	cd := newRBHCoDB(t)
	got := cd.Coalitions()
	if len(got) != 2 || got[0] != "Medical" || got[1] != "Research" {
		t.Errorf("coalitions = %v", got)
	}
	if !cd.HasCoalition("research") { // case-insensitive
		t.Error("HasCoalition failed")
	}
	if cd.HasCoalition("ServiceLink") || cd.HasCoalition("InformationType") {
		t.Error("reserved classes reported as coalitions")
	}
	if err := cd.DefineCoalition("Research", "", "dup"); err == nil {
		t.Error("duplicate coalition accepted")
	}
	if err := cd.DefineCoalition("ServiceLink", "", "x"); err == nil {
		t.Error("reserved name accepted")
	}
	if err := cd.DefineCoalition("X", "NoParent", "x"); err == nil {
		t.Error("unknown parent accepted")
	}
	desc, syns, ok := cd.CoalitionInfo("Research")
	if !ok || !strings.Contains(desc, "research") || len(syns) != 1 {
		t.Errorf("coalition info = %q %v %t", desc, syns, ok)
	}
}

func TestSubCoalitions(t *testing.T) {
	cd := newRBHCoDB(t)
	if err := cd.DefineCoalition("Cancer Research", "Research", "cancer studies"); err != nil {
		t.Fatal(err)
	}
	subs, err := cd.SubCoalitions("Research", true)
	if err != nil || len(subs) != 1 || subs[0] != "Cancer Research" {
		t.Errorf("subs = %v, %v", subs, err)
	}
	// Member of sub-coalition appears in parent's deep extent.
	if err := cd.AddMember("Cancer Research", &SourceDescriptor{
		Name: "Qld Cancer Fund", InformationType: "cancer research funding"}); err != nil {
		t.Fatal(err)
	}
	members, _ := cd.Members("Research")
	names := make([]string, len(members))
	for i, m := range members {
		names[i] = m.Name
	}
	if len(members) != 3 {
		t.Errorf("deep members = %v", names)
	}
	if _, err := cd.SubCoalitions("Nope", true); err == nil {
		t.Error("unknown coalition accepted")
	}
}

func TestMembership(t *testing.T) {
	cd := newRBHCoDB(t)
	memberOf := cd.MemberOf()
	if len(memberOf) != 2 {
		t.Errorf("MemberOf = %v", memberOf)
	}
	if err := cd.AddMember("Research", &SourceDescriptor{Name: "QUT Research"}); err == nil {
		t.Error("duplicate member accepted")
	}
	if err := cd.AddMember("Research", &SourceDescriptor{}); err == nil {
		t.Error("nameless member accepted")
	}
	if err := cd.AddMember("Nope", &SourceDescriptor{Name: "x"}); err == nil {
		t.Error("unknown coalition accepted")
	}
	if err := cd.RemoveMember("Research", "QUT Research"); err != nil {
		t.Fatal(err)
	}
	if err := cd.RemoveMember("Research", "QUT Research"); err == nil {
		t.Error("double remove accepted")
	}
	members, _ := cd.Members("Research")
	if len(members) != 1 {
		t.Errorf("members after remove = %d", len(members))
	}
}

func TestFindSourceAndInterface(t *testing.T) {
	cd := newRBHCoDB(t)
	d, ok := cd.FindSource("royal brisbane hospital")
	if !ok {
		t.Fatal("FindSource failed")
	}
	if d.Wrapper != "WebTassiliOracle" || d.Engine != "Oracle" {
		t.Errorf("descriptor = %+v", d)
	}
	et, ok := d.Type("researchprojects")
	if !ok {
		t.Fatal("exported type lookup failed")
	}
	fn, ok := et.Function("funding")
	if !ok || fn.ResultColumn != "Funding" || fn.Table != "ResearchProjects" {
		t.Errorf("function = %+v", fn)
	}
	decl := et.Declaration()
	if !strings.Contains(decl, "Type ResearchProjects") ||
		!strings.Contains(decl, "attribute string ResearchProjects.Title;") ||
		!strings.Contains(decl, "function real Funding(") {
		t.Errorf("declaration:\n%s", decl)
	}
	adv := d.Advertisement()
	if !strings.Contains(adv, `Information Type  "Research and Medical"`) ||
		!strings.Contains(adv, "WebTassiliOracle") {
		t.Errorf("advertisement:\n%s", adv)
	}
	if _, ok := cd.FindSource("Nobody"); ok {
		t.Error("phantom source found")
	}
}

func TestServiceLinks(t *testing.T) {
	cd := newRBHCoDB(t)
	links := cd.Links()
	if len(links) != 2 {
		t.Fatalf("links = %d", len(links))
	}
	// Coalition-from links are CoalitionLink instances; database-from links
	// are DatabaseLink instances (the paper's two sub-schemas).
	co, _ := cd.DB().Extent(ClassCoalitionLink, false)
	dbl, _ := cd.DB().Extent(ClassDatabaseLink, false)
	if len(co) != 1 || len(dbl) != 1 {
		t.Errorf("coalition links = %d, database links = %d", len(co), len(dbl))
	}
	from := cd.LinksFrom("Medical")
	if len(from) != 1 || from[0].To != "Medical Insurance" {
		t.Errorf("LinksFrom = %+v", from)
	}
	if err := cd.AddLink(&ServiceLink{Name: "SGF_to_Medical"}); err == nil {
		t.Error("duplicate link accepted")
	}
	if err := cd.AddLink(&ServiceLink{}); err == nil {
		t.Error("nameless link accepted")
	}
	if err := cd.RemoveLink("SGF_to_Medical"); err != nil {
		t.Fatal(err)
	}
	if err := cd.RemoveLink("SGF_to_Medical"); err == nil {
		t.Error("double remove accepted")
	}
}

func TestFindCoalitions(t *testing.T) {
	cd := newRBHCoDB(t)
	// The paper's query: "Find Coalitions With Information Medical Research"
	matches := cd.FindCoalitions("Medical Research")
	if len(matches) != 2 {
		t.Fatalf("matches = %+v", matches)
	}
	// Both coalitions fully match: RBH advertises information type
	// "Research and Medical" in each. Ties break alphabetically.
	if matches[0].Coalition != "Medical" || matches[0].Score != 1 ||
		matches[1].Coalition != "Research" || matches[1].Score != 1 {
		t.Errorf("matches = %+v", matches)
	}
	// Synonyms match.
	matches = cd.FindCoalitions("science")
	if len(matches) != 1 || matches[0].Coalition != "Research" {
		t.Errorf("synonym match = %+v", matches)
	}
	// Connectives are ignored.
	matches = cd.FindCoalitions("research AND medical")
	if len(matches) != 2 {
		t.Errorf("connective handling = %+v", matches)
	}
	if got := cd.FindCoalitions(""); got != nil {
		t.Errorf("empty topic matched %v", got)
	}
	if got := cd.FindCoalitions("quantum chromodynamics"); len(got) != 0 {
		t.Errorf("irrelevant topic matched %v", got)
	}
}

func TestFindLinks(t *testing.T) {
	cd := newRBHCoDB(t)
	// The paper's second walkthrough: "Medical Insurance" is not a local
	// coalition but the Medical coalition has a service link to it.
	matches := cd.FindLinks("Medical Insurance")
	if len(matches) == 0 {
		t.Fatal("no link matches")
	}
	if matches[0].Coalition != "Medical Insurance" || !strings.HasPrefix(matches[0].Via, "link:") {
		t.Errorf("link match = %+v", matches[0])
	}
}

func TestDissolveCoalition(t *testing.T) {
	cd := newRBHCoDB(t)
	if err := cd.DissolveCoalition("Research"); err != nil {
		t.Fatal(err)
	}
	members, _ := cd.Members("Research")
	if len(members) != 0 {
		t.Errorf("members after dissolve = %d", len(members))
	}
	desc, _, _ := cd.CoalitionInfo("Research")
	if desc != "(dissolved)" {
		t.Errorf("description = %q", desc)
	}
}

func TestDescriptorAnyRoundTrip(t *testing.T) {
	cd := newRBHCoDB(t)
	d, _ := cd.FindSource("Royal Brisbane Hospital")
	got, err := DescriptorFromAny(d.ToAny())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.Wrapper != d.Wrapper || len(got.Interface) != 2 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DescriptorFromAny(matchToAny(Match{}).Fields[0].Value); err == nil {
		t.Error("non-struct accepted")
	}
	l := &ServiceLink{Name: "n", From: "a", To: "b", InfoType: "t"}
	gl, err := LinkFromAny(l.ToAny())
	if err != nil || gl.Name != "n" || gl.To != "b" {
		t.Errorf("link round trip = %+v, %v", gl, err)
	}
}

// TestServantOverIIOP exercises the full meta-data layer path through the
// ORB, including dynamic advertisement from a remote node.
func TestServantOverIIOP(t *testing.T) {
	server := orb.New(orb.Options{Product: orb.Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	cd := newRBHCoDB(t)
	ior, err := server.Activate("CoDatabase/RBH", NewServant(cd))
	if err != nil {
		t.Fatal(err)
	}

	clientORB := orb.New(orb.Options{Product: orb.OrbixWeb, DisableColocation: true})
	defer clientORB.Shutdown()
	c := NewClient(clientORB.Resolve(ior))

	owner, err := c.Owner(context.Background())
	if err != nil || owner != "Royal Brisbane Hospital" {
		t.Fatalf("owner = %q, %v", owner, err)
	}
	matches, err := c.FindCoalitions(context.Background(), "Medical Research")
	if err != nil || len(matches) != 2 || matches[0].Coalition != "Medical" {
		t.Errorf("remote find = %+v, %v", matches, err)
	}
	links, err := c.FindLinks(context.Background(), "Medical Insurance")
	if err != nil || len(links) == 0 {
		t.Errorf("remote find links = %+v, %v", links, err)
	}
	cos, err := c.Coalitions(context.Background())
	if err != nil || len(cos) != 2 {
		t.Errorf("remote coalitions = %v, %v", cos, err)
	}
	mo, err := c.MemberOf(context.Background())
	if err != nil || len(mo) != 2 {
		t.Errorf("remote member_of = %v, %v", mo, err)
	}
	insts, err := c.Instances(context.Background(), "Research")
	if err != nil || len(insts) != 2 {
		t.Fatalf("remote instances = %v, %v", insts, err)
	}
	desc, _, err := c.CoalitionInfo(context.Background(), "Research")
	if err != nil || !strings.Contains(desc, "research") {
		t.Errorf("remote coalition info = %q, %v", desc, err)
	}
	ai, err := c.AccessInfo(context.Background(), "Royal Brisbane Hospital")
	if err != nil || ai.Location != "dba.icis.qut.edu.au" {
		t.Errorf("remote access info = %+v, %v", ai, err)
	}
	url, _, err := c.Document(context.Background(), "Royal Brisbane Hospital")
	if err != nil || url != "http://www.medicine.uq.edu.au/RBH" {
		t.Errorf("remote document = %q, %v", url, err)
	}
	all, err := c.Links(context.Background())
	if err != nil || len(all) != 2 {
		t.Errorf("remote links = %v, %v", all, err)
	}

	// Dynamic join from a remote node.
	if err := c.Advertise(context.Background(), "Medical", &SourceDescriptor{
		Name: "Prince Charles Hospital", InformationType: "Medical"}); err != nil {
		t.Fatal(err)
	}
	members, _ := cd.Members("Medical")
	if len(members) != 2 {
		t.Errorf("members after remote advertise = %d", len(members))
	}
	if err := c.AddLink(context.Background(), &ServiceLink{Name: "New_Link", FromKind: "coalition",
		From: "Medical", ToKind: "database", To: "Ambulance"}); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveMember(context.Background(), "Medical", "Prince Charles Hospital"); err != nil {
		t.Fatal(err)
	}
	// Errors surface as typed user exceptions.
	if _, err := c.Instances(context.Background(), "Nope"); err == nil {
		t.Error("unknown coalition accepted remotely")
	} else if ue, ok := err.(*orb.UserException); !ok || ue.Name != "CoDatabaseError" {
		t.Errorf("error shape = %v", err)
	}
	if _, err := c.AccessInfo(context.Background(), "Nobody"); err == nil {
		t.Error("unknown source accepted remotely")
	}
	if _, _, err := c.CoalitionInfo(context.Background(), "Nope"); err == nil {
		t.Error("unknown coalition info accepted remotely")
	}
}

func TestSubclassesOverIIOP(t *testing.T) {
	server := orb.New(orb.Options{Product: orb.VisiBroker})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	cd := newRBHCoDB(t)
	if err := cd.DefineCoalition("Cancer Research", "Research", "cancer"); err != nil {
		t.Fatal(err)
	}
	ior, _ := server.Activate("CoDatabase/RBH", NewServant(cd))
	c := NewClient(server.Resolve(ior)) // colocated path
	subs, err := c.SubCoalitions(context.Background(), "Research", true)
	if err != nil || len(subs) != 1 || subs[0] != "Cancer Research" {
		t.Errorf("remote subclasses = %v, %v", subs, err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	cd := newRBHCoDB(t)
	cd.SetOwnerDescriptor(&SourceDescriptor{Name: "Royal Brisbane Hospital", Engine: "Oracle"})
	data, err := cd.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner() != cd.Owner() {
		t.Errorf("owner = %q", got.Owner())
	}
	if len(got.Coalitions()) != 2 {
		t.Errorf("coalitions = %v", got.Coalitions())
	}
	members, err := got.Members("Research")
	if err != nil || len(members) != 2 {
		t.Fatalf("members = %v, %v", members, err)
	}
	// Exported interfaces survive (stored as JSON attributes).
	d, ok := got.FindSource("Royal Brisbane Hospital")
	if !ok {
		t.Fatal("descriptor lost")
	}
	if _, ok := d.Type("ResearchProjects"); !ok {
		t.Error("exported type lost in snapshot")
	}
	if len(got.Links()) != 2 {
		t.Errorf("links = %v", got.Links())
	}
	if od := got.OwnerDescriptor(); od == nil || od.Engine != "Oracle" {
		t.Errorf("owner descriptor = %+v", od)
	}
	// Restored co-database is fully usable: add more state.
	if err := got.DefineCoalition("New Topic", "", "post-restore"); err != nil {
		t.Fatal(err)
	}
	// Garbage is rejected.
	if _, err := Restore([]byte("{\"db\": \"nope\"}")); err == nil {
		t.Error("garbage restored")
	}
	if _, err := Restore([]byte("not json")); err == nil {
		t.Error("non-json restored")
	}
	// A plain oodb snapshot is not a co-database.
	other := New("x")
	plain, _ := other.DB().Snapshot()
	wrapped := []byte("{\"owner\":\"x\",\"db\":" + string(mustJSONArrayless(plain)) + "}")
	_ = wrapped // plain oodb snapshot IS a codb schema here; skip negative case
}

func mustJSONArrayless(b []byte) []byte { return b }

func TestParseInterfaceFromWebTassili(t *testing.T) {
	ets, err := ParseInterface(`
Type ResearchProjects {
    attribute string ResearchProjects.Title;
    function real Funding(string ResearchProjects.Title x, Predicate(x));
}
Type PatientHistory {
    function string Description(string Patient.Name, date History.DateRecorded);
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ets) != 2 {
		t.Fatalf("types = %d", len(ets))
	}
	fn, ok := ets[0].Function("Funding")
	if !ok || fn.Table != "ResearchProjects" || fn.ResultColumn != "Funding" || fn.ArgColumn != "Title" {
		t.Errorf("funding = %+v", fn)
	}
	fn, ok = ets[1].Function("Description")
	if !ok || fn.Table != "Patient" || fn.ArgColumn != "Name" {
		t.Errorf("description = %+v", fn)
	}
	// Function with no args cannot infer a relation.
	if _, err := ParseInterface("Type X { function int F(); }"); err == nil {
		t.Error("zero-arg function accepted")
	}
	if _, err := ParseInterface("garbage"); err == nil {
		t.Error("garbage accepted")
	}
	// Unqualified argument falls back to the type's own name as relation.
	ets, err = ParseInterface("Type Items { function int Price(string Name); }")
	if err != nil {
		t.Fatal(err)
	}
	if fn, _ := ets[0].Function("Price"); fn.Table != "Items" || fn.ArgColumn != "Name" {
		t.Errorf("fallback = %+v", fn)
	}
}
