package codb

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/idl"
	"repro/internal/orb"
)

// newWideCoDB builds a co-database with one coalition holding n members, so
// paged listings actually page.
func newWideCoDB(t *testing.T, n int) *CoDatabase {
	t.Helper()
	cd := New("Registry")
	if err := cd.DefineCoalition("Medical", "", "every hospital in the state"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		d := &SourceDescriptor{
			Name:            fmt.Sprintf("Hospital-%02d", i),
			InformationType: "Medical",
			Engine:          "Oracle",
		}
		if err := cd.AddMember("Medical", d); err != nil {
			t.Fatal(err)
		}
	}
	return cd
}

func startCoDBPair(t *testing.T, cd *CoDatabase, opts ServantOptions) (*Client, interface{ OpenCount() int }) {
	t.Helper()
	server := orb.New(orb.Options{Product: orb.Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Shutdown)
	servant, table := NewServantWith(cd, opts)
	ior, err := server.Activate("CoDatabase/Registry", servant)
	if err != nil {
		t.Fatal(err)
	}
	clientORB := orb.New(orb.Options{Product: orb.OrbixWeb, DisableColocation: true})
	t.Cleanup(clientORB.Shutdown)
	return NewClient(clientORB.Resolve(ior)), table
}

func TestInstancesPagedBatches(t *testing.T) {
	c, table := startCoDBPair(t, newWideCoDB(t, 7), ServantOptions{})
	ctx := context.Background()

	it, err := c.InstancesPaged(ctx, "Medical", 3)
	if err != nil {
		t.Fatal(err)
	}
	// 7 members over batch 3: a cursor is retained until the drain finishes.
	if table.OpenCount() != 1 {
		t.Fatalf("open cursors after open = %d", table.OpenCount())
	}
	var names []string
	for {
		d, err := it.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, d.Name)
	}
	if len(names) != 7 || names[0] != "Hospital-00" || names[6] != "Hospital-06" {
		t.Fatalf("paged names = %v", names)
	}
	if table.OpenCount() != 0 {
		t.Fatalf("open cursors after drain = %d", table.OpenCount())
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(ctx); err == nil {
		t.Fatal("Next on closed iterator succeeded")
	}
}

func TestInstancesPagedEarlyClose(t *testing.T) {
	c, table := startCoDBPair(t, newWideCoDB(t, 10), ServantOptions{})
	ctx := context.Background()

	it, err := c.InstancesPaged(ctx, "Medical", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if table.OpenCount() != 0 {
		t.Fatalf("open cursors after early Close = %d", table.OpenCount())
	}
}

func TestInstancesDelegatesThroughCursor(t *testing.T) {
	c, table := startCoDBPair(t, newWideCoDB(t, 5), ServantOptions{})
	insts, err := c.Instances(context.Background(), "Medical")
	if err != nil || len(insts) != 5 {
		t.Fatalf("instances = %v, %v", insts, err)
	}
	// Batch 0 means the whole listing travelled in the open reply.
	if table.OpenCount() != 0 {
		t.Fatalf("whole-listing retained %d cursors", table.OpenCount())
	}
	// Errors still surface as typed user exceptions.
	if _, err := c.Instances(context.Background(), "Nope"); err == nil {
		t.Fatal("unknown coalition accepted")
	} else if ue, ok := err.(*orb.UserException); !ok || ue.Name != "CoDatabaseError" {
		t.Fatalf("error shape = %v", err)
	}
}

func TestInstancesPagedCapFallsBack(t *testing.T) {
	c, table := startCoDBPair(t, newWideCoDB(t, 6), ServantOptions{CursorMaxOpen: 1})
	ctx := context.Background()

	held, err := c.InstancesPaged(ctx, "Medical", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()

	// The next open hits the cap; the client falls back to the whole listing.
	it, err := c.InstancesPaged(ctx, "Medical", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var n int
	for {
		if _, err := it.Next(ctx); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 6 {
		t.Fatalf("fallback drain = %d descriptors", n)
	}
	if table.OpenCount() != 1 {
		t.Fatalf("fallback opened a cursor: %d", table.OpenCount())
	}
}

// TestInstancesPagedLegacyPeerFallsBack points InstancesPaged at a servant
// that predates open_instances. BAD_OPERATION must route the client to the
// whole-listing op transparently.
func TestInstancesPagedLegacyPeerFallsBack(t *testing.T) {
	server := orb.New(orb.Options{Product: orb.Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Shutdown)

	cd := newWideCoDB(t, 4)
	legacyIDL := idl.MustParse(`
module WebFINDIT {
    interface LegacyCoDatabase {
        sequence<any> instances(in string coalition);
    };
};
`)[0]
	h := orb.NewHandler(legacyIDL)
	h.On("instances", func(args []idl.Any) (idl.Any, error) {
		members, err := cd.Members(args[0].Str)
		if err != nil {
			return idl.Null(), &orb.UserException{Name: "CoDatabaseError", Message: err.Error()}
		}
		out := make([]idl.Any, len(members))
		for i, m := range members {
			out[i] = m.ToAny()
		}
		return idl.Seq(out...), nil
	})
	ior, err := server.Activate("CoDatabase/legacy", h)
	if err != nil {
		t.Fatal(err)
	}
	clientORB := orb.New(orb.Options{Product: orb.OrbixWeb, DisableColocation: true})
	t.Cleanup(clientORB.Shutdown)
	c := NewClient(clientORB.Resolve(ior))

	insts, err := c.Instances(context.Background(), "Medical")
	if err != nil || len(insts) != 4 {
		t.Fatalf("legacy fallback = %v, %v", insts, err)
	}
	it, err := c.InstancesPaged(context.Background(), "Medical", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	d, err := it.Next(context.Background())
	if err != nil || d.Name != "Hospital-00" {
		t.Fatalf("legacy paged next = %v, %v", d, err)
	}
}

// TestServantCursorReaping proves the servant's table honours an injected
// clock end to end.
func TestServantCursorReaping(t *testing.T) {
	clock := time.Unix(5000, 0)
	c, table := startCoDBPair(t, newWideCoDB(t, 8), ServantOptions{
		CursorIdleTTL: time.Minute,
		Clock:         func() time.Time { return clock },
	})
	ctx := context.Background()
	it, err := c.InstancesPaged(ctx, "Medical", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	clock = clock.Add(2 * time.Minute)
	if n := table.(interface{ Reap() int }).Reap(); n != 1 {
		t.Fatalf("reap = %d", n)
	}
	// The next fetch finds the cursor gone.
	for {
		_, err = it.Next(ctx)
		if err != nil {
			break
		}
	}
	if err == io.EOF {
		t.Fatal("reaped cursor drained to EOF")
	}
	if ue, ok := err.(*orb.UserException); !ok || ue.Name != "CursorError" {
		t.Fatalf("fetch after reap = %v", err)
	}
	snap := table.(interface{ OpenCount() int }).OpenCount()
	if snap != 0 {
		t.Fatalf("open after reap = %d", snap)
	}
}
