package codb

import (
	"fmt"
	"strings"

	"repro/internal/wtl"
)

// FromTypeDecl converts a parsed WebTassili type declaration into an
// exported type, applying the paper's implicit conventions: an access
// routine projects the column named after the function from the relation
// named by its first argument's qualifier ("Funding(ResearchProjects.Title,
// ...)" reads ResearchProjects.Funding), and the predicate constrains the
// first argument's column.
func FromTypeDecl(td wtl.TypeDecl) (ExportedType, error) {
	et := ExportedType{Name: td.Name}
	for _, a := range td.Attributes {
		et.Attributes = append(et.Attributes, TypedMember{Type: a.Type, Name: a.Name})
	}
	for _, f := range td.Functions {
		ef := ExportedFunction{Name: f.Name, Returns: f.Returns, ResultColumn: f.Name}
		for _, a := range f.Args {
			ef.Args = append(ef.Args, TypedMember{Type: a.Type, Name: a.Name})
		}
		if len(f.Args) == 0 {
			return ExportedType{}, fmt.Errorf(
				"codb: function %s of type %s declares no arguments; cannot infer its relation", f.Name, td.Name)
		}
		table, col, ok := strings.Cut(f.Args[0].Name, ".")
		if !ok {
			// Unqualified argument: the relation is the type itself.
			table, col = td.Name, f.Args[0].Name
		}
		ef.Table = table
		ef.ArgColumn = col
		et.Functions = append(et.Functions, ef)
	}
	return et, nil
}

// ParseInterface parses a WebTassili interface text (one or more Type
// declarations) into exported types.
func ParseInterface(src string) ([]ExportedType, error) {
	decls, err := wtl.ParseTypeDecls(src)
	if err != nil {
		return nil, err
	}
	out := make([]ExportedType, 0, len(decls))
	for _, td := range decls {
		et, err := FromTypeDecl(td)
		if err != nil {
			return nil, err
		}
		out = append(out, et)
	}
	return out, nil
}
