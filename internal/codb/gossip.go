package codb

import (
	"context"

	"repro/internal/idl"
)

// This file holds the client side of the co-database's scale-out operations:
// the anti-entropy gossip exchange (gossip_pull / gossip_push) and the
// two-level discovery relay (relay_probe). The gossip payloads are opaque
// byte strings whose layout is owned by internal/gossip; this package only
// moves them across the ORB.

// RelayTarget names one sub-coalition member the coordinator wants probed:
// the member's federation name plus its co-database reference.
type RelayTarget struct {
	Name string
	Ref  string
}

// RelayResult is the representative's verdict for one relayed member, in the
// same position as the corresponding RelayTarget. Either ErrClass/Err are set
// (the probe failed, classified exactly as the coordinator's direct probe
// would classify it) or Coals/Links carry the member's discovery matches.
type RelayResult struct {
	Name     string
	ErrClass string // empty on success; "timeout"/"comm"/... on failure
	Err      string // human-readable detail for the trace
	Stale    bool   // the representative served an expired cache entry (degraded)
	Coals    []Match
	Links    []Match
}

func relayTargetToAny(t RelayTarget) idl.Any {
	return idl.Struct(
		idl.F("name", idl.String(t.Name)),
		idl.F("ref", idl.String(t.Ref)),
	)
}

// RelayTargetFromAny unpacks a relay target.
func RelayTargetFromAny(a idl.Any) RelayTarget {
	return RelayTarget{Name: a.GetString("name"), Ref: a.GetString("ref")}
}

func matchesToAny(ms []Match) idl.Any {
	out := make([]idl.Any, len(ms))
	for i, m := range ms {
		out[i] = matchToAny(m)
	}
	return idl.Seq(out...)
}

func matchesFromAny(a idl.Any) []Match {
	if len(a.Seq) == 0 {
		return nil
	}
	out := make([]Match, 0, len(a.Seq))
	for _, item := range a.Seq {
		out = append(out, MatchFromAny(item))
	}
	return out
}

func relayResultToAny(r RelayResult) idl.Any {
	return idl.Struct(
		idl.F("name", idl.String(r.Name)),
		idl.F("errclass", idl.String(r.ErrClass)),
		idl.F("err", idl.String(r.Err)),
		idl.F("stale", idl.Bool(r.Stale)),
		idl.F("coals", matchesToAny(r.Coals)),
		idl.F("links", matchesToAny(r.Links)),
	)
}

// RelayResultFromAny unpacks a relayed probe result.
func RelayResultFromAny(a idl.Any) RelayResult {
	coals, _ := a.Get("coals")
	links, _ := a.Get("links")
	stale, _ := a.Get("stale")
	return RelayResult{
		Name:     a.GetString("name"),
		ErrClass: a.GetString("errclass"),
		Err:      a.GetString("err"),
		Stale:    stale.Bool,
		Coals:    matchesFromAny(coals),
		Links:    matchesFromAny(links),
	}
}

// GossipPull runs the pull half of an anti-entropy exchange: ship our digest,
// receive the peer's delta (entries newer than the digest) and the peer's own
// digest. Idempotent by construction — a digest exchange mutates nothing.
func (c *Client) GossipPull(ctx context.Context, digest []byte) (delta, peerDigest []byte, err error) {
	v, err := c.ref.InvokeIdempotent(ctx, "gossip_pull", idl.String(string(digest)))
	if err != nil {
		return nil, nil, err
	}
	return []byte(v.GetString("delta")), []byte(v.GetString("digest")), nil
}

// GossipPush ships entries the peer is missing and returns how many it
// applied. Safe to retry: the merge-by-version rule makes a replayed push a
// no-op, so this rides the idempotent retry policy like the reads do.
func (c *Client) GossipPush(ctx context.Context, delta []byte) (int, error) {
	v, err := c.ref.InvokeIdempotent(ctx, "gossip_push", idl.String(string(delta)))
	if err != nil {
		return 0, err
	}
	return int(v.Int), nil
}

// RelayProbe asks a sub-coalition representative to probe members for topic on
// the coordinator's behalf, returning one result per member in order.
func (c *Client) RelayProbe(ctx context.Context, topic string, members []RelayTarget) ([]RelayResult, error) {
	targets := make([]idl.Any, len(members))
	for i, m := range members {
		targets[i] = relayTargetToAny(m)
	}
	v, err := c.ref.InvokeIdempotent(ctx, "relay_probe", idl.String(topic), idl.Seq(targets...))
	if err != nil {
		return nil, err
	}
	out := make([]RelayResult, 0, len(v.Seq))
	for _, item := range v.Seq {
		out = append(out, RelayResultFromAny(item))
	}
	return out, nil
}
