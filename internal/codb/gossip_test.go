package codb

import (
	"context"
	"errors"
	"testing"

	"repro/internal/orb"
)

// fakeExchanger is a canned gossip endpoint: it records what the servant
// hands it and answers with fixed payloads, so the test pins the opaque-byte
// plumbing without involving a real gossip store.
type fakeExchanger struct {
	gotDigest []byte
	gotDelta  []byte
	delta     []byte
	digest    []byte
	applied   int
	err       error
}

func (f *fakeExchanger) HandlePull(digest []byte) ([]byte, []byte, error) {
	f.gotDigest = append([]byte(nil), digest...)
	if f.err != nil {
		return nil, nil, f.err
	}
	return f.delta, f.digest, nil
}

func (f *fakeExchanger) HandlePush(delta []byte) (int, error) {
	f.gotDelta = append([]byte(nil), delta...)
	if f.err != nil {
		return 0, f.err
	}
	return f.applied, nil
}

// TestGossipOpsOverIIOP exercises gossip_pull, gossip_push and relay_probe
// through the ORB: opaque payloads must cross untouched in both directions,
// and relay results must round-trip every field (error class, staleness,
// match lists) positionally.
func TestGossipOpsOverIIOP(t *testing.T) {
	ex := &fakeExchanger{delta: []byte("\x00DELTA\xff"), digest: []byte("DIGEST"), applied: 3}
	var relayTopic string
	var relayTargets []RelayTarget
	c, _ := startCoDBPair(t, newWideCoDB(t, 3), ServantOptions{
		Gossip: ex,
		Relay: func(ctx context.Context, topic string, members []RelayTarget) []RelayResult {
			relayTopic, relayTargets = topic, members
			return []RelayResult{
				{Name: members[0].Name, Stale: true, Coals: []Match{
					{Coalition: "Medical", Score: 0.5, Via: "local", CoDBRef: "IOR:abc"},
				}, Links: []Match{
					{Coalition: "Insurance", Score: 1, Via: "link:m2i"},
				}},
				{Name: members[1].Name, ErrClass: "comm", Err: "peer down"},
			}
		},
	})
	ctx := context.Background()

	delta, digest, err := c.GossipPull(ctx, []byte("MY-DIGEST"))
	if err != nil || string(delta) != "\x00DELTA\xff" || string(digest) != "DIGEST" {
		t.Fatalf("GossipPull = %q, %q, %v", delta, digest, err)
	}
	if string(ex.gotDigest) != "MY-DIGEST" {
		t.Fatalf("servant saw digest %q", ex.gotDigest)
	}

	n, err := c.GossipPush(ctx, []byte("PUSHED"))
	if err != nil || n != 3 {
		t.Fatalf("GossipPush = %d, %v", n, err)
	}
	if string(ex.gotDelta) != "PUSHED" {
		t.Fatalf("servant saw delta %q", ex.gotDelta)
	}

	results, err := c.RelayProbe(ctx, "cancer research", []RelayTarget{
		{Name: "A", Ref: "IOR:a"}, {Name: "B", Ref: "IOR:b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if relayTopic != "cancer research" || len(relayTargets) != 2 ||
		relayTargets[0] != (RelayTarget{Name: "A", Ref: "IOR:a"}) ||
		relayTargets[1] != (RelayTarget{Name: "B", Ref: "IOR:b"}) {
		t.Fatalf("servant saw topic %q targets %+v", relayTopic, relayTargets)
	}
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	a, b := results[0], results[1]
	if a.Name != "A" || !a.Stale || a.ErrClass != "" ||
		len(a.Coals) != 1 || a.Coals[0] != (Match{Coalition: "Medical", Score: 0.5, Via: "local", CoDBRef: "IOR:abc"}) ||
		len(a.Links) != 1 || a.Links[0].Coalition != "Insurance" {
		t.Fatalf("result A did not round-trip: %+v", a)
	}
	if b.Name != "B" || b.ErrClass != "comm" || b.Err != "peer down" || b.Stale || len(b.Coals) != 0 {
		t.Fatalf("result B did not round-trip: %+v", b)
	}
}

// TestGossipOpsErrorsAndCompat pins the failure contract: a servant whose
// exchanger errors surfaces the failure to the client, and a servant built
// without gossip or relay hooks — a pre-gossip node — answers BAD_OPERATION,
// which callers treat like a dead candidate.
func TestGossipOpsErrorsAndCompat(t *testing.T) {
	ctx := context.Background()

	failing, _ := startCoDBPair(t, newWideCoDB(t, 3), ServantOptions{
		Gossip: &fakeExchanger{err: errors.New("store sealed")},
	})
	if _, _, err := failing.GossipPull(ctx, nil); err == nil {
		t.Fatal("pull against failing exchanger succeeded")
	}
	if _, err := failing.GossipPush(ctx, []byte("x")); err == nil {
		t.Fatal("push against failing exchanger succeeded")
	}

	legacy, _ := startCoDBPair(t, newWideCoDB(t, 3), ServantOptions{})
	var se *orb.SystemException
	if _, _, err := legacy.GossipPull(ctx, nil); !errors.As(err, &se) || se.Name != orb.ExcBadOperation {
		t.Fatalf("pull on pre-gossip servant = %v, want BAD_OPERATION", err)
	}
	if _, err := legacy.RelayProbe(ctx, "t", []RelayTarget{{Name: "A"}}); !errors.As(err, &se) || se.Name != orb.ExcBadOperation {
		t.Fatalf("relay on pre-gossip servant = %v, want BAD_OPERATION", err)
	}
}
