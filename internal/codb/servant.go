package codb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/cursor"
	"repro/internal/idl"
	"repro/internal/orb"
	"repro/internal/trace"
)

// IDL is the CORBA interface of a co-database server: the meta-data layer
// operations the query layer uses to educate users and resolve queries.
var IDL = idl.MustParse(`
module WebFINDIT {
    interface CoDatabase {
        string owner();
        unsigned long long version();
        sequence<any> find_coalitions(in string topic);
        sequence<any> find_links(in string topic);
        sequence<any> coalitions();
        sequence<any> member_of();
        sequence<any> subclasses(in string coalition, in boolean direct);
        sequence<any> instances(in string coalition);
        any open_instances(in string coalition, in long long batch);
        any fetch_cursor(in long long id);
        void close_cursor(in long long id);
        any coalition_info(in string coalition);
        any access_info(in string source);
        any document(in string source);
        sequence<any> links();
        void define_coalition(in string name, in string parent, in string description);
        void advertise(in string coalition, in any descriptor);
        void add_link(in any link);
        void remove_member(in string coalition, in string source);
        any gossip_pull(in string digest);
        long long gossip_push(in string delta);
        sequence<any> relay_probe(in string topic, in sequence<any> members);
    };
};
`)[0]

func matchToAny(m Match) idl.Any {
	return idl.Struct(
		idl.F("coalition", idl.String(m.Coalition)),
		idl.F("score", idl.Double(m.Score)),
		idl.F("via", idl.String(m.Via)),
		idl.F("codb_ref", idl.String(m.CoDBRef)),
	)
}

// MatchFromAny unpacks a discovery match.
func MatchFromAny(a idl.Any) Match {
	score, _ := a.Get("score")
	return Match{
		Coalition: a.GetString("coalition"),
		Score:     score.Float,
		Via:       a.GetString("via"),
		CoDBRef:   a.GetString("codb_ref"),
	}
}

// ServantOptions tune the servant's instance-cursor table and optional
// scale-out hooks; the zero value selects the cursor package defaults and
// leaves the gossip and relay operations unregistered (callers then get
// BAD_OPERATION, the documented "peer predates the protocol" signal).
type ServantOptions struct {
	CursorMaxOpen int              // open-cursor cap for paged instance listings
	CursorIdleTTL time.Duration    // idle reap threshold
	Clock         func() time.Time // nil = time.Now (simulations inject one)

	// Gossip serves the anti-entropy operations (gossip_pull/gossip_push)
	// when non-nil — in practice the node's *gossip.Agent.
	Gossip GossipExchanger
	// Relay serves relay_probe when non-nil: a sub-coalition representative
	// probes the given members on the coordinator's behalf and returns one
	// result per member, in order.
	Relay func(ctx context.Context, topic string, members []RelayTarget) []RelayResult
}

// GossipExchanger is the servant-side surface of the anti-entropy protocol,
// implemented by gossip.Agent. Payloads are opaque to this package: the
// gossip wire codec owns their layout.
type GossipExchanger interface {
	HandlePull(digest []byte) (delta, selfDigest []byte, err error)
	HandlePush(delta []byte) (int, error)
}

// NewServant exposes a co-database through the ORB with default cursor
// options.
func NewServant(cd *CoDatabase) orb.Servant {
	s, _ := NewServantWith(cd, ServantOptions{})
	return s
}

// NewServantWith is NewServant with cursor options; it also returns the
// servant's cursor table so the node can publish its stats.
func NewServantWith(cd *CoDatabase, opts ServantOptions) (orb.Servant, *cursor.Table) {
	userErr := func(err error) error {
		return &orb.UserException{Name: "CoDatabaseError", Message: err.Error()}
	}
	cursors := cursor.NewTable(opts.CursorMaxOpen, opts.CursorIdleTTL, opts.Clock)
	h := orb.NewHandler(IDL)
	// on wraps each operation in a "codb.<op>" span tagged with the owning
	// database, so metadata lookups appear in the trace of the query that
	// issued them and aggregate per-operation in the tracer's metrics.
	on := func(op string, fn orb.OpFunc) {
		h.OnCtx(op, func(ctx context.Context, args []idl.Any) (idl.Any, error) {
			_, sp := trace.StartSpan(ctx, "codb."+op)
			sp.SetAttr("owner", cd.Owner())
			res, err := fn(args)
			sp.End(err)
			return res, err
		})
	}
	on("owner", func(args []idl.Any) (idl.Any, error) {
		return idl.String(cd.Owner()), nil
	})
	on("version", func(args []idl.Any) (idl.Any, error) {
		return idl.Any{Kind: idl.KindULongLong, Int: int64(cd.Version())}, nil
	})
	on("find_coalitions", func(args []idl.Any) (idl.Any, error) {
		matches := cd.FindCoalitions(args[0].Str)
		out := make([]idl.Any, len(matches))
		for i, m := range matches {
			out[i] = matchToAny(m)
		}
		return idl.Seq(out...), nil
	})
	on("find_links", func(args []idl.Any) (idl.Any, error) {
		matches := cd.FindLinks(args[0].Str)
		out := make([]idl.Any, len(matches))
		for i, m := range matches {
			out[i] = matchToAny(m)
		}
		return idl.Seq(out...), nil
	})
	on("coalitions", func(args []idl.Any) (idl.Any, error) {
		return idl.Strings(cd.Coalitions()), nil
	})
	on("member_of", func(args []idl.Any) (idl.Any, error) {
		return idl.Strings(cd.MemberOf()), nil
	})
	on("subclasses", func(args []idl.Any) (idl.Any, error) {
		subs, err := cd.SubCoalitions(args[0].Str, args[1].Bool)
		if err != nil {
			return idl.Null(), userErr(err)
		}
		return idl.Strings(subs), nil
	})
	on("instances", func(args []idl.Any) (idl.Any, error) {
		members, err := cd.Members(args[0].Str)
		if err != nil {
			return idl.Null(), userErr(err)
		}
		out := make([]idl.Any, len(members))
		for i, m := range members {
			out[i] = m.ToAny()
		}
		return idl.Seq(out...), nil
	})
	on("open_instances", func(args []idl.Any) (idl.Any, error) {
		members, err := cd.Members(args[0].Str)
		if err != nil {
			return idl.Null(), userErr(err)
		}
		items := make([]idl.Any, len(members))
		for i, m := range members {
			items[i] = m.ToAny()
		}
		id, first, done, err := cursors.Open(items, int(args[1].Int))
		if err != nil {
			// ErrTooMany crosses as a CursorError; clients fall back to the
			// whole-result instances op.
			return idl.Null(), &orb.UserException{Name: "CursorError", Message: err.Error()}
		}
		return idl.Struct(
			idl.F("id", idl.Long(id)),
			idl.F("items", idl.Seq(first...)),
			idl.F("done", idl.Bool(done)),
		), nil
	})
	on("fetch_cursor", func(args []idl.Any) (idl.Any, error) {
		batch, done, err := cursors.Fetch(args[0].Int)
		if err != nil {
			return idl.Null(), &orb.UserException{Name: "CursorError", Message: err.Error()}
		}
		return idl.Struct(
			idl.F("items", idl.Seq(batch...)),
			idl.F("done", idl.Bool(done)),
		), nil
	})
	on("close_cursor", func(args []idl.Any) (idl.Any, error) {
		cursors.Close(args[0].Int)
		return idl.Any{Kind: idl.KindVoid}, nil
	})
	on("coalition_info", func(args []idl.Any) (idl.Any, error) {
		desc, syns, ok := cd.CoalitionInfo(args[0].Str)
		if !ok {
			return idl.Null(), userErr(fmt.Errorf("codb: no coalition %s known here", args[0].Str))
		}
		return idl.Struct(
			idl.F("name", idl.String(args[0].Str)),
			idl.F("description", idl.String(desc)),
			idl.F("synonyms", idl.Strings(syns)),
		), nil
	})
	on("access_info", func(args []idl.Any) (idl.Any, error) {
		d, ok := cd.FindSource(args[0].Str)
		if !ok {
			return idl.Null(), userErr(fmt.Errorf("codb: no source %s known here", args[0].Str))
		}
		return d.ToAny(), nil
	})
	on("document", func(args []idl.Any) (idl.Any, error) {
		d, ok := cd.FindSource(args[0].Str)
		if !ok {
			return idl.Null(), userErr(fmt.Errorf("codb: no source %s known here", args[0].Str))
		}
		return idl.Struct(
			idl.F("name", idl.String(d.Name)),
			idl.F("documentation", idl.String(d.Documentation)),
			idl.F("html", idl.String(d.DocumentHTML)),
		), nil
	})
	on("links", func(args []idl.Any) (idl.Any, error) {
		links := cd.Links()
		out := make([]idl.Any, len(links))
		for i, l := range links {
			out[i] = l.ToAny()
		}
		return idl.Seq(out...), nil
	})
	on("define_coalition", func(args []idl.Any) (idl.Any, error) {
		if err := cd.DefineCoalition(args[0].Str, args[1].Str, args[2].Str); err != nil {
			return idl.Null(), userErr(err)
		}
		return idl.Any{Kind: idl.KindVoid}, nil
	})
	on("advertise", func(args []idl.Any) (idl.Any, error) {
		d, err := DescriptorFromAny(args[1])
		if err != nil {
			return idl.Null(), userErr(err)
		}
		if err := cd.AddMember(args[0].Str, d); err != nil {
			return idl.Null(), userErr(err)
		}
		return idl.Any{Kind: idl.KindVoid}, nil
	})
	on("add_link", func(args []idl.Any) (idl.Any, error) {
		l, err := LinkFromAny(args[0])
		if err != nil {
			return idl.Null(), userErr(err)
		}
		if err := cd.AddLink(l); err != nil {
			return idl.Null(), userErr(err)
		}
		return idl.Any{Kind: idl.KindVoid}, nil
	})
	on("remove_member", func(args []idl.Any) (idl.Any, error) {
		if err := cd.RemoveMember(args[0].Str, args[1].Str); err != nil {
			return idl.Null(), userErr(err)
		}
		return idl.Any{Kind: idl.KindVoid}, nil
	})
	// The gossip and relay operations are declared in the IDL but registered
	// only when the node runs the corresponding machinery, so a node with
	// gossip disabled answers exactly like a pre-gossip peer: BAD_OPERATION.
	if opts.Gossip != nil {
		on("gossip_pull", func(args []idl.Any) (idl.Any, error) {
			delta, digest, err := opts.Gossip.HandlePull([]byte(args[0].Str))
			if err != nil {
				return idl.Null(), userErr(err)
			}
			return idl.Struct(
				idl.F("delta", idl.String(string(delta))),
				idl.F("digest", idl.String(string(digest))),
			), nil
		})
		on("gossip_push", func(args []idl.Any) (idl.Any, error) {
			applied, err := opts.Gossip.HandlePush([]byte(args[0].Str))
			if err != nil {
				return idl.Null(), userErr(err)
			}
			return idl.Long(int64(applied)), nil
		})
	}
	if opts.Relay != nil {
		h.OnCtx("relay_probe", func(ctx context.Context, args []idl.Any) (idl.Any, error) {
			_, sp := trace.StartSpan(ctx, "codb.relay_probe")
			sp.SetAttr("owner", cd.Owner())
			members := make([]RelayTarget, 0, len(args[1].Seq))
			for _, m := range args[1].Seq {
				members = append(members, RelayTargetFromAny(m))
			}
			results := opts.Relay(ctx, args[0].Str, members)
			out := make([]idl.Any, len(results))
			for i, r := range results {
				out[i] = relayResultToAny(r)
			}
			sp.End(nil)
			return idl.Seq(out...), nil
		})
	}
	return h, cursors
}

// Client is a typed client for a (possibly remote) co-database servant. The
// query processor works exclusively through this interface, so local and
// remote metadata are handled identically. A Client is stateless over its
// object reference and safe for concurrent use: the query layer's parallel
// member fan-out reuses one Client across many in-flight calls, which the
// ORB pipelines over a shared multiplexed IIOP connection.
type Client struct {
	ref *orb.ObjectRef
}

// NewClient wraps an object reference to a co-database servant.
func NewClient(ref *orb.ObjectRef) *Client { return &Client{ref: ref} }

// Ref returns the underlying object reference.
func (c *Client) Ref() *orb.ObjectRef { return c.ref }

// Owner asks for the owning database's name.
//
// All Client methods are context-first: the context carries trace parentage
// across the hop and its deadline bounds the exchange. Read-only metadata
// operations are idempotent, so transport failures retry under the client
// ORB's retry policy; mutations (DefineCoalition, Advertise, AddLink,
// RemoveMember) make exactly one attempt.
func (c *Client) Owner(ctx context.Context) (string, error) {
	v, err := c.ref.InvokeIdempotent(ctx, "owner")
	if err != nil {
		return "", err
	}
	return v.Str, nil
}

func (c *Client) matches(ctx context.Context, op, topic string) ([]Match, error) {
	v, err := c.ref.InvokeIdempotent(ctx, op, idl.String(topic))
	if err != nil {
		return nil, err
	}
	out := make([]Match, 0, len(v.Seq))
	for _, item := range v.Seq {
		out = append(out, MatchFromAny(item))
	}
	return out, nil
}

// Version returns the remote co-database's monotonic schema version. It is
// the cheapest possible metadata exchange (an integer), which is what makes
// cache revalidation worthwhile against refetching member lists.
func (c *Client) Version(ctx context.Context) (uint64, error) {
	v, err := c.ref.InvokeIdempotent(ctx, "version")
	if err != nil {
		return 0, err
	}
	return uint64(v.Int), nil
}

// FindCoalitions scores the remote co-database's coalitions against topic.
func (c *Client) FindCoalitions(ctx context.Context, topic string) ([]Match, error) {
	return c.matches(ctx, "find_coalitions", topic)
}

// FindLinks scores the remote co-database's service links against topic.
func (c *Client) FindLinks(ctx context.Context, topic string) ([]Match, error) {
	return c.matches(ctx, "find_links", topic)
}

// Coalitions lists the remote co-database's coalition classes.
func (c *Client) Coalitions(ctx context.Context) ([]string, error) {
	v, err := c.ref.InvokeIdempotent(ctx, "coalitions")
	if err != nil {
		return nil, err
	}
	return v.StringSlice(), nil
}

// MemberOf lists the coalitions the remote owner belongs to.
func (c *Client) MemberOf(ctx context.Context) ([]string, error) {
	v, err := c.ref.InvokeIdempotent(ctx, "member_of")
	if err != nil {
		return nil, err
	}
	return v.StringSlice(), nil
}

// SubCoalitions lists sub-coalitions of a coalition.
func (c *Client) SubCoalitions(ctx context.Context, coalition string, direct bool) ([]string, error) {
	v, err := c.ref.InvokeIdempotent(ctx, "subclasses", idl.String(coalition), idl.Bool(direct))
	if err != nil {
		return nil, err
	}
	return v.StringSlice(), nil
}

// Instances lists a coalition's member descriptors. It delegates to
// InstancesPaged (batch 0: the whole listing in the open round trip, so the
// cost profile is unchanged) and drains the iterator. Prefer InstancesPaged
// for coalitions that may be large: Instances buffers every descriptor.
func (c *Client) Instances(ctx context.Context, coalition string) ([]*SourceDescriptor, error) {
	it, err := c.InstancesPaged(ctx, coalition, 0)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []*SourceDescriptor
	for {
		d, err := it.Next(ctx)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
}

// instancesWhole is the pre-cursor whole-listing op, kept as the fallback for
// peers that predate open_instances.
func (c *Client) instancesWhole(ctx context.Context, coalition string) ([]*SourceDescriptor, error) {
	v, err := c.ref.InvokeIdempotent(ctx, "instances", idl.String(coalition))
	if err != nil {
		return nil, err
	}
	out := make([]*SourceDescriptor, 0, len(v.Seq))
	for _, item := range v.Seq {
		d, err := DescriptorFromAny(item)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// instanceCursorFallback reports an error that means "use the whole-listing
// op instead": the peer predates open_instances (BAD_OPERATION) or refuses
// to open another cursor (the table's cap).
func instanceCursorFallback(err error) bool {
	var se *orb.SystemException
	if errors.As(err, &se) && se.Name == orb.ExcBadOperation {
		return true
	}
	var ue *orb.UserException
	return errors.As(err, &ue) && ue.Name == "CursorError" &&
		strings.Contains(ue.Message, "too many open cursors")
}

// InstancesPaged lists a coalition's member descriptors through the cursor
// protocol, moving at most batch descriptors per round trip (batch <= 0
// fetches everything in the open round trip). The caller must Close the
// iterator. Peers that predate the protocol — and servers at their cursor
// cap — are handled by falling back to the whole-listing op behind a
// materialized iterator.
func (c *Client) InstancesPaged(ctx context.Context, coalition string, batch int) (*InstanceIter, error) {
	a, err := c.ref.InvokeIdempotent(ctx, "open_instances",
		idl.String(coalition), idl.Long(int64(batch)))
	if err != nil {
		if instanceCursorFallback(err) {
			whole, werr := c.instancesWhole(ctx, coalition)
			if werr != nil {
				return nil, werr
			}
			return &InstanceIter{whole: whole, done: true}, nil
		}
		return nil, err
	}
	items, _ := a.Get("items")
	done, _ := a.Get("done")
	return &InstanceIter{
		client: c,
		id:     a.GetInt("id"),
		buf:    items.Seq,
		done:   done.Bool,
	}, nil
}

// InstanceIter pulls batches of member descriptors from a server-side
// cursor. One batch is buffered at a time; the next fetch is only issued
// once the buffer drains.
type InstanceIter struct {
	client *Client
	id     int64
	buf    []idl.Any
	pos    int
	done   bool
	closed bool

	// whole backs the fallback path for peers without the cursor protocol.
	whole []*SourceDescriptor
}

// Next returns the next descriptor or io.EOF. The context bounds one fetch
// round trip, not the whole drain.
func (it *InstanceIter) Next(ctx context.Context) (*SourceDescriptor, error) {
	if it.closed {
		return nil, fmt.Errorf("codb: instance iterator is closed")
	}
	if it.whole != nil || (it.done && it.client == nil) {
		if it.pos >= len(it.whole) {
			return nil, io.EOF
		}
		d := it.whole[it.pos]
		it.pos++
		return d, nil
	}
	for it.pos >= len(it.buf) {
		if it.done {
			return nil, io.EOF
		}
		a, err := it.client.ref.InvokeIdempotent(ctx, "fetch_cursor", idl.Long(it.id))
		if err != nil {
			return nil, err
		}
		items, _ := a.Get("items")
		done, _ := a.Get("done")
		it.buf, it.pos, it.done = items.Seq, 0, done.Bool
	}
	item := it.buf[it.pos]
	it.pos++
	return DescriptorFromAny(item)
}

// Close releases the server-side cursor. Like the gateway's cursor iterator
// it detaches from the caller's context: cancelling a listing is exactly
// when the close RPC must still go out.
func (it *InstanceIter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	if it.done || it.id == 0 || it.client == nil {
		return nil // exhausted cursors are already gone server-side
	}
	ctx, cancel := context.WithTimeout(context.Background(), closeInstancesTimeout)
	defer cancel()
	_, err := it.client.ref.InvokeIdempotent(ctx, "close_cursor", idl.Long(it.id))
	return err
}

// closeInstancesTimeout bounds the detached close_cursor round trip. Losing
// the race just means the idle reaper collects the cursor later.
const closeInstancesTimeout = 2 * time.Second

// CoalitionInfo fetches a coalition's description and synonyms.
func (c *Client) CoalitionInfo(ctx context.Context, coalition string) (string, []string, error) {
	v, err := c.ref.InvokeIdempotent(ctx, "coalition_info", idl.String(coalition))
	if err != nil {
		return "", nil, err
	}
	syns, _ := v.Get("synonyms")
	return v.GetString("description"), syns.StringSlice(), nil
}

// AccessInfo fetches a source descriptor by database name.
func (c *Client) AccessInfo(ctx context.Context, source string) (*SourceDescriptor, error) {
	v, err := c.ref.InvokeIdempotent(ctx, "access_info", idl.String(source))
	if err != nil {
		return nil, err
	}
	return DescriptorFromAny(v)
}

// Document fetches a source's documentation URL and HTML body.
func (c *Client) Document(ctx context.Context, source string) (url, html string, err error) {
	v, err := c.ref.InvokeIdempotent(ctx, "document", idl.String(source))
	if err != nil {
		return "", "", err
	}
	return v.GetString("documentation"), v.GetString("html"), nil
}

// Links lists the remote co-database's service links.
func (c *Client) Links(ctx context.Context) ([]*ServiceLink, error) {
	v, err := c.ref.InvokeIdempotent(ctx, "links")
	if err != nil {
		return nil, err
	}
	out := make([]*ServiceLink, 0, len(v.Seq))
	for _, item := range v.Seq {
		l, err := LinkFromAny(item)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

// DefineCoalition declares a coalition class remotely.
func (c *Client) DefineCoalition(ctx context.Context, name, parent, description string) error {
	_, err := c.ref.InvokeCtx(ctx, "define_coalition",
		idl.String(name), idl.String(parent), idl.String(description))
	return err
}

// Advertise adds a member descriptor to a remote coalition (dynamic join).
func (c *Client) Advertise(ctx context.Context, coalition string, d *SourceDescriptor) error {
	_, err := c.ref.InvokeCtx(ctx, "advertise", idl.String(coalition), d.ToAny())
	return err
}

// AddLink records a service link remotely.
func (c *Client) AddLink(ctx context.Context, l *ServiceLink) error {
	_, err := c.ref.InvokeCtx(ctx, "add_link", l.ToAny())
	return err
}

// RemoveMember withdraws a database from a remote coalition.
func (c *Client) RemoveMember(ctx context.Context, coalition, source string) error {
	_, err := c.ref.InvokeCtx(ctx, "remove_member", idl.String(coalition), idl.String(source))
	return err
}
