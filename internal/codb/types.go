// Package codb implements WebFINDIT co-databases: the object-oriented
// metadata database attached to every participating database (the paper's
// meta-data layer). A co-database stores the coalition class lattice, the
// service-link sub-schemas, and the source descriptors (information type,
// documentation, location, wrapper, exported interface) of the databases it
// knows about. It is exposed to the federation as a CORBA servant.
package codb

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/idl"
)

// TypedMember is one attribute or function argument of an exported type,
// e.g. "string Patient.Name".
type TypedMember struct {
	Type string `json:"type"` // "string", "int", "real", "date"
	Name string `json:"name"` // qualified "Relation.Column" name
}

// ExportedFunction is an access routine of an exported type. The paper's
// example: Funding(ResearchProjects.Title x, Predicate(x)) translates to
// SELECT a.Funding FROM ResearchProjects a WHERE <predicate>. Table,
// ResultColumn and ArgColumn capture that translation.
type ExportedFunction struct {
	Name         string        `json:"name"`
	Returns      string        `json:"returns"`
	Args         []TypedMember `json:"args,omitempty"`
	Table        string        `json:"table"`         // underlying relation
	ResultColumn string        `json:"result_column"` // projected column
	ArgColumn    string        `json:"arg_column"`    // column the predicate constrains
}

// ExportedType is one type of a database's exported interface, e.g. the
// paper's PatientHistory or ResearchProjects.
type ExportedType struct {
	Name        string             `json:"name"`
	Description string             `json:"description,omitempty"`
	Attributes  []TypedMember      `json:"attributes,omitempty"`
	Functions   []ExportedFunction `json:"functions,omitempty"`
}

// Function finds a function by name (case-insensitive).
func (t *ExportedType) Function(name string) (*ExportedFunction, bool) {
	for i := range t.Functions {
		if strings.EqualFold(t.Functions[i].Name, name) {
			return &t.Functions[i], true
		}
	}
	return nil, false
}

// Declaration renders the exported type in the paper's WebTassili syntax.
func (t *ExportedType) Declaration() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Type %s {\n", t.Name)
	for _, a := range t.Attributes {
		fmt.Fprintf(&b, "    attribute %s %s;\n", a.Type, a.Name)
	}
	for _, f := range t.Functions {
		args := make([]string, 0, len(f.Args)+1)
		for _, a := range f.Args {
			args = append(args, a.Type+" "+a.Name)
		}
		args = append(args, "Predicate(x)")
		fmt.Fprintf(&b, "    function %s %s(%s);\n", f.Returns, f.Name, strings.Join(args, ", "))
	}
	b.WriteString("}")
	return b.String()
}

// SourceDescriptor advertises one database in the federation, carrying
// exactly the fields of the paper's "Information Source" advertisement
// (§2.2) plus the machine-usable access fields the reproduction needs.
type SourceDescriptor struct {
	Name            string         `json:"name"`
	InformationType string         `json:"information_type"`
	Documentation   string         `json:"documentation"`       // URL
	DocumentHTML    string         `json:"document_html"`       // served document body
	Location        string         `json:"location"`            // host of the ISI
	Wrapper         string         `json:"wrapper"`             // e.g. "WebTassiliOracle"
	DSN             string         `json:"dsn"`                 // gateway DSN of the source
	ISIRef          string         `json:"isi_ref"`             // stringified IOR of the ISI servant
	CoDBRef         string         `json:"codb_ref"`            // stringified IOR of the owner's co-database servant
	Engine          string         `json:"engine"`              // DBMS product
	ORB             string         `json:"orb"`                 // hosting ORB product
	Interface       []ExportedType `json:"interface,omitempty"` // exported types
}

// Type finds an exported type by name (case-insensitive).
func (d *SourceDescriptor) Type(name string) (*ExportedType, bool) {
	for i := range d.Interface {
		if strings.EqualFold(d.Interface[i].Name, name) {
			return &d.Interface[i], true
		}
	}
	return nil, false
}

// InterfaceNames lists the exported type names.
func (d *SourceDescriptor) InterfaceNames() []string {
	out := make([]string, len(d.Interface))
	for i, t := range d.Interface {
		out[i] = t.Name
	}
	return out
}

// Advertisement renders the descriptor in the paper's advertisement syntax.
func (d *SourceDescriptor) Advertisement() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Information Source %s {\n", d.Name)
	fmt.Fprintf(&b, "    Information Type  %q\n", d.InformationType)
	fmt.Fprintf(&b, "    Documentation     %q\n", d.Documentation)
	fmt.Fprintf(&b, "    Location          %q\n", d.Location)
	fmt.Fprintf(&b, "    Wrapper           %q\n", d.Wrapper)
	fmt.Fprintf(&b, "    Interface         %s\n", strings.Join(d.InterfaceNames(), ", "))
	b.WriteString("}")
	return b.String()
}

// marshalInterface serialises exported types for storage in the OO database.
func marshalInterface(ts []ExportedType) string {
	data, err := json.Marshal(ts)
	if err != nil {
		return "[]"
	}
	return string(data)
}

func unmarshalInterface(s string) []ExportedType {
	if s == "" {
		return nil
	}
	var ts []ExportedType
	if err := json.Unmarshal([]byte(s), &ts); err != nil {
		return nil
	}
	return ts
}

// ToAny packs a descriptor for ORB transport.
func (d *SourceDescriptor) ToAny() idl.Any {
	return idl.Struct(
		idl.F("name", idl.String(d.Name)),
		idl.F("information_type", idl.String(d.InformationType)),
		idl.F("documentation", idl.String(d.Documentation)),
		idl.F("document_html", idl.String(d.DocumentHTML)),
		idl.F("location", idl.String(d.Location)),
		idl.F("wrapper", idl.String(d.Wrapper)),
		idl.F("dsn", idl.String(d.DSN)),
		idl.F("isi_ref", idl.String(d.ISIRef)),
		idl.F("codb_ref", idl.String(d.CoDBRef)),
		idl.F("engine", idl.String(d.Engine)),
		idl.F("orb", idl.String(d.ORB)),
		idl.F("interface", idl.String(marshalInterface(d.Interface))),
	)
}

// DescriptorFromAny unpacks a descriptor shipped by ToAny.
func DescriptorFromAny(a idl.Any) (*SourceDescriptor, error) {
	if a.Kind != idl.KindStruct {
		return nil, fmt.Errorf("codb: descriptor payload is %s, not struct", a.Kind)
	}
	return &SourceDescriptor{
		Name:            a.GetString("name"),
		InformationType: a.GetString("information_type"),
		Documentation:   a.GetString("documentation"),
		DocumentHTML:    a.GetString("document_html"),
		Location:        a.GetString("location"),
		Wrapper:         a.GetString("wrapper"),
		DSN:             a.GetString("dsn"),
		ISIRef:          a.GetString("isi_ref"),
		CoDBRef:         a.GetString("codb_ref"),
		Engine:          a.GetString("engine"),
		ORB:             a.GetString("orb"),
		Interface:       unmarshalInterface(a.GetString("interface")),
	}, nil
}

// ServiceLink is one sharing agreement. The paper distinguishes three types
// (coalition-coalition, database-database, coalition-database); Kind fields
// carry "coalition" or "database".
type ServiceLink struct {
	Name        string `json:"name"` // e.g. "ATO_to_Medical"
	FromKind    string `json:"from_kind"`
	From        string `json:"from"`
	ToKind      string `json:"to_kind"`
	To          string `json:"to"`
	Description string `json:"description"`      // minimal description of the shared information
	InfoType    string `json:"information_type"` // topic exchanged over the link
	CoDBRef     string `json:"codb_ref"`         // IOR of a co-database that can answer for the target
}

// ToAny packs a link for ORB transport.
func (l *ServiceLink) ToAny() idl.Any {
	return idl.Struct(
		idl.F("name", idl.String(l.Name)),
		idl.F("from_kind", idl.String(l.FromKind)),
		idl.F("from", idl.String(l.From)),
		idl.F("to_kind", idl.String(l.ToKind)),
		idl.F("to", idl.String(l.To)),
		idl.F("description", idl.String(l.Description)),
		idl.F("information_type", idl.String(l.InfoType)),
		idl.F("codb_ref", idl.String(l.CoDBRef)),
	)
}

// LinkFromAny unpacks a link shipped by ToAny.
func LinkFromAny(a idl.Any) (*ServiceLink, error) {
	if a.Kind != idl.KindStruct {
		return nil, fmt.Errorf("codb: link payload is %s, not struct", a.Kind)
	}
	return &ServiceLink{
		Name:        a.GetString("name"),
		FromKind:    a.GetString("from_kind"),
		From:        a.GetString("from"),
		ToKind:      a.GetString("to_kind"),
		To:          a.GetString("to"),
		Description: a.GetString("description"),
		InfoType:    a.GetString("information_type"),
		CoDBRef:     a.GetString("codb_ref"),
	}, nil
}
