package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/codb"
	"repro/internal/oodb"
	"repro/internal/orb"
)

func newTestORB(t *testing.T) *orb.ORB {
	t.Helper()
	o := orb.New(orb.Options{Product: orb.Orbix})
	if err := o.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Shutdown)
	return o
}

func TestNewNodeRelational(t *testing.T) {
	o := newTestORB(t)
	n, err := NewNode(NodeConfig{
		Name:            "TestDB",
		Engine:          EngineOracle,
		ORB:             o,
		InformationType: "testing",
		Schema:          "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2);",
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.RelDB == nil || n.OODB != nil {
		t.Fatal("wrong engine wiring")
	}
	if n.Descriptor.Wrapper != "WebTassiliOracle" {
		t.Errorf("wrapper = %s", n.Descriptor.Wrapper)
	}
	if n.Descriptor.ISIRef == "" || n.Descriptor.CoDBRef == "" {
		t.Error("descriptor missing references")
	}
	if n.Descriptor.Location != o.Addr() {
		t.Errorf("default location = %q, want ORB addr %q", n.Descriptor.Location, o.Addr())
	}
	// The ISI servant answers for the node's engine.
	ref, err := o.ResolveString(n.Descriptor.ISIRef)
	if err != nil {
		t.Fatal(err)
	}
	found, err := ref.Locate()
	if err != nil || !found {
		t.Errorf("ISI locate = %t, %v", found, err)
	}
	// Session against own node: native query.
	s := n.NewSession()
	resp, err := s.Execute(context.Background(), `Query TestDB Using Native "SELECT COUNT(*) FROM t";`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Rows[0][0].Int != 2 {
		t.Errorf("count = %v", resp.Result.Rows[0][0])
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if keys := o.ActiveKeys(); len(keys) != 0 {
		t.Errorf("servants left after Close: %v", keys)
	}
}

func TestNewNodeObject(t *testing.T) {
	o := newTestORB(t)
	n, err := NewNode(NodeConfig{
		Name:   "ObjDB",
		Engine: EngineOntos,
		ORB:    o,
		SeedObjects: func(db *oodb.DB) error {
			if _, err := db.DefineClass("Thing", "",
				oodb.Attribute{Name: "N", Type: oodb.AttrString}); err != nil {
				return err
			}
			_, err := db.NewObject("Thing", map[string]any{"N": "x"})
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.OODB == nil {
		t.Fatal("OODB not built")
	}
	s := n.NewSession()
	resp, err := s.Execute(context.Background(), `Query ObjDB Using Native "SELECT N FROM Thing";`)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rows) != 1 || resp.Result.Rows[0][0].Str != "x" {
		t.Errorf("rows = %+v", resp.Result.Rows)
	}
}

func TestNewNodeErrors(t *testing.T) {
	o := newTestORB(t)
	cases := []NodeConfig{
		{Engine: EngineOracle, ORB: o},                                // no name
		{Name: "x", Engine: EngineOracle},                             // no ORB
		{Name: "x", Engine: "FoxPro", ORB: o},                         // unknown engine
		{Name: "x", Engine: EngineOracle, ORB: o, Schema: "BAD SQL;"}, // schema error
	}
	for i, cfg := range cases {
		if _, err := NewNode(cfg); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
	// Unlistened ORB.
	dead := orb.New(orb.Options{})
	if _, err := NewNode(NodeConfig{Name: "x", Engine: EngineOracle, ORB: dead}); err == nil {
		t.Error("node on unlistened ORB accepted")
	}
}

func TestFederationWiring(t *testing.T) {
	f, err := NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()

	add := func(name string, product orb.Product) *Node {
		t.Helper()
		n, err := f.AddNode(product, NodeConfig{
			Name:            name,
			Engine:          EngineOracle,
			InformationType: "topic " + name,
			Schema:          "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);",
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := add("Alpha", orb.Orbix)
	add("Beta", orb.OrbixWeb)
	add("Gamma", orb.VisiBroker)

	if _, err := f.AddNode(orb.Orbix, NodeConfig{Name: "Alpha", Engine: EngineOracle}); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := f.AddNode("NoSuchORB", NodeConfig{Name: "Delta", Engine: EngineOracle}); err == nil {
		t.Error("unknown product accepted")
	}

	if err := f.DefineCoalition("Topic", "", "shared topic", "Alpha", "Beta"); err != nil {
		t.Fatal(err)
	}
	if err := f.DefineCoalition("Topic", "", "dup"); err == nil {
		t.Error("duplicate coalition accepted")
	}
	if err := f.DefineCoalition("Bad", "", "x", "NoSuchNode"); err == nil {
		t.Error("coalition with unknown member accepted")
	}
	// Both members know the coalition and each other.
	members, err := a.CoDB.Members("Topic")
	if err != nil || len(members) != 2 {
		t.Fatalf("Alpha sees %d members, %v", len(members), err)
	}
	// Gamma does not know it.
	g, _ := f.Node("Gamma")
	if g.CoDB.HasCoalition("Topic") {
		t.Error("non-member knows the coalition")
	}

	// Sub-coalition under a parent.
	if err := f.DefineCoalition("SubTopic", "Topic", "specialised", "Alpha"); err != nil {
		t.Fatal(err)
	}
	subs, err := a.CoDB.SubCoalitions("Topic", true)
	if err != nil || len(subs) != 1 || subs[0] != "SubTopic" {
		t.Errorf("subcoalitions = %v, %v", subs, err)
	}

	// Links.
	if err := f.AddLink(LinkSpec{Name: "G_to_Topic", FromKind: "database", From: "Gamma",
		ToKind: "coalition", To: "Topic", InfoType: "shared topic"}); err != nil {
		t.Fatal(err)
	}
	if got := g.CoDB.Links(); len(got) != 1 || got[0].CoDBRef == "" {
		t.Errorf("Gamma links = %+v", got)
	}
	if err := f.AddLink(LinkSpec{Name: "bad", FromKind: "database", From: "Nope",
		ToKind: "coalition", To: "Topic"}); err == nil {
		t.Error("link with unknown origin accepted")
	}
	if err := f.AddLink(LinkSpec{Name: "bad2", FromKind: "database", From: "Gamma",
		ToKind: "coalition", To: "Empty"}); err == nil {
		t.Error("link to empty coalition accepted")
	}
	if err := f.AddLink(LinkSpec{Name: "bad3", FromKind: "wombat", From: "Gamma",
		ToKind: "coalition", To: "Topic"}); err == nil {
		t.Error("bad origin kind accepted")
	}

	// Cross-node discovery: Gamma finds Topic through its link.
	s := g.NewSession()
	resp, err := s.Execute(context.Background(), "Find Coalitions With Information shared topic;")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range resp.Leads {
		if l.Coalition == "Topic" && strings.HasPrefix(l.Via, "link:") {
			found = true
		}
	}
	if !found {
		t.Errorf("leads = %+v", resp.Leads)
	}
	// And can connect + browse through the link.
	if _, err := s.Execute(context.Background(), "Connect To Coalition Topic;"); err != nil {
		t.Fatal(err)
	}
	resp, err = s.Execute(context.Background(), "Display Instances of Class Topic;")
	if err != nil || len(resp.Sources) != 2 {
		t.Errorf("instances over link = %v, %v", resp.Names, err)
	}

	// Join/Leave through the federation.
	if err := f.JoinCoalition("Topic", "Gamma"); err != nil {
		t.Fatal(err)
	}
	if got := len(f.Members("Topic")); got != 3 {
		t.Errorf("members after join = %d", got)
	}
	if err := f.JoinCoalition("Nope", "Gamma"); err == nil {
		t.Error("join unknown coalition accepted")
	}
	if err := f.JoinCoalition("Topic", "Nope"); err == nil {
		t.Error("join unknown node accepted")
	}
	if err := f.LeaveCoalition("Topic", "Gamma"); err != nil {
		t.Fatal(err)
	}
	if err := f.LeaveCoalition("Topic", "Gamma"); err == nil {
		t.Error("double leave accepted")
	}
}

// TestJoinViaWebTassili drives Join/Leave through the language rather than
// the federation helper: the session advertises the home descriptor into a
// coalition reachable through the session's context.
func TestJoinViaWebTassili(t *testing.T) {
	f, err := NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	mk := func(name string) *Node {
		n, err := f.AddNode(orb.Orbix, NodeConfig{
			Name: name, Engine: EngineOracle,
			InformationType: "records of " + name,
			Schema:          "CREATE TABLE t (a INT);",
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	mk("One")
	two := mk("Two")
	if err := f.DefineCoalition("Club", "", "club records", "One"); err != nil {
		t.Fatal(err)
	}
	// Two learns about the club through a link, then joins via WebTassili.
	if err := f.AddLink(LinkSpec{Name: "Two_to_Club", FromKind: "database", From: "Two",
		ToKind: "coalition", To: "Club", InfoType: "club records"}); err != nil {
		t.Fatal(err)
	}
	s := two.NewSession()
	if _, err := s.Execute(context.Background(), "Join Coalition Club;"); err != nil {
		t.Fatal(err)
	}
	one, _ := f.Node("One")
	members, _ := one.CoDB.Members("Club")
	if len(members) != 2 {
		t.Fatalf("club members after WebTassili join = %d", len(members))
	}
	if _, err := s.Execute(context.Background(), "Leave Coalition Club;"); err != nil {
		t.Fatal(err)
	}
	members, _ = one.CoDB.Members("Club")
	if len(members) != 1 {
		t.Errorf("club members after WebTassili leave = %d", len(members))
	}
}

// TestMaintenanceStatements drives Create Coalition / Create Service Link
// through WebTassili against a node's own co-database.
func TestMaintenanceStatements(t *testing.T) {
	o := newTestORB(t)
	n, err := NewNode(NodeConfig{
		Name: "Solo", Engine: EngineMSQL,
		Schema: "CREATE TABLE t (a INT);",
	})
	_ = n
	if err == nil {
		t.Fatal("expected error: no ORB")
	}
	node, err := NewNode(NodeConfig{
		Name: "Solo", Engine: EngineMSQL, ORB: o,
		Schema: "CREATE TABLE t (a INT);",
	})
	if err != nil {
		t.Fatal(err)
	}
	s := node.NewSession()
	if _, err := s.Execute(context.Background(), `Create Coalition Local Topics Description "local organisation";`); err != nil {
		t.Fatal(err)
	}
	if !node.CoDB.HasCoalition("Local Topics") {
		t.Error("coalition not created")
	}
	if _, err := s.Execute(context.Background(), `Create Service Link Solo_to_Elsewhere From Database Solo To Coalition Local Topics Information "topics";`); err != nil {
		t.Fatal(err)
	}
	if got := node.CoDB.Links(); len(got) != 1 || got[0].Name != "Solo_to_Elsewhere" {
		t.Errorf("links = %+v", got)
	}
	// A descriptor lookup for the owner works even with no coalition
	// membership (owner access info).
	d, ok := node.CoDB.FindSource("Solo")
	if !ok || d.Engine != EngineMSQL {
		t.Errorf("owner descriptor = %+v, %t", d, ok)
	}
}

func TestIsRelational(t *testing.T) {
	for _, e := range []string{EngineOracle, EngineMSQL, EngineDB2, EngineSybase} {
		if !IsRelational(e) {
			t.Errorf("%s not relational", e)
		}
	}
	for _, e := range []string{EngineObjectStore, EngineOntos, "Nope"} {
		if IsRelational(e) {
			t.Errorf("%s relational", e)
		}
	}
}

var _ = codb.SourceDescriptor{} // keep import for doc reference

// TestPeerFailureDuringDiscovery kills a coalition peer's ORB mid-flight:
// stage-3 resolution must skip the dead peer rather than fail, and data
// access to the dead source must surface a typed communication failure.
func TestPeerFailureDuringDiscovery(t *testing.T) {
	// A dedicated federation (we kill one of its ORBs).
	f, err := NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	mk := func(name string, p orb.Product, topic string) *Node {
		n, err := f.AddNode(p, NodeConfig{
			Name: name, Engine: EngineOracle, InformationType: topic,
			Schema: "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);",
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	home := mk("Home", orb.Orbix, "home records")
	mk("Peer", orb.VisiBroker, "peer records")
	if err := f.DefineCoalition("Shared", "", "shared records", "Home", "Peer"); err != nil {
		t.Fatal(err)
	}

	s := home.NewSession()
	// Baseline: peer's data is reachable.
	if _, err := s.Execute(context.Background(), `Query Peer Using Native "SELECT a FROM t";`); err != nil {
		t.Fatalf("baseline query: %v", err)
	}

	// Kill the peer's ORB (VisiBroker hosts only Peer here).
	f.ORB(orb.VisiBroker).Shutdown()

	// Discovery for an unknown topic escalates to peers; the dead peer is
	// skipped and the query completes (with no leads) instead of erroring.
	resp, err := s.Execute(context.Background(), "Find Coalitions With Information unknown elsewhere topic;")
	if err != nil {
		t.Fatalf("discovery with dead peer: %v", err)
	}
	if len(resp.Leads) != 0 {
		t.Errorf("leads from dead peer = %+v", resp.Leads)
	}
	// Data access to the dead source fails loudly and typed.
	_, err = s.Execute(context.Background(), `Query Peer Using Native "SELECT a FROM t";`)
	if err == nil {
		t.Fatal("query against dead source succeeded")
	}
	if se, ok := err.(*orb.SystemException); ok && se.Name != orb.ExcCommFailure {
		t.Errorf("error = %v", err)
	}
	// Local work is unaffected.
	if _, err := s.Execute(context.Background(), `Query Home Using Native "SELECT a FROM t";`); err != nil {
		t.Errorf("local query after peer death: %v", err)
	}
}
