package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/codb"
	"repro/internal/orb"
)

// Federation manages a set of nodes across the three ORB products and wires
// their co-databases into coalitions and service links. Knowledge placement
// follows the paper exactly: a coalition's class and member descriptors are
// replicated into the co-databases of its members only; a service link is
// recorded in the co-databases entitled to know it (the members of the
// origin coalition, or the origin database).
type Federation struct {
	orbs  map[orb.Product]*orb.ORB
	nodes map[string]*Node // by lower-cased name

	coalitions map[string][]string // coalition -> member node names
	parents    map[string]string   // coalition -> parent coalition ("" = top)
	descs      map[string]string   // coalition -> description
	links      []*codb.ServiceLink
}

// NewFederation boots the three ORB products on loopback. An optional base
// option set is applied to every ORB (its Product field is overridden per
// ORB); tests use it to disable colocation or enable timeouts federation-wide.
func NewFederation(base ...orb.Options) (*Federation, error) {
	var opts orb.Options
	if len(base) > 0 {
		opts = base[0]
	}
	f := &Federation{
		orbs:       make(map[orb.Product]*orb.ORB),
		nodes:      make(map[string]*Node),
		coalitions: make(map[string][]string),
		parents:    make(map[string]string),
		descs:      make(map[string]string),
	}
	for _, p := range []orb.Product{orb.Orbix, orb.OrbixWeb, orb.VisiBroker} {
		opts.Product = p
		o := orb.New(opts)
		if err := o.Listen("127.0.0.1:0"); err != nil {
			f.Shutdown()
			return nil, err
		}
		f.orbs[p] = o
	}
	return f, nil
}

// ORB returns the federation's ORB instance for a product.
func (f *Federation) ORB(p orb.Product) *orb.ORB { return f.orbs[p] }

// AddNode builds a node on the given ORB product and registers it.
func (f *Federation) AddNode(product orb.Product, cfg NodeConfig) (*Node, error) {
	o, ok := f.orbs[product]
	if !ok {
		return nil, fmt.Errorf("core: unknown ORB product %s", product)
	}
	key := strings.ToLower(cfg.Name)
	if _, exists := f.nodes[key]; exists {
		return nil, fmt.Errorf("core: node %s already registered", cfg.Name)
	}
	cfg.ORB = o
	n, err := NewNode(cfg)
	if err != nil {
		return nil, err
	}
	f.nodes[key] = n
	return n, nil
}

// Node returns a registered node by name.
func (f *Federation) Node(name string) (*Node, bool) {
	n, ok := f.nodes[strings.ToLower(name)]
	return n, ok
}

// NodeNames lists registered nodes, sorted.
func (f *Federation) NodeNames() []string {
	out := make([]string, 0, len(f.nodes))
	for _, n := range f.nodes {
		out = append(out, n.Config.Name)
	}
	sort.Strings(out)
	return out
}

// Coalitions lists defined coalitions, sorted.
func (f *Federation) Coalitions() []string {
	out := make([]string, 0, len(f.coalitions))
	for c := range f.coalitions {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Members returns a coalition's member node names.
func (f *Federation) Members(coalition string) []string {
	return append([]string(nil), f.coalitions[coalition]...)
}

// Links lists the federation's service links.
func (f *Federation) Links() []*codb.ServiceLink {
	return append([]*codb.ServiceLink(nil), f.links...)
}

// DefineCoalition declares a coalition with the given members: the coalition
// class is created in every member's co-database and every member's
// descriptor is advertised into every member's copy ("databases
// participating in the coalition share descriptions").
func (f *Federation) DefineCoalition(name, parent, description string, memberNames ...string) error {
	if _, exists := f.coalitions[name]; exists {
		return fmt.Errorf("core: coalition %s already defined", name)
	}
	members := make([]*Node, 0, len(memberNames))
	for _, m := range memberNames {
		n, ok := f.Node(m)
		if !ok {
			return fmt.Errorf("core: coalition %s: unknown node %s", name, m)
		}
		members = append(members, n)
	}
	for _, n := range members {
		if err := f.ensureCoalitionClass(n, name, parent, description); err != nil {
			return err
		}
		for _, other := range members {
			if err := n.CoDB.AddMember(name, other.Descriptor); err != nil {
				return fmt.Errorf("core: coalition %s at %s: %w", name, n.Config.Name, err)
			}
		}
	}
	f.coalitions[name] = append([]string(nil), memberNames...)
	f.parents[name] = parent
	f.descs[name] = description
	return nil
}

// ensureCoalitionClass creates the coalition class (and its ancestors) in a
// node's co-database if missing.
func (f *Federation) ensureCoalitionClass(n *Node, name, parent, description string) error {
	if n.CoDB.HasCoalition(name) {
		return nil
	}
	if parent != "" && !n.CoDB.HasCoalition(parent) {
		if err := f.ensureCoalitionClass(n, parent, f.parents[parent], f.descs[parent]); err != nil {
			return err
		}
	}
	return n.CoDB.DefineCoalition(name, parent, description)
}

// JoinCoalition adds a node to an existing coalition, replicating the
// coalition into the newcomer's co-database and the newcomer's descriptor
// into every member's co-database.
func (f *Federation) JoinCoalition(coalition, nodeName string) error {
	memberNames, exists := f.coalitions[coalition]
	if !exists {
		return fmt.Errorf("core: no coalition %s", coalition)
	}
	newcomer, ok := f.Node(nodeName)
	if !ok {
		return fmt.Errorf("core: unknown node %s", nodeName)
	}
	for _, m := range memberNames {
		if strings.EqualFold(m, nodeName) {
			return fmt.Errorf("core: %s is already a member of %s", nodeName, coalition)
		}
	}
	if err := f.ensureCoalitionClass(newcomer, coalition, f.parents[coalition], f.descs[coalition]); err != nil {
		return err
	}
	// Newcomer learns all members; all members learn the newcomer.
	for _, m := range memberNames {
		member, _ := f.Node(m)
		if err := newcomer.CoDB.AddMember(coalition, member.Descriptor); err != nil {
			return err
		}
		if err := member.CoDB.AddMember(coalition, newcomer.Descriptor); err != nil {
			return err
		}
	}
	if err := newcomer.CoDB.AddMember(coalition, newcomer.Descriptor); err != nil {
		return err
	}
	f.coalitions[coalition] = append(memberNames, nodeName)
	return nil
}

// LeaveCoalition removes a node from a coalition everywhere.
func (f *Federation) LeaveCoalition(coalition, nodeName string) error {
	memberNames, exists := f.coalitions[coalition]
	if !exists {
		return fmt.Errorf("core: no coalition %s", coalition)
	}
	idx := -1
	for i, m := range memberNames {
		if strings.EqualFold(m, nodeName) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("core: %s is not a member of %s", nodeName, coalition)
	}
	for _, m := range memberNames {
		member, _ := f.Node(m)
		if err := member.CoDB.RemoveMember(coalition, nodeName); err != nil {
			return err
		}
	}
	f.coalitions[coalition] = append(memberNames[:idx], memberNames[idx+1:]...)
	return nil
}

// LinkSpec declares a service link between coalitions and/or databases.
type LinkSpec struct {
	Name        string
	FromKind    string // "coalition" or "database"
	From        string
	ToKind      string
	To          string
	Description string
	InfoType    string
}

// AddLink records a service link in the co-databases of the origin side
// (all members of the origin coalition, or the origin database), carrying a
// reference to a co-database that can answer for the target side.
func (f *Federation) AddLink(spec LinkSpec) error {
	ref, err := f.targetRef(spec.ToKind, spec.To)
	if err != nil {
		return err
	}
	link := &codb.ServiceLink{
		Name:        spec.Name,
		FromKind:    spec.FromKind,
		From:        spec.From,
		ToKind:      spec.ToKind,
		To:          spec.To,
		Description: spec.Description,
		InfoType:    spec.InfoType,
		CoDBRef:     ref,
	}
	holders, err := f.originNodes(spec.FromKind, spec.From)
	if err != nil {
		return err
	}
	for _, n := range holders {
		if err := n.CoDB.AddLink(link); err != nil {
			return fmt.Errorf("core: link %s at %s: %w", spec.Name, n.Config.Name, err)
		}
	}
	f.links = append(f.links, link)
	return nil
}

// targetRef finds the co-database reference of the link target.
func (f *Federation) targetRef(kind, name string) (string, error) {
	switch kind {
	case "database":
		n, ok := f.Node(name)
		if !ok {
			return "", fmt.Errorf("core: link target database %s unknown", name)
		}
		return n.Descriptor.CoDBRef, nil
	case "coalition":
		members := f.coalitions[name]
		if len(members) == 0 {
			return "", fmt.Errorf("core: link target coalition %s has no members", name)
		}
		n, _ := f.Node(members[0])
		return n.Descriptor.CoDBRef, nil
	}
	return "", fmt.Errorf("core: link target kind %q invalid", kind)
}

// originNodes lists the nodes whose co-databases record the link.
func (f *Federation) originNodes(kind, name string) ([]*Node, error) {
	switch kind {
	case "database":
		n, ok := f.Node(name)
		if !ok {
			return nil, fmt.Errorf("core: link origin database %s unknown", name)
		}
		return []*Node{n}, nil
	case "coalition":
		memberNames := f.coalitions[name]
		if len(memberNames) == 0 {
			return nil, fmt.Errorf("core: link origin coalition %s has no members", name)
		}
		out := make([]*Node, 0, len(memberNames))
		for _, m := range memberNames {
			n, _ := f.Node(m)
			out = append(out, n)
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: link origin kind %q invalid", kind)
}

// Shutdown stops every ORB (and with them all servants).
func (f *Federation) Shutdown() {
	for _, o := range f.orbs {
		if o != nil {
			o.Shutdown()
		}
	}
}
