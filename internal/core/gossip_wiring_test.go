package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/orb"
)

// gossipFederation builds a three-node federation for the wiring tests: GA
// and GB share a coalition (so each seeds the other from its member lists),
// GC opts out of gossip entirely.
func gossipFederation(t *testing.T) (*Federation, *Node, *Node, *Node) {
	t.Helper()
	f, err := NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Shutdown)
	for i, name := range []string{"GA", "GB", "GC"} {
		cfg := NodeConfig{
			Name:            name,
			Engine:          EngineOracle,
			InformationType: "testing",
			Schema:          "CREATE TABLE t (a INT);",
			GossipSeed:      int64(i + 1),
			GossipInterval:  time.Millisecond,
		}
		if name == "GC" {
			cfg.DisableGossip = true
		}
		if _, err := f.AddNode(orb.Orbix, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.DefineCoalition("Med", "", "medical", "GA", "GB"); err != nil {
		t.Fatal(err)
	}
	a, _ := f.Node("GA")
	b, _ := f.Node("GB")
	c, _ := f.Node("GC")
	return f, a, b, c
}

// TestNodeGossipWiring drives the production gossip hooks end to end: the
// agents exchange over real IIOP connections through the co-database
// servants, seed knowledge comes from the coalition member lists, applied
// entries reach the metadata cache through the OnApply hook, and a node
// built with DisableGossip has no agent at all.
func TestNodeGossipWiring(t *testing.T) {
	_, a, b, c := gossipFederation(t)
	if c.Gossip != nil {
		t.Fatal("DisableGossip node still has an agent")
	}
	// StartGossip on an agent-less node must return immediately, not block.
	c.StartGossip(context.Background())

	if a.Gossip == nil || b.Gossip == nil {
		t.Fatal("gossip agents missing")
	}
	// Bootstrap knowledge: the coalition member list names the peer before
	// any exchange has happened.
	seeds := a.gossipSeeds()
	if len(seeds) != 1 || seeds[0].Node != "GB" || seeds[0].Version != 0 || seeds[0].CoDBRef == "" {
		t.Fatalf("GA seeds = %+v", seeds)
	}
	self := a.gossipSelf()
	if self.Node != "GA" || self.Version != a.CoDB.Version() || self.CoDBRef == "" ||
		len(self.Coalitions) != 1 || self.Coalitions[0] != "Med" {
		t.Fatalf("GA self entry = %+v", self)
	}

	ctx := context.Background()
	converged := func() bool {
		ea, oka := a.Gossip.Store().Get("GB")
		eb, okb := b.Gossip.Store().Get("GA")
		return oka && okb && ea.Version == b.CoDB.Version() && eb.Version == a.CoDB.Version()
	}
	for r := 0; r < 8 && !converged(); r++ {
		a.Gossip.Tick(ctx)
		b.Gossip.Tick(ctx)
	}
	if !converged() {
		t.Fatalf("no convergence: GA store %+v", a.Gossip.Store().Digest())
	}
	if a.Gossip.Messages() == 0 {
		t.Fatal("convergence without messages")
	}
	// The OnApply hook must have pushed GB's applied entry into GA's
	// metadata cache under its gossip version stamp.
	if _, ver, ok := a.MDCache.PeekVersioned("gossip|GB"); !ok || ver != b.CoDB.Version() {
		t.Fatalf("gossip|GB cache stamp = v%d ok=%v, want v%d", ver, ok, b.CoDB.Version())
	}
}

// TestStartGossipLoop runs the background anti-entropy loop itself: with a
// millisecond interval the loop must produce exchanges on its own, and
// cancelling the context must stop it.
func TestStartGossipLoop(t *testing.T) {
	_, a, _, _ := gossipFederation(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		a.StartGossip(ctx)
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.Gossip.Messages() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("StartGossip did not stop on context cancel")
	}
	if a.Gossip.Messages() == 0 {
		t.Fatal("background loop never gossiped")
	}
}
