// Package core assembles the WebFINDIT system: a Node couples one database
// (relational or object-oriented engine) with its co-database, its
// Information Source Interface servant and its co-database servant on an
// ORB; a Federation wires nodes into coalitions and service links across the
// three ORB products, reproducing the architecture of the paper's Figures 2
// and 3.
package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/codb"
	"repro/internal/cursor"
	"repro/internal/gateway"
	"repro/internal/gossip"
	"repro/internal/mdcache"
	"repro/internal/oodb"
	"repro/internal/orb"
	"repro/internal/query"
	"repro/internal/relational"
)

// Engine names accepted by NodeConfig (the five DBMSs of the paper plus
// Sybase, which the paper lists as supported).
const (
	EngineOracle      = "Oracle"
	EngineMSQL        = "mSQL"
	EngineDB2         = "DB2"
	EngineSybase      = "Sybase"
	EngineObjectStore = "ObjectStore"
	EngineOntos       = "Ontos"
)

// IsRelational reports whether the engine is a relational DBMS.
func IsRelational(engine string) bool {
	switch engine {
	case EngineOracle, EngineMSQL, EngineDB2, EngineSybase:
		return true
	}
	return false
}

// NodeConfig describes one participating database.
type NodeConfig struct {
	Name            string // database name, e.g. "Royal Brisbane Hospital"
	Engine          string // one of the Engine* constants
	ORB             *orb.ORB
	InformationType string
	Documentation   string // URL
	DocumentHTML    string // document body served by the browser layer
	Location        string // advertised location; defaults to the ORB address
	Interface       []codb.ExportedType
	// Schema, for relational engines, is a SQL script (DDL + seed rows) run
	// at construction. Object engines seed through SeedObjects.
	Schema string
	// SeedObjects, for object engines, populates the fresh OO database.
	SeedObjects func(*oodb.DB) error

	// DisableMDCache turns off the federation metadata cache the node's
	// query processor uses for coalition membership, source descriptors and
	// peer discovery probes. The cache is on by default; only metadata (the
	// co-database tier) is ever cached — data queries always hit the source.
	DisableMDCache bool
	// MDCacheTTL / MDCacheNegTTL / MDCacheMaxEntries override the cache
	// defaults (2s positive TTL, 250ms negative TTL, 4096 entries) when
	// positive; zero keeps the default.
	MDCacheTTL        time.Duration
	MDCacheNegTTL     time.Duration
	MDCacheMaxEntries int
	// Clock, when set, overrides time.Now for the node's metadata cache.
	// Deterministic simulations (internal/simtest) pin it to the simnet
	// virtual clock so TTL expiry is a virtual-time event that tests
	// advance explicitly.
	Clock func() time.Time

	// AdvertiseEngine, when set, is the engine name the node's source
	// descriptor claims instead of Engine. The node still runs Engine
	// underneath — this models metadata drift (a member whose co-database
	// entry is stale), which the federated planner must tolerate by falling
	// back to full compensation when a pushed clause is rejected.
	AdvertiseEngine string
	// DisablePushdown starts the node's query processor with predicate and
	// limit pushdown off (see query.Config.DisablePushdown). Differential
	// tests build one federation per mode and require identical answers.
	DisablePushdown bool
	// MergeBufRows bounds each member's streaming-merge channel and the
	// cursor batch size member sub-queries fetch with (see
	// query.Config.MergeBufRows); 0 keeps the default (64).
	MergeBufRows int
	// DisableStreaming starts the node's query processor with the member
	// cursor protocol off (see query.Config.DisableStreaming): member
	// sub-queries materialize whole results in one round trip.
	DisableStreaming bool
	// DisableSemiJoin starts the node's query processor with semi-join key
	// pushdown off (see query.Config.DisableSemiJoin): join statements run,
	// but every probe row crosses the wire and the coordinator filters.
	DisableSemiJoin bool
	// SemiJoinKeyLimit is the exact-IN/Bloom crossover for semi-join key
	// sets (see query.Config.SemiJoinKeyLimit); 0 keeps the default (64).
	SemiJoinKeyLimit int
	// SemiJoinBloomBits sizes the semi-join Bloom prefilter in bits per key
	// (see query.Config.SemiJoinBloomBits); 0 keeps the default (10).
	SemiJoinBloomBits int
	// CursorMaxOpen caps the server-side cursors the node's ISI and
	// co-database servants will hold open at once; 0 keeps the default (32).
	// Clients past the cap fall back to whole-result round trips.
	CursorMaxOpen int
	// CursorIdleTTL is how long an untouched server-side cursor survives
	// before the reaper collects it; 0 keeps the default (2 minutes).
	// Cursor tables share the node Clock when one is injected.
	CursorIdleTTL time.Duration

	// DisableGossip turns off the node's anti-entropy membership agent and
	// leaves the gossip servant operations unregistered, so the node answers
	// gossip callers exactly like a pre-gossip peer (BAD_OPERATION). The
	// agent itself is passive until StartGossip runs (production) or a test
	// drives Tick directly, so merely having it costs nothing.
	DisableGossip bool
	// GossipInterval paces the background gossip loop started by
	// StartGossip; 0 keeps the default (1s).
	GossipInterval time.Duration
	// GossipFanout is how many peers each gossip round exchanges digests
	// with; 0 keeps the default (3).
	GossipFanout int
	// GossipSeed seeds the agent's deterministic peer-ring shuffle; 0 keeps
	// the default. Simulations derive one per node from the run seed.
	GossipSeed int64
	// GossipSuspectAfter is how many consecutive failed exchanges mark a
	// peer dead for representative election; 0 keeps the default (2).
	GossipSuspectAfter int
	// SubCoalitionSize is the coalition size above which stage-3 discovery
	// routes through sub-coalition representatives (see
	// query.Config.SubCoalitionSize); 0 keeps the default (32), negative
	// disables hierarchical routing.
	SubCoalitionSize int
}

// Node is one running WebFINDIT participant.
type Node struct {
	Config     NodeConfig
	RelDB      *relational.Database // non-nil for relational engines
	OODB       *oodb.DB             // non-nil for object engines
	CoDB       *codb.CoDatabase
	Descriptor *codb.SourceDescriptor
	ISIIOR     *orb.IOR
	CoDBIOR    *orb.IOR
	Processor  *query.Processor
	MDCache    *mdcache.Cache // nil when NodeConfig.DisableMDCache is set
	Gossip     *gossip.Agent  // nil when NodeConfig.DisableGossip is set

	isiConn gateway.Conn
	// Cursor tables behind the node's servants (ISI data cursors, co-database
	// instance cursors), kept for stats publishing and tests.
	isiCursors  *cursor.Table
	codbCursors *cursor.Table
}

// CursorStats merges the cursor counters of the node's ISI and co-database
// servants (open cursors, fetches, idle reaps).
func (n *Node) CursorStats() cursor.StatsSnapshot {
	return n.isiCursors.Snapshot().Merge(n.codbCursors.Snapshot())
}

// ISICursors exposes the ISI servant's cursor table (tests assert open
// counts and drive the reaper).
func (n *Node) ISICursors() *cursor.Table { return n.isiCursors }

// isiKey and codbKey name the node's servants on its ORB.
func isiKey(name string) string  { return "ISI/" + name }
func codbKey(name string) string { return "CoDatabase/" + name }

// NewNode builds, seeds and activates a node on its ORB.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: node needs a name")
	}
	if cfg.ORB == nil || cfg.ORB.Addr() == "" {
		return nil, fmt.Errorf("core: node %s needs a listening ORB", cfg.Name)
	}
	n := &Node{Config: cfg, CoDB: codb.New(cfg.Name)}

	// Build the engine and its gateway connection.
	var conn gateway.Conn
	switch {
	case IsRelational(cfg.Engine):
		dialect, err := relational.DialectByName(cfg.Engine)
		if err != nil {
			return nil, fmt.Errorf("core: node %s: %w", cfg.Name, err)
		}
		n.RelDB = relational.NewDatabase(cfg.Name, dialect)
		if cfg.Schema != "" {
			if _, err := n.RelDB.ExecScript(cfg.Schema); err != nil {
				return nil, fmt.Errorf("core: node %s schema: %w", cfg.Name, err)
			}
		}
		drv := gateway.NewRelationalDriver(cfg.Engine)
		if err := drv.Add(n.RelDB); err != nil {
			return nil, err
		}
		conn, err = drv.Open(cfg.Name)
		if err != nil {
			return nil, err
		}
	case cfg.Engine == EngineObjectStore || cfg.Engine == EngineOntos:
		n.OODB = oodb.NewDB(cfg.Name)
		if cfg.SeedObjects != nil {
			if err := cfg.SeedObjects(n.OODB); err != nil {
				return nil, fmt.Errorf("core: node %s seed: %w", cfg.Name, err)
			}
		}
		drv := gateway.NewObjectDriver(cfg.Engine)
		drv.Add(n.OODB)
		var err error
		conn, err = drv.Open(cfg.Name)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: node %s: unknown engine %q", cfg.Name, cfg.Engine)
	}
	n.isiConn = conn

	// The gossip agent is created before the servants so the co-database can
	// serve gossip_pull/gossip_push from the first exchange. Its hooks read
	// n.Descriptor and n.Processor through closures evaluated at call time —
	// both are set below, before any traffic can reach the node.
	if !cfg.DisableGossip {
		n.Gossip = gossip.New(gossip.Config{
			Self:  n.gossipSelf,
			Seeds: n.gossipSeeds,
			Exchange: func(ctx context.Context, ref string, digest []byte) ([]byte, []byte, error) {
				objRef, err := cfg.ORB.ResolveString(ref)
				if err != nil {
					return nil, nil, err
				}
				return codb.NewClient(objRef).GossipPull(ctx, digest)
			},
			Push: func(ctx context.Context, ref string, delta []byte) error {
				objRef, err := cfg.ORB.ResolveString(ref)
				if err != nil {
					return err
				}
				_, err = codb.NewClient(objRef).GossipPush(ctx, delta)
				return err
			},
			OnApply: func(applied []gossip.Entry) {
				if n.Processor != nil {
					n.Processor.GossipApplied(applied)
				}
			},
			Fanout:       cfg.GossipFanout,
			Interval:     cfg.GossipInterval,
			Seed:         cfg.GossipSeed,
			SuspectAfter: cfg.GossipSuspectAfter,
		})
	}

	// Activate the servants.
	isiServant, isiCursors := gateway.NewISIServantWith(conn, gateway.ISIServantOptions{
		CursorMaxOpen: cfg.CursorMaxOpen,
		CursorIdleTTL: cfg.CursorIdleTTL,
		Clock:         cfg.Clock,
	})
	n.isiCursors = isiCursors
	isiIOR, err := cfg.ORB.Activate(isiKey(cfg.Name), isiServant)
	if err != nil {
		return nil, err
	}
	n.ISIIOR = isiIOR
	codbOpts := codb.ServantOptions{
		CursorMaxOpen: cfg.CursorMaxOpen,
		CursorIdleTTL: cfg.CursorIdleTTL,
		Clock:         cfg.Clock,
		// relay_probe is served whenever the processor exists (hierarchical
		// routing works without gossip; election just sees everyone alive).
		// A call landing in the startup window before n.Processor is set gets
		// an empty reply, which coordinators treat as a failed relay.
		Relay: func(ctx context.Context, topic string, members []codb.RelayTarget) []codb.RelayResult {
			if n.Processor == nil {
				return nil
			}
			return n.Processor.RelayProbe(ctx, topic, members)
		},
	}
	if n.Gossip != nil {
		codbOpts.Gossip = n.Gossip
	}
	codbServant, codbCursors := codb.NewServantWith(n.CoDB, codbOpts)
	n.codbCursors = codbCursors
	codbIOR, err := cfg.ORB.Activate(codbKey(cfg.Name), codbServant)
	if err != nil {
		return nil, err
	}
	n.CoDBIOR = codbIOR

	location := cfg.Location
	if location == "" {
		location = cfg.ORB.Addr()
	}
	advertised := cfg.Engine
	if cfg.AdvertiseEngine != "" {
		advertised = cfg.AdvertiseEngine
	}
	n.Descriptor = &codb.SourceDescriptor{
		Name:            cfg.Name,
		InformationType: cfg.InformationType,
		Documentation:   cfg.Documentation,
		DocumentHTML:    cfg.DocumentHTML,
		Location:        location,
		Wrapper:         "WebTassili" + advertised,
		ISIRef:          orb.Stringify(isiIOR),
		CoDBRef:         orb.Stringify(codbIOR),
		Engine:          advertised,
		ORB:             string(cfg.ORB.Product()),
		Interface:       cfg.Interface,
	}

	resolveInterfaceTables(n)
	n.CoDB.SetOwnerDescriptor(n.Descriptor)

	if !cfg.DisableMDCache {
		n.MDCache = mdcache.New(mdcache.Options{
			TTL:        cfg.MDCacheTTL,
			NegTTL:     cfg.MDCacheNegTTL,
			MaxEntries: cfg.MDCacheMaxEntries,
			Clock:      cfg.Clock,
		})
	}
	var alive func(string) bool
	if n.Gossip != nil {
		alive = n.Gossip.Store().Alive
	}
	n.Processor, err = query.New(query.Config{
		ORB:               cfg.ORB,
		Home:              cfg.Name,
		HomeDescriptor:    n.Descriptor,
		Local:             codb.NewClient(cfg.ORB.Resolve(codbIOR)),
		LocalCoDB:         n.CoDB,
		Cache:             n.MDCache,
		DisablePushdown:   cfg.DisablePushdown,
		MergeBufRows:      cfg.MergeBufRows,
		DisableStreaming:  cfg.DisableStreaming,
		DisableSemiJoin:   cfg.DisableSemiJoin,
		SemiJoinKeyLimit:  cfg.SemiJoinKeyLimit,
		SemiJoinBloomBits: cfg.SemiJoinBloomBits,
		SubCoalitionSize:  cfg.SubCoalitionSize,
		Alive:             alive,
	})
	if err != nil {
		return nil, err
	}
	return n, nil
}

// NewSession opens a WebTassili session on this node.
func (n *Node) NewSession() *query.Session { return n.Processor.NewSession() }

// gossipSelf snapshots the node's own gossip entry: name, current
// co-database version, reference and coalition memberships. Read at the
// start of every gossip round, so any local mutation (it bumps Version)
// enters circulation within one round.
func (n *Node) gossipSelf() gossip.Entry {
	e := gossip.Entry{Node: n.Config.Name, Version: n.CoDB.Version()}
	if n.Descriptor != nil {
		e.CoDBRef = n.Descriptor.CoDBRef
	}
	e.Coalitions = n.CoDB.MemberOf()
	return e
}

// gossipSeeds builds the agent's bootstrap knowledge from the local
// co-database's member lists: every coalition peer the node can already name
// becomes a version-0 entry (fills gaps, never displaces gossip). Re-read
// every round, so members learned locally (a Join, an advertise) become
// gossip peers immediately.
func (n *Node) gossipSeeds() []gossip.Entry {
	var out []gossip.Entry
	seen := map[string]bool{}
	for _, coalition := range n.CoDB.MemberOf() {
		members, err := n.CoDB.Members(coalition)
		if err != nil {
			continue
		}
		for _, m := range members {
			if m.Name == n.Config.Name || m.CoDBRef == "" || seen[m.Name] {
				continue
			}
			seen[m.Name] = true
			out = append(out, gossip.Entry{Node: m.Name, Version: 0, CoDBRef: m.CoDBRef})
		}
	}
	return out
}

// StartGossip runs the node's anti-entropy loop until ctx ends. It blocks;
// production nodes run it on a goroutine. A node without an agent returns
// immediately.
func (n *Node) StartGossip(ctx context.Context) {
	if n.Gossip != nil {
		n.Gossip.Start(ctx)
	}
}

// Close deactivates the node's servants.
func (n *Node) Close() error {
	var first error
	if err := n.Config.ORB.Deactivate(isiKey(n.Config.Name)); err != nil && first == nil {
		first = err
	}
	if err := n.Config.ORB.Deactivate(codbKey(n.Config.Name)); err != nil && first == nil {
		first = err
	}
	if n.isiConn != nil {
		if err := n.isiConn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// resolveInterfaceTables maps the logical relation names of exported
// functions (e.g. "ResearchProjects", as written in a WebTassili interface
// declaration) to the physical names the engine actually holds (e.g.
// "research_projects"), matching case- and underscore-insensitively. The
// descriptor keeps the resolved names so every wrapper in the federation
// produces queries the engine accepts.
func resolveInterfaceTables(n *Node) {
	var physical []string
	switch {
	case n.RelDB != nil:
		physical = n.RelDB.TableNames()
	case n.OODB != nil:
		physical = n.OODB.ClassNames()
	default:
		return
	}
	normalize := func(s string) string {
		return strings.ReplaceAll(strings.ToLower(s), "_", "")
	}
	byNorm := make(map[string]string, len(physical))
	for _, p := range physical {
		byNorm[normalize(p)] = p
	}
	for ti := range n.Descriptor.Interface {
		et := &n.Descriptor.Interface[ti]
		for fi := range et.Functions {
			fn := &et.Functions[fi]
			if p, ok := byNorm[normalize(fn.Table)]; ok {
				fn.Table = p
			}
		}
	}
}
