// Package cursor implements server-side result cursors: a materialized
// sequence of pre-packed values handed out in batches over the ISI and
// co-database servant protocols (open -> id+first batch, fetch -> batch+done,
// close). Cursors are what turn one huge CORBA reply into a pull-based
// stream: the client fetches the next batch only when it has drained the
// previous one, so a slow consumer throttles the server instead of
// ballooning it.
//
// A Table is the per-servant cursor registry. It caps how many cursors one
// connection may hold open (a client that leaks cursors starves itself, not
// the node) and reaps cursors idle past a TTL (a client that vanished
// mid-stream eventually costs nothing). Reaping is lazy — checked on every
// open and fetch — so the table needs no background goroutine and works
// under simulated clocks.
package cursor

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/idl"
)

// Defaults for a Table constructed with zero values.
const (
	DefaultMaxOpen = 32
	DefaultIdleTTL = 2 * time.Minute
)

// ErrTooMany reports an open attempt past the table's cap. It crosses the
// wire as a user exception whose message keeps this text, so clients can
// fall back to a whole-result query.
var ErrTooMany = errors.New("cursor: too many open cursors")

// ErrNotFound reports a fetch or close of an unknown (possibly reaped)
// cursor ID.
var ErrNotFound = errors.New("cursor: no such cursor")

// Stats counts cursor lifecycle events; fields are atomic and safe to read
// at any time.
type Stats struct {
	Opened  atomic.Int64 // cursors opened (results not exhausted at open)
	Fetches atomic.Int64 // fetch calls answered, the open's first batch included
	Closed  atomic.Int64 // cursors removed by exhaustion or explicit close
	Reaped  atomic.Int64 // cursors removed by the idle TTL
}

// StatsSnapshot is the serializable copy of Stats plus the open gauge (the
// shape published under /debug/metrics).
type StatsSnapshot struct {
	Open    int   `json:"cursors_open"`
	Opened  int64 `json:"opened"`
	Fetches int64 `json:"fetches"`
	Closed  int64 `json:"closed"`
	Reaped  int64 `json:"reap_count"`
}

// Table is one servant's registry of open cursors. The zero value is not
// usable; see NewTable.
type Table struct {
	maxOpen int
	ttl     time.Duration
	now     func() time.Time

	mu      sync.Mutex
	nextID  int64
	cursors map[int64]*state

	stats Stats
}

type state struct {
	items   []idl.Any
	pos     int
	batch   int
	touched time.Time
}

// NewTable returns a cursor table capping open cursors at maxOpen (<=0
// selects DefaultMaxOpen) and reaping cursors idle longer than idleTTL (<=0
// selects DefaultIdleTTL). now supplies the clock (nil selects time.Now);
// deterministic tests inject a virtual one.
func NewTable(maxOpen int, idleTTL time.Duration, now func() time.Time) *Table {
	if maxOpen <= 0 {
		maxOpen = DefaultMaxOpen
	}
	if idleTTL <= 0 {
		idleTTL = DefaultIdleTTL
	}
	if now == nil {
		now = time.Now
	}
	return &Table{maxOpen: maxOpen, ttl: idleTTL, now: now, cursors: make(map[int64]*state)}
}

// Open registers a cursor over items and returns its ID along with the first
// batch. When the first batch exhausts items, done is true, no cursor is
// retained, and id is 0: small results cost exactly one round trip and no
// server state. batch <= 0 selects the whole result in one batch.
func (t *Table) Open(items []idl.Any, batch int) (id int64, first []idl.Any, done bool, err error) {
	if batch <= 0 || batch > len(items) {
		batch = len(items)
	}
	t.stats.Fetches.Add(1)
	if batch == len(items) {
		return 0, items, true, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reapLocked()
	if len(t.cursors) >= t.maxOpen {
		return 0, nil, false, fmt.Errorf("%w (cap %d)", ErrTooMany, t.maxOpen)
	}
	t.nextID++
	id = t.nextID
	t.cursors[id] = &state{items: items, pos: batch, batch: batch, touched: t.now()}
	t.stats.Opened.Add(1)
	return id, items[:batch], false, nil
}

// Fetch returns the cursor's next batch. done reports the cursor is
// exhausted and has been removed; fetching an unknown or reaped cursor
// returns ErrNotFound.
func (t *Table) Fetch(id int64) (batch []idl.Any, done bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reapLocked()
	s, ok := t.cursors[id]
	if !ok {
		return nil, false, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	t.stats.Fetches.Add(1)
	end := s.pos + s.batch
	if end >= len(s.items) {
		end = len(s.items)
		delete(t.cursors, id)
		t.stats.Closed.Add(1)
		done = true
	} else {
		s.touched = t.now()
	}
	batch = s.items[s.pos:end]
	s.pos = end
	return batch, done, nil
}

// Close removes a cursor. Closing an unknown (already exhausted, reaped, or
// never opened) cursor is a no-op: close is how clients abandon streams
// early, and races with exhaustion are expected.
func (t *Table) Close(id int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.cursors[id]; ok {
		delete(t.cursors, id)
		t.stats.Closed.Add(1)
	}
}

// Reap removes every cursor idle past the TTL and reports how many went.
// Open and Fetch reap lazily, so calling this is only needed for tests or
// an explicit sweep.
func (t *Table) Reap() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reapLocked()
}

func (t *Table) reapLocked() int {
	cutoff := t.now().Add(-t.ttl)
	n := 0
	for id, s := range t.cursors {
		if s.touched.Before(cutoff) {
			delete(t.cursors, id)
			n++
		}
	}
	if n > 0 {
		t.stats.Reaped.Add(int64(n))
	}
	return n
}

// OpenCount reports the number of cursors currently registered.
func (t *Table) OpenCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.cursors)
}

// Snapshot returns the table's counters plus the open gauge.
func (t *Table) Snapshot() StatsSnapshot {
	t.mu.Lock()
	open := len(t.cursors)
	t.mu.Unlock()
	return StatsSnapshot{
		Open:    open,
		Opened:  t.stats.Opened.Load(),
		Fetches: t.stats.Fetches.Load(),
		Closed:  t.stats.Closed.Load(),
		Reaped:  t.stats.Reaped.Load(),
	}
}

// Merge adds another snapshot into s (a node aggregates per-servant tables
// for /debug/metrics).
func (s StatsSnapshot) Merge(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Open:    s.Open + o.Open,
		Opened:  s.Opened + o.Opened,
		Fetches: s.Fetches + o.Fetches,
		Closed:  s.Closed + o.Closed,
		Reaped:  s.Reaped + o.Reaped,
	}
}
