package cursor

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/idl"
)

func items(n int) []idl.Any {
	out := make([]idl.Any, n)
	for i := range out {
		out[i] = idl.String(fmt.Sprintf("row-%03d", i))
	}
	return out
}

func TestOpenSmallResultRetainsNothing(t *testing.T) {
	tb := NewTable(4, time.Minute, nil)
	id, first, done, err := tb.Open(items(3), 10)
	if err != nil || !done || id != 0 {
		t.Fatalf("open = id %d, done %v, err %v", id, done, err)
	}
	if len(first) != 3 || tb.OpenCount() != 0 {
		t.Fatalf("first batch %d rows, %d cursors retained", len(first), tb.OpenCount())
	}
	// batch <= 0 means everything at once.
	_, first, done, _ = tb.Open(items(5), 0)
	if !done || len(first) != 5 {
		t.Fatalf("batch 0: done %v, %d rows", done, len(first))
	}
}

func TestOpenFetchClose(t *testing.T) {
	tb := NewTable(4, time.Minute, nil)
	id, first, done, err := tb.Open(items(7), 3)
	if err != nil || done || id == 0 {
		t.Fatalf("open = id %d, done %v, err %v", id, done, err)
	}
	if len(first) != 3 || first[0].Str != "row-000" {
		t.Fatalf("first batch = %v", first)
	}
	b2, done, err := tb.Fetch(id)
	if err != nil || done || len(b2) != 3 || b2[0].Str != "row-003" {
		t.Fatalf("fetch 2 = %v, done %v, err %v", b2, done, err)
	}
	b3, done, err := tb.Fetch(id)
	if err != nil || !done || len(b3) != 1 || b3[0].Str != "row-006" {
		t.Fatalf("fetch 3 = %v, done %v, err %v", b3, done, err)
	}
	if tb.OpenCount() != 0 {
		t.Fatalf("%d cursors after exhaustion", tb.OpenCount())
	}
	if _, _, err := tb.Fetch(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fetch after exhaustion: %v", err)
	}
	tb.Close(id) // idempotent no-op

	snap := tb.Snapshot()
	if snap.Opened != 1 || snap.Fetches != 3 || snap.Closed != 1 || snap.Open != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestCloseAbandonsEarly(t *testing.T) {
	tb := NewTable(4, time.Minute, nil)
	id, _, _, err := tb.Open(items(10), 2)
	if err != nil {
		t.Fatal(err)
	}
	tb.Close(id)
	if tb.OpenCount() != 0 {
		t.Fatal("close left the cursor open")
	}
	if _, _, err := tb.Fetch(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fetch after close: %v", err)
	}
}

func TestOpenCap(t *testing.T) {
	tb := NewTable(2, time.Minute, nil)
	for i := 0; i < 2; i++ {
		if _, _, _, err := tb.Open(items(10), 2); err != nil {
			t.Fatal(err)
		}
	}
	_, _, _, err := tb.Open(items(10), 2)
	if !errors.Is(err, ErrTooMany) {
		t.Fatalf("open past cap: %v", err)
	}
	// A small result (no cursor retained) still succeeds at the cap.
	if _, _, done, err := tb.Open(items(1), 2); err != nil || !done {
		t.Fatalf("small open at cap: done %v, err %v", done, err)
	}
}

func TestIdleReaping(t *testing.T) {
	clock := time.Unix(1000, 0)
	tb := NewTable(8, time.Minute, func() time.Time { return clock })
	stale, _, _, _ := tb.Open(items(10), 2)
	clock = clock.Add(30 * time.Second)
	fresh, _, _, _ := tb.Open(items(10), 2)
	clock = clock.Add(45 * time.Second) // stale now 75s idle, fresh 45s

	if _, _, err := tb.Fetch(fresh); err != nil {
		t.Fatalf("fetch fresh: %v", err)
	}
	if _, _, err := tb.Fetch(stale); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale cursor survived the TTL: %v", err)
	}
	snap := tb.Snapshot()
	if snap.Reaped != 1 || snap.Open != 1 {
		t.Fatalf("snapshot after reap = %+v", snap)
	}

	// A fetch refreshes the idle clock.
	clock = clock.Add(45 * time.Second) // fresh last touched 45s ago
	if _, _, err := tb.Fetch(fresh); err != nil {
		t.Fatalf("refreshed cursor reaped: %v", err)
	}

	// Explicit sweep.
	clock = clock.Add(2 * time.Minute)
	if n := tb.Reap(); n != 1 {
		t.Fatalf("explicit reap = %d", n)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := StatsSnapshot{Open: 1, Opened: 2, Fetches: 3, Closed: 4, Reaped: 5}
	b := StatsSnapshot{Open: 10, Opened: 20, Fetches: 30, Closed: 40, Reaped: 50}
	got := a.Merge(b)
	want := StatsSnapshot{Open: 11, Opened: 22, Fetches: 33, Closed: 44, Reaped: 55}
	if got != want {
		t.Fatalf("merge = %+v", got)
	}
}
