package gateway

import (
	"context"
	"io"
	"strings"
	"testing"

	"repro/internal/idl"
	"repro/internal/orb"
)

// startISIPair activates an ISI servant for the RBH Oracle database and
// returns a remote connection to it plus the servant's cursor table.
func startISIPair(t *testing.T, opts ISIServantOptions) (*RemoteConn, *cursorTableHandle) {
	t.Helper()
	server := orb.New(orb.Options{Product: orb.VisiBroker, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Shutdown)

	drv := NewRelationalDriver("Oracle")
	if err := drv.Add(newOracleDB(t)); err != nil {
		t.Fatal(err)
	}
	local, err := drv.Open("RBH")
	if err != nil {
		t.Fatal(err)
	}
	servant, table := NewISIServantWith(local, opts)
	ior, err := server.Activate("ISI/RBH", servant)
	if err != nil {
		t.Fatal(err)
	}

	client := orb.New(orb.Options{Product: orb.OrbixWeb, DisableColocation: true})
	t.Cleanup(client.Shutdown)
	return NewRemoteConn(client.Resolve(ior)), &cursorTableHandle{table}
}

type cursorTableHandle struct{ table interface{ OpenCount() int } }

func TestRemoteQueryCursorBatches(t *testing.T) {
	rconn, tb := startISIPair(t, ISIServantOptions{})
	ctx := context.Background()

	it, err := rconn.QueryCursor(ctx, "SELECT name FROM medical_students ORDER BY name", 2)
	if err != nil {
		t.Fatal(err)
	}
	if cols := it.Columns(); len(cols) != 1 || cols[0] != "name" {
		t.Fatalf("columns = %v", cols)
	}
	// 3 rows over batch 2: the open carries 2, one fetch carries the last,
	// so a cursor is retained server-side until the stream is drained.
	if tb.table.OpenCount() != 1 {
		t.Fatalf("open cursors after open = %d", tb.table.OpenCount())
	}
	var names []string
	for {
		row, err := it.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, row[0].Str)
	}
	if strings.Join(names, ",") != "J. Chen,P. Okoye,S. Weiss" {
		t.Fatalf("streamed rows = %v", names)
	}
	if tb.table.OpenCount() != 0 {
		t.Fatalf("open cursors after drain = %d", tb.table.OpenCount())
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(ctx); err == nil {
		t.Fatal("Next on closed iterator succeeded")
	}
}

func TestRemoteCursorCloseReleasesServer(t *testing.T) {
	rconn, tb := startISIPair(t, ISIServantOptions{})
	ctx := context.Background()

	it, err := rconn.QueryCursor(ctx, "SELECT name FROM medical_students", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if tb.table.OpenCount() != 1 {
		t.Fatalf("open cursors mid-stream = %d", tb.table.OpenCount())
	}
	// Abandon mid-stream: Close must reach the server and free the cursor.
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if tb.table.OpenCount() != 0 {
		t.Fatalf("open cursors after early Close = %d", tb.table.OpenCount())
	}
}

func TestRemoteQueryDelegatesThroughCursor(t *testing.T) {
	rconn, tb := startISIPair(t, ISIServantOptions{})
	res, err := rconn.Query(context.Background(), "SELECT name FROM medical_students WHERE year > 4 ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "P. Okoye" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Batch 0 means the whole result travelled in the open reply: no server
	// cursor was ever retained.
	if tb.table.OpenCount() != 0 {
		t.Fatalf("whole-result query retained %d cursors", tb.table.OpenCount())
	}
	// Engine errors still surface with the engine's message.
	if _, err := rconn.Query(context.Background(), "SELECT * FROM no_such_table"); err == nil ||
		!strings.Contains(err.Error(), "no_such_table") {
		t.Fatalf("engine error = %v", err)
	}
}

func TestRemoteCursorCapFallsBack(t *testing.T) {
	rconn, tb := startISIPair(t, ISIServantOptions{CursorMaxOpen: 1})
	ctx := context.Background()

	// Hold the only cursor slot open.
	held, err := rconn.QueryCursor(ctx, "SELECT name FROM medical_students", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()
	if tb.table.OpenCount() != 1 {
		t.Fatalf("open cursors = %d", tb.table.OpenCount())
	}

	// The next open hits the cap; the client falls back to the whole-result
	// op and the caller still gets every row.
	it, err := rconn.QueryCursor(ctx, "SELECT name FROM medical_students ORDER BY name", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Drain(ctx, it)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("fallback drain = %+v, %v", res, err)
	}
	if tb.table.OpenCount() != 1 {
		t.Fatalf("fallback opened a cursor: %d", tb.table.OpenCount())
	}
}

// TestRemoteCursorLegacyPeerFallsBack points QueryCursor at a servant that
// predates the cursor protocol (query/exec only). The BAD_OPERATION reply
// must route the client to the whole-result op transparently.
func TestRemoteCursorLegacyPeerFallsBack(t *testing.T) {
	server := orb.New(orb.Options{Product: orb.VisiBroker, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Shutdown)

	legacyIDL := idl.MustParse(`
module WebFINDIT {
    interface LegacyISI {
        any query(in string q);
    };
};
`)[0]
	drv := NewRelationalDriver("Oracle")
	if err := drv.Add(newOracleDB(t)); err != nil {
		t.Fatal(err)
	}
	local, err := drv.Open("RBH")
	if err != nil {
		t.Fatal(err)
	}
	h := orb.NewHandler(legacyIDL)
	h.On("query", func(args []idl.Any) (idl.Any, error) {
		res, err := local.Query(context.Background(), args[0].Str)
		if err != nil {
			return idl.Null(), &orb.UserException{Name: "QueryError", Message: err.Error()}
		}
		return res.ToAny(), nil
	})
	ior, err := server.Activate("ISI/legacy", h)
	if err != nil {
		t.Fatal(err)
	}

	client := orb.New(orb.Options{Product: orb.OrbixWeb, DisableColocation: true})
	t.Cleanup(client.Shutdown)
	rconn := NewRemoteConn(client.Resolve(ior))

	res, err := rconn.Query(context.Background(), "SELECT COUNT(*) FROM medical_students")
	if err != nil || res.Rows[0][0].Int != 3 {
		t.Fatalf("legacy fallback query = %+v, %v", res, err)
	}
	it, err := rconn.QueryCursor(context.Background(), "SELECT name FROM medical_students", 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Drain(context.Background(), it)
	if err != nil || len(out.Rows) != 3 {
		t.Fatalf("legacy fallback cursor = %+v, %v", out, err)
	}
}
