package gateway

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/idl"
	"repro/internal/oodb"
	"repro/internal/relational"
)

// Capabilities is a vendor's pushdown profile: which parts of a coalition
// function query the engine can evaluate itself, so the federated planner
// knows what to ship into the fragment and what to compensate for at the
// coordinator. Profiles are keyed by the engine name a source descriptor
// advertises — which is a claim, not a guarantee; the executor still
// tolerates an engine rejecting a pushed clause at run time.
type Capabilities struct {
	Predicates bool // evaluates pushed comparison conjuncts (= <> < <= > >=)
	Like       bool // evaluates pushed LIKE patterns
	Limit      bool // honours a pushed LIMIT clause
	InList     bool // evaluates a pushed literal IN list (semi-join key set)
}

// CapsFor resolves the capability profile for an advertised engine name.
// Relational vendors derive from their dialect profile (mSQL 2.x shipped
// RLIKE/CLIKE instead of standard LIKE, so LIKE stays at the coordinator,
// and wanted OR chains instead of IN lists, so semi-join key sets do too);
// the object engines evaluate every predicate but their OQL grammar has no
// LIMIT clause or IN operator. An unknown engine gets the zero profile —
// push nothing, the coordinator compensates for everything.
func CapsFor(engine string) Capabilities {
	switch engine {
	case "ObjectStore", "Ontos":
		return Capabilities{Predicates: true, Like: true, Limit: false, InList: false}
	}
	if d, err := relational.DialectByName(engine); err == nil {
		return Capabilities{Predicates: true, Like: d.Like, Limit: d.OrderLimit, InList: d.InList}
	}
	return Capabilities{}
}

// RelationalDriver serves connections to registered in-process relational
// engine instances. One driver instance is registered per vendor scheme
// ("oracle", "msql", "db2", "sybase"); Open(name) connects to the database
// registered under that name, enforcing that its dialect matches the scheme.
type RelationalDriver struct {
	vendor string // dialect name the scheme promises

	mu  sync.RWMutex
	dbs map[string]*relational.Database
}

// NewRelationalDriver creates a driver for one vendor.
func NewRelationalDriver(vendor string) *RelationalDriver {
	return &RelationalDriver{vendor: vendor, dbs: make(map[string]*relational.Database)}
}

// Add registers a database instance under its name.
func (d *RelationalDriver) Add(db *relational.Database) error {
	if db.Dialect().Name != d.vendor {
		return fmt.Errorf("gateway: database %s has dialect %s, driver serves %s",
			db.Name(), db.Dialect().Name, d.vendor)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dbs[strings.ToLower(db.Name())] = db
	return nil
}

// Open implements Driver.
func (d *RelationalDriver) Open(name string) (Conn, error) {
	d.mu.RLock()
	db, ok := d.dbs[strings.ToLower(name)]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("no %s database named %s", d.vendor, name)
	}
	return &relConn{db: db, session: db.NewSession(), vendor: d.vendor}, nil
}

type relConn struct {
	db      *relational.Database
	session *relational.Session
	vendor  string
	closed  bool
}

func (c *relConn) check() error {
	if c.closed {
		return fmt.Errorf("gateway: connection to %s is closed", c.db.Name())
	}
	return nil
}

// Query implements Conn. The engine is in-process and synchronous, so the
// context is not consulted mid-statement.
func (c *relConn) Query(_ context.Context, q string) (*Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	res, err := c.db.Query(q)
	if err != nil {
		return nil, err
	}
	return fromRelational(res), nil
}

// QueryCursor implements Conn by materializing the result and iterating it:
// the engine is in-process, so there is no wire to stream over and batching
// buys nothing.
func (c *relConn) QueryCursor(ctx context.Context, q string, _ int) (RowIter, error) {
	res, err := c.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	return NewSliceIter(res), nil
}

func (c *relConn) Exec(_ context.Context, q string) (*Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	res, err := c.session.Exec(q)
	if err != nil {
		return nil, err
	}
	return fromRelational(res), nil
}

func (c *relConn) Begin() error {
	if err := c.check(); err != nil {
		return err
	}
	return c.session.Begin()
}

func (c *relConn) Commit() error {
	if err := c.check(); err != nil {
		return err
	}
	return c.session.Commit()
}

func (c *relConn) Rollback() error {
	if err := c.check(); err != nil {
		return err
	}
	return c.session.Rollback()
}

func (c *relConn) Meta() SourceMeta {
	return SourceMeta{Engine: c.vendor, Database: c.db.Name(), Model: "relational"}
}

func (c *relConn) Tables() []string { return c.db.TableNames() }

func (c *relConn) Close() error {
	if c.session.InTx() {
		if err := c.session.Rollback(); err != nil {
			return err
		}
	}
	c.closed = true
	return nil
}

// fromRelational converts an engine result to the gateway's wire result.
func fromRelational(r *relational.Result) *Result {
	out := &Result{Columns: r.Columns, RowsAffected: r.RowsAffected}
	for _, row := range r.Rows {
		vals := make([]idl.Any, len(row))
		for i, v := range row {
			vals[i] = relValueToAny(v)
		}
		out.Rows = append(out.Rows, vals)
	}
	return out
}

func relValueToAny(v relational.Value) idl.Any {
	if v.Null {
		return idl.Null()
	}
	switch v.Kind {
	case relational.TypeInt:
		return idl.Long(v.Int)
	case relational.TypeFloat:
		return idl.Double(v.Float)
	case relational.TypeBool:
		return idl.Bool(v.Bool)
	default: // TEXT, DATE
		return idl.String(v.Str)
	}
}

// ObjectDriver serves connections to registered in-process object-oriented
// engine instances; registered per product scheme ("objectstore", "ontos").
type ObjectDriver struct {
	product string

	mu  sync.RWMutex
	dbs map[string]*oodb.DB
}

// NewObjectDriver creates a driver for one OODB product.
func NewObjectDriver(product string) *ObjectDriver {
	return &ObjectDriver{product: product, dbs: make(map[string]*oodb.DB)}
}

// Add registers a database instance under its name.
func (d *ObjectDriver) Add(db *oodb.DB) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dbs[strings.ToLower(db.Name())] = db
}

// Open implements Driver.
func (d *ObjectDriver) Open(name string) (Conn, error) {
	d.mu.RLock()
	db, ok := d.dbs[strings.ToLower(name)]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("no %s database named %s", d.product, name)
	}
	return &ooConn{db: db, product: d.product}, nil
}

type ooConn struct {
	db      *oodb.DB
	product string
	closed  bool
}

func (c *ooConn) check() error {
	if c.closed {
		return fmt.Errorf("gateway: connection to %s is closed", c.db.Name())
	}
	return nil
}

// Query implements Conn; in-process, so the context is not consulted.
func (c *ooConn) Query(_ context.Context, q string) (*Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	cols, rows, err := oodb.Query(c.db, q)
	if err != nil {
		return nil, err
	}
	out := &Result{Columns: cols}
	for _, row := range rows {
		vals := make([]idl.Any, len(row))
		for i, v := range row {
			vals[i] = ooValueToAny(v)
		}
		out.Rows = append(out.Rows, vals)
	}
	return out, nil
}

// QueryCursor implements Conn by materializing and iterating (in-process
// engine; see relConn.QueryCursor).
func (c *ooConn) QueryCursor(ctx context.Context, q string, _ int) (RowIter, error) {
	res, err := c.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	return NewSliceIter(res), nil
}

// Exec on an OO connection accepts the same query language (reads only; the
// OO engines are populated through their native API, as in the paper's
// prototype where co-databases are maintained by the system).
func (c *ooConn) Exec(ctx context.Context, q string) (*Result, error) { return c.Query(ctx, q) }

func (c *ooConn) Begin() error {
	return fmt.Errorf("gateway: %s connections do not support transactions", c.product)
}

func (c *ooConn) Commit() error   { return c.Begin() }
func (c *ooConn) Rollback() error { return c.Begin() }

func (c *ooConn) Meta() SourceMeta {
	return SourceMeta{Engine: c.product, Database: c.db.Name(), Model: "object-oriented"}
}

func (c *ooConn) Tables() []string { return c.db.ClassNames() }

func (c *ooConn) Close() error {
	c.closed = true
	return nil
}

func ooValueToAny(v any) idl.Any {
	switch x := v.(type) {
	case nil:
		return idl.Null()
	case string:
		return idl.String(x)
	case int64:
		return idl.Long(x)
	case float64:
		return idl.Double(x)
	case bool:
		return idl.Bool(x)
	case []string:
		return idl.Strings(x)
	default:
		return idl.String(fmt.Sprintf("%v", x))
	}
}
