// Package gateway is the reproduction's JDBC: a uniform driver/connection
// interface over heterogeneous database engines, plus the Information Source
// Interface (ISI) that exposes any connection as a CORBA servant so that a
// database can be queried through the ORB from anywhere in the federation
// (the paper's "each database is encapsulated in a CORBA server object").
package gateway

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/idl"
)

// Result is a uniform result set: column names plus rows of self-describing
// values, so results survive the trip through the ORB unchanged.
type Result struct {
	Columns      []string
	Rows         [][]idl.Any
	RowsAffected int64
}

// Format renders the result as an aligned text table.
func (r *Result) Format() string {
	if len(r.Columns) == 0 {
		return fmt.Sprintf("OK, %d row(s) affected", r.RowsAffected)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := renderAny(v)
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(v)
			for p := len(v); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d row(s))\n", len(r.Rows))
	return b.String()
}

func renderAny(v idl.Any) string {
	switch v.Kind {
	case idl.KindNull:
		return "NULL"
	case idl.KindString:
		return v.Str
	default:
		return v.String()
	}
}

// ToAny packs the result into one Any for transport through the ORB.
func (r *Result) ToAny() idl.Any {
	rows := make([]idl.Any, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = idl.Seq(row...)
	}
	return idl.Struct(
		idl.F("columns", idl.Strings(r.Columns)),
		idl.F("rows", idl.Seq(rows...)),
		idl.F("affected", idl.Long(r.RowsAffected)),
	)
}

// ResultFromAny unpacks a result shipped by ToAny.
func ResultFromAny(a idl.Any) (*Result, error) {
	if a.Kind != idl.KindStruct {
		return nil, fmt.Errorf("gateway: result payload is %s, not struct", a.Kind)
	}
	cols, _ := a.Get("columns")
	rowsAny, _ := a.Get("rows")
	res := &Result{Columns: cols.StringSlice(), RowsAffected: a.GetInt("affected")}
	for _, row := range rowsAny.Seq {
		res.Rows = append(res.Rows, row.Seq)
	}
	return res, nil
}

// SourceMeta describes an engine behind a connection.
type SourceMeta struct {
	Engine   string // "Oracle", "mSQL", "DB2", "Sybase", "ObjectStore", "Ontos"
	Database string // database name
	Model    string // "relational" or "object-oriented"
}

// RowIter is a pull-based iterator over a query's rows. Next returns the
// next row, or io.EOF once the result is exhausted; the returned slice is
// only valid until the following Next. Close releases any server-side
// cursor behind the iterator and must always be called (a deferred Close is
// idempotent with normal exhaustion). Iterators are not safe for concurrent
// use, like the connections that produce them.
type RowIter interface {
	// Columns names the result columns, known as soon as the iterator opens.
	Columns() []string
	// Next returns the next row or io.EOF. The context bounds one fetch
	// round trip (where the transport fetches lazily), not the whole drain.
	Next(ctx context.Context) ([]idl.Any, error)
	// Close releases the iterator and any server-side cursor behind it.
	Close() error
}

// rowsAffected is implemented by iterators that know the statement's
// affected-row count; Drain propagates it into the rebuilt Result.
type rowsAffected interface{ RowsAffected() int64 }

// Drain consumes a RowIter to exhaustion and rebuilds the whole-result
// shape. It is how the deprecated whole-result query paths delegate to the
// cursor protocol; new code should iterate instead of draining.
func Drain(ctx context.Context, it RowIter) (*Result, error) {
	defer it.Close()
	res := &Result{Columns: it.Columns()}
	if ra, ok := it.(rowsAffected); ok {
		res.RowsAffected = ra.RowsAffected()
	}
	for {
		row, err := it.Next(ctx)
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
}

// sliceIter adapts a materialized Result to RowIter (in-process engines, and
// the fallback when a remote peer predates the cursor protocol).
type sliceIter struct {
	res *Result
	pos int
}

// NewSliceIter returns a RowIter over an already-materialized result.
func NewSliceIter(res *Result) RowIter { return &sliceIter{res: res} }

func (it *sliceIter) Columns() []string   { return it.res.Columns }
func (it *sliceIter) RowsAffected() int64 { return it.res.RowsAffected }
func (it *sliceIter) Close() error        { return nil }
func (it *sliceIter) Next(context.Context) ([]idl.Any, error) {
	if it.pos >= len(it.res.Rows) {
		return nil, io.EOF
	}
	row := it.res.Rows[it.pos]
	it.pos++
	return row, nil
}

// Conn is one open connection to a database, in the shape of a JDBC
// connection: statement execution plus transaction control. Connections are
// not safe for concurrent use. Statement execution is context-first: the
// context carries trace parentage across ORB hops (remote ISI connections)
// and its deadline/cancellation bounds the statement; in-process drivers may
// ignore it.
type Conn interface {
	// Query runs a read-only query in the engine's native language (SQL for
	// relational engines, OQL for object-oriented ones) and materializes the
	// whole result. Prefer QueryCursor for results that may be large: Query
	// buffers every row at both ends of the wire.
	Query(ctx context.Context, q string) (*Result, error)
	// QueryCursor runs a read-only query and returns a pull-based iterator
	// over its rows, moving at most batchSize rows per round trip where the
	// transport streams (batchSize <= 0 fetches everything in one batch).
	// The caller must Close the iterator.
	QueryCursor(ctx context.Context, q string, batchSize int) (RowIter, error)
	// Exec runs any statement.
	Exec(ctx context.Context, q string) (*Result, error)
	// Begin/Commit/Rollback control a transaction where the engine supports
	// them.
	Begin() error
	Commit() error
	Rollback() error
	// Meta describes the engine.
	Meta() SourceMeta
	// Tables lists the queryable containers (tables or classes).
	Tables() []string
	Close() error
}

// QueryContext runs a query on a connection.
//
// Deprecated: Conn.Query is context-first now; call c.Query(ctx, q) directly.
func QueryContext(ctx context.Context, c Conn, q string) (*Result, error) {
	return c.Query(ctx, q)
}

// ExecContext runs a statement on a connection.
//
// Deprecated: Conn.Exec is context-first now; call c.Exec(ctx, q) directly.
func ExecContext(ctx context.Context, c Conn, q string) (*Result, error) {
	return c.Exec(ctx, q)
}

// Driver creates connections for one DSN scheme.
type Driver interface {
	Open(name string) (Conn, error)
}

// Manager is the DriverManager: a registry of drivers keyed by scheme. DSNs
// have the form "scheme://name", e.g. "oracle://RBH" or
// "objectstore://codb-RBH".
type Manager struct {
	mu      sync.RWMutex
	drivers map[string]Driver
}

// NewManager returns an empty driver manager.
func NewManager() *Manager {
	return &Manager{drivers: make(map[string]Driver)}
}

// Register installs a driver for a scheme (lower-cased).
func (m *Manager) Register(scheme string, d Driver) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.drivers[strings.ToLower(scheme)] = d
}

// Schemes lists registered schemes, sorted.
func (m *Manager) Schemes() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.drivers))
	for s := range m.drivers {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Open parses a DSN and opens a connection through the matching driver.
func (m *Manager) Open(dsn string) (Conn, error) {
	scheme, name, ok := strings.Cut(dsn, "://")
	if !ok {
		return nil, fmt.Errorf("gateway: malformed DSN %q (want scheme://name)", dsn)
	}
	m.mu.RLock()
	d, found := m.drivers[strings.ToLower(scheme)]
	m.mu.RUnlock()
	if !found {
		return nil, fmt.Errorf("gateway: no driver for scheme %q", scheme)
	}
	conn, err := d.Open(name)
	if err != nil {
		return nil, fmt.Errorf("gateway: open %s: %w", dsn, err)
	}
	return conn, nil
}
