package gateway

import (
	"context"
	"strings"
	"testing"

	"repro/internal/idl"
	"repro/internal/oodb"
	"repro/internal/orb"
	"repro/internal/relational"
)

func newOracleDB(t *testing.T) *relational.Database {
	t.Helper()
	db := relational.NewDatabase("RBH", relational.DialectOracle)
	if _, err := db.ExecScript(`
		CREATE TABLE medical_students (student_id INT PRIMARY KEY, name VARCHAR(64), course VARCHAR(32), year INT);
		INSERT INTO medical_students VALUES
			(1, 'J. Chen', 'Medicine', 4),
			(2, 'P. Okoye', 'Medicine', 5),
			(3, 'S. Weiss', 'Surgery', 6);
	`); err != nil {
		t.Fatal(err)
	}
	return db
}

func newCoDB(t *testing.T) *oodb.DB {
	t.Helper()
	db := oodb.NewDB("codb-RBH")
	if _, err := db.DefineClass("InformationType", "",
		oodb.Attribute{Name: "Name", Type: oodb.AttrString}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineClass("Research", "InformationType",
		oodb.Attribute{Name: "Field", Type: oodb.AttrString}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.NewObject("Research", map[string]any{"Name": "RBH", "Field": "oncology"}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestManagerAndRelationalDriver(t *testing.T) {
	m := NewManager()
	drv := NewRelationalDriver("Oracle")
	if err := drv.Add(newOracleDB(t)); err != nil {
		t.Fatal(err)
	}
	m.Register("oracle", drv)

	conn, err := m.Open("oracle://RBH")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := conn.Query(context.Background(), "SELECT * FROM medical_students ORDER BY student_id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || len(res.Columns) != 4 {
		t.Fatalf("rows=%d cols=%d", len(res.Rows), len(res.Columns))
	}
	if res.Rows[0][1].Str != "J. Chen" {
		t.Errorf("row 0: %v", res.Rows[0])
	}
	meta := conn.Meta()
	if meta.Engine != "Oracle" || meta.Model != "relational" || meta.Database != "RBH" {
		t.Errorf("meta = %+v", meta)
	}
	tables := conn.Tables()
	if len(tables) != 1 || tables[0] != "medical_students" {
		t.Errorf("tables = %v", tables)
	}
}

func TestManagerErrors(t *testing.T) {
	m := NewManager()
	if _, err := m.Open("no-scheme-separator"); err == nil {
		t.Error("malformed DSN accepted")
	}
	if _, err := m.Open("nope://x"); err == nil {
		t.Error("unknown scheme accepted")
	}
	drv := NewRelationalDriver("Oracle")
	m.Register("oracle", drv)
	if _, err := m.Open("oracle://missing"); err == nil {
		t.Error("unknown database accepted")
	}
	// Dialect mismatch at registration.
	msqlDB := relational.NewDatabase("X", relational.DialectMSQL)
	if err := drv.Add(msqlDB); err == nil {
		t.Error("dialect mismatch accepted")
	}
	if got := m.Schemes(); len(got) != 1 || got[0] != "oracle" {
		t.Errorf("schemes = %v", got)
	}
}

func TestRelationalConnTransactions(t *testing.T) {
	drv := NewRelationalDriver("Oracle")
	db := newOracleDB(t)
	if err := drv.Add(db); err != nil {
		t.Fatal(err)
	}
	conn, err := drv.Open("RBH")
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(context.Background(), "DELETE FROM medical_students"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Rollback(); err != nil {
		t.Fatal(err)
	}
	res, _ := conn.Query(context.Background(), "SELECT COUNT(*) FROM medical_students")
	if res.Rows[0][0].Int != 3 {
		t.Errorf("rollback through gateway failed: %v", res.Rows[0][0])
	}
	// Close rolls back an open transaction.
	if err := conn.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(context.Background(), "DELETE FROM medical_students"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	dres, _ := db.Query("SELECT COUNT(*) FROM medical_students")
	if dres.Rows[0][0].Int != 3 {
		t.Error("Close did not roll back")
	}
	if _, err := conn.Query(context.Background(), "SELECT 1"); err == nil {
		t.Error("query on closed connection accepted")
	}
}

func TestObjectDriverOQL(t *testing.T) {
	drv := NewObjectDriver("ObjectStore")
	drv.Add(newCoDB(t))
	conn, err := drv.Open("codb-RBH")
	if err != nil {
		t.Fatal(err)
	}
	res, err := conn.Query(context.Background(), "SELECT Name, Field FROM Research WHERE Field = 'oncology'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "RBH" {
		t.Errorf("rows = %v", res.Rows)
	}
	if conn.Meta().Model != "object-oriented" {
		t.Errorf("meta = %+v", conn.Meta())
	}
	if err := conn.Begin(); err == nil {
		t.Error("OO transactions accepted")
	}
	if got := conn.Tables(); len(got) != 2 {
		t.Errorf("classes = %v", got)
	}
	if _, err := drv.Open("missing"); err == nil {
		t.Error("unknown OO database accepted")
	}
}

func TestResultAnyRoundTrip(t *testing.T) {
	in := &Result{
		Columns:      []string{"a", "b"},
		Rows:         [][]idl.Any{{idl.Long(1), idl.String("x")}, {idl.Null(), idl.Double(2.5)}},
		RowsAffected: 7,
	}
	out, err := ResultFromAny(in.ToAny())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 || out.RowsAffected != 7 || out.Columns[1] != "b" {
		t.Errorf("round trip = %+v", out)
	}
	if !out.Rows[1][1].Equal(idl.Double(2.5)) || !out.Rows[1][0].Equal(idl.Null()) {
		t.Errorf("values = %v", out.Rows[1])
	}
	if _, err := ResultFromAny(idl.String("junk")); err == nil {
		t.Error("non-struct payload accepted")
	}
}

func TestResultFormat(t *testing.T) {
	r := &Result{Columns: []string{"id", "name"},
		Rows: [][]idl.Any{{idl.Long(1), idl.String("J. Chen")}}}
	text := r.Format()
	if !strings.Contains(text, "J. Chen") || !strings.Contains(text, "(1 row(s))") {
		t.Errorf("format:\n%s", text)
	}
	empty := &Result{RowsAffected: 2}
	if !strings.Contains(empty.Format(), "2 row(s) affected") {
		t.Errorf("empty format: %s", empty.Format())
	}
}

// TestISIOverIIOP drives the full paper path: client ORB -> IIOP -> ISI
// servant -> JDBC-like conn -> relational engine, and back.
func TestISIOverIIOP(t *testing.T) {
	server := orb.New(orb.Options{Product: orb.VisiBroker, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()

	drv := NewRelationalDriver("Oracle")
	if err := drv.Add(newOracleDB(t)); err != nil {
		t.Fatal(err)
	}
	local, err := drv.Open("RBH")
	if err != nil {
		t.Fatal(err)
	}
	ior, err := server.Activate("ISI/RBH", NewISIServant(local))
	if err != nil {
		t.Fatal(err)
	}

	client := orb.New(orb.Options{Product: orb.OrbixWeb, DisableColocation: true})
	defer client.Shutdown()
	rconn := NewRemoteConn(client.Resolve(ior))

	res, err := rconn.Query(context.Background(), "SELECT name FROM medical_students WHERE year > 4 ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "P. Okoye" {
		t.Errorf("remote rows = %v", res.Rows)
	}
	meta := rconn.Meta()
	if meta.Engine != "Oracle" || meta.Database != "RBH" {
		t.Errorf("remote meta = %+v", meta)
	}
	if tables := rconn.Tables(); len(tables) != 1 {
		t.Errorf("remote tables = %v", tables)
	}
	// Engine errors surface with the engine's message.
	_, err = rconn.Query(context.Background(), "SELECT * FROM no_such_table")
	if err == nil || !strings.Contains(err.Error(), "no_such_table") {
		t.Errorf("remote error = %v", err)
	}
	// Exec crosses the wire too.
	out, err := rconn.Exec(context.Background(), "INSERT INTO medical_students VALUES (4, 'New', 'Medicine', 1)")
	if err != nil || out.RowsAffected != 1 {
		t.Errorf("remote exec: %+v, %v", out, err)
	}
	if err := rconn.Begin(); err == nil {
		t.Error("remote transaction accepted")
	}
	if err := rconn.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rconn.Query(context.Background(), "SELECT 1"); err == nil {
		t.Error("closed remote conn accepted query")
	}
}

func TestRemoteDriverDSN(t *testing.T) {
	server := orb.New(orb.Options{Product: orb.Orbix})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	drv := NewRelationalDriver("Oracle")
	if err := drv.Add(newOracleDB(t)); err != nil {
		t.Fatal(err)
	}
	local, _ := drv.Open("RBH")
	ior, _ := server.Activate("ISI/RBH", NewISIServant(local))

	m := NewManager()
	m.Register("remote", &RemoteDriver{ORB: server})
	conn, err := m.Open("remote://" + orb.Stringify(ior))
	if err != nil {
		t.Fatal(err)
	}
	res, err := conn.Query(context.Background(), "SELECT COUNT(*) FROM medical_students")
	if err != nil || res.Rows[0][0].Int != 3 {
		t.Errorf("remote dsn query: %v %v", res, err)
	}
	if _, err := m.Open("remote://garbage"); err == nil {
		t.Error("bad IOR accepted")
	}
}

func TestMSQLDialectThroughGateway(t *testing.T) {
	db := relational.NewDatabase("CentreLink", relational.DialectMSQL)
	if _, err := db.ExecScript(`
		CREATE TABLE benefits (person_id INT, amount FLOAT);
		INSERT INTO benefits VALUES (1, 120.5), (2, 80.0);
	`); err != nil {
		t.Fatal(err)
	}
	drv := NewRelationalDriver("mSQL")
	if err := drv.Add(db); err != nil {
		t.Fatal(err)
	}
	conn, _ := drv.Open("CentreLink")
	// Plain selects work; aggregates are refused by the dialect.
	if _, err := conn.Query(context.Background(), "SELECT * FROM benefits"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Query(context.Background(), "SELECT SUM(amount) FROM benefits"); err == nil {
		t.Error("mSQL aggregate accepted through gateway")
	}
	if err := conn.Begin(); err == nil {
		t.Error("mSQL transaction accepted through gateway")
	}
}
