package gateway

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/cursor"
	"repro/internal/idl"
	"repro/internal/orb"
	"repro/internal/trace"
)

// ISIIDL is the Information Source Interface: the CORBA face of one
// database. It is the object the paper's data layer exposes per source
// ("an information source interface provides access to a specific database
// server ... delivering requests from the communication layer and retrieving
// results from this database").
var ISIIDL = idl.MustParse(`
module WebFINDIT {
    interface ISI {
        any query(in string q);
        any exec(in string q);
        any meta();
        sequence<any> tables();
        any open_cursor(in string q, in long long batch);
        any fetch_cursor(in long long id);
        void close_cursor(in long long id);
    };
};
`)[0]

// ISIServantOptions tune the servant's cursor table; the zero value selects
// the cursor package defaults.
type ISIServantOptions struct {
	CursorMaxOpen int              // per-connection open-cursor cap
	CursorIdleTTL time.Duration    // idle reap threshold
	Clock         func() time.Time // nil = time.Now (simulations inject one)
}

// NewISIServant wraps a connection in an ISI servant with default cursor
// options. Invocations are serialised with a mutex because gateway
// connections, like JDBC connections, are single-threaded. query and exec
// open a per-driver timing span ("isi.query:<engine>"), so the time a
// source's engine spends on each statement is visible in the trace of the
// query that reached it.
func NewISIServant(conn Conn) orb.Servant {
	s, _ := NewISIServantWith(conn, ISIServantOptions{})
	return s
}

// NewISIServantWith is NewISIServant with cursor options; it also returns
// the servant's cursor table so the node can publish its stats.
func NewISIServantWith(conn Conn, opts ISIServantOptions) (orb.Servant, *cursor.Table) {
	var mu sync.Mutex
	meta := conn.Meta()
	cursors := cursor.NewTable(opts.CursorMaxOpen, opts.CursorIdleTTL, opts.Clock)
	h := orb.NewHandler(ISIIDL)
	h.OnCtx("query", func(ctx context.Context, args []idl.Any) (idl.Any, error) {
		mu.Lock()
		defer mu.Unlock()
		ctx, sp := trace.StartSpan(ctx, "isi.query:"+meta.Engine)
		sp.SetAttr("database", meta.Database)
		res, err := conn.Query(ctx, args[0].Str)
		sp.End(err)
		if err != nil {
			return idl.Null(), &orb.UserException{Name: "QueryError", Message: err.Error()}
		}
		return res.ToAny(), nil
	})
	h.OnCtx("open_cursor", func(ctx context.Context, args []idl.Any) (idl.Any, error) {
		mu.Lock()
		defer mu.Unlock()
		ctx, sp := trace.StartSpan(ctx, "isi.cursor:"+meta.Engine)
		sp.SetAttr("database", meta.Database)
		res, err := conn.Query(ctx, args[0].Str)
		sp.End(err)
		if err != nil {
			return idl.Null(), &orb.UserException{Name: "QueryError", Message: err.Error()}
		}
		items := make([]idl.Any, len(res.Rows))
		for i, row := range res.Rows {
			items[i] = idl.Seq(row...)
		}
		id, first, done, err := cursors.Open(items, int(args[1].Int))
		if err != nil {
			// ErrTooMany crosses as a CursorError; clients fall back to the
			// whole-result query op.
			return idl.Null(), &orb.UserException{Name: "CursorError", Message: err.Error()}
		}
		return idl.Struct(
			idl.F("id", idl.Long(id)),
			idl.F("columns", idl.Strings(res.Columns)),
			idl.F("affected", idl.Long(res.RowsAffected)),
			idl.F("rows", idl.Seq(first...)),
			idl.F("done", idl.Bool(done)),
		), nil
	})
	h.On("fetch_cursor", func(args []idl.Any) (idl.Any, error) {
		mu.Lock()
		defer mu.Unlock()
		batch, done, err := cursors.Fetch(args[0].Int)
		if err != nil {
			return idl.Null(), &orb.UserException{Name: "CursorError", Message: err.Error()}
		}
		return idl.Struct(
			idl.F("rows", idl.Seq(batch...)),
			idl.F("done", idl.Bool(done)),
		), nil
	})
	h.On("close_cursor", func(args []idl.Any) (idl.Any, error) {
		mu.Lock()
		defer mu.Unlock()
		cursors.Close(args[0].Int)
		return idl.Any{Kind: idl.KindVoid}, nil
	})
	h.OnCtx("exec", func(ctx context.Context, args []idl.Any) (idl.Any, error) {
		mu.Lock()
		defer mu.Unlock()
		ctx, sp := trace.StartSpan(ctx, "isi.exec:"+meta.Engine)
		sp.SetAttr("database", meta.Database)
		res, err := conn.Exec(ctx, args[0].Str)
		sp.End(err)
		if err != nil {
			return idl.Null(), &orb.UserException{Name: "ExecError", Message: err.Error()}
		}
		return res.ToAny(), nil
	})
	h.On("meta", func(args []idl.Any) (idl.Any, error) {
		mu.Lock()
		defer mu.Unlock()
		m := conn.Meta()
		return idl.Struct(
			idl.F("engine", idl.String(m.Engine)),
			idl.F("database", idl.String(m.Database)),
			idl.F("model", idl.String(m.Model)),
		), nil
	})
	h.On("tables", func(args []idl.Any) (idl.Any, error) {
		mu.Lock()
		defer mu.Unlock()
		return idl.Strings(conn.Tables()), nil
	})
	return h, cursors
}

// RemoteConn is a gateway connection whose engine lives behind an ISI
// servant reachable through the ORB. It lets the federation treat remote
// sources exactly like local ones.
type RemoteConn struct {
	ref    *orb.ObjectRef
	closed bool
}

// NewRemoteConn wraps an ISI object reference.
func NewRemoteConn(ref *orb.ObjectRef) *RemoteConn { return &RemoteConn{ref: ref} }

func (c *RemoteConn) check() error {
	if c.closed {
		return fmt.Errorf("gateway: remote connection is closed")
	}
	return nil
}

// Query implements Conn: the context travels through the ORB hop, so the
// remote ISI's driver span joins the caller's trace and the deadline bounds
// the exchange. Queries are idempotent, so transport failures retry under the
// client ORB's retry policy.
//
// It delegates to QueryCursor (batch 0: the whole result in the open round
// trip, so the cost profile is unchanged) and drains the iterator. Prefer
// QueryCursor for results that may be large.
func (c *RemoteConn) Query(ctx context.Context, q string) (*Result, error) {
	it, err := c.QueryCursor(ctx, q, 0)
	if err != nil {
		return nil, err
	}
	return Drain(ctx, it)
}

// queryWhole is the pre-cursor whole-result query op, kept as the fallback
// for peers that predate the cursor protocol.
func (c *RemoteConn) queryWhole(ctx context.Context, q string) (*Result, error) {
	a, err := c.ref.InvokeIdempotent(ctx, "query", idl.String(q))
	if err != nil {
		return nil, remapISIError(err)
	}
	return ResultFromAny(a)
}

// cursorFallback reports an error that means "use the whole-result op
// instead": the peer predates open_cursor (BAD_OPERATION) or refuses to
// open another cursor (the table's cap).
func cursorFallback(err error) bool {
	var se *orb.SystemException
	if errors.As(err, &se) && se.Name == orb.ExcBadOperation {
		return true
	}
	var ue *orb.UserException
	return errors.As(err, &ue) && ue.Name == "CursorError" &&
		strings.Contains(ue.Message, "too many open cursors")
}

// QueryCursor implements Conn over the ISI cursor protocol: open_cursor runs
// the query and returns the first batch (a small result costs one round trip
// and leaves no server state), fetch_cursor pulls subsequent batches on
// demand, close_cursor releases an abandoned stream. Peers that predate the
// protocol — and servers at their cursor cap — are handled by falling back
// to the whole-result query op behind a materialized iterator.
func (c *RemoteConn) QueryCursor(ctx context.Context, q string, batchSize int) (RowIter, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	a, err := c.ref.InvokeIdempotent(ctx, "open_cursor", idl.String(q), idl.Long(int64(batchSize)))
	if err != nil {
		if cursorFallback(err) {
			res, qerr := c.queryWhole(ctx, q)
			if qerr != nil {
				return nil, qerr
			}
			return NewSliceIter(res), nil
		}
		return nil, remapISIError(err)
	}
	if a.Kind != idl.KindStruct {
		return nil, fmt.Errorf("gateway: open_cursor reply is %s, not struct", a.Kind)
	}
	rows, _ := a.Get("rows")
	done, _ := a.Get("done")
	cols, _ := a.Get("columns")
	return &remoteCursorIter{
		conn:     c,
		id:       a.GetInt("id"),
		cols:     cols.StringSlice(),
		affected: a.GetInt("affected"),
		buf:      rows.Seq,
		done:     done.Bool,
	}, nil
}

// remoteCursorIter pulls batches from a server-side ISI cursor. One batch is
// buffered at a time; the next fetch is only issued once the buffer drains,
// which is what makes the consumer's pace the producer's pace.
type remoteCursorIter struct {
	conn     *RemoteConn
	id       int64
	cols     []string
	affected int64
	buf      []idl.Any // packed rows (each a Seq) of the current batch
	pos      int
	done     bool // server reported the cursor exhausted (and removed it)
	closed   bool
}

func (it *remoteCursorIter) Columns() []string   { return it.cols }
func (it *remoteCursorIter) RowsAffected() int64 { return it.affected }

func (it *remoteCursorIter) Next(ctx context.Context) ([]idl.Any, error) {
	if it.closed {
		return nil, fmt.Errorf("gateway: cursor iterator is closed")
	}
	for it.pos >= len(it.buf) {
		if it.done {
			return nil, io.EOF
		}
		a, err := it.conn.ref.InvokeIdempotent(ctx, "fetch_cursor", idl.Long(it.id))
		if err != nil {
			// The fetch failed (cursor reaped, member died, ctx over): the
			// server-side cursor may still exist, so Close still tries.
			return nil, remapISIError(err)
		}
		rows, _ := a.Get("rows")
		done, _ := a.Get("done")
		it.buf, it.pos, it.done = rows.Seq, 0, done.Bool
	}
	row := it.buf[it.pos]
	it.pos++
	return row.Seq, nil
}

// Close releases the server-side cursor. It is detached from the caller's
// context on purpose: cancelling a stream (LIMIT satisfied, Rows.Close) is
// exactly when the close RPC must still go out.
func (it *remoteCursorIter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	if it.done || it.id == 0 {
		return nil // exhausted cursors are already gone server-side
	}
	ctx, cancel := context.WithTimeout(context.Background(), closeCursorTimeout)
	defer cancel()
	_, err := it.conn.ref.InvokeIdempotent(ctx, "close_cursor", idl.Long(it.id))
	return err
}

// closeCursorTimeout bounds the detached close_cursor round trip. Losing the
// race just means the idle reaper collects the cursor later.
const closeCursorTimeout = 2 * time.Second

// Exec implements Conn. Statements may mutate, so they are never retried
// transparently.
func (c *RemoteConn) Exec(ctx context.Context, q string) (*Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	a, err := c.ref.InvokeCtx(ctx, "exec", idl.String(q))
	if err != nil {
		return nil, remapISIError(err)
	}
	return ResultFromAny(a)
}

// Begin is unsupported across the ISI boundary (as in the paper's prototype,
// remote access is per-statement).
func (c *RemoteConn) Begin() error {
	return fmt.Errorf("gateway: remote connections do not support transactions")
}

// Commit implements Conn.
func (c *RemoteConn) Commit() error { return c.Begin() }

// Rollback implements Conn.
func (c *RemoteConn) Rollback() error { return c.Begin() }

// Meta implements Conn by asking the remote side.
func (c *RemoteConn) Meta() SourceMeta {
	a, err := c.ref.Invoke("meta")
	if err != nil {
		return SourceMeta{Engine: "unreachable"}
	}
	return SourceMeta{
		Engine:   a.GetString("engine"),
		Database: a.GetString("database"),
		Model:    a.GetString("model"),
	}
}

// Tables implements Conn by asking the remote side.
func (c *RemoteConn) Tables() []string {
	a, err := c.ref.Invoke("tables")
	if err != nil {
		return nil
	}
	return a.StringSlice()
}

// Close implements Conn.
func (c *RemoteConn) Close() error {
	c.closed = true
	return nil
}

// remapISIError unwraps ISI user exceptions into plain errors so callers see
// the engine's message rather than exception plumbing.
func remapISIError(err error) error {
	if ue, ok := err.(*orb.UserException); ok {
		return fmt.Errorf("%s", ue.Message)
	}
	return err
}

// RemoteDriver opens connections to ISI servants via stringified IORs
// (DSN form "remote://IOR:...").
type RemoteDriver struct {
	ORB *orb.ORB
}

// Open implements Driver.
func (d *RemoteDriver) Open(name string) (Conn, error) {
	ref, err := d.ORB.ResolveString(name)
	if err != nil {
		return nil, err
	}
	return NewRemoteConn(ref), nil
}

var _ Conn = (*RemoteConn)(nil)
var _ Driver = (*RemoteDriver)(nil)
var _ Driver = (*RelationalDriver)(nil)
var _ Driver = (*ObjectDriver)(nil)
