package gateway

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/idl"
	"repro/internal/orb"
	"repro/internal/trace"
)

// ISIIDL is the Information Source Interface: the CORBA face of one
// database. It is the object the paper's data layer exposes per source
// ("an information source interface provides access to a specific database
// server ... delivering requests from the communication layer and retrieving
// results from this database").
var ISIIDL = idl.MustParse(`
module WebFINDIT {
    interface ISI {
        any query(in string q);
        any exec(in string q);
        any meta();
        sequence<any> tables();
    };
};
`)[0]

// NewISIServant wraps a connection in an ISI servant. Invocations are
// serialised with a mutex because gateway connections, like JDBC
// connections, are single-threaded. query and exec open a per-driver timing
// span ("isi.query:<engine>"), so the time a source's engine spends on each
// statement is visible in the trace of the query that reached it.
func NewISIServant(conn Conn) orb.Servant {
	var mu sync.Mutex
	meta := conn.Meta()
	h := orb.NewHandler(ISIIDL)
	h.OnCtx("query", func(ctx context.Context, args []idl.Any) (idl.Any, error) {
		mu.Lock()
		defer mu.Unlock()
		ctx, sp := trace.StartSpan(ctx, "isi.query:"+meta.Engine)
		sp.SetAttr("database", meta.Database)
		res, err := conn.Query(ctx, args[0].Str)
		sp.End(err)
		if err != nil {
			return idl.Null(), &orb.UserException{Name: "QueryError", Message: err.Error()}
		}
		return res.ToAny(), nil
	})
	h.OnCtx("exec", func(ctx context.Context, args []idl.Any) (idl.Any, error) {
		mu.Lock()
		defer mu.Unlock()
		ctx, sp := trace.StartSpan(ctx, "isi.exec:"+meta.Engine)
		sp.SetAttr("database", meta.Database)
		res, err := conn.Exec(ctx, args[0].Str)
		sp.End(err)
		if err != nil {
			return idl.Null(), &orb.UserException{Name: "ExecError", Message: err.Error()}
		}
		return res.ToAny(), nil
	})
	h.On("meta", func(args []idl.Any) (idl.Any, error) {
		mu.Lock()
		defer mu.Unlock()
		m := conn.Meta()
		return idl.Struct(
			idl.F("engine", idl.String(m.Engine)),
			idl.F("database", idl.String(m.Database)),
			idl.F("model", idl.String(m.Model)),
		), nil
	})
	h.On("tables", func(args []idl.Any) (idl.Any, error) {
		mu.Lock()
		defer mu.Unlock()
		return idl.Strings(conn.Tables()), nil
	})
	return h
}

// RemoteConn is a gateway connection whose engine lives behind an ISI
// servant reachable through the ORB. It lets the federation treat remote
// sources exactly like local ones.
type RemoteConn struct {
	ref    *orb.ObjectRef
	closed bool
}

// NewRemoteConn wraps an ISI object reference.
func NewRemoteConn(ref *orb.ObjectRef) *RemoteConn { return &RemoteConn{ref: ref} }

func (c *RemoteConn) check() error {
	if c.closed {
		return fmt.Errorf("gateway: remote connection is closed")
	}
	return nil
}

// Query implements Conn: the context travels through the ORB hop, so the
// remote ISI's driver span joins the caller's trace and the deadline bounds
// the exchange. Queries are idempotent, so transport failures retry under the
// client ORB's retry policy.
func (c *RemoteConn) Query(ctx context.Context, q string) (*Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	a, err := c.ref.InvokeIdempotent(ctx, "query", idl.String(q))
	if err != nil {
		return nil, remapISIError(err)
	}
	return ResultFromAny(a)
}

// Exec implements Conn. Statements may mutate, so they are never retried
// transparently.
func (c *RemoteConn) Exec(ctx context.Context, q string) (*Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	a, err := c.ref.InvokeCtx(ctx, "exec", idl.String(q))
	if err != nil {
		return nil, remapISIError(err)
	}
	return ResultFromAny(a)
}

// Begin is unsupported across the ISI boundary (as in the paper's prototype,
// remote access is per-statement).
func (c *RemoteConn) Begin() error {
	return fmt.Errorf("gateway: remote connections do not support transactions")
}

// Commit implements Conn.
func (c *RemoteConn) Commit() error { return c.Begin() }

// Rollback implements Conn.
func (c *RemoteConn) Rollback() error { return c.Begin() }

// Meta implements Conn by asking the remote side.
func (c *RemoteConn) Meta() SourceMeta {
	a, err := c.ref.Invoke("meta")
	if err != nil {
		return SourceMeta{Engine: "unreachable"}
	}
	return SourceMeta{
		Engine:   a.GetString("engine"),
		Database: a.GetString("database"),
		Model:    a.GetString("model"),
	}
}

// Tables implements Conn by asking the remote side.
func (c *RemoteConn) Tables() []string {
	a, err := c.ref.Invoke("tables")
	if err != nil {
		return nil
	}
	return a.StringSlice()
}

// Close implements Conn.
func (c *RemoteConn) Close() error {
	c.closed = true
	return nil
}

// remapISIError unwraps ISI user exceptions into plain errors so callers see
// the engine's message rather than exception plumbing.
func remapISIError(err error) error {
	if ue, ok := err.(*orb.UserException); ok {
		return fmt.Errorf("%s", ue.Message)
	}
	return err
}

// RemoteDriver opens connections to ISI servants via stringified IORs
// (DSN form "remote://IOR:...").
type RemoteDriver struct {
	ORB *orb.ORB
}

// Open implements Driver.
func (d *RemoteDriver) Open(name string) (Conn, error) {
	ref, err := d.ORB.ResolveString(name)
	if err != nil {
		return nil, err
	}
	return NewRemoteConn(ref), nil
}

var _ Conn = (*RemoteConn)(nil)
var _ Driver = (*RemoteDriver)(nil)
var _ Driver = (*RelationalDriver)(nil)
var _ Driver = (*ObjectDriver)(nil)
