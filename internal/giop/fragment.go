package giop

import (
	"fmt"

	"repro/internal/cdr"
)

// GIOP 1.1 message fragmentation. A Reply (or Request) whose body exceeds a
// size threshold is written as an initial frame carrying the message header
// and the first slice of the body with the more-fragments flag set, followed
// by Fragment frames carrying the remaining slices. Each Fragment body opens
// with the request ID of the message it continues (the GIOP 1.2 fragment
// header, which this implementation adopts for 1.1 — pure 1.1 fragments are
// anonymous and would forbid interleaving), so fragments of different replies
// interleave freely on one multiplexed connection and one huge reply no
// longer head-of-line-blocks the frames of the pipelined calls behind it.
//
// Reassembly concatenates the initial body with each fragment's payload.
// Slicing happens on the fully CDR-encoded body, so byte offsets — and with
// them CDR alignment, which is relative to the message start — are preserved
// no matter where the splits fall.

// MsgFragment is the GIOP 1.1 Fragment message type.
const MsgFragment MsgType = 7

// FlagMoreFragments is the GIOP 1.1 header flag (bit 1) marking a message
// continued by a Fragment frame. Bit 0 remains the byte-order flag.
const FlagMoreFragments = 0x2

// MaxReassembledSize bounds a reassembled message body (MaxMessageSize still
// bounds each frame). It protects receivers from a peer streaming fragments
// forever.
const MaxReassembledSize = 64 << 20

// DefaultFragmentThreshold is the write-side auto-fragmentation threshold
// used when a caller passes 0: bodies above 256 KiB are split into frames of
// that size. Large enough that small replies pay nothing, small enough that
// a multi-megabyte result leaves the writer in slices other replies can
// interleave with.
const DefaultFragmentThreshold = 256 << 10

// FragmentHeader opens every Fragment body: the request ID of the message
// the fragment continues.
type FragmentHeader struct {
	RequestID uint32
}

// Marshal appends the header to a body encoder.
func (h *FragmentHeader) Marshal(e *cdr.Encoder) { e.WriteULong(h.RequestID) }

// UnmarshalFragmentHeader reads a Fragment header from a body decoder.
func UnmarshalFragmentHeader(d *cdr.Decoder) (*FragmentHeader, error) {
	id, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("giop: fragment header: %w", err)
	}
	return &FragmentHeader{RequestID: id}, nil
}

// WriteFragmented writes m through sw, splitting its body into an initial
// frame plus Fragment frames when it exceeds threshold (0 selects
// DefaultFragmentThreshold; negative disables splitting). minFirst keeps at
// least that many bytes — the message's embedded request/reply header — in
// the initial frame, so the receiver can always key the reassembly by request
// ID from frame one. Each frame is written atomically through sw, and frames
// of other messages may interleave between them; reassembly is keyed by
// reqID, which must match the request ID inside m's header. It returns the
// number of frames written.
func WriteFragmented(sw *SyncWriter, m *Message, reqID uint32, threshold, minFirst int) (int, error) {
	if threshold == 0 {
		threshold = DefaultFragmentThreshold
	}
	if threshold < 0 || len(m.Body) <= threshold {
		return 1, sw.Write(m)
	}
	first := threshold
	if first < minFirst {
		first = minFirst
	}
	if first >= len(m.Body) {
		return 1, sw.Write(m)
	}
	head := Message{Type: m.Type, Order: m.Order, Body: m.Body[:first], More: true}
	if err := sw.Write(&head); err != nil {
		return 0, err
	}
	frames := 1
	for off := first; off < len(m.Body); {
		end := off + threshold
		if end > len(m.Body) {
			end = len(m.Body)
		}
		more := end < len(m.Body)
		if err := sw.writeFragment(m.Order, reqID, m.Body[off:end], more); err != nil {
			return frames, err
		}
		frames++
		off = end
	}
	return frames, nil
}

// writeFragment frames one Fragment message — header, 4-byte fragment header
// (the request ID), payload — without copying the payload into a contiguous
// body first.
func (sw *SyncWriter) writeFragment(order cdr.ByteOrder, reqID uint32, payload []byte, more bool) error {
	size := 4 + len(payload)
	if size > MaxMessageSize {
		return fmt.Errorf("giop: fragment body %d exceeds limit", size)
	}
	sw.mu.Lock()
	if sw.err != nil {
		err := sw.err
		sw.mu.Unlock()
		return err
	}
	hdr := hdrPool.Get().(*[HeaderSize]byte)
	copy(hdr[0:4], magic[:])
	hdr[4] = Version[0]
	hdr[5] = Version[1]
	hdr[6] = byte(order)
	if more {
		hdr[6] |= FlagMoreFragments
	}
	hdr[7] = byte(MsgFragment)
	putULong(hdr[8:12], uint32(size), order)
	var frag [4]byte
	putULong(frag[:], reqID, order)
	_, err := sw.w.Write(hdr[:])
	if err == nil {
		_, err = sw.w.Write(frag[:])
	}
	if err == nil && len(payload) > 0 {
		_, err = sw.w.Write(payload)
	}
	hdrPool.Put(hdr)
	if err != nil {
		sw.err = fmt.Errorf("giop: write fragment: %w", err)
		err = sw.err
		sw.mu.Unlock()
		return err
	}
	if sw.bw == nil {
		sw.mu.Unlock()
		return nil
	}
	sw.dirty = true
	sw.mu.Unlock()
	select {
	case sw.kick <- struct{}{}:
	default:
	}
	return nil
}

// Reassembler accumulates fragmented messages keyed by request ID. It is not
// safe for concurrent use: each connection's demux read loop owns one, which
// is also what makes the accounting (pending count, byte caps) per
// connection. Completed messages come back as ordinary non-pooled Messages
// and flow through the same handling as unfragmented ones.
type Reassembler struct {
	maxPending int
	pending    map[uint32]*partialMsg
}

type partialMsg struct {
	typ   MsgType
	order cdr.ByteOrder
	body  []byte
}

// NewReassembler returns a reassembler admitting at most maxPending
// concurrent partial messages (<=0 selects 1). The bound mirrors the mux
// pipelining depth: a peer cannot hold more reassemblies open than it could
// have requests in flight.
func NewReassembler(maxPending int) *Reassembler {
	if maxPending <= 0 {
		maxPending = 1
	}
	return &Reassembler{maxPending: maxPending, pending: make(map[uint32]*partialMsg)}
}

// Pending reports the number of partial messages awaiting fragments.
func (ra *Reassembler) Pending() int { return len(ra.pending) }

// Begin starts reassembling a message whose initial frame arrived with the
// more-fragments flag. The frame's body is copied, so the caller may Release
// m immediately. reqID must be the request ID parsed from the frame's own
// request/reply header.
func (ra *Reassembler) Begin(reqID uint32, m *Message) error {
	if _, dup := ra.pending[reqID]; dup {
		return fmt.Errorf("giop: duplicate fragmented message for request %d", reqID)
	}
	if len(ra.pending) >= ra.maxPending {
		return fmt.Errorf("giop: too many fragmented messages in flight (%d)", len(ra.pending))
	}
	ra.pending[reqID] = &partialMsg{
		typ:   m.Type,
		order: m.Order,
		body:  append(make([]byte, 0, 2*len(m.Body)), m.Body...),
	}
	return nil
}

// Fragment consumes one Fragment frame. It returns the fully reassembled
// message when the frame was the last fragment, nil when more are expected,
// and an error on a protocol violation (a fragment for no known message, or
// a reassembly growing past MaxReassembledSize). The frame's payload is
// copied, so the caller may Release m immediately.
func (ra *Reassembler) Fragment(m *Message) (*Message, error) {
	d := m.BodyDecoder()
	fh, err := UnmarshalFragmentHeader(d)
	if err != nil {
		return nil, err
	}
	p, ok := ra.pending[fh.RequestID]
	if !ok {
		return nil, fmt.Errorf("giop: fragment for unknown request %d", fh.RequestID)
	}
	payload := m.Body[d.Pos():]
	if len(p.body)+len(payload) > MaxReassembledSize {
		delete(ra.pending, fh.RequestID)
		return nil, fmt.Errorf("giop: reassembled message for request %d exceeds limit", fh.RequestID)
	}
	p.body = append(p.body, payload...)
	if m.More {
		return nil, nil
	}
	delete(ra.pending, fh.RequestID)
	return &Message{Type: p.typ, Order: p.order, Body: p.body}, nil
}

// Cancel drops a pending reassembly (e.g. on CancelRequest); unknown IDs are
// a no-op.
func (ra *Reassembler) Cancel(reqID uint32) { delete(ra.pending, reqID) }
