package giop

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cdr"
)

// encodeReply builds a Reply message body: header for reqID plus payload
// bytes, returning the message and the encoded header length (the minFirst a
// fragmenting writer must keep in the initial frame).
func encodeReply(t testing.TB, reqID uint32, payload []byte) (*Message, int) {
	t.Helper()
	e := AcquireBodyEncoder(cdr.BigEndian)
	defer ReleaseBodyEncoder(e)
	rh := &ReplyHeader{RequestID: reqID, Status: ReplyNoException}
	rh.Marshal(e)
	hdrLen := e.Len()
	body := append(append([]byte(nil), e.Bytes()...), payload...)
	return &Message{Type: MsgReply, Order: cdr.BigEndian, Body: body}, hdrLen
}

// readAll drains every frame from buf.
func readAll(t testing.TB, buf *bytes.Buffer) []*Message {
	t.Helper()
	var msgs []*Message
	for buf.Len() > 0 {
		m, err := Read(buf)
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		// Copy out of the pool so the slice survives subsequent Reads.
		cp := &Message{Type: m.Type, Order: m.Order, More: m.More, Body: append([]byte(nil), m.Body...)}
		m.Release()
		msgs = append(msgs, cp)
	}
	return msgs
}

// reassemble feeds a frame sequence for one message through a Reassembler.
func reassemble(t testing.TB, ra *Reassembler, reqID uint32, frames []*Message) *Message {
	t.Helper()
	if !frames[0].More {
		t.Fatalf("initial frame lacks more-fragments flag")
	}
	if err := ra.Begin(reqID, frames[0]); err != nil {
		t.Fatalf("begin: %v", err)
	}
	var out *Message
	for i, f := range frames[1:] {
		if f.Type != MsgFragment {
			t.Fatalf("frame %d: type %v, want Fragment", i+1, f.Type)
		}
		m, err := ra.Fragment(f)
		if err != nil {
			t.Fatalf("fragment %d: %v", i+1, err)
		}
		if m != nil && i != len(frames)-2 {
			t.Fatalf("reassembly completed early at fragment %d of %d", i+1, len(frames)-1)
		}
		out = m
	}
	if out == nil {
		t.Fatalf("reassembly did not complete after %d frames", len(frames))
	}
	return out
}

func TestWriteFragmentedRoundTrip(t *testing.T) {
	payload := make([]byte, 10_000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	msg, hdrLen := encodeReply(t, 42, payload)
	want := append([]byte(nil), msg.Body...)

	var buf bytes.Buffer
	sw := NewSyncWriter(&buf, nil)
	frames, err := WriteFragmented(sw, msg, 42, 1024, hdrLen)
	if err != nil {
		t.Fatalf("write fragmented: %v", err)
	}
	if frames < 2 {
		t.Fatalf("frames = %d, want a fragmented write", frames)
	}

	msgs := readAll(t, &buf)
	if len(msgs) != frames {
		t.Fatalf("read %d frames, wrote %d", len(msgs), frames)
	}
	for i, m := range msgs[:len(msgs)-1] {
		if !m.More {
			t.Errorf("frame %d: more-fragments flag clear before the last frame", i)
		}
	}
	if last := msgs[len(msgs)-1]; last.More {
		t.Errorf("last frame still has more-fragments set")
	}

	ra := NewReassembler(4)
	out := reassemble(t, ra, 42, msgs)
	if out.Type != MsgReply || out.Order != cdr.BigEndian {
		t.Errorf("reassembled type/order = %v/%v", out.Type, out.Order)
	}
	if !bytes.Equal(out.Body, want) {
		t.Fatalf("reassembled body differs: %d vs %d bytes", len(out.Body), len(want))
	}
	d := out.BodyDecoder()
	rh, err := UnmarshalReplyHeader(d)
	if err != nil || rh.RequestID != 42 {
		t.Fatalf("reassembled reply header = %+v, %v", rh, err)
	}
	if ra.Pending() != 0 {
		t.Errorf("pending = %d after completion", ra.Pending())
	}
}

func TestWriteFragmentedSmallBodyPassthrough(t *testing.T) {
	msg, hdrLen := encodeReply(t, 7, []byte("tiny"))
	var buf bytes.Buffer
	sw := NewSyncWriter(&buf, nil)
	frames, err := WriteFragmented(sw, msg, 7, 1024, hdrLen)
	if err != nil || frames != 1 {
		t.Fatalf("frames, err = %d, %v; want 1 unfragmented frame", frames, err)
	}
	msgs := readAll(t, &buf)
	if len(msgs) != 1 || msgs[0].More {
		t.Fatalf("small body produced %d frames (more=%v)", len(msgs), msgs[0].More)
	}

	// Negative threshold disables fragmentation outright.
	big, hdrLen := encodeReply(t, 8, make([]byte, 4096))
	buf.Reset()
	frames, err = WriteFragmented(sw, big, 8, -1, hdrLen)
	if err != nil || frames != 1 {
		t.Fatalf("disabled fragmentation wrote %d frames, err %v", frames, err)
	}
}

func TestWriteFragmentedMinFirstKeepsHeaderIntact(t *testing.T) {
	msg, hdrLen := encodeReply(t, 9, make([]byte, 512))
	if hdrLen <= 4 {
		t.Fatalf("unexpectedly small reply header: %d", hdrLen)
	}
	var buf bytes.Buffer
	sw := NewSyncWriter(&buf, nil)
	// Threshold smaller than the reply header: minFirst must win.
	if _, err := WriteFragmented(sw, msg, 9, 4, hdrLen); err != nil {
		t.Fatalf("write fragmented: %v", err)
	}
	msgs := readAll(t, &buf)
	if len(msgs[0].Body) < hdrLen {
		t.Fatalf("initial frame carries %d bytes, reply header needs %d", len(msgs[0].Body), hdrLen)
	}
	if _, err := UnmarshalReplyHeader(msgs[0].BodyDecoder()); err != nil {
		t.Fatalf("initial frame's reply header unparsable: %v", err)
	}
}

// TestFragmentInterleave reassembles two fragmented replies whose frames
// arrive interleaved on one connection — the scenario fragmentation exists
// for.
func TestFragmentInterleave(t *testing.T) {
	mkFrames := func(reqID uint32, fill byte) ([]*Message, []byte) {
		payload := bytes.Repeat([]byte{fill}, 3000)
		msg, hdrLen := encodeReply(t, reqID, payload)
		var buf bytes.Buffer
		sw := NewSyncWriter(&buf, nil)
		if _, err := WriteFragmented(sw, msg, reqID, 700, hdrLen); err != nil {
			t.Fatalf("write fragmented: %v", err)
		}
		return readAll(t, &buf), append([]byte(nil), msg.Body...)
	}
	fa, wantA := mkFrames(100, 'a')
	fb, wantB := mkFrames(200, 'b')

	ra := NewReassembler(4)
	if err := ra.Begin(100, fa[0]); err != nil {
		t.Fatal(err)
	}
	if err := ra.Begin(200, fb[0]); err != nil {
		t.Fatal(err)
	}
	if ra.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", ra.Pending())
	}
	done := map[uint32][]byte{}
	fa, fb = fa[1:], fb[1:]
	for len(fa) > 0 || len(fb) > 0 {
		for _, q := range []*[]*Message{&fa, &fb} {
			if len(*q) == 0 {
				continue
			}
			m, err := ra.Fragment((*q)[0])
			if err != nil {
				t.Fatalf("fragment: %v", err)
			}
			*q = (*q)[1:]
			if m != nil {
				rh, err := UnmarshalReplyHeader(m.BodyDecoder())
				if err != nil {
					t.Fatalf("reassembled header: %v", err)
				}
				done[rh.RequestID] = m.Body
			}
		}
	}
	if !bytes.Equal(done[100], wantA) || !bytes.Equal(done[200], wantB) {
		t.Fatalf("interleaved reassembly corrupted a body (%d, %d bytes)", len(done[100]), len(done[200]))
	}
}

func TestReassemblerProtocolErrors(t *testing.T) {
	ra := NewReassembler(2)
	head := &Message{Type: MsgReply, Order: cdr.BigEndian, Body: make([]byte, 16), More: true}

	// Fragment for a request nobody began.
	e := cdr.NewEncoderAt(cdr.BigEndian, HeaderSize)
	e.WriteULong(999)
	orphan := &Message{Type: MsgFragment, Order: cdr.BigEndian, Body: append([]byte(nil), e.Bytes()...)}
	if _, err := ra.Fragment(orphan); err == nil {
		t.Error("fragment for unknown request accepted")
	}

	// Truncated fragment header.
	runt := &Message{Type: MsgFragment, Order: cdr.BigEndian, Body: []byte{1, 2}}
	if _, err := ra.Fragment(runt); err == nil {
		t.Error("truncated fragment header accepted")
	}

	// Duplicate begin for the same request ID.
	if err := ra.Begin(1, head); err != nil {
		t.Fatal(err)
	}
	if err := ra.Begin(1, head); err == nil {
		t.Error("duplicate begin accepted")
	}

	// Pending cap.
	if err := ra.Begin(2, head); err != nil {
		t.Fatal(err)
	}
	if err := ra.Begin(3, head); err == nil {
		t.Error("begin past maxPending accepted")
	}

	// Cancel frees a slot.
	ra.Cancel(1)
	if err := ra.Begin(3, head); err != nil {
		t.Errorf("begin after cancel: %v", err)
	}

	// Reassembled-size cap.
	ra.pending[50] = &partialMsg{typ: MsgReply, order: cdr.BigEndian, body: make([]byte, MaxReassembledSize)}
	if _, err := ra.Fragment(fragFrame(50, []byte{1}, false)); err == nil {
		t.Error("reassembly past MaxReassembledSize accepted")
	}
	if _, dangling := ra.pending[50]; dangling {
		t.Error("oversized reassembly not dropped")
	}
}

// fragFrame hand-builds one Fragment message: request ID then raw payload.
func fragFrame(reqID uint32, payload []byte, more bool) *Message {
	e := cdr.NewEncoderAt(cdr.BigEndian, HeaderSize)
	e.WriteULong(reqID)
	body := append(append([]byte(nil), e.Bytes()...), payload...)
	return &Message{Type: MsgFragment, Order: cdr.BigEndian, More: more, Body: body}
}

// FuzzGIOPFragment feeds adversarial fragment schedules — interleaved
// request IDs, orphan and duplicate fragments, cancels, truncated headers —
// through the wire (every frame is framed by a SyncWriter and re-read) into
// one Reassembler, checking it never panics, never exceeds its pending cap,
// and that every completed message matches a shadow model of the bytes fed
// for its request ID.
func FuzzGIOPFragment(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 2, 1, 1, 1})
	f.Add([]byte{0, 0, 0, 0, 3, 3})
	f.Add([]byte{1, 2, 0, 1, 2, 0, 1})
	f.Add([]byte("interleave me"))
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxPending = 3
		ra := NewReassembler(maxPending)
		shadow := map[uint32][]byte{} // expected reassembled body per open ID
		var buf bytes.Buffer
		sw := NewSyncWriter(&buf, nil)

		roundTrip := func(m *Message) *Message {
			if err := sw.Write(m); err != nil {
				t.Fatalf("frame write: %v", err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatalf("frame read: %v", err)
			}
			cp := &Message{Type: got.Type, Order: got.Order, More: got.More,
				Body: append([]byte(nil), got.Body...)}
			got.Release()
			return cp
		}

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			id := uint32(arg % 5) // few IDs → lots of collisions/interleaving
			switch op % 4 {
			case 0: // begin a fragmented reply
				payload := bytes.Repeat([]byte{arg}, int(arg%97))
				m, _ := encodeReply(t, id, payload)
				m.More = true
				m = roundTrip(m)
				if !m.More {
					t.Fatal("more-fragments flag lost on the wire")
				}
				if err := ra.Begin(id, m); err == nil {
					shadow[id] = append([]byte(nil), m.Body...)
				}
			case 1: // continuation fragment
				payload := bytes.Repeat([]byte{^arg}, int(arg%61))
				more := arg%2 == 0
				m := roundTrip(fragFrame(id, payload, more))
				out, err := ra.Fragment(m)
				_, open := shadow[id]
				if err != nil {
					if open {
						t.Fatalf("fragment for open request %d rejected: %v", id, err)
					}
					continue
				}
				if !open {
					t.Fatalf("fragment for unopened request %d accepted", id)
				}
				shadow[id] = append(shadow[id], payload...)
				if more && out != nil {
					t.Fatal("reassembly completed with more-fragments set")
				}
				if !more {
					if out == nil {
						t.Fatalf("final fragment for request %d returned nil", id)
					}
					if !bytes.Equal(out.Body, shadow[id]) {
						t.Fatalf("request %d: reassembled %d bytes, shadow %d",
							id, len(out.Body), len(shadow[id]))
					}
					delete(shadow, id)
				}
			case 2: // cancel
				ra.Cancel(id)
				delete(shadow, id)
			case 3: // raw adversarial fragment body straight from the fuzzer
				end := i + 2 + int(arg%16)
				if end > len(data) {
					end = len(data)
				}
				raw := &Message{Type: MsgFragment, Order: cdr.ByteOrder(arg % 2),
					Body: append([]byte(nil), data[i+2:end]...)}
				out, err := ra.Fragment(raw)
				if err == nil {
					// Completing an open reassembly with garbage is fine as
					// long as the request was open; an err-free orphan is not.
					if out == nil {
						t.Fatal("final raw fragment returned nil without error")
					}
					rh := cdr.NewDecoderAt(raw.Body, raw.Order, HeaderSize)
					rid, _ := rh.ReadULong()
					if _, open := shadow[rid]; !open {
						t.Fatal("orphan raw fragment accepted")
					}
					delete(shadow, rid)
				}
			}
			if ra.Pending() > maxPending {
				t.Fatalf("pending %d exceeds cap %d", ra.Pending(), maxPending)
			}
		}
	})
}

// TestFragmentStringer covers the new message-type name.
func TestFragmentStringer(t *testing.T) {
	if got := MsgFragment.String(); got != "Fragment" {
		t.Fatalf("MsgFragment.String() = %q", got)
	}
	if got := fmt.Sprint(MsgType(12)); got != "MsgType(12)" {
		t.Fatalf("unknown MsgType prints %q", got)
	}
}
