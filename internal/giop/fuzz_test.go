package giop

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/cdr"
)

// FuzzGIOPRoundTrip drives the pooled encode/decode path end to end: a
// Request and a Reply are marshalled with pooled body encoders, framed,
// read back through the pooled Read, unmarshalled, compared field by field,
// and released. Running several iterations per input makes the pools
// actually recycle messages and encoder buffers, so cross-talk between a
// released message and a subsequent read (the classic pooling bug) surfaces
// as a mismatch rather than going unnoticed.
func FuzzGIOPRoundTrip(f *testing.F) {
	f.Add(uint32(1), true, []byte("codb/key"), "find_coalitions", []byte("p"), []byte("payload"), false)
	f.Add(uint32(0), false, []byte{}, "", []byte{}, []byte{}, true)
	f.Add(uint32(0xffffffff), true, bytes.Repeat([]byte{0xab}, 300), "version", []byte{}, bytes.Repeat([]byte{0x01}, 1024), false)

	f.Fuzz(func(t *testing.T, reqID uint32, respExpected bool, objectKey []byte, op string, principal []byte, payload []byte, little bool) {
		if bytes.ContainsRune([]byte(op), 0) {
			t.Skip("CDR strings cannot carry NUL")
		}
		order := cdr.BigEndian
		if little {
			order = cdr.LittleEndian
		}

		// Several rounds over one buffer so pooled messages and encoders get
		// reused within a single fuzz execution.
		for i := 0; i < 4; i++ {
			var wire bytes.Buffer

			// Request leg.
			e := AcquireBodyEncoder(order)
			reqHdr := &RequestHeader{
				ServiceContext:   []ServiceContext{{ID: ServiceContextTracing, Data: payload}},
				RequestID:        reqID + uint32(i),
				ResponseExpected: respExpected,
				ObjectKey:        objectKey,
				Operation:        op,
				Principal:        principal,
			}
			reqHdr.Marshal(e)
			e.WriteOctets(payload)
			if err := Write(&wire, &Message{Type: MsgRequest, Order: order, Body: e.Bytes()}); err != nil {
				t.Fatalf("write request: %v", err)
			}
			ReleaseBodyEncoder(e)

			// Reply leg, framed onto the same stream.
			e = AcquireBodyEncoder(order)
			repHdr := &ReplyHeader{RequestID: reqID + uint32(i), Status: ReplyNoException}
			repHdr.Marshal(e)
			e.WriteOctets(payload)
			if err := Write(&wire, &Message{Type: MsgReply, Order: order, Body: e.Bytes()}); err != nil {
				t.Fatalf("write reply: %v", err)
			}
			ReleaseBodyEncoder(e)

			// Read the request back through the pooled path.
			m, err := Read(&wire)
			if err != nil {
				t.Fatalf("read request: %v", err)
			}
			if m.Type != MsgRequest || m.Order != order {
				t.Fatalf("request frame: got type=%v order=%v", m.Type, m.Order)
			}
			d := m.BodyDecoder()
			gotReq, err := UnmarshalRequestHeader(d)
			if err != nil {
				t.Fatalf("unmarshal request header: %v", err)
			}
			gotPayload, err := d.ReadOctets()
			if err != nil {
				t.Fatalf("read request payload: %v", err)
			}
			// Copy before Release: ReadOctets aliases the pooled body.
			gotPayload = append([]byte(nil), gotPayload...)
			m.Release()

			if gotReq.RequestID != reqID+uint32(i) ||
				gotReq.ResponseExpected != respExpected ||
				!bytes.Equal(gotReq.ObjectKey, objectKey) ||
				gotReq.Operation != op ||
				!bytes.Equal(gotReq.Principal, principal) {
				t.Fatalf("request header mismatch: got %+v want %+v", gotReq, reqHdr)
			}
			if len(gotReq.ServiceContext) != 1 ||
				gotReq.ServiceContext[0].ID != ServiceContextTracing ||
				!bytes.Equal(gotReq.ServiceContext[0].Data, payload) {
				t.Fatalf("service context mismatch: %+v", gotReq.ServiceContext)
			}
			if !bytes.Equal(gotPayload, payload) {
				t.Fatalf("request payload mismatch: got %d bytes want %d", len(gotPayload), len(payload))
			}

			// Read the reply; its header must survive the request's Release.
			m, err = Read(&wire)
			if err != nil {
				t.Fatalf("read reply: %v", err)
			}
			if m.Type != MsgReply {
				t.Fatalf("reply frame: got type=%v", m.Type)
			}
			d = m.BodyDecoder()
			gotRep, err := UnmarshalReplyHeader(d)
			if err != nil {
				t.Fatalf("unmarshal reply header: %v", err)
			}
			repPayload, err := d.ReadOctets()
			if err != nil {
				t.Fatalf("read reply payload: %v", err)
			}
			if gotRep.RequestID != reqID+uint32(i) || gotRep.Status != ReplyNoException {
				t.Fatalf("reply header mismatch: %+v", gotRep)
			}
			if !bytes.Equal(repPayload, payload) {
				t.Fatalf("reply payload mismatch")
			}
			m.Release()
		}
	})
}

// FuzzGIOPRead feeds arbitrary bytes to the pooled reader: hostile framing
// must produce an error or a well-formed message, never a panic, and pooled
// messages handed out for valid frames must release cleanly.
func FuzzGIOPRead(f *testing.F) {
	// A valid empty CloseConnection frame as a seed.
	var buf bytes.Buffer
	if err := Write(&buf, &Message{Type: MsgCloseConnection, Order: cdr.BigEndian}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("GIOP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		r := bytes.NewReader(raw)
		for {
			m, err := Read(r)
			if err != nil {
				if m != nil {
					t.Fatalf("Read returned both message and error %v", err)
				}
				return
			}
			if len(m.Body) > MaxMessageSize {
				t.Fatalf("oversized body %d accepted", len(m.Body))
			}
			m.Release()
		}
	})
}

// FuzzGIOPRead rejects bodies larger than the remaining input via
// io.ReadFull, so a short read must not hand back a partially filled pooled
// buffer — covered above; this sanity check pins the EOF contract.
func TestReadEOFContract(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}
