// Package giop implements the General Inter-ORB Protocol message layer in
// the GIOP 1.0 style: a fixed 12-byte header ("GIOP" magic, version,
// byte-order flag, message type, body size) followed by a CDR-encoded body.
// Carried over TCP this is the Internet Inter-ORB Protocol (IIOP), the
// interoperability substrate the paper relies on ("any CORBA 2.0 compliant
// ORB must support IIOP").
package giop

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/cdr"
)

// MsgType enumerates GIOP message types.
type MsgType byte

// GIOP message types (GIOP 1.0 numbering).
const (
	MsgRequest MsgType = iota
	MsgReply
	MsgCancelRequest
	MsgLocateRequest
	MsgLocateReply
	MsgCloseConnection
	MsgMessageError
)

var msgNames = [...]string{
	"Request", "Reply", "CancelRequest", "LocateRequest",
	"LocateReply", "CloseConnection", "MessageError", "Fragment",
}

func (t MsgType) String() string {
	if int(t) < len(msgNames) {
		return msgNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", byte(t))
}

// ReplyStatus enumerates Reply message statuses.
type ReplyStatus uint32

// Reply statuses.
const (
	ReplyNoException ReplyStatus = iota
	ReplyUserException
	ReplySystemException
	ReplyLocationForward
)

func (s ReplyStatus) String() string {
	switch s {
	case ReplyNoException:
		return "NO_EXCEPTION"
	case ReplyUserException:
		return "USER_EXCEPTION"
	case ReplySystemException:
		return "SYSTEM_EXCEPTION"
	case ReplyLocationForward:
		return "LOCATION_FORWARD"
	}
	return fmt.Sprintf("ReplyStatus(%d)", uint32(s))
}

// LocateStatus enumerates LocateReply statuses.
type LocateStatus uint32

// Locate statuses.
const (
	LocateUnknownObject LocateStatus = iota
	LocateObjectHere
	LocateObjectForward
)

func (s LocateStatus) String() string {
	switch s {
	case LocateUnknownObject:
		return "UNKNOWN_OBJECT"
	case LocateObjectHere:
		return "OBJECT_HERE"
	case LocateObjectForward:
		return "OBJECT_FORWARD"
	}
	return fmt.Sprintf("LocateStatus(%d)", uint32(s))
}

// HeaderSize is the fixed size of a GIOP message header.
const HeaderSize = 12

// MaxMessageSize bounds accepted message bodies (16 MiB), protecting servers
// from hostile or corrupt length fields.
const MaxMessageSize = 16 << 20

var magic = [4]byte{'G', 'I', 'O', 'P'}

// Version is the GIOP protocol version spoken by this implementation.
// 1.1 adds Fragment messages and the more-fragments header flag; readers
// accept any 1.x minor, so 1.1 frames without fragmentation are understood
// by 1.0 peers unchanged.
var Version = [2]byte{1, 1}

// Message is one framed GIOP message: the header fields plus the raw body,
// which is CDR-encoded with alignment origin at the message start.
type Message struct {
	Type  MsgType
	Order cdr.ByteOrder
	Body  []byte

	// More mirrors the GIOP 1.1 more-fragments header flag: this frame's
	// body is continued by Fragment messages for the same request ID.
	More bool

	// pooled marks messages allocated by Read from msgPool; Release returns
	// them (body buffer included) for reuse by later reads.
	pooled bool
}

// msgPool recycles Messages (and their body buffers) produced by Read, so
// the mux read loops on both sides of a connection stop allocating a header
// and a body per message.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// hdrPool recycles the 12-byte scratch header used by Read and writeFrame.
var hdrPool = sync.Pool{New: func() any { return new([HeaderSize]byte) }}

// Release returns a message obtained from Read to the pool. After Release
// the message and its Body must not be touched; the next Read on any
// connection may reuse them. Calling Release on a hand-built (non-Read)
// message or a second time is a no-op. Anything decoded out of the body that
// outlives the message must have been copied (the header unmarshals and the
// IDL any-decoder do copy).
func (m *Message) Release() {
	if m == nil || !m.pooled {
		return
	}
	m.pooled = false
	m.More = false
	m.Body = m.Body[:0]
	msgPool.Put(m)
}

// encPool recycles CDR body encoders (their scratch buffers grow to the
// working set's message size and stay).
var encPool = sync.Pool{New: func() any { return cdr.NewEncoder(cdr.BigEndian) }}

// AcquireBodyEncoder returns a pooled CDR encoder positioned for a message
// body (alignment origin at the message start). Pass it back through
// ReleaseBodyEncoder once the frame has been written; the encoder's buffer
// is reused by later messages, so its Bytes must not be retained.
func AcquireBodyEncoder(order cdr.ByteOrder) *cdr.Encoder {
	e := encPool.Get().(*cdr.Encoder)
	e.ResetFor(order, HeaderSize)
	return e
}

// ReleaseBodyEncoder returns an encoder from AcquireBodyEncoder to the pool.
func ReleaseBodyEncoder(e *cdr.Encoder) {
	if e != nil {
		encPool.Put(e)
	}
}

// BodyDecoder returns a CDR decoder positioned at the start of the body with
// the correct alignment origin and byte order.
func (m *Message) BodyDecoder() *cdr.Decoder {
	return cdr.NewDecoderAt(m.Body, m.Order, HeaderSize)
}

// NewBodyEncoder returns a CDR encoder suitable for building a message body.
func NewBodyEncoder(order cdr.ByteOrder) *cdr.Encoder {
	return cdr.NewEncoderAt(order, HeaderSize)
}

// Write frames and writes the message, flushing when w is buffered. It is
// not safe for concurrent use on the same writer without external locking;
// when frames from multiple goroutines share one stream (multiplexed IIOP),
// wrap the stream in a SyncWriter instead.
func Write(w io.Writer, m *Message) error {
	if err := writeFrame(w, m); err != nil {
		return err
	}
	if bw, ok := w.(*bufio.Writer); ok {
		return bw.Flush()
	}
	return nil
}

// writeFrame frames and writes the message without flushing.
func writeFrame(w io.Writer, m *Message) error {
	if len(m.Body) > MaxMessageSize {
		return fmt.Errorf("giop: message body %d exceeds limit", len(m.Body))
	}
	hdr := hdrPool.Get().(*[HeaderSize]byte)
	copy(hdr[0:4], magic[:])
	hdr[4] = Version[0]
	hdr[5] = Version[1]
	hdr[6] = byte(m.Order) // flags: bit 0 = byte order, bit 1 = more fragments
	if m.More {
		hdr[6] |= FlagMoreFragments
	}
	hdr[7] = byte(m.Type)
	putULong(hdr[8:12], uint32(len(m.Body)), m.Order)
	_, err := w.Write(hdr[:])
	hdrPool.Put(hdr)
	if err != nil {
		return fmt.Errorf("giop: write header: %w", err)
	}
	if len(m.Body) > 0 {
		if _, err := w.Write(m.Body); err != nil {
			return fmt.Errorf("giop: write body: %w", err)
		}
	}
	return nil
}

// SyncWriter serializes framed writes to a shared stream. Multiplexed IIOP
// interleaves many requests (client side) or replies (server side) on one
// connection; SyncWriter guarantees whole frames are written atomically with
// respect to each other, which is the only ordering GIOP requires (replies
// are matched to requests by ID, not by position in the stream).
//
// When the stream is a *bufio.Writer, flushing is coalesced: Write leaves
// the frame in the buffer and kicks a flusher goroutine, which runs once the
// writers have yielded and pushes every buffered frame to the kernel in a
// single syscall. Under pipelining a whole round of requests (or replies)
// leaves as one write; a lone writer costs the same one syscall it always
// did, plus a goroutine hand-off. A flush failure is reported through the
// onErr callback (the writers that buffered those frames have already
// returned) and sticks: subsequent Writes fail immediately.
type SyncWriter struct {
	mu    sync.Mutex
	w     io.Writer
	bw    *bufio.Writer // non-nil when w buffers; enables coalesced flushing
	dirty bool
	err   error // sticky first write/flush error

	kick      chan struct{} // cap 1: wake the flusher
	done      chan struct{}
	closeOnce sync.Once
	onErr     func(error)
}

var errWriterClosed = fmt.Errorf("giop: writer closed")

// NewSyncWriter wraps w for concurrent framed writes. onErr, which may be
// nil, is called at most once if an asynchronous flush fails; callers use it
// to tear down the connection, since already-buffered frames are lost.
func NewSyncWriter(w io.Writer, onErr func(error)) *SyncWriter {
	sw := &SyncWriter{w: w, onErr: onErr}
	if bw, ok := w.(*bufio.Writer); ok {
		sw.bw = bw
		sw.kick = make(chan struct{}, 1)
		sw.done = make(chan struct{})
		go sw.flusher()
	}
	return sw
}

// Write frames and buffers one message atomically relative to other Write
// calls on the same SyncWriter, scheduling a coalesced flush.
func (sw *SyncWriter) Write(m *Message) error {
	sw.mu.Lock()
	if sw.err != nil {
		err := sw.err
		sw.mu.Unlock()
		return err
	}
	if err := writeFrame(sw.w, m); err != nil {
		sw.err = err
		sw.mu.Unlock()
		return err
	}
	if sw.bw == nil {
		sw.mu.Unlock()
		return nil
	}
	sw.dirty = true
	sw.mu.Unlock()
	select {
	case sw.kick <- struct{}{}:
	default: // a wake-up is already pending
	}
	return nil
}

// Close stops the flusher after a final flush. Writes after Close fail.
func (sw *SyncWriter) Close() {
	sw.closeOnce.Do(func() {
		if sw.done != nil {
			close(sw.done)
		}
		sw.mu.Lock()
		if sw.err == nil {
			if sw.dirty {
				sw.bw.Flush()
				sw.dirty = false
			}
			sw.err = errWriterClosed
		}
		sw.mu.Unlock()
	})
}

// flusher pushes buffered frames out whenever writers have left some behind.
// By the time it is scheduled, every currently-runnable writer has finished
// buffering, so one flush typically carries a whole batch of frames.
func (sw *SyncWriter) flusher() {
	for {
		select {
		case <-sw.done:
			return
		case <-sw.kick:
		}
		// The kick readied this goroutine with scheduler priority, ahead of
		// the other writers that are about to buffer their own frames. Yield
		// once so they run first; the flush below then carries the batch.
		runtime.Gosched()
		sw.mu.Lock()
		if sw.err != nil || !sw.dirty {
			sw.mu.Unlock()
			continue
		}
		err := sw.bw.Flush()
		sw.dirty = false
		if err == nil {
			sw.mu.Unlock()
			continue
		}
		sw.err = err
		onErr := sw.onErr
		sw.mu.Unlock()
		if onErr != nil {
			onErr(err)
		}
	}
}

// Read reads one framed GIOP message. The returned message is pooled: pass
// it to Release once everything needed from its body has been decoded (or
// copied), and it will be reused by a later Read.
func Read(r io.Reader) (*Message, error) {
	hdr := hdrPool.Get().(*[HeaderSize]byte)
	defer hdrPool.Put(hdr)
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean close detection
	}
	if [4]byte(hdr[0:4]) != magic {
		return nil, fmt.Errorf("giop: bad magic %q", hdr[0:4])
	}
	if hdr[4] != Version[0] {
		return nil, fmt.Errorf("giop: unsupported version %d.%d", hdr[4], hdr[5])
	}
	order := cdr.ByteOrder(hdr[6] & 1)
	size := getULong(hdr[8:12], order)
	if size > MaxMessageSize {
		return nil, fmt.Errorf("giop: message size %d exceeds limit", size)
	}
	m := msgPool.Get().(*Message)
	m.Type, m.Order, m.pooled = MsgType(hdr[7]), order, true
	m.More = hdr[6]&FlagMoreFragments != 0
	if cap(m.Body) < int(size) {
		m.Body = make([]byte, size)
	} else {
		m.Body = m.Body[:size]
	}
	if size > 0 {
		if _, err := io.ReadFull(r, m.Body); err != nil {
			m.Release()
			return nil, fmt.Errorf("giop: read body: %w", err)
		}
	}
	return m, nil
}

func putULong(b []byte, v uint32, order cdr.ByteOrder) {
	if order == cdr.BigEndian {
		b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	} else {
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
}

func getULong(b []byte, order cdr.ByteOrder) uint32 {
	if order == cdr.BigEndian {
		return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	}
	return uint32(b[3])<<24 | uint32(b[2])<<16 | uint32(b[1])<<8 | uint32(b[0])
}

// ServiceContext is one entry of a request/reply service context list; the
// reproduction uses it to carry tracing metadata between layers (the paper's
// communication layer "mediates requests" — service contexts let us observe
// that mediation in tests and experiments).
type ServiceContext struct {
	ID   uint32
	Data []byte
}

// ServiceContextTracing tags the trace-propagation entry the ORB's request
// interceptors attach to requests ("WT" vendor tag, like the OMG-registered
// vendor service context ranges). Its data is an encoded trace.SpanContext,
// which is how one trace ID follows a query across every ORB hop.
const ServiceContextTracing uint32 = 0x57540001

// GetServiceContext returns the data of the first entry with the given ID.
func GetServiceContext(list []ServiceContext, id uint32) ([]byte, bool) {
	for _, c := range list {
		if c.ID == id {
			return c.Data, true
		}
	}
	return nil, false
}

// WithServiceContext returns the list with the entry for id set to data,
// replacing an existing entry or appending a new one.
func WithServiceContext(list []ServiceContext, id uint32, data []byte) []ServiceContext {
	for i := range list {
		if list[i].ID == id {
			list[i].Data = data
			return list
		}
	}
	return append(list, ServiceContext{ID: id, Data: data})
}

// RequestHeader is the GIOP 1.0 Request header.
type RequestHeader struct {
	ServiceContext   []ServiceContext
	RequestID        uint32
	ResponseExpected bool
	ObjectKey        []byte
	Operation        string
	Principal        []byte
}

// Marshal appends the header to a body encoder.
func (h *RequestHeader) Marshal(e *cdr.Encoder) {
	marshalContexts(e, h.ServiceContext)
	e.WriteULong(h.RequestID)
	e.WriteBool(h.ResponseExpected)
	e.WriteOctets(h.ObjectKey)
	e.WriteString(h.Operation)
	e.WriteOctets(h.Principal)
}

// UnmarshalRequestHeader reads a Request header from a body decoder.
func UnmarshalRequestHeader(d *cdr.Decoder) (*RequestHeader, error) {
	var h RequestHeader
	var err error
	if h.ServiceContext, err = unmarshalContexts(d); err != nil {
		return nil, fmt.Errorf("giop: request service context: %w", err)
	}
	if h.RequestID, err = d.ReadULong(); err != nil {
		return nil, err
	}
	if h.ResponseExpected, err = d.ReadBool(); err != nil {
		return nil, err
	}
	key, err := d.ReadOctets()
	if err != nil {
		return nil, err
	}
	h.ObjectKey = append([]byte(nil), key...)
	if h.Operation, err = d.ReadString(); err != nil {
		return nil, err
	}
	pr, err := d.ReadOctets()
	if err != nil {
		return nil, err
	}
	h.Principal = append([]byte(nil), pr...)
	return &h, nil
}

// ReplyHeader is the GIOP 1.0 Reply header.
type ReplyHeader struct {
	ServiceContext []ServiceContext
	RequestID      uint32
	Status         ReplyStatus
}

// Marshal appends the header to a body encoder.
func (h *ReplyHeader) Marshal(e *cdr.Encoder) {
	marshalContexts(e, h.ServiceContext)
	e.WriteULong(h.RequestID)
	e.WriteULong(uint32(h.Status))
}

// UnmarshalReplyHeader reads a Reply header from a body decoder.
func UnmarshalReplyHeader(d *cdr.Decoder) (*ReplyHeader, error) {
	var h ReplyHeader
	var err error
	if h.ServiceContext, err = unmarshalContexts(d); err != nil {
		return nil, fmt.Errorf("giop: reply service context: %w", err)
	}
	if h.RequestID, err = d.ReadULong(); err != nil {
		return nil, err
	}
	status, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	h.Status = ReplyStatus(status)
	return &h, nil
}

// LocateRequestHeader is the GIOP LocateRequest body.
type LocateRequestHeader struct {
	RequestID uint32
	ObjectKey []byte
}

// Marshal appends the header to a body encoder.
func (h *LocateRequestHeader) Marshal(e *cdr.Encoder) {
	e.WriteULong(h.RequestID)
	e.WriteOctets(h.ObjectKey)
}

// UnmarshalLocateRequest reads a LocateRequest body.
func UnmarshalLocateRequest(d *cdr.Decoder) (*LocateRequestHeader, error) {
	var h LocateRequestHeader
	var err error
	if h.RequestID, err = d.ReadULong(); err != nil {
		return nil, err
	}
	key, err := d.ReadOctets()
	if err != nil {
		return nil, err
	}
	h.ObjectKey = append([]byte(nil), key...)
	return &h, nil
}

// LocateReplyHeader is the GIOP LocateReply body.
type LocateReplyHeader struct {
	RequestID uint32
	Status    LocateStatus
}

// Marshal appends the header to a body encoder.
func (h *LocateReplyHeader) Marshal(e *cdr.Encoder) {
	e.WriteULong(h.RequestID)
	e.WriteULong(uint32(h.Status))
}

// UnmarshalLocateReply reads a LocateReply body.
func UnmarshalLocateReply(d *cdr.Decoder) (*LocateReplyHeader, error) {
	var h LocateReplyHeader
	var err error
	if h.RequestID, err = d.ReadULong(); err != nil {
		return nil, err
	}
	status, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	h.Status = LocateStatus(status)
	return &h, nil
}

// CancelRequestHeader is the GIOP CancelRequest body.
type CancelRequestHeader struct {
	RequestID uint32
}

// Marshal appends the header to a body encoder.
func (h *CancelRequestHeader) Marshal(e *cdr.Encoder) { e.WriteULong(h.RequestID) }

// UnmarshalCancelRequest reads a CancelRequest body.
func UnmarshalCancelRequest(d *cdr.Decoder) (*CancelRequestHeader, error) {
	id, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	return &CancelRequestHeader{RequestID: id}, nil
}

func marshalContexts(e *cdr.Encoder, ctxs []ServiceContext) {
	e.WriteULong(uint32(len(ctxs)))
	for _, c := range ctxs {
		e.WriteULong(c.ID)
		e.WriteOctets(c.Data)
	}
}

func unmarshalContexts(d *cdr.Decoder) ([]ServiceContext, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	ctxs := make([]ServiceContext, 0, n)
	for i := uint32(0); i < n; i++ {
		var c ServiceContext
		if c.ID, err = d.ReadULong(); err != nil {
			return nil, err
		}
		data, err := d.ReadOctets()
		if err != nil {
			return nil, err
		}
		c.Data = append([]byte(nil), data...)
		ctxs = append(ctxs, c)
	}
	return ctxs, nil
}
