package giop

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/cdr"
)

func TestMessageRoundTrip(t *testing.T) {
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		var buf bytes.Buffer
		e := NewBodyEncoder(order)
		hdr := RequestHeader{
			ServiceContext:   []ServiceContext{{ID: 7, Data: []byte("trace")}},
			RequestID:        42,
			ResponseExpected: true,
			ObjectKey:        []byte("CoDatabase/RBH"),
			Operation:        "find_coalitions",
			Principal:        []byte("Orbix"),
		}
		hdr.Marshal(e)
		msg := &Message{Type: MsgRequest, Order: order, Body: e.Bytes()}
		if err := Write(&buf, msg); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != MsgRequest || got.Order != order {
			t.Fatalf("type/order = %v/%v", got.Type, got.Order)
		}
		rh, err := UnmarshalRequestHeader(got.BodyDecoder())
		if err != nil {
			t.Fatal(err)
		}
		if rh.RequestID != 42 || rh.Operation != "find_coalitions" ||
			string(rh.ObjectKey) != "CoDatabase/RBH" || !rh.ResponseExpected {
			t.Errorf("header = %+v", rh)
		}
		if len(rh.ServiceContext) != 1 || rh.ServiceContext[0].ID != 7 ||
			string(rh.ServiceContext[0].Data) != "trace" {
			t.Errorf("service context = %+v", rh.ServiceContext)
		}
		if string(rh.Principal) != "Orbix" {
			t.Errorf("principal = %q", rh.Principal)
		}
	}
}

func TestReplyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewBodyEncoder(cdr.BigEndian)
	(&ReplyHeader{RequestID: 9, Status: ReplyUserException}).Marshal(e)
	if err := Write(&buf, &Message{Type: MsgReply, Order: cdr.BigEndian, Body: e.Bytes()}); err != nil {
		t.Fatal(err)
	}
	msg, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := UnmarshalReplyHeader(msg.BodyDecoder())
	if err != nil {
		t.Fatal(err)
	}
	if rh.RequestID != 9 || rh.Status != ReplyUserException {
		t.Errorf("reply header = %+v", rh)
	}
}

func TestLocateRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewBodyEncoder(cdr.BigEndian)
	(&LocateRequestHeader{RequestID: 3, ObjectKey: []byte("k")}).Marshal(e)
	if err := Write(&buf, &Message{Type: MsgLocateRequest, Order: cdr.BigEndian, Body: e.Bytes()}); err != nil {
		t.Fatal(err)
	}
	msg, _ := Read(&buf)
	lr, err := UnmarshalLocateRequest(msg.BodyDecoder())
	if err != nil || lr.RequestID != 3 || string(lr.ObjectKey) != "k" {
		t.Fatalf("locate request = %+v, %v", lr, err)
	}

	buf.Reset()
	e = NewBodyEncoder(cdr.BigEndian)
	(&LocateReplyHeader{RequestID: 3, Status: LocateObjectHere}).Marshal(e)
	Write(&buf, &Message{Type: MsgLocateReply, Order: cdr.BigEndian, Body: e.Bytes()})
	msg, _ = Read(&buf)
	lrep, err := UnmarshalLocateReply(msg.BodyDecoder())
	if err != nil || lrep.Status != LocateObjectHere {
		t.Fatalf("locate reply = %+v, %v", lrep, err)
	}
}

func TestCancelRoundTrip(t *testing.T) {
	e := NewBodyEncoder(cdr.BigEndian)
	(&CancelRequestHeader{RequestID: 11}).Marshal(e)
	var buf bytes.Buffer
	Write(&buf, &Message{Type: MsgCancelRequest, Order: cdr.BigEndian, Body: e.Bytes()})
	msg, _ := Read(&buf)
	cr, err := UnmarshalCancelRequest(msg.BodyDecoder())
	if err != nil || cr.RequestID != 11 {
		t.Fatalf("cancel = %+v, %v", cr, err)
	}
}

func TestBadMagic(t *testing.T) {
	data := []byte("NOPE\x01\x00\x00\x00\x00\x00\x00\x00")
	if _, err := Read(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic not detected: %v", err)
	}
}

func TestBadVersion(t *testing.T) {
	data := []byte("GIOP\x02\x00\x00\x00\x00\x00\x00\x00")
	if _, err := Read(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version not detected: %v", err)
	}
}

func TestOversizeMessageRejected(t *testing.T) {
	hdr := []byte("GIOP\x01\x00\x00\x00\xFF\xFF\xFF\xFF")
	if _, err := Read(bytes.NewReader(hdr)); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversize not rejected: %v", err)
	}
	big := &Message{Type: MsgRequest, Order: cdr.BigEndian, Body: make([]byte, MaxMessageSize+1)}
	var buf bytes.Buffer
	if err := Write(&buf, big); err == nil {
		t.Error("oversize write accepted")
	}
}

func TestTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	e := NewBodyEncoder(cdr.BigEndian)
	e.WriteString("payload")
	Write(&buf, &Message{Type: MsgRequest, Order: cdr.BigEndian, Body: e.Bytes()})
	data := buf.Bytes()[:buf.Len()-3]
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestCleanEOF(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestEmptyBodyMessage(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Message{Type: MsgCloseConnection, Order: cdr.BigEndian}); err != nil {
		t.Fatal(err)
	}
	msg, err := Read(&buf)
	if err != nil || msg.Type != MsgCloseConnection || len(msg.Body) != 0 {
		t.Errorf("close connection round trip: %+v %v", msg, err)
	}
}

func TestMultipleMessagesOnStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		e := NewBodyEncoder(cdr.BigEndian)
		e.WriteULong(uint32(i))
		Write(&buf, &Message{Type: MsgRequest, Order: cdr.BigEndian, Body: e.Bytes()})
	}
	for i := 0; i < 5; i++ {
		msg, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := msg.BodyDecoder().ReadULong()
		if v != uint32(i) {
			t.Errorf("message %d carries %d", i, v)
		}
	}
}
