package gossip

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Config wires an Agent to its node. Self, Exchange and Push are required
// for a functioning agent; everything else has defaults.
type Config struct {
	// Self snapshots the local node's entry (name, current co-database
	// version, reference, coalition memberships). It is read at the start of
	// every round so local mutations enter circulation within one round.
	Self func() Entry
	// Seeds lists bootstrap knowledge — typically version-0 entries built
	// from the local co-database's member lists. Re-read every round, so
	// locally learned members (a Join, an advertise) become gossip peers
	// without waiting to hear about themselves from others.
	Seeds func() []Entry
	// Exchange performs the pull half of a round against a peer's
	// co-database reference: it ships our digest and returns the peer's
	// delta (entries newer than the digest) plus the peer's own digest.
	Exchange func(ctx context.Context, ref string, digest []byte) (delta, peerDigest []byte, err error)
	// Push ships entries the peer was missing (the push half). Optional;
	// without it the protocol degenerates to pull-only anti-entropy, which
	// still converges, just in more rounds.
	Push func(ctx context.Context, ref string, delta []byte) error
	// OnApply observes every batch of entries a merge actually applied —
	// the hook the query layer uses to invalidate metadata-cache entries
	// that gossip just proved stale. Called outside the store lock.
	OnApply func(applied []Entry)

	// Fanout is how many peers each round contacts (default 3).
	Fanout int
	// Interval paces Start's background loop (default 1s). Tick ignores it.
	Interval time.Duration
	// Seed makes peer-selection deterministic; 0 selects 1. Simulations
	// derive it from the run seed so replays pick identical peers.
	Seed int64
	// SuspectAfter is the consecutive-failure threshold for declaring a
	// peer dead (default 2).
	SuspectAfter int
	// Sleep overrides the inter-round wait in Start (virtual clocks hook in
	// here); nil uses a real timer honoring ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration)
}

// Stats is a point-in-time snapshot of the agent's counters, published at
// /debug/metrics under "gossip".
type Stats struct {
	Rounds        int64 `json:"rounds"`         // anti-entropy rounds run
	Exchanges     int64 `json:"exchanges"`      // pull RPCs attempted
	Pushes        int64 `json:"pushes"`         // push RPCs sent
	Failures      int64 `json:"failures"`       // exchange/push RPCs that failed
	DeltasSent    int64 `json:"deltas_sent"`    // entries shipped to peers (pushes + served pulls)
	DeltasApplied int64 `json:"deltas_applied"` // entries merged into the local store
	DigestBytes   int64 `json:"digest_bytes"`   // digest payload bytes sent and served
	DeltaBytes    int64 `json:"delta_bytes"`    // delta payload bytes sent and served
	PeersKnown    int   `json:"peers_known"`    // gossip-able peers in the store
	PeersDead     int   `json:"peers_dead"`     // peers past the failure threshold
	LastApplyLag  int64 `json:"last_apply_lag"` // rounds since a merge last applied something (convergence lag)
}

// Agent runs the anti-entropy protocol for one node. Tick is one round;
// Start loops Tick on Config.Interval. The servant-side HandlePull and
// HandlePush methods satisfy the co-database's gossip hooks, so one Agent
// is both the initiator and the responder of exchanges.
type Agent struct {
	cfg   Config
	store *Store

	// ring is the shuffled peer walk: every known peer is contacted exactly
	// once per cycle, giving failure detection a deterministic bound.
	ringMu sync.Mutex
	ring   []Entry
	rng    *rand.Rand

	rounds, exchanges, pushes, failures atomic.Int64
	deltasSent, deltasApplied           atomic.Int64
	digestBytes, deltaBytes             atomic.Int64
	lastApplyRound                      atomic.Int64
}

// New creates an agent. The zero-value knobs take their defaults here.
func New(cfg Config) *Agent {
	if cfg.Fanout <= 0 {
		cfg.Fanout = 3
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	self := ""
	if cfg.Self != nil {
		// The owner name is stable; snapshot it once so the store can refuse
		// remote claims about the local node from the very first exchange.
		self = cfg.Self().Node
	}
	return &Agent{
		cfg:   cfg,
		store: NewStore(self, cfg.SuspectAfter),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Store exposes the agent's metadata replica and liveness view.
func (a *Agent) Store() *Store { return a.store }

// Stats snapshots the counters.
func (a *Agent) Stats() Stats {
	rounds := a.rounds.Load()
	return Stats{
		Rounds:        rounds,
		Exchanges:     a.exchanges.Load(),
		Pushes:        a.pushes.Load(),
		Failures:      a.failures.Load(),
		DeltasSent:    a.deltasSent.Load(),
		DeltasApplied: a.deltasApplied.Load(),
		DigestBytes:   a.digestBytes.Load(),
		DeltaBytes:    a.deltaBytes.Load(),
		PeersKnown:    len(a.store.Peers()),
		PeersDead:     a.store.DeadCount(),
		LastApplyLag:  rounds - a.lastApplyRound.Load(),
	}
}

// Messages reports the total gossip RPCs this agent initiated (pulls plus
// pushes) — the quantity the scale tests compare against the flat fan-out
// baseline.
func (a *Agent) Messages() int64 { return a.exchanges.Load() + a.pushes.Load() }

// refresh re-reads the local entry and bootstrap seeds into the store.
func (a *Agent) refresh() {
	if a.cfg.Self != nil {
		a.store.SetSelf(a.cfg.Self())
	}
	if a.cfg.Seeds != nil {
		a.store.Apply(a.cfg.Seeds())
	}
}

// nextPeers returns up to n peers, walking the shuffled ring and reshuffling
// from the current store population when the ring runs dry.
func (a *Agent) nextPeers(n int) []Entry {
	a.ringMu.Lock()
	defer a.ringMu.Unlock()
	var out []Entry
	for len(out) < n {
		if len(a.ring) == 0 {
			peers := a.store.Peers()
			if len(peers) == 0 {
				break
			}
			a.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
			a.ring = peers
		}
		out = append(out, a.ring[0])
		a.ring = a.ring[1:]
		if len(out) >= n && len(a.ring) == 0 {
			break
		}
	}
	return out
}

// CycleLen returns the current peer-walk cycle length: the number of rounds
// within which every known peer is contacted at least once, ceil(peers /
// fanout). Tests derive the failure-detection bound from it.
func (a *Agent) CycleLen() int {
	peers := len(a.store.Peers())
	if peers == 0 {
		return 1
	}
	return (peers + a.cfg.Fanout - 1) / a.cfg.Fanout
}

// Tick runs one anti-entropy round: refresh local knowledge, then push-pull
// with the next Fanout peers on the ring. Deterministic given the agent seed
// and the sequence of prior rounds, which is what lets the simulation tests
// replay convergence runs exactly.
func (a *Agent) Tick(ctx context.Context) {
	a.rounds.Add(1)
	a.refresh()
	for _, peer := range a.nextPeers(a.cfg.Fanout) {
		a.exchangeWith(ctx, peer)
	}
}

func (a *Agent) exchangeWith(ctx context.Context, peer Entry) {
	if a.cfg.Exchange == nil {
		return
	}
	digest := EncodeDigest(a.store.Digest())
	a.digestBytes.Add(int64(len(digest)))
	a.exchanges.Add(1)
	deltaBytes, peerDigestBytes, err := a.cfg.Exchange(ctx, peer.CoDBRef, digest)
	if err != nil {
		a.failures.Add(1)
		a.store.ReportFailure(peer.Node)
		return
	}
	a.store.ReportSuccess(peer.Node)
	a.deltaBytes.Add(int64(len(deltaBytes)))
	if entries, derr := DecodeDelta(deltaBytes); derr == nil {
		a.apply(entries)
	}
	peerDigest, derr := DecodeDigest(peerDigestBytes)
	if derr != nil || a.cfg.Push == nil {
		return
	}
	missing := a.store.DeltaSince(peerDigest)
	if len(missing) == 0 {
		return
	}
	payload := EncodeDelta(missing)
	a.pushes.Add(1)
	a.deltaBytes.Add(int64(len(payload)))
	if err := a.cfg.Push(ctx, peer.CoDBRef, payload); err != nil {
		a.failures.Add(1)
		a.store.ReportFailure(peer.Node)
		return
	}
	a.deltasSent.Add(int64(len(missing)))
}

// apply merges entries and fires the OnApply hook for the ones that landed.
func (a *Agent) apply(entries []Entry) int {
	applied := a.store.Apply(entries)
	if len(applied) == 0 {
		return 0
	}
	a.deltasApplied.Add(int64(len(applied)))
	a.lastApplyRound.Store(a.rounds.Load())
	if a.cfg.OnApply != nil {
		a.cfg.OnApply(applied)
	}
	return len(applied)
}

// HandlePull is the servant-side pull handler: given the caller's digest,
// return our delta (what the caller is missing) plus our own digest so the
// caller can push back what we are missing.
func (a *Agent) HandlePull(digest []byte) (delta, selfDigest []byte, err error) {
	d, err := DecodeDigest(digest)
	if err != nil {
		return nil, nil, err
	}
	missing := a.store.DeltaSince(d)
	payload := EncodeDelta(missing)
	own := EncodeDigest(a.store.Digest())
	a.deltasSent.Add(int64(len(missing)))
	a.deltaBytes.Add(int64(len(payload)))
	a.digestBytes.Add(int64(len(own)))
	return payload, own, nil
}

// HandlePush is the servant-side push handler: merge the entries the caller
// believes we are missing.
func (a *Agent) HandlePush(delta []byte) (int, error) {
	entries, err := DecodeDelta(delta)
	if err != nil {
		return 0, err
	}
	return a.apply(entries), nil
}

// Start loops Tick every Interval until the context ends. Production nodes
// run it on a goroutine; deterministic simulations drive Tick directly.
func (a *Agent) Start(ctx context.Context) {
	sleep := a.cfg.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		}
	}
	for {
		sleep(ctx, a.cfg.Interval)
		if ctx.Err() != nil {
			return
		}
		a.Tick(ctx)
	}
}
