package gossip

import (
	"bytes"
	"testing"
)

// FuzzGossipDelta holds the wire codec and the merge path to their safety
// contract: DecodeDelta never panics on arbitrary bytes, decoding never
// over-allocates past the payload, and applying whatever decodes can never
// move a store's version for any node backwards.
func FuzzGossipDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("WGE1"))
	f.Add([]byte("WGD1"))
	f.Add(EncodeDelta(nil))
	f.Add(EncodeDelta([]Entry{{Node: "N0", Version: 1, CoDBRef: "ref", Coalitions: []string{"base"}}}))
	f.Add(EncodeDelta([]Entry{
		{Node: "A", Version: 5, CoDBRef: "ra", Coalitions: []string{"c1", "c2"}},
		{Node: "A", Version: 2, CoDBRef: "stale"}, // duplicate with regression
		{Node: "B", Version: 0},
	}))
	f.Add(EncodeDigest(Digest{"A": 3, "B": 9}))
	f.Add([]byte("WGE1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeDelta(data) // must not panic
		if err != nil {
			return
		}

		// Whatever decoded must re-encode and decode back to the same thing
		// (duplicates and all — dedup is Apply's job, not the codec's).
		again, err := DecodeDelta(EncodeDelta(entries))
		if err != nil {
			t.Fatalf("re-decode of re-encoded delta failed: %v", err)
		}
		if len(again) != len(entries) {
			t.Fatalf("round trip changed entry count: %d != %d", len(again), len(entries))
		}
		for i := range entries {
			if again[i].Node != entries[i].Node || again[i].Version != entries[i].Version ||
				again[i].CoDBRef != entries[i].CoDBRef || len(again[i].Coalitions) != len(entries[i].Coalitions) {
				t.Fatalf("round trip changed entry %d: %+v != %+v", i, again[i], entries[i])
			}
		}

		// Applying a fuzzed delta must never regress any version: seed a
		// store, snapshot its digest, apply, and compare.
		s := NewStore("SELF", 0)
		s.SetSelf(Entry{Node: "SELF", Version: 7, CoDBRef: "self-ref"})
		s.Apply([]Entry{
			{Node: "P1", Version: 3, CoDBRef: "r1"},
			{Node: "P2", Version: 8, CoDBRef: "r2", Coalitions: []string{"base"}},
		})
		before := s.Digest()
		s.Apply(entries)
		s.Apply(entries) // idempotence: the second apply must be a no-op set
		after := s.Digest()
		for node, v := range before {
			if after[node] < v {
				t.Fatalf("version regressed for %s: %d -> %d", node, v, after[node])
			}
		}
		if e, _ := s.Get("SELF"); e.Version != 7 || e.CoDBRef != "self-ref" {
			t.Fatalf("fuzzed delta overwrote self entry: %+v", e)
		}

		// DecodeDigest must hold the same no-panic contract on the same bytes.
		if d, derr := DecodeDigest(data); derr == nil {
			if got, gerr := DecodeDigest(EncodeDigest(d)); gerr != nil {
				t.Fatalf("digest re-decode failed: %v", gerr)
			} else {
				for n, v := range d {
					if v != 0 && got[n] != v {
						t.Fatalf("digest round trip changed %s: %d != %d", n, got[n], v)
					}
				}
			}
		}

		// Deterministic encoding: encoding the same entries twice is
		// byte-identical (digest ordering is sorted).
		if !bytes.Equal(EncodeDelta(entries), EncodeDelta(entries)) {
			t.Fatal("EncodeDelta is not deterministic")
		}
	})
}
