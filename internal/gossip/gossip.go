// Package gossip is the anti-entropy membership layer that lets a WebFINDIT
// federation scale past the point where every node can fan out to every
// coalition member. Each node keeps a Store of per-node metadata entries —
// one Entry per co-database, stamped with that co-database's monotonic
// Version() — and periodically exchanges version-vector digests with a few
// peers, pulling only the entries the peer holds at a newer version and
// pushing back the ones it is missing (push-pull anti-entropy). A single
// metadata mutation therefore reaches all N nodes in O(log N) rounds with
// per-round traffic bounded by fanout, instead of requiring an O(N²)
// all-pairs probe storm.
//
// The same Store doubles as the failure detector behind sub-coalition
// representative election: peers whose exchanges keep failing are marked
// dead after SuspectAfter consecutive failures, and Representative skips
// them. Because the agent walks its peers in shuffled-ring order (every
// known peer is contacted exactly once per cycle), a partitioned peer is
// detected within SuspectAfter full cycles — a deterministic bound the
// simulation tests assert.
package gossip

import (
	"sort"
	"sync"
)

// Entry is one node's co-database metadata snapshot: the unit gossip deltas
// move. Version is the owning co-database's monotonic schema version at
// snapshot time; an entry only ever replaces an older-versioned one, so
// applying any delta — including a corrupted or replayed one — can never
// move a node's knowledge backwards.
type Entry struct {
	// Node is the owning database's federation-unique name.
	Node string
	// Version is CoDatabase.Version() when the snapshot was taken. Seed
	// entries (bootstrap knowledge from the local co-database's member
	// lists) carry version 0: they fill gaps but never displace gossip.
	Version uint64
	// CoDBRef is the stringified IOR of the node's co-database servant —
	// how a gossip exchange (and discovery) reaches the node.
	CoDBRef string
	// Coalitions lists the coalitions the node belongs to, sorted.
	Coalitions []string
}

// Digest is a version vector: the highest version at which each node's
// entry is held. Nodes absent from the digest are implicitly at version 0,
// so a peer answering a digest sends everything the digester lacks.
type Digest map[string]uint64

// Store is one node's replica of the federation metadata map plus the
// liveness view gossip builds as a side effect. All methods are safe for
// concurrent use: servant-side pull/push handlers run on ORB dispatch
// goroutines while the local agent ticks.
type Store struct {
	mu      sync.Mutex
	self    string
	entries map[string]Entry
	fails   map[string]int
	dead    map[string]bool

	// suspectAfter is how many consecutive exchange failures mark a peer
	// dead (election then skips it). Successes reset the count.
	suspectAfter int
}

// NewStore creates a store owned by node self. suspectAfter <= 0 selects
// the default (2).
func NewStore(self string, suspectAfter int) *Store {
	if suspectAfter <= 0 {
		suspectAfter = 2
	}
	return &Store{
		self:         self,
		entries:      make(map[string]Entry),
		fails:        make(map[string]int),
		dead:         make(map[string]bool),
		suspectAfter: suspectAfter,
	}
}

// SetSelf installs the local node's own entry. It is the one write that
// bypasses the merge-by-version rule's remote-skip: the local co-database is
// authoritative for itself, and remote claims about it are always ignored.
func (s *Store) SetSelf(e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[e.Node]; !ok || e.Version >= old.Version {
		s.entries[e.Node] = e
	}
}

// Apply merges remote entries by version: an entry lands only when it is
// strictly newer than what the store holds (or fills a gap), and entries
// claiming to describe the local node are dropped — the local co-database is
// the only authority for itself. It returns the entries actually applied,
// in input order, so callers can invalidate derived caches.
func (s *Store) Apply(entries []Entry) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var applied []Entry
	for _, e := range entries {
		if e.Node == "" || e.Node == s.self {
			continue
		}
		old, ok := s.entries[e.Node]
		if ok && e.Version <= old.Version {
			continue
		}
		s.entries[e.Node] = e
		applied = append(applied, e)
	}
	return applied
}

// Digest snapshots the store's version vector, the local entry included.
func (s *Store) Digest() Digest {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := make(Digest, len(s.entries))
	for n, e := range s.entries {
		d[n] = e.Version
	}
	return d
}

// DeltaSince returns the entries held at a strictly newer version than the
// digest records (absent digest nodes count as version 0), sorted by node
// name for a deterministic wire image.
func (s *Store) DeltaSince(d Digest) []Entry {
	s.mu.Lock()
	var out []Entry
	for n, e := range s.entries {
		if e.Version > d[n] {
			out = append(out, e)
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Get returns a node's entry.
func (s *Store) Get(node string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[node]
	return e, ok
}

// Len reports how many nodes the store knows (itself included once SetSelf
// has run).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Nodes lists every known node name, sorted.
func (s *Store) Nodes() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.entries))
	for n := range s.entries {
		out = append(out, n)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Peers lists every known node except self that carries a co-database
// reference — the gossip-able population — sorted by name.
func (s *Store) Peers() []Entry {
	s.mu.Lock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		if e.Node != s.self && e.CoDBRef != "" {
			out = append(out, e)
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// ReportFailure records a failed exchange with a peer; after suspectAfter
// consecutive failures the peer is considered dead. It reports whether this
// call crossed the threshold.
func (s *Store) ReportFailure(node string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fails[node]++
	if s.fails[node] >= s.suspectAfter && !s.dead[node] {
		s.dead[node] = true
		return true
	}
	return false
}

// ReportSuccess resets a peer's failure count and revives it.
func (s *Store) ReportSuccess(node string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.fails, node)
	delete(s.dead, node)
}

// Alive reports whether a peer is believed reachable. Unknown peers get the
// benefit of the doubt: liveness is only ever evidence of failure, never a
// gate on first contact.
func (s *Store) Alive(node string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.dead[node]
}

// DeadCount reports how many peers are currently considered dead.
func (s *Store) DeadCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dead)
}

// SuspectAfter returns the consecutive-failure threshold, so tests can
// compute the detection bound (SuspectAfter full ring cycles).
func (s *Store) SuspectAfter() int { return s.suspectAfter }

// Shard splits a coalition's member list into sub-coalitions of at most
// size members, preserving order: members[0:size], members[size:2*size], …
// Member lists arrive sorted from the co-database, so sharding is
// deterministic across every node that holds the same list. size <= 0
// returns a single shard.
func Shard(members []string, size int) [][]string {
	if size <= 0 || len(members) <= size {
		if len(members) == 0 {
			return nil
		}
		return [][]string{members}
	}
	var out [][]string
	for start := 0; start < len(members); start += size {
		end := start + size
		if end > len(members) {
			end = len(members)
		}
		out = append(out, members[start:end])
	}
	return out
}

// Representative elects a shard's representative: the first member the
// liveness view still believes reachable. When every member is suspected the
// first member is returned anyway (the caller's probe will fail and record
// the error, which is the honest outcome). The returned index is the
// member's position within the shard.
func (s *Store) Representative(shard []string) (string, int) {
	for i, m := range shard {
		if s.Alive(m) {
			return m, i
		}
	}
	if len(shard) == 0 {
		return "", -1
	}
	return shard[0], 0
}
