package gossip

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestAgentStartLoop runs the background loop itself (everything else in
// this file drives Tick directly): with a millisecond interval and the
// default timer-based sleep, Start must gossip on its own and stop when its
// context is cancelled. Also pins Store.Nodes as the sorted roster.
func TestAgentStartLoop(t *testing.T) {
	_, agents, _ := buildMemFederation(2, 11)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		agents[0].Start(ctx)
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for agents[0].Messages() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Start did not stop on context cancel")
	}
	if agents[0].Messages() == 0 {
		t.Fatal("background loop never gossiped")
	}
	if got := agents[0].Store().Nodes(); !reflect.DeepEqual(got, []string{"N0", "N1"}) {
		t.Fatalf("Store().Nodes() = %v", got)
	}
}

func TestStoreMergeByVersion(t *testing.T) {
	s := NewStore("A", 0)
	s.SetSelf(Entry{Node: "A", Version: 3, CoDBRef: "ref-a"})

	applied := s.Apply([]Entry{
		{Node: "B", Version: 1, CoDBRef: "ref-b"},
		{Node: "C", Version: 5, CoDBRef: "ref-c", Coalitions: []string{"c1"}},
		{Node: "A", Version: 99, CoDBRef: "evil"}, // remote claim about self: dropped
		{Node: "", Version: 7},                    // nameless: dropped
	})
	if len(applied) != 2 || applied[0].Node != "B" || applied[1].Node != "C" {
		t.Fatalf("applied = %+v, want B then C", applied)
	}
	if e, _ := s.Get("A"); e.Version != 3 || e.CoDBRef != "ref-a" {
		t.Fatalf("self entry overwritten by remote claim: %+v", e)
	}

	// Older and equal versions never land; strictly newer does.
	if got := s.Apply([]Entry{{Node: "C", Version: 5}}); len(got) != 0 {
		t.Fatalf("equal version applied: %+v", got)
	}
	if got := s.Apply([]Entry{{Node: "C", Version: 4}}); len(got) != 0 {
		t.Fatalf("older version applied: %+v", got)
	}
	if got := s.Apply([]Entry{{Node: "C", Version: 6, CoDBRef: "ref-c2"}}); len(got) != 1 {
		t.Fatalf("newer version not applied: %+v", got)
	}
	if e, _ := s.Get("C"); e.CoDBRef != "ref-c2" {
		t.Fatalf("newer entry did not replace: %+v", e)
	}
}

func TestStoreDigestAndDelta(t *testing.T) {
	s := NewStore("A", 0)
	s.SetSelf(Entry{Node: "A", Version: 2, CoDBRef: "ra"})
	s.Apply([]Entry{
		{Node: "B", Version: 4, CoDBRef: "rb"},
		{Node: "C", Version: 1, CoDBRef: "rc"},
	})

	d := s.Digest()
	want := Digest{"A": 2, "B": 4, "C": 1}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("digest = %v, want %v", d, want)
	}

	// A peer that has B current but A and C stale gets exactly A and C,
	// sorted by node name.
	delta := s.DeltaSince(Digest{"A": 1, "B": 4})
	if len(delta) != 2 || delta[0].Node != "A" || delta[1].Node != "C" {
		t.Fatalf("delta = %+v, want [A C]", delta)
	}
	if len(s.DeltaSince(d)) != 0 {
		t.Fatal("delta against own digest should be empty")
	}
}

func TestWireRoundTrip(t *testing.T) {
	entries := []Entry{
		{Node: "N0", Version: 7, CoDBRef: "ior:abc", Coalitions: []string{"base", "c1"}},
		{Node: "N1", Version: 0, CoDBRef: "", Coalitions: nil},
		{Node: "N2", Version: math.MaxUint64, CoDBRef: "x", Coalitions: []string{""}},
	}
	got, err := DecodeDelta(EncodeDelta(entries))
	if err != nil {
		t.Fatalf("DecodeDelta: %v", err)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Fatalf("delta round trip = %+v, want %+v", got, entries)
	}

	d := Digest{"N0": 7, "N1": 0, "N2": math.MaxUint64}
	gd, err := DecodeDigest(EncodeDigest(d))
	if err != nil {
		t.Fatalf("DecodeDigest: %v", err)
	}
	// Version-0 digest records survive the round trip only as an absent key
	// (absent means version 0 by definition), so compare semantically.
	for n, v := range d {
		if gd[n] != v {
			t.Fatalf("digest[%s] = %d, want %d", n, gd[n], v)
		}
	}

	// Empty payloads are legal.
	if _, err := DecodeDelta(EncodeDelta(nil)); err != nil {
		t.Fatalf("empty delta: %v", err)
	}
	if _, err := DecodeDigest(EncodeDigest(nil)); err != nil {
		t.Fatalf("empty digest: %v", err)
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("WG"),
		[]byte("XXXX"),
		[]byte("WGE1"),                     // missing count
		[]byte("WGE1\xff\xff\xff\xff\xff"), // count larger than payload
		append(EncodeDelta([]Entry{{Node: "A", Version: 1}}), 0xff), // trailing junk tolerated? no: only prefix parsed
	}
	for i, c := range cases[:5] {
		if _, err := DecodeDelta(c); err == nil {
			t.Fatalf("case %d: DecodeDelta accepted garbage %q", i, c)
		}
	}
	// Truncation at every prefix length must error, never panic.
	full := EncodeDelta([]Entry{{Node: "NodeName", Version: 9, CoDBRef: "some-ref", Coalitions: []string{"c1", "c2"}}})
	for n := 0; n < len(full); n++ {
		if _, err := DecodeDelta(full[:n]); err == nil && n < len(full) {
			// Prefixes that happen to parse as a shorter valid payload are
			// acceptable; what matters is no panic and no regression, which
			// Store.Apply guarantees. Only the empty/magic-less cases must err.
			if n < 5 {
				t.Fatalf("truncated to %d bytes parsed successfully", n)
			}
		}
	}
}

func TestStoreLiveness(t *testing.T) {
	s := NewStore("A", 2)
	if !s.Alive("B") {
		t.Fatal("unknown peer should start alive")
	}
	if s.ReportFailure("B") {
		t.Fatal("first failure should not cross threshold 2")
	}
	if !s.ReportFailure("B") {
		t.Fatal("second failure should cross threshold")
	}
	if s.Alive("B") {
		t.Fatal("B should be dead after 2 failures")
	}
	if s.DeadCount() != 1 {
		t.Fatalf("DeadCount = %d, want 1", s.DeadCount())
	}
	s.ReportSuccess("B")
	if !s.Alive("B") || s.DeadCount() != 0 {
		t.Fatal("success should revive B")
	}
}

func TestShardAndRepresentative(t *testing.T) {
	members := []string{"N0", "N1", "N2", "N3", "N4", "N5", "N6"}
	shards := Shard(members, 3)
	want := [][]string{{"N0", "N1", "N2"}, {"N3", "N4", "N5"}, {"N6"}}
	if !reflect.DeepEqual(shards, want) {
		t.Fatalf("Shard = %v, want %v", shards, want)
	}
	if got := Shard(members, 0); len(got) != 1 || len(got[0]) != 7 {
		t.Fatalf("Shard size 0 = %v, want single shard", got)
	}
	if got := Shard(nil, 3); got != nil {
		t.Fatalf("Shard(nil) = %v, want nil", got)
	}

	s := NewStore("X", 1)
	if rep, i := s.Representative(shards[0]); rep != "N0" || i != 0 {
		t.Fatalf("rep = %s/%d, want N0/0", rep, i)
	}
	s.ReportFailure("N0")
	if rep, i := s.Representative(shards[0]); rep != "N1" || i != 1 {
		t.Fatalf("rep after N0 death = %s/%d, want N1/1", rep, i)
	}
	s.ReportFailure("N1")
	s.ReportFailure("N2")
	// Whole shard dead: fall back to the first member.
	if rep, i := s.Representative(shards[0]); rep != "N0" || i != 0 {
		t.Fatalf("rep with dead shard = %s/%d, want N0/0 fallback", rep, i)
	}
	if rep, i := s.Representative(nil); rep != "" || i != -1 {
		t.Fatalf("rep of empty shard = %s/%d", rep, i)
	}
}

// memNet is an in-memory transport connecting agents by co-database ref,
// with optional per-node partitions — enough to prove multi-agent
// convergence without the ORB.
type memNet struct {
	mu     sync.Mutex
	agents map[string]*Agent // by ref
	cut    map[string]bool   // refs currently unreachable
}

func (m *memNet) exchange(_ context.Context, ref string, digest []byte) ([]byte, []byte, error) {
	m.mu.Lock()
	a, ok := m.agents[ref]
	cut := m.cut[ref]
	m.mu.Unlock()
	if !ok || cut {
		return nil, nil, fmt.Errorf("unreachable: %s", ref)
	}
	return a.HandlePull(digest)
}

func (m *memNet) push(_ context.Context, ref string, delta []byte) error {
	m.mu.Lock()
	a, ok := m.agents[ref]
	cut := m.cut[ref]
	m.mu.Unlock()
	if !ok || cut {
		return fmt.Errorf("unreachable: %s", ref)
	}
	_, err := a.HandlePush(delta)
	return err
}

func buildMemFederation(n int, seed int64) (*memNet, []*Agent, []*uint64) {
	net := &memNet{agents: make(map[string]*Agent), cut: make(map[string]bool)}
	agents := make([]*Agent, n)
	versions := make([]*uint64, n)
	for i := 0; i < n; i++ {
		i := i
		name := fmt.Sprintf("N%d", i)
		ref := "ref:" + name
		v := new(uint64)
		*v = 1
		versions[i] = v
		// Each node bootstraps knowing only its ring neighbor, the sparsest
		// connected seed graph: convergence must come from gossip itself.
		next := fmt.Sprintf("N%d", (i+1)%n)
		agents[i] = New(Config{
			Self: func() Entry {
				return Entry{Node: name, Version: *versions[i], CoDBRef: ref}
			},
			Seeds: func() []Entry {
				return []Entry{{Node: next, Version: 0, CoDBRef: "ref:" + next}}
			},
			Exchange: net.exchange,
			Push:     net.push,
			Fanout:   3,
			Seed:     seed + int64(i),
		})
		net.agents[ref] = agents[i]
	}
	return net, agents, versions
}

func runRound(agents []*Agent) {
	for _, a := range agents {
		a.Tick(context.Background())
	}
}

func TestAgentConvergence(t *testing.T) {
	const n = 40
	_, agents, versions := buildMemFederation(n, 7)

	bound := 3 * int(math.Ceil(math.Log2(n)))
	rounds := 0
	for ; rounds < bound; rounds++ {
		runRound(agents)
		full := true
		for _, a := range agents {
			if a.Store().Len() < n {
				full = false
				break
			}
		}
		if full {
			break
		}
	}
	if rounds >= bound {
		t.Fatalf("membership did not converge in %d rounds", bound)
	}

	// A mutation at node 0 must reach every store within the log bound.
	*versions[0] = 10
	for r := 0; r < bound; r++ {
		runRound(agents)
		all := true
		for _, a := range agents {
			if e, _ := a.Store().Get("N0"); e.Version != 10 {
				all = false
				break
			}
		}
		if all {
			return
		}
	}
	t.Fatalf("mutation did not converge in %d rounds", bound)
}

func TestAgentDeterministicReplay(t *testing.T) {
	trace := func() string {
		_, agents, _ := buildMemFederation(12, 42)
		for r := 0; r < 8; r++ {
			runRound(agents)
		}
		var out string
		for _, a := range agents {
			st := a.Stats()
			if a.Messages() != st.Exchanges+st.Pushes {
				t.Fatalf("Messages() = %d, want exchanges+pushes = %d",
					a.Messages(), st.Exchanges+st.Pushes)
			}
			out += fmt.Sprintf("%d/%d/%d;", st.Exchanges, st.Pushes, st.DeltasApplied)
		}
		return out
	}
	if a, b := trace(), trace(); a != b {
		t.Fatalf("same seed produced different traces:\n%s\n%s", a, b)
	}
}

func TestAgentFailureDetection(t *testing.T) {
	net, agents, _ := buildMemFederation(8, 3)
	bound := 3 * int(math.Ceil(math.Log2(8)))
	for r := 0; r < bound; r++ {
		runRound(agents)
	}

	// Cut node 5 off and count rounds until everyone marks it dead. The ring
	// walk contacts every peer once per cycle, so detection is bounded by
	// SuspectAfter cycles (plus one warm-up cycle for a ring mid-shuffle).
	net.mu.Lock()
	net.cut["ref:N5"] = true
	net.mu.Unlock()

	cycle := agents[0].CycleLen()
	limit := (agents[0].Store().SuspectAfter() + 2) * cycle
	for r := 0; r < limit; r++ {
		runRound(agents)
		all := true
		for i, a := range agents {
			if i == 5 {
				continue
			}
			if a.Store().Alive("N5") {
				all = false
				break
			}
		}
		if all {
			return
		}
	}
	t.Fatalf("N5 not detected dead within %d rounds (cycle=%d)", limit, cycle)
}
