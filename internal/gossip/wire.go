package gossip

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// The gossip wire codec. Digests and deltas cross the ORB as opaque byte
// strings inside the co-database's gossip_pull/gossip_push operations, so
// the layout is owned entirely by this package: a 4-byte magic, a uvarint
// count, then length-prefixed fields. Every length is bounds-checked against
// both a hard cap and the bytes actually remaining, so a truncated,
// corrupted or adversarial payload produces an error — never a panic and
// never an oversized allocation. FuzzGossipDelta holds the codec to that
// contract.

const (
	digestMagic = "WGD1"
	deltaMagic  = "WGE1"

	// maxWireName, maxWireRef and maxWireCoalitions cap individual fields;
	// maxWireCount caps the top-level entry count. All are far above any
	// legitimate federation and exist only to bound decoder allocations.
	maxWireName       = 1 << 12
	maxWireRef        = 1 << 16
	maxWireCoalitions = 1 << 12
	maxWireCount      = 1 << 20
)

// EncodeDigest renders a digest deterministically (nodes sorted by name).
func EncodeDigest(d Digest) []byte {
	nodes := make([]string, 0, len(d))
	for n := range d {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	buf := append([]byte{}, digestMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(nodes)))
	for _, n := range nodes {
		buf = appendString(buf, n)
		buf = binary.AppendUvarint(buf, d[n])
	}
	return buf
}

// DecodeDigest parses a digest payload.
func DecodeDigest(data []byte) (Digest, error) {
	r, err := newReader(data, digestMagic)
	if err != nil {
		return nil, err
	}
	count, err := r.count()
	if err != nil {
		return nil, err
	}
	d := make(Digest, count)
	for i := 0; i < count; i++ {
		name, err := r.str(maxWireName)
		if err != nil {
			return nil, err
		}
		ver, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		// Duplicate names keep the highest version: the merge direction that
		// can never regress an applier.
		if ver > d[name] {
			d[name] = ver
		}
	}
	return d, nil
}

// EncodeDelta renders a list of entries.
func EncodeDelta(entries []Entry) []byte {
	buf := append([]byte{}, deltaMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = appendString(buf, e.Node)
		buf = binary.AppendUvarint(buf, e.Version)
		buf = appendString(buf, e.CoDBRef)
		buf = binary.AppendUvarint(buf, uint64(len(e.Coalitions)))
		for _, c := range e.Coalitions {
			buf = appendString(buf, c)
		}
	}
	return buf
}

// DecodeDelta parses a delta payload. Duplicate nodes are kept in order;
// Store.Apply's merge-by-version rule makes replays and duplicates harmless.
func DecodeDelta(data []byte) ([]Entry, error) {
	r, err := newReader(data, deltaMagic)
	if err != nil {
		return nil, err
	}
	count, err := r.count()
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, count)
	for i := 0; i < count; i++ {
		var e Entry
		if e.Node, err = r.str(maxWireName); err != nil {
			return nil, err
		}
		if e.Version, err = r.uvarint(); err != nil {
			return nil, err
		}
		if e.CoDBRef, err = r.str(maxWireRef); err != nil {
			return nil, err
		}
		nc, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nc > maxWireCoalitions || nc > uint64(r.remaining()) {
			return nil, fmt.Errorf("gossip: delta entry %d claims %d coalitions with %d bytes left", i, nc, r.remaining())
		}
		if nc > 0 {
			e.Coalitions = make([]string, 0, nc)
			for j := uint64(0); j < nc; j++ {
				c, err := r.str(maxWireName)
				if err != nil {
					return nil, err
				}
				e.Coalitions = append(e.Coalitions, c)
			}
		}
		out = append(out, e)
	}
	return out, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// reader is a bounds-checked cursor over a wire payload.
type reader struct {
	data []byte
	pos  int
}

func newReader(data []byte, magic string) (*reader, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("gossip: bad magic (want %s)", magic)
	}
	return &reader{data: data, pos: len(magic)}, nil
}

func (r *reader) remaining() int { return len(r.data) - r.pos }

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("gossip: truncated or overlong uvarint at %d", r.pos)
	}
	r.pos += n
	return v, nil
}

// count reads the top-level entry count, rejecting claims that cannot fit in
// the remaining bytes (each entry costs at least one byte).
func (r *reader) count() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxWireCount || v > uint64(r.remaining()) {
		return 0, fmt.Errorf("gossip: count %d exceeds payload (%d bytes left)", v, r.remaining())
	}
	return int(v), nil
}

func (r *reader) str(maxLen int) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(maxLen) {
		return "", fmt.Errorf("gossip: string length %d exceeds cap %d", n, maxLen)
	}
	if n > uint64(r.remaining()) {
		return "", fmt.Errorf("gossip: string length %d exceeds payload (%d bytes left)", n, r.remaining())
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}
