package idl

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cdr"
)

func TestAnyRoundTrip(t *testing.T) {
	values := []Any{
		Null(),
		Bool(true),
		Bool(false),
		Long(-42),
		Double(2.75),
		String("WebFINDIT"),
		Octets([]byte{0, 1, 2, 255}),
		Seq(Long(1), String("two"), Seq(Bool(true))),
		Struct(
			F("name", String("Royal Brisbane Hospital")),
			F("beds", Long(850)),
			F("types", Strings([]string{"ResearchProjects", "PatientHistory"})),
		),
		{Kind: KindVoid},
		{Kind: KindOctet, Int: 200},
		{Kind: KindShort, Int: -3},
		{Kind: KindUShort, Int: 60000},
		{Kind: KindLong, Int: -100000},
		{Kind: KindULong, Int: 3000000000},
		{Kind: KindULongLong, Int: -1}, // wraps to max uint64 on the wire
		{Kind: KindFloat, Float: 1.5},
	}
	for _, v := range values {
		e := cdr.NewEncoder(cdr.BigEndian)
		v.Marshal(e)
		got, err := UnmarshalAny(cdr.NewDecoder(e.Bytes(), cdr.BigEndian))
		if err != nil {
			t.Fatalf("unmarshal %s: %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %s -> %s", v, got)
		}
	}
}

func TestAnysRoundTrip(t *testing.T) {
	in := []Any{Long(1), String("x"), Null()}
	e := cdr.NewEncoder(cdr.LittleEndian)
	MarshalAnys(e, in)
	out, err := UnmarshalAnys(cdr.NewDecoder(e.Bytes(), cdr.LittleEndian))
	if err != nil || len(out) != 3 {
		t.Fatalf("got %v, %v", out, err)
	}
	for i := range in {
		if !out[i].Equal(in[i]) {
			t.Errorf("item %d: %s != %s", i, out[i], in[i])
		}
	}
}

func TestStructAccessors(t *testing.T) {
	s := Struct(F("a", String("x")), F("b", Long(7)))
	if s.GetString("a") != "x" {
		t.Error("GetString")
	}
	if s.GetInt("b") != 7 {
		t.Error("GetInt")
	}
	if s.GetString("missing") != "" || s.GetInt("missing") != 0 {
		t.Error("missing field defaults")
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("Get reported missing field present")
	}
}

func TestStringSlice(t *testing.T) {
	a := Strings([]string{"p", "q"})
	got := a.StringSlice()
	if len(got) != 2 || got[0] != "p" || got[1] != "q" {
		t.Errorf("StringSlice = %v", got)
	}
}

func TestQuickAnyStringRoundTrip(t *testing.T) {
	f := func(s string, n int64, b bool) bool {
		if strings.ContainsRune(s, 0) {
			return true
		}
		v := Struct(F("s", String(s)), F("n", Long(n)), F("b", Bool(b)))
		e := cdr.NewEncoder(cdr.BigEndian)
		v.Marshal(e)
		got, err := UnmarshalAny(cdr.NewDecoder(e.Bytes(), cdr.BigEndian))
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

const sampleIDL = `
// The co-database interface (meta-data layer).
module WebFINDIT {
    interface CoDatabase {
        string find_coalitions(in string info_type);
        sequence<any> instances(in string class_name);
        boolean is_member(in string coalition);
        oneway void touch();
        long long count(in string class_name);
        double score(in double base, in long bonus);
        sequence<octet> document(in string name);
    };
    interface ISI {
        any query(in string sql);
    };
};
`

func TestParseIDL(t *testing.T) {
	ifaces, err := Parse(sampleIDL)
	if err != nil {
		t.Fatal(err)
	}
	if len(ifaces) != 2 {
		t.Fatalf("got %d interfaces", len(ifaces))
	}
	codb := ifaces[0]
	if codb.Name != "WebFINDIT/CoDatabase" {
		t.Errorf("name = %s", codb.Name)
	}
	if codb.RepoID != "IDL:WebFINDIT/CoDatabase:1.0" {
		t.Errorf("repo id = %s", codb.RepoID)
	}
	op, err := codb.Op("find_coalitions")
	if err != nil {
		t.Fatal(err)
	}
	if op.Result != KindString || len(op.Params) != 1 || op.Params[0].Kind != KindString {
		t.Errorf("find_coalitions signature: %s", op.Signature())
	}
	if op, _ := codb.Op("touch"); op == nil || !op.Oneway || op.Result != KindVoid {
		t.Error("oneway void touch() not parsed")
	}
	if op, _ := codb.Op("count"); op == nil || op.Result != KindLongLong {
		t.Error("long long result not parsed")
	}
	if op, _ := codb.Op("document"); op == nil || op.Result != KindOctets {
		t.Error("sequence<octet> result not parsed")
	}
	if op, _ := codb.Op("instances"); op == nil || op.Result != KindSeq {
		t.Error("sequence<any> result not parsed")
	}
	isi := ifaces[1]
	if isi.Name != "WebFINDIT/ISI" {
		t.Errorf("second interface = %s", isi.Name)
	}
}

func TestParseIDLErrors(t *testing.T) {
	bad := []string{
		"",
		"interface {}",
		"interface X { string op(in string); };",  // missing param name
		"interface X { string op(string a); };",   // missing direction
		"interface X { oneway string op(); };",    // oneway non-void
		"interface X { sequence<string> op(); };", // unsupported seq elem
		"module M { interface X { void op(); }",   // unterminated module
		"interface X { unknown op(); };",          // unknown type
		"banana",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseIDLComments(t *testing.T) {
	src := `
	/* block comment
	   spans lines */
	interface C {
		// line comment
		void ping(); /* trailing */
	};`
	ifaces, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ifaces[0].Op("ping"); err != nil {
		t.Error(err)
	}
}

func TestRepository(t *testing.T) {
	r := NewRepository()
	ifaces := MustParse(sampleIDL)
	for _, it := range ifaces {
		r.Register(it)
	}
	if _, ok := r.Lookup("IDL:WebFINDIT/ISI:1.0"); !ok {
		t.Error("Lookup by repo id failed")
	}
	if _, ok := r.LookupName("WebFINDIT/CoDatabase"); !ok {
		t.Error("LookupName failed")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "WebFINDIT/CoDatabase" {
		t.Errorf("Names = %v", names)
	}
}

func TestOperationHelpers(t *testing.T) {
	it := NewInterface("T").
		Define("f", KindString, Param{Dir: In, Kind: KindString, Name: "a"},
			Param{Dir: Out, Kind: KindLong, Name: "b"},
			Param{Dir: InOut, Kind: KindBool, Name: "c"})
	op, _ := it.Op("f")
	if op.InCount() != 2 {
		t.Errorf("InCount = %d", op.InCount())
	}
	sig := op.Signature()
	if !strings.Contains(sig, "in string a") || !strings.Contains(sig, "out long b") {
		t.Errorf("signature = %s", sig)
	}
	if _, err := it.Op("missing"); err == nil {
		t.Error("missing op not reported")
	}
}
