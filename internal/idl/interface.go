package idl

import (
	"fmt"
	"sort"
	"sync"
)

// ParamDir is the direction of an operation parameter.
type ParamDir byte

// Parameter directions.
const (
	In ParamDir = iota
	Out
	InOut
)

func (d ParamDir) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	default:
		return "inout"
	}
}

// Param describes one operation parameter.
type Param struct {
	Dir  ParamDir
	Kind Kind
	Name string
}

// Operation describes one operation of an interface.
type Operation struct {
	Name   string
	Result Kind
	Params []Param
	Oneway bool
}

// InCount returns the number of in/inout parameters (those carried in a
// request body).
func (op *Operation) InCount() int {
	n := 0
	for _, p := range op.Params {
		if p.Dir == In || p.Dir == InOut {
			n++
		}
	}
	return n
}

// Signature renders the operation in IDL syntax.
func (op *Operation) Signature() string {
	s := op.Result.String() + " " + op.Name + "("
	for i, p := range op.Params {
		if i > 0 {
			s += ", "
		}
		s += p.Dir.String() + " " + p.Kind.String() + " " + p.Name
	}
	return s + ")"
}

// Interface describes a remote object interface: a repository ID (in the
// CORBA "IDL:name:1.0" convention) and a set of operations.
type Interface struct {
	Name   string
	RepoID string
	Ops    map[string]*Operation
}

// NewInterface creates an interface with the conventional repository ID.
func NewInterface(name string) *Interface {
	return &Interface{
		Name:   name,
		RepoID: "IDL:" + name + ":1.0",
		Ops:    make(map[string]*Operation),
	}
}

// Define adds an operation to the interface and returns it for chaining.
func (it *Interface) Define(name string, result Kind, params ...Param) *Interface {
	it.Ops[name] = &Operation{Name: name, Result: result, Params: params}
	return it
}

// Op returns the named operation, or an error naming the interface.
func (it *Interface) Op(name string) (*Operation, error) {
	op, ok := it.Ops[name]
	if !ok {
		return nil, fmt.Errorf("idl: interface %s has no operation %q", it.Name, name)
	}
	return op, nil
}

// OpNames returns the operation names in sorted order.
func (it *Interface) OpNames() []string {
	names := make([]string, 0, len(it.Ops))
	for n := range it.Ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Repository is a thread-safe interface repository, the ORB-local registry
// of known interfaces keyed by repository ID.
type Repository struct {
	mu    sync.RWMutex
	byID  map[string]*Interface
	byNam map[string]*Interface
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{byID: make(map[string]*Interface), byNam: make(map[string]*Interface)}
}

// Register adds an interface; re-registering the same repo ID replaces it.
func (r *Repository) Register(it *Interface) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byID[it.RepoID] = it
	r.byNam[it.Name] = it
}

// Lookup returns the interface with the given repository ID.
func (r *Repository) Lookup(repoID string) (*Interface, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	it, ok := r.byID[repoID]
	return it, ok
}

// LookupName returns the interface with the given simple name.
func (r *Repository) LookupName(name string) (*Interface, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	it, ok := r.byNam[name]
	return it, ok
}

// Names lists registered interface names, sorted.
func (r *Repository) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.byNam))
	for n := range r.byNam {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
