package idl

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a source text containing an IDL subset and returns the
// interfaces it declares. The subset covers what the reproduction needs:
//
//	module M {                       // optional, may nest; names join with "/"
//	    interface Name {
//	        string op(in string a, in long b);
//	        oneway void ping();
//	        sequence<any> rows(in string sql);
//	    };
//	};
//
// Supported types: void, boolean, octet, short, long, float, double, string,
// any, "unsigned short/long", "long long", "unsigned long long",
// sequence<octet> and sequence<any>. Comments use // and /* */.
func Parse(src string) ([]*Interface, error) {
	p := &idlParser{toks: lexIDL(src)}
	var out []*Interface
	for !p.eof() {
		ifaces, err := p.parseTopLevel("")
		if err != nil {
			return nil, err
		}
		out = append(out, ifaces...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("idl: no interface declarations found")
	}
	return out, nil
}

// MustParse is Parse that panics on error; for package-level IDL constants.
func MustParse(src string) []*Interface {
	ifaces, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return ifaces
}

type idlTok struct {
	kind string // "ident", "punct", "eof"
	text string
	pos  int
}

func lexIDL(src string) []idlTok {
	var toks []idlTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				i = len(src)
			} else {
				i += 2 + end + 2
			}
		case unicode.IsSpace(rune(c)):
			i++
		case isIDLIdentStart(c):
			start := i
			for i < len(src) && isIDLIdentPart(src[i]) {
				i++
			}
			toks = append(toks, idlTok{"ident", src[start:i], start})
		default:
			toks = append(toks, idlTok{"punct", string(c), i})
			i++
		}
	}
	toks = append(toks, idlTok{kind: "eof", pos: len(src)})
	return toks
}

func isIDLIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIDLIdentPart(c byte) bool {
	return isIDLIdentStart(c) || (c >= '0' && c <= '9')
}

type idlParser struct {
	toks []idlTok
	pos  int
}

func (p *idlParser) eof() bool { return p.toks[p.pos].kind == "eof" }

func (p *idlParser) peek() idlTok { return p.toks[p.pos] }

func (p *idlParser) next() idlTok {
	t := p.toks[p.pos]
	if t.kind != "eof" {
		p.pos++
	}
	return t
}

func (p *idlParser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("idl: expected %q at offset %d, got %q", text, t.pos, t.text)
	}
	return nil
}

func (p *idlParser) parseTopLevel(prefix string) ([]*Interface, error) {
	t := p.peek()
	switch t.text {
	case "module":
		p.next()
		name := p.next()
		if name.kind != "ident" {
			return nil, fmt.Errorf("idl: expected module name at offset %d", name.pos)
		}
		if err := p.expect("{"); err != nil {
			return nil, err
		}
		full := name.text
		if prefix != "" {
			full = prefix + "/" + name.text
		}
		var out []*Interface
		for p.peek().text != "}" {
			if p.eof() {
				return nil, fmt.Errorf("idl: unterminated module %s", full)
			}
			ifaces, err := p.parseTopLevel(full)
			if err != nil {
				return nil, err
			}
			out = append(out, ifaces...)
		}
		p.next() // }
		if p.peek().text == ";" {
			p.next()
		}
		return out, nil
	case "interface":
		iface, err := p.parseInterface(prefix)
		if err != nil {
			return nil, err
		}
		return []*Interface{iface}, nil
	default:
		return nil, fmt.Errorf("idl: unexpected token %q at offset %d", t.text, t.pos)
	}
}

func (p *idlParser) parseInterface(prefix string) (*Interface, error) {
	if err := p.expect("interface"); err != nil {
		return nil, err
	}
	name := p.next()
	if name.kind != "ident" {
		return nil, fmt.Errorf("idl: expected interface name at offset %d", name.pos)
	}
	full := name.text
	if prefix != "" {
		full = prefix + "/" + name.text
	}
	iface := NewInterface(full)
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for p.peek().text != "}" {
		if p.eof() {
			return nil, fmt.Errorf("idl: unterminated interface %s", full)
		}
		op, err := p.parseOperation()
		if err != nil {
			return nil, fmt.Errorf("idl: interface %s: %w", full, err)
		}
		iface.Ops[op.Name] = op
	}
	p.next() // }
	if p.peek().text == ";" {
		p.next()
	}
	return iface, nil
}

func (p *idlParser) parseOperation() (*Operation, error) {
	op := &Operation{}
	if p.peek().text == "oneway" {
		p.next()
		op.Oneway = true
	}
	result, err := p.parseType()
	if err != nil {
		return nil, err
	}
	op.Result = result
	nameTok := p.next()
	if nameTok.kind != "ident" {
		return nil, fmt.Errorf("expected operation name at offset %d, got %q", nameTok.pos, nameTok.text)
	}
	op.Name = nameTok.text
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for p.peek().text != ")" {
		param, err := p.parseParam()
		if err != nil {
			return nil, fmt.Errorf("operation %s: %w", op.Name, err)
		}
		op.Params = append(op.Params, param)
		if p.peek().text == "," {
			p.next()
		}
	}
	p.next() // )
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if op.Oneway && op.Result != KindVoid {
		return nil, fmt.Errorf("operation %s: oneway operations must return void", op.Name)
	}
	return op, nil
}

func (p *idlParser) parseParam() (Param, error) {
	var param Param
	switch p.peek().text {
	case "in":
		param.Dir = In
		p.next()
	case "out":
		param.Dir = Out
		p.next()
	case "inout":
		param.Dir = InOut
		p.next()
	default:
		return param, fmt.Errorf("expected parameter direction at offset %d, got %q", p.peek().pos, p.peek().text)
	}
	kind, err := p.parseType()
	if err != nil {
		return param, err
	}
	param.Kind = kind
	nameTok := p.next()
	if nameTok.kind != "ident" {
		return param, fmt.Errorf("expected parameter name at offset %d, got %q", nameTok.pos, nameTok.text)
	}
	param.Name = nameTok.text
	return param, nil
}

func (p *idlParser) parseType() (Kind, error) {
	t := p.next()
	switch t.text {
	case "void":
		return KindVoid, nil
	case "boolean":
		return KindBool, nil
	case "octet":
		return KindOctet, nil
	case "short":
		return KindShort, nil
	case "float":
		return KindFloat, nil
	case "double":
		return KindDouble, nil
	case "string":
		return KindString, nil
	case "any":
		return KindAny, nil
	case "long":
		if p.peek().text == "long" {
			p.next()
			return KindLongLong, nil
		}
		return KindLong, nil
	case "unsigned":
		u := p.next()
		switch u.text {
		case "short":
			return KindUShort, nil
		case "long":
			if p.peek().text == "long" {
				p.next()
				return KindULongLong, nil
			}
			return KindULong, nil
		}
		return 0, fmt.Errorf("invalid type \"unsigned %s\" at offset %d", u.text, u.pos)
	case "sequence":
		if err := p.expect("<"); err != nil {
			return 0, err
		}
		elem := p.next()
		if err := p.expect(">"); err != nil {
			return 0, err
		}
		switch elem.text {
		case "octet":
			return KindOctets, nil
		case "any":
			return KindSeq, nil
		}
		return 0, fmt.Errorf("unsupported sequence element %q at offset %d", elem.text, elem.pos)
	}
	return 0, fmt.Errorf("unknown type %q at offset %d", t.text, t.pos)
}
