// Package idl provides the interface-definition layer of the ORB: type
// codes, self-describing Any values that marshal to CDR, an IDL subset
// parser, and an interface repository used for servant dispatch and client
// stub checking.
//
// The paper uses OMG IDL "for the separation between the implementation and
// the interface of a CORBA service"; this package plays the same role for the
// Go reproduction.
package idl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cdr"
)

// Kind enumerates the type codes understood by the ORB, a practical subset
// of the OMG typecode set.
type Kind byte

// Type code kinds. The octet values are part of the wire format.
const (
	KindNull Kind = iota
	KindVoid
	KindBool
	KindOctet
	KindShort
	KindUShort
	KindLong
	KindULong
	KindLongLong
	KindULongLong
	KindFloat
	KindDouble
	KindString
	KindOctets // sequence<octet>
	KindSeq    // sequence<any>
	KindStruct // name/value pairs
	KindAny
)

var kindNames = map[Kind]string{
	KindNull:      "null",
	KindVoid:      "void",
	KindBool:      "boolean",
	KindOctet:     "octet",
	KindShort:     "short",
	KindUShort:    "unsigned short",
	KindLong:      "long",
	KindULong:     "unsigned long",
	KindLongLong:  "long long",
	KindULongLong: "unsigned long long",
	KindFloat:     "float",
	KindDouble:    "double",
	KindString:    "string",
	KindOctets:    "sequence<octet>",
	KindSeq:       "sequence<any>",
	KindStruct:    "struct",
	KindAny:       "any",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// Field is one member of a struct Any.
type Field struct {
	Name  string
	Value Any
}

// Any is a self-describing value: a type code kind plus a payload. It is the
// unit of data the ORB moves between processes. The zero Any is the null
// value.
type Any struct {
	Kind   Kind
	Bool   bool
	Int    int64   // Short/UShort/Long/ULong/LongLong/ULongLong/Octet
	Float  float64 // Float/Double
	Str    string
	Bytes  []byte
	Seq    []Any
	Fields []Field
}

// Convenience constructors.

// Null returns the null Any.
func Null() Any { return Any{Kind: KindNull} }

// Bool wraps a boolean.
func Bool(v bool) Any { return Any{Kind: KindBool, Bool: v} }

// Long wraps a 64-bit integer as a long long.
func Long(v int64) Any { return Any{Kind: KindLongLong, Int: v} }

// Double wraps a 64-bit float.
func Double(v float64) Any { return Any{Kind: KindDouble, Float: v} }

// String wraps a string.
func String(v string) Any { return Any{Kind: KindString, Str: v} }

// Octets wraps a byte slice.
func Octets(v []byte) Any { return Any{Kind: KindOctets, Bytes: v} }

// Seq wraps a sequence of Any values.
func Seq(vs ...Any) Any { return Any{Kind: KindSeq, Seq: vs} }

// Strings wraps a []string as a sequence of string Anys.
func Strings(ss []string) Any {
	vs := make([]Any, len(ss))
	for i, s := range ss {
		vs[i] = String(s)
	}
	return Seq(vs...)
}

// Struct wraps a set of named fields; field order is preserved.
func Struct(fields ...Field) Any { return Any{Kind: KindStruct, Fields: fields} }

// F builds a struct field.
func F(name string, v Any) Field { return Field{Name: name, Value: v} }

// Get returns the named field of a struct Any.
func (a Any) Get(name string) (Any, bool) {
	for _, f := range a.Fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return Any{}, false
}

// GetString returns the named struct field as a string (empty if absent or
// not a string).
func (a Any) GetString(name string) string {
	v, ok := a.Get(name)
	if !ok || v.Kind != KindString {
		return ""
	}
	return v.Str
}

// GetInt returns the named struct field as an int64 (0 if absent).
func (a Any) GetInt(name string) int64 {
	v, ok := a.Get(name)
	if !ok {
		return 0
	}
	return v.Int
}

// StringSlice converts a sequence-of-string Any back to []string.
func (a Any) StringSlice() []string {
	out := make([]string, 0, len(a.Seq))
	for _, v := range a.Seq {
		out = append(out, v.Str)
	}
	return out
}

// Equal reports deep equality of two Any values.
func (a Any) Equal(b Any) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindNull, KindVoid:
		return true
	case KindBool:
		return a.Bool == b.Bool
	case KindOctet, KindShort, KindUShort, KindLong, KindULong, KindLongLong, KindULongLong:
		return a.Int == b.Int
	case KindFloat, KindDouble:
		return a.Float == b.Float
	case KindString:
		return a.Str == b.Str
	case KindOctets:
		if len(a.Bytes) != len(b.Bytes) {
			return false
		}
		for i := range a.Bytes {
			if a.Bytes[i] != b.Bytes[i] {
				return false
			}
		}
		return true
	case KindSeq, KindAny:
		if len(a.Seq) != len(b.Seq) {
			return false
		}
		for i := range a.Seq {
			if !a.Seq[i].Equal(b.Seq[i]) {
				return false
			}
		}
		return true
	case KindStruct:
		if len(a.Fields) != len(b.Fields) {
			return false
		}
		for i := range a.Fields {
			if a.Fields[i].Name != b.Fields[i].Name || !a.Fields[i].Value.Equal(b.Fields[i].Value) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the Any for debugging and experiment reports.
func (a Any) String() string {
	switch a.Kind {
	case KindNull:
		return "null"
	case KindVoid:
		return "void"
	case KindBool:
		return fmt.Sprintf("%t", a.Bool)
	case KindOctet, KindShort, KindUShort, KindLong, KindULong, KindLongLong, KindULongLong:
		return fmt.Sprintf("%d", a.Int)
	case KindFloat, KindDouble:
		return fmt.Sprintf("%g", a.Float)
	case KindString:
		return fmt.Sprintf("%q", a.Str)
	case KindOctets:
		return fmt.Sprintf("octets[%d]", len(a.Bytes))
	case KindSeq:
		parts := make([]string, len(a.Seq))
		for i, v := range a.Seq {
			parts[i] = v.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case KindStruct:
		parts := make([]string, len(a.Fields))
		for i, f := range a.Fields {
			parts[i] = f.Name + ": " + f.Value.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	}
	return a.Kind.String()
}

// Marshal appends the Any to a CDR encoder as a kind octet followed by the
// kind-specific payload.
func (a Any) Marshal(e *cdr.Encoder) {
	e.WriteOctet(byte(a.Kind))
	switch a.Kind {
	case KindNull, KindVoid:
	case KindBool:
		e.WriteBool(a.Bool)
	case KindOctet:
		e.WriteOctet(byte(a.Int))
	case KindShort:
		e.WriteShort(int16(a.Int))
	case KindUShort:
		e.WriteUShort(uint16(a.Int))
	case KindLong:
		e.WriteLong(int32(a.Int))
	case KindULong:
		e.WriteULong(uint32(a.Int))
	case KindLongLong:
		e.WriteLongLong(a.Int)
	case KindULongLong:
		e.WriteULongLong(uint64(a.Int))
	case KindFloat:
		e.WriteFloat(float32(a.Float))
	case KindDouble:
		e.WriteDouble(a.Float)
	case KindString:
		e.WriteString(a.Str)
	case KindOctets:
		e.WriteOctets(a.Bytes)
	case KindSeq, KindAny:
		e.WriteULong(uint32(len(a.Seq)))
		for _, v := range a.Seq {
			v.Marshal(e)
		}
	case KindStruct:
		e.WriteULong(uint32(len(a.Fields)))
		for _, f := range a.Fields {
			e.WriteString(f.Name)
			f.Value.Marshal(e)
		}
	}
}

// UnmarshalAny reads an Any from a CDR decoder.
func UnmarshalAny(d *cdr.Decoder) (Any, error) {
	k, err := d.ReadOctet()
	if err != nil {
		return Any{}, err
	}
	a := Any{Kind: Kind(k)}
	switch a.Kind {
	case KindNull, KindVoid:
	case KindBool:
		a.Bool, err = d.ReadBool()
	case KindOctet:
		var b byte
		b, err = d.ReadOctet()
		a.Int = int64(b)
	case KindShort:
		var v int16
		v, err = d.ReadShort()
		a.Int = int64(v)
	case KindUShort:
		var v uint16
		v, err = d.ReadUShort()
		a.Int = int64(v)
	case KindLong:
		var v int32
		v, err = d.ReadLong()
		a.Int = int64(v)
	case KindULong:
		var v uint32
		v, err = d.ReadULong()
		a.Int = int64(v)
	case KindLongLong:
		a.Int, err = d.ReadLongLong()
	case KindULongLong:
		var v uint64
		v, err = d.ReadULongLong()
		a.Int = int64(v)
	case KindFloat:
		var v float32
		v, err = d.ReadFloat()
		a.Float = float64(v)
	case KindDouble:
		a.Float, err = d.ReadDouble()
	case KindString:
		a.Str, err = d.ReadString()
	case KindOctets:
		var b []byte
		b, err = d.ReadOctets()
		if err == nil {
			a.Bytes = append([]byte(nil), b...)
		}
	case KindSeq, KindAny:
		var n uint32
		n, err = d.ReadULong()
		if err != nil {
			break
		}
		a.Seq = make([]Any, 0, n)
		for i := uint32(0); i < n; i++ {
			var v Any
			v, err = UnmarshalAny(d)
			if err != nil {
				break
			}
			a.Seq = append(a.Seq, v)
		}
	case KindStruct:
		var n uint32
		n, err = d.ReadULong()
		if err != nil {
			break
		}
		a.Fields = make([]Field, 0, n)
		for i := uint32(0); i < n; i++ {
			var name string
			name, err = d.ReadString()
			if err != nil {
				break
			}
			var v Any
			v, err = UnmarshalAny(d)
			if err != nil {
				break
			}
			a.Fields = append(a.Fields, Field{Name: name, Value: v})
		}
	default:
		return Any{}, fmt.Errorf("idl: unknown any kind %d", k)
	}
	if err != nil {
		return Any{}, fmt.Errorf("idl: unmarshal %s: %w", a.Kind, err)
	}
	return a, nil
}

// MarshalAnys encodes a slice of Anys with a leading count.
func MarshalAnys(e *cdr.Encoder, vs []Any) {
	e.WriteULong(uint32(len(vs)))
	for _, v := range vs {
		v.Marshal(e)
	}
}

// UnmarshalAnys decodes a slice of Anys written by MarshalAnys.
func UnmarshalAnys(d *cdr.Decoder) ([]Any, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	vs := make([]Any, 0, n)
	for i := uint32(0); i < n; i++ {
		v, err := UnmarshalAny(d)
		if err != nil {
			return nil, err
		}
		vs = append(vs, v)
	}
	return vs, nil
}

// SortFields orders a struct Any's fields by name, for canonical output.
func (a *Any) SortFields() {
	sort.Slice(a.Fields, func(i, j int) bool { return a.Fields[i].Name < a.Fields[j].Name })
}
