// Package mdcache is a versioned, TTL-bounded, singleflight-coalescing cache
// for federation metadata. WebFINDIT's co-databases exist so that discovery
// metadata (coalition topology, member descriptors, service links) is cheap
// to consult; this cache keeps the answers at the querying node so repeated
// identical metadata lookups stop costing IIOP round trips.
//
// Three freshness mechanisms compose:
//
//   - Positive entries live for a TTL; negative results (lookup errors) live
//     for a shorter NegTTL so a missing source does not hammer the federation
//     but recovers quickly once advertised.
//   - Entries are stamped with the owning co-database's monotonic schema
//     version (read *before* the fetch, so a concurrent mutation can only
//     make the stamp conservative). An expired entry revalidates against the
//     current version with one cheap version() call instead of refetching
//     the full payload; in-process co-databases can verify on every hit.
//   - When the authority is unreachable (peer down, circuit breaker open),
//     the last known value is served stale — the degraded answer the fault
//     layer flags in MemberStatus — rather than failing discovery outright.
//
// Concurrent misses for one key coalesce through a hand-rolled singleflight:
// N sessions resolving the same topic produce one probe fan-out, not N.
package mdcache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome classifies how Get satisfied a lookup; the query layer annotates
// spans and MemberStatus entries with it.
type Outcome uint8

// Get outcomes.
const (
	// Bypass means no cache was consulted (nil *Cache receiver).
	Bypass Outcome = iota
	// Miss means the value was fetched from the authority and cached.
	Miss
	// Hit means a fresh (or version-verified) cached value was served.
	Hit
	// NegHit means a cached negative result (error) was served.
	NegHit
	// Stale means the authority was unreachable and an expired or unverified
	// cached value was served as the degraded answer.
	Stale
	// Coalesced means the caller waited on another caller's in-flight fetch.
	Coalesced
)

var outcomeNames = [...]string{"bypass", "miss", "hit", "neghit", "stale", "coalesced"}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// Served reports whether the outcome delivered a usable cached value without
// a fetch (Hit, NegHit or Stale).
func (o Outcome) Served() bool { return o == Hit || o == NegHit || o == Stale }

// Fetcher produces the authoritative value for a key.
type Fetcher func(ctx context.Context) (any, error)

// Versioner reads the authority's current schema version (codb version()).
type Versioner func(ctx context.Context) (uint64, error)

// Request describes one cached lookup.
type Request struct {
	// Fetch produces the value on a miss. Required.
	Fetch Fetcher
	// Version, when set, stamps fetched entries and lets expired entries
	// revalidate with one cheap call instead of a refetch.
	Version Versioner
	// VerifyHit revalidates every hit against Version, not just expired
	// ones. Use for in-process authorities where the version read is an
	// atomic load — mutations then become visible immediately.
	VerifyHit bool
	// TTL overrides the cache-wide positive TTL for this entry (0 = default).
	TTL time.Duration
}

// Options configures a Cache.
type Options struct {
	// TTL bounds how long a positive entry is served without revalidation.
	// 0 selects 2s.
	TTL time.Duration
	// NegTTL bounds negative entries (errors). 0 selects 250ms.
	NegTTL time.Duration
	// MaxEntries bounds the cache size (LRU eviction). 0 selects 4096.
	MaxEntries int
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// Stats holds the cache's atomic counters (orb.Stats-style; surfaced at
// /debug/metrics through Snapshot).
type Stats struct {
	Hits          atomic.Int64 // fresh or version-verified entries served
	Misses        atomic.Int64 // fetches from the authority
	NegHits       atomic.Int64 // cached errors served
	Coalesced     atomic.Int64 // callers that waited on another's fetch
	StaleServed   atomic.Int64 // values served while the authority was unreachable
	Revalidations atomic.Int64 // expired entries refreshed by version match alone
	Invalidations atomic.Int64 // entries dropped by Invalidate*
	Evictions     atomic.Int64 // entries dropped by the LRU bound
	Merges        atomic.Int64 // versioned entries installed by MergeVersioned
	MergeRejects  atomic.Int64 // MergeVersioned writes refused (would regress)
}

// StatsSnapshot is a point-in-time JSON-friendly view of Stats.
type StatsSnapshot struct {
	Entries       int   `json:"entries"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	NegHits       int64 `json:"neg_hits"`
	Coalesced     int64 `json:"coalesced"`
	StaleServed   int64 `json:"stale_served"`
	Revalidations int64 `json:"revalidations"`
	Invalidations int64 `json:"invalidations"`
	Evictions     int64 `json:"evictions"`
	Merges        int64 `json:"merges"`
	MergeRejects  int64 `json:"merge_rejects"`
}

type entry struct {
	key     string
	val     any
	err     error // non-nil = negative entry
	ver     uint64
	hasVer  bool
	expires time.Time
	elem    *list.Element
}

// flight is one in-progress fetch other callers can wait on.
type flight struct {
	done    chan struct{}
	val     any
	err     error
	outcome Outcome // leader's outcome (Miss or Stale); waiters report Coalesced
}

// Cache is a bounded, versioned metadata cache. The zero value is not ready;
// use New. A nil *Cache is valid and bypasses caching entirely, so callers
// can thread an optional cache without nil checks at every site.
type Cache struct {
	opts  Options
	Stats Stats

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used
	flights map[string]*flight
}

// New creates a cache; zero Options fields select the defaults.
func New(opts Options) *Cache {
	if opts.TTL <= 0 {
		opts.TTL = 2 * time.Second
	}
	if opts.NegTTL <= 0 {
		opts.NegTTL = 250 * time.Millisecond
	}
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 4096
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Cache{
		opts:    opts,
		entries: make(map[string]*entry),
		lru:     list.New(),
		flights: make(map[string]*flight),
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Snapshot returns the counters plus the current entry count.
func (c *Cache) Snapshot() StatsSnapshot {
	if c == nil {
		return StatsSnapshot{}
	}
	return StatsSnapshot{
		Entries:       c.Len(),
		Hits:          c.Stats.Hits.Load(),
		Misses:        c.Stats.Misses.Load(),
		NegHits:       c.Stats.NegHits.Load(),
		Coalesced:     c.Stats.Coalesced.Load(),
		StaleServed:   c.Stats.StaleServed.Load(),
		Revalidations: c.Stats.Revalidations.Load(),
		Invalidations: c.Stats.Invalidations.Load(),
		Evictions:     c.Stats.Evictions.Load(),
		Merges:        c.Stats.Merges.Load(),
		MergeRejects:  c.Stats.MergeRejects.Load(),
	}
}

// Peek returns the cached positive value for key when it is fresh, touching
// the LRU and counting a hit. It never verifies, coalesces or fetches: it is
// the zero-cost fast path for hot loops that peel off plain TTL hits before
// paying for the concurrency scaffolding a full Get (with its fetch
// fallback) sits behind. Negative, stale and absent entries report !ok.
func (c *Cache) Peek(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	now := c.opts.Clock()
	c.mu.Lock()
	e := c.entries[key]
	if e == nil || e.err != nil || !now.Before(e.expires) {
		c.mu.Unlock()
		return nil, false
	}
	c.touch(e)
	val := e.val
	c.mu.Unlock()
	c.Stats.Hits.Add(1)
	return val, true
}

// Get returns the cached value for key, fetching (or revalidating) it as
// needed. The error is the fetched value's error: a negative hit replays the
// cached error, and a stale serve returns the old value with a nil error.
func (c *Cache) Get(ctx context.Context, key string, req Request) (any, Outcome, error) {
	if c == nil {
		v, err := req.Fetch(ctx)
		return v, Bypass, err
	}
	now := c.opts.Clock()

	c.mu.Lock()
	e := c.entries[key]
	if e != nil {
		fresh := now.Before(e.expires)
		if e.err != nil { // negative entry
			if fresh {
				c.touch(e)
				c.mu.Unlock()
				c.Stats.NegHits.Add(1)
				return nil, NegHit, e.err
			}
			// Expired negative entries never revalidate; refetch below.
		} else if fresh && (!req.VerifyHit || req.Version == nil) {
			c.touch(e)
			val := e.val
			c.mu.Unlock()
			c.Stats.Hits.Add(1)
			return val, Hit, nil
		} else if req.Version != nil && e.hasVer {
			// Fresh-but-verify, or expired-with-version: one cheap version
			// call decides between serving and refetching.
			val, ver := e.val, e.ver
			c.mu.Unlock()
			cur, verr := req.Version(ctx)
			if verr == nil && cur == ver {
				c.extend(key, now, req.TTL, !fresh)
				c.Stats.Hits.Add(1)
				return val, Hit, nil
			}
			if verr != nil {
				// Authority unreachable: serve the last known value as the
				// degraded answer (stale-while-unavailable).
				c.Stats.StaleServed.Add(1)
				return val, Stale, nil
			}
			// Version moved: fall through to fetch.
			c.mu.Lock()
		} else {
			// Expired with no version support: refetch.
		}
	}

	// Fetch path, with singleflight coalescing.
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, Coalesced, ctx.Err()
		}
		c.Stats.Coalesced.Add(1)
		return f.val, Coalesced, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	c.fetch(ctx, key, req, f)

	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	return f.val, f.outcome, f.err
}

// fetch runs the authoritative fetch for a flight and installs the result.
func (c *Cache) fetch(ctx context.Context, key string, req Request, f *flight) {
	var ver uint64
	var hasVer bool
	if req.Version != nil {
		// Read the version before fetching: if a mutation lands mid-fetch the
		// entry keeps the older stamp and the next revalidation refetches.
		if v, err := req.Version(ctx); err == nil {
			ver, hasVer = v, true
		}
	}
	val, err := req.Fetch(ctx)
	now := c.opts.Clock()

	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		if old := c.entries[key]; old != nil && old.err == nil {
			// Keep and serve the last good value; the authority is unhealthy.
			c.touch(old)
			f.val, f.err, f.outcome = old.val, nil, Stale
			c.Stats.StaleServed.Add(1)
			return
		}
		c.install(&entry{key: key, err: err, expires: now.Add(c.opts.NegTTL)})
		f.err, f.outcome = err, Miss
		c.Stats.Misses.Add(1)
		return
	}
	ttl := req.TTL
	if ttl <= 0 {
		ttl = c.opts.TTL
	}
	c.install(&entry{key: key, val: val, ver: ver, hasVer: hasVer, expires: now.Add(ttl)})
	f.val, f.outcome = val, Miss
	c.Stats.Misses.Add(1)
}

// extend refreshes an entry's expiry after a successful version match.
// Caller does not hold c.mu.
func (c *Cache) extend(key string, now time.Time, ttlOverride time.Duration, revalidated bool) {
	ttl := ttlOverride
	if ttl <= 0 {
		ttl = c.opts.TTL
	}
	c.mu.Lock()
	if e := c.entries[key]; e != nil && e.err == nil {
		e.expires = now.Add(ttl)
		c.touch(e)
	}
	c.mu.Unlock()
	if revalidated {
		c.Stats.Revalidations.Add(1)
	}
}

// install adds or replaces an entry and enforces the LRU bound. Caller holds
// c.mu.
func (c *Cache) install(e *entry) {
	if old := c.entries[e.key]; old != nil {
		c.lru.Remove(old.elem)
	}
	e.elem = c.lru.PushFront(e)
	c.entries[e.key] = e
	for len(c.entries) > c.opts.MaxEntries {
		back := c.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, victim.key)
		c.Stats.Evictions.Add(1)
	}
}

// touch marks an entry most recently used. Caller holds c.mu.
func (c *Cache) touch(e *entry) { c.lru.MoveToFront(e.elem) }

// MergeVersioned installs a value under key only when ver is not older than
// what the cache already holds for that key — the apply path gossip deltas
// take, where the merge-by-version rule must hold at every layer: a replayed,
// reordered or corrupted delta can never move a cached version backwards.
// Unversioned entries under the same key are always displaced (a versioned
// write outranks a TTL-only one). Reports whether the value was installed.
func (c *Cache) MergeVersioned(key string, val any, ver uint64) bool {
	if c == nil {
		return false
	}
	now := c.opts.Clock()
	c.mu.Lock()
	if old := c.entries[key]; old != nil && old.err == nil && old.hasVer && ver < old.ver {
		c.mu.Unlock()
		c.Stats.MergeRejects.Add(1)
		return false
	}
	c.install(&entry{key: key, val: val, ver: ver, hasVer: true, expires: now.Add(c.opts.TTL)})
	c.mu.Unlock()
	c.Stats.Merges.Add(1)
	return true
}

// PeekVersioned returns the cached value and version stamp for key regardless
// of expiry — the read side of MergeVersioned, used by invariant checkers
// that compare cached versions against the authority without perturbing the
// cache. Negative and unversioned entries report !ok.
func (c *Cache) PeekVersioned(key string) (any, uint64, bool) {
	if c == nil {
		return nil, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil || e.err != nil || !e.hasVer {
		return nil, 0, false
	}
	return e.val, e.ver, true
}

// Invalidate drops one entry.
func (c *Cache) Invalidate(key string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		c.lru.Remove(e.elem)
		delete(c.entries, key)
		c.Stats.Invalidations.Add(1)
	}
	c.mu.Unlock()
}

// InvalidatePrefix drops every entry whose key starts with prefix.
func (c *Cache) InvalidatePrefix(prefix string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	for key, e := range c.entries {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			c.lru.Remove(e.elem)
			delete(c.entries, key)
			c.Stats.Invalidations.Add(1)
		}
	}
	c.mu.Unlock()
}

// InvalidateAll empties the cache (eager invalidation on Join/Leave and
// information-space maintenance).
func (c *Cache) InvalidateAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	n := len(c.entries)
	c.entries = make(map[string]*entry)
	c.lru.Init()
	c.Stats.Invalidations.Add(int64(n))
	c.mu.Unlock()
}
