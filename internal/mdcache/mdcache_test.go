package mdcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// manualClock is a settable clock for TTL tests.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (m *manualClock) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

func (m *manualClock) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	m.mu.Unlock()
}

func fixed(v any) Fetcher {
	return func(context.Context) (any, error) { return v, nil }
}

func TestGetMissThenHit(t *testing.T) {
	clk := newManualClock()
	c := New(Options{Clock: clk.Now})
	ctx := context.Background()

	calls := 0
	req := Request{Fetch: func(context.Context) (any, error) {
		calls++
		return "v1", nil
	}}

	v, out, err := c.Get(ctx, "k", req)
	if err != nil || v != "v1" || out != Miss {
		t.Fatalf("first get = %v, %v, %v; want v1, Miss, nil", v, out, err)
	}
	v, out, err = c.Get(ctx, "k", req)
	if err != nil || v != "v1" || out != Hit {
		t.Fatalf("second get = %v, %v, %v; want v1, Hit, nil", v, out, err)
	}
	if calls != 1 {
		t.Fatalf("fetcher ran %d times, want 1", calls)
	}
	if got := c.Stats.Hits.Load(); got != 1 {
		t.Fatalf("Hits = %d, want 1", got)
	}
	if got := c.Stats.Misses.Load(); got != 1 {
		t.Fatalf("Misses = %d, want 1", got)
	}
}

func TestTTLExpiry(t *testing.T) {
	clk := newManualClock()
	c := New(Options{TTL: time.Second, Clock: clk.Now})
	ctx := context.Background()

	calls := 0
	req := Request{Fetch: func(context.Context) (any, error) {
		calls++
		return calls, nil
	}}

	if v, _, _ := c.Get(ctx, "k", req); v != 1 {
		t.Fatalf("want fetched 1, got %v", v)
	}
	clk.Advance(999 * time.Millisecond)
	if v, out, _ := c.Get(ctx, "k", req); v != 1 || out != Hit {
		t.Fatalf("within TTL: got %v, %v; want 1, Hit", v, out)
	}
	clk.Advance(2 * time.Millisecond)
	if v, out, _ := c.Get(ctx, "k", req); v != 2 || out != Miss {
		t.Fatalf("past TTL: got %v, %v; want refetched 2, Miss", v, out)
	}
}

func TestPerRequestTTLOverride(t *testing.T) {
	clk := newManualClock()
	c := New(Options{TTL: time.Second, Clock: clk.Now})
	ctx := context.Background()

	calls := 0
	req := Request{
		TTL: 10 * time.Second,
		Fetch: func(context.Context) (any, error) {
			calls++
			return calls, nil
		},
	}
	c.Get(ctx, "k", req)
	clk.Advance(5 * time.Second) // past cache-wide TTL, within override
	if v, out, _ := c.Get(ctx, "k", req); v != 1 || out != Hit {
		t.Fatalf("got %v, %v; want 1, Hit under per-request TTL", v, out)
	}
}

func TestNegativeCaching(t *testing.T) {
	clk := newManualClock()
	c := New(Options{NegTTL: 100 * time.Millisecond, Clock: clk.Now})
	ctx := context.Background()

	boom := errors.New("no such source")
	calls := 0
	req := Request{Fetch: func(context.Context) (any, error) {
		calls++
		return nil, boom
	}}

	if _, out, err := c.Get(ctx, "k", req); out != Miss || !errors.Is(err, boom) {
		t.Fatalf("first get: out=%v err=%v", out, err)
	}
	if _, out, err := c.Get(ctx, "k", req); out != NegHit || !errors.Is(err, boom) {
		t.Fatalf("within NegTTL: out=%v err=%v; want NegHit with cached error", out, err)
	}
	if calls != 1 {
		t.Fatalf("fetcher ran %d times within NegTTL, want 1", calls)
	}
	clk.Advance(101 * time.Millisecond)
	if _, out, _ := c.Get(ctx, "k", req); out != Miss {
		t.Fatalf("past NegTTL: out=%v; want refetch (Miss)", out)
	}
	if calls != 2 {
		t.Fatalf("fetcher ran %d times after NegTTL, want 2", calls)
	}
	if got := c.Stats.NegHits.Load(); got != 1 {
		t.Fatalf("NegHits = %d, want 1", got)
	}
}

func TestNegativeDoesNotReplacePositiveStale(t *testing.T) {
	// A fetch failure when a positive value exists serves the old value
	// stale instead of installing a negative entry.
	clk := newManualClock()
	c := New(Options{TTL: time.Second, Clock: clk.Now})
	ctx := context.Background()

	c.Get(ctx, "k", fixedReq("good"))
	clk.Advance(2 * time.Second) // expire it

	v, out, err := c.Get(ctx, "k", Request{Fetch: func(context.Context) (any, error) {
		return nil, errors.New("peer down")
	}})
	if err != nil || v != "good" || out != Stale {
		t.Fatalf("got %v, %v, %v; want good, Stale, nil", v, out, err)
	}
	if got := c.Stats.StaleServed.Load(); got != 1 {
		t.Fatalf("StaleServed = %d, want 1", got)
	}
}

func fixedReq(v any) Request { return Request{Fetch: fixed(v)} }

func TestSingleflightDedup(t *testing.T) {
	c := New(Options{})
	ctx := context.Background()

	var fetches atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	req := Request{Fetch: func(context.Context) (any, error) {
		if fetches.Add(1) == 1 {
			close(started)
		}
		<-release
		return "v", nil
	}}

	const n = 16
	var wg sync.WaitGroup
	outs := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, out, err := c.Get(ctx, "k", req)
			if err != nil {
				t.Errorf("get %d: %v", i, err)
			}
			outs[i] = out
		}(i)
	}
	<-started
	// Give the remaining goroutines time to pile onto the flight; they block
	// on f.done, which only closes after release.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := fetches.Load(); got != 1 {
		t.Fatalf("fetcher ran %d times under %d concurrent gets, want 1", got, n)
	}
	misses, coalesced := 0, 0
	for _, o := range outs {
		switch o {
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		default:
			t.Fatalf("unexpected outcome %v", o)
		}
	}
	if misses != 1 || coalesced != n-1 {
		t.Fatalf("misses=%d coalesced=%d; want 1 and %d", misses, coalesced, n-1)
	}
}

func TestSingleflightWaiterContextCancel(t *testing.T) {
	c := New(Options{})

	release := make(chan struct{})
	started := make(chan struct{})
	req := Request{Fetch: func(context.Context) (any, error) {
		close(started)
		<-release
		return "v", nil
	}}

	go c.Get(context.Background(), "k", req)
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Get(ctx, "k", req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}
	close(release)
}

func TestVersionRevalidation(t *testing.T) {
	clk := newManualClock()
	c := New(Options{TTL: time.Second, Clock: clk.Now})
	ctx := context.Background()

	var ver atomic.Uint64
	ver.Store(7)
	fetches := 0
	req := Request{
		Fetch: func(context.Context) (any, error) {
			fetches++
			return fmt.Sprintf("v%d", fetches), nil
		},
		Version: func(context.Context) (uint64, error) { return ver.Load(), nil },
	}

	if v, _, _ := c.Get(ctx, "k", req); v != "v1" {
		t.Fatalf("want v1, got %v", v)
	}
	// Expired + unchanged version: revalidate, serve cached, no refetch.
	clk.Advance(2 * time.Second)
	if v, out, _ := c.Get(ctx, "k", req); v != "v1" || out != Hit {
		t.Fatalf("revalidated get = %v, %v; want v1, Hit", v, out)
	}
	if fetches != 1 {
		t.Fatalf("fetches = %d after revalidation, want 1", fetches)
	}
	if got := c.Stats.Revalidations.Load(); got != 1 {
		t.Fatalf("Revalidations = %d, want 1", got)
	}
	// Revalidation extended the TTL: still a plain hit.
	clk.Advance(500 * time.Millisecond)
	if _, out, _ := c.Get(ctx, "k", req); out != Hit {
		t.Fatalf("post-revalidation get outcome = %v, want Hit", out)
	}

	// Version bump + expiry: refetch.
	ver.Store(8)
	clk.Advance(2 * time.Second)
	if v, out, _ := c.Get(ctx, "k", req); v != "v2" || out != Miss {
		t.Fatalf("after version bump = %v, %v; want v2, Miss", v, out)
	}
}

func TestVerifyHitSeesVersionBumpImmediately(t *testing.T) {
	clk := newManualClock()
	c := New(Options{TTL: time.Hour, Clock: clk.Now})
	ctx := context.Background()

	var ver atomic.Uint64
	fetches := 0
	req := Request{
		VerifyHit: true,
		Fetch: func(context.Context) (any, error) {
			fetches++
			return fmt.Sprintf("v%d", fetches), nil
		},
		Version: func(context.Context) (uint64, error) { return ver.Load(), nil },
	}

	c.Get(ctx, "k", req)
	if v, out, _ := c.Get(ctx, "k", req); v != "v1" || out != Hit {
		t.Fatalf("verified hit = %v, %v; want v1, Hit", v, out)
	}
	ver.Add(1) // mutation, well within TTL
	if v, out, _ := c.Get(ctx, "k", req); v != "v2" || out != Miss {
		t.Fatalf("after bump = %v, %v; want refetched v2, Miss", v, out)
	}
	if fetches != 2 {
		t.Fatalf("fetches = %d, want 2", fetches)
	}
}

func TestStaleWhenVersionerUnavailable(t *testing.T) {
	clk := newManualClock()
	c := New(Options{TTL: time.Second, Clock: clk.Now})
	ctx := context.Background()

	req := Request{
		Fetch:   fixed("good"),
		Version: func(context.Context) (uint64, error) { return 3, nil },
	}
	c.Get(ctx, "k", req)
	clk.Advance(2 * time.Second)

	down := Request{
		Fetch:   func(context.Context) (any, error) { return nil, errors.New("unreachable") },
		Version: func(context.Context) (uint64, error) { return 0, errors.New("unreachable") },
	}
	v, out, err := c.Get(ctx, "k", down)
	if err != nil || v != "good" || out != Stale {
		t.Fatalf("got %v, %v, %v; want good, Stale, nil", v, out, err)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Options{})
	ctx := context.Background()

	calls := 0
	req := Request{Fetch: func(context.Context) (any, error) {
		calls++
		return calls, nil
	}}
	c.Get(ctx, "a", req)
	c.Get(ctx, "b", req)

	c.Invalidate("a")
	if v, out, _ := c.Get(ctx, "a", req); v != 3 || out != Miss {
		t.Fatalf("after Invalidate: %v, %v; want refetched 3, Miss", v, out)
	}
	if _, out, _ := c.Get(ctx, "b", req); out != Hit {
		t.Fatalf("unrelated key evicted by Invalidate")
	}

	c.Get(ctx, "p|x", req)
	c.Get(ctx, "p|y", req)
	c.Get(ctx, "q|z", req)
	c.InvalidatePrefix("p|")
	if _, out, _ := c.Get(ctx, "p|x", req); out != Miss {
		t.Fatalf("p|x survived InvalidatePrefix")
	}
	if _, out, _ := c.Get(ctx, "q|z", req); out != Hit {
		t.Fatalf("q|z dropped by InvalidatePrefix(p|)")
	}

	c.InvalidateAll()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after InvalidateAll, want 0", c.Len())
	}
	if _, out, _ := c.Get(ctx, "b", req); out != Miss {
		t.Fatalf("b survived InvalidateAll")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Options{MaxEntries: 3})
	ctx := context.Background()

	for _, k := range []string{"a", "b", "c"} {
		c.Get(ctx, k, fixedReq(k))
	}
	c.Get(ctx, "a", fixedReq("a")) // a is now most recent; b is LRU
	c.Get(ctx, "d", fixedReq("d")) // evicts b

	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if _, out, _ := c.Get(ctx, "b", fixedReq("b2")); out != Miss {
		t.Fatalf("b should have been evicted (LRU), got %v", out)
	}
	if got := c.Stats.Evictions.Load(); got < 1 {
		t.Fatalf("Evictions = %d, want >= 1", got)
	}
}

func TestNilCacheBypasses(t *testing.T) {
	var c *Cache
	v, out, err := c.Get(context.Background(), "k", fixedReq("direct"))
	if err != nil || v != "direct" || out != Bypass {
		t.Fatalf("nil cache get = %v, %v, %v; want direct, Bypass, nil", v, out, err)
	}
	c.Invalidate("k")
	c.InvalidateAll()
	c.InvalidatePrefix("k")
	if c.Len() != 0 || c.Snapshot() != (StatsSnapshot{}) {
		t.Fatalf("nil cache should report empty stats")
	}
}

func TestSnapshotAndOutcomeString(t *testing.T) {
	c := New(Options{})
	ctx := context.Background()
	c.Get(ctx, "k", fixedReq(1))
	c.Get(ctx, "k", fixedReq(1))
	s := c.Snapshot()
	if s.Entries != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	for o, want := range map[Outcome]string{
		Bypass: "bypass", Miss: "miss", Hit: "hit",
		NegHit: "neghit", Stale: "stale", Coalesced: "coalesced",
	} {
		if o.String() != want {
			t.Fatalf("Outcome(%d).String() = %q, want %q", o, o.String(), want)
		}
	}
	if !Hit.Served() || !Stale.Served() || !NegHit.Served() || Miss.Served() || Coalesced.Served() {
		t.Fatalf("Served() classification wrong")
	}
}

func TestPeek(t *testing.T) {
	clk := newManualClock()
	c := New(Options{TTL: time.Second, NegTTL: 100 * time.Millisecond, Clock: clk.Now})
	ctx := context.Background()

	if _, ok := c.Peek("absent"); ok {
		t.Fatal("peek hit on an absent key")
	}
	if _, _, err := c.Get(ctx, "k", Request{Fetch: fixed("v")}); err != nil {
		t.Fatal(err)
	}
	hitsBefore := c.Stats.Hits.Load()
	v, ok := c.Peek("k")
	if !ok || v != "v" {
		t.Fatalf("peek = %v, %v; want v, true", v, ok)
	}
	if c.Stats.Hits.Load() != hitsBefore+1 {
		t.Error("peek hit not counted")
	}

	// Negative entries are not peekable.
	boom := errors.New("boom")
	if _, _, err := c.Get(ctx, "neg", Request{Fetch: func(context.Context) (any, error) {
		return nil, boom
	}}); !errors.Is(err, boom) {
		t.Fatalf("negative get err = %v", err)
	}
	if _, ok := c.Peek("neg"); ok {
		t.Error("peek hit on a negative entry")
	}

	// Expired entries are not peekable, and Peek itself never refreshes.
	clk.Advance(2 * time.Second)
	if _, ok := c.Peek("k"); ok {
		t.Error("peek hit on an expired entry")
	}

	// A nil cache peeks as a miss.
	var nilCache *Cache
	if _, ok := nilCache.Peek("k"); ok {
		t.Error("nil cache peek reported a hit")
	}
}

func TestMergeVersioned(t *testing.T) {
	clk := newManualClock()
	c := New(Options{TTL: time.Second, Clock: clk.Now})

	if !c.MergeVersioned("gossip|N1", "v5", 5) {
		t.Fatal("initial merge refused")
	}
	if v, ver, ok := c.PeekVersioned("gossip|N1"); !ok || v != "v5" || ver != 5 {
		t.Fatalf("PeekVersioned = %v/%d/%v, want v5/5/true", v, ver, ok)
	}

	// Older and equal-or-newer writes: only a regression is refused.
	if c.MergeVersioned("gossip|N1", "v3", 3) {
		t.Fatal("merge regressed the version")
	}
	if v, ver, _ := c.PeekVersioned("gossip|N1"); v != "v5" || ver != 5 {
		t.Fatalf("rejected merge still mutated the entry: %v/%d", v, ver)
	}
	if !c.MergeVersioned("gossip|N1", "v5b", 5) {
		t.Fatal("equal-version merge refused (must be idempotent-friendly)")
	}
	if !c.MergeVersioned("gossip|N1", "v7", 7) {
		t.Fatal("newer merge refused")
	}
	if c.Stats.Merges.Load() != 3 || c.Stats.MergeRejects.Load() != 1 {
		t.Fatalf("merges/rejects = %d/%d, want 3/1",
			c.Stats.Merges.Load(), c.Stats.MergeRejects.Load())
	}

	// Expiry never hides the version stamp from PeekVersioned.
	clk.Advance(time.Hour)
	if _, ver, ok := c.PeekVersioned("gossip|N1"); !ok || ver != 7 {
		t.Fatalf("expired PeekVersioned = %d/%v, want 7/true", ver, ok)
	}

	// A versioned merge displaces an unversioned TTL entry for the same key.
	ctx := context.Background()
	if _, _, err := c.Get(ctx, "plain", Request{Fetch: func(context.Context) (any, error) {
		return "ttl-only", nil
	}}); err != nil {
		t.Fatal(err)
	}
	if !c.MergeVersioned("plain", "versioned", 1) {
		t.Fatal("merge over unversioned entry refused")
	}

	// Nil cache: merge is a no-op miss.
	var nilCache *Cache
	if nilCache.MergeVersioned("k", "v", 1) {
		t.Fatal("nil cache accepted a merge")
	}
	if _, _, ok := nilCache.PeekVersioned("k"); ok {
		t.Fatal("nil cache peeked a value")
	}
}
