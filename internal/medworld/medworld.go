// Package medworld builds the paper's healthcare application testbed: the
// fourteen databases, five coalitions and nine service links of Figure 1,
// placed on the five DBMS engines and three ORB products of Figure 2. Each
// database gets its own co-database, for the paper's 28 databases in total.
//
// The paper gives the Royal Brisbane Hospital's relational schema (§2.2)
// verbatim; the other databases' contents are illustrative in the paper, so
// this package seeds them with small synthetic datasets that exercise the
// same code paths (see DESIGN.md, substitutions).
package medworld

import (
	"fmt"

	"repro/internal/codb"
	"repro/internal/core"
	"repro/internal/oodb"
	"repro/internal/orb"
)

// Database names, verbatim from the paper.
const (
	SGF       = "State Government Funding"
	RBH       = "Royal Brisbane Hospital"
	RBHUnion  = "RBH Workers Union"
	Centre    = "Centre Link"
	Medibank  = "Medibank"
	MBF       = "MBF"
	RMIT      = "RMIT Medical Research"
	QCF       = "Queensland Cancer Fund"
	ATO       = "Australian Taxation Office"
	Medicare  = "Medicare"
	QUT       = "QUT Research"
	Ambulance = "Ambulance"
	AMP       = "AMP"
	PCH       = "Prince Charles Hospital"
)

// Coalition names (Figure 1).
const (
	CoalitionResearch  = "Research"
	CoalitionMedical   = "Medical"
	CoalitionInsurance = "Medical Insurance"
	CoalitionUnion     = "Medical Workers Union"
	CoalitionSuper     = "Superannuation"
)

// World is the assembled healthcare federation.
type World struct {
	*core.Federation
}

// DatabaseNames lists the fourteen databases, in the paper's order.
func DatabaseNames() []string {
	return []string{SGF, RBH, RBHUnion, Centre, Medibank, MBF, RMIT, QCF,
		ATO, Medicare, QUT, Ambulance, AMP, PCH}
}

// placement maps each database to its engine and ORB product, following
// Figure 2's wiring: Oracle behind VisiBroker; mSQL, DB2 and Ontos behind
// OrbixWeb; ObjectStore behind Orbix.
type placementInfo struct {
	Engine  string
	Product orb.Product
}

var placement = map[string]placementInfo{
	RBH:       {core.EngineOracle, orb.VisiBroker},
	Medibank:  {core.EngineOracle, orb.VisiBroker},
	ATO:       {core.EngineOracle, orb.VisiBroker},
	SGF:       {core.EngineOracle, orb.VisiBroker},
	Centre:    {core.EngineMSQL, orb.OrbixWeb},
	Medicare:  {core.EngineMSQL, orb.OrbixWeb},
	QUT:       {core.EngineMSQL, orb.OrbixWeb},
	MBF:       {core.EngineDB2, orb.OrbixWeb},
	RBHUnion:  {core.EngineDB2, orb.OrbixWeb},
	AMP:       {core.EngineObjectStore, orb.Orbix},
	PCH:       {core.EngineObjectStore, orb.Orbix},
	QCF:       {core.EngineObjectStore, orb.Orbix},
	Ambulance: {core.EngineOntos, orb.OrbixWeb},
	RMIT:      {core.EngineOntos, orb.OrbixWeb},
}

// Placement reports a database's engine and ORB product.
func Placement(name string) (engine string, product orb.Product, ok bool) {
	p, ok := placement[name]
	return p.Engine, p.Product, ok
}

// RBHDocumentHTML is the documentation page served for the Royal Brisbane
// Hospital (Figure 5 shows the original).
const RBHDocumentHTML = `<html>
<head><title>Royal Brisbane Hospital</title></head>
<body>
<h1>Royal Brisbane Hospital</h1>
<p>The Royal Brisbane Hospital database holds patient, bed-occupancy,
clinical history and research-project records. It advertises the
information type "Research and Medical" in the coalitions Research and
Medical.</p>
<ul>
<li>Exported types: ResearchProjects, PatientHistory, MedicalStudents</li>
<li>Wrapper: WebTassiliOracle</li>
<li>Location: dba.icis.qut.edu.au</li>
</ul>
</body>
</html>`

// rbhSchema is the paper's §2.2 schema, seeded with synthetic rows. The
// "AIDS and drugs" project and the medical_students rows back the paper's
// §2.3 Funding() walkthrough and Figure 6.
const rbhSchema = `
CREATE TABLE patient (
    patient_id INT PRIMARY KEY, name VARCHAR(64) NOT NULL,
    date_of_birth DATE, gender VARCHAR(1), address VARCHAR(128));
CREATE TABLE beds (
    bed_id INT PRIMARY KEY, location VARCHAR(32), default_patient_type VARCHAR(16));
CREATE TABLE occupancy (
    bed_id INT, patient_id INT, date_from DATE, date_to DATE);
CREATE TABLE history (
    patient_id INT, date_recorded DATE, description VARCHAR(128),
    description_notes VARCHAR(256), doctor_id INT);
CREATE TABLE doctors (
    employee_id INT PRIMARY KEY, qualification VARCHAR(32), position VARCHAR(32));
CREATE TABLE research_projects (
    project_id INT PRIMARY KEY, title VARCHAR(128), keywords VARCHAR(128),
    supervising_doctor INT, begin_date DATE, completed_date DATE, funding FLOAT);
CREATE TABLE medical_students (
    student_id INT PRIMARY KEY, name VARCHAR(64), course VARCHAR(32), year INT);
CREATE TABLE research_project_attendants (
    project_id INT, student_id INT, task VARCHAR(64),
    date_started DATE, date_completed DATE, results VARCHAR(128));

INSERT INTO patient VALUES
    (1, 'A. Howe', '1961-04-02', 'F', '12 Wickham Tce'),
    (2, 'B. Tran', '1974-09-13', 'M', '3 Boundary St'),
    (3, 'C. Ng', '1980-01-30', 'F', '55 Vulture St'),
    (4, 'D. Park', '1955-07-21', 'M', '77 Ann St');
INSERT INTO beds VALUES
    (1, 'Ward 3A', 'surgical'), (2, 'Ward 3A', 'surgical'), (3, 'Ward 7C', 'oncology');
INSERT INTO occupancy VALUES
    (1, 1, '1998-05-01', '1998-05-09'), (3, 3, '1998-08-15', '1998-09-01');
INSERT INTO history VALUES
    (1, '1998-05-01', 'influenza', 'admitted overnight', 10),
    (2, '1998-07-02', 'fracture', 'cast applied', 10),
    (3, '1998-08-15', 'allergy', 'antihistamine course', 11);
INSERT INTO doctors VALUES
    (10, 'MBBS', 'Registrar'), (11, 'FRACP', 'Consultant'), (12, 'MBBS', 'Intern');
INSERT INTO research_projects VALUES
    (100, 'AIDS and drugs', 'aids, antiviral, trial', 11, '1997-02-01', NULL, 1250000),
    (101, 'Oncology outcomes', 'cancer, survival', 11, '1996-07-15', '1998-06-30', 480000),
    (102, 'Burn recovery', 'burns, skin graft', 10, '1998-01-10', NULL, 150000);
INSERT INTO medical_students VALUES
    (1, 'J. Chen', 'Medicine', 4),
    (2, 'P. Okoye', 'Medicine', 5),
    (3, 'S. Weiss', 'Surgery', 6),
    (4, 'R. Gupta', 'Medicine', 3);
INSERT INTO research_project_attendants VALUES
    (100, 1, 'data collection', '1997-03-01', NULL, NULL),
    (101, 2, 'literature review', '1996-08-01', '1997-01-15', 'published'),
    (100, 3, 'lab assays', '1997-06-01', NULL, NULL);
`

// rbhInterface is the Royal Brisbane Hospital's exported interface: the two
// advertised types of §2.2 plus MedicalStudents (exported per Figure 6).
func rbhInterface() []codb.ExportedType {
	return []codb.ExportedType{
		{
			Name:        "ResearchProjects",
			Description: "research projects conducted at the hospital",
			Attributes: []codb.TypedMember{
				{Type: "string", Name: "ResearchProjects.Title"},
				{Type: "string", Name: "ResearchProjects.Keywords"},
				{Type: "date", Name: "ResearchProjects.BeginDate"},
			},
			Functions: []codb.ExportedFunction{{
				Name:    "Funding",
				Returns: "real",
				Args: []codb.TypedMember{
					{Type: "string", Name: "ResearchProjects.Title"},
				},
				Table:        "research_projects",
				ResultColumn: "funding",
				ArgColumn:    "title",
			}},
		},
		{
			Name:        "PatientHistory",
			Description: "clinical history of admitted patients",
			Attributes: []codb.TypedMember{
				{Type: "string", Name: "Patient.Name"},
				{Type: "date", Name: "History.DateRecorded"},
			},
			Functions: []codb.ExportedFunction{{
				Name:    "Description",
				Returns: "string",
				Args: []codb.TypedMember{
					{Type: "string", Name: "Patient.Name"},
					{Type: "date", Name: "History.DateRecorded"},
				},
				Table:        "history",
				ResultColumn: "description",
				ArgColumn:    "patient_id",
			}},
		},
		{
			Name:        "MedicalStudents",
			Description: "medical students doing internships at the hospital",
			Attributes: []codb.TypedMember{
				{Type: "string", Name: "MedicalStudents.Name"},
				{Type: "string", Name: "MedicalStudents.Course"},
				{Type: "int", Name: "MedicalStudents.Year"},
			},
			Functions: []codb.ExportedFunction{{
				Name:    "Course",
				Returns: "string",
				Args: []codb.TypedMember{
					{Type: "string", Name: "MedicalStudents.Name"},
				},
				Table:        "medical_students",
				ResultColumn: "course",
				ArgColumn:    "name",
			}},
		},
	}
}

// relSpec describes a synthetic relational database.
type relSpec struct {
	infoType string
	docURL   string
	schema   string
	iface    []codb.ExportedType
}

var relSpecs = map[string]relSpec{
	RBH: {
		infoType: "Research and Medical",
		docURL:   "http://www.medicine.uq.edu.au/RBH",
		schema:   rbhSchema,
		iface:    rbhInterface(),
	},
	SGF: {
		infoType: "state health funding and grants",
		docURL:   "http://www.qld.gov.au/funding",
		schema: `
CREATE TABLE grants (grant_id INT PRIMARY KEY, recipient VARCHAR(64), purpose VARCHAR(64), amount FLOAT, year INT);
INSERT INTO grants VALUES
    (1, 'Royal Brisbane Hospital', 'oncology ward', 2400000, 1997),
    (2, 'Prince Charles Hospital', 'cardiac unit', 1800000, 1998),
    (3, 'Queensland Cancer Fund', 'screening program', 350000, 1998);`,
		iface: []codb.ExportedType{{
			Name: "Grants",
			Functions: []codb.ExportedFunction{{
				Name: "Amount", Returns: "real",
				Args:         []codb.TypedMember{{Type: "string", Name: "Grants.Recipient"}},
				Table:        "grants",
				ResultColumn: "amount",
				ArgColumn:    "recipient",
			}},
		}},
	},
	Medibank: {
		infoType: "private medical insurance cover",
		docURL:   "http://www.medibank.com.au",
		schema: `
CREATE TABLE policies (policy_id INT PRIMARY KEY, holder VARCHAR(64), cover VARCHAR(32), premium FLOAT);
CREATE TABLE claims (claim_id INT PRIMARY KEY, policy_id INT, amount FLOAT, approved BOOLEAN);
INSERT INTO policies VALUES
    (1, 'A. Howe', 'hospital+extras', 1450.0), (2, 'D. Park', 'hospital', 980.0);
INSERT INTO claims VALUES (1, 1, 420.0, TRUE), (2, 2, 95.5, FALSE);`,
		iface: []codb.ExportedType{{
			Name: "Policies",
			Functions: []codb.ExportedFunction{{
				Name: "Premium", Returns: "real",
				Args:         []codb.TypedMember{{Type: "string", Name: "Policies.Holder"}},
				Table:        "policies",
				ResultColumn: "premium",
				ArgColumn:    "holder",
			}},
		}},
	},
	ATO: {
		infoType: "taxation records and medicare levy",
		docURL:   "http://www.ato.gov.au",
		schema: `
CREATE TABLE taxpayers (tfn INT PRIMARY KEY, name VARCHAR(64), medicare_levy FLOAT, year INT);
INSERT INTO taxpayers VALUES
    (1001, 'A. Howe', 812.50, 1998), (1002, 'B. Tran', 430.00, 1998);`,
		iface: []codb.ExportedType{{
			Name: "Taxpayers",
			Functions: []codb.ExportedFunction{{
				Name: "MedicareLevy", Returns: "real",
				Args:         []codb.TypedMember{{Type: "string", Name: "Taxpayers.Name"}},
				Table:        "taxpayers",
				ResultColumn: "medicare_levy",
				ArgColumn:    "name",
			}},
		}},
	},
	Centre: {
		infoType: "welfare benefits and community support",
		docURL:   "http://www.centrelink.gov.au",
		schema: `
CREATE TABLE benefits (person_id INT PRIMARY KEY, name VARCHAR(64), benefit VARCHAR(32), fortnightly FLOAT);
INSERT INTO benefits VALUES
    (1, 'C. Ng', 'sickness allowance', 331.8), (2, 'D. Park', 'age pension', 466.5);`,
		iface: []codb.ExportedType{{
			Name: "Benefits",
			Functions: []codb.ExportedFunction{{
				Name: "Fortnightly", Returns: "real",
				Args:         []codb.TypedMember{{Type: "string", Name: "Benefits.Name"}},
				Table:        "benefits",
				ResultColumn: "fortnightly",
				ArgColumn:    "name",
			}},
		}},
	},
	Medicare: {
		infoType: "public health insurance claims",
		docURL:   "http://www.hic.gov.au/medicare",
		schema: `
CREATE TABLE rebates (rebate_id INT PRIMARY KEY, member VARCHAR(64), item VARCHAR(32), amount FLOAT);
INSERT INTO rebates VALUES
    (1, 'A. Howe', 'GP consult', 24.5), (2, 'C. Ng', 'specialist', 61.0),
    (3, 'B. Tran', 'radiology', 88.2);`,
		iface: []codb.ExportedType{{
			Name: "Rebates",
			Functions: []codb.ExportedFunction{{
				Name: "Amount", Returns: "real",
				Args:         []codb.TypedMember{{Type: "string", Name: "Rebates.Member"}},
				Table:        "rebates",
				ResultColumn: "amount",
				ArgColumn:    "member",
			}},
		}},
	},
	QUT: {
		infoType: "university medical research projects",
		docURL:   "http://www.qut.edu.au/research",
		schema: `
CREATE TABLE projects (project_id INT PRIMARY KEY, title VARCHAR(128), area VARCHAR(32), budget FLOAT);
INSERT INTO projects VALUES
    (1, 'Telemedicine in rural Queensland', 'health informatics', 210000),
    (2, 'Hospital information integration', 'databases', 95000);`,
		iface: []codb.ExportedType{{
			Name: "Projects",
			Functions: []codb.ExportedFunction{{
				Name: "Budget", Returns: "real",
				Args:         []codb.TypedMember{{Type: "string", Name: "Projects.Title"}},
				Table:        "projects",
				ResultColumn: "budget",
				ArgColumn:    "title",
			}},
		}},
	},
	MBF: {
		infoType: "medical benefits fund insurance",
		docURL:   "http://www.mbf.com.au",
		schema: `
CREATE TABLE members (member_id INT PRIMARY KEY, name VARCHAR(64), plan VARCHAR(32));
CREATE TABLE payouts (payout_id INT PRIMARY KEY, member_id INT, amount FLOAT, year INT);
INSERT INTO members VALUES (1, 'B. Tran', 'family'), (2, 'C. Ng', 'single');
INSERT INTO payouts VALUES (1, 1, 1020.0, 1998), (2, 2, 310.0, 1998);`,
		iface: []codb.ExportedType{{
			Name: "Members",
			Functions: []codb.ExportedFunction{{
				Name: "Plan", Returns: "string",
				Args:         []codb.TypedMember{{Type: "string", Name: "Members.Name"}},
				Table:        "members",
				ResultColumn: "plan",
				ArgColumn:    "name",
			}},
		}},
	},
	RBHUnion: {
		infoType: "medical workers union membership",
		docURL:   "http://www.rbh-union.org.au",
		schema: `
CREATE TABLE unionists (member_id INT PRIMARY KEY, name VARCHAR(64), role VARCHAR(32), since INT);
INSERT INTO unionists VALUES
    (1, 'N. Silva', 'nurse', 1991), (2, 'O. Brown', 'orderly', 1995);`,
		iface: []codb.ExportedType{{
			Name: "Unionists",
			Functions: []codb.ExportedFunction{{
				Name: "Role", Returns: "string",
				Args:         []codb.TypedMember{{Type: "string", Name: "Unionists.Name"}},
				Table:        "unionists",
				ResultColumn: "role",
				ArgColumn:    "name",
			}},
		}},
	},
}

// ooSpec describes a synthetic object-oriented database.
type ooSpec struct {
	infoType string
	docURL   string
	seed     func(*oodb.DB) error
	iface    []codb.ExportedType
}

func seedClassWith(db *oodb.DB, class string, attrs []oodb.Attribute, rows []map[string]any) error {
	if _, err := db.DefineClass(class, "", attrs...); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := db.NewObject(class, r); err != nil {
			return err
		}
	}
	return nil
}

var ooSpecs = map[string]ooSpec{
	AMP: {
		infoType: "superannuation and financial investment",
		docURL:   "http://www.amp.com.au",
		seed: func(db *oodb.DB) error {
			return seedClassWith(db, "SuperAccount",
				[]oodb.Attribute{
					{Name: "Holder", Type: oodb.AttrString},
					{Name: "Balance", Type: oodb.AttrFloat},
					{Name: "Fund", Type: oodb.AttrString},
				},
				[]map[string]any{
					{"Holder": "A. Howe", "Balance": 84000.0, "Fund": "balanced"},
					{"Holder": "D. Park", "Balance": 212000.0, "Fund": "conservative"},
				})
		},
		iface: []codb.ExportedType{{
			Name: "SuperAccount",
			Functions: []codb.ExportedFunction{{
				Name: "Balance", Returns: "real",
				Args:         []codb.TypedMember{{Type: "string", Name: "SuperAccount.Holder"}},
				Table:        "SuperAccount",
				ResultColumn: "Balance",
				ArgColumn:    "Holder",
			}},
		}},
	},
	PCH: {
		infoType: "cardiac hospital medical records",
		docURL:   "http://www.pch.health.qld.gov.au",
		seed: func(db *oodb.DB) error {
			return seedClassWith(db, "CardiacCase",
				[]oodb.Attribute{
					{Name: "Patient", Type: oodb.AttrString},
					{Name: "Procedure", Type: oodb.AttrString},
					{Name: "Outcome", Type: oodb.AttrString},
				},
				[]map[string]any{
					{"Patient": "E. Rossi", "Procedure": "bypass", "Outcome": "recovered"},
					{"Patient": "F. Khan", "Procedure": "stent", "Outcome": "recovered"},
				})
		},
		iface: []codb.ExportedType{{
			Name: "CardiacCase",
			Functions: []codb.ExportedFunction{{
				Name: "Outcome", Returns: "string",
				Args:         []codb.TypedMember{{Type: "string", Name: "CardiacCase.Patient"}},
				Table:        "CardiacCase",
				ResultColumn: "Outcome",
				ArgColumn:    "Patient",
			}},
		}},
	},
	QCF: {
		infoType: "cancer research funding and screening",
		docURL:   "http://www.qldcancer.org.au",
		seed: func(db *oodb.DB) error {
			return seedClassWith(db, "Program",
				[]oodb.Attribute{
					{Name: "Title", Type: oodb.AttrString},
					{Name: "Budget", Type: oodb.AttrFloat},
				},
				[]map[string]any{
					{"Title": "Melanoma screening", "Budget": 420000.0},
					{"Title": "Smoking cessation", "Budget": 150000.0},
				})
		},
		iface: []codb.ExportedType{{
			Name: "Program",
			Functions: []codb.ExportedFunction{{
				Name: "Budget", Returns: "real",
				Args:         []codb.TypedMember{{Type: "string", Name: "Program.Title"}},
				Table:        "Program",
				ResultColumn: "Budget",
				ArgColumn:    "Title",
			}},
		}},
	},
	Ambulance: {
		infoType: "ambulance callouts and response",
		docURL:   "http://www.ambulance.qld.gov.au",
		seed: func(db *oodb.DB) error {
			return seedClassWith(db, "Callout",
				[]oodb.Attribute{
					{Name: "Suburb", Type: oodb.AttrString},
					{Name: "Priority", Type: oodb.AttrInt},
					{Name: "Hospital", Type: oodb.AttrString},
				},
				[]map[string]any{
					{"Suburb": "Herston", "Priority": 1, "Hospital": RBH},
					{"Suburb": "Chermside", "Priority": 2, "Hospital": PCH},
				})
		},
		iface: []codb.ExportedType{{
			Name: "Callout",
			Functions: []codb.ExportedFunction{{
				Name: "Hospital", Returns: "string",
				Args:         []codb.TypedMember{{Type: "string", Name: "Callout.Suburb"}},
				Table:        "Callout",
				ResultColumn: "Hospital",
				ArgColumn:    "Suburb",
			}},
		}},
	},
	RMIT: {
		infoType: "medical research publications",
		docURL:   "http://www.rmit.edu.au/medical-research",
		seed: func(db *oodb.DB) error {
			return seedClassWith(db, "Publication",
				[]oodb.Attribute{
					{Name: "Title", Type: oodb.AttrString},
					{Name: "Journal", Type: oodb.AttrString},
					{Name: "Year", Type: oodb.AttrInt},
				},
				[]map[string]any{
					{"Title": "Antiviral trial outcomes", "Journal": "MJA", "Year": 1998},
					{"Title": "Imaging in oncology", "Journal": "Lancet", "Year": 1997},
				})
		},
		iface: []codb.ExportedType{{
			Name: "Publication",
			Functions: []codb.ExportedFunction{{
				Name: "Journal", Returns: "string",
				Args:         []codb.TypedMember{{Type: "string", Name: "Publication.Title"}},
				Table:        "Publication",
				ResultColumn: "Journal",
				ArgColumn:    "Title",
			}},
		}},
	},
}

// coalitionMembers gives the five coalitions of Figure 1.
var coalitionMembers = map[string][]string{
	CoalitionResearch:  {QUT, RMIT, QCF, RBH},
	CoalitionMedical:   {RBH, PCH},
	CoalitionInsurance: {Medibank, MBF},
	CoalitionUnion:     {RBHUnion},
	CoalitionSuper:     {AMP},
}

var coalitionDescs = map[string]string{
	CoalitionResearch:  "medical research conducted in Queensland institutions",
	CoalitionMedical:   "hospitals and medical care providers",
	CoalitionInsurance: "medical insurance funds and health cover",
	CoalitionUnion:     "medical workers union information",
	CoalitionSuper:     "superannuation and retirement investment",
}

// linkSpecs gives the nine service links of Figure 1.
var linkSpecs = []core.LinkSpec{
	{Name: "SGF_to_Medicare", FromKind: "database", From: SGF, ToKind: "database", To: Medicare,
		InfoType: "public health insurance claims", Description: "state funding of medicare rebates"},
	{Name: "ATO_to_Medicare", FromKind: "database", From: ATO, ToKind: "database", To: Medicare,
		InfoType: "public health insurance claims", Description: "medicare levy collection"},
	{Name: "SGF_to_Medical", FromKind: "database", From: SGF, ToKind: "coalition", To: CoalitionMedical,
		InfoType: "hospital funding", Description: "grants to hospitals"},
	{Name: "ATO_to_Medical", FromKind: "database", From: ATO, ToKind: "coalition", To: CoalitionMedical,
		InfoType: "taxation of medical providers", Description: "tax records of providers"},
	{Name: "Super_to_Medical", FromKind: "coalition", From: CoalitionSuper, ToKind: "coalition", To: CoalitionMedical,
		InfoType: "medical retirement claims", Description: "early release on medical grounds"},
	{Name: "CentreLink_to_Medical", FromKind: "database", From: Centre, ToKind: "coalition", To: CoalitionMedical,
		InfoType: "sickness benefits", Description: "benefit eligibility checks"},
	{Name: "WorkersUnion_to_Medical", FromKind: "coalition", From: CoalitionUnion, ToKind: "coalition", To: CoalitionMedical,
		InfoType: "medical workers employment", Description: "union agreements with hospitals"},
	{Name: "Ambulance_to_Medical", FromKind: "database", From: Ambulance, ToKind: "coalition", To: CoalitionMedical,
		InfoType: "emergency admissions", Description: "callout handover to hospitals"},
	{Name: "Medical_to_MedicalInsurance", FromKind: "coalition", From: CoalitionMedical, ToKind: "coalition", To: CoalitionInsurance,
		InfoType: "Medical Insurance", Description: "minimal description of information type Medical"},
}

// LinkNames lists the nine service links, in definition order.
func LinkNames() []string {
	out := make([]string, len(linkSpecs))
	for i, l := range linkSpecs {
		out[i] = l.Name
	}
	return out
}

// Build assembles the full healthcare world: three ORBs, fourteen databases
// with co-databases, five coalitions and nine service links. An optional base
// orb.Options is applied to every ORB (see core.NewFederation); tests use it
// to force every invocation over real IIOP.
func Build(base ...orb.Options) (*World, error) {
	fed, err := core.NewFederation(base...)
	if err != nil {
		return nil, err
	}
	w := &World{Federation: fed}
	for _, name := range DatabaseNames() {
		place := placement[name]
		cfg := core.NodeConfig{
			Name:   name,
			Engine: place.Engine,
		}
		if spec, ok := relSpecs[name]; ok {
			cfg.InformationType = spec.infoType
			cfg.Documentation = spec.docURL
			cfg.Schema = spec.schema
			cfg.Interface = spec.iface
		} else if spec, ok := ooSpecs[name]; ok {
			cfg.InformationType = spec.infoType
			cfg.Documentation = spec.docURL
			cfg.SeedObjects = spec.seed
			cfg.Interface = spec.iface
		} else {
			fed.Shutdown()
			return nil, fmt.Errorf("medworld: no spec for %s", name)
		}
		if name == RBH {
			cfg.DocumentHTML = RBHDocumentHTML
			cfg.Location = "dba.icis.qut.edu.au"
		}
		if _, err := fed.AddNode(place.Product, cfg); err != nil {
			fed.Shutdown()
			return nil, fmt.Errorf("medworld: node %s: %w", name, err)
		}
	}
	// Coalitions in a stable order so Research exists before links use it.
	for _, c := range []string{CoalitionResearch, CoalitionMedical,
		CoalitionInsurance, CoalitionUnion, CoalitionSuper} {
		if err := fed.DefineCoalition(c, "", coalitionDescs[c], coalitionMembers[c]...); err != nil {
			fed.Shutdown()
			return nil, fmt.Errorf("medworld: coalition %s: %w", c, err)
		}
	}
	for _, spec := range linkSpecs {
		if err := fed.AddLink(spec); err != nil {
			fed.Shutdown()
			return nil, fmt.Errorf("medworld: link %s: %w", spec.Name, err)
		}
	}
	return w, nil
}
