package medworld

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/orb"
)

// buildWorld constructs the healthcare world once per test binary; it is
// read-mostly and the mutating tests operate on disjoint state.
var (
	worldOnce sync.Once
	world     *World
	worldErr  error
)

func sharedWorld(t *testing.T) *World {
	t.Helper()
	worldOnce.Do(func() {
		world, worldErr = Build()
	})
	if worldErr != nil {
		t.Fatalf("Build: %v", worldErr)
	}
	return world
}

// TestFigure1Topology verifies the coalition/service-link topology of
// Figure 1: fourteen databases, five coalitions, nine service links.
func TestFigure1Topology(t *testing.T) {
	w := sharedWorld(t)
	if got := len(DatabaseNames()); got != 14 {
		t.Errorf("databases = %d, want 14", got)
	}
	if got := len(w.NodeNames()); got != 14 {
		t.Errorf("nodes = %d, want 14", got)
	}
	if got := len(w.Coalitions()); got != 5 {
		t.Errorf("coalitions = %d, want 5", got)
	}
	if got := len(w.Links()); got != 9 {
		t.Errorf("service links = %d, want 9", got)
	}
	// RBH is a member of exactly Research and Medical (§2.2).
	rbh, _ := w.Node(RBH)
	memberOf := rbh.CoDB.MemberOf()
	if len(memberOf) != 2 || memberOf[0] != CoalitionMedical || memberOf[1] != CoalitionResearch {
		t.Errorf("RBH member of %v", memberOf)
	}
	// RBH's co-database knows the Medical coalition's outgoing link and the
	// inbound links recorded against Medical members.
	names := make([]string, 0)
	for _, l := range rbh.CoDB.Links() {
		names = append(names, l.Name)
	}
	if !contains(names, "Medical_to_MedicalInsurance") {
		t.Errorf("RBH links = %v", names)
	}
	// A standalone database (Medicare) belongs to no coalition.
	medicare, _ := w.Node(Medicare)
	if got := medicare.CoDB.MemberOf(); len(got) != 0 {
		t.Errorf("Medicare member of %v", got)
	}
	// Knowledge partitioning: QUT (Research only) must not know the
	// Medical Insurance coalition.
	qut, _ := w.Node(QUT)
	if qut.CoDB.HasCoalition(CoalitionInsurance) {
		t.Error("QUT knows Medical Insurance; knowledge should be partitioned")
	}
	// Membership counts per Figure 1.
	wantMembers := map[string]int{
		CoalitionResearch: 4, CoalitionMedical: 2, CoalitionInsurance: 2,
		CoalitionUnion: 1, CoalitionSuper: 1,
	}
	for c, want := range wantMembers {
		if got := len(w.Members(c)); got != want {
			t.Errorf("coalition %s has %d members, want %d", c, got, want)
		}
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// TestFigure2Implementation verifies the implementation map of Figure 2:
// the five engines, the three ORB products, the engine-to-ORB wiring, and
// that every database's ISI and co-database are reachable across ORBs via
// IIOP.
func TestFigure2Implementation(t *testing.T) {
	w := sharedWorld(t)
	engines := map[string]int{}
	products := map[orb.Product]int{}
	for _, name := range DatabaseNames() {
		n, ok := w.Node(name)
		if !ok {
			t.Fatalf("node %s missing", name)
		}
		engines[n.Config.Engine]++
		products[n.Config.ORB.Product()]++
		// Figure 2's wiring constraints.
		switch n.Config.Engine {
		case core.EngineOracle:
			if n.Config.ORB.Product() != orb.VisiBroker {
				t.Errorf("%s: Oracle must be on VisiBroker, got %s", name, n.Config.ORB.Product())
			}
		case core.EngineMSQL, core.EngineDB2, core.EngineOntos:
			if n.Config.ORB.Product() != orb.OrbixWeb {
				t.Errorf("%s: %s must be on OrbixWeb, got %s", name, n.Config.Engine, n.Config.ORB.Product())
			}
		case core.EngineObjectStore:
			if n.Config.ORB.Product() != orb.Orbix {
				t.Errorf("%s: ObjectStore must be on Orbix, got %s", name, n.Config.ORB.Product())
			}
		}
	}
	if len(engines) != 5 {
		t.Errorf("engines = %v, want 5 kinds", engines)
	}
	if len(products) != 3 {
		t.Errorf("ORB products = %v, want 3", products)
	}

	// 28 databases total: every node has a database and a co-database.
	total := 0
	for _, name := range DatabaseNames() {
		n, _ := w.Node(name)
		if n.RelDB != nil || n.OODB != nil {
			total++
		}
		if n.CoDB != nil {
			total++
		}
	}
	if total != 28 {
		t.Errorf("databases + co-databases = %d, want 28", total)
	}

	// Cross-ORB reachability: a client on each ORB product can locate and
	// query every other product's servants over IIOP.
	client := orb.New(orb.Options{Product: orb.OrbixWeb, DisableColocation: true})
	defer client.Shutdown()
	for _, name := range []string{RBH, AMP, Centre} { // one per ORB product
		n, _ := w.Node(name)
		ref, err := client.ResolveString(n.Descriptor.ISIRef)
		if err != nil {
			t.Fatalf("%s ISI ref: %v", name, err)
		}
		found, err := ref.Locate()
		if err != nil || !found {
			t.Errorf("%s ISI not locatable over IIOP: %t, %v", name, found, err)
		}
		conn := gateway.NewRemoteConn(ref)
		meta := conn.Meta()
		if meta.Database != name {
			t.Errorf("%s remote meta = %+v", name, meta)
		}
	}
	if client.Stats.IIOPCalls.Load() == 0 {
		t.Error("no IIOP calls recorded; test did not cross the socket")
	}
}

// TestSection23Walkthrough replays the paper's §2.3 session from QUT
// Research: discovery, connection, browsing, documentation, access
// information, and the Funding() function translated to SQL.
func TestSection23Walkthrough(t *testing.T) {
	w := sharedWorld(t)
	qut, _ := w.Node(QUT)
	s := qut.NewSession()

	// "Find Coalitions With Information Medical Research;"
	resp, err := s.Execute(context.Background(), "Find Coalitions With Information Medical Research;")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Leads) == 0 || resp.Leads[0].Coalition != CoalitionResearch ||
		resp.Leads[0].Score < 1 || resp.Leads[0].Via != "local" {
		t.Fatalf("leads = %+v", resp.Leads)
	}

	// "Connect To Coalition Research;"
	if _, err := s.Execute(context.Background(), "Connect To Coalition Research;"); err != nil {
		t.Fatal(err)
	}
	if s.Coalition != CoalitionResearch {
		t.Fatalf("session coalition = %q", s.Coalition)
	}

	// "Display SubClasses of Class Research" — none in the base world.
	resp, err = s.Execute(context.Background(), "Display SubClasses of Class Research;")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Names) != 0 {
		t.Errorf("subclasses = %v", resp.Names)
	}

	// "Display Instances of Class Research" — the four Research members.
	resp, err = s.Execute(context.Background(), "Display Instances of Class Research;")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Sources) != 4 || !contains(resp.Names, RBH) {
		t.Fatalf("instances = %v", resp.Names)
	}

	// "Display Document of Instance Royal Brisbane Hospital Of Class Research;"
	resp, err = s.Execute(context.Background(), "Display Document of Instance Royal Brisbane Hospital Of Class Research;")
	if err != nil {
		t.Fatal(err)
	}
	if resp.DocURL != "http://www.medicine.uq.edu.au/RBH" {
		t.Errorf("doc url = %q", resp.DocURL)
	}
	if !strings.Contains(resp.DocHTML, "Royal Brisbane Hospital") {
		t.Errorf("doc html missing content")
	}

	// "Display Access Information of Instance Royal Brisbane Hospital;"
	resp, err = s.Execute(context.Background(), "Display Access Information of Instance Royal Brisbane Hospital;")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Descriptor.Location != "dba.icis.qut.edu.au" {
		t.Errorf("location = %q", resp.Descriptor.Location)
	}
	if !strings.Contains(resp.Text, "Type ResearchProjects") ||
		!strings.Contains(resp.Text, "function real Funding(") {
		t.Errorf("access info text:\n%s", resp.Text)
	}

	// The Funding() invocation; the paper gives the exact SQL translation.
	resp, err = s.Execute(context.Background(), `Funding(ResearchProjects.Title, (ResearchProjects.Title = "AIDS and drugs"));`)
	if err != nil {
		t.Fatal(err)
	}
	wantSQL := "SELECT a.funding FROM research_projects a WHERE a.Title = 'AIDS and drugs'"
	if !strings.EqualFold(resp.Translated, wantSQL) {
		t.Errorf("translated = %q, want %q", resp.Translated, wantSQL)
	}
	if len(resp.Result.Rows) != 1 || resp.Result.Rows[0][0].Float != 1250000 {
		t.Errorf("funding result = %+v", resp.Result.Rows)
	}
}

// TestInsuranceDiscovery replays the paper's second §2.3 walkthrough: a QUT
// researcher asks for Medical Insurance, which no local coalition or link
// offers; the system discovers it through the Royal Brisbane Hospital (a
// Research peer, member of Medical) whose coalition has a service link to
// the insurance coalition.
func TestInsuranceDiscovery(t *testing.T) {
	w := sharedWorld(t)
	qut, _ := w.Node(QUT)
	s := qut.NewSession()

	resp, err := s.Execute(context.Background(), `Find Coalitions With Information "Medical Insurance";`)
	if err != nil {
		t.Fatal(err)
	}
	var hit *struct {
		via string
		ref string
	}
	for _, l := range resp.Leads {
		if l.Coalition == CoalitionInsurance && l.Score >= 1 {
			hit = &struct {
				via string
				ref string
			}{l.Via, l.CoDBRef}
		}
	}
	if hit == nil {
		t.Fatalf("no full-score insurance lead in %+v", resp.Leads)
	}
	if !strings.HasPrefix(hit.via, "peer:"+RBH) || !strings.Contains(hit.via, "Medical_to_MedicalInsurance") {
		t.Errorf("lead via = %q", hit.via)
	}

	// The user investigates the coalition: connection hops through the peer
	// and the link to a member of the insurance coalition.
	if _, err := s.Execute(context.Background(), "Connect To Coalition Medical Insurance;"); err != nil {
		t.Fatal(err)
	}
	resp, err = s.Execute(context.Background(), "Display Instances of Class Medical Insurance;")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Sources) != 2 || !contains(resp.Names, Medibank) || !contains(resp.Names, MBF) {
		t.Errorf("insurance members = %v", resp.Names)
	}
}

// TestFigure6QueryResult reproduces Figure 6: the native SQL query
// "select * from medical_students" against the Royal Brisbane Hospital,
// travelling through the wrapper/ISI/ORB path.
func TestFigure6QueryResult(t *testing.T) {
	w := sharedWorld(t)
	qut, _ := w.Node(QUT)
	s := qut.NewSession()
	if _, err := s.Execute(context.Background(), "Connect To Coalition Research;"); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Execute(context.Background(), `Query Royal Brisbane Hospital Using Native "select * from medical_students";`)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(resp.Result.Rows))
	}
	if len(resp.Result.Columns) != 4 || !strings.EqualFold(resp.Result.Columns[1], "name") {
		t.Errorf("columns = %v", resp.Result.Columns)
	}
	if !strings.Contains(resp.Text, "J. Chen") {
		t.Errorf("formatted result:\n%s", resp.Text)
	}
}

// TestFigure3LayerTrace verifies that a data query traverses the paper's
// four layers: query (parse + wrapper), communication (ORB), meta-data
// (co-database) and data (DBMS).
func TestFigure3LayerTrace(t *testing.T) {
	w := sharedWorld(t)
	qut, _ := w.Node(QUT)
	s := qut.NewSession()
	if _, err := s.Execute(context.Background(), "Find Coalitions With Information Medical Research;"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(context.Background(), `Funding(ResearchProjects.Title, (ResearchProjects.Title = "AIDS and drugs")) On Royal Brisbane Hospital;`); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, ev := range s.Trace() {
		lines = append(lines, ev.String())
	}
	trace := strings.Join(lines, "\n")
	for _, layer := range []string{"query layer:", "communication layer:", "meta-data layer:", "data layer:"} {
		if !strings.Contains(trace, layer) {
			t.Errorf("trace missing %q:\n%s", layer, trace)
		}
	}
}

// TestOntosSourceQueries exercises the OO engine path end-to-end: the
// Ambulance database runs on the Ontos stand-in behind OrbixWeb, queried
// through the OQL wrapper.
func TestOntosSourceQueries(t *testing.T) {
	w := sharedWorld(t)
	// Ambulance is standalone; query it from its own node's session.
	amb, _ := w.Node(Ambulance)
	s := amb.NewSession()
	resp, err := s.Execute(context.Background(), `Hospital(Callout.Suburb, (Callout.Suburb = "Herston")) On Ambulance;`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Translated, "SELECT Hospital FROM Callout WHERE Suburb = 'Herston'") {
		t.Errorf("OQL translation = %q", resp.Translated)
	}
	if len(resp.Result.Rows) != 1 || resp.Result.Rows[0][0].Str != RBH {
		t.Errorf("result = %+v", resp.Result.Rows)
	}
}

// TestMSQLDialectSurfacesInFederation checks that vendor heterogeneity is
// visible through the full stack: Centre Link runs on mSQL, which rejects
// aggregates with a vendor-named error.
func TestMSQLDialectSurfacesInFederation(t *testing.T) {
	w := sharedWorld(t)
	cl, _ := w.Node(Centre)
	s := cl.NewSession()
	_, err := s.Execute(context.Background(), `Query Centre Link Using Native "SELECT COUNT(*) FROM benefits";`)
	if err == nil || !strings.Contains(err.Error(), "mSQL") {
		t.Errorf("mSQL aggregate error = %v", err)
	}
	resp, err := s.Execute(context.Background(), `Query Centre Link Using Native "SELECT name, fortnightly FROM benefits ORDER BY name";`)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rows) != 2 {
		t.Errorf("rows = %d", len(resp.Result.Rows))
	}
}

// TestSearchType finds sources by exported type from the connected context.
func TestSearchType(t *testing.T) {
	w := sharedWorld(t)
	qut, _ := w.Node(QUT)
	s := qut.NewSession()
	resp, err := s.Execute(context.Background(), "Search Type PatientHistory;")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Sources) != 1 || resp.Sources[0].Name != RBH {
		t.Errorf("search hits = %v", resp.Names)
	}
}

// TestDynamicEvolution exercises the paper's claim that coalitions change
// over time: a standalone database joins Medical, is discoverable, then
// leaves.
func TestDynamicEvolution(t *testing.T) {
	w := sharedWorld(t)
	if err := w.JoinCoalition(CoalitionMedical, Medicare); err != nil {
		t.Fatal(err)
	}
	rbh, _ := w.Node(RBH)
	members, err := rbh.CoDB.Members(CoalitionMedical)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 3 {
		t.Errorf("Medical members after join = %d", len(members))
	}
	// The newcomer now knows the coalition and its members.
	medicare, _ := w.Node(Medicare)
	if got := medicare.CoDB.MemberOf(); len(got) != 1 || got[0] != CoalitionMedical {
		t.Errorf("Medicare member of %v", got)
	}
	if err := w.JoinCoalition(CoalitionMedical, Medicare); err == nil {
		t.Error("double join accepted")
	}
	if err := w.LeaveCoalition(CoalitionMedical, Medicare); err != nil {
		t.Fatal(err)
	}
	members, _ = rbh.CoDB.Members(CoalitionMedical)
	if len(members) != 2 {
		t.Errorf("Medical members after leave = %d", len(members))
	}
	if err := w.LeaveCoalition(CoalitionMedical, Medicare); err == nil {
		t.Error("double leave accepted")
	}
}

// TestFuncQueryOnInsuranceMember runs a typed query against a DB2 source
// reached through the discovery path, checking the DB2 wrapper.
func TestFuncQueryOnInsuranceMember(t *testing.T) {
	w := sharedWorld(t)
	qut, _ := w.Node(QUT)
	s := qut.NewSession()
	if _, err := s.Execute(context.Background(), "Connect To Coalition Medical Insurance;"); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Execute(context.Background(), `Plan(Members.Name, (Members.Name = "B. Tran")) On MBF;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rows) != 1 || resp.Result.Rows[0][0].Str != "family" {
		t.Errorf("MBF plan = %+v", resp.Result.Rows)
	}
}

// TestUnknownTopicsAndSources covers resolution misses.
func TestUnknownTopicsAndSources(t *testing.T) {
	w := sharedWorld(t)
	qut, _ := w.Node(QUT)
	s := qut.NewSession()
	resp, err := s.Execute(context.Background(), "Find Coalitions With Information quantum chromodynamics;")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Leads) != 0 {
		t.Errorf("leads for nonsense topic = %+v", resp.Leads)
	}
	if _, err := s.Execute(context.Background(), "Connect To Coalition Nonexistent;"); err == nil {
		t.Error("connect to unknown coalition succeeded")
	}
	if _, err := s.Execute(context.Background(), `Query Nobody Using Native "SELECT 1";`); err == nil {
		t.Error("query against unknown source succeeded")
	}
	if _, err := s.Execute(context.Background(), `Nothing(ResearchProjects.Title) On Royal Brisbane Hospital;`); err == nil {
		t.Error("unknown exported function accepted")
	}
}

// TestCoalitionFanOutQuery decomposes a typed query over every Research
// member exporting a Budget-like function; only exporters participate.
func TestCoalitionFanOutQuery(t *testing.T) {
	w := sharedWorld(t)
	qut, _ := w.Node(QUT)
	s := qut.NewSession()
	resp, err := s.Execute(context.Background(), `Funding(ResearchProjects.Title, (ResearchProjects.Title LIKE "%")) On Coalition Research;`)
	if err != nil {
		t.Fatal(err)
	}
	// Only RBH exports Funding; merged result gets a source column.
	if len(resp.Result.Columns) == 0 || resp.Result.Columns[0] != "source" {
		t.Fatalf("columns = %v", resp.Result.Columns)
	}
	if len(resp.Result.Rows) != 3 {
		t.Errorf("rows = %d, want 3 (RBH research projects)", len(resp.Result.Rows))
	}
	for _, row := range resp.Result.Rows {
		if row[0].Str != RBH {
			t.Errorf("row source = %v", row[0])
		}
	}
	// A function nobody exports fails loudly.
	if _, err := s.Execute(context.Background(), `Nothing(X.Y) On Coalition Research;`); err == nil {
		t.Error("fan-out of unknown function accepted")
	}
}

// TestSearchTypeStructural requires attributes of the exported type.
func TestSearchTypeStructural(t *testing.T) {
	w := sharedWorld(t)
	qut, _ := w.Node(QUT)
	s := qut.NewSession()
	resp, err := s.Execute(context.Background(), `Search Type ResearchProjects With Structure (attribute string ResearchProjects.Title; attribute date BeginDate;);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Sources) != 1 || resp.Sources[0].Name != RBH {
		t.Errorf("structural hits = %v", resp.Names)
	}
	// A structure the type does not declare yields no hits.
	resp, err = s.Execute(context.Background(), `Search Type ResearchProjects With Structure (attribute string NoSuchAttr;);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Sources) != 0 {
		t.Errorf("false structural hits = %v", resp.Names)
	}
	// Type mismatch on a declared attribute also misses.
	resp, err = s.Execute(context.Background(), `Search Type ResearchProjects With Structure (attribute int Title;);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Sources) != 0 {
		t.Errorf("type-mismatched structural hits = %v", resp.Names)
	}
}
