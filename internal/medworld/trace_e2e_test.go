package medworld

import (
	"context"
	"strings"
	"testing"

	"repro/internal/orb"
	"repro/internal/trace"
)

// TestHealthcareQueryEndToEndTrace runs the Figure 6 native query with
// tracing enabled on every federation ORB and colocation disabled, and
// asserts that one trace covers the whole path: the WebTassili statement
// span, the client-side ORB invocation, the IIOP hop into the ISI servant
// on the remote ORB, and the gateway driver call — all under the caller's
// trace ID. QUT lives on OrbixWeb and the Royal Brisbane Hospital's Oracle
// ISI on VisiBroker, so the query genuinely crosses ORB products on a
// socket.
func TestHealthcareQueryEndToEndTrace(t *testing.T) {
	w, err := Build(orb.Options{DisableColocation: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Shutdown()

	tr := trace.New(trace.Options{Capacity: 4096})
	for _, p := range []orb.Product{orb.Orbix, orb.OrbixWeb, orb.VisiBroker} {
		w.ORB(p).EnableTracing(tr)
	}

	qut, _ := w.Node(QUT)
	s := qut.NewSession()
	if _, err := s.Execute(context.Background(), "Connect To Coalition Research;"); err != nil {
		t.Fatal(err)
	}

	ctx, root := tr.StartSpan(context.Background(), "session")
	resp, err := s.Execute(ctx, `Query Royal Brisbane Hospital Using Native "select * from medical_students";`)
	root.End(err)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(resp.Result.Rows))
	}

	traceID := root.Context().Trace.String()
	spans := tr.TraceSpans(traceID)
	byID := map[string]trace.SpanRecord{}
	for _, sp := range spans {
		if sp.Trace != traceID {
			t.Fatalf("span %s carries trace %s, want %s", sp.Name, sp.Trace, traceID)
		}
		byID[sp.Span] = sp
	}

	// The driver-level span: the ISI servant's gateway call on the remote
	// node. RBH runs Oracle and remote queries travel over the cursor
	// protocol, so the span is isi.cursor:Oracle.
	var driver *trace.SpanRecord
	for i := range spans {
		if spans[i].Name == "isi.cursor:Oracle" {
			driver = &spans[i]
		}
	}
	if driver == nil {
		names := make([]string, len(spans))
		for i, sp := range spans {
			names[i] = sp.Name
		}
		t.Fatalf("no isi.cursor:Oracle span in trace; spans: %v", names)
	}

	// Walk the driver span's ancestry back to the session root. It must pass
	// through the servant dispatch (server:query, transport=iiop — a real
	// socket hop), the client invocation (client:query) and the WebTassili
	// statement span.
	sawServer, sawClient, sawStmt := false, false, false
	cur := *driver
	for cur.Span != root.Context().Span.String() {
		parent, ok := byID[cur.Parent]
		if !ok {
			t.Fatalf("span %s has dangling parent %s", cur.Name, cur.Parent)
		}
		cur = parent
		switch {
		case cur.Name == "server:open_cursor":
			sawServer = true
			for _, a := range cur.Attrs {
				if a.Key == "transport" && a.Value != "iiop" {
					t.Fatalf("server:open_cursor transport = %s, want iiop", a.Value)
				}
			}
		case cur.Name == "client:open_cursor":
			sawClient = true
		case strings.HasPrefix(cur.Name, "query:"):
			sawStmt = true
		}
	}
	if !sawServer || !sawClient || !sawStmt {
		t.Fatalf("ancestry missing layers: server=%v client=%v stmt=%v (spans: %+v)",
			sawServer, sawClient, sawStmt, spans)
	}
}
