// Package naming implements a CORBA-style Naming Service: a hierarchical
// registry that binds names (slash-separated paths such as
// "WebFINDIT/CoDatabases/RBH") to stringified IORs. It is itself exposed as
// an ORB servant, so any node in the federation — regardless of which ORB
// product hosts it — can resolve the objects of any other node, which is how
// the paper's communication layer "locates the set of servers that can
// perform the tasks".
package naming

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/idl"
	"repro/internal/orb"
)

// ObjectKey is the well-known object key of the naming service servant.
const ObjectKey = "NameService"

// IDL is the interface definition of the naming service.
var IDL = idl.MustParse(`
module CosNaming {
    interface NamingContext {
        void bind(in string name, in string ior);
        void rebind(in string name, in string ior);
        string resolve(in string name);
        void unbind(in string name);
        sequence<any> list(in string prefix);
    };
};
`)[0]

// ErrNotFound distinguishes missing bindings from transport errors.
const errNotFound = "NotFound"
const errAlreadyBound = "AlreadyBound"

// Registry is the in-memory name tree. Names are flat paths with "/"
// separators; contexts are implicit (listing uses prefix matching), which
// matches how the reproduction uses the service.
type Registry struct {
	mu    sync.RWMutex
	bound map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{bound: make(map[string]string)}
}

// Bind adds a binding; it fails if the name is taken.
func (r *Registry) Bind(name, ior string) error {
	if err := validName(name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.bound[name]; exists {
		return fmt.Errorf("naming: %s: name %q already bound", errAlreadyBound, name)
	}
	r.bound[name] = ior
	return nil
}

// Rebind adds or replaces a binding.
func (r *Registry) Rebind(name, ior string) error {
	if err := validName(name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bound[name] = ior
	return nil
}

// Resolve returns the IOR bound to name.
func (r *Registry) Resolve(name string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ior, ok := r.bound[name]
	if !ok {
		return "", fmt.Errorf("naming: %s: no binding for %q", errNotFound, name)
	}
	return ior, nil
}

// Unbind removes a binding.
func (r *Registry) Unbind(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.bound[name]; !ok {
		return fmt.Errorf("naming: %s: no binding for %q", errNotFound, name)
	}
	delete(r.bound, name)
	return nil
}

// List returns the bound names under prefix, sorted. An empty prefix lists
// everything.
func (r *Registry) List(prefix string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var names []string
	for n := range r.bound {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Len reports the number of bindings.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.bound)
}

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("naming: empty name")
	}
	if strings.HasPrefix(name, "/") || strings.HasSuffix(name, "/") || strings.Contains(name, "//") {
		return fmt.Errorf("naming: malformed name %q", name)
	}
	return nil
}

// NewServant wraps a Registry in an ORB servant implementing the
// CosNaming/NamingContext interface.
func NewServant(reg *Registry) orb.Servant {
	h := orb.NewHandler(IDL)
	h.On("bind", func(args []idl.Any) (idl.Any, error) {
		if err := reg.Bind(args[0].Str, args[1].Str); err != nil {
			return idl.Null(), classify(err)
		}
		return idl.Any{Kind: idl.KindVoid}, nil
	})
	h.On("rebind", func(args []idl.Any) (idl.Any, error) {
		if err := reg.Rebind(args[0].Str, args[1].Str); err != nil {
			return idl.Null(), classify(err)
		}
		return idl.Any{Kind: idl.KindVoid}, nil
	})
	h.On("resolve", func(args []idl.Any) (idl.Any, error) {
		ior, err := reg.Resolve(args[0].Str)
		if err != nil {
			return idl.Null(), classify(err)
		}
		return idl.String(ior), nil
	})
	h.On("unbind", func(args []idl.Any) (idl.Any, error) {
		if err := reg.Unbind(args[0].Str); err != nil {
			return idl.Null(), classify(err)
		}
		return idl.Any{Kind: idl.KindVoid}, nil
	})
	h.On("list", func(args []idl.Any) (idl.Any, error) {
		return idl.Strings(reg.List(args[0].Str)), nil
	})
	return h
}

// classify maps registry errors to user exceptions so clients can
// distinguish NotFound from AlreadyBound.
func classify(err error) error {
	msg := err.Error()
	switch {
	case strings.Contains(msg, errNotFound):
		return &orb.UserException{Name: errNotFound, Message: msg}
	case strings.Contains(msg, errAlreadyBound):
		return &orb.UserException{Name: errAlreadyBound, Message: msg}
	default:
		return &orb.UserException{Name: "InvalidName", Message: msg}
	}
}

// Serve activates a fresh naming service on o and returns its registry and
// IOR.
func Serve(o *orb.ORB) (*Registry, *orb.IOR, error) {
	reg := NewRegistry()
	ior, err := o.Activate(ObjectKey, NewServant(reg))
	if err != nil {
		return nil, nil, fmt.Errorf("naming: activate: %w", err)
	}
	return reg, ior, nil
}

// Client is a typed client for a (possibly remote) naming service.
type Client struct {
	ref *orb.ObjectRef
}

// NewClient wraps an object reference to a naming service.
func NewClient(ref *orb.ObjectRef) *Client { return &Client{ref: ref} }

// ClientFor builds a client for the naming service hosted at addr.
func ClientFor(o *orb.ORB, addr string) (*Client, error) {
	host, port, err := splitAddr(addr)
	if err != nil {
		return nil, err
	}
	ior := &orb.IOR{RepoID: IDL.RepoID, Host: host, Port: port, ObjectKey: []byte(ObjectKey)}
	return &Client{ref: o.Resolve(ior)}, nil
}

func splitAddr(addr string) (string, uint16, error) {
	i := strings.LastIndex(addr, ":")
	if i < 0 {
		return "", 0, fmt.Errorf("naming: address %q missing port", addr)
	}
	var port int
	if _, err := fmt.Sscanf(addr[i+1:], "%d", &port); err != nil || port <= 0 || port > 65535 {
		return "", 0, fmt.Errorf("naming: bad port in %q", addr)
	}
	return addr[:i], uint16(port), nil
}

// Bind binds name to ior at the service.
func (c *Client) Bind(name, ior string) error {
	_, err := c.ref.Invoke("bind", idl.String(name), idl.String(ior))
	return err
}

// Rebind binds or replaces name at the service.
func (c *Client) Rebind(name, ior string) error {
	_, err := c.ref.Invoke("rebind", idl.String(name), idl.String(ior))
	return err
}

// Resolve looks up name at the service.
func (c *Client) Resolve(name string) (string, error) {
	v, err := c.ref.Invoke("resolve", idl.String(name))
	if err != nil {
		return "", err
	}
	return v.Str, nil
}

// ResolveRef resolves name and returns an object reference bound to o.
func (c *Client) ResolveRef(o *orb.ORB, name string) (*orb.ObjectRef, error) {
	s, err := c.Resolve(name)
	if err != nil {
		return nil, err
	}
	return o.ResolveString(s)
}

// Unbind removes name at the service.
func (c *Client) Unbind(name string) error {
	_, err := c.ref.Invoke("unbind", idl.String(name))
	return err
}

// List lists names under prefix at the service.
func (c *Client) List(prefix string) ([]string, error) {
	v, err := c.ref.Invoke("list", idl.String(prefix))
	if err != nil {
		return nil, err
	}
	return v.StringSlice(), nil
}
