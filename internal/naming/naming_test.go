package naming

import (
	"fmt"
	"testing"

	"repro/internal/orb"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	if err := r.Bind("WebFINDIT/CoDatabases/RBH", "IOR:00"); err != nil {
		t.Fatal(err)
	}
	if err := r.Bind("WebFINDIT/CoDatabases/RBH", "IOR:11"); err == nil {
		t.Error("double bind accepted")
	}
	if err := r.Rebind("WebFINDIT/CoDatabases/RBH", "IOR:22"); err != nil {
		t.Fatal(err)
	}
	got, err := r.Resolve("WebFINDIT/CoDatabases/RBH")
	if err != nil || got != "IOR:22" {
		t.Errorf("Resolve = %q, %v", got, err)
	}
	if _, err := r.Resolve("missing"); err == nil {
		t.Error("missing resolve succeeded")
	}
	if err := r.Unbind("WebFINDIT/CoDatabases/RBH"); err != nil {
		t.Fatal(err)
	}
	if err := r.Unbind("WebFINDIT/CoDatabases/RBH"); err == nil {
		t.Error("double unbind accepted")
	}
}

func TestRegistryListPrefix(t *testing.T) {
	r := NewRegistry()
	names := []string{
		"WebFINDIT/CoDatabases/RBH",
		"WebFINDIT/CoDatabases/QUT",
		"WebFINDIT/Databases/RBH",
	}
	for i, n := range names {
		if err := r.Bind(n, fmt.Sprintf("IOR:%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	got := r.List("WebFINDIT/CoDatabases/")
	if len(got) != 2 || got[0] != "WebFINDIT/CoDatabases/QUT" {
		t.Errorf("List = %v", got)
	}
	if all := r.List(""); len(all) != 3 {
		t.Errorf("List all = %v", all)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRegistryNameValidation(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "/x", "x/", "a//b"} {
		if err := r.Bind(bad, "IOR:00"); err == nil {
			t.Errorf("bad name %q accepted", bad)
		}
	}
}

func TestNamingOverIIOP(t *testing.T) {
	server := orb.New(orb.Options{Product: orb.Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	reg, _, err := Serve(server)
	if err != nil {
		t.Fatal(err)
	}

	client := orb.New(orb.Options{Product: orb.VisiBroker, DisableColocation: true})
	defer client.Shutdown()
	nc, err := ClientFor(client, server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := nc.Bind("Services/Echo", "IOR:deadbeef"); err != nil {
		t.Fatal(err)
	}
	got, err := nc.Resolve("Services/Echo")
	if err != nil || got != "IOR:deadbeef" {
		t.Errorf("Resolve over wire = %q, %v", got, err)
	}
	// The server-side registry observed the binding.
	if reg.Len() != 1 {
		t.Errorf("registry len = %d", reg.Len())
	}
	// NotFound surfaces as a typed user exception.
	_, err = nc.Resolve("Services/Missing")
	ue, ok := err.(*orb.UserException)
	if !ok || ue.Name != "NotFound" {
		t.Errorf("missing resolve error = %v", err)
	}
	if err := nc.Bind("Services/Echo", "IOR:other"); err == nil {
		t.Error("double bind over wire accepted")
	}
	if err := nc.Rebind("Services/Echo", "IOR:other"); err != nil {
		t.Error(err)
	}
	names, err := nc.List("Services/")
	if err != nil || len(names) != 1 {
		t.Errorf("List over wire = %v, %v", names, err)
	}
	if err := nc.Unbind("Services/Echo"); err != nil {
		t.Error(err)
	}
}

func TestResolveRef(t *testing.T) {
	server := orb.New(orb.Options{Product: orb.Orbix})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	if _, _, err := Serve(server); err != nil {
		t.Fatal(err)
	}
	nc, err := ClientFor(server, server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ior := &orb.IOR{RepoID: "IDL:X:1.0", Host: "127.0.0.1", Port: 1, ObjectKey: []byte("x")}
	if err := nc.Bind("X", orb.Stringify(ior)); err != nil {
		t.Fatal(err)
	}
	ref, err := nc.ResolveRef(server, "X")
	if err != nil {
		t.Fatal(err)
	}
	if !ref.IOR().Equal(ior) {
		t.Errorf("ResolveRef IOR mismatch: %+v", ref.IOR())
	}
}

func TestClientForBadAddr(t *testing.T) {
	o := orb.New(orb.Options{})
	if _, err := ClientFor(o, "nohost"); err == nil {
		t.Error("address without port accepted")
	}
	if _, err := ClientFor(o, "host:notaport"); err == nil {
		t.Error("bad port accepted")
	}
}
