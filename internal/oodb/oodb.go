// Package oodb implements an in-memory object-oriented database engine in
// the style of the ObjectStore and Ontos systems the paper deploys: classes
// with single inheritance forming a lattice, typed attributes, registered
// methods, per-class extents, and predicate queries with optional subclass
// traversal. The WebFINDIT co-databases (meta-data layer) are built on this
// engine, mirroring the paper: "a co-database is an object-oriented database
// that stores information about its associated database, coalitions, and
// service links".
package oodb

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// AttrType enumerates attribute types.
type AttrType byte

// Attribute types.
const (
	AttrString AttrType = iota
	AttrInt
	AttrFloat
	AttrBool
	AttrStringList
	AttrRef // reference to another object, stored as its ID
)

func (t AttrType) String() string {
	switch t {
	case AttrString:
		return "string"
	case AttrInt:
		return "int"
	case AttrFloat:
		return "float"
	case AttrBool:
		return "bool"
	case AttrStringList:
		return "list<string>"
	case AttrRef:
		return "ref"
	}
	return fmt.Sprintf("AttrType(%d)", byte(t))
}

// Attribute declares one typed attribute of a class.
type Attribute struct {
	Name string
	Type AttrType
}

// Method is executable behaviour attached to a class (the analogue of the
// paper's access routines / class methods).
type Method func(o *Object, args ...any) (any, error)

// Class is one node of the class lattice.
type Class struct {
	db      *DB
	name    string
	super   *Class
	attrs   []Attribute
	methods map[string]Method
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// Super returns the superclass (nil at the root).
func (c *Class) Super() *Class { return c.super }

// Attributes returns the class's own (non-inherited) attributes.
func (c *Class) Attributes() []Attribute { return append([]Attribute(nil), c.attrs...) }

// AllAttributes returns own plus inherited attributes, most-derived last
// overriding earlier names.
func (c *Class) AllAttributes() []Attribute {
	var chain []*Class
	for cl := c; cl != nil; cl = cl.super {
		chain = append(chain, cl)
	}
	seen := make(map[string]bool)
	var out []Attribute
	for i := len(chain) - 1; i >= 0; i-- {
		for _, a := range chain[i].attrs {
			key := strings.ToLower(a.Name)
			if seen[key] {
				for j := range out {
					if strings.EqualFold(out[j].Name, a.Name) {
						out[j] = a
					}
				}
				continue
			}
			seen[key] = true
			out = append(out, a)
		}
	}
	return out
}

// attribute resolves an attribute by name up the lattice.
func (c *Class) attribute(name string) (Attribute, bool) {
	for cl := c; cl != nil; cl = cl.super {
		for _, a := range cl.attrs {
			if strings.EqualFold(a.Name, name) {
				return a, true
			}
		}
	}
	return Attribute{}, false
}

// DefineMethod attaches behaviour; inherited by subclasses, overridable.
func (c *Class) DefineMethod(name string, m Method) {
	c.db.mu.Lock()
	defer c.db.mu.Unlock()
	c.methods[strings.ToLower(name)] = m
}

// method resolves a method by name up the lattice.
func (c *Class) method(name string) (Method, bool) {
	key := strings.ToLower(name)
	for cl := c; cl != nil; cl = cl.super {
		if m, ok := cl.methods[key]; ok {
			return m, true
		}
	}
	return nil, false
}

// IsSubclassOf reports whether c equals or descends from other.
func (c *Class) IsSubclassOf(other *Class) bool {
	for cl := c; cl != nil; cl = cl.super {
		if cl == other {
			return true
		}
	}
	return false
}

// Object is one stored instance.
type Object struct {
	id    int64
	class *Class
	attrs map[string]any // keyed by lower-cased attribute name
}

// ID returns the object's database-assigned identifier.
func (o *Object) ID() int64 { return o.id }

// Class returns the object's class.
func (o *Object) Class() *Class { return o.class }

// Get returns an attribute value.
func (o *Object) Get(name string) (any, bool) {
	v, ok := o.attrs[strings.ToLower(name)]
	return v, ok
}

// String returns a string attribute ("" when absent or not a string).
func (o *Object) String(name string) string {
	v, _ := o.Get(name)
	s, _ := v.(string)
	return s
}

// Int returns an int attribute (0 when absent).
func (o *Object) Int(name string) int64 {
	v, _ := o.Get(name)
	n, _ := v.(int64)
	return n
}

// Float returns a float attribute (0 when absent).
func (o *Object) Float(name string) float64 {
	v, _ := o.Get(name)
	f, _ := v.(float64)
	return f
}

// Bool returns a bool attribute (false when absent).
func (o *Object) Bool(name string) bool {
	v, _ := o.Get(name)
	b, _ := v.(bool)
	return b
}

// Strings returns a string-list attribute (nil when absent).
func (o *Object) Strings(name string) []string {
	v, _ := o.Get(name)
	l, _ := v.([]string)
	return l
}

// Ref returns a reference attribute's target ID (0 when absent).
func (o *Object) Ref(name string) int64 {
	v, _ := o.Get(name)
	n, _ := v.(int64)
	return n
}

// Call invokes a method resolved through the object's class lattice.
func (o *Object) Call(name string, args ...any) (any, error) {
	m, ok := o.class.method(name)
	if !ok {
		return nil, fmt.Errorf("oodb: class %s has no method %s", o.class.name, name)
	}
	return m(o, args...)
}

// DB is one object-oriented database instance.
type DB struct {
	name string

	mu      sync.RWMutex
	classes map[string]*Class // by lower-cased name
	objects map[int64]*Object
	extents map[string][]int64 // class (lower) -> member object IDs, insertion order
	nextID  int64
}

// NewDB creates an empty database.
func NewDB(name string) *DB {
	return &DB{
		name:    name,
		classes: make(map[string]*Class),
		objects: make(map[int64]*Object),
		extents: make(map[string][]int64),
	}
}

// Name returns the database name.
func (db *DB) Name() string { return db.name }

// DefineClass declares a class. superName may be "" for a root class.
func (db *DB) DefineClass(name, superName string, attrs ...Attribute) (*Class, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if name == "" {
		return nil, fmt.Errorf("oodb: %s: empty class name", db.name)
	}
	if _, exists := db.classes[key]; exists {
		return nil, fmt.Errorf("oodb: %s: class %s already defined", db.name, name)
	}
	var super *Class
	if superName != "" {
		s, ok := db.classes[strings.ToLower(superName)]
		if !ok {
			return nil, fmt.Errorf("oodb: %s: superclass %s not defined", db.name, superName)
		}
		super = s
	}
	seen := make(map[string]bool)
	for _, a := range attrs {
		k := strings.ToLower(a.Name)
		if seen[k] {
			return nil, fmt.Errorf("oodb: %s: class %s: duplicate attribute %s", db.name, name, a.Name)
		}
		seen[k] = true
	}
	c := &Class{db: db, name: name, super: super,
		attrs: append([]Attribute(nil), attrs...), methods: make(map[string]Method)}
	db.classes[key] = c
	return c, nil
}

// Class looks up a class by name.
func (db *DB) Class(name string) (*Class, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.classes[strings.ToLower(name)]
	return c, ok
}

// ClassNames lists class names, sorted.
func (db *DB) ClassNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.classes))
	for _, c := range db.classes {
		names = append(names, c.name)
	}
	sort.Strings(names)
	return names
}

// SubClasses returns the classes whose direct superclass is the named class
// (direct=true) or all descendants (direct=false); sorted by name.
func (db *DB) SubClasses(name string, direct bool) ([]*Class, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	root, ok := db.classes[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("oodb: %s: no class %s", db.name, name)
	}
	var out []*Class
	for _, c := range db.classes {
		if c == root {
			continue
		}
		if direct {
			if c.super == root {
				out = append(out, c)
			}
		} else if c.IsSubclassOf(root) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, nil
}

// checkValue validates an attribute assignment.
func checkValue(a Attribute, v any) (any, error) {
	switch a.Type {
	case AttrString:
		if s, ok := v.(string); ok {
			return s, nil
		}
	case AttrInt:
		switch n := v.(type) {
		case int64:
			return n, nil
		case int:
			return int64(n), nil
		}
	case AttrFloat:
		switch f := v.(type) {
		case float64:
			return f, nil
		case int:
			return float64(f), nil
		case int64:
			return float64(f), nil
		}
	case AttrBool:
		if b, ok := v.(bool); ok {
			return b, nil
		}
	case AttrStringList:
		if l, ok := v.([]string); ok {
			return append([]string(nil), l...), nil
		}
	case AttrRef:
		switch n := v.(type) {
		case int64:
			return n, nil
		case int:
			return int64(n), nil
		}
	}
	return nil, fmt.Errorf("oodb: attribute %s expects %s, got %T", a.Name, a.Type, v)
}

// NewObject creates an instance of the named class with the given attribute
// values; unknown attributes are rejected.
func (db *DB) NewObject(className string, attrs map[string]any) (*Object, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.classes[strings.ToLower(className)]
	if !ok {
		return nil, fmt.Errorf("oodb: %s: no class %s", db.name, className)
	}
	o := &Object{class: c, attrs: make(map[string]any, len(attrs))}
	for name, v := range attrs {
		a, ok := c.attribute(name)
		if !ok {
			return nil, fmt.Errorf("oodb: class %s has no attribute %s", c.name, name)
		}
		val, err := checkValue(a, v)
		if err != nil {
			return nil, err
		}
		o.attrs[strings.ToLower(name)] = val
	}
	db.nextID++
	o.id = db.nextID
	db.objects[o.id] = o
	// The object belongs to the extent of its class and all ancestors.
	for cl := c; cl != nil; cl = cl.super {
		key := strings.ToLower(cl.name)
		db.extents[key] = append(db.extents[key], o.id)
	}
	return o, nil
}

// Get returns the object with the given ID.
func (db *DB) Get(id int64) (*Object, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	o, ok := db.objects[id]
	return o, ok
}

// Set updates one attribute of an object.
func (db *DB) Set(id int64, name string, v any) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	o, ok := db.objects[id]
	if !ok {
		return fmt.Errorf("oodb: %s: no object %d", db.name, id)
	}
	a, ok := o.class.attribute(name)
	if !ok {
		return fmt.Errorf("oodb: class %s has no attribute %s", o.class.name, name)
	}
	val, err := checkValue(a, v)
	if err != nil {
		return err
	}
	o.attrs[strings.ToLower(name)] = val
	return nil
}

// Delete removes an object from the database and all extents.
func (db *DB) Delete(id int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	o, ok := db.objects[id]
	if !ok {
		return fmt.Errorf("oodb: %s: no object %d", db.name, id)
	}
	delete(db.objects, id)
	for cl := o.class; cl != nil; cl = cl.super {
		key := strings.ToLower(cl.name)
		ext := db.extents[key]
		for i, oid := range ext {
			if oid == id {
				db.extents[key] = append(ext[:i], ext[i+1:]...)
				break
			}
		}
	}
	return nil
}

// Extent returns the instances of a class. deep includes subclass instances
// (class extents are maintained transitively, so deep is the natural form;
// shallow filters to exact class membership).
func (db *DB) Extent(className string, deep bool) ([]*Object, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.classes[strings.ToLower(className)]
	if !ok {
		return nil, fmt.Errorf("oodb: %s: no class %s", db.name, className)
	}
	ids := db.extents[strings.ToLower(className)]
	out := make([]*Object, 0, len(ids))
	for _, id := range ids {
		o := db.objects[id]
		if o == nil {
			continue
		}
		if !deep && o.class != c {
			continue
		}
		out = append(out, o)
	}
	return out, nil
}

// Select returns instances of a class satisfying a predicate.
func (db *DB) Select(className string, deep bool, pred func(*Object) bool) ([]*Object, error) {
	objs, err := db.Extent(className, deep)
	if err != nil {
		return nil, err
	}
	out := objs[:0:0]
	for _, o := range objs {
		if pred == nil || pred(o) {
			out = append(out, o)
		}
	}
	return out, nil
}

// SelectFirst returns the first instance matching the predicate, or nil.
func (db *DB) SelectFirst(className string, deep bool, pred func(*Object) bool) (*Object, error) {
	objs, err := db.Select(className, deep, pred)
	if err != nil {
		return nil, err
	}
	if len(objs) == 0 {
		return nil, nil
	}
	return objs[0], nil
}

// Count reports the size of a class extent.
func (db *DB) Count(className string, deep bool) (int, error) {
	objs, err := db.Extent(className, deep)
	if err != nil {
		return 0, err
	}
	return len(objs), nil
}

// ---- Snapshot persistence ----

type snapshotObject struct {
	ID    int64          `json:"id"`
	Class string         `json:"class"`
	Attrs map[string]any `json:"attrs"`
}

type snapshotClass struct {
	Name  string     `json:"name"`
	Super string     `json:"super,omitempty"`
	Attrs []snapAttr `json:"attrs,omitempty"`
}

type snapAttr struct {
	Name string `json:"name"`
	Type byte   `json:"type"`
}

type snapshot struct {
	Name    string           `json:"name"`
	Classes []snapshotClass  `json:"classes"`
	Objects []snapshotObject `json:"objects"`
}

// Snapshot serialises the schema and all objects to JSON. Methods are code
// and are not serialised; reattach them after Load.
func (db *DB) Snapshot() ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	snap := snapshot{Name: db.name}
	// Emit classes parents-first.
	var emit func(c *Class)
	emitted := make(map[*Class]bool)
	emit = func(c *Class) {
		if emitted[c] {
			return
		}
		if c.super != nil {
			emit(c.super)
		}
		emitted[c] = true
		sc := snapshotClass{Name: c.name}
		if c.super != nil {
			sc.Super = c.super.name
		}
		for _, a := range c.attrs {
			sc.Attrs = append(sc.Attrs, snapAttr{Name: a.Name, Type: byte(a.Type)})
		}
		snap.Classes = append(snap.Classes, sc)
	}
	names := make([]string, 0, len(db.classes))
	for k := range db.classes {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		emit(db.classes[k])
	}
	ids := make([]int64, 0, len(db.objects))
	for id := range db.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o := db.objects[id]
		snap.Objects = append(snap.Objects, snapshotObject{ID: o.id, Class: o.class.name, Attrs: o.attrs})
	}
	return json.MarshalIndent(snap, "", "  ")
}

// Load restores a snapshot into a fresh database.
func Load(data []byte) (*DB, error) {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("oodb: load: %w", err)
	}
	db := NewDB(snap.Name)
	for _, sc := range snap.Classes {
		attrs := make([]Attribute, len(sc.Attrs))
		for i, a := range sc.Attrs {
			attrs[i] = Attribute{Name: a.Name, Type: AttrType(a.Type)}
		}
		if _, err := db.DefineClass(sc.Name, sc.Super, attrs...); err != nil {
			return nil, err
		}
	}
	for _, so := range snap.Objects {
		attrs := make(map[string]any, len(so.Attrs))
		for k, v := range so.Attrs {
			if v == nil {
				continue // nil-valued attributes (e.g. empty lists) stay unset
			}
			attrs[k] = normaliseJSON(v)
		}
		o, err := db.NewObject(so.Class, attrs)
		if err != nil {
			return nil, err
		}
		// Preserve original IDs so Ref attributes stay valid.
		db.mu.Lock()
		delete(db.objects, o.id)
		remapExtents(db, o.id, so.ID)
		o.id = so.ID
		db.objects[so.ID] = o
		if so.ID > db.nextID {
			db.nextID = so.ID
		}
		db.mu.Unlock()
	}
	return db, nil
}

func remapExtents(db *DB, from, to int64) {
	for k, ext := range db.extents {
		for i, id := range ext {
			if id == from {
				db.extents[k][i] = to
			}
		}
	}
}

// normaliseJSON converts JSON decode artifacts (float64 numbers, []any
// lists) back to the engine's attribute value types.
func normaliseJSON(v any) any {
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) {
			return int64(x)
		}
		return x
	case []any:
		out := make([]string, 0, len(x))
		for _, item := range x {
			if s, ok := item.(string); ok {
				out = append(out, s)
			}
		}
		return out
	default:
		return v
	}
}
