package oodb

import (
	"strings"
	"testing"
	"testing/quick"
)

// newMedicalDB builds a small class lattice mirroring the co-database schema
// shape: InformationType root, coalition classes beneath it.
func newMedicalDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB("codb-RBH")
	must := func(_ *Class, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.DefineClass("InformationType", "",
		Attribute{Name: "Description", Type: AttrString}))
	must(db.DefineClass("Research", "InformationType",
		Attribute{Name: "Field", Type: AttrString}))
	must(db.DefineClass("Medical", "InformationType",
		Attribute{Name: "Region", Type: AttrString}))
	must(db.DefineClass("CancerResearch", "Research",
		Attribute{Name: "Funding", Type: AttrFloat}))
	return db
}

func TestDefineClassErrors(t *testing.T) {
	db := newMedicalDB(t)
	if _, err := db.DefineClass("Research", ""); err == nil {
		t.Error("duplicate class accepted")
	}
	if _, err := db.DefineClass("X", "NoSuchSuper"); err == nil {
		t.Error("unknown superclass accepted")
	}
	if _, err := db.DefineClass("", ""); err == nil {
		t.Error("empty class name accepted")
	}
	if _, err := db.DefineClass("Y", "", Attribute{Name: "a"}, Attribute{Name: "A"}); err == nil {
		t.Error("duplicate attribute accepted")
	}
}

func TestLatticeQueries(t *testing.T) {
	db := newMedicalDB(t)
	subs, err := db.SubClasses("InformationType", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 || subs[0].Name() != "Medical" || subs[1].Name() != "Research" {
		t.Errorf("direct subclasses = %v", classNames(subs))
	}
	subs, err = db.SubClasses("InformationType", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 3 {
		t.Errorf("deep subclasses = %v", classNames(subs))
	}
	cr, _ := db.Class("CancerResearch")
	res, _ := db.Class("Research")
	info, _ := db.Class("InformationType")
	med, _ := db.Class("Medical")
	if !cr.IsSubclassOf(res) || !cr.IsSubclassOf(info) || cr.IsSubclassOf(med) {
		t.Error("IsSubclassOf wrong")
	}
	if _, err := db.SubClasses("Nope", true); err == nil {
		t.Error("unknown class accepted")
	}
}

func classNames(cs []*Class) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name()
	}
	return out
}

func TestInheritedAttributes(t *testing.T) {
	db := newMedicalDB(t)
	cr, _ := db.Class("CancerResearch")
	all := cr.AllAttributes()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "Description") || !strings.Contains(joined, "Field") ||
		!strings.Contains(joined, "Funding") {
		t.Errorf("AllAttributes = %v", names)
	}
	// Objects accept inherited attributes.
	o, err := db.NewObject("CancerResearch", map[string]any{
		"Description": "cancer studies",
		"Field":       "oncology",
		"Funding":     1.5e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.String("Description") != "cancer studies" || o.Float("Funding") != 1.5e6 {
		t.Errorf("attrs: %v %v", o.String("Description"), o.Float("Funding"))
	}
}

func TestObjectLifecycleAndExtents(t *testing.T) {
	db := newMedicalDB(t)
	r1, err := db.NewObject("Research", map[string]any{"Field": "aids"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.NewObject("CancerResearch", map[string]any{"Field": "cancer"})
	if err != nil {
		t.Fatal(err)
	}
	// Deep extent of Research includes the CancerResearch instance.
	deep, _ := db.Extent("Research", true)
	if len(deep) != 2 {
		t.Errorf("deep extent = %d", len(deep))
	}
	shallow, _ := db.Extent("Research", false)
	if len(shallow) != 1 || shallow[0].ID() != r1.ID() {
		t.Errorf("shallow extent = %d", len(shallow))
	}
	root, _ := db.Extent("InformationType", true)
	if len(root) != 2 {
		t.Errorf("root extent = %d", len(root))
	}
	// Update.
	if err := db.Set(r1.ID(), "Field", "hiv"); err != nil {
		t.Fatal(err)
	}
	if got, _ := db.Get(r1.ID()); got.String("Field") != "hiv" {
		t.Error("Set did not stick")
	}
	if err := db.Set(r1.ID(), "Field", 42); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := db.Set(r1.ID(), "Nope", "x"); err == nil {
		t.Error("unknown attribute accepted")
	}
	// Delete removes from all extents.
	if err := db.Delete(r1.ID()); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(r1.ID()); err == nil {
		t.Error("double delete accepted")
	}
	deep, _ = db.Extent("Research", true)
	if len(deep) != 1 {
		t.Errorf("extent after delete = %d", len(deep))
	}
	if n, _ := db.Count("InformationType", true); n != 1 {
		t.Errorf("count after delete = %d", n)
	}
}

func TestNewObjectValidation(t *testing.T) {
	db := newMedicalDB(t)
	if _, err := db.NewObject("NoClass", nil); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := db.NewObject("Research", map[string]any{"Bogus": 1}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := db.NewObject("Research", map[string]any{"Field": 7}); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestSelect(t *testing.T) {
	db := newMedicalDB(t)
	for _, f := range []string{"aids", "cancer", "cardio"} {
		if _, err := db.NewObject("Research", map[string]any{"Field": f}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.Select("Research", true, func(o *Object) bool {
		return strings.HasPrefix(o.String("Field"), "ca")
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("select = %d", len(got))
	}
	first, err := db.SelectFirst("Research", true, func(o *Object) bool {
		return o.String("Field") == "aids"
	})
	if err != nil || first == nil {
		t.Fatalf("SelectFirst: %v %v", first, err)
	}
	none, err := db.SelectFirst("Research", true, func(o *Object) bool { return false })
	if err != nil || none != nil {
		t.Errorf("SelectFirst none: %v %v", none, err)
	}
}

func TestMethodsAndInheritance(t *testing.T) {
	db := newMedicalDB(t)
	info, _ := db.Class("InformationType")
	info.DefineMethod("describe", func(o *Object, args ...any) (any, error) {
		return "info:" + o.String("Description"), nil
	})
	res, _ := db.Class("Research")
	res.DefineMethod("describe", func(o *Object, args ...any) (any, error) {
		return "research:" + o.String("Field"), nil
	})
	r, _ := db.NewObject("CancerResearch", map[string]any{"Field": "cancer"})
	m, _ := db.NewObject("Medical", map[string]any{"Description": "medicine"})
	// CancerResearch inherits Research's override.
	got, err := r.Call("describe")
	if err != nil || got != "research:cancer" {
		t.Errorf("override: %v %v", got, err)
	}
	got, err = m.Call("describe")
	if err != nil || got != "info:medicine" {
		t.Errorf("inherited: %v %v", got, err)
	}
	if _, err := r.Call("nosuch"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestAttrTypes(t *testing.T) {
	db := NewDB("t")
	if _, err := db.DefineClass("All", "",
		Attribute{Name: "s", Type: AttrString},
		Attribute{Name: "i", Type: AttrInt},
		Attribute{Name: "f", Type: AttrFloat},
		Attribute{Name: "b", Type: AttrBool},
		Attribute{Name: "l", Type: AttrStringList},
		Attribute{Name: "r", Type: AttrRef},
	); err != nil {
		t.Fatal(err)
	}
	o, err := db.NewObject("All", map[string]any{
		"s": "str", "i": 7, "f": 2.5, "b": true, "l": []string{"a", "b"}, "r": int64(99),
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.String("s") != "str" || o.Int("i") != 7 || o.Float("f") != 2.5 ||
		!o.Bool("b") || len(o.Strings("l")) != 2 || o.Ref("r") != 99 {
		t.Errorf("attr round trip failed: %+v", o.attrs)
	}
	// List values are copied in.
	src := []string{"x"}
	o2, _ := db.NewObject("All", map[string]any{"l": src})
	src[0] = "mutated"
	if o2.Strings("l")[0] != "x" {
		t.Error("string list aliases caller slice")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := newMedicalDB(t)
	r, _ := db.NewObject("Research", map[string]any{"Field": "aids", "Description": "d"})
	c, _ := db.NewObject("CancerResearch", map[string]any{"Funding": 2.5})
	data, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != db.Name() {
		t.Errorf("name = %s", got.Name())
	}
	if len(got.ClassNames()) != 4 {
		t.Errorf("classes = %v", got.ClassNames())
	}
	o, ok := got.Get(r.ID())
	if !ok || o.String("Field") != "aids" {
		t.Errorf("object %d not restored", r.ID())
	}
	o2, ok := got.Get(c.ID())
	if !ok || o2.Float("Funding") != 2.5 {
		t.Errorf("float attr not restored: %v", o2)
	}
	deep, _ := got.Extent("Research", true)
	if len(deep) != 2 {
		t.Errorf("restored extent = %d", len(deep))
	}
	if _, err := Load([]byte("not json")); err == nil {
		t.Error("bad snapshot accepted")
	}
}

// Property: extent size equals number of created minus deleted objects, for
// any interleaving.
func TestQuickExtentConsistency(t *testing.T) {
	f := func(ops []bool) bool {
		db := NewDB("q")
		if _, err := db.DefineClass("C", "", Attribute{Name: "n", Type: AttrInt}); err != nil {
			return false
		}
		var live []int64
		for i, create := range ops {
			if create || len(live) == 0 {
				o, err := db.NewObject("C", map[string]any{"n": i})
				if err != nil {
					return false
				}
				live = append(live, o.ID())
			} else {
				id := live[len(live)-1]
				live = live[:len(live)-1]
				if err := db.Delete(id); err != nil {
					return false
				}
			}
		}
		n, err := db.Count("C", true)
		return err == nil && n == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
