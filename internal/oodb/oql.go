package oodb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Query evaluates a small OQL-style query against the database:
//
//	SELECT * FROM ClassName
//	SELECT name, funding FROM Research DEEP WHERE field = 'aids' AND funding > 100000
//	SELECT name FROM Research WHERE name LIKE '%Hospital%'
//
// DEEP includes subclass instances. The WHERE clause is a conjunction of
// comparisons between an attribute and a literal (string, int, float, bool).
// It returns the projected column names and rows. This plays the role the
// ObjectStore/Ontos query APIs play in the paper's prototype.
func Query(db *DB, q string) ([]string, [][]any, error) {
	p := &oqlParser{toks: tokeniseOQL(q)}
	sel, err := p.parse()
	if err != nil {
		return nil, nil, err
	}
	class, ok := db.Class(sel.class)
	if !ok {
		return nil, nil, fmt.Errorf("oodb: %s: no class %s", db.name, sel.class)
	}

	// Resolve projection.
	cols := sel.attrs
	if sel.star {
		all := class.AllAttributes()
		cols = make([]string, len(all))
		for i, a := range all {
			cols[i] = a.Name
		}
	} else {
		for _, a := range cols {
			if _, ok := class.attribute(a); !ok {
				return nil, nil, fmt.Errorf("oodb: class %s has no attribute %s", sel.class, a)
			}
		}
	}

	objs, err := db.Extent(sel.class, sel.deep)
	if err != nil {
		return nil, nil, err
	}
	objs = filterExtent(objs, sel.conds)
	// Stable output: sort by object ID.
	sort.Slice(objs, func(i, j int) bool { return objs[i].ID() < objs[j].ID() })

	// Attribute keys are lowered once for the whole result, not per row.
	lcols := make([]string, len(cols))
	for i, c := range cols {
		lcols[i] = strings.ToLower(c)
	}
	rows := make([][]any, 0, len(objs))
	for _, o := range objs {
		row := make([]any, len(cols))
		for i, lc := range lcols {
			row[i] = o.attrs[lc]
		}
		rows = append(rows, row)
	}
	return cols, rows, nil
}

// oqlChunk is the extent filter's batch width; scratch buffers of this size
// are pooled across queries.
const oqlChunk = 1024

type oqlScratch struct {
	sel  []int
	vals []any
}

var oqlScratchPool = sync.Pool{New: func() any {
	return &oqlScratch{sel: make([]int, 0, oqlChunk), vals: make([]any, oqlChunk)}
}}

// filterExtent applies the WHERE conjunction batch-at-a-time: the extent is
// walked in chunks, and each condition is evaluated over the surviving
// objects' attribute values as one value batch, so per-object overhead (key
// lowering, predicate closure calls) is paid once per condition per chunk
// instead of once per object. Objects lacking the attribute never match, as
// with Get. Output order is extent order, as with Select.
func filterExtent(objs []*Object, conds []oqlCond) []*Object {
	if len(conds) == 0 {
		return objs
	}
	lattrs := make([]string, len(conds))
	for i := range conds {
		lattrs[i] = strings.ToLower(conds[i].attr)
	}
	sc := oqlScratchPool.Get().(*oqlScratch)
	defer func() {
		clear(sc.vals) // drop value references before pooling
		oqlScratchPool.Put(sc)
	}()
	out := objs[:0:0]
	for base := 0; base < len(objs); base += oqlChunk {
		end := min(base+oqlChunk, len(objs))
		sel := sc.sel[:0]
		for oi := base; oi < end; oi++ {
			sel = append(sel, oi)
		}
		for ci := range conds {
			if len(sel) == 0 {
				break
			}
			c := &conds[ci]
			lattr := lattrs[ci]
			// Gather the attribute value batch for the surviving selection.
			k := 0
			for _, oi := range sel {
				v, ok := objs[oi].attrs[lattr]
				if !ok {
					continue
				}
				sel[k] = oi
				sc.vals[k] = v
				k++
			}
			sel = sel[:k]
			// Evaluate the condition over the batch.
			k = 0
			for i, oi := range sel {
				if c.matchValue(sc.vals[i]) {
					sel[k] = oi
					k++
				}
			}
			sel = sel[:k]
		}
		for _, oi := range sel {
			out = append(out, objs[oi])
		}
	}
	return out
}

type oqlCond struct {
	attr string
	op   string // = <> < <= > >= LIKE
	val  any    // string, int64, float64, bool
}

func (c *oqlCond) match(o *Object) bool {
	v, ok := o.Get(c.attr)
	if !ok {
		return false
	}
	return c.matchValue(v)
}

// matchValue compares one already-fetched attribute value, the kernel shared
// by the per-object match and the batched filterExtent path.
func (c *oqlCond) matchValue(v any) bool {
	if c.op == "LIKE" {
		s, sok := v.(string)
		p, pok := c.val.(string)
		return sok && pok && oqlLike(s, p)
	}
	cmp, ok := oqlCompare(v, c.val)
	if !ok {
		return false
	}
	switch c.op {
	case "=":
		return cmp == 0
	case "<>":
		return cmp != 0
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	case ">=":
		return cmp >= 0
	}
	return false
}

// MatchCond evaluates one OQL comparison against an already-fetched value,
// with exactly the engine's semantics (kind-mismatch is no-match, LIKE needs
// string on both sides). The federated planner uses it to compensate at the
// coordinator for conjuncts an object engine could not accept. op is one of
// = <> < <= > >= LIKE; lit is a string, int64, float64 or bool, as the OQL
// parser would have typed the literal.
func MatchCond(v any, op string, lit any) bool {
	c := oqlCond{op: op, val: lit}
	return c.matchValue(v)
}

func oqlCompare(a, b any) (int, bool) {
	switch av := a.(type) {
	case string:
		if bv, ok := b.(string); ok {
			return strings.Compare(av, bv), true
		}
	case bool:
		if bv, ok := b.(bool); ok {
			switch {
			case av == bv:
				return 0, true
			case !av:
				return -1, true
			default:
				return 1, true
			}
		}
	case int64:
		switch bv := b.(type) {
		case int64:
			switch {
			case av < bv:
				return -1, true
			case av > bv:
				return 1, true
			default:
				return 0, true
			}
		case float64:
			return oqlCompare(float64(av), bv)
		}
	case float64:
		switch bv := b.(type) {
		case float64:
			switch {
			case av < bv:
				return -1, true
			case av > bv:
				return 1, true
			default:
				return 0, true
			}
		case int64:
			return oqlCompare(av, float64(bv))
		}
	}
	return 0, false
}

// oqlLike matches with % and _ wildcards, mirroring SQL LIKE.
func oqlLike(s, p string) bool {
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

type oqlSelect struct {
	star  bool
	attrs []string
	class string
	deep  bool
	conds []oqlCond
}

type oqlTok struct {
	kind string // word, string, number, punct, eof
	text string
}

func tokeniseOQL(src string) []oqlTok {
	var toks []oqlTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			i++
			var sb strings.Builder
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, oqlTok{"string", sb.String()})
		case c >= '0' && c <= '9' || c == '-':
			start := i
			i++
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			toks = append(toks, oqlTok{"number", src[start:i]})
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			start := i
			for i < len(src) && (src[i] == '_' || src[i] >= 'a' && src[i] <= 'z' ||
				src[i] >= 'A' && src[i] <= 'Z' || src[i] >= '0' && src[i] <= '9') {
				i++
			}
			toks = append(toks, oqlTok{"word", src[start:i]})
		default:
			if i+1 < len(src) {
				two := src[i : i+2]
				if two == "<=" || two == ">=" || two == "<>" {
					toks = append(toks, oqlTok{"punct", two})
					i += 2
					continue
				}
			}
			toks = append(toks, oqlTok{"punct", string(c)})
			i++
		}
	}
	return append(toks, oqlTok{kind: "eof"})
}

type oqlParser struct {
	toks []oqlTok
	pos  int
}

func (p *oqlParser) peek() oqlTok { return p.toks[p.pos] }

func (p *oqlParser) next() oqlTok {
	t := p.toks[p.pos]
	if t.kind != "eof" {
		p.pos++
	}
	return t
}

func (p *oqlParser) acceptWord(w string) bool {
	t := p.peek()
	if t.kind == "word" && strings.EqualFold(t.text, w) {
		p.next()
		return true
	}
	return false
}

func (p *oqlParser) parse() (*oqlSelect, error) {
	sel := &oqlSelect{}
	if !p.acceptWord("SELECT") {
		return nil, fmt.Errorf("oodb: query must begin with SELECT")
	}
	if p.peek().text == "*" {
		p.next()
		sel.star = true
	} else {
		for {
			t := p.next()
			if t.kind != "word" {
				return nil, fmt.Errorf("oodb: expected attribute name, got %q", t.text)
			}
			sel.attrs = append(sel.attrs, t.text)
			if p.peek().text != "," {
				break
			}
			p.next()
		}
	}
	if !p.acceptWord("FROM") {
		return nil, fmt.Errorf("oodb: expected FROM")
	}
	cls := p.next()
	if cls.kind != "word" {
		return nil, fmt.Errorf("oodb: expected class name, got %q", cls.text)
	}
	sel.class = cls.text
	if p.acceptWord("DEEP") {
		sel.deep = true
	}
	if p.acceptWord("WHERE") {
		for {
			cond, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			sel.conds = append(sel.conds, cond)
			if !p.acceptWord("AND") {
				break
			}
		}
	}
	if p.peek().kind != "eof" {
		return nil, fmt.Errorf("oodb: unexpected %q after query", p.peek().text)
	}
	return sel, nil
}

func (p *oqlParser) parseCond() (oqlCond, error) {
	attr := p.next()
	if attr.kind != "word" {
		return oqlCond{}, fmt.Errorf("oodb: expected attribute in WHERE, got %q", attr.text)
	}
	var op string
	t := p.next()
	switch {
	case t.kind == "punct" && (t.text == "=" || t.text == "<" || t.text == "<=" ||
		t.text == ">" || t.text == ">=" || t.text == "<>"):
		op = t.text
	case t.kind == "word" && strings.EqualFold(t.text, "LIKE"):
		op = "LIKE"
	default:
		return oqlCond{}, fmt.Errorf("oodb: expected comparison operator, got %q", t.text)
	}
	lit := p.next()
	var val any
	switch lit.kind {
	case "string":
		val = lit.text
	case "number":
		if strings.Contains(lit.text, ".") {
			f, err := strconv.ParseFloat(lit.text, 64)
			if err != nil {
				return oqlCond{}, fmt.Errorf("oodb: bad number %q", lit.text)
			}
			val = f
		} else {
			n, err := strconv.ParseInt(lit.text, 10, 64)
			if err != nil {
				return oqlCond{}, fmt.Errorf("oodb: bad number %q", lit.text)
			}
			val = n
		}
	case "word":
		switch strings.ToLower(lit.text) {
		case "true":
			val = true
		case "false":
			val = false
		default:
			return oqlCond{}, fmt.Errorf("oodb: expected literal, got %q", lit.text)
		}
	default:
		return oqlCond{}, fmt.Errorf("oodb: expected literal, got %q", lit.text)
	}
	return oqlCond{attr: attr.text, op: op, val: val}, nil
}
