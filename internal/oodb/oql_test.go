package oodb

import (
	"testing"
)

func newOQLDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB("oql")
	must := func(_ *Class, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.DefineClass("Callout", "",
		Attribute{Name: "Suburb", Type: AttrString},
		Attribute{Name: "Priority", Type: AttrInt},
		Attribute{Name: "Weight", Type: AttrFloat},
		Attribute{Name: "Urgent", Type: AttrBool},
	))
	must(db.DefineClass("NightCallout", "Callout"))
	rows := []map[string]any{
		{"Suburb": "Herston", "Priority": 1, "Weight": 1.5, "Urgent": true},
		{"Suburb": "Chermside", "Priority": 2, "Weight": 2.5, "Urgent": false},
		{"Suburb": "Herston", "Priority": 3, "Weight": 0.5, "Urgent": false},
	}
	for _, r := range rows {
		if _, err := db.NewObject("Callout", r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.NewObject("NightCallout", map[string]any{
		"Suburb": "Kedron", "Priority": 1, "Weight": 9.0, "Urgent": true}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOQLSelectStar(t *testing.T) {
	db := newOQLDB(t)
	cols, rows, err := Query(db, "SELECT * FROM Callout")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 4 {
		t.Errorf("cols = %v", cols)
	}
	// Shallow by default: the NightCallout instance is excluded.
	if len(rows) != 3 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestOQLDeep(t *testing.T) {
	db := newOQLDB(t)
	_, rows, err := Query(db, "SELECT Suburb FROM Callout DEEP")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Errorf("deep rows = %d", len(rows))
	}
}

func TestOQLWhereOperators(t *testing.T) {
	db := newOQLDB(t)
	cases := []struct {
		q    string
		want int
	}{
		{"SELECT Suburb FROM Callout WHERE Suburb = 'Herston'", 2},
		{"SELECT Suburb FROM Callout WHERE Suburb <> 'Herston'", 1},
		{"SELECT Suburb FROM Callout WHERE Priority > 1", 2},
		{"SELECT Suburb FROM Callout WHERE Priority >= 2 AND Suburb = 'Herston'", 1},
		{"SELECT Suburb FROM Callout WHERE Weight <= 1.5", 2},
		{"SELECT Suburb FROM Callout WHERE Weight < 1", 1},
		{"SELECT Suburb FROM Callout WHERE Urgent = true", 1},
		{"SELECT Suburb FROM Callout WHERE Urgent = false", 2},
		{"SELECT Suburb FROM Callout WHERE Suburb LIKE 'Her%'", 2},
		{"SELECT Suburb FROM Callout WHERE Suburb LIKE '%side'", 1},
		{"SELECT Suburb FROM Callout WHERE Priority = 1 AND Urgent = true", 1},
		{"SELECT Suburb FROM Callout DEEP WHERE Weight > 5", 1},
	}
	for _, c := range cases {
		_, rows, err := Query(db, c.q)
		if err != nil {
			t.Errorf("%s: %v", c.q, err)
			continue
		}
		if len(rows) != c.want {
			t.Errorf("%s: got %d rows, want %d", c.q, len(rows), c.want)
		}
	}
}

func TestOQLProjection(t *testing.T) {
	db := newOQLDB(t)
	cols, rows, err := Query(db, "SELECT Priority, Suburb FROM Callout WHERE Suburb = 'Chermside'")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != "Priority" || cols[1] != "Suburb" {
		t.Errorf("cols = %v", cols)
	}
	if len(rows) != 1 || rows[0][0] != int64(2) || rows[0][1] != "Chermside" {
		t.Errorf("rows = %v", rows)
	}
}

func TestOQLErrors(t *testing.T) {
	db := newOQLDB(t)
	bad := []string{
		"",
		"FROM Callout",
		"SELECT FROM Callout",
		"SELECT * FROM",
		"SELECT * FROM NoClass",
		"SELECT Bogus FROM Callout",
		"SELECT * FROM Callout WHERE",
		"SELECT * FROM Callout WHERE Suburb ~ 'x'",
		"SELECT * FROM Callout WHERE Suburb = ",
		"SELECT * FROM Callout WHERE Suburb = banana",
		"SELECT * FROM Callout trailing junk",
	}
	for _, q := range bad {
		if _, _, err := Query(db, q); err == nil {
			t.Errorf("no error for %q", q)
		}
	}
}

func TestOQLTypeMismatchInCondition(t *testing.T) {
	db := newOQLDB(t)
	// Comparing a string attribute to a number matches nothing (no panic).
	_, rows, err := Query(db, "SELECT Suburb FROM Callout WHERE Suburb = 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("mismatched-type condition matched %d rows", len(rows))
	}
	// Int vs float comparisons coerce.
	_, rows, err = Query(db, "SELECT Suburb FROM Callout WHERE Priority < 2.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("numeric coercion rows = %d", len(rows))
	}
}
