package orb

import (
	"sync"
	"time"
)

// BreakerPolicy configures the per-endpoint circuit breaker. The zero value
// disables it.
type BreakerPolicy struct {
	// Threshold is the number of consecutive transport failures (COMM_FAILURE
	// class) after which the endpoint's breaker opens. 0 disables breakers.
	Threshold int
	// Cooldown is how long an open breaker rejects calls before letting one
	// probe through (half-open). 0 means the default of 1 second.
	Cooldown time.Duration
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Cooldown <= 0 {
		p.Cooldown = time.Second
	}
	return p
}

// Breaker state names, as reported by BreakerSnapshot.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// BreakerState is one endpoint's breaker as seen by /debug/metrics.
type BreakerState struct {
	State    string `json:"state"`
	Failures int    `json:"failures"` // consecutive failures while closed
}

// breaker is one endpoint's circuit: closed (normal), open (failing fast
// until the cooldown elapses), half-open (one probe in flight decides).
type breaker struct {
	state    string
	fails    int
	openedAt time.Time
	probing  bool
}

// breakerSet holds the per-endpoint breakers of one ORB.
type breakerSet struct {
	policy BreakerPolicy
	stats  *Stats

	mu sync.Mutex
	m  map[string]*breaker
}

func newBreakerSet(policy BreakerPolicy, stats *Stats) *breakerSet {
	return &breakerSet{policy: policy.withDefaults(), stats: stats, m: make(map[string]*breaker)}
}

func (s *breakerSet) get(addr string) *breaker {
	b := s.m[addr]
	if b == nil {
		b = &breaker{state: BreakerClosed}
		s.m[addr] = b
	}
	return b
}

// allow decides whether a call to addr may proceed. While open it fails fast
// with a TRANSIENT system exception until the cooldown elapses, at which
// point exactly one caller is admitted as the half-open probe; its outcome
// (reported through record) closes or re-opens the circuit.
func (s *breakerSet) allow(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(addr)
	switch b.state {
	case BreakerOpen:
		if time.Since(b.openedAt) < s.policy.Cooldown {
			s.stats.BreakerRejects.Add(1)
			return &SystemException{Name: ExcTransient,
				Detail: "circuit breaker open for " + addr}
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return nil
	case BreakerHalfOpen:
		if b.probing {
			s.stats.BreakerRejects.Add(1)
			return &SystemException{Name: ExcTransient,
				Detail: "circuit breaker half-open for " + addr + "; probe in flight"}
		}
		b.probing = true
		return nil
	default:
		return nil
	}
}

// record feeds one call outcome back. Only transport-class failures count
// against the circuit; application errors (user exceptions, servant errors)
// are successful deliveries as far as the endpoint's health is concerned.
func (s *breakerSet) record(addr string, failure bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(addr)
	if !failure {
		if b.state != BreakerClosed {
			b.state = BreakerClosed
		}
		b.fails = 0
		b.probing = false
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		// The probe failed: back to a full cooldown.
		b.state = BreakerOpen
		b.openedAt = time.Now()
		b.probing = false
		s.stats.BreakerTrips.Add(1)
	case BreakerClosed:
		b.fails++
		if b.fails >= s.policy.Threshold {
			b.state = BreakerOpen
			b.openedAt = time.Now()
			s.stats.BreakerTrips.Add(1)
		}
	}
}

// snapshot copies the breaker states for serialisation.
func (s *breakerSet) snapshot() map[string]BreakerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]BreakerState, len(s.m))
	for addr, b := range s.m {
		out[addr] = BreakerState{State: b.state, Failures: b.fails}
	}
	return out
}
