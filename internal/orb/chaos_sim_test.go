package orb

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/idl"
	"repro/internal/simnet"
)

// This file is the chaos suite running over internal/simnet: the same
// acceptance scenarios as the socket-based smoke copy in chaos_test.go, but
// in-memory, deterministic, and with injected latency on the virtual clock.
// Test names keep the Chaos prefix so `make chaos` runs both flavours.

// startSimFaultyPair is startFaultyPair over simnet: a server and a client
// ORB on two simulated hosts, colocation disabled so every call crosses the
// simulated wire.
func startSimFaultyPair(t *testing.T, clientOpts Options) (snet *simnet.Net, client *ORB, ref *ObjectRef) {
	t.Helper()
	snet = simnet.New(1)
	t.Cleanup(snet.Close)
	server := New(Options{Product: Orbix, DisableColocation: true, Transport: snet.Endpoint("srv")})
	if err := server.Listen(":0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Shutdown)
	ior, err := server.Activate("Echo", newEchoServant())
	if err != nil {
		t.Fatal(err)
	}
	clientOpts.DisableColocation = true
	clientOpts.Transport = snet.Endpoint("cli")
	if clientOpts.Product == "" {
		clientOpts.Product = VisiBroker
	}
	client = New(clientOpts)
	t.Cleanup(client.Shutdown)
	return snet, client, client.Resolve(ior)
}

func TestChaosSimInjectedConnectFailure(t *testing.T) {
	_, client, ref := startSimFaultyPair(t, Options{
		Faults: &FaultPlan{Rules: []FaultRule{{FailConnect: 1}}},
	})
	_, err := ref.Invoke("echo", idl.String("x"))
	se, ok := err.(*SystemException)
	if !ok || se.Name != ExcCommFailure {
		t.Fatalf("want injected COMM_FAILURE, got %v", err)
	}
	if !strings.Contains(se.Detail, "injected connect failure") {
		t.Errorf("detail = %q", se.Detail)
	}
	if n := client.Stats.FaultsInjected.Load(); n == 0 {
		t.Error("FaultsInjected not counted")
	}
}

func TestChaosSimRetryRecovers(t *testing.T) {
	_, client, ref := startSimFaultyPair(t, Options{
		Faults: &FaultPlan{Rules: []FaultRule{{FailFirst: 2}}},
		Retry:  RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
	})
	got, err := ref.InvokeIdempotent(context.Background(), "echo", idl.String("retried"))
	if err != nil {
		t.Fatalf("idempotent call did not recover: %v", err)
	}
	if got.Str != "retried" {
		t.Errorf("echo = %s", got)
	}
	if n := client.Stats.Retries.Load(); n != 2 {
		t.Errorf("Retries = %d, want 2", n)
	}

	client.SetFaultPlan(&FaultPlan{Rules: []FaultRule{{FailFirst: 1}}})
	client.pool.closeAll()
	if _, err := ref.Invoke("echo", idl.String("x")); err == nil {
		t.Fatal("non-idempotent call retried through an injected dial failure")
	}
	if n := client.Stats.Retries.Load(); n != 2 {
		t.Errorf("non-idempotent call bumped Retries to %d", n)
	}
}

func TestChaosSimRetryAttemptsReported(t *testing.T) {
	_, _, ref := startSimFaultyPair(t, Options{
		Faults: &FaultPlan{Rules: []FaultRule{{FailFirst: 1}}},
		Retry:  RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
	})
	ctx, cs := WithCallStats(context.Background())
	if _, err := ref.InvokeIdempotent(ctx, "echo", idl.String("x")); err != nil {
		t.Fatal(err)
	}
	if n := cs.Attempts.Load(); n != 2 {
		t.Errorf("Attempts = %d, want 2 (one failed dial + one success)", n)
	}
}

func TestChaosSimBreakerLifecycle(t *testing.T) {
	cooldown := 50 * time.Millisecond
	_, client, ref := startSimFaultyPair(t, Options{
		Faults:  &FaultPlan{Rules: []FaultRule{{FailConnect: 1}}},
		Breaker: BreakerPolicy{Threshold: 2, Cooldown: cooldown},
	})
	addr := ref.IOR().Addr()

	for i := 0; i < 2; i++ {
		if _, err := ref.Invoke("echo", idl.String("x")); err == nil {
			t.Fatal("expected injected failure")
		}
	}
	if trips := client.Stats.BreakerTrips.Load(); trips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", trips)
	}
	if st := client.BreakerSnapshot()[addr]; st.State != BreakerOpen {
		t.Fatalf("breaker state = %q, want open", st.State)
	}

	faultsBefore := client.Stats.FaultsInjected.Load()
	_, err := ref.Invoke("echo", idl.String("x"))
	se, ok := err.(*SystemException)
	if !ok || se.Name != ExcTransient {
		t.Fatalf("open breaker returned %v, want TRANSIENT", err)
	}
	if n := client.Stats.BreakerRejects.Load(); n != 1 {
		t.Errorf("BreakerRejects = %d, want 1", n)
	}
	if client.Stats.FaultsInjected.Load() != faultsBefore {
		t.Error("open breaker still dialed the endpoint")
	}

	client.SetFaultPlan(nil)
	time.Sleep(cooldown + 10*time.Millisecond)
	if _, err := ref.Invoke("echo", idl.String("probe")); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if st := client.BreakerSnapshot()[addr]; st.State != BreakerClosed {
		t.Fatalf("breaker state after probe = %q, want closed", st.State)
	}
	if _, err := ref.Invoke("echo", idl.String("x")); err != nil {
		t.Fatalf("call after close failed: %v", err)
	}
}

func TestChaosSimHalfOpenProbeFailureReopens(t *testing.T) {
	cooldown := 30 * time.Millisecond
	_, client, ref := startSimFaultyPair(t, Options{
		Faults:  &FaultPlan{Rules: []FaultRule{{FailConnect: 1}}},
		Breaker: BreakerPolicy{Threshold: 1, Cooldown: cooldown},
	})
	addr := ref.IOR().Addr()
	if _, err := ref.Invoke("echo", idl.String("x")); err == nil {
		t.Fatal("expected injected failure")
	}
	time.Sleep(cooldown + 10*time.Millisecond)
	if _, err := ref.Invoke("echo", idl.String("x")); err == nil {
		t.Fatal("expected probe failure")
	}
	if st := client.BreakerSnapshot()[addr]; st.State != BreakerOpen {
		t.Fatalf("breaker state = %q, want open after failed probe", st.State)
	}
	if trips := client.Stats.BreakerTrips.Load(); trips != 2 {
		t.Errorf("BreakerTrips = %d, want 2", trips)
	}
}

func TestChaosSimDroppedRequestTimesOut(t *testing.T) {
	_, client, ref := startSimFaultyPair(t, Options{
		Faults:      &FaultPlan{Rules: []FaultRule{{Drop: 1}}},
		CallTimeout: 60 * time.Millisecond,
	})
	_, err := ref.Invoke("echo", idl.String("dropped"))
	se, ok := err.(*SystemException)
	if !ok || se.Name != ExcCommFailure || !strings.Contains(se.Detail, "timed out") {
		t.Fatalf("want timeout COMM_FAILURE, got %v", err)
	}
	if n := client.Stats.FaultsInjected.Load(); n == 0 {
		t.Error("drop not counted as an injected fault")
	}
}

// TestChaosSimVirtualLatencyOffWallClock is the Sleeper-seam proof: two
// seconds of injected reply latency resolve on the virtual clock, so the
// call succeeds in a fraction of that wall time while the simulated clock
// records the delay. (The socket flavour of this scenario,
// TestChaosDeadlineBoundsSlowEndpoint, needed a deadline to escape the real
// two-second stall.)
func TestChaosSimVirtualLatencyOffWallClock(t *testing.T) {
	snet, _, ref := startSimFaultyPair(t, Options{
		Faults: &FaultPlan{Rules: []FaultRule{{LatencyMS: 2000}}},
	})
	start := time.Now()
	got, err := ref.Invoke("echo", idl.String("slow"))
	if err != nil {
		t.Fatalf("call through virtual latency failed: %v", err)
	}
	if got.Str != "slow" {
		t.Errorf("echo = %s", got)
	}
	if wall := time.Since(start); wall > time.Second {
		t.Errorf("virtual latency burned %v of wall time", wall)
	}
	if el := snet.Clock().Elapsed(); el < 2*time.Second {
		t.Errorf("virtual clock advanced only %v, want >= 2s", el)
	}
}

// TestChaosSimPartitionFailsFast proves a simnet partition both resets the
// live pooled connection (failing the in-flight/next call) and refuses new
// dials, then heals cleanly.
func TestChaosSimPartitionFailsFast(t *testing.T) {
	snet, client, ref := startSimFaultyPair(t, Options{})
	if _, err := ref.Invoke("echo", idl.String("warm")); err != nil {
		t.Fatal(err)
	}
	srvHost := simnet.HostOf(ref.IOR().Addr())
	cliHost := cliHostOf(client)
	snet.Partition(srvHost, cliHost)
	if _, err := ref.Invoke("echo", idl.String("x")); err == nil {
		t.Fatal("call across partition succeeded")
	}
	snet.Heal(srvHost, cliHost)
	if _, err := ref.Invoke("echo", idl.String("back")); err != nil {
		t.Fatalf("call after heal failed: %v", err)
	}
}

// cliHostOf recovers the simulated host of a client-only ORB (no listener,
// so no Addr) from the transport it was built with.
func cliHostOf(client *ORB) string {
	if ep, ok := client.transport.(*simnet.Endpoint); ok {
		return ep.Host()
	}
	return ""
}

// TestChaosSimSetFaultPlanAffectsPooledConn is the regression test for the
// runtime fault-plan swap: a plan installed by SetFaultPlan must govern
// connections already sitting in the pool, not just future dials. The first
// call pools a healthy connection; the swapped-in Drop rule must then
// swallow the next request frame on that same connection.
func TestChaosSimSetFaultPlanAffectsPooledConn(t *testing.T) {
	snet, client, ref := startSimFaultyPair(t, Options{
		CallTimeout: 60 * time.Millisecond,
	})
	if _, err := ref.Invoke("echo", idl.String("warm")); err != nil {
		t.Fatalf("warm-up call failed: %v", err)
	}
	dialsAfterWarmup := snet.Stats().Dials

	client.SetFaultPlan(&FaultPlan{Rules: []FaultRule{{Drop: 1}}})
	_, err := ref.Invoke("echo", idl.String("dropped"))
	se, ok := err.(*SystemException)
	if !ok || se.Name != ExcCommFailure || !strings.Contains(se.Detail, "timed out") {
		t.Fatalf("pooled connection ignored the swapped-in plan: %v", err)
	}
	if snet.Stats().Dials != dialsAfterWarmup {
		t.Errorf("call dialed a fresh connection (%d -> %d dials); the drop must hit the pooled one",
			dialsAfterWarmup, snet.Stats().Dials)
	}
	if n := client.Stats.FaultsInjected.Load(); n == 0 {
		t.Error("drop on pooled connection not counted")
	}

	// Swapping the plan out again restores service (the timed-out call
	// poisoned its connection, so this dials afresh).
	client.SetFaultPlan(nil)
	if _, err := ref.Invoke("echo", idl.String("healed")); err != nil {
		t.Fatalf("call after plan removal failed: %v", err)
	}

	// And a latency rule swapped onto the new pooled connection takes
	// effect too, on the virtual clock. The demux loop's in-progress Read
	// predates the swap, so the sleep lands on its next read cycle — poll
	// briefly for the virtual clock to show it.
	before := snet.Clock().Elapsed()
	client.SetFaultPlan(&FaultPlan{Rules: []FaultRule{{LatencyMS: 500}}})
	if _, err := ref.Invoke("echo", idl.String("slow")); err != nil {
		t.Fatalf("call under swapped-in latency failed: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for snet.Clock().Elapsed()-before < 500*time.Millisecond {
		if time.Now().After(deadline) {
			t.Fatalf("virtual clock advanced only %v, want >= 500ms of injected latency",
				snet.Clock().Elapsed()-before)
		}
		time.Sleep(time.Millisecond)
	}
}
