package orb

import (
	"strings"
	"testing"

	"repro/internal/idl"
)

// The chaos acceptance suite lives in chaos_sim_test.go, running over the
// deterministic in-memory transport (internal/simnet). This file keeps one
// socket-based smoke copy so the fault injector is still exercised against
// the real TCP stack.

// startFaultyPair boots a server and a client ORB with the given client
// options, both with colocation disabled so every call crosses the socket
// (the fault injector only covers the IIOP path).
func startFaultyPair(t *testing.T, clientOpts Options) (client *ORB, ref *ObjectRef) {
	t.Helper()
	server := New(Options{Product: Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Shutdown)
	ior, err := server.Activate("Echo", newEchoServant())
	if err != nil {
		t.Fatal(err)
	}
	clientOpts.DisableColocation = true
	if clientOpts.Product == "" {
		clientOpts.Product = VisiBroker
	}
	client = New(clientOpts)
	t.Cleanup(client.Shutdown)
	return client, client.Resolve(ior)
}

func TestChaosInjectedConnectFailure(t *testing.T) {
	client, ref := startFaultyPair(t, Options{
		Faults: &FaultPlan{Rules: []FaultRule{{FailConnect: 1}}},
	})
	_, err := ref.Invoke("echo", idl.String("x"))
	se, ok := err.(*SystemException)
	if !ok || se.Name != ExcCommFailure {
		t.Fatalf("want injected COMM_FAILURE, got %v", err)
	}
	if !strings.Contains(se.Detail, "injected connect failure") {
		t.Errorf("detail = %q", se.Detail)
	}
	if n := client.Stats.FaultsInjected.Load(); n == 0 {
		t.Error("FaultsInjected not counted")
	}
}
