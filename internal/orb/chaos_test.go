package orb

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/idl"
)

// startFaultyPair boots a server and a client ORB with the given client
// options, both with colocation disabled so every call crosses the socket
// (the fault injector only covers the IIOP path).
func startFaultyPair(t *testing.T, clientOpts Options) (client *ORB, ref *ObjectRef) {
	t.Helper()
	server := New(Options{Product: Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Shutdown)
	ior, err := server.Activate("Echo", newEchoServant())
	if err != nil {
		t.Fatal(err)
	}
	clientOpts.DisableColocation = true
	if clientOpts.Product == "" {
		clientOpts.Product = VisiBroker
	}
	client = New(clientOpts)
	t.Cleanup(client.Shutdown)
	return client, client.Resolve(ior)
}

func TestChaosInjectedConnectFailure(t *testing.T) {
	client, ref := startFaultyPair(t, Options{
		Faults: &FaultPlan{Rules: []FaultRule{{FailConnect: 1}}},
	})
	_, err := ref.Invoke("echo", idl.String("x"))
	se, ok := err.(*SystemException)
	if !ok || se.Name != ExcCommFailure {
		t.Fatalf("want injected COMM_FAILURE, got %v", err)
	}
	if !strings.Contains(se.Detail, "injected connect failure") {
		t.Errorf("detail = %q", se.Detail)
	}
	if n := client.Stats.FaultsInjected.Load(); n == 0 {
		t.Error("FaultsInjected not counted")
	}
}

// TestChaosRetryRecovers proves an endpoint that is dead for its first dials
// recovers transparently under the idempotent retry budget, and that
// non-idempotent calls never retry.
func TestChaosRetryRecovers(t *testing.T) {
	client, ref := startFaultyPair(t, Options{
		Faults: &FaultPlan{Rules: []FaultRule{{FailFirst: 2}}},
		Retry:  RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
	})
	got, err := ref.InvokeIdempotent(context.Background(), "echo", idl.String("retried"))
	if err != nil {
		t.Fatalf("idempotent call did not recover: %v", err)
	}
	if got.Str != "retried" {
		t.Errorf("echo = %s", got)
	}
	if n := client.Stats.Retries.Load(); n != 2 {
		t.Errorf("Retries = %d, want 2", n)
	}

	// A fresh plan kills the first dial again: the non-idempotent path must
	// surface the failure on its single attempt.
	client.SetFaultPlan(&FaultPlan{Rules: []FaultRule{{FailFirst: 1}}})
	client.pool.closeAll() // drop the live connection so the next call dials
	if _, err := ref.Invoke("echo", idl.String("x")); err == nil {
		t.Fatal("non-idempotent call retried through an injected dial failure")
	}
	if n := client.Stats.Retries.Load(); n != 2 {
		t.Errorf("non-idempotent call bumped Retries to %d", n)
	}
}

// TestChaosRetryAttemptsReported proves per-context CallStats counts every
// transport attempt of the retry sequence.
func TestChaosRetryAttemptsReported(t *testing.T) {
	_, ref := startFaultyPair(t, Options{
		Faults: &FaultPlan{Rules: []FaultRule{{FailFirst: 1}}},
		Retry:  RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
	})
	ctx, cs := WithCallStats(context.Background())
	if _, err := ref.InvokeIdempotent(ctx, "echo", idl.String("x")); err != nil {
		t.Fatal(err)
	}
	if n := cs.Attempts.Load(); n != 2 {
		t.Errorf("Attempts = %d, want 2 (one failed dial + one success)", n)
	}
}

// TestChaosBreakerLifecycle drives one endpoint's breaker through
// closed -> open (fail fast) -> half-open -> closed.
func TestChaosBreakerLifecycle(t *testing.T) {
	cooldown := 50 * time.Millisecond
	client, ref := startFaultyPair(t, Options{
		Faults:  &FaultPlan{Rules: []FaultRule{{FailConnect: 1}}},
		Breaker: BreakerPolicy{Threshold: 2, Cooldown: cooldown},
	})
	addr := ref.IOR().Addr()

	// Two transport failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := ref.Invoke("echo", idl.String("x")); err == nil {
			t.Fatal("expected injected failure")
		}
	}
	if trips := client.Stats.BreakerTrips.Load(); trips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", trips)
	}
	if st := client.BreakerSnapshot()[addr]; st.State != BreakerOpen {
		t.Fatalf("breaker state = %q, want open", st.State)
	}

	// While open the breaker fails fast: TRANSIENT, no dial reaches the
	// injector.
	faultsBefore := client.Stats.FaultsInjected.Load()
	_, err := ref.Invoke("echo", idl.String("x"))
	se, ok := err.(*SystemException)
	if !ok || se.Name != ExcTransient {
		t.Fatalf("open breaker returned %v, want TRANSIENT", err)
	}
	if n := client.Stats.BreakerRejects.Load(); n != 1 {
		t.Errorf("BreakerRejects = %d, want 1", n)
	}
	if client.Stats.FaultsInjected.Load() != faultsBefore {
		t.Error("open breaker still dialed the endpoint")
	}

	// Heal the endpoint, wait out the cooldown: the next call is the
	// half-open probe, closes the circuit, and subsequent calls flow.
	client.SetFaultPlan(nil)
	time.Sleep(cooldown + 10*time.Millisecond)
	if _, err := ref.Invoke("echo", idl.String("probe")); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if st := client.BreakerSnapshot()[addr]; st.State != BreakerClosed {
		t.Fatalf("breaker state after probe = %q, want closed", st.State)
	}
	if _, err := ref.Invoke("echo", idl.String("x")); err != nil {
		t.Fatalf("call after close failed: %v", err)
	}
}

// TestChaosHalfOpenProbeFailureReopens proves a failed half-open probe
// re-opens the circuit for a full cooldown.
func TestChaosHalfOpenProbeFailureReopens(t *testing.T) {
	cooldown := 30 * time.Millisecond
	client, ref := startFaultyPair(t, Options{
		Faults:  &FaultPlan{Rules: []FaultRule{{FailConnect: 1}}},
		Breaker: BreakerPolicy{Threshold: 1, Cooldown: cooldown},
	})
	addr := ref.IOR().Addr()
	if _, err := ref.Invoke("echo", idl.String("x")); err == nil {
		t.Fatal("expected injected failure")
	}
	time.Sleep(cooldown + 10*time.Millisecond)
	// Probe still faulted: breaker re-opens and trips again.
	if _, err := ref.Invoke("echo", idl.String("x")); err == nil {
		t.Fatal("expected probe failure")
	}
	if st := client.BreakerSnapshot()[addr]; st.State != BreakerOpen {
		t.Fatalf("breaker state = %q, want open after failed probe", st.State)
	}
	if trips := client.Stats.BreakerTrips.Load(); trips != 2 {
		t.Errorf("BreakerTrips = %d, want 2", trips)
	}
}

// TestChaosDeadlineBoundsSlowEndpoint proves a context deadline bounds a
// call to an endpoint with injected reply latency well below that latency.
func TestChaosDeadlineBoundsSlowEndpoint(t *testing.T) {
	_, ref := startFaultyPair(t, Options{
		Faults: &FaultPlan{Rules: []FaultRule{{LatencyMS: 2000}}},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ref.InvokeCtx(ctx, "echo", idl.String("slow"))
	elapsed := time.Since(start)
	se, ok := err.(*SystemException)
	if !ok || se.Name != ExcCommFailure {
		t.Fatalf("want COMM_FAILURE timeout, got %v", err)
	}
	if elapsed > time.Second {
		t.Errorf("slow endpoint held the caller %v despite an 80ms deadline", elapsed)
	}
}

// TestChaosDroppedRequestTimesOut proves a silently dropped request frame is
// recovered only through the caller's deadline, as with a lost datagram.
func TestChaosDroppedRequestTimesOut(t *testing.T) {
	client, ref := startFaultyPair(t, Options{
		Faults:      &FaultPlan{Rules: []FaultRule{{Drop: 1}}},
		CallTimeout: 60 * time.Millisecond,
	})
	_, err := ref.Invoke("echo", idl.String("dropped"))
	se, ok := err.(*SystemException)
	if !ok || se.Name != ExcCommFailure || !strings.Contains(se.Detail, "timed out") {
		t.Fatalf("want timeout COMM_FAILURE, got %v", err)
	}
	if n := client.Stats.FaultsInjected.Load(); n == 0 {
		t.Error("drop not counted as an injected fault")
	}
}
