package orb

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/giop"
	"repro/internal/idl"
)

// ObjectRef is a client-side reference to a remote (or colocated) object. It
// is the reproduction's equivalent of a CORBA stub: calls are marshalled to
// GIOP requests unless the target adapter lives in the same process, in
// which case dispatch is direct (the paper's in-process C++/JNI bridge
// analogue).
type ObjectRef struct {
	orb *ORB
	ior *IOR
}

// IOR returns the reference's IOR.
func (r *ObjectRef) IOR() *IOR { return r.ior }

// Invoke performs a synchronous request and returns the result value.
func (r *ObjectRef) Invoke(op string, args ...idl.Any) (idl.Any, error) {
	if target, ok := r.orb.colocatedTarget(r.ior.Addr()); ok {
		r.orb.Stats.ColocatedCalls.Add(1)
		return target.dispatch(r.ior.Key(), op, args)
	}
	r.orb.Stats.IIOPCalls.Add(1)
	return r.orb.pool.roundTrip(r.ior, op, args, true)
}

// InvokeOneway performs a fire-and-forget request (no reply is read).
func (r *ObjectRef) InvokeOneway(op string, args ...idl.Any) error {
	if target, ok := r.orb.colocatedTarget(r.ior.Addr()); ok {
		r.orb.Stats.ColocatedCalls.Add(1)
		_, err := target.dispatch(r.ior.Key(), op, args)
		return err
	}
	r.orb.Stats.IIOPCalls.Add(1)
	_, err := r.orb.pool.roundTrip(r.ior, op, args, false)
	return err
}

// Locate asks the target adapter whether the object exists, using a GIOP
// LocateRequest.
func (r *ObjectRef) Locate() (bool, error) {
	if target, ok := r.orb.colocatedTarget(r.ior.Addr()); ok {
		_, found := target.lookupServant(r.ior.Key())
		return found, nil
	}
	return r.orb.pool.locate(r.ior)
}

// clientConn is one pooled outbound IIOP connection.
type clientConn struct {
	nc     net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	nextID uint32
}

// connPool manages outbound connections keyed by endpoint. A connection is
// held exclusively for the duration of one request/reply exchange (GIOP 1.0
// style); concurrent calls to the same endpoint use additional connections.
type connPool struct {
	orb  *ORB
	mu   sync.Mutex
	idle map[string][]*clientConn
}

func newConnPool(o *ORB) *connPool {
	return &connPool{orb: o, idle: make(map[string][]*clientConn)}
}

func (p *connPool) get(addr string) (*clientConn, error) {
	p.mu.Lock()
	conns := p.idle[addr]
	if n := len(conns); n > 0 {
		c := conns[n-1]
		p.idle[addr] = conns[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, &SystemException{Name: ExcCommFailure, Detail: fmt.Sprintf("dial %s: %v", addr, err)}
	}
	return &clientConn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}, nil
}

func (p *connPool) put(addr string, c *clientConn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle[addr]) >= 8 {
		c.nc.Close()
		return
	}
	p.idle[addr] = append(p.idle[addr], c)
}

func (p *connPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for addr, conns := range p.idle {
		for _, c := range conns {
			c.nc.Close()
		}
		delete(p.idle, addr)
	}
}

// roundTrip sends one GIOP Request and (when expectReply) reads the Reply.
func (p *connPool) roundTrip(ior *IOR, op string, args []idl.Any, expectReply bool) (idl.Any, error) {
	addr := ior.Addr()
	c, err := p.get(addr)
	if err != nil {
		return idl.Null(), err
	}
	result, err := p.exchange(c, ior, op, args, expectReply)
	if err != nil {
		// Connection-level failures poison the conn; exceptions do not.
		if _, isUser := err.(*UserException); isUser {
			p.put(addr, c)
			return idl.Null(), err
		}
		if se, isSys := err.(*SystemException); isSys && se.Name != ExcCommFailure && se.Name != ExcMarshal {
			p.put(addr, c)
			return idl.Null(), err
		}
		c.nc.Close()
		return idl.Null(), err
	}
	p.put(addr, c)
	return result, nil
}

func (p *connPool) exchange(c *clientConn, ior *IOR, op string, args []idl.Any, expectReply bool) (idl.Any, error) {
	if d := p.orb.opts.CallTimeout; d > 0 {
		if err := c.nc.SetDeadline(time.Now().Add(d)); err == nil {
			defer c.nc.SetDeadline(time.Time{})
		}
	}
	c.nextID++
	reqID := c.nextID
	order := p.orb.wireOrder()
	e := giop.NewBodyEncoder(order)
	hdr := giop.RequestHeader{
		RequestID:        reqID,
		ResponseExpected: expectReply,
		ObjectKey:        ior.ObjectKey,
		Operation:        op,
		Principal:        []byte(p.orb.opts.Product),
	}
	hdr.Marshal(e)
	idl.MarshalAnys(e, args)
	msg := &giop.Message{Type: giop.MsgRequest, Order: order, Body: e.Bytes()}
	p.orb.Stats.BytesSent.Add(int64(len(msg.Body) + giop.HeaderSize))
	if err := giop.Write(c.bw, msg); err != nil {
		return idl.Null(), &SystemException{Name: ExcCommFailure, Detail: err.Error()}
	}
	if !expectReply {
		return idl.Null(), nil
	}

	reply, err := giop.Read(c.br)
	if err != nil {
		return idl.Null(), &SystemException{Name: ExcCommFailure, Detail: "read reply: " + err.Error()}
	}
	p.orb.Stats.BytesReceived.Add(int64(len(reply.Body) + giop.HeaderSize))
	if reply.Type == giop.MsgMessageError {
		return idl.Null(), &SystemException{Name: ExcCommFailure, Detail: "peer reported message error"}
	}
	if reply.Type != giop.MsgReply {
		return idl.Null(), &SystemException{Name: ExcCommFailure, Detail: "unexpected " + reply.Type.String()}
	}
	d := reply.BodyDecoder()
	rh, err := giop.UnmarshalReplyHeader(d)
	if err != nil {
		return idl.Null(), &SystemException{Name: ExcMarshal, Detail: err.Error()}
	}
	if rh.RequestID != reqID {
		return idl.Null(), &SystemException{Name: ExcCommFailure,
			Detail: fmt.Sprintf("reply id %d for request %d", rh.RequestID, reqID)}
	}
	switch rh.Status {
	case giop.ReplyNoException:
		result, err := idl.UnmarshalAny(d)
		if err != nil {
			return idl.Null(), &SystemException{Name: ExcMarshal, Detail: err.Error()}
		}
		return result, nil
	case giop.ReplyUserException:
		name, err1 := d.ReadString()
		message, err2 := d.ReadString()
		if err1 != nil || err2 != nil {
			return idl.Null(), &SystemException{Name: ExcMarshal, Detail: "bad user exception body"}
		}
		return idl.Null(), &UserException{Name: name, Message: message}
	case giop.ReplySystemException:
		name, err1 := d.ReadString()
		minor, err2 := d.ReadULong()
		detail, err3 := d.ReadString()
		if err1 != nil || err2 != nil || err3 != nil {
			return idl.Null(), &SystemException{Name: ExcMarshal, Detail: "bad system exception body"}
		}
		return idl.Null(), &SystemException{Name: name, Minor: minor, Detail: detail}
	default:
		return idl.Null(), &SystemException{Name: ExcCommFailure,
			Detail: "unsupported reply status " + rh.Status.String()}
	}
}

// locate performs a GIOP LocateRequest round trip.
func (p *connPool) locate(ior *IOR) (bool, error) {
	addr := ior.Addr()
	c, err := p.get(addr)
	if err != nil {
		return false, err
	}
	ok, err := p.locateOn(c, ior)
	if err != nil {
		c.nc.Close()
		return false, err
	}
	p.put(addr, c)
	return ok, nil
}

func (p *connPool) locateOn(c *clientConn, ior *IOR) (bool, error) {
	if d := p.orb.opts.CallTimeout; d > 0 {
		if err := c.nc.SetDeadline(time.Now().Add(d)); err == nil {
			defer c.nc.SetDeadline(time.Time{})
		}
	}
	c.nextID++
	order := p.orb.wireOrder()
	e := giop.NewBodyEncoder(order)
	(&giop.LocateRequestHeader{RequestID: c.nextID, ObjectKey: ior.ObjectKey}).Marshal(e)
	msg := &giop.Message{Type: giop.MsgLocateRequest, Order: order, Body: e.Bytes()}
	if err := giop.Write(c.bw, msg); err != nil {
		return false, &SystemException{Name: ExcCommFailure, Detail: err.Error()}
	}
	reply, err := giop.Read(c.br)
	if err != nil {
		return false, &SystemException{Name: ExcCommFailure, Detail: err.Error()}
	}
	if reply.Type != giop.MsgLocateReply {
		return false, &SystemException{Name: ExcCommFailure, Detail: "unexpected " + reply.Type.String()}
	}
	lr, err := giop.UnmarshalLocateReply(reply.BodyDecoder())
	if err != nil {
		return false, &SystemException{Name: ExcMarshal, Detail: err.Error()}
	}
	return lr.Status == giop.LocateObjectHere, nil
}
