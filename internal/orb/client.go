package orb

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/giop"
	"repro/internal/idl"
)

// ObjectRef is a client-side reference to a remote (or colocated) object. It
// is the reproduction's equivalent of a CORBA stub: calls are marshalled to
// GIOP requests unless the target adapter lives in the same process, in
// which case dispatch is direct (the paper's in-process C++/JNI bridge
// analogue). References are safe for concurrent use: concurrent Invokes to
// the same endpoint are pipelined over a shared multiplexed connection.
type ObjectRef struct {
	orb *ORB
	ior *IOR
}

// IOR returns the reference's IOR.
func (r *ObjectRef) IOR() *IOR { return r.ior }

// Invoke performs a synchronous request and returns the result value.
func (r *ObjectRef) Invoke(op string, args ...idl.Any) (idl.Any, error) {
	return r.invoke(context.Background(), op, args, true, false)
}

// InvokeCtx is Invoke with a caller context. The context reaches the client
// request interceptors (which propagate its trace parentage across the hop
// in a service context entry) and, on the colocated fast path, the servant.
// A context deadline bounds each transport exchange: the effective per-call
// timeout is the smaller of the remaining deadline and Options.CallTimeout.
func (r *ObjectRef) InvokeCtx(ctx context.Context, op string, args ...idl.Any) (idl.Any, error) {
	return r.invoke(ctx, op, args, true, false)
}

// InvokeIdempotent is InvokeCtx for operations that are safe to issue more
// than once (reads, probes). When Options.Retry allows, transport-class
// failures are retried transparently with exponential backoff and jitter;
// the per-invocation context still bounds the whole sequence.
func (r *ObjectRef) InvokeIdempotent(ctx context.Context, op string, args ...idl.Any) (idl.Any, error) {
	return r.invoke(ctx, op, args, true, true)
}

// InvokeOneway performs a fire-and-forget request (no reply is read).
func (r *ObjectRef) InvokeOneway(op string, args ...idl.Any) error {
	_, err := r.invoke(context.Background(), op, args, false, false)
	return err
}

// InvokeOnewayCtx is InvokeOneway with a caller context (see InvokeCtx).
func (r *ObjectRef) InvokeOnewayCtx(ctx context.Context, op string, args ...idl.Any) error {
	_, err := r.invoke(ctx, op, args, false, false)
	return err
}

// invoke is the shared invocation path. Client interceptors run around the
// whole logical invocation — SendRequest once (not per transparent retry),
// ReceiveReply once with the final outcome — and their service context
// entries travel in the GIOP request header (or are handed to the target
// adapter directly on the colocated fast path, so a colocated hop is
// observationally identical to a socket hop).
func (r *ObjectRef) invoke(ctx context.Context, op string, args []idl.Any, expectReply, idempotent bool) (idl.Any, error) {
	o := r.orb
	target, colocated := o.colocatedTarget(r.ior.Addr())
	cis := o.clientInterceptors()
	var ri *ClientRequestInfo
	var svcCtxs []giop.ServiceContext
	if len(cis) > 0 {
		ri = &ClientRequestInfo{
			Ctx:       ctx,
			Operation: op,
			ObjectKey: r.ior.ObjectKey,
			Addr:      r.ior.Addr(),
			Colocated: colocated,
			Oneway:    !expectReply,
		}
		for _, ci := range cis {
			ci.SendRequest(ri)
		}
		ctx = ri.Ctx
		svcCtxs = ri.ServiceContexts
	}

	var result idl.Any
	var err error
	if colocated {
		o.Stats.ColocatedCalls.Add(1)
		if cs := callStatsFrom(ctx); cs != nil {
			cs.Attempts.Add(1)
		}
		result, err = target.dispatchIncoming(ctx, r.ior.Key(), op, args, svcCtxs, "colocated")
	} else {
		o.Stats.IIOPCalls.Add(1)
		result, err = o.callRemote(ctx, r.ior, op, args, expectReply, svcCtxs, idempotent)
	}
	for i := len(cis) - 1; i >= 0; i-- {
		cis[i].ReceiveReply(ri, err)
	}
	return result, err
}

// CallStats accumulates per-call transport telemetry for every invocation
// issued under one context (see WithCallStats). The query layer uses it to
// report how many attempts a coalition member's sub-query cost.
type CallStats struct {
	// Attempts counts transport attempts (dials/exchanges, colocated
	// dispatches included); retries and breaker rejections each add one.
	Attempts atomic.Int32
}

type callStatsKey struct{}

// WithCallStats derives a context whose ORB invocations record into the
// returned CallStats.
func WithCallStats(ctx context.Context) (context.Context, *CallStats) {
	cs := &CallStats{}
	return context.WithValue(ctx, callStatsKey{}, cs), cs
}

func callStatsFrom(ctx context.Context) *CallStats {
	cs, _ := ctx.Value(callStatsKey{}).(*CallStats)
	return cs
}

// retryable reports whether an error is transport-class (the endpoint may
// simply be flaky or restarting) as opposed to an application or protocol
// outcome that would recur identically.
func retryable(err error) bool {
	se, ok := err.(*SystemException)
	return ok && se.Name == ExcCommFailure
}

// isTransportFailure classifies an outcome for the circuit breaker: only
// COMM_FAILURE counts against an endpoint's health.
func isTransportFailure(err error) bool {
	if err == nil {
		return false
	}
	se, ok := err.(*SystemException)
	return ok && se.Name == ExcCommFailure
}

// callRemote drives one logical socket invocation through the breaker and
// retry machinery. Non-idempotent calls make exactly one transport attempt;
// idempotent ones retry transport-class failures up to Options.Retry's
// budget with exponential backoff and full jitter. The breaker is consulted
// before every attempt and fed the outcome of every attempt that reached
// the wire.
func (o *ORB) callRemote(ctx context.Context, ior *IOR, op string, args []idl.Any, expectReply bool, svcCtxs []giop.ServiceContext, idempotent bool) (idl.Any, error) {
	addr := ior.Addr()
	cs := callStatsFrom(ctx)
	policy := o.opts.Retry.withDefaults()
	maxAttempts := 1
	if idempotent && expectReply && o.opts.Retry.MaxAttempts > 1 {
		maxAttempts = o.opts.Retry.MaxAttempts
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			o.Stats.Retries.Add(1)
			if err := sleepBackoff(ctx, policy, attempt); err != nil {
				break // context ended while backing off
			}
		}
		if err := ctx.Err(); err != nil {
			lastErr = &SystemException{Name: ExcCommFailure, Detail: "context: " + err.Error()}
			break
		}
		if cs != nil {
			cs.Attempts.Add(1)
		}
		if o.breakers != nil {
			if err := o.breakers.allow(addr); err != nil {
				// Failed fast without touching the endpoint; a later attempt
				// may land on the half-open probe, so keep retrying.
				lastErr = err
				continue
			}
		}
		result, err := o.pool.roundTrip(ctx, ior, op, args, expectReply, svcCtxs)
		if o.breakers != nil {
			o.breakers.record(addr, isTransportFailure(err))
		}
		if err == nil {
			return result, nil
		}
		lastErr = err
		if !retryable(err) {
			break
		}
	}
	return idl.Null(), lastErr
}

// sleepBackoff waits out the exponential-backoff window before retry attempt
// n (full jitter: uniform in (0, window]), or returns early when ctx ends.
func sleepBackoff(ctx context.Context, policy RetryPolicy, attempt int) error {
	window := policy.BaseBackoff << (attempt - 1)
	if window > policy.MaxBackoff || window <= 0 {
		window = policy.MaxBackoff
	}
	d := time.Duration(rand.Int63n(int64(window))) + 1
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Locate asks the target adapter whether the object exists, using a GIOP
// LocateRequest.
func (r *ObjectRef) Locate() (bool, error) {
	if target, ok := r.orb.colocatedTarget(r.ior.Addr()); ok {
		_, found := target.lookupServant(r.ior.Key())
		return found, nil
	}
	return r.orb.pool.locate(context.Background(), r.ior)
}

// maxPipelinePerConn is the in-flight depth at which the pool prefers
// opening another connection (up to Options.MaxIdlePerHost) over deepening
// the pipeline on an existing one.
const maxPipelinePerConn = 64

// demuxedReply is what the demux read loop hands to a waiting caller: a
// parsed Reply (rh + d) or LocateReply (lr), or the connection-level error
// that killed the call.
type demuxedReply struct {
	rh  *giop.ReplyHeader
	lr  *giop.LocateReplyHeader
	d   *cdr.Decoder  // positioned just past the reply header
	msg *giop.Message // pooled message backing d; released after decode
	err error
}

// release returns the pooled message (which backs r.d) for reuse. Call it
// only after everything needed from the reply body has been decoded.
func (r *demuxedReply) release() {
	if r != nil && r.msg != nil {
		r.msg.Release()
		r.msg = nil
	}
}

// muxConn is one multiplexed outbound IIOP connection. Many concurrent
// requests share it: each caller registers a reply channel under its GIOP
// request ID, writes its frame through the serialized writer, and a single
// demux goroutine routes every incoming Reply/LocateReply to the waiting
// caller by ID. A connection-level failure (read/write error, timeout,
// protocol violation, server close) poisons the connection: every request
// still in flight fails with a typed COMM_FAILURE and the connection leaves
// the pool.
type muxConn struct {
	pool *connPool
	addr string
	nc   net.Conn
	w    *giop.SyncWriter

	nextID atomic.Uint32

	mu      sync.Mutex
	pending map[uint32]chan *demuxedReply
	dead    error // set once, before the pending map is flushed
}

// errConnPoisoned marks a register attempt on a connection that died before
// the request was written; roundTrip retries once on a fresh connection.
type errConnPoisoned struct{ cause error }

func (e *errConnPoisoned) Error() string { return e.cause.Error() }

// register installs a reply channel for a request ID. It fails if the
// connection is already dead (nothing was sent, so the call is retryable).
func (c *muxConn) register(id uint32) (chan *demuxedReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return nil, &errConnPoisoned{cause: c.dead}
	}
	ch := make(chan *demuxedReply, 1)
	c.pending[id] = ch
	return ch, nil
}

// deliver routes one demuxed reply to its waiting caller; replies without a
// waiter (e.g. for a request the server invented) are dropped, which is safe
// because every abandoned wait poisons the whole connection first.
func (c *muxConn) deliver(id uint32, r *demuxedReply) {
	c.mu.Lock()
	ch := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if ch != nil {
		ch <- r
	} else {
		r.release() // no waiter: the reply is dropped, recycle its buffer
	}
}

// fail poisons the connection: it leaves the pool, the socket closes, and
// every in-flight request receives err. Idempotent.
func (c *muxConn) fail(err error) {
	c.mu.Lock()
	if c.dead != nil {
		c.mu.Unlock()
		return
	}
	c.dead = err
	pend := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.pool.remove(c)
	c.w.Close()
	c.nc.Close()
	for _, ch := range pend {
		ch <- &demuxedReply{err: err}
	}
}

// load reports the number of requests in flight, used for least-loaded
// connection selection.
func (c *muxConn) load() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// send writes one framed message, accounting wire stats.
func (c *muxConn) send(msg *giop.Message) error {
	c.pool.orb.Stats.BytesSent.Add(int64(len(msg.Body) + giop.HeaderSize))
	if err := c.w.Write(msg); err != nil {
		return &SystemException{Name: ExcCommFailure, Detail: err.Error()}
	}
	return nil
}

// sendRequest writes one GIOP Request, fragmenting bodies above
// Options.FragmentThreshold; hdrLen is the encoded request-header length,
// which must stay whole in the initial frame.
func (c *muxConn) sendRequest(reqID uint32, msg *giop.Message, hdrLen int) error {
	stats := &c.pool.orb.Stats
	frames, err := giop.WriteFragmented(c.w, msg, reqID, c.pool.orb.opts.FragmentThreshold, hdrLen)
	if frames > 1 {
		stats.FragmentsSent.Add(int64(frames - 1))
	}
	stats.BytesSent.Add(int64(len(msg.Body) + frames*giop.HeaderSize + (frames-1)*4))
	if err != nil {
		return &SystemException{Name: ExcCommFailure, Detail: err.Error()}
	}
	return nil
}

// handleReply routes one complete (possibly reassembled) Reply message to
// its waiting caller. It reports whether the connection is still usable; on
// false it has already been poisoned.
func (c *muxConn) handleReply(msg *giop.Message) bool {
	d := msg.BodyDecoder()
	rh, err := giop.UnmarshalReplyHeader(d)
	if err != nil {
		// An unroutable reply leaves callers unmatchable: poison.
		msg.Release()
		c.fail(&SystemException{Name: ExcMarshal, Detail: "reply header: " + err.Error()})
		return false
	}
	// The message travels with the reply: the waiting caller still
	// has to decode the result out of its body, and releases it then.
	c.deliver(rh.RequestID, &demuxedReply{rh: rh, d: d, msg: msg})
	return true
}

// readLoop is the demux goroutine: it reads framed messages until the
// connection dies and routes replies to waiting callers by request ID.
// Fragmented replies reassemble here before delivery; the pending cap
// mirrors the pipelining depth, so a confused peer cannot hold more partial
// replies open than the caller could have requests in flight.
func (c *muxConn) readLoop(br *bufio.Reader) {
	stats := &c.pool.orb.Stats
	ra := giop.NewReassembler(maxPipelinePerConn)
	for {
		msg, err := giop.Read(br)
		if err != nil {
			c.fail(&SystemException{Name: ExcCommFailure, Detail: "read reply: " + err.Error()})
			return
		}
		stats.BytesReceived.Add(int64(len(msg.Body) + giop.HeaderSize))
		switch msg.Type {
		case giop.MsgReply:
			if msg.More {
				// Initial frame of a fragmented reply: key the reassembly by
				// the request ID in its (whole, by contract) reply header.
				rh, err := giop.UnmarshalReplyHeader(msg.BodyDecoder())
				if err == nil {
					err = ra.Begin(rh.RequestID, msg)
				}
				msg.Release()
				if err != nil {
					c.fail(&SystemException{Name: ExcMarshal, Detail: "fragmented reply: " + err.Error()})
					return
				}
				continue
			}
			if !c.handleReply(msg) {
				return
			}
		case giop.MsgFragment:
			out, err := ra.Fragment(msg)
			msg.Release()
			if err != nil {
				c.fail(&SystemException{Name: ExcMarshal, Detail: "fragment: " + err.Error()})
				return
			}
			stats.FragmentsReassembled.Add(1)
			if out == nil {
				continue // more fragments expected
			}
			if out.Type != giop.MsgReply {
				c.fail(&SystemException{Name: ExcCommFailure, Detail: "fragmented " + out.Type.String()})
				return
			}
			if !c.handleReply(out) {
				return
			}
		case giop.MsgLocateReply:
			lr, err := giop.UnmarshalLocateReply(msg.BodyDecoder())
			msg.Release() // the locate header is fully copied out
			if err != nil {
				c.fail(&SystemException{Name: ExcMarshal, Detail: "locate reply: " + err.Error()})
				return
			}
			c.deliver(lr.RequestID, &demuxedReply{lr: lr})
		case giop.MsgCloseConnection:
			msg.Release()
			c.fail(&SystemException{Name: ExcCommFailure, Detail: "server closed connection"})
			return
		case giop.MsgMessageError:
			msg.Release()
			c.fail(&SystemException{Name: ExcCommFailure, Detail: "peer reported message error"})
			return
		default:
			t := msg.Type
			msg.Release()
			c.fail(&SystemException{Name: ExcCommFailure, Detail: "unexpected " + t.String()})
			return
		}
	}
}

// call sends one request frame and, when expectReply, waits for its demuxed
// reply, bounding the wait by timeout (0 = unbounded). A timeout or write
// failure poisons the connection, preserving GIOP 1.0 semantics where a
// broken exchange leaves the stream unusable.
func (c *muxConn) call(reqID uint32, msg *giop.Message, hdrLen int, expectReply bool, timeout time.Duration) (*demuxedReply, error) {
	send := func() error {
		if msg.Type == giop.MsgRequest {
			return c.sendRequest(reqID, msg, hdrLen)
		}
		return c.send(msg)
	}
	if !expectReply {
		if err := send(); err != nil {
			c.fail(err)
			return nil, err
		}
		return nil, nil
	}
	ch, err := c.register(reqID)
	if err != nil {
		return nil, err
	}
	stats := &c.pool.orb.Stats
	stats.noteInFlight()
	defer stats.InFlight.Add(-1)
	if err := send(); err != nil {
		c.fail(err)
		<-ch // fail delivered the error; drain our channel
		return nil, err
	}
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case r := <-ch:
			return r, r.err
		case <-t.C:
			c.fail(&SystemException{Name: ExcCommFailure,
				Detail: fmt.Sprintf("call timed out after %v", timeout)})
			return drainTimedOut(ch)
		}
	}
	r := <-ch
	return r, r.err
}

// drainTimedOut resolves a timed-out call from its reply channel. Usually
// fail has flushed the channel with the timeout error, but the real reply
// may have raced the timer into deliver first — deliver removes the pending
// entry before fail can flush it, so the drained reply has err == nil. That
// reply is returned as a (late) success; returning (nil, nil) would panic
// the decode path.
func drainTimedOut(ch chan *demuxedReply) (*demuxedReply, error) {
	r := <-ch
	if r.err == nil {
		return r, nil
	}
	return nil, r.err
}

// connPool manages outbound multiplexed connections keyed by endpoint. One
// connection serves many concurrent request/reply exchanges (replies are
// matched by GIOP request ID); additional connections — at most
// Options.MaxIdlePerHost — are only opened when every existing connection
// already has maxPipelinePerConn requests in flight.
type connPool struct {
	orb   *ORB
	mu    sync.Mutex
	conns map[string][]*muxConn
}

func newConnPool(o *ORB) *connPool {
	return &connPool{orb: o, conns: make(map[string][]*muxConn)}
}

// get returns the least-loaded live connection to addr, dialing a new one
// when none exists or all are pipeline-saturated below the per-host cap.
func (p *connPool) get(addr string) (*muxConn, error) {
	p.mu.Lock()
	if c := p.pick(addr); c != nil {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()

	inj := p.orb.injector()
	if inj != nil {
		if err := inj.dialFault(addr); err != nil {
			return nil, err
		}
	}
	nc, err := p.orb.transport.DialTimeout(addr, p.orb.opts.DialTimeout)
	if err != nil {
		return nil, &SystemException{Name: ExcCommFailure, Detail: fmt.Sprintf("dial %s: %v", addr, err)}
	}
	// Every connection is wrapped so a FaultPlan installed later (SetFaultPlan
	// at runtime) applies to connections already in the pool; with no active
	// plan the wrapper is one atomic load per read/write.
	nc = &faultConn{Conn: nc, orb: p.orb, addr: addr}
	c := &muxConn{
		pool:    p,
		addr:    addr,
		nc:      nc,
		pending: make(map[uint32]chan *demuxedReply),
	}
	// An asynchronous flush failure loses frames whose callers already
	// returned from Write, so it must poison the whole connection.
	c.w = giop.NewSyncWriter(bufio.NewWriter(nc), func(err error) {
		c.fail(&SystemException{Name: ExcCommFailure, Detail: "write: " + err.Error()})
	})
	p.mu.Lock()
	// Another caller may have dialed concurrently (a cold pool makes every
	// simultaneous first call dial). Prefer an existing unsaturated
	// connection and discard ours: concentrating callers on few connections
	// is what makes the pipelining pay, and it keeps the pool within the
	// per-host cap.
	if existing := p.pick(addr); existing != nil {
		p.mu.Unlock()
		c.w.Close() // stop the flusher goroutine, not just the socket
		nc.Close()
		return existing, nil
	}
	p.conns[addr] = append(p.conns[addr], c)
	p.mu.Unlock()
	go c.readLoop(bufio.NewReader(nc))
	return c, nil
}

// pick returns the least-loaded connection to addr unless a new one should
// be dialed (all saturated and below cap). Caller holds p.mu.
func (p *connPool) pick(addr string) *muxConn {
	conns := p.conns[addr]
	if len(conns) == 0 {
		return nil
	}
	best := conns[0]
	bestLoad := best.load()
	for _, c := range conns[1:] {
		if l := c.load(); l < bestLoad {
			best, bestLoad = c, l
		}
	}
	if bestLoad >= maxPipelinePerConn && len(conns) < p.orb.opts.MaxIdlePerHost {
		return nil // saturated: ask the caller to dial another
	}
	return best
}

// remove drops a poisoned connection from the pool.
func (p *connPool) remove(c *muxConn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	conns := p.conns[c.addr]
	for i, x := range conns {
		if x == c {
			p.conns[c.addr] = append(conns[:i], conns[i+1:]...)
			return
		}
	}
}

// closeAll poisons every connection (client-side shutdown); in-flight
// requests fail with COMM_FAILURE.
func (p *connPool) closeAll() {
	p.mu.Lock()
	var all []*muxConn
	for addr, conns := range p.conns {
		all = append(all, conns...)
		delete(p.conns, addr)
	}
	p.mu.Unlock()
	for _, c := range all {
		c.fail(&SystemException{Name: ExcCommFailure, Detail: "orb client shutdown"})
	}
}

// callDeadline computes the per-exchange timeout: the smaller of the
// configured CallTimeout and the context deadline's remaining budget. An
// already-expired deadline yields a tiny positive timeout so the exchange
// fails fast through the normal timeout path instead of hanging.
func (p *connPool) callDeadline(ctx context.Context) time.Duration {
	timeout := p.orb.opts.CallTimeout
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			remaining = time.Nanosecond
		}
		if timeout <= 0 || remaining < timeout {
			timeout = remaining
		}
	}
	return timeout
}

// roundTrip sends one GIOP Request and (when expectReply) awaits the Reply.
// If the chosen connection was poisoned before the request could be written,
// it retries once on a fresh connection. svcCtxs are the service context
// entries (interceptor-added) carried in the request header. The context
// deadline, when tighter than Options.CallTimeout, bounds the exchange.
func (p *connPool) roundTrip(ctx context.Context, ior *IOR, op string, args []idl.Any, expectReply bool, svcCtxs []giop.ServiceContext) (idl.Any, error) {
	addr := ior.Addr()
	order := p.orb.wireOrder()
	for attempt := 0; ; attempt++ {
		c, err := p.get(addr)
		if err != nil {
			return idl.Null(), err
		}
		reqID := c.nextID.Add(1)
		e := giop.AcquireBodyEncoder(order)
		(&giop.RequestHeader{
			ServiceContext:   svcCtxs,
			RequestID:        reqID,
			ResponseExpected: expectReply,
			ObjectKey:        ior.ObjectKey,
			Operation:        op,
			Principal:        []byte(p.orb.opts.Product),
		}).Marshal(e)
		hdrLen := e.Len()
		idl.MarshalAnys(e, args)
		msg := &giop.Message{Type: giop.MsgRequest, Order: order, Body: e.Bytes()}
		r, err := c.call(reqID, msg, hdrLen, expectReply, p.callDeadline(ctx))
		// call has either copied the frame into the connection's buffered
		// writer or failed; the encoder's scratch buffer is free either way.
		giop.ReleaseBodyEncoder(e)
		if err != nil {
			if pe, poisoned := err.(*errConnPoisoned); poisoned {
				if attempt == 0 {
					continue // nothing was sent; retry on a fresh connection
				}
				err = pe.cause // keep the typed *SystemException contract
			}
			return idl.Null(), err
		}
		if !expectReply {
			return idl.Null(), nil
		}
		result, err := decodeReply(r)
		r.release()
		return result, err
	}
}

// decodeReply turns a demuxed Reply into a result value or a typed error.
func decodeReply(r *demuxedReply) (idl.Any, error) {
	if r.rh == nil {
		return idl.Null(), &SystemException{Name: ExcCommFailure, Detail: "request answered by a non-request reply"}
	}
	d := r.d
	switch r.rh.Status {
	case giop.ReplyNoException:
		result, err := idl.UnmarshalAny(d)
		if err != nil {
			return idl.Null(), &SystemException{Name: ExcMarshal, Detail: err.Error()}
		}
		return result, nil
	case giop.ReplyUserException:
		name, err1 := d.ReadString()
		message, err2 := d.ReadString()
		if err1 != nil || err2 != nil {
			return idl.Null(), &SystemException{Name: ExcMarshal, Detail: "bad user exception body"}
		}
		return idl.Null(), &UserException{Name: name, Message: message}
	case giop.ReplySystemException:
		name, err1 := d.ReadString()
		minor, err2 := d.ReadULong()
		detail, err3 := d.ReadString()
		if err1 != nil || err2 != nil || err3 != nil {
			return idl.Null(), &SystemException{Name: ExcMarshal, Detail: "bad system exception body"}
		}
		return idl.Null(), &SystemException{Name: name, Minor: minor, Detail: detail}
	default:
		return idl.Null(), &SystemException{Name: ExcCommFailure,
			Detail: "unsupported reply status " + r.rh.Status.String()}
	}
}

// locate performs a GIOP LocateRequest round trip over the same multiplexed
// connection invocations use; wire stats are accounted like any other call.
func (p *connPool) locate(ctx context.Context, ior *IOR) (bool, error) {
	addr := ior.Addr()
	order := p.orb.wireOrder()
	for attempt := 0; ; attempt++ {
		c, err := p.get(addr)
		if err != nil {
			return false, err
		}
		reqID := c.nextID.Add(1)
		e := giop.AcquireBodyEncoder(order)
		(&giop.LocateRequestHeader{RequestID: reqID, ObjectKey: ior.ObjectKey}).Marshal(e)
		msg := &giop.Message{Type: giop.MsgLocateRequest, Order: order, Body: e.Bytes()}
		r, err := c.call(reqID, msg, 0, true, p.callDeadline(ctx))
		giop.ReleaseBodyEncoder(e)
		if err != nil {
			if pe, poisoned := err.(*errConnPoisoned); poisoned {
				if attempt == 0 {
					continue
				}
				err = pe.cause // keep the typed *SystemException contract
			}
			return false, err
		}
		if r.lr == nil {
			return false, &SystemException{Name: ExcCommFailure, Detail: "request answered by a non-locate reply"}
		}
		return r.lr.Status == giop.LocateObjectHere, nil
	}
}
