package orb

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// FaultPlan describes transport faults to inject on this ORB's client-side
// IIOP path: failed dials, added reply latency, silently dropped request
// frames, and mid-stream connection resets. Injection is deterministic for a
// given seed and call sequence, so chaos tests are reproducible. A plan only
// affects socket invocations; the colocated fast path bypasses the transport
// and therefore the plan.
//
// Plans are JSON-serialisable so a node process can load one from its config
// file or a -chaos flag.
type FaultPlan struct {
	// Seed feeds the plan's private PRNG. Zero selects seed 1, keeping the
	// zero value deterministic too.
	Seed int64 `json:"seed"`
	// Rules are matched in order against the endpoint being contacted; the
	// first matching rule applies. An Addr of "" matches every endpoint.
	Rules []FaultRule `json:"rules"`
}

// FaultRule is the faults injected for one endpoint.
type FaultRule struct {
	// Addr is the exact "host:port" the rule applies to; "" matches all.
	Addr string `json:"addr"`
	// FailFirst fails this many dials to the endpoint before letting one
	// through — deterministic, independent of the PRNG. Tests use it to
	// exercise retry ("dead for the first N attempts, then recovers").
	FailFirst int `json:"fail_first"`
	// FailConnect is the probability (0..1) that a dial fails outright,
	// applied after FailFirst is exhausted. 1 makes the endpoint unreachable.
	FailConnect float64 `json:"fail_connect"`
	// LatencyMS is added to every read from the endpoint, delaying replies
	// (a slow or congested member). Milliseconds, for JSON friendliness.
	LatencyMS int `json:"latency_ms"`
	// Drop is the probability that an outbound request frame is silently
	// swallowed — the classic lost-datagram failure; the caller only recovers
	// through its deadline.
	Drop float64 `json:"drop"`
	// Reset is the probability that the connection is torn down (RST-style)
	// just before an outbound frame is written.
	Reset float64 `json:"reset"`
}

// rule returns the first rule matching addr, or nil.
func (p *FaultPlan) rule(addr string) *FaultRule {
	for i := range p.Rules {
		if p.Rules[i].Addr == "" || p.Rules[i].Addr == addr {
			return &p.Rules[i]
		}
	}
	return nil
}

// faultInjector applies a FaultPlan. The PRNG and the per-endpoint dial
// counters sit behind one mutex; the injected sleep happens outside it.
type faultInjector struct {
	injected *Stats // FaultsInjected counter lives here

	mu    sync.Mutex
	rng   *rand.Rand
	plan  FaultPlan
	dials map[string]int
}

func newFaultInjector(plan FaultPlan, stats *Stats) *faultInjector {
	seed := plan.Seed
	if seed == 0 {
		seed = 1
	}
	return &faultInjector{
		injected: stats,
		rng:      rand.New(rand.NewSource(seed)),
		plan:     plan,
		dials:    make(map[string]int),
	}
}

// roll draws one Bernoulli sample under the injector's seeded PRNG.
func (fi *faultInjector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.rng.Float64() < p
}

// dialFault decides whether the next dial to addr fails, returning the
// injected error or nil.
func (fi *faultInjector) dialFault(addr string) error {
	r := fi.plan.rule(addr)
	if r == nil {
		return nil
	}
	fi.mu.Lock()
	n := fi.dials[addr]
	fi.dials[addr] = n + 1
	failFirst := n < r.FailFirst
	var failProb bool
	if !failFirst && r.FailConnect > 0 {
		failProb = r.FailConnect >= 1 || fi.rng.Float64() < r.FailConnect
	}
	fi.mu.Unlock()
	if failFirst || failProb {
		fi.injected.FaultsInjected.Add(1)
		return &SystemException{Name: ExcCommFailure,
			Detail: fmt.Sprintf("dial %s: injected connect failure", addr)}
	}
	return nil
}

// faultConn injects per-frame faults around a live net.Conn. Latency is
// applied on the read path (delaying replies) rather than the write path, so
// a slow endpoint stalls only its own demux loop — the caller's deadline
// still bounds the wait, and writers to other endpoints are unaffected.
//
// The wrapper looks up the ORB's *current* injector and rule on every read
// and write rather than capturing them at dial time, so a plan swapped in by
// SetFaultPlan reaches connections already sitting in the pool. The plan of
// a live injector is immutable (only the PRNG and dial counters mutate,
// behind the injector's mutex), so the lock-free rule lookup is safe.
// Latency sleeps on the ORB's clock, which a virtual-time transport
// (orb.Sleeper, implemented by internal/simnet) redirects off the wall.
type faultConn struct {
	net.Conn
	orb  *ORB
	addr string
}

// activeRule returns the injector and rule currently governing this
// connection, or nil when no plan matches its endpoint.
func (c *faultConn) activeRule() (*faultInjector, *FaultRule) {
	fi := c.orb.injector()
	if fi == nil {
		return nil, nil
	}
	r := fi.plan.rule(c.addr)
	if r == nil {
		return nil, nil
	}
	return fi, r
}

func (c *faultConn) Read(p []byte) (int, error) {
	if _, r := c.activeRule(); r != nil && r.LatencyMS > 0 {
		c.orb.sleep(time.Duration(r.LatencyMS) * time.Millisecond)
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if fi, r := c.activeRule(); fi != nil {
		if fi.roll(r.Reset) {
			fi.injected.FaultsInjected.Add(1)
			c.Conn.Close()
			return 0, fmt.Errorf("injected connection reset")
		}
		if fi.roll(r.Drop) {
			fi.injected.FaultsInjected.Add(1)
			return len(p), nil // frame swallowed; the caller's deadline recovers
		}
	}
	return c.Conn.Write(p)
}
