package orb

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/idl"
)

// startFragPair boots a server/client ORB pair whose wire fragments any body
// above threshold bytes.
func startFragPair(t *testing.T, threshold int) (client *ORB, ref *ObjectRef) {
	t.Helper()
	server := New(Options{Product: Orbix, DisableColocation: true, FragmentThreshold: threshold})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Shutdown)
	ior, err := server.Activate("Echo", newEchoServant())
	if err != nil {
		t.Fatal(err)
	}
	client = New(Options{Product: VisiBroker, DisableColocation: true, FragmentThreshold: threshold})
	t.Cleanup(client.Shutdown)
	return client, client.Resolve(ior)
}

// TestFragmentedRoundTrip pushes a payload far above the threshold both ways
// (big request argument, big echoed reply) and checks it survives the
// fragmented wire intact, with fragment counters moving on both sides.
func TestFragmentedRoundTrip(t *testing.T) {
	client, ref := startFragPair(t, 512)
	payload := strings.Repeat("webfindit/", 2000) // ~20 KB, ~40 fragments each way
	got, err := ref.Invoke("echo", idl.String(payload))
	if err != nil {
		t.Fatal(err)
	}
	if got.Str != payload {
		t.Fatalf("fragmented echo corrupted: %d bytes back, want %d", len(got.Str), len(payload))
	}
	if n := client.Stats.FragmentsSent.Load(); n == 0 {
		t.Error("client sent no fragments for an oversized request")
	}
	if n := client.Stats.FragmentsReassembled.Load(); n == 0 {
		t.Error("client reassembled no fragments for an oversized reply")
	}
}

// TestFragmentedInterleavedCalls runs many concurrent calls, large and
// small, over the shared mux with an aggressive threshold: every large reply
// is fragmented, and the demux must route interleaved fragments of different
// request IDs without mixing them up.
func TestFragmentedInterleavedCalls(t *testing.T) {
	_, ref := startFragPair(t, 256)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var payload string
			if i%2 == 0 {
				payload = strings.Repeat(string(rune('a'+i%26)), 4000+i*37)
			} else {
				payload = "small"
			}
			got, err := ref.InvokeCtx(context.Background(), "echo", idl.String(payload))
			if err != nil {
				errs <- err
				return
			}
			if got.Str != payload {
				errs <- &SystemException{Name: ExcMarshal,
					Detail: "interleaved fragmented reply corrupted"}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFragmentationDisabled verifies a negative threshold keeps every
// message a single frame (GIOP 1.0 behaviour).
func TestFragmentationDisabled(t *testing.T) {
	client, ref := startFragPair(t, -1)
	payload := strings.Repeat("x", 100_000)
	got, err := ref.Invoke("echo", idl.String(payload))
	if err != nil || got.Str != payload {
		t.Fatalf("echo with fragmentation disabled: %v", err)
	}
	if n := client.Stats.FragmentsSent.Load(); n != 0 {
		t.Errorf("fragments sent with fragmentation disabled: %d", n)
	}
	if n := client.Stats.FragmentsReassembled.Load(); n != 0 {
		t.Errorf("fragments reassembled with fragmentation disabled: %d", n)
	}
}

// TestFragmentedExceptionReply exercises fragmentation of non-NoException
// replies: a user exception whose message exceeds the threshold.
func TestFragmentedExceptionReply(t *testing.T) {
	server := New(Options{Product: Orbix, DisableColocation: true, FragmentThreshold: 128})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Shutdown)
	h := NewHandler(echoIDL)
	h.On("fail", func(args []idl.Any) (idl.Any, error) {
		return idl.Null(), &UserException{Name: "Big", Message: strings.Repeat("why ", 1000)}
	})
	ior, err := server.Activate("Echo", h)
	if err != nil {
		t.Fatal(err)
	}
	client := New(Options{Product: VisiBroker, DisableColocation: true, FragmentThreshold: 128})
	t.Cleanup(client.Shutdown)
	_, err = client.Resolve(ior).Invoke("fail", idl.String("user"))
	ue, ok := err.(*UserException)
	if !ok {
		t.Fatalf("err = %T %v, want *UserException", err, err)
	}
	if ue.Name != "Big" || len(ue.Message) != 4000 {
		t.Errorf("fragmented exception = %q / %d bytes", ue.Name, len(ue.Message))
	}
	if client.Stats.FragmentsReassembled.Load() == 0 {
		t.Error("exception reply was not fragmented")
	}
}
