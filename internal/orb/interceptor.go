package orb

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/giop"
)

// This file is the reproduction's take on CORBA Portable Interceptors:
// request-level hooks registered on an ORB and invoked around every client
// invocation (roundTrip and the colocation fast path alike) and every servant
// dispatch. Interceptors observe and annotate requests — most importantly
// they attach and consume GIOP service context entries, the CORBA mechanism
// for propagating out-of-band state such as a trace context across ORB hops.

// ClientRequestInfo describes one outgoing invocation to client
// interceptors. SendRequest may replace Ctx (e.g. to attach a span) and add
// service context entries; the same info value is passed to ReceiveReply, so
// per-request interceptor state can ride in its slots (the analogue of the
// PortableInterceptor::Current slot table).
type ClientRequestInfo struct {
	// Ctx is the caller's context. Interceptors may replace it; the final
	// value is the context the reply handlers observe, and — for colocated
	// calls — the context the servant dispatch receives.
	Ctx context.Context
	// Operation is the invoked operation name.
	Operation string
	// ObjectKey is the target object's adapter key.
	ObjectKey []byte
	// Addr is the target endpoint ("host:port").
	Addr string
	// Colocated reports that the call takes the in-process fast path.
	Colocated bool
	// Oneway reports that no reply will be read.
	Oneway bool
	// ServiceContexts are sent in the GIOP request header. Interceptors add
	// entries with AddServiceContext.
	ServiceContexts []giop.ServiceContext

	slots map[any]any
}

// AddServiceContext sets a service context entry on the outgoing request.
func (ri *ClientRequestInfo) AddServiceContext(id uint32, data []byte) {
	ri.ServiceContexts = giop.WithServiceContext(ri.ServiceContexts, id, data)
}

// SetSlot stores per-request interceptor state.
func (ri *ClientRequestInfo) SetSlot(key, val any) {
	if ri.slots == nil {
		ri.slots = make(map[any]any)
	}
	ri.slots[key] = val
}

// Slot returns per-request interceptor state (nil when unset).
func (ri *ClientRequestInfo) Slot(key any) any { return ri.slots[key] }

// ServerRequestInfo describes one incoming invocation to server
// interceptors. ReceiveRequest may replace Ctx; the final value is the
// context the servant dispatch receives (context-aware servants see it).
type ServerRequestInfo struct {
	// Ctx is the dispatch context handed to the servant.
	Ctx context.Context
	// Operation is the invoked operation name.
	Operation string
	// ObjectKey is the target object's adapter key.
	ObjectKey []byte
	// Transport is "iiop" for socket dispatches, "colocated" for the
	// in-process fast path.
	Transport string
	// ServiceContexts are the entries received in the GIOP request header
	// (or handed across directly on the colocated path).
	ServiceContexts []giop.ServiceContext

	slots map[any]any
}

// SetSlot stores per-request interceptor state.
func (ri *ServerRequestInfo) SetSlot(key, val any) {
	if ri.slots == nil {
		ri.slots = make(map[any]any)
	}
	ri.slots[key] = val
}

// Slot returns per-request interceptor state (nil when unset).
func (ri *ServerRequestInfo) Slot(key any) any { return ri.slots[key] }

// ClientInterceptor hooks the client side of an invocation. SendRequest runs
// before the request is marshalled (once per logical invocation, not per
// transparent retry); ReceiveReply runs after the reply — or the failure —
// is known, with interceptors unwound in reverse registration order.
type ClientInterceptor interface {
	SendRequest(ri *ClientRequestInfo)
	ReceiveReply(ri *ClientRequestInfo, err error)
}

// ServerInterceptor hooks servant dispatch. ReceiveRequest runs before the
// servant is invoked; SendReply runs after it returns, in reverse
// registration order, before the reply is marshalled.
type ServerInterceptor interface {
	ReceiveRequest(ri *ServerRequestInfo)
	SendReply(ri *ServerRequestInfo, err error)
}

// interceptorRegistry holds an ORB's registered interceptors. Registration
// is copy-on-write so the per-request read path is a single atomic load.
type interceptorRegistry struct {
	mu     sync.Mutex
	client atomicSlice[ClientInterceptor]
	server atomicSlice[ServerInterceptor]
}

// atomicSlice publishes an immutable slice snapshot.
type atomicSlice[T any] struct {
	p atomic.Pointer[[]T]
}

func (a *atomicSlice[T]) load() []T {
	if s := a.p.Load(); s != nil {
		return *s
	}
	return nil
}

func (a *atomicSlice[T]) store(s []T) { a.p.Store(&s) }

// RegisterClientInterceptor installs a client-side request interceptor.
// Registration order is invocation order for SendRequest; ReceiveReply
// unwinds in reverse. Register interceptors before issuing requests.
func (o *ORB) RegisterClientInterceptor(ci ClientInterceptor) {
	o.interceptors.mu.Lock()
	defer o.interceptors.mu.Unlock()
	cur := o.interceptors.client.load()
	next := make([]ClientInterceptor, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = ci
	o.interceptors.client.store(next)
}

// RegisterServerInterceptor installs a server-side request interceptor.
func (o *ORB) RegisterServerInterceptor(si ServerInterceptor) {
	o.interceptors.mu.Lock()
	defer o.interceptors.mu.Unlock()
	cur := o.interceptors.server.load()
	next := make([]ServerInterceptor, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = si
	o.interceptors.server.store(next)
}

func (o *ORB) clientInterceptors() []ClientInterceptor { return o.interceptors.client.load() }
func (o *ORB) serverInterceptors() []ServerInterceptor { return o.interceptors.server.load() }
