package orb

import (
	"strings"
	"testing"
	"time"

	"repro/internal/idl"
)

// TestLittleEndianClientInterop proves receiver-makes-right: a client ORB
// emitting little-endian CDR talks to a (big-endian-replying) server and
// everything round-trips, including exceptions.
func TestLittleEndianClientInterop(t *testing.T) {
	server := New(Options{Product: Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	ior, err := server.Activate("Echo", newEchoServant())
	if err != nil {
		t.Fatal(err)
	}

	client := New(Options{Product: VisiBroker, DisableColocation: true, LittleEndian: true})
	defer client.Shutdown()
	ref := client.Resolve(ior)

	got, err := ref.Invoke("echo", idl.String("little-endian says hi"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Str != "little-endian says hi" {
		t.Errorf("echo = %s", got)
	}
	sum, err := ref.Invoke("add", idl.Long(-5), idl.Long(12))
	if err != nil || sum.Int != 7 {
		t.Errorf("add = %v, %v", sum, err)
	}
	// Exceptions survive the mixed-order path.
	_, err = ref.Invoke("fail", idl.String("user"))
	if ue, ok := err.(*UserException); !ok || ue.Name != "NotFound" {
		t.Errorf("LE user exception = %v", err)
	}
	// Locate too.
	found, err := ref.Locate()
	if err != nil || !found {
		t.Errorf("LE locate = %t, %v", found, err)
	}
}

// TestServerDownFailureSurface covers the failure mode the paper's dynamic
// environment implies: a source vanishes, and clients get a typed
// COMM_FAILURE rather than a hang or panic.
func TestServerDownFailureSurface(t *testing.T) {
	server := New(Options{Product: Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ior, _ := server.Activate("Echo", newEchoServant())
	client := New(Options{Product: OrbixWeb, DisableColocation: true})
	defer client.Shutdown()
	ref := client.Resolve(ior)
	if _, err := ref.Invoke("echo", idl.String("warm")); err != nil {
		t.Fatal(err)
	}
	server.Shutdown()

	_, err := ref.Invoke("echo", idl.String("cold"))
	se, ok := err.(*SystemException)
	if !ok || se.Name != ExcCommFailure {
		t.Fatalf("post-shutdown error = %v", err)
	}
	if !strings.Contains(se.Error(), "COMM_FAILURE") {
		t.Errorf("error text = %v", se)
	}
	if _, err := ref.Locate(); err == nil {
		t.Error("locate after shutdown succeeded")
	}
}

// TestConnectionReuseAcrossInvocations checks the pool actually reuses
// connections for sequential calls (one conn, many requests).
func TestConnectionReuseAcrossInvocations(t *testing.T) {
	server := New(Options{Product: Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	ior, _ := server.Activate("Echo", newEchoServant())
	client := New(Options{Product: VisiBroker, DisableColocation: true})
	defer client.Shutdown()
	ref := client.Resolve(ior)
	for i := 0; i < 20; i++ {
		if _, err := ref.Invoke("echo", idl.String("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Sequential calls should never need more than one server connection
	// (plus the accept-loop bookkeeping already torn down).
	if n := server.Stats.ActiveConns.Load(); n > 1 {
		t.Errorf("server sees %d active conns for sequential calls", n)
	}
	if served := server.Stats.RequestsServed.Load(); served != 20 {
		t.Errorf("served = %d", served)
	}
}

// TestCallTimeout bounds a call against a slow servant: the client gets a
// COMM_FAILURE instead of hanging, and subsequent calls on a fresh
// connection still work.
func TestCallTimeout(t *testing.T) {
	server := New(Options{Product: Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	iface := idl.MustParse("interface Slow { string sleep(in string d); string fast(in string s); };")[0]
	h := NewHandler(iface)
	h.On("sleep", func(args []idl.Any) (idl.Any, error) {
		d, _ := time.ParseDuration(args[0].Str)
		time.Sleep(d)
		return idl.String("done"), nil
	})
	h.On("fast", func(args []idl.Any) (idl.Any, error) { return args[0], nil })
	ior, _ := server.Activate("Slow", h)

	client := New(Options{Product: VisiBroker, DisableColocation: true, CallTimeout: 100 * time.Millisecond})
	defer client.Shutdown()
	ref := client.Resolve(ior)

	start := time.Now()
	_, err := ref.Invoke("sleep", idl.String("2s"))
	se, ok := err.(*SystemException)
	if !ok || se.Name != ExcCommFailure {
		t.Fatalf("timeout error = %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
	// The pool discards the poisoned connection; a new call succeeds.
	got, err := ref.Invoke("fast", idl.String("still alive"))
	if err != nil || got.Str != "still alive" {
		t.Errorf("post-timeout call: %v, %v", got, err)
	}
}
