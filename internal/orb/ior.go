// Package orb implements a CORBA-style Object Request Broker: object
// adapters hosting servants, Interoperable Object References (IORs), client
// object references, and IIOP (GIOP over TCP) transport with request
// multiplexing. Several named ORB "products" (stand-ins for Orbix, OrbixWeb
// and VisiBroker) are instantiated from the same implementation and
// interoperate purely through the wire protocol, reproducing the paper's
// multi-ORB deployment.
package orb

import (
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/cdr"
)

// TagInternetIOP is the IIOP profile tag used in IORs.
const TagInternetIOP = 0

// IOR is an Interoperable Object Reference: everything a client needs to
// reach an object — its type, the endpoint of the hosting adapter, and the
// adapter-local object key.
type IOR struct {
	RepoID    string // repository ID of the object's interface
	Host      string
	Port      uint16
	ObjectKey []byte
}

// Key returns the object key as a string.
func (r *IOR) Key() string { return string(r.ObjectKey) }

// Addr returns the host:port endpoint.
func (r *IOR) Addr() string { return fmt.Sprintf("%s:%d", r.Host, r.Port) }

// Equal reports whether two IORs identify the same object.
func (r *IOR) Equal(o *IOR) bool {
	return r.RepoID == o.RepoID && r.Host == o.Host && r.Port == o.Port && string(r.ObjectKey) == string(o.ObjectKey)
}

// String renders the stringified IOR form.
func (r *IOR) String() string { return Stringify(r) }

// Stringify encodes an IOR into the portable "IOR:<hex>" form: a CDR
// encapsulation holding the repository ID and a sequence of tagged profiles,
// of which we emit a single IIOP profile (version, host, port, object key).
func Stringify(r *IOR) string {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteOctet(byte(cdr.BigEndian)) // encapsulation order flag
	inner := cdr.NewEncoderAt(cdr.BigEndian, 1)
	inner.WriteString(r.RepoID)
	inner.WriteULong(1) // one profile
	inner.WriteULong(TagInternetIOP)
	inner.WriteEncapsulation(cdr.BigEndian, func(p *cdr.Encoder) {
		p.WriteOctet(1) // IIOP version major
		p.WriteOctet(0) // IIOP version minor
		p.WriteString(r.Host)
		p.WriteUShort(r.Port)
		p.WriteOctets(r.ObjectKey)
	})
	body := append(e.Bytes(), inner.Bytes()...)
	return "IOR:" + hex.EncodeToString(body)
}

// Destringify parses an "IOR:<hex>" string produced by Stringify (or any
// conforming encoder).
func Destringify(s string) (*IOR, error) {
	if !strings.HasPrefix(s, "IOR:") {
		return nil, fmt.Errorf("orb: not a stringified IOR: %.16q", s)
	}
	raw, err := hex.DecodeString(s[4:])
	if err != nil {
		return nil, fmt.Errorf("orb: bad IOR hex: %w", err)
	}
	if len(raw) < 1 {
		return nil, fmt.Errorf("orb: empty IOR")
	}
	d := cdr.NewDecoderAt(raw[1:], cdr.ByteOrder(raw[0]&1), 1)
	var ior IOR
	if ior.RepoID, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("orb: IOR repo id: %w", err)
	}
	nprof, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("orb: IOR profile count: %w", err)
	}
	for i := uint32(0); i < nprof; i++ {
		tag, err := d.ReadULong()
		if err != nil {
			return nil, fmt.Errorf("orb: IOR profile tag: %w", err)
		}
		prof, err := d.ReadEncapsulation()
		if err != nil {
			return nil, fmt.Errorf("orb: IOR profile body: %w", err)
		}
		if tag != TagInternetIOP {
			continue // skip unknown profiles, as real ORBs do
		}
		if _, err := prof.ReadOctet(); err != nil { // version major
			return nil, err
		}
		if _, err := prof.ReadOctet(); err != nil { // version minor
			return nil, err
		}
		if ior.Host, err = prof.ReadString(); err != nil {
			return nil, fmt.Errorf("orb: IOR host: %w", err)
		}
		if ior.Port, err = prof.ReadUShort(); err != nil {
			return nil, fmt.Errorf("orb: IOR port: %w", err)
		}
		key, err := prof.ReadOctets()
		if err != nil {
			return nil, fmt.Errorf("orb: IOR object key: %w", err)
		}
		ior.ObjectKey = append([]byte(nil), key...)
		return &ior, nil
	}
	return nil, fmt.Errorf("orb: IOR carries no IIOP profile")
}
