package orb

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/giop"
	"repro/internal/idl"
)

// TestMultiplexedConcurrentInvokes fires 64 concurrent clients at one
// endpoint through a single multiplexed connection (MaxIdlePerHost: 1) and
// checks that every reply carries its own request's payload — i.e. the
// demux loop routes replies by GIOP request ID, never by arrival order.
// Run with -race, this is also the concurrency stress for the shared
// framing layer.
func TestMultiplexedConcurrentInvokes(t *testing.T) {
	server := New(Options{Product: Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	iface := idl.MustParse("interface Echo { string echo(in string s); };")[0]
	h := NewHandler(iface).On("echo", func(args []idl.Any) (idl.Any, error) {
		time.Sleep(200 * time.Microsecond) // force request overlap
		return args[0], nil
	})
	ior, err := server.Activate("Echo", h)
	if err != nil {
		t.Fatal(err)
	}

	client := New(Options{Product: VisiBroker, DisableColocation: true, MaxIdlePerHost: 1})
	defer client.Shutdown()
	ref := client.Resolve(ior)

	const goroutines = 64
	const perG = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				want := fmt.Sprintf("payload-%d-%d", g, i)
				got, err := ref.Invoke("echo", idl.String(want))
				if err != nil {
					errs <- err
					return
				}
				if got.Str != want {
					errs <- fmt.Errorf("reply mismatch: got %q want %q", got.Str, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All 256 calls shared one socket.
	if n := server.Stats.ActiveConns.Load(); n != 1 {
		t.Errorf("server sees %d connections, want 1 multiplexed", n)
	}
	// And they genuinely overlapped on it.
	if max := client.Stats.MaxInFlight.Load(); max < 2 {
		t.Errorf("MaxInFlight = %d, want pipelining (>= 2)", max)
	}
	if in := client.Stats.InFlight.Load(); in != 0 {
		t.Errorf("InFlight = %d after all calls returned", in)
	}
}

// TestMidStreamKillFailsInFlight kills the multiplexed connection while many
// requests are in flight: every one of them must fail with a typed
// COMM_FAILURE (no hang, no wrong-reply delivery), and the pool must not
// wedge — the next call dials a fresh connection and succeeds.
func TestMidStreamKillFailsInFlight(t *testing.T) {
	server := New(Options{Product: Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	release := make(chan struct{})
	iface := idl.MustParse("interface Gate { string wait(in string s); };")[0]
	h := NewHandler(iface).On("wait", func(args []idl.Any) (idl.Any, error) {
		<-release
		return args[0], nil
	})
	ior, err := server.Activate("Gate", h)
	if err != nil {
		t.Fatal(err)
	}
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock() // unblock any parked servant goroutines at the end

	client := New(Options{Product: OrbixWeb, DisableColocation: true, MaxIdlePerHost: 1})
	defer client.Shutdown()
	ref := client.Resolve(ior)

	const inFlight = 16
	errCh := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		go func(i int) {
			_, err := ref.Invoke("wait", idl.String(fmt.Sprintf("blocked-%d", i)))
			errCh <- err
		}(i)
	}
	// Wait until the server has dispatched all of them (they are parked in
	// the servant), so the kill happens genuinely mid-stream.
	deadline := time.Now().Add(5 * time.Second)
	for server.Stats.RequestsServed.Load() < inFlight {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests dispatched", server.Stats.RequestsServed.Load(), inFlight)
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the client's multiplexed connection out from under the calls.
	client.pool.mu.Lock()
	var killed int
	for _, conns := range client.pool.conns {
		for _, c := range conns {
			c.nc.Close()
			killed++
		}
	}
	client.pool.mu.Unlock()
	if killed != 1 {
		t.Fatalf("killed %d connections, want exactly 1 multiplexed", killed)
	}

	for i := 0; i < inFlight; i++ {
		select {
		case err := <-errCh:
			se, ok := err.(*SystemException)
			if !ok || se.Name != ExcCommFailure {
				t.Errorf("in-flight call error = %v, want COMM_FAILURE", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("call %d still hung after connection kill", i)
		}
	}
	if in := client.Stats.InFlight.Load(); in != 0 {
		t.Errorf("InFlight = %d after kill", in)
	}

	// The pool is not wedged: a fresh call dials a new connection.
	unblock()
	got, err := ref.Invoke("wait", idl.String("after kill"))
	if err != nil || got.Str != "after kill" {
		t.Errorf("post-kill call = %v, %v", got, err)
	}
}

// TestTimeoutReplyRace hammers the window where a reply arrives concurrently
// with CallTimeout expiry: servant latencies straddle the timeout, so some
// replies race the timer into deliver while fail is flushing the pending
// map. Every call must end as either a genuine result or a typed
// *SystemException — the race formerly produced a (nil, nil) demuxed reply
// that panicked decodeReply.
func TestTimeoutReplyRace(t *testing.T) {
	server := New(Options{Product: Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	const timeout = 10 * time.Millisecond
	iface := idl.MustParse("interface Edge { string echo(in string s); };")[0]
	h := NewHandler(iface).On("echo", func(args []idl.Any) (idl.Any, error) {
		// Latency straddles the client timeout so replies race the timer.
		var n int
		fmt.Sscanf(args[0].Str, "p-%d", &n)
		time.Sleep(timeout - 3*time.Millisecond + time.Duration(n%7)*time.Millisecond)
		return args[0], nil
	})
	ior, err := server.Activate("Edge", h)
	if err != nil {
		t.Fatal(err)
	}

	client := New(Options{Product: VisiBroker, DisableColocation: true,
		CallTimeout: timeout, MaxIdlePerHost: 1})
	defer client.Shutdown()
	ref := client.Resolve(ior)

	const calls = 64
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("p-%d", i)
			got, err := ref.Invoke("echo", idl.String(want))
			if err == nil {
				if got.Str != want {
					errs <- fmt.Errorf("call %d: reply mismatch %q", i, got.Str)
				}
				return
			}
			if _, ok := err.(*SystemException); !ok {
				errs <- fmt.Errorf("call %d: untyped error %T: %v", i, err, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if in := client.Stats.InFlight.Load(); in != 0 {
		t.Errorf("InFlight = %d after all calls settled", in)
	}
}

// newRaceHarnessConn builds a muxConn with a live socket pair but no read
// loop, so a test can play deliver and fail against a registered call in a
// chosen order.
func newRaceHarnessConn(t *testing.T, client *ORB) *muxConn {
	t.Helper()
	srv, cli := net.Pipe()
	go io.Copy(io.Discard, srv)
	t.Cleanup(func() { srv.Close() })
	c := &muxConn{
		pool:    client.pool,
		addr:    "race-harness",
		nc:      cli,
		pending: make(map[uint32]chan *demuxedReply),
	}
	c.w = giop.NewSyncWriter(bufio.NewWriter(cli), func(err error) {
		c.fail(&SystemException{Name: ExcCommFailure, Detail: err.Error()})
	})
	return c
}

// TestCallTimeoutDeliverRace stages, deterministically, both orderings of
// the race between a reply's deliver and the timeout branch's fail. When
// deliver wins — it removes the pending entry before fail can flush it, so
// the caller drains a reply with err == nil — the call must surface the
// reply as a late success, never (nil, nil), which panicked the decode path.
func TestCallTimeoutDeliverRace(t *testing.T) {
	client := New(Options{Product: VisiBroker, DisableColocation: true})
	defer client.Shutdown()
	timeoutExc := &SystemException{Name: ExcCommFailure, Detail: "call timed out"}

	// Ordering 1: deliver wins the race, then the timeout branch runs.
	c := newRaceHarnessConn(t, client)
	ch, err := c.register(1)
	if err != nil {
		t.Fatal(err)
	}
	c.deliver(1, &demuxedReply{rh: &giop.ReplyHeader{RequestID: 1}})
	c.fail(timeoutExc) // pending[1] is already gone; nothing to flush
	r, err := drainTimedOut(ch)
	if err != nil {
		t.Fatalf("deliver-wins drain returned error %v, want late success", err)
	}
	if r == nil || r.rh == nil || r.rh.RequestID != 1 {
		t.Fatalf("deliver-wins drain returned %+v, want the raced reply", r)
	}

	// Ordering 2: fail wins; the drained reply carries the timeout error.
	c = newRaceHarnessConn(t, client)
	if ch, err = c.register(2); err != nil {
		t.Fatal(err)
	}
	c.fail(timeoutExc)
	c.deliver(2, &demuxedReply{rh: &giop.ReplyHeader{RequestID: 2}}) // late, dropped
	r, err = drainTimedOut(ch)
	if r != nil {
		t.Fatalf("fail-wins drain returned reply %+v, want nil", r)
	}
	se, ok := err.(*SystemException)
	if !ok || se.Name != ExcCommFailure {
		t.Fatalf("fail-wins drain returned %v, want COMM_FAILURE", err)
	}
}

// TestLocateAccountsWireStats checks the satellite fix: LocateRequest round
// trips count into BytesSent/BytesReceived like invocations do.
func TestLocateAccountsWireStats(t *testing.T) {
	client, ref := startPair(t)
	before := client.Stats.BytesSent.Load()
	beforeRecv := client.Stats.BytesReceived.Load()
	if _, err := ref.Locate(); err != nil {
		t.Fatal(err)
	}
	if sent := client.Stats.BytesSent.Load(); sent <= before {
		t.Errorf("BytesSent unchanged by locate (%d)", sent)
	}
	if recv := client.Stats.BytesReceived.Load(); recv <= beforeRecv {
		t.Errorf("BytesReceived unchanged by locate (%d)", recv)
	}
}

// TestServerConcurrentDispatch proves the server no longer serializes
// requests per connection: two pipelined requests where the first is slow
// must complete in roughly the slow request's time, not the sum.
func TestServerConcurrentDispatch(t *testing.T) {
	server := New(Options{Product: Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	iface := idl.MustParse("interface Slow { string sleep(in string d); };")[0]
	h := NewHandler(iface).On("sleep", func(args []idl.Any) (idl.Any, error) {
		d, _ := time.ParseDuration(args[0].Str)
		time.Sleep(d)
		return args[0], nil
	})
	ior, err := server.Activate("Slow", h)
	if err != nil {
		t.Fatal(err)
	}
	client := New(Options{Product: VisiBroker, DisableColocation: true, MaxIdlePerHost: 1})
	defer client.Shutdown()
	ref := client.Resolve(ior)

	const n = 8
	const each = 100 * time.Millisecond
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ref.Invoke("sleep", idl.String(each.String())); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Serial dispatch would need n*each = 800ms; concurrent dispatch on one
	// connection should track the slowest request. Allow generous slack for
	// loaded CI machines while still ruling out serialization.
	if elapsed > n*each/2 {
		t.Errorf("8 pipelined 100ms calls took %v; server appears to serialize per connection", elapsed)
	}
	if conns := server.Stats.ActiveConns.Load(); conns != 1 {
		t.Errorf("used %d connections, want 1", conns)
	}
}
