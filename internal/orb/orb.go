package orb

import (
	"fmt"
	"net"
	"time"

	"repro/internal/cdr"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/idl"
)

// Product identifies an ORB product. The reproduction instantiates three,
// mirroring the paper's deployment: Orbix (C++ servers), OrbixWeb and
// VisiBroker for Java (Java servers). All speak the same IIOP and therefore
// interoperate, which is the point the paper demonstrates.
type Product string

// The three ORB products of the paper's prototype.
const (
	Orbix      Product = "Orbix"
	OrbixWeb   Product = "OrbixWeb"
	VisiBroker Product = "VisiBroker"
)

// Stats holds ORB invocation counters, used by experiments, benchmarks and
// the /debug/metrics endpoint to verify which path (colocated vs socket
// IIOP) served each call.
//
// Concurrency contract: every field is an atomic counter written by ORB
// goroutines at any time. Readers must use the fields' Load methods (or
// Snapshot, which does); plain struct reads are never safe. The struct
// embeds sync state, so it must not be copied after first use — `go vet`'s
// copylocks check enforces this. Counters are independent: a set of loads
// (or a Snapshot) is consistent per counter, not transactionally across
// counters.
type Stats struct {
	RequestsServed atomic.Int64 // requests dispatched by this ORB's adapter
	ColocatedCalls atomic.Int64 // client calls short-circuited in-process
	IIOPCalls      atomic.Int64 // client calls that went over TCP
	BytesSent      atomic.Int64
	BytesReceived  atomic.Int64
	LocateRequests atomic.Int64
	ActiveConns    atomic.Int64
	ProtocolErrors atomic.Int64
	UserExceptions atomic.Int64
	SysExceptions  atomic.Int64
	OnewayRequests atomic.Int64
	InFlight       atomic.Int64 // client requests currently awaiting a reply
	MaxInFlight    atomic.Int64 // high-water mark of InFlight
	Retries        atomic.Int64 // transparent client retries of idempotent calls
	BreakerTrips   atomic.Int64 // circuit transitions into the open state
	BreakerRejects atomic.Int64 // calls failed fast by an open breaker
	FaultsInjected atomic.Int64 // faults injected by the ORB's FaultPlan

	FragmentsSent        atomic.Int64 // GIOP Fragment frames written (requests and replies)
	FragmentsReassembled atomic.Int64 // GIOP Fragment frames consumed by reassembly
}

// StatsSnapshot is a plain-value copy of Stats, safe to serialize (it is the
// shape the node binary publishes under /debug/metrics).
type StatsSnapshot struct {
	RequestsServed       int64 `json:"requests_served"`
	ColocatedCalls       int64 `json:"colocated_calls"`
	IIOPCalls            int64 `json:"iiop_calls"`
	BytesSent            int64 `json:"bytes_sent"`
	BytesReceived        int64 `json:"bytes_received"`
	LocateRequests       int64 `json:"locate_requests"`
	ActiveConns          int64 `json:"active_conns"`
	ProtocolErrors       int64 `json:"protocol_errors"`
	UserExceptions       int64 `json:"user_exceptions"`
	SysExceptions        int64 `json:"sys_exceptions"`
	OnewayRequests       int64 `json:"oneway_requests"`
	InFlight             int64 `json:"in_flight"`
	MaxInFlight          int64 `json:"max_in_flight"`
	Retries              int64 `json:"retries"`
	BreakerTrips         int64 `json:"breaker_trips"`
	BreakerRejects       int64 `json:"breaker_rejects"`
	FaultsInjected       int64 `json:"faults_injected"`
	FragmentsSent        int64 `json:"fragments_sent"`
	FragmentsReassembled int64 `json:"fragments_reassembled"`
}

// Snapshot loads every counter atomically (field by field; see the Stats
// concurrency contract) and returns the copy.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		RequestsServed:       s.RequestsServed.Load(),
		ColocatedCalls:       s.ColocatedCalls.Load(),
		IIOPCalls:            s.IIOPCalls.Load(),
		BytesSent:            s.BytesSent.Load(),
		BytesReceived:        s.BytesReceived.Load(),
		LocateRequests:       s.LocateRequests.Load(),
		ActiveConns:          s.ActiveConns.Load(),
		ProtocolErrors:       s.ProtocolErrors.Load(),
		UserExceptions:       s.UserExceptions.Load(),
		SysExceptions:        s.SysExceptions.Load(),
		OnewayRequests:       s.OnewayRequests.Load(),
		InFlight:             s.InFlight.Load(),
		MaxInFlight:          s.MaxInFlight.Load(),
		Retries:              s.Retries.Load(),
		BreakerTrips:         s.BreakerTrips.Load(),
		BreakerRejects:       s.BreakerRejects.Load(),
		FaultsInjected:       s.FaultsInjected.Load(),
		FragmentsSent:        s.FragmentsSent.Load(),
		FragmentsReassembled: s.FragmentsReassembled.Load(),
	}
}

// noteInFlight bumps the InFlight gauge and keeps MaxInFlight at its
// high-water mark; the caller must decrement InFlight when the call ends.
func (s *Stats) noteInFlight() {
	n := s.InFlight.Add(1)
	for {
		max := s.MaxInFlight.Load()
		if n <= max || s.MaxInFlight.CompareAndSwap(max, n) {
			return
		}
	}
}

// Options configure an ORB instance.
type Options struct {
	Product Product
	// DisableColocation forces every invocation over the socket even when
	// the target object lives in the same process. Used by benchmarks to
	// compare the two paths (the paper's JNI/C++-invocation vs IIOP split).
	DisableColocation bool
	// LittleEndian makes this ORB's client requests use the little-endian
	// CDR transfer syntax. Servers always honour the byte-order flag of the
	// request they receive (CORBA receiver-makes-right), so ORBs with
	// different native orders interoperate.
	LittleEndian bool
	// CallTimeout bounds each client request/reply exchange (0 = no bound).
	// Expired calls surface as COMM_FAILURE and poison their connection,
	// which fails every other request in flight on it with COMM_FAILURE too.
	CallTimeout time.Duration
	// DialTimeout bounds establishing a new outbound IIOP connection.
	// 0 means the default of 10 seconds.
	DialTimeout time.Duration
	// MaxIdlePerHost caps the multiplexed connections kept per endpoint
	// (0 means the default of 8). Every connection is shared by many
	// concurrent requests; the pool only opens another when all existing
	// connections to the endpoint are pipeline-saturated.
	MaxIdlePerHost int
	// Retry bounds transparent retries of idempotent invocations (see
	// ObjectRef.InvokeIdempotent). The zero value disables retries.
	Retry RetryPolicy
	// Breaker enables per-endpoint circuit breakers (closed/open/half-open).
	// The zero value disables them.
	Breaker BreakerPolicy
	// Faults installs a fault-injection plan on the client IIOP path (chaos
	// testing). nil injects nothing; SetFaultPlan swaps plans at runtime.
	Faults *FaultPlan
	// FragmentThreshold sets the body size above which requests and replies
	// are written as GIOP 1.1 fragmented messages (an initial frame plus
	// Fragment frames of at most this size), so one huge reply no longer
	// head-of-line-blocks the other calls pipelined on the connection.
	// 0 selects giop.DefaultFragmentThreshold; negative disables
	// fragmentation (every message is one frame, as in GIOP 1.0).
	FragmentThreshold int
	// Transport supplies the network stack used by Listen and client dials.
	// nil selects the operating system's TCP stack. Deterministic tests
	// inject an in-memory transport (internal/simnet) to run federations
	// without sockets and with virtual time.
	Transport Transport
}

// RetryPolicy bounds the transparent retry of idempotent client invocations.
// Only transport-class failures (COMM_FAILURE) are retried, with exponential
// backoff and full jitter between attempts; breaker rejections consume an
// attempt without touching the endpoint, so the backoff can outlast the
// breaker's cooldown and land on its half-open probe.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// Values <= 1 disable retries.
	MaxAttempts int
	// BaseBackoff is the cap of the first backoff window (default 10ms);
	// the window doubles each attempt. The actual sleep is uniform in
	// (0, window] — full jitter.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff window (default 500ms).
	MaxBackoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
	return p
}

// wireOrder returns the CDR byte order this ORB's clients emit.
func (o *ORB) wireOrder() cdr.ByteOrder {
	if o.opts.LittleEndian {
		return cdr.LittleEndian
	}
	return cdr.BigEndian
}

// ORB is one Object Request Broker instance: a server-side object adapter
// plus a client-side connection manager.
type ORB struct {
	opts Options
	repo *idl.Repository

	mu       sync.RWMutex
	servants map[string]Servant
	listener net.Listener
	host     string
	port     uint16

	pool *connPool

	// transport is never nil (Options.Transport or the TCP default); sleep
	// delegates to the transport's virtual clock when it has one.
	transport Transport
	sleep     func(time.Duration)

	interceptors interceptorRegistry

	// breakers is nil unless Options.Breaker enables circuit breaking.
	breakers *breakerSet
	// faults holds the active fault injector (nil = no injection); swapped
	// atomically by SetFaultPlan so chaos can start and stop at runtime.
	faults atomic.Pointer[faultInjector]

	Stats Stats

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// processORBs maps listen addresses to in-process ORBs for the colocation
// fast path (the reproduction's analogue of the paper's in-process C++/JNI
// bridges, which bypass the socket).
var processORBs sync.Map // string addr -> *ORB

// New creates an ORB.
func New(opts Options) *ORB {
	if opts.Product == "" {
		opts.Product = Orbix
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 10 * time.Second
	}
	if opts.MaxIdlePerHost <= 0 {
		opts.MaxIdlePerHost = 8
	}
	o := &ORB{
		opts:      opts,
		repo:      idl.NewRepository(),
		servants:  make(map[string]Servant),
		closed:    make(chan struct{}),
		transport: opts.Transport,
		sleep:     time.Sleep,
	}
	if o.transport == nil {
		o.transport = tcpTransport{}
	}
	if s, ok := o.transport.(Sleeper); ok {
		o.sleep = s.Sleep
	}
	o.pool = newConnPool(o)
	if opts.Breaker.Threshold > 0 {
		o.breakers = newBreakerSet(opts.Breaker, &o.Stats)
	}
	if opts.Faults != nil {
		o.faults.Store(newFaultInjector(*opts.Faults, &o.Stats))
	}
	return o
}

// SetFaultPlan installs (or, with nil, removes) the client-side fault
// injection plan at runtime. The swap is visible to connections already
// sitting in the pool, not just future dials: every pooled connection
// consults the active plan on each read and write, so latency, drop and
// reset rules take effect immediately on live connections. Dial-path rules
// (FailFirst, FailConnect) inherently apply only to future dials.
func (o *ORB) SetFaultPlan(plan *FaultPlan) {
	if plan == nil {
		o.faults.Store(nil)
		return
	}
	o.faults.Store(newFaultInjector(*plan, &o.Stats))
}

// injector returns the active fault injector, or nil.
func (o *ORB) injector() *faultInjector { return o.faults.Load() }

// BreakerSnapshot reports the state of every endpoint breaker (empty when
// breakers are disabled); the node binary publishes it under /debug/metrics.
func (o *ORB) BreakerSnapshot() map[string]BreakerState {
	if o.breakers == nil {
		return map[string]BreakerState{}
	}
	return o.breakers.snapshot()
}

// Product reports the ORB product name.
func (o *ORB) Product() Product { return o.opts.Product }

// Repository returns the ORB's interface repository.
func (o *ORB) Repository() *idl.Repository { return o.repo }

// Listen starts the IIOP endpoint on addr (e.g. "127.0.0.1:0") and begins
// accepting connections. It must be called before Activate.
func (o *ORB) Listen(addr string) error {
	ln, err := o.transport.Listen(addr)
	if err != nil {
		return fmt.Errorf("orb(%s): listen %s: %w", o.opts.Product, addr, err)
	}
	host, portStr, err := net.SplitHostPort(ln.Addr().String())
	if err != nil {
		ln.Close()
		return fmt.Errorf("orb(%s): split addr: %w", o.opts.Product, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		ln.Close()
		return fmt.Errorf("orb(%s): bad port: %w", o.opts.Product, err)
	}
	o.mu.Lock()
	if o.listener != nil {
		o.mu.Unlock()
		ln.Close()
		return fmt.Errorf("orb(%s): already listening on %s", o.opts.Product, o.Addr())
	}
	o.listener = ln
	o.host = host
	o.port = uint16(port)
	o.mu.Unlock()

	processORBs.Store(o.Addr(), o)

	o.wg.Add(1)
	go o.acceptLoop(ln)
	return nil
}

// Addr returns the host:port the ORB is listening on ("" before Listen).
func (o *ORB) Addr() string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if o.listener == nil {
		return ""
	}
	return fmt.Sprintf("%s:%d", o.host, o.port)
}

// Activate registers a servant under an object key and returns its IOR. The
// servant's interface is also registered in the interface repository.
func (o *ORB) Activate(key string, s Servant) (*IOR, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.listener == nil {
		return nil, fmt.Errorf("orb(%s): Activate %q before Listen", o.opts.Product, key)
	}
	if _, exists := o.servants[key]; exists {
		return nil, fmt.Errorf("orb(%s): object key %q already active", o.opts.Product, key)
	}
	o.servants[key] = s
	o.repo.Register(s.InterfaceDef())
	return &IOR{
		RepoID:    s.InterfaceDef().RepoID,
		Host:      o.host,
		Port:      o.port,
		ObjectKey: []byte(key),
	}, nil
}

// Deactivate removes the servant under key. Pending invocations already
// dispatched complete; new requests get OBJECT_NOT_EXIST.
func (o *ORB) Deactivate(key string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.servants[key]; !ok {
		return fmt.Errorf("orb(%s): no active object %q", o.opts.Product, key)
	}
	delete(o.servants, key)
	return nil
}

// ActiveKeys returns the sorted object keys of active servants.
func (o *ORB) ActiveKeys() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	keys := make([]string, 0, len(o.servants))
	for k := range o.servants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (o *ORB) lookupServant(key string) (Servant, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	s, ok := o.servants[key]
	return s, ok
}

// Resolve wraps an IOR in a client object reference bound to this ORB.
func (o *ORB) Resolve(ior *IOR) *ObjectRef {
	return &ObjectRef{orb: o, ior: ior}
}

// ResolveString parses a stringified IOR and wraps it.
func (o *ORB) ResolveString(s string) (*ObjectRef, error) {
	ior, err := Destringify(s)
	if err != nil {
		return nil, err
	}
	return o.Resolve(ior), nil
}

// Shutdown stops the listener, closes client connections and waits for
// connection goroutines to exit.
func (o *ORB) Shutdown() {
	o.closeOnce.Do(func() {
		close(o.closed)
		o.mu.Lock()
		ln := o.listener
		o.mu.Unlock()
		if ln != nil {
			processORBs.Delete(o.Addr())
			ln.Close()
		}
		o.pool.closeAll()
	})
	o.wg.Wait()
}

// colocatedTarget returns the in-process ORB listening on addr, if
// colocation is permitted for this client ORB.
func (o *ORB) colocatedTarget(addr string) (*ORB, bool) {
	if o.opts.DisableColocation {
		return nil, false
	}
	v, ok := processORBs.Load(addr)
	if !ok {
		return nil, false
	}
	t := v.(*ORB)
	if t.opts.DisableColocation {
		return nil, false
	}
	return t, true
}
