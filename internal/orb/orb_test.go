package orb

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/idl"
)

var echoIDL = idl.MustParse(`
interface Echo {
    string echo(in string s);
    long long add(in long long a, in long long b);
    string fail(in string kind);
    oneway void ping();
    sequence<any> rows(in string q);
};
`)[0]

func newEchoServant() Servant {
	h := NewHandler(echoIDL)
	h.On("echo", func(args []idl.Any) (idl.Any, error) {
		return idl.String(args[0].Str), nil
	})
	h.On("add", func(args []idl.Any) (idl.Any, error) {
		return idl.Long(args[0].Int + args[1].Int), nil
	})
	h.On("fail", func(args []idl.Any) (idl.Any, error) {
		switch args[0].Str {
		case "user":
			return idl.Null(), Userf("NotFound", "nothing called %q", "x")
		case "plain":
			return idl.Null(), &testError{}
		default:
			return idl.Null(), &SystemException{Name: ExcBadParam, Detail: "boom"}
		}
	})
	h.On("ping", func(args []idl.Any) (idl.Any, error) {
		return idl.Any{Kind: idl.KindVoid}, nil
	})
	h.On("rows", func(args []idl.Any) (idl.Any, error) {
		return idl.Seq(idl.Struct(idl.F("q", idl.String(args[0].Str)))), nil
	})
	return h
}

type testError struct{}

func (*testError) Error() string { return "unclassified failure" }

// startPair boots two ORBs (different products) and activates an Echo
// servant on the server ORB. Colocation is disabled so calls really cross
// the socket.
func startPair(t *testing.T) (client *ORB, ref *ObjectRef) {
	t.Helper()
	server := New(Options{Product: Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Shutdown)
	ior, err := server.Activate("Echo", newEchoServant())
	if err != nil {
		t.Fatal(err)
	}
	client = New(Options{Product: VisiBroker, DisableColocation: true})
	t.Cleanup(client.Shutdown)
	return client, client.Resolve(ior)
}

func TestIIOPInvocation(t *testing.T) {
	client, ref := startPair(t)
	got, err := ref.Invoke("echo", idl.String("hello over IIOP"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Str != "hello over IIOP" {
		t.Errorf("echo = %s", got)
	}
	sum, err := ref.Invoke("add", idl.Long(40), idl.Long(2))
	if err != nil || sum.Int != 42 {
		t.Errorf("add = %v, %v", sum, err)
	}
	if client.Stats.IIOPCalls.Load() != 2 {
		t.Errorf("IIOP calls = %d", client.Stats.IIOPCalls.Load())
	}
	if client.Stats.ColocatedCalls.Load() != 0 {
		t.Errorf("colocated calls = %d", client.Stats.ColocatedCalls.Load())
	}
}

func TestUserExceptionCrossesWire(t *testing.T) {
	_, ref := startPair(t)
	_, err := ref.Invoke("fail", idl.String("user"))
	ue, ok := err.(*UserException)
	if !ok {
		t.Fatalf("err = %T %v, want *UserException", err, err)
	}
	if ue.Name != "NotFound" || !strings.Contains(ue.Message, "nothing called") {
		t.Errorf("exception = %+v", ue)
	}
}

func TestSystemExceptionCrossesWire(t *testing.T) {
	_, ref := startPair(t)
	_, err := ref.Invoke("fail", idl.String("system"))
	se, ok := err.(*SystemException)
	if !ok {
		t.Fatalf("err = %T %v, want *SystemException", err, err)
	}
	if se.Name != ExcBadParam || se.Detail != "boom" {
		t.Errorf("exception = %+v", se)
	}
	// Unclassified errors surface as UNKNOWN.
	_, err = ref.Invoke("fail", idl.String("plain"))
	se, ok = err.(*SystemException)
	if !ok || se.Name != ExcUnknown || !strings.Contains(se.Detail, "unclassified") {
		t.Errorf("plain error = %v", err)
	}
}

func TestUnknownObjectAndOperation(t *testing.T) {
	client, ref := startPair(t)
	bad := *ref.IOR()
	bad.ObjectKey = []byte("NoSuchObject")
	_, err := client.Resolve(&bad).Invoke("echo", idl.String("x"))
	se, ok := err.(*SystemException)
	if !ok || se.Name != ExcObjectNotExist {
		t.Errorf("unknown object: %v", err)
	}
	_, err = ref.Invoke("nosuchop")
	se, ok = err.(*SystemException)
	if !ok || se.Name != ExcBadOperation {
		t.Errorf("unknown op: %v", err)
	}
}

func TestWrongArity(t *testing.T) {
	_, ref := startPair(t)
	_, err := ref.Invoke("add", idl.Long(1))
	se, ok := err.(*SystemException)
	if !ok || se.Name != ExcBadParam {
		t.Errorf("wrong arity: %v", err)
	}
}

func TestLocate(t *testing.T) {
	client, ref := startPair(t)
	found, err := ref.Locate()
	if err != nil || !found {
		t.Errorf("Locate existing = %t, %v", found, err)
	}
	bad := *ref.IOR()
	bad.ObjectKey = []byte("ghost")
	found, err = client.Resolve(&bad).Locate()
	if err != nil || found {
		t.Errorf("Locate missing = %t, %v", found, err)
	}
}

func TestOneway(t *testing.T) {
	_, ref := startPair(t)
	if err := ref.InvokeOneway("ping"); err != nil {
		t.Fatal(err)
	}
	// A request after the oneway on the same connection must still work
	// (no reply was queued for the oneway).
	got, err := ref.Invoke("echo", idl.String("after oneway"))
	if err != nil || got.Str != "after oneway" {
		t.Errorf("after oneway: %v, %v", got, err)
	}
}

func TestColocationFastPath(t *testing.T) {
	o := New(Options{Product: OrbixWeb})
	if err := o.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer o.Shutdown()
	ior, err := o.Activate("Echo", newEchoServant())
	if err != nil {
		t.Fatal(err)
	}
	ref := o.Resolve(ior)
	got, err := ref.Invoke("echo", idl.String("in process"))
	if err != nil || got.Str != "in process" {
		t.Fatalf("colocated call: %v %v", got, err)
	}
	if o.Stats.ColocatedCalls.Load() != 1 || o.Stats.IIOPCalls.Load() != 0 {
		t.Errorf("colocated=%d iiop=%d", o.Stats.ColocatedCalls.Load(), o.Stats.IIOPCalls.Load())
	}
	// Exceptions behave identically on the fast path.
	_, err = ref.Invoke("fail", idl.String("user"))
	if _, ok := err.(*UserException); !ok {
		t.Errorf("colocated user exception: %v", err)
	}
}

func TestThreeORBProductsInterop(t *testing.T) {
	// One server per product; every product's client can call every server —
	// the paper's central interoperability claim.
	products := []Product{Orbix, OrbixWeb, VisiBroker}
	servers := make([]*ORB, len(products))
	iors := make([]*IOR, len(products))
	for i, p := range products {
		servers[i] = New(Options{Product: p, DisableColocation: true})
		if err := servers[i].Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer servers[i].Shutdown()
		ior, err := servers[i].Activate("Echo", newEchoServant())
		if err != nil {
			t.Fatal(err)
		}
		iors[i] = ior
	}
	for _, cp := range products {
		client := New(Options{Product: cp, DisableColocation: true})
		for i := range servers {
			got, err := client.Resolve(iors[i]).Invoke("echo",
				idl.String(string(cp)+"->"+string(products[i])))
			if err != nil {
				t.Fatalf("%s -> %s: %v", cp, products[i], err)
			}
			if got.Str != string(cp)+"->"+string(products[i]) {
				t.Errorf("%s -> %s: got %s", cp, products[i], got)
			}
		}
		client.Shutdown()
	}
}

func TestConcurrentClients(t *testing.T) {
	client, ref := startPair(t)
	_ = client
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				got, err := ref.Invoke("add", idl.Long(int64(g)), idl.Long(int64(i)))
				if err != nil {
					errs <- err
					return
				}
				if got.Int != int64(g+i) {
					errs <- Userf("Mismatch", "got %d want %d", got.Int, g+i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestIORStringify(t *testing.T) {
	ior := &IOR{
		RepoID:    "IDL:Echo:1.0",
		Host:      "dba.icis.qut.edu.au",
		Port:      9001,
		ObjectKey: []byte("CoDatabase/RBH"),
	}
	s := Stringify(ior)
	if !strings.HasPrefix(s, "IOR:") {
		t.Fatalf("stringified = %q", s)
	}
	got, err := Destringify(s)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ior) {
		t.Errorf("round trip: %+v != %+v", got, ior)
	}
}

func TestDestringifyErrors(t *testing.T) {
	for _, s := range []string{"", "IOR:", "IOR:zz", "notanior", "IOR:00"} {
		if _, err := Destringify(s); err == nil {
			t.Errorf("no error for %q", s)
		}
	}
}

func TestActivateErrors(t *testing.T) {
	o := New(Options{Product: Orbix})
	if _, err := o.Activate("x", newEchoServant()); err == nil {
		t.Error("Activate before Listen accepted")
	}
	if err := o.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer o.Shutdown()
	if _, err := o.Activate("x", newEchoServant()); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Activate("x", newEchoServant()); err == nil {
		t.Error("duplicate key accepted")
	}
	keys := o.ActiveKeys()
	if len(keys) != 1 || keys[0] != "x" {
		t.Errorf("ActiveKeys = %v", keys)
	}
	if err := o.Deactivate("x"); err != nil {
		t.Error(err)
	}
	if err := o.Deactivate("x"); err == nil {
		t.Error("double deactivate accepted")
	}
}

func TestDeactivatedObjectNotExist(t *testing.T) {
	client, ref := startPair(t)
	_ = client
	// Deactivate on the server side.
	v, _ := processORBs.Load(ref.IOR().Addr())
	server := v.(*ORB)
	if err := server.Deactivate("Echo"); err != nil {
		t.Fatal(err)
	}
	_, err := ref.Invoke("echo", idl.String("x"))
	se, ok := err.(*SystemException)
	if !ok || se.Name != ExcObjectNotExist {
		t.Errorf("after deactivate: %v", err)
	}
}

func TestHandlerOnUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("On with unknown op did not panic")
		}
	}()
	NewHandler(echoIDL).On("nope", func([]idl.Any) (idl.Any, error) {
		return idl.Null(), nil
	})
}

func TestShutdownUnblocksClients(t *testing.T) {
	server := New(Options{Product: Orbix, DisableColocation: true})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ior, _ := server.Activate("Echo", newEchoServant())
	client := New(Options{Product: OrbixWeb, DisableColocation: true})
	defer client.Shutdown()
	ref := client.Resolve(ior)
	if _, err := ref.Invoke("echo", idl.String("warm")); err != nil {
		t.Fatal(err)
	}
	server.Shutdown()
	if _, err := ref.Invoke("echo", idl.String("cold")); err == nil {
		t.Error("invocation after server shutdown succeeded")
	}
}
