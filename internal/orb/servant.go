package orb

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/idl"
)

// Servant is an object implementation hosted by an object adapter. Invoke
// receives the operation name and the CDR-decoded in-parameters and returns
// the result value. Returning a *UserException produces a USER_EXCEPTION
// reply; any other error produces a SYSTEM_EXCEPTION.
type Servant interface {
	InterfaceDef() *idl.Interface
	Invoke(op string, args []idl.Any) (idl.Any, error)
}

// ContextServant is optionally implemented by servants that want the dispatch
// context — which carries the request's trace parentage as placed by the
// server-side interceptors. The object adapter prefers InvokeCtx when the
// servant provides it and falls back to Invoke otherwise, so existing
// servants keep working unchanged.
type ContextServant interface {
	Servant
	InvokeCtx(ctx context.Context, op string, args []idl.Any) (idl.Any, error)
}

// UserException is an application-level exception that crosses the wire as a
// GIOP USER_EXCEPTION reply and is reconstructed on the client side.
type UserException struct {
	Name    string // exception identifier, e.g. "NotFound"
	Message string
}

// Error implements the error interface.
func (e *UserException) Error() string {
	return fmt.Sprintf("%s: %s", e.Name, e.Message)
}

// Userf builds a UserException with a formatted message.
func Userf(name, format string, args ...any) *UserException {
	return &UserException{Name: name, Message: fmt.Sprintf(format, args...)}
}

// SystemException is an ORB-level failure: unknown object, unknown
// operation, transport failure, or an unclassified servant error.
type SystemException struct {
	Name   string // e.g. "OBJECT_NOT_EXIST", "BAD_OPERATION", "COMM_FAILURE"
	Minor  uint32
	Detail string
}

// Error implements the error interface.
func (e *SystemException) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s (minor %d): %s", e.Name, e.Minor, e.Detail)
	}
	return fmt.Sprintf("%s (minor %d)", e.Name, e.Minor)
}

// Well-known system exception names.
const (
	ExcObjectNotExist = "OBJECT_NOT_EXIST"
	ExcBadOperation   = "BAD_OPERATION"
	ExcCommFailure    = "COMM_FAILURE"
	ExcMarshal        = "MARSHAL"
	ExcUnknown        = "UNKNOWN"
	ExcBadParam       = "BAD_PARAM"
	// ExcTransient marks a call the ORB failed fast without contacting the
	// endpoint (an open circuit breaker); retrying later may succeed.
	ExcTransient = "TRANSIENT"
)

// OpFunc is the handler signature used by Handler servants.
type OpFunc func(args []idl.Any) (idl.Any, error)

// CtxOpFunc is the context-aware handler signature: the context is the
// dispatch context (trace parentage included) for this request.
type CtxOpFunc func(ctx context.Context, args []idl.Any) (idl.Any, error)

// Handler is a map-based Servant: operations are registered as closures
// against an interface definition. It is the reproduction's equivalent of an
// IDL-generated skeleton. Handlers registered with On ignore the dispatch
// context; OnCtx handlers receive it.
type Handler struct {
	iface *idl.Interface
	mu    sync.RWMutex
	ops   map[string]CtxOpFunc
}

// NewHandler creates a Handler servant for the given interface.
func NewHandler(iface *idl.Interface) *Handler {
	return &Handler{iface: iface, ops: make(map[string]CtxOpFunc)}
}

// On registers the implementation of an operation. It panics if the
// operation is not part of the interface, catching skeleton/interface drift
// at construction time rather than at invocation time.
func (h *Handler) On(op string, fn OpFunc) *Handler {
	return h.OnCtx(op, func(_ context.Context, args []idl.Any) (idl.Any, error) {
		return fn(args)
	})
}

// OnCtx registers a context-aware operation implementation. Like On, it
// panics if the operation is not part of the interface.
func (h *Handler) OnCtx(op string, fn CtxOpFunc) *Handler {
	if _, err := h.iface.Op(op); err != nil {
		panic(fmt.Sprintf("orb: Handler.OnCtx: %v", err))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ops[op] = fn
	return h
}

// InterfaceDef implements Servant.
func (h *Handler) InterfaceDef() *idl.Interface { return h.iface }

// Invoke implements Servant.
func (h *Handler) Invoke(op string, args []idl.Any) (idl.Any, error) {
	return h.InvokeCtx(context.Background(), op, args)
}

// InvokeCtx implements ContextServant.
func (h *Handler) InvokeCtx(ctx context.Context, op string, args []idl.Any) (idl.Any, error) {
	def, err := h.iface.Op(op)
	if err != nil {
		return idl.Null(), &SystemException{Name: ExcBadOperation, Detail: err.Error()}
	}
	if want := def.InCount(); len(args) != want {
		return idl.Null(), &SystemException{
			Name:   ExcBadParam,
			Detail: fmt.Sprintf("operation %s expects %d in-params, got %d", op, want, len(args)),
		}
	}
	h.mu.RLock()
	fn, ok := h.ops[op]
	h.mu.RUnlock()
	if !ok {
		return idl.Null(), &SystemException{
			Name:   ExcBadOperation,
			Detail: fmt.Sprintf("operation %s declared but not implemented", op),
		}
	}
	return fn(ctx, args)
}

// Implemented lists the operations with registered handlers, sorted.
func (h *Handler) Implemented() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	names := make([]string, 0, len(h.ops))
	for n := range h.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
