package orb

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"

	"repro/internal/cdr"
	"repro/internal/giop"
	"repro/internal/idl"
)

// acceptLoop accepts IIOP connections until the listener closes.
func (o *ORB) acceptLoop(ln net.Listener) {
	defer o.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-o.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			o.Stats.ProtocolErrors.Add(1)
			continue
		}
		o.Stats.ActiveConns.Add(1)
		o.wg.Add(1)
		go o.serveConn(nc)
	}
}

// serveConn handles one inbound IIOP connection. The loop reads and
// demultiplexes GIOP messages; every Request is dispatched in its own
// goroutine so slow servants do not block the requests pipelined behind them
// on the same connection. Replies are serialized through a shared
// giop.SyncWriter and matched to requests by GIOP request ID, not by stream
// position, so out-of-order completion is fine. In-flight dispatches per
// connection are capped at maxPipelinePerConn — the same depth at which a
// well-behaved client opens another connection — so a client flooding one
// connection stalls its own read loop instead of spawning unbounded servant
// goroutines.
func (o *ORB) serveConn(nc net.Conn) {
	defer o.wg.Done()
	defer o.Stats.ActiveConns.Add(-1)
	defer nc.Close()

	// Close the socket when the ORB shuts down so the read loop unblocks.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-o.closed:
			nc.Close()
		case <-done:
		}
	}()

	br := bufio.NewReader(nc)
	// A failed asynchronous reply flush breaks the stream for every pipelined
	// request, so tear the socket down; in-flight dispatches then fail their
	// own writes and the client sees COMM_FAILURE.
	w := giop.NewSyncWriter(bufio.NewWriter(nc), func(error) { nc.Close() })
	defer w.Close()
	// Bounds concurrent dispatches for this connection; acquiring in the read
	// loop applies backpressure to a flooding client. Dispatch goroutines
	// never need the read loop to make progress (replies flush through w
	// independently), so blocking here cannot deadlock.
	sem := make(chan struct{}, maxPipelinePerConn)
	// Fragmented requests reassemble here, keyed by request ID. The pending
	// cap matches maxPipelinePerConn so a client cannot hold more partial
	// requests open than it could have whole requests in flight; a dispatch
	// slot (sem) is only taken once the logical request is complete.
	ra := giop.NewReassembler(maxPipelinePerConn)
	dispatchReq := func(m *giop.Message) {
		sem <- struct{}{}
		o.wg.Add(1)
		go func() {
			defer o.wg.Done()
			defer func() { <-sem }()
			defer m.Release()
			if !o.handleRequest(w, m) {
				// The reply could not be written: the stream is broken
				// for every other request too, so tear the socket down
				// to unblock the read loop.
				nc.Close()
			}
		}()
	}
	// protocolErr reports a malformed frame to the peer; it returns false
	// when even that failed and the connection must go down.
	protocolErr := func() bool {
		o.Stats.ProtocolErrors.Add(1)
		return w.Write(&giop.Message{Type: giop.MsgMessageError, Order: cdr.BigEndian}) == nil
	}
	for {
		msg, err := giop.Read(br)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				o.Stats.ProtocolErrors.Add(1)
			}
			return
		}
		o.Stats.BytesReceived.Add(int64(len(msg.Body) + giop.HeaderSize))
		switch msg.Type {
		case giop.MsgRequest:
			if msg.More {
				// Initial frame of a fragmented request: its header must be
				// whole (the writer keeps it in the first frame) so the
				// reassembly can be keyed by request ID.
				hdr, err := giop.UnmarshalRequestHeader(msg.BodyDecoder())
				if err == nil {
					err = ra.Begin(hdr.RequestID, msg)
				}
				msg.Release()
				if err != nil && !protocolErr() {
					return
				}
				continue
			}
			dispatchReq(msg)
		case giop.MsgFragment:
			out, err := ra.Fragment(msg)
			msg.Release()
			if err != nil {
				if !protocolErr() {
					return
				}
				continue
			}
			o.Stats.FragmentsReassembled.Add(1)
			if out == nil {
				continue // more fragments expected
			}
			if out.Type != giop.MsgRequest {
				if !protocolErr() {
					return
				}
				continue
			}
			dispatchReq(out)
		case giop.MsgLocateRequest:
			ok := o.handleLocate(w, msg)
			msg.Release()
			if !ok {
				return
			}
		case giop.MsgCancelRequest:
			// The cancelled request may still be executing in its dispatch
			// goroutine; GIOP permits ignoring the cancel, and the client
			// simply discards the eventual reply. A partially reassembled
			// request, though, is dropped here and now.
			if cr, err := giop.UnmarshalCancelRequest(msg.BodyDecoder()); err == nil {
				ra.Cancel(cr.RequestID)
			}
			msg.Release()
		case giop.MsgCloseConnection:
			msg.Release()
			return
		default:
			msg.Release()
			if !protocolErr() {
				return
			}
		}
	}
}

// handleRequest dispatches one GIOP Request and writes the Reply. It reports
// whether the connection is still usable. It runs in its own goroutine, one
// per in-flight request.
func (o *ORB) handleRequest(w *giop.SyncWriter, msg *giop.Message) bool {
	d := msg.BodyDecoder()
	hdr, err := giop.UnmarshalRequestHeader(d)
	if err != nil {
		o.Stats.ProtocolErrors.Add(1)
		return w.Write(&giop.Message{Type: giop.MsgMessageError, Order: msg.Order}) == nil
	}
	args, err := idl.UnmarshalAnys(d)
	if err != nil {
		return o.writeReply(w, msg.Order, hdr, idl.Null(),
			&SystemException{Name: ExcMarshal, Detail: err.Error()}) == nil
	}

	result, invErr := o.dispatchIncoming(context.Background(),
		string(hdr.ObjectKey), hdr.Operation, args, hdr.ServiceContext, "iiop")
	if !hdr.ResponseExpected {
		o.Stats.OnewayRequests.Add(1)
		return true
	}
	return o.writeReply(w, msg.Order, hdr, result, invErr) == nil
}

// dispatchIncoming runs the server request interceptors around a servant
// dispatch; it is used both by the socket path (service contexts come from
// the GIOP request header) and the colocation fast path (they are handed
// across in-process), so interceptor behaviour — trace propagation included —
// is identical on both.
func (o *ORB) dispatchIncoming(ctx context.Context, key, op string, args []idl.Any, svcCtxs []giop.ServiceContext, transport string) (idl.Any, error) {
	sis := o.serverInterceptors()
	if len(sis) == 0 {
		return o.dispatch(ctx, key, op, args)
	}
	ri := &ServerRequestInfo{
		Ctx:             ctx,
		Operation:       op,
		ObjectKey:       []byte(key),
		Transport:       transport,
		ServiceContexts: svcCtxs,
	}
	for _, si := range sis {
		si.ReceiveRequest(ri)
	}
	result, err := o.dispatch(ri.Ctx, key, op, args)
	for i := len(sis) - 1; i >= 0; i-- {
		sis[i].SendReply(ri, err)
	}
	return result, err
}

// dispatch runs the servant invocation for an object key. Context-aware
// servants receive ctx (carrying the interceptors' trace parentage); plain
// servants are invoked as before.
func (o *ORB) dispatch(ctx context.Context, key, op string, args []idl.Any) (idl.Any, error) {
	s, ok := o.lookupServant(key)
	if !ok {
		return idl.Null(), &SystemException{Name: ExcObjectNotExist, Detail: "object key " + key}
	}
	o.Stats.RequestsServed.Add(1)
	if cs, ok := s.(ContextServant); ok {
		return cs.InvokeCtx(ctx, op, args)
	}
	return s.Invoke(op, args)
}

// writeReply encodes the reply for a completed invocation. Bodies above
// Options.FragmentThreshold go out as a fragmented message, so a huge result
// is interleavable with the other replies sharing the connection.
func (o *ORB) writeReply(w *giop.SyncWriter, order cdr.ByteOrder, req *giop.RequestHeader, result idl.Any, invErr error) error {
	e := giop.AcquireBodyEncoder(order)
	defer giop.ReleaseBodyEncoder(e)
	rh := giop.ReplyHeader{RequestID: req.RequestID}
	var body func(*cdr.Encoder)
	switch err := invErr.(type) {
	case nil:
		rh.Status = giop.ReplyNoException
		body = func(e *cdr.Encoder) { result.Marshal(e) }
	case *UserException:
		o.Stats.UserExceptions.Add(1)
		rh.Status = giop.ReplyUserException
		body = func(e *cdr.Encoder) {
			e.WriteString(err.Name)
			e.WriteString(err.Message)
		}
	case *SystemException:
		o.Stats.SysExceptions.Add(1)
		rh.Status = giop.ReplySystemException
		body = func(e *cdr.Encoder) {
			e.WriteString(err.Name)
			e.WriteULong(err.Minor)
			e.WriteString(err.Detail)
		}
	default:
		// Unclassified servant error: surfaces as UNKNOWN, like real ORBs.
		o.Stats.SysExceptions.Add(1)
		rh.Status = giop.ReplySystemException
		body = func(e *cdr.Encoder) {
			e.WriteString(ExcUnknown)
			e.WriteULong(0)
			e.WriteString(invErr.Error())
		}
	}
	rh.Marshal(e)
	hdrLen := e.Len() // the reply header must stay whole in the initial frame
	body(e)
	out := &giop.Message{Type: giop.MsgReply, Order: order, Body: e.Bytes()}
	frames, err := giop.WriteFragmented(w, out, req.RequestID, o.opts.FragmentThreshold, hdrLen)
	if frames > 1 {
		o.Stats.FragmentsSent.Add(int64(frames - 1))
	}
	o.Stats.BytesSent.Add(int64(len(out.Body) + frames*giop.HeaderSize + (frames-1)*4))
	return err
}

// handleLocate answers a GIOP LocateRequest. Locates never run servant code,
// so they are answered synchronously from the read loop.
func (o *ORB) handleLocate(w *giop.SyncWriter, msg *giop.Message) bool {
	o.Stats.LocateRequests.Add(1)
	d := msg.BodyDecoder()
	hdr, err := giop.UnmarshalLocateRequest(d)
	if err != nil {
		o.Stats.ProtocolErrors.Add(1)
		return w.Write(&giop.Message{Type: giop.MsgMessageError, Order: msg.Order}) == nil
	}
	status := giop.LocateUnknownObject
	if _, ok := o.lookupServant(string(hdr.ObjectKey)); ok {
		status = giop.LocateObjectHere
	}
	e := giop.AcquireBodyEncoder(msg.Order)
	defer giop.ReleaseBodyEncoder(e)
	(&giop.LocateReplyHeader{RequestID: hdr.RequestID, Status: status}).Marshal(e)
	out := &giop.Message{Type: giop.MsgLocateReply, Order: msg.Order, Body: e.Bytes()}
	o.Stats.BytesSent.Add(int64(len(out.Body) + giop.HeaderSize))
	return w.Write(out) == nil
}
