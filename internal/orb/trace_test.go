package orb

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/idl"
	"repro/internal/trace"
)

// buildTracedChain boots client → relay → backend ORBs with colocation
// disabled (every hop is a real IIOP socket) and tracing enabled on a shared
// tracer. The relay's echo re-invokes the backend's echo under the dispatch
// context, so one call crosses two IIOP hops.
func buildTracedChain(t *testing.T, tr *trace.Tracer) (client *ORB, relayRef *ObjectRef) {
	t.Helper()
	backend := New(Options{Product: Orbix, DisableColocation: true})
	if err := backend.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(backend.Shutdown)
	backend.EnableTracing(tr)
	backendIOR, err := backend.Activate("Echo", newEchoServant())
	if err != nil {
		t.Fatal(err)
	}

	relay := New(Options{Product: OrbixWeb, DisableColocation: true})
	if err := relay.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(relay.Shutdown)
	relay.EnableTracing(tr)
	backendRef := relay.Resolve(backendIOR)
	relayServant := NewHandler(echoIDL)
	relayServant.OnCtx("echo", func(ctx context.Context, args []idl.Any) (idl.Any, error) {
		return backendRef.InvokeCtx(ctx, "echo", args[0])
	})
	relayIOR, err := relay.Activate("Relay", relayServant)
	if err != nil {
		t.Fatal(err)
	}

	client = New(Options{Product: VisiBroker, DisableColocation: true})
	t.Cleanup(client.Shutdown)
	client.EnableTracing(tr)
	return client, client.Resolve(relayIOR)
}

// chainOf indexes one trace's spans by name and verifies the five-span shape
// of a two-hop traced call: root → client:echo → server:echo(relay) →
// client:echo(relay→backend) → server:echo(backend), all under one trace ID.
func verifyTwoHopTrace(t *testing.T, tr *trace.Tracer, root trace.SpanContext) {
	t.Helper()
	spans := tr.TraceSpans(root.Trace.String())
	if len(spans) != 5 {
		t.Fatalf("trace %s has %d spans, want 5: %+v", root.Trace, len(spans), spans)
	}
	byID := map[string]trace.SpanRecord{}
	for _, s := range spans {
		if s.Trace != root.Trace.String() {
			t.Fatalf("span %s carries trace %s, want %s", s.Name, s.Trace, root.Trace)
		}
		byID[s.Span] = s
	}
	// Walk up from the backend's server span: its ancestry must pass through
	// both hops and terminate at the client's root span.
	var leaf *trace.SpanRecord
	for i := range spans {
		if spans[i].Name != "server:echo" {
			continue
		}
		isLeafTransport := false
		for _, a := range spans[i].Attrs {
			if a.Key == "key" && a.Value == "Echo" {
				isLeafTransport = true
			}
		}
		if isLeafTransport {
			leaf = &spans[i]
		}
	}
	if leaf == nil {
		t.Fatalf("no backend server:echo span in %+v", spans)
	}
	wantNames := []string{"server:echo", "client:echo", "server:echo", "client:echo", "root"}
	cur := *leaf
	for i, want := range wantNames {
		if cur.Name != want {
			t.Fatalf("ancestry[%d] = %s, want %s", i, cur.Name, want)
		}
		if want != "root" {
			for _, a := range cur.Attrs {
				if a.Key == "transport" && a.Value != "iiop" {
					t.Fatalf("span %s transport = %s, want iiop", cur.Name, a.Value)
				}
			}
			next, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %s has dangling parent %s", cur.Name, cur.Parent)
			}
			cur = next
		}
	}
	if cur.Span != root.Span.String() {
		t.Fatalf("ancestry terminates at %s, not the caller's root span", cur.Span)
	}
}

// TestTracePropagationTwoIIOPHops asserts that a span started on the client
// is visible — same trace ID — inside a servant two IIOP hops away.
func TestTracePropagationTwoIIOPHops(t *testing.T) {
	tr := trace.New(trace.Options{Capacity: 64})
	_, relayRef := buildTracedChain(t, tr)

	ctx, root := tr.StartSpan(context.Background(), "root")
	got, err := relayRef.InvokeCtx(ctx, "echo", idl.String("follow me"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Str != "follow me" {
		t.Fatalf("echo = %q", got.Str)
	}
	root.End(nil)
	verifyTwoHopTrace(t, tr, root.Context())
}

// TestTracePropagationConcurrent drives many concurrent two-hop calls over
// the shared pipelined connections and verifies every caller's trace stays
// intact — no span leaks into another caller's trace.
func TestTracePropagationConcurrent(t *testing.T) {
	const goroutines, calls = 8, 10
	tr := trace.New(trace.Options{Capacity: goroutines * calls * 8})
	_, relayRef := buildTracedChain(t, tr)

	roots := make([][]trace.SpanContext, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				ctx, root := tr.StartSpan(context.Background(), "root")
				msg := fmt.Sprintf("g%d-i%d", g, i)
				got, err := relayRef.InvokeCtx(ctx, "echo", idl.String(msg))
				root.End(err)
				if err != nil {
					t.Errorf("%s: %v", msg, err)
					return
				}
				if got.Str != msg {
					t.Errorf("echo = %q, want %q", got.Str, msg)
				}
				roots[g] = append(roots[g], root.Context())
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for g := 0; g < goroutines; g++ {
		for _, root := range roots[g] {
			verifyTwoHopTrace(t, tr, root)
		}
	}
}

// TestColocatedCallTracedLikeIIOP asserts the colocation fast path runs the
// same interceptor chain: one client invocation yields a client span and a
// server span with transport=colocated under the caller's trace.
func TestColocatedCallTracedLikeIIOP(t *testing.T) {
	tr := trace.New(trace.Options{Capacity: 16})
	server := New(Options{Product: Orbix})
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Shutdown)
	server.EnableTracing(tr)
	ior, err := server.Activate("Echo", newEchoServant())
	if err != nil {
		t.Fatal(err)
	}
	ref := server.Resolve(ior)

	ctx, root := tr.StartSpan(context.Background(), "root")
	if _, err := ref.InvokeCtx(ctx, "echo", idl.String("in-process")); err != nil {
		t.Fatal(err)
	}
	root.End(nil)
	if n := server.Stats.ColocatedCalls.Load(); n != 1 {
		t.Fatalf("colocated calls = %d, want 1", n)
	}

	spans := tr.TraceSpans(root.Context().Trace.String())
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want 3 (root, client, server): %+v", len(spans), spans)
	}
	transports := map[string]string{}
	for _, s := range spans {
		for _, a := range s.Attrs {
			if a.Key == "transport" {
				transports[s.Name] = a.Value
			}
		}
	}
	if transports["client:echo"] != "colocated" || transports["server:echo"] != "colocated" {
		t.Errorf("transports = %v, want colocated on both sides", transports)
	}
}
