package orb

import (
	"repro/internal/giop"
	"repro/internal/trace"
)

// tracingInterceptor bridges the ORB's request interceptors to the trace
// package. On the client side it opens a span per invocation and stuffs the
// span context into the tracing service context entry; on the server side it
// decodes that entry, remote-parents a dispatch span onto the caller's trace,
// and hands the servant a context that continues the same trace. The span in
// flight rides the request info's slot table, the reproduction's analogue of
// the PortableInterceptor::Current slot mechanism.
type tracingInterceptor struct {
	t *trace.Tracer
}

// slot keys for the in-flight spans.
type clientSpanSlot struct{}
type serverSpanSlot struct{}

func (ti tracingInterceptor) SendRequest(ri *ClientRequestInfo) {
	ctx, sp := ti.t.StartSpan(ri.Ctx, "client:"+ri.Operation)
	transport := "iiop"
	if ri.Colocated {
		transport = "colocated"
	}
	sp.SetAttr("transport", transport)
	sp.SetAttr("addr", ri.Addr)
	sp.SetAttr("key", string(ri.ObjectKey))
	if ri.Oneway {
		sp.SetAttr("oneway", "true")
	}
	ri.Ctx = ctx
	ri.AddServiceContext(giop.ServiceContextTracing, sp.Context().Encode())
	ri.SetSlot(clientSpanSlot{}, sp)
}

func (ti tracingInterceptor) ReceiveReply(ri *ClientRequestInfo, err error) {
	if sp, _ := ri.Slot(clientSpanSlot{}).(*trace.Span); sp != nil {
		sp.End(err)
	}
}

func (ti tracingInterceptor) ReceiveRequest(ri *ServerRequestInfo) {
	ctx := ri.Ctx
	if data, ok := giop.GetServiceContext(ri.ServiceContexts, giop.ServiceContextTracing); ok {
		if sc, ok := trace.DecodeSpanContext(data); ok {
			ctx = trace.ContextWithRemote(ctx, sc)
		}
	}
	ctx, sp := ti.t.StartSpan(ctx, "server:"+ri.Operation)
	sp.SetAttr("transport", ri.Transport)
	sp.SetAttr("key", string(ri.ObjectKey))
	ri.Ctx = ctx
	ri.SetSlot(serverSpanSlot{}, sp)
}

func (ti tracingInterceptor) SendReply(ri *ServerRequestInfo, err error) {
	if sp, _ := ri.Slot(serverSpanSlot{}).(*trace.Span); sp != nil {
		sp.End(err)
	}
}

// EnableTracing registers the tracing client and server interceptors on the
// ORB, recording into t (trace.Default() when t is nil). Call before issuing
// or serving requests; every invocation then carries its trace ID across
// IIOP hops and colocated calls in a dedicated GIOP service context entry.
func (o *ORB) EnableTracing(t *trace.Tracer) {
	if t == nil {
		t = trace.Default()
	}
	ti := tracingInterceptor{t: t}
	o.RegisterClientInterceptor(ti)
	o.RegisterServerInterceptor(ti)
}
