package orb

import (
	"net"
	"time"
)

// Transport supplies the network implementation behind an ORB: Listen binds
// the server-side IIOP endpoint, DialTimeout opens client connections. The
// default is the operating system's TCP stack (tcpTransport); deterministic
// tests inject an in-memory implementation (internal/simnet) so whole
// federations run in one process with zero real sockets.
//
// The addr strings are the same "host:port" forms the ORB uses everywhere
// (IORs, the colocation registry, fault-plan rules); a Transport may
// interpret the host part in its own namespace as long as Listen reports a
// resolvable address back through the returned listener's Addr().
type Transport interface {
	Listen(addr string) (net.Listener, error)
	DialTimeout(addr string, timeout time.Duration) (net.Conn, error)
}

// Sleeper is optionally implemented by Transports that own a virtual clock.
// When present, time the ORB spends sleeping on behalf of the transport —
// injected fault latency (FaultRule.LatencyMS) — is delegated to it, so the
// delay becomes a virtual-time event instead of a wall-clock stall.
type Sleeper interface {
	Sleep(d time.Duration)
}

// tcpTransport is the default Transport: the host's real TCP stack.
type tcpTransport struct{}

func (tcpTransport) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

func (tcpTransport) DialTimeout(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}
