package query

import "hash/fnv"

// bloomFilter is the compressed form of a semi-join key set: when the build
// side yields more distinct keys than the exact-push threshold, the
// coordinator tests probe rows against this filter first and consults the
// exact set only on filter hits. The filter is deterministic (FNV-1a double
// hashing over the canonical key string), so the same build set always
// produces the same filter — a property the differential suite leans on.
type bloomFilter struct {
	words []uint64
	bits  uint64 // len(words) * 64
	k     int    // probes per key
}

// newBloomFilter sizes a filter for n keys at bitsPerKey bits each (minimum
// 64 bits total) with the standard k = bits·ln2 probe count.
func newBloomFilter(n, bitsPerKey int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	bits := uint64(n * bitsPerKey)
	if bits < 64 {
		bits = 64
	}
	bits = (bits + 63) &^ 63
	k := int(float64(bitsPerKey)*0.69314718 + 0.5)
	if k < 1 {
		k = 1
	}
	return &bloomFilter{words: make([]uint64, bits/64), bits: bits, k: k}
}

// hashPair derives the two independent hash values double hashing composes:
// probe i tests bit (h1 + i*h2) mod bits.
func bloomHashPair(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	h.Write([]byte{0xff})
	h2 := h.Sum64() | 1 // odd, so probes cycle the whole table
	return h1, h2
}

// Add inserts a canonical key.
func (f *bloomFilter) Add(key string) {
	h1, h2 := bloomHashPair(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.bits
		f.words[bit/64] |= 1 << (bit % 64)
	}
}

// MayContain reports whether the key might be in the set; false is definite.
func (f *bloomFilter) MayContain(key string) bool {
	h1, h2 := bloomHashPair(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.bits
		if f.words[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
