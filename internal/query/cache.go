package query

import (
	"context"
	"strings"

	"repro/internal/codb"
	"repro/internal/mdcache"
)

// This file is the query processor's view of the federation metadata cache
// (Config.Cache). Every helper is nil-safe — with no cache configured the
// fetch runs directly — and returns the mdcache.Outcome so call sites can
// annotate spans and MemberStatus entries with cache=hit|miss|….
//
// Two freshness modes apply, chosen per co-database:
//
//   - The node's own co-database (in-process) verifies on every hit against
//     CoDatabase.Version(), an atomic load: local mutations through any path
//     are visible immediately, at no wire cost.
//   - Peer co-databases are served blind within the TTL — that zero-RTT hit
//     is the point of the cache — and revalidate on expiry with one remote
//     version() call instead of refetching member lists.
//
// Cached values are shared across sessions and goroutines: callers must
// treat returned slices and descriptors as read-only.

// probeResult is the cached unit of a stage-3 discovery probe: both
// find_coalitions and find_links answers from one peer, held as a single
// entry so N concurrent same-topic resolves coalesce into exactly one
// two-call fan-out per peer.
type probeResult struct {
	Coals []codb.Match
	Links []codb.Match
}

// srcKey identifies a co-database for cache keying by its object address.
// Clients are canonical (Config.Local plus the codbByRef memo), so the
// rendered address is computed once per client and remembered.
func (p *Processor) srcKey(c *codb.Client) string {
	if k, ok := p.srcKeys.Load(c); ok {
		return k.(string)
	}
	ior := c.Ref().IOR()
	k := ior.Addr() + "/" + ior.Key()
	p.srcKeys.Store(c, k)
	return k
}

// versioner returns the schema-version reader for client c and whether hits
// should be verified against it every time (true only for the in-process
// co-database, where the read is free and always current).
func (p *Processor) versioner(c *codb.Client) (mdcache.Versioner, bool) {
	if cd := p.cfg.LocalCoDB; cd != nil && c == p.cfg.Local {
		return func(context.Context) (uint64, error) { return cd.Version(), nil }, true
	}
	return func(ctx context.Context) (uint64, error) { return c.Version(ctx) }, false
}

func (p *Processor) cacheGet(ctx context.Context, c *codb.Client, key string, fetch mdcache.Fetcher) (any, mdcache.Outcome, error) {
	ver, verify := p.versioner(c)
	return p.cfg.Cache.Get(ctx, key, mdcache.Request{Fetch: fetch, Version: ver, VerifyHit: verify})
}

// probeKey is the cache key of one peer's stage-3 discovery probe.
func (p *Processor) probeKey(c *codb.Client, topic string) string {
	return "probe|" + p.srcKey(c) + "|" + strings.ToLower(topic)
}

// peekProbe returns a peer's probe result if a fresh positive entry is
// cached, without verifying, coalescing or fetching. resolveTopic uses it to
// answer repeat-topic discovery before paying for the per-peer fan-out
// scaffolding (goroutine, span, call-stats) that a cold probe needs. Peer
// probes are always TTL-mode entries (the in-process co-database is never
// probed), so the blind serve matches what a full Get would do on a hit.
func (p *Processor) peekProbe(c *codb.Client, topic string) (probeResult, bool) {
	v, ok := p.cfg.Cache.Peek(p.probeKey(c, topic))
	if !ok {
		return probeResult{}, false
	}
	return v.(probeResult), true
}

// cachedProbe runs (or replays) one peer's stage-3 discovery probe.
func (p *Processor) cachedProbe(ctx context.Context, c *codb.Client, topic string) (probeResult, mdcache.Outcome, error) {
	key := p.probeKey(c, topic)
	v, out, err := p.cacheGet(ctx, c, key, func(ctx context.Context) (any, error) {
		coals, err := c.FindCoalitions(ctx, topic)
		if err != nil {
			return nil, err
		}
		links, err := c.FindLinks(ctx, topic)
		if err != nil {
			return nil, err
		}
		return probeResult{Coals: coals, Links: links}, nil
	})
	if err != nil || v == nil {
		return probeResult{}, out, err
	}
	return v.(probeResult), out, nil
}

// cachedFindCoalitions scores a co-database's coalitions against a topic.
func (p *Processor) cachedFindCoalitions(ctx context.Context, c *codb.Client, topic string) ([]codb.Match, mdcache.Outcome, error) {
	key := "findc|" + p.srcKey(c) + "|" + strings.ToLower(topic)
	v, out, err := p.cacheGet(ctx, c, key, func(ctx context.Context) (any, error) {
		return c.FindCoalitions(ctx, topic)
	})
	if err != nil || v == nil {
		return nil, out, err
	}
	return v.([]codb.Match), out, nil
}

// cachedFindLinks scores a co-database's service links against a topic.
func (p *Processor) cachedFindLinks(ctx context.Context, c *codb.Client, topic string) ([]codb.Match, mdcache.Outcome, error) {
	key := "findl|" + p.srcKey(c) + "|" + strings.ToLower(topic)
	v, out, err := p.cacheGet(ctx, c, key, func(ctx context.Context) (any, error) {
		return c.FindLinks(ctx, topic)
	})
	if err != nil || v == nil {
		return nil, out, err
	}
	return v.([]codb.Match), out, nil
}

// cachedCoalitions lists a co-database's coalition classes.
func (p *Processor) cachedCoalitions(ctx context.Context, c *codb.Client) ([]string, mdcache.Outcome, error) {
	v, out, err := p.cacheGet(ctx, c, "coalitions|"+p.srcKey(c), func(ctx context.Context) (any, error) {
		return c.Coalitions(ctx)
	})
	if err != nil || v == nil {
		return nil, out, err
	}
	return v.([]string), out, nil
}

// cachedMemberOf lists the coalitions a co-database's owner belongs to.
func (p *Processor) cachedMemberOf(ctx context.Context, c *codb.Client) ([]string, mdcache.Outcome, error) {
	v, out, err := p.cacheGet(ctx, c, "memberof|"+p.srcKey(c), func(ctx context.Context) (any, error) {
		return c.MemberOf(ctx)
	})
	if err != nil || v == nil {
		return nil, out, err
	}
	return v.([]string), out, nil
}

// cachedInstances lists a coalition's member descriptors.
func (p *Processor) cachedInstances(ctx context.Context, c *codb.Client, coalition string) ([]*codb.SourceDescriptor, mdcache.Outcome, error) {
	key := "instances|" + p.srcKey(c) + "|" + strings.ToLower(coalition)
	v, out, err := p.cacheGet(ctx, c, key, func(ctx context.Context) (any, error) {
		return c.Instances(ctx, coalition)
	})
	if err != nil || v == nil {
		return nil, out, err
	}
	return v.([]*codb.SourceDescriptor), out, nil
}

// cachedLinks lists a co-database's service links.
func (p *Processor) cachedLinks(ctx context.Context, c *codb.Client) ([]*codb.ServiceLink, mdcache.Outcome, error) {
	v, out, err := p.cacheGet(ctx, c, "links|"+p.srcKey(c), func(ctx context.Context) (any, error) {
		return c.Links(ctx)
	})
	if err != nil || v == nil {
		return nil, out, err
	}
	return v.([]*codb.ServiceLink), out, nil
}

// cachedAccessInfo fetches a source descriptor by database name.
func (p *Processor) cachedAccessInfo(ctx context.Context, c *codb.Client, source string) (*codb.SourceDescriptor, mdcache.Outcome, error) {
	key := "access|" + p.srcKey(c) + "|" + strings.ToLower(source)
	v, out, err := p.cacheGet(ctx, c, key, func(ctx context.Context) (any, error) {
		return c.AccessInfo(ctx, source)
	})
	if err != nil || v == nil {
		return nil, out, err
	}
	return v.(*codb.SourceDescriptor), out, nil
}

// peerTarget is one stage-3 probe target: a coalition peer's member name,
// co-database reference and canonical client.
type peerTarget struct {
	Name string
	Ref  string
	Peer *codb.Client
}

// peerGroup is one coalition's contribution to the stage-3 probe-target list:
// the peers that entered the list through it, in member order. Hierarchical
// routing shards groups; flat routing ignores the grouping and walks the
// concatenation, so both modes see the same targets in the same order.
type peerGroup struct {
	Coalition string
	Members   []peerTarget
}

// cachedPeerGroups assembles (or replays) the deduplicated probe-target list
// for stage-3 discovery, grouped by the coalition that contributed each peer:
// every distinct peer co-database reachable through the coalitions the local
// owner belongs to, in deterministic member order (a peer reachable through
// several coalitions counts for the first one enumerated, exactly where the
// pre-grouping flat list held it). The list is itself a cache entry — derived
// purely from local metadata, it shares the local co-database's
// version-verified freshness — so a repeat discovery skips the member-of and
// per-coalition instance lookups entirely.
func (p *Processor) cachedPeerGroups(ctx context.Context, local *codb.Client) ([]peerGroup, mdcache.Outcome, error) {
	key := "peers|" + p.srcKey(local)
	v, out, err := p.cacheGet(ctx, local, key, func(ctx context.Context) (any, error) {
		memberOf, _, err := p.cachedMemberOf(ctx, local)
		if err != nil {
			return nil, err
		}
		var groups []peerGroup
		seen := map[string]bool{}
		for _, coalition := range memberOf {
			members, _, err := p.cachedInstances(ctx, local, coalition)
			if err != nil {
				continue
			}
			var g []peerTarget
			for _, m := range members {
				if strings.EqualFold(m.Name, p.cfg.Home) || m.CoDBRef == "" || seen[m.CoDBRef] {
					continue
				}
				peer, err := p.codbByRef(m.CoDBRef)
				if err != nil {
					continue
				}
				seen[m.CoDBRef] = true
				g = append(g, peerTarget{Name: m.Name, Ref: m.CoDBRef, Peer: peer})
			}
			if len(g) > 0 {
				groups = append(groups, peerGroup{Coalition: coalition, Members: g})
			}
		}
		return groups, nil
	})
	if err != nil || v == nil {
		return nil, out, err
	}
	return v.([]peerGroup), out, nil
}

// invalidateCache eagerly empties the metadata cache after a statement that
// mutates the information space (Join/Leave, Create Coalition/Link), so the
// change is observable immediately instead of after TTL/version convergence.
func (p *Processor) invalidateCache() { p.cfg.Cache.InvalidateAll() }
