package query_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/codb"
	"repro/internal/core"
	"repro/internal/idl"
	"repro/internal/orb"
)

// opCounter wraps a co-database servant and counts invocations per operation,
// so tests can assert how many probe calls actually crossed the wire.
type opCounter struct {
	inner orb.Servant

	mu     sync.Mutex
	counts map[string]int
}

func newOpCounter(inner orb.Servant) *opCounter {
	return &opCounter{inner: inner, counts: map[string]int{}}
}

func (c *opCounter) bump(op string) {
	c.mu.Lock()
	c.counts[op]++
	c.mu.Unlock()
}

func (c *opCounter) count(op string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[op]
}

func (c *opCounter) InterfaceDef() *idl.Interface { return c.inner.InterfaceDef() }

func (c *opCounter) Invoke(op string, args []idl.Any) (idl.Any, error) {
	c.bump(op)
	return c.inner.Invoke(op, args)
}

func (c *opCounter) InvokeCtx(ctx context.Context, op string, args []idl.Any) (idl.Any, error) {
	c.bump(op)
	if cs, ok := c.inner.(orb.ContextServant); ok {
		return cs.InvokeCtx(ctx, op, args)
	}
	return c.inner.Invoke(op, args)
}

// countPeerOps replaces a node's co-database servant with a counting wrapper.
// The object key is unchanged, so descriptors that embed the old IOR still
// resolve to the wrapped servant.
func countPeerOps(t *testing.T, n *core.Node) *opCounter {
	t.Helper()
	key := "CoDatabase/" + n.Config.Name
	if err := n.Config.ORB.Deactivate(key); err != nil {
		t.Fatal(err)
	}
	counter := newOpCounter(codb.NewServant(n.CoDB))
	if _, err := n.Config.ORB.Activate(key, counter); err != nil {
		t.Fatal(err)
	}
	return counter
}

// TestRepeatTopicDiscoveryCacheHit exercises the repeat-discovery fast path:
// the first resolve of a topic fans out to the coalition peer, the second is
// answered entirely from the metadata cache — no wire calls, probes flagged
// Cached in the member statuses.
func TestRepeatTopicDiscoveryCacheHit(t *testing.T) {
	_, a, b := twoNodeFixture(t)
	counter := countPeerOps(t, b)
	s := a.NewSession()

	// "zebra" matches nothing locally, so discovery escalates to stage 3 and
	// probes Beta.
	resp, err := s.Execute(context.Background(), "Find Coalitions With Information zebra;")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Members) != 1 || resp.Members[0].Member != "Beta" {
		t.Fatalf("first resolve probes = %+v", resp.Members)
	}
	if resp.Members[0].Cached {
		t.Error("first probe reported cached")
	}
	if got := counter.count("find_coalitions"); got != 1 {
		t.Fatalf("find_coalitions after first resolve = %d", got)
	}

	resp, err = s.Execute(context.Background(), "Find Coalitions With Information zebra;")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Members) != 1 || !resp.Members[0].Cached {
		t.Fatalf("second resolve not served from cache: %+v", resp.Members)
	}
	if got := counter.count("find_coalitions"); got != 1 {
		t.Errorf("find_coalitions after cached resolve = %d, want 1", got)
	}
	if got := counter.count("find_links"); got != 1 {
		t.Errorf("find_links after cached resolve = %d, want 1", got)
	}
	if st := a.MDCache.Snapshot(); st.Hits == 0 {
		t.Errorf("no cache hits recorded: %+v", st)
	}
}

// TestConcurrentResolveSingleflight asserts the coalescing guarantee: N
// concurrent resolves of the same cold topic issue exactly one probe fan-out
// (one find_coalitions + one find_links per peer), everyone else rides the
// leader's flight.
func TestConcurrentResolveSingleflight(t *testing.T) {
	_, a, b := twoNodeFixture(t)
	counter := countPeerOps(t, b)

	const N = 16
	var wg sync.WaitGroup
	errs := make(chan error, N)
	start := make(chan struct{})
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			s := a.NewSession()
			if _, err := s.Execute(context.Background(), "Find Coalitions With Information zebra;"); err != nil {
				errs <- err
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := counter.count("find_coalitions"); got != 1 {
		t.Errorf("find_coalitions across %d concurrent resolves = %d, want 1", N, got)
	}
	if got := counter.count("find_links"); got != 1 {
		t.Errorf("find_links across %d concurrent resolves = %d, want 1", N, got)
	}
	st := a.MDCache.Snapshot()
	if st.Coalesced+st.Hits == 0 {
		t.Errorf("no coalescing recorded across concurrent resolves: %+v", st)
	}
}

// TestCacheSeesJoinThroughLocalVersion covers eager visibility of membership
// churn: the local co-database verifies every hit against its schema version,
// so a peer joining a coalition (which writes a member into our co-database
// and bumps the version) is visible on the very next statement, cache or not.
func TestCacheSeesJoinThroughLocalVersion(t *testing.T) {
	f, a, _ := twoNodeFixture(t)
	s := a.NewSession()

	resp, err := s.Execute(context.Background(), "Display Instances of Class Records;")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(resp.Text, "Gamma") {
		t.Fatal("Gamma visible before joining")
	}

	c, err := f.AddNode(orb.OrbixWeb, core.NodeConfig{
		Name: "Gamma", Engine: core.EngineSybase,
		InformationType: "gamma records",
		Schema:          "CREATE TABLE g (x INT);",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddLink(core.LinkSpec{Name: "G_to_Records", FromKind: "database",
		From: "Gamma", ToKind: "coalition", To: "Records", InfoType: "records"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewSession().Execute(context.Background(), "Join Coalition Records;"); err != nil {
		t.Fatal(err)
	}

	// Same session, same statement: the cached member list must be discarded
	// because the local co-database's version moved.
	resp, err = s.Execute(context.Background(), "Display Instances of Class Records;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "Gamma") {
		t.Errorf("join not visible through cache:\n%s", resp.Text)
	}
}

// TestRemotePeerRevalidationAfterTTL covers the remote-churn path: a peer's
// probe results are served blind inside the TTL, and after expiry one
// version() call detects the peer's schema change and triggers a refetch.
func TestRemotePeerRevalidationAfterTTL(t *testing.T) {
	f, err := core.NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Shutdown)
	a, err := f.AddNode(orb.VisiBroker, core.NodeConfig{
		Name: "Alpha", Engine: core.EngineOracle,
		InformationType: "alpha records",
		Schema:          "CREATE TABLE r (k INT);",
		MDCacheTTL:      30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.AddNode(orb.Orbix, core.NodeConfig{
		Name: "Beta", Engine: core.EngineDB2,
		InformationType: "beta records",
		Schema:          "CREATE TABLE s (x INT);",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.DefineCoalition("Records", "", "shared records", "Alpha", "Beta"); err != nil {
		t.Fatal(err)
	}

	s := a.NewSession()
	resp, err := s.Execute(context.Background(), "Find Coalitions With Information zebra;")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range resp.Leads {
		if strings.EqualFold(l.Coalition, "ZebraStudies") {
			t.Fatal("ZebraStudies visible before it exists")
		}
	}

	// Beta learns a new coalition matching the topic; its schema version
	// moves, invalidating Alpha's cached probe at the next revalidation.
	if err := b.CoDB.DefineCoalition("ZebraStudies", "", "zebra research"); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = s.Execute(context.Background(), "Find Coalitions With Information zebra;")
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, l := range resp.Leads {
			if strings.EqualFold(l.Coalition, "ZebraStudies") {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer churn never became visible; leads = %+v", resp.Leads)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := a.MDCache.Snapshot(); st.Misses < 2 {
		t.Errorf("expected a refetch after version change: %+v", st)
	}
}

// TestPolicySettersRaceWithExecute is the -race regression test for the old
// data race between SetFanOut/SetMemberPolicy and a concurrently running
// Execute (both now go through atomics).
func TestPolicySettersRaceWithExecute(t *testing.T) {
	_, a, _ := twoNodeFixture(t)
	stop := make(chan struct{})
	setterDone := make(chan struct{})
	go func() {
		defer close(setterDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			a.Processor.SetFanOut(i%4 + 1)
			a.Processor.SetMemberPolicy(i%2+1, time.Duration(i%3)*time.Millisecond+time.Second)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := a.NewSession()
			for j := 0; j < 20; j++ {
				stmt := fmt.Sprintf("Find Coalitions With Information topic%d;", j%5)
				if _, err := s.Execute(context.Background(), stmt); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-setterDone
}
