package query

import (
	"context"
	"runtime"
	"sync"
)

// defaultFanOut is the worker-pool width used when Config.FanOut is unset.
// Member calls are dominated by IIOP round trips (I/O, not CPU), so the pool
// is wider than the core count.
func defaultFanOut() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

// fanOut runs fn(0..n-1) on at most workers goroutines and returns when all
// calls have finished. Callers write results into index-addressed slices,
// which keeps result ordering deterministic regardless of completion order.
// workers <= 0 selects the default width; workers == 1 degenerates to a
// plain serial loop (the pre-parallel behaviour, kept for benchmarking).
func fanOut(n, workers int, fn func(int)) {
	fanOutCtx(context.Background(), n, workers, fn)
}

// fanOutCtx is fanOut under a caller context: once the context ends, no
// further indices are handed out — in-flight calls finish (they observe the
// same context through their own plumbing), but undispatched work is skipped.
// Callers detect skipped indices by their untouched result slots.
func fanOutCtx(ctx context.Context, n, workers int, fn func(int)) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = defaultFanOut()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
}
