package query_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/codb"
	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/simnet"
)

// This file is the fault suite ported onto the deterministic in-memory
// transport (internal/simnet): dead members become host partitions, slow
// members become blackholed links, and injected latency becomes virtual
// time. fault_test.go keeps one socket-based smoke copy of the acceptance
// scenario so the degradation path still runs against real TCP.

// simChaosFed mirrors chaosFed over simnet: home and every member on their
// own ORB and simulated host, so links can be cut per member.
type simChaosFed struct {
	net     *simnet.Net
	home    *core.Node
	homeORB *orb.ORB
	members []*core.Node
	addrs   []string // addrs[i] is the simulated IIOP address of member i
	hosts   []string // hosts[i] is the simulated host of member i
	hostOf  string   // the home node's simulated host
}

func buildSimChaosFed(t *testing.T, n int, clientOpts orb.Options) *simChaosFed {
	t.Helper()
	snet := simnet.New(1)
	t.Cleanup(func() { snet.Close() })
	homeEP := snet.Endpoint("home")
	clientOpts.Product = orb.VisiBroker
	clientOpts.Transport = homeEP
	clientOpts.DisableColocation = true
	homeORB := orb.New(clientOpts)
	if err := homeORB.Listen(":0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(homeORB.Shutdown)
	home, err := core.NewNode(core.NodeConfig{
		Name: "Home", Engine: core.EngineOracle, ORB: homeORB,
		InformationType: "home records",
		Schema:          "CREATE TABLE h (x INT);",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := home.CoDB.DefineCoalition("Records", "", "chaos coalition"); err != nil {
		t.Fatal(err)
	}
	fed := &simChaosFed{net: snet, home: home, homeORB: homeORB, hostOf: homeEP.Host()}
	for i := 0; i < n; i++ {
		ep := snet.Endpoint(fmt.Sprintf("m%d", i))
		mo := orb.New(orb.Options{Product: orb.Orbix, Transport: ep, DisableColocation: true})
		if err := mo.Listen(":0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(mo.Shutdown)
		m, err := core.NewNode(core.NodeConfig{
			Name: fmt.Sprintf("M%d", i), Engine: core.EngineOracle, ORB: mo,
			InformationType: "records",
			Schema: fmt.Sprintf(`CREATE TABLE r (k VARCHAR(16) PRIMARY KEY, v INT);
				INSERT INTO r VALUES ('a', %d);`, i),
			Interface: []codb.ExportedType{{
				Name: "R",
				Functions: []codb.ExportedFunction{{
					Name: "V", Returns: "int",
					Table: "r", ResultColumn: "v", ArgColumn: "k",
				}},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := home.CoDB.AddMember("Records", m.Descriptor); err != nil {
			t.Fatal(err)
		}
		fed.members = append(fed.members, m)
		fed.addrs = append(fed.addrs, mo.Addr())
		fed.hosts = append(fed.hosts, ep.Host())
	}
	return fed
}

// kill partitions the home node away from member i: dials are refused and
// live connections reset, the simulated analogue of FailConnect.
func (f *simChaosFed) kill(i int) { f.net.Partition(f.hostOf, f.hosts[i]) }

// stall blackholes the link to member i: requests are swallowed without an
// answer, so only the caller's deadline ends the wait — the simulated
// analogue of a pathologically slow member.
func (f *simChaosFed) stall(i int) { f.net.Blackhole(f.hostOf, f.hosts[i]) }

// TestSimChaosPartialResultDeadMember: one of three members is partitioned
// away; the coalition query degrades instead of aborting — rows from both
// survivors, a status row for every member, Partial set.
func TestSimChaosPartialResultDeadMember(t *testing.T) {
	fed := buildSimChaosFed(t, 3, orb.Options{
		Retry: orb.RetryPolicy{MaxAttempts: 2},
	})
	fed.kill(1)
	s := fed.home.NewSession()
	resp, err := s.Execute(context.Background(), chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Partial {
		t.Error("Partial = false with a dead member")
	}
	if len(resp.Members) != 3 {
		t.Fatalf("member statuses = %d, want 3", len(resp.Members))
	}
	ok := 0
	for _, m := range resp.Members {
		switch m.Member {
		case "M1":
			if m.OK() {
				t.Errorf("dead member M1 reported OK")
			}
			if m.ErrClass != "comm" {
				t.Errorf("M1 ErrClass = %q, want comm (%s)", m.ErrClass, m.Err)
			}
			if m.Attempts != 2 {
				t.Errorf("M1 attempts = %d, want 2 (retry)", m.Attempts)
			}
		default:
			if !m.OK() {
				t.Errorf("healthy member %s failed: %s", m.Member, m.Err)
			}
			ok++
		}
	}
	if ok != 2 {
		t.Errorf("healthy members = %d, want 2", ok)
	}
	if len(resp.Result.Rows) != 2 {
		t.Errorf("merged rows = %d, want 2 (one per survivor)", len(resp.Result.Rows))
	}
	if !strings.Contains(resp.Text, "partial result: 2 of 3 member(s) answered") {
		t.Errorf("text missing partial marker:\n%s", resp.Text)
	}
}

// TestSimChaosSlowMemberBoundedByMemberTimeout: a blackholed member never
// answers; MemberTimeout bounds the whole statement, reporting the silent
// member as timed out while the fast ones answer.
func TestSimChaosSlowMemberBoundedByMemberTimeout(t *testing.T) {
	fed := buildSimChaosFed(t, 3, orb.Options{})
	fed.stall(2)
	fed.home.Processor.SetMemberPolicy(1, 200*time.Millisecond)
	s := fed.home.NewSession()
	start := time.Now()
	resp, err := s.Execute(context.Background(), chaosQuery)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("statement took %v; MemberTimeout did not bound the silent member", elapsed)
	}
	if !resp.Partial {
		t.Error("Partial = false with a timed-out member")
	}
	for _, m := range resp.Members {
		if m.Member == "M2" {
			if m.ErrClass != "timeout" {
				t.Errorf("M2 ErrClass = %q, want timeout (%s)", m.ErrClass, m.Err)
			}
		} else if !m.OK() {
			t.Errorf("fast member %s failed: %s", m.Member, m.Err)
		}
	}
	if len(resp.Result.Rows) != 2 {
		t.Errorf("merged rows = %d, want 2", len(resp.Result.Rows))
	}
}

// TestSimChaosQuorumFailure: MinMembers above the surviving count fails the
// statement with the quorum diagnostics.
func TestSimChaosQuorumFailure(t *testing.T) {
	fed := buildSimChaosFed(t, 3, orb.Options{})
	fed.kill(0)
	fed.home.Processor.SetMemberPolicy(3, 0)
	s := fed.home.NewSession()
	_, err := s.Execute(context.Background(), chaosQuery)
	if err == nil {
		t.Fatal("quorum 3 with a dead member succeeded")
	}
	if !strings.Contains(err.Error(), "2 of 3 member(s) answered, need 3") {
		t.Errorf("quorum error = %v", err)
	}
}

// TestSimChaosDegradedFederationQuery: one partitioned member plus one
// blackholed member out of four. The query comes back within the deadline
// with Partial set, a status for every member, rows from the healthy pair.
func TestSimChaosDegradedFederationQuery(t *testing.T) {
	fed := buildSimChaosFed(t, 4, orb.Options{
		Retry: orb.RetryPolicy{MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond},
	})
	fed.kill(0)
	fed.stall(1)
	fed.home.Processor.SetMemberPolicy(1, 250*time.Millisecond)
	s := fed.home.NewSession()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	start := time.Now()
	resp, err := s.Execute(ctx, chaosQuery)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("degraded query took %v, want well under the 3s deadline", elapsed)
	}
	if !resp.Partial {
		t.Error("Partial = false")
	}
	if len(resp.Members) != 4 {
		t.Fatalf("member statuses = %d, want 4", len(resp.Members))
	}
	classes := map[string]string{}
	for _, m := range resp.Members {
		classes[m.Member] = m.ErrClass
	}
	if classes["M0"] != "comm" {
		t.Errorf("unreachable M0 class = %q, want comm", classes["M0"])
	}
	if classes["M1"] != "timeout" {
		t.Errorf("silent M1 class = %q, want timeout", classes["M1"])
	}
	if classes["M2"] != "" || classes["M3"] != "" {
		t.Errorf("healthy members failed: M2=%q M3=%q", classes["M2"], classes["M3"])
	}
	if len(resp.Result.Rows) != 2 {
		t.Errorf("merged rows = %d, want 2 (one per healthy member)", len(resp.Result.Rows))
	}
	sources := map[string]bool{}
	for _, row := range resp.Result.Rows {
		sources[row[0].Str] = true
	}
	if !sources["M2"] || !sources["M3"] {
		t.Errorf("rows missing a healthy member: %v", sources)
	}
}

// TestSimChaosBreakerShieldsRepeatedQueries: after enough refused dials the
// home ORB's breaker opens for the partitioned member's endpoint and later
// statements fail fast without dialing.
func TestSimChaosBreakerShieldsRepeatedQueries(t *testing.T) {
	fed := buildSimChaosFed(t, 2, orb.Options{
		Breaker: orb.BreakerPolicy{Threshold: 2, Cooldown: time.Hour},
	})
	fed.kill(0)
	s := fed.home.NewSession()
	for i := 0; i < 3; i++ {
		resp, err := s.Execute(context.Background(), chaosQuery)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Partial {
			t.Fatalf("round %d: Partial = false", i)
		}
	}
	states := fed.homeORB.BreakerSnapshot()
	st, ok := states[fed.addrs[0]]
	if !ok || st.State != orb.BreakerOpen {
		t.Fatalf("breaker for dead member = %+v, want open", st)
	}
	dialsBefore := fed.net.Stats().Dials
	resp, err := s.Execute(context.Background(), chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range resp.Members {
		if m.Member == "M0" && m.ErrClass != "breaker" {
			t.Errorf("M0 class = %q, want breaker (%s)", m.ErrClass, m.Err)
		}
	}
	if fed.homeORB.Stats.BreakerRejects.Load() == 0 {
		t.Error("no breaker rejects counted")
	}
	if dials := fed.net.Stats().Dials; dials != dialsBefore {
		t.Errorf("open breaker still dialed: %d -> %d", dialsBefore, dials)
	}
}
