package query_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/codb"
	"repro/internal/core"
	"repro/internal/orb"
)

// chaosFed is a hand-rolled federation for fault-injection tests. Unlike
// core.Federation (three shared ORBs), every member runs on its own ORB so
// each has a distinct IIOP address that fault rules can target individually.
type chaosFed struct {
	home    *core.Node
	homeORB *orb.ORB
	members []*core.Node
	addrs   []string // addrs[i] is the IIOP address of member i
}

// buildChaosFed boots a home node (on an ORB built from clientOpts, which
// carries the retry/breaker/timeout policy under test) and n coalition
// members, each on its own ORB. All members export function V over table r,
// and each holds one distinguishing row ('a', i).
func buildChaosFed(t *testing.T, n int, clientOpts orb.Options) *chaosFed {
	t.Helper()
	clientOpts.Product = orb.VisiBroker
	// Colocation is process-wide (keyed by address), so without this the
	// home node would short-circuit member calls in-process and bypass the
	// fault transport entirely.
	clientOpts.DisableColocation = true
	homeORB := orb.New(clientOpts)
	if err := homeORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(homeORB.Shutdown)
	home, err := core.NewNode(core.NodeConfig{
		Name: "Home", Engine: core.EngineOracle, ORB: homeORB,
		InformationType: "home records",
		Schema:          "CREATE TABLE h (x INT);",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := home.CoDB.DefineCoalition("Records", "", "chaos coalition"); err != nil {
		t.Fatal(err)
	}
	fed := &chaosFed{home: home, homeORB: homeORB}
	for i := 0; i < n; i++ {
		mo := orb.New(orb.Options{Product: orb.Orbix})
		if err := mo.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(mo.Shutdown)
		m, err := core.NewNode(core.NodeConfig{
			Name: fmt.Sprintf("M%d", i), Engine: core.EngineOracle, ORB: mo,
			InformationType: "records",
			Schema: fmt.Sprintf(`CREATE TABLE r (k VARCHAR(16) PRIMARY KEY, v INT);
				INSERT INTO r VALUES ('a', %d);`, i),
			Interface: []codb.ExportedType{{
				Name: "R",
				Functions: []codb.ExportedFunction{{
					Name: "V", Returns: "int",
					Table: "r", ResultColumn: "v", ArgColumn: "k",
				}},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := home.CoDB.AddMember("Records", m.Descriptor); err != nil {
			t.Fatal(err)
		}
		fed.members = append(fed.members, m)
		fed.addrs = append(fed.addrs, mo.Addr())
	}
	return fed
}

const chaosQuery = `V(R.K, (R.K = "a")) On Coalition Records;`

// TestChaosPartialResultDeadMember kills one of three members at the
// transport and verifies the coalition query degrades instead of aborting:
// rows from both survivors, a status row for every member, Partial set.
func TestChaosPartialResultDeadMember(t *testing.T) {
	fed := buildChaosFed(t, 3, orb.Options{
		Retry: orb.RetryPolicy{MaxAttempts: 2},
	})
	fed.homeORB.SetFaultPlan(&orb.FaultPlan{Rules: []orb.FaultRule{
		{Addr: fed.addrs[1], FailConnect: 1},
	}})
	s := fed.home.NewSession()
	resp, err := s.Execute(context.Background(), chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Partial {
		t.Error("Partial = false with a dead member")
	}
	if len(resp.Members) != 3 {
		t.Fatalf("member statuses = %d, want 3", len(resp.Members))
	}
	ok := 0
	for _, m := range resp.Members {
		switch m.Member {
		case "M1":
			if m.OK() {
				t.Errorf("dead member M1 reported OK")
			}
			if m.ErrClass != "comm" {
				t.Errorf("M1 ErrClass = %q, want comm (%s)", m.ErrClass, m.Err)
			}
			if m.Attempts != 2 {
				t.Errorf("M1 attempts = %d, want 2 (retry)", m.Attempts)
			}
		default:
			if !m.OK() {
				t.Errorf("healthy member %s failed: %s", m.Member, m.Err)
			}
			ok++
		}
	}
	if ok != 2 {
		t.Errorf("healthy members = %d, want 2", ok)
	}
	if len(resp.Result.Rows) != 2 {
		t.Errorf("merged rows = %d, want 2 (one per survivor)", len(resp.Result.Rows))
	}
	if !strings.Contains(resp.Text, "partial result: 2 of 3 member(s) answered") {
		t.Errorf("text missing partial marker:\n%s", resp.Text)
	}
}

// TestChaosSlowMemberBoundedByMemberTimeout injects a large reply latency
// into one member and verifies MemberTimeout bounds the whole statement: the
// slow member is reported as timed out while the fast ones answer.
func TestChaosSlowMemberBoundedByMemberTimeout(t *testing.T) {
	fed := buildChaosFed(t, 3, orb.Options{})
	fed.homeORB.SetFaultPlan(&orb.FaultPlan{Rules: []orb.FaultRule{
		{Addr: fed.addrs[2], LatencyMS: 5000},
	}})
	fed.home.Processor.SetMemberPolicy(1, 200*time.Millisecond)
	s := fed.home.NewSession()
	start := time.Now()
	resp, err := s.Execute(context.Background(), chaosQuery)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("statement took %v; MemberTimeout did not bound the slow member", elapsed)
	}
	if !resp.Partial {
		t.Error("Partial = false with a timed-out member")
	}
	for _, m := range resp.Members {
		if m.Member == "M2" {
			if m.ErrClass != "timeout" {
				t.Errorf("M2 ErrClass = %q, want timeout (%s)", m.ErrClass, m.Err)
			}
		} else if !m.OK() {
			t.Errorf("fast member %s failed: %s", m.Member, m.Err)
		}
	}
	if len(resp.Result.Rows) != 2 {
		t.Errorf("merged rows = %d, want 2", len(resp.Result.Rows))
	}
}

// TestChaosQuorumFailure raises MinMembers above the surviving count and
// verifies the statement fails with the quorum diagnostics.
func TestChaosQuorumFailure(t *testing.T) {
	fed := buildChaosFed(t, 3, orb.Options{})
	fed.homeORB.SetFaultPlan(&orb.FaultPlan{Rules: []orb.FaultRule{
		{Addr: fed.addrs[0], FailConnect: 1},
	}})
	fed.home.Processor.SetMemberPolicy(3, 0)
	s := fed.home.NewSession()
	_, err := s.Execute(context.Background(), chaosQuery)
	if err == nil {
		t.Fatal("quorum 3 with a dead member succeeded")
	}
	if !strings.Contains(err.Error(), "2 of 3 member(s) answered, need 3") {
		t.Errorf("quorum error = %v", err)
	}
}

// TestChaosDegradedFederationQuery is the acceptance scenario: one
// unreachable member plus one pathologically slow member out of four. The
// query must come back within the configured deadline with Partial set,
// a status for every member, and rows from every healthy member.
func TestChaosDegradedFederationQuery(t *testing.T) {
	fed := buildChaosFed(t, 4, orb.Options{
		Retry: orb.RetryPolicy{MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond},
	})
	fed.homeORB.SetFaultPlan(&orb.FaultPlan{Rules: []orb.FaultRule{
		{Addr: fed.addrs[0], FailConnect: 1},  // unreachable
		{Addr: fed.addrs[1], LatencyMS: 5000}, // pathologically slow
	}})
	fed.home.Processor.SetMemberPolicy(1, 250*time.Millisecond)
	s := fed.home.NewSession()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	start := time.Now()
	resp, err := s.Execute(ctx, chaosQuery)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("degraded query took %v, want well under the 3s deadline", elapsed)
	}
	if !resp.Partial {
		t.Error("Partial = false")
	}
	if len(resp.Members) != 4 {
		t.Fatalf("member statuses = %d, want 4", len(resp.Members))
	}
	classes := map[string]string{}
	for _, m := range resp.Members {
		classes[m.Member] = m.ErrClass
	}
	if classes["M0"] != "comm" {
		t.Errorf("unreachable M0 class = %q, want comm", classes["M0"])
	}
	if classes["M1"] != "timeout" {
		t.Errorf("slow M1 class = %q, want timeout", classes["M1"])
	}
	if classes["M2"] != "" || classes["M3"] != "" {
		t.Errorf("healthy members failed: M2=%q M3=%q", classes["M2"], classes["M3"])
	}
	if len(resp.Result.Rows) != 2 {
		t.Errorf("merged rows = %d, want 2 (one per healthy member)", len(resp.Result.Rows))
	}
	// The survivors' rows carry their source column.
	sources := map[string]bool{}
	for _, row := range resp.Result.Rows {
		sources[row[0].Str] = true
	}
	if !sources["M2"] || !sources["M3"] {
		t.Errorf("rows missing a healthy member: %v", sources)
	}
}

// TestChaosBreakerShieldsRepeatedQueries verifies that after enough
// transport failures the home ORB's circuit breaker opens for the dead
// member's endpoint and later statements fail fast without dialing.
func TestChaosBreakerShieldsRepeatedQueries(t *testing.T) {
	fed := buildChaosFed(t, 2, orb.Options{
		Breaker: orb.BreakerPolicy{Threshold: 2, Cooldown: time.Hour},
	})
	fed.homeORB.SetFaultPlan(&orb.FaultPlan{Rules: []orb.FaultRule{
		{Addr: fed.addrs[0], FailConnect: 1},
	}})
	s := fed.home.NewSession()
	for i := 0; i < 3; i++ {
		resp, err := s.Execute(context.Background(), chaosQuery)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Partial {
			t.Fatalf("round %d: Partial = false", i)
		}
	}
	states := fed.homeORB.BreakerSnapshot()
	st, ok := states[fed.addrs[0]]
	if !ok || st.State != orb.BreakerOpen {
		t.Fatalf("breaker for dead member = %+v, want open", st)
	}
	// With the breaker open the failure is classified as such.
	resp, err := s.Execute(context.Background(), chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range resp.Members {
		if m.Member == "M0" && m.ErrClass != "breaker" {
			t.Errorf("M0 class = %q, want breaker (%s)", m.ErrClass, m.Err)
		}
	}
	if fed.homeORB.Stats.BreakerRejects.Load() == 0 {
		t.Error("no breaker rejects counted")
	}
}
