package query_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/codb"
	"repro/internal/core"
	"repro/internal/orb"
)

// The fault acceptance suite lives in fault_sim_test.go, running over the
// deterministic in-memory transport (internal/simnet). This file keeps one
// socket-based smoke copy of the degraded-federation scenario so the fault
// path is still exercised against the real TCP stack.

// chaosFed is a hand-rolled federation for fault-injection tests. Unlike
// core.Federation (three shared ORBs), every member runs on its own ORB so
// each has a distinct IIOP address that fault rules can target individually.
type chaosFed struct {
	home    *core.Node
	homeORB *orb.ORB
	members []*core.Node
	addrs   []string // addrs[i] is the IIOP address of member i
}

// buildChaosFed boots a home node (on an ORB built from clientOpts, which
// carries the retry/breaker/timeout policy under test) and n coalition
// members, each on its own ORB. All members export function V over table r,
// and each holds one distinguishing row ('a', i).
func buildChaosFed(t *testing.T, n int, clientOpts orb.Options) *chaosFed {
	t.Helper()
	clientOpts.Product = orb.VisiBroker
	// Colocation is process-wide (keyed by address), so without this the
	// home node would short-circuit member calls in-process and bypass the
	// fault transport entirely.
	clientOpts.DisableColocation = true
	homeORB := orb.New(clientOpts)
	if err := homeORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(homeORB.Shutdown)
	home, err := core.NewNode(core.NodeConfig{
		Name: "Home", Engine: core.EngineOracle, ORB: homeORB,
		InformationType: "home records",
		Schema:          "CREATE TABLE h (x INT);",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := home.CoDB.DefineCoalition("Records", "", "chaos coalition"); err != nil {
		t.Fatal(err)
	}
	fed := &chaosFed{home: home, homeORB: homeORB}
	for i := 0; i < n; i++ {
		mo := orb.New(orb.Options{Product: orb.Orbix})
		if err := mo.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(mo.Shutdown)
		m, err := core.NewNode(core.NodeConfig{
			Name: fmt.Sprintf("M%d", i), Engine: core.EngineOracle, ORB: mo,
			InformationType: "records",
			Schema: fmt.Sprintf(`CREATE TABLE r (k VARCHAR(16) PRIMARY KEY, v INT);
				INSERT INTO r VALUES ('a', %d);`, i),
			Interface: []codb.ExportedType{{
				Name: "R",
				Functions: []codb.ExportedFunction{{
					Name: "V", Returns: "int",
					Table: "r", ResultColumn: "v", ArgColumn: "k",
				}},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := home.CoDB.AddMember("Records", m.Descriptor); err != nil {
			t.Fatal(err)
		}
		fed.members = append(fed.members, m)
		fed.addrs = append(fed.addrs, mo.Addr())
	}
	return fed
}

const chaosQuery = `V(R.K, (R.K = "a")) On Coalition Records;`

// TestChaosDegradedFederationQuery is the acceptance scenario: one
// unreachable member plus one pathologically slow member out of four. The
// query must come back within the configured deadline with Partial set,
// a status for every member, and rows from every healthy member.
func TestChaosDegradedFederationQuery(t *testing.T) {
	fed := buildChaosFed(t, 4, orb.Options{
		Retry: orb.RetryPolicy{MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond},
	})
	fed.homeORB.SetFaultPlan(&orb.FaultPlan{Rules: []orb.FaultRule{
		{Addr: fed.addrs[0], FailConnect: 1},  // unreachable
		{Addr: fed.addrs[1], LatencyMS: 5000}, // pathologically slow
	}})
	fed.home.Processor.SetMemberPolicy(1, 250*time.Millisecond)
	s := fed.home.NewSession()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	start := time.Now()
	resp, err := s.Execute(ctx, chaosQuery)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("degraded query took %v, want well under the 3s deadline", elapsed)
	}
	if !resp.Partial {
		t.Error("Partial = false")
	}
	if len(resp.Members) != 4 {
		t.Fatalf("member statuses = %d, want 4", len(resp.Members))
	}
	classes := map[string]string{}
	for _, m := range resp.Members {
		classes[m.Member] = m.ErrClass
	}
	if classes["M0"] != "comm" {
		t.Errorf("unreachable M0 class = %q, want comm", classes["M0"])
	}
	if classes["M1"] != "timeout" {
		t.Errorf("slow M1 class = %q, want timeout", classes["M1"])
	}
	if classes["M2"] != "" || classes["M3"] != "" {
		t.Errorf("healthy members failed: M2=%q M3=%q", classes["M2"], classes["M3"])
	}
	if len(resp.Result.Rows) != 2 {
		t.Errorf("merged rows = %d, want 2 (one per healthy member)", len(resp.Result.Rows))
	}
	// The survivors' rows carry their source column.
	sources := map[string]bool{}
	for _, row := range resp.Result.Rows {
		sources[row[0].Str] = true
	}
	if !sources["M2"] || !sources["M3"] {
		t.Errorf("rows missing a healthy member: %v", sources)
	}
}
