package query

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/gateway"
	"repro/internal/idl"
	"repro/internal/orb"
	"repro/internal/trace"
)

// Streaming coalition merge. Each member's rows flow through a bounded
// channel (backpressure instead of buffering whole result sets); the
// coordinator consumes the channels strictly in member order, so the merged
// output is deterministic regardless of member timing. Members are read
// through the gateway cursor protocol (Conn.QueryCursor), so backpressure
// reaches the wire: a member issues its next fetch only after the merge has
// drained the previous MergeBufRows window. A statement LIMIT terminates the
// fan-out early: once K rows are merged the remaining members' sub-calls are
// cancelled (closing their server-side cursors) and their statuses report
// ErrClass "limit" — satisfied, not degraded.

// errLimitSatisfied is the fan-out cancel cause once a statement LIMIT is
// met; errStreamClosed is the cause when the consumer abandons the stream.
// Members cancelled for either reason completed their part of the statement:
// their sub-call errors are not failures.
var (
	errLimitSatisfied = errors.New("query: limit satisfied")
	errStreamClosed   = errors.New("query: stream closed")
)

// mergeCancelled reports whether the member context was cancelled by the
// merge itself (limit satisfied, stream closed) rather than by the caller.
func mergeCancelled(ctx context.Context) bool {
	cause := context.Cause(ctx)
	return errors.Is(cause, errLimitSatisfied) || errors.Is(cause, errStreamClosed)
}

// isCapabilityRejection reports whether a member error looks like the engine
// rejecting a clause the planner pushed (dialect gate or grammar error)
// rather than a transport or data failure. Engine errors cross the ISI
// boundary as plain messages (UserException bodies), so a shape match covers
// both local and remote members:
//
//	relational: mSQL does not support LIKE
//	oodb: unexpected "LIMIT" after query
func isCapabilityRejection(err error) bool {
	if err == nil {
		return false
	}
	var se *orb.SystemException
	if errors.As(err, &se) {
		return false
	}
	msg := err.Error()
	return strings.Contains(msg, "does not support") || strings.Contains(msg, "unexpected")
}

// mergeStream is one pull-based coalition merge in flight. The consumer
// calls Next to receive merged rows in member order and Close to release
// the fan-out (cancelling outstanding sub-calls and their cursors). It is
// the engine under both Session.Execute (which drains it) and Session.Stream
// (which hands it to the caller behind a Rows). Not safe for concurrent use.
type mergeStream struct {
	sess     *Session
	plan     *queryPlan
	chans    []chan []idl.Any
	statuses []MemberStatus
	colNames []string
	cancel   context.CancelCauseFunc
	fanDone  chan struct{}

	// limit is the effective row cap (plan.Limit normally). A semi-join
	// probe decouples it from the plan: the cached plan carries no limit
	// (a member-side LIMIT under a coordinator filter would under-fetch)
	// while the merge still terminates early on post-filter rows.
	limit int
	// filter, when set, admits rows by result value before they count or
	// ship — the semi-join key filter. Rejected rows are fetched (they show
	// in rowsMoved) but never buffered, delivered or counted toward limit.
	filter *semiJoinFilter
	// overrides, when set, replaces member i's planned execution — the
	// semi-join probe's per-statement IN rendering. nil entries run Exec.
	overrides []*fragmentExec

	cur       int   // channel currently being drained
	delivered []int // rows emitted per member
	progress  int   // rows counted toward the LIMIT (failed members refunded)
	stop      int   // member index that satisfied the LIMIT (-1: none)
	eof       bool
	closed    bool

	rowsMoved   atomic.Int64 // rows fetched from members, pre-compensation
	fallbacks   atomic.Int64 // bare-fragment retries after a pushdown rejection
	probePruned atomic.Int64 // rows rejected by the semi-join key filter
	sjFallbacks atomic.Int64 // bare retries of fragments that carried a key set

	// inflight counts rows sitting in the merge channels (pulled from a
	// member's cursor, not yet consumed); peakInflight is its high-water
	// mark. Together with the per-member cursor batch (MergeBufRows rows at
	// most) it bounds coordinator buffering: peakInflight never exceeds
	// members x MergeBufRows, whatever the scan size.
	inflight     atomic.Int64
	peakInflight atomic.Int64
}

// newMergeStream fans the plan out and returns the pull side of the merge.
// Each merged row is [source, result-column]; residual conjuncts are applied
// (and the projection narrowed) in the worker, before the channel send, so
// backpressure is paid only for rows that will be delivered.
func (s *Session) newMergeStream(ctx context.Context, plan *queryPlan) *mergeStream {
	return s.newMergeStreamFiltered(ctx, plan, plan.Limit, nil, nil)
}

// newMergeStreamFiltered is newMergeStream with the semi-join hooks: an
// effective limit decoupled from the cached plan, a coordinator-side key
// filter, and per-member execution overrides carrying pushed key sets.
func (s *Session) newMergeStreamFiltered(ctx context.Context, plan *queryPlan, limit int, filter *semiJoinFilter, overrides []*fragmentExec) *mergeStream {
	n := len(plan.Members)
	ms := &mergeStream{
		sess:      s,
		plan:      plan,
		chans:     make([]chan []idl.Any, n),
		statuses:  make([]MemberStatus, n),
		colNames:  make([]string, n),
		fanDone:   make(chan struct{}),
		delivered: make([]int, n),
		stop:      -1,
		limit:     limit,
		filter:    filter,
		overrides: overrides,
	}
	for i := range plan.Members {
		ms.statuses[i] = MemberStatus{Member: plan.Members[i].D.Name, Ref: plan.Members[i].D.ISIRef,
			ErrClass: "skipped", Err: "not dispatched"}
	}
	buf := s.p.mergeBufRows()
	for i := range ms.chans {
		ms.chans[i] = make(chan []idl.Any, buf)
	}
	mergeCtx, cancel := context.WithCancelCause(ctx)
	ms.cancel = cancel
	dispatched := make([]atomic.Bool, n)
	go func() {
		defer close(ms.fanDone)
		fanOutCtx(mergeCtx, n, s.p.fanOutWidth(), func(i int) {
			dispatched[i].Store(true)
			defer close(ms.chans[i])
			s.runMember(mergeCtx, ms, i)
		})
		// Members the fan-out never dispatched (context cancelled first)
		// still need their channels closed so the merge loop can pass them.
		for i := range ms.chans {
			if !dispatched[i].Load() {
				close(ms.chans[i])
			}
		}
	}()
	return ms
}

// Next returns the next merged row ([source, value]) and the index of the
// member that produced it; ok is false once the merge is exhausted or the
// statement LIMIT has been satisfied. A member's status is final by the time
// Next moves past its channel, which is what makes the refund below — and
// reading statuses after Close — race-free.
func (ms *mergeStream) Next() (row []idl.Any, member int, ok bool) {
	if ms.eof || ms.closed {
		return nil, 0, false
	}
	for ms.cur < len(ms.chans) {
		r, open := <-ms.chans[ms.cur]
		if !open {
			st := &ms.statuses[ms.cur]
			if !st.OK() && ms.delivered[ms.cur] > 0 {
				// The member failed mid-stream after delivering rows. A
				// materialized merge would have dropped the member whole, so
				// refund its rows from the LIMIT progress; the drain side
				// drops the rows themselves by provenance.
				ms.progress -= ms.delivered[ms.cur]
			}
			ms.cur++
			continue
		}
		ms.inflight.Add(-1)
		m := ms.cur
		ms.delivered[m]++
		ms.progress++
		if ms.limit > 0 && ms.progress >= ms.limit {
			ms.stop = m
			ms.eof = true
			ms.cancel(errLimitSatisfied) // release the members still running or queued
		}
		return r, m, true
	}
	ms.eof = true
	return nil, 0, false
}

// Close abandons or finalises the stream: outstanding member sub-calls are
// cancelled (closing their server-side cursors), the fan-out is awaited, and
// post-LIMIT statuses are patched. Statuses, counters and the peak-buffer
// gauge are stable once Close returns. Idempotent.
func (ms *mergeStream) Close() {
	if ms.closed {
		return
	}
	ms.closed = true
	ms.cancel(errStreamClosed)
	<-ms.fanDone
	if ms.stop >= 0 {
		// Early termination: everything after the member that satisfied the
		// limit is reported as cut off by it, whatever its sub-call was
		// doing when the cancel landed — keeping the statuses (and thus the
		// Partial bit) deterministic across timings and pushdown modes.
		for j := ms.stop + 1; j < len(ms.statuses); j++ {
			ms.statuses[j] = MemberStatus{Member: ms.plan.Members[j].D.Name, Ref: ms.plan.Members[j].D.ISIRef,
				ErrClass: "limit", Err: "limit satisfied"}
		}
	}
}

// mergedColumns names the merged result's columns from the first member that
// answered. Valid after Close.
func (ms *mergeStream) mergedColumns() []string {
	for i := range ms.colNames {
		if ms.colNames[i] != "" && ms.statuses[i].OK() {
			return []string{"source", ms.colNames[i]}
		}
	}
	return nil
}

// runMember executes one member's fragment and streams its compensated,
// projected rows into the merge. The fragment runs through the gateway
// cursor protocol (unless streaming is disabled), pulling MergeBufRows rows
// per fetch; the bounded channel send between pulls is what propagates the
// coordinator's pace back to the wire. On a capability rejection of a pushed
// clause (the descriptor's engine claim was stale) it retries once with the
// bare fragment and full coordinator-side compensation.
func (s *Session) runMember(ctx context.Context, ms *mergeStream, i int) {
	plan := ms.plan
	mp := &plan.Members[i]
	st := &ms.statuses[i]
	mctx, msp := trace.StartSpan(ctx, "query.member:"+mp.D.Name)
	msp.SetAttr("engine", mp.D.Engine)
	msp.SetAttrInt("pushed", mp.Exec.Pushed)
	msp.SetAttrInt("compensated", len(mp.Exec.Residual))
	if mp.Exec.LimitPushed {
		msp.SetAttr("limit", "pushed")
	}
	streaming := s.p.streamingOn()
	if streaming {
		msp.SetAttr("stream", "cursor")
	} else {
		msp.SetAttr("stream", "materialized")
	}
	if mt := s.p.memberTimeout(); mt > 0 {
		var cancel context.CancelFunc
		mctx, cancel = context.WithTimeout(mctx, mt)
		defer cancel()
	}
	mctx, cs := orb.WithCallStats(mctx)
	start := time.Now()
	var err error
	defer func() {
		st.Latency = time.Since(start)
		st.Attempts = int(cs.Attempts.Load())
		if err != nil && mergeCancelled(ctx) {
			// The merge stopped taking rows (limit satisfied downstream,
			// stream closed); whatever the cancel did to the sub-call is not
			// a member failure.
			err = nil
		}
		if err != nil {
			st.ErrClass = classifyErr(err)
			st.Err = err.Error()
			s.tracef("data", "member %s failed (%s): %v", mp.D.Name, st.ErrClass, err)
		} else {
			st.ErrClass, st.Err = "", ""
		}
		msp.End(err)
	}()
	conn, err := s.p.openSource(s, mp.D)
	if err != nil {
		return
	}
	defer conn.Close()
	open := func(ex *fragmentExec) (gateway.RowIter, error) {
		if streaming {
			return conn.QueryCursor(mctx, ex.Native, s.p.mergeBufRows())
		}
		res, qerr := conn.Query(mctx, ex.Native)
		if qerr != nil {
			return nil, qerr
		}
		return gateway.NewSliceIter(res), nil
	}
	ex := &mp.Exec
	if ms.overrides != nil && ms.overrides[i] != nil {
		ex = ms.overrides[i]
		msp.SetAttr("semijoin", "keys pushed")
	}
	var it gateway.RowIter
	it, err = open(ex)
	if err != nil && (ex.Pushed > 0 || ex.LimitPushed || ex.InPushed) && isCapabilityRejection(err) && mctx.Err() == nil {
		s.tracef("data", "member %s rejected pushed fragment (%v); retrying with full compensation", mp.D.Name, err)
		msp.SetAttr("fallback", "bare")
		ms.fallbacks.Add(1)
		if ex.InPushed {
			ms.sjFallbacks.Add(1)
		}
		ex = &mp.Bare
		it, err = open(ex)
	}
	if err != nil {
		err = fmt.Errorf("query: %s: %w", mp.D.Name, err)
		return
	}
	defer it.Close()
	if cols := it.Columns(); len(cols) > 0 {
		ms.colNames[i] = cols[0]
	} else {
		ms.colNames[i] = mp.Fn.ResultColumn
	}
	name := idl.String(mp.D.Name)
	for {
		var row []idl.Any
		row, err = it.Next(mctx)
		if err == io.EOF {
			err = nil
			return
		}
		if err != nil {
			err = fmt.Errorf("query: %s: %w", mp.D.Name, err)
			return
		}
		ms.rowsMoved.Add(1)
		if len(row) == 0 {
			continue
		}
		if len(ex.Residual) > 0 && !residualMatch(row, ex) {
			continue
		}
		if ms.filter != nil && !ms.filter.admit(row[0]) {
			// The row's key is not in the build side (or it is a Bloom false
			// positive the exact set rejects): the semi-join drops it here,
			// before it can occupy the merge window or count toward LIMIT.
			ms.probePruned.Add(1)
			continue
		}
		select {
		case ms.chans[i] <- []idl.Any{name, row[0]}:
			n := ms.inflight.Add(1)
			for {
				p := ms.peakInflight.Load()
				if n <= p || ms.peakInflight.CompareAndSwap(p, n) {
					break
				}
			}
		case <-ctx.Done():
			// The query itself succeeded; the merge just stopped taking
			// rows (limit satisfied downstream). Not a member failure.
			return
		}
	}
}
