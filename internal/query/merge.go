package query

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/gateway"
	"repro/internal/idl"
	"repro/internal/orb"
	"repro/internal/trace"
)

// Streaming coalition merge. Each member's rows flow through a bounded
// channel (backpressure instead of buffering whole result sets); the
// coordinator consumes the channels strictly in member order, so the merged
// output is deterministic regardless of member timing. A statement LIMIT
// terminates the fan-out early: once K rows are merged the remaining
// members' sub-calls are cancelled and their statuses report ErrClass
// "limit" — satisfied, not degraded.

// mergeOutcome is the result of one streaming coalition merge.
type mergeOutcome struct {
	merged    *gateway.Result
	statuses  []MemberStatus
	stop      int   // member index that satisfied the LIMIT (-1: ran to completion)
	rowsMoved int64 // rows fetched from members, pre-compensation
	fallbacks int64 // bare-fragment retries after a pushdown rejection
}

// isCapabilityRejection reports whether a member error looks like the engine
// rejecting a clause the planner pushed (dialect gate or grammar error)
// rather than a transport or data failure. Engine errors cross the ISI
// boundary as plain messages (UserException bodies), so a shape match covers
// both local and remote members:
//
//	relational: mSQL does not support LIKE
//	oodb: unexpected "LIMIT" after query
func isCapabilityRejection(err error) bool {
	if err == nil {
		return false
	}
	var se *orb.SystemException
	if errors.As(err, &se) {
		return false
	}
	msg := err.Error()
	return strings.Contains(msg, "does not support") || strings.Contains(msg, "unexpected")
}

// streamMerge fans the plan out and merges the members' rows in member
// order. Each merged row is [source, result-column]; residual conjuncts are
// applied (and the projection narrowed) in the worker, before the channel
// send, so backpressure is paid only for rows that will be delivered.
func (s *Session) streamMerge(ctx context.Context, plan *queryPlan) *mergeOutcome {
	n := len(plan.Members)
	statuses := make([]MemberStatus, n)
	for i := range plan.Members {
		statuses[i] = MemberStatus{Member: plan.Members[i].D.Name, Ref: plan.Members[i].D.ISIRef,
			ErrClass: "skipped", Err: "not dispatched"}
	}
	buf := s.p.mergeBufRows()
	chans := make([]chan []idl.Any, n)
	for i := range chans {
		chans[i] = make(chan []idl.Any, buf)
	}
	colNames := make([]string, n)
	dispatched := make([]atomic.Bool, n)
	var rowsMoved, fallbacks atomic.Int64

	mergeCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	fanDone := make(chan struct{})
	go func() {
		defer close(fanDone)
		fanOutCtx(mergeCtx, n, s.p.fanOutWidth(), func(i int) {
			dispatched[i].Store(true)
			defer close(chans[i])
			s.runMember(mergeCtx, plan, i, &statuses[i], chans[i], colNames, &rowsMoved, &fallbacks)
		})
		// Members the fan-out never dispatched (context cancelled first)
		// still need their channels closed so the merge loop can pass them.
		for i := range chans {
			if !dispatched[i].Load() {
				close(chans[i])
			}
		}
	}()

	merged := &gateway.Result{}
	stop := -1
collect:
	for i := range chans {
		for row := range chans[i] {
			merged.Rows = append(merged.Rows, row)
			if plan.Limit > 0 && len(merged.Rows) >= plan.Limit {
				stop = i
				cancel() // release the members still running or queued
				break collect
			}
		}
	}
	<-fanDone

	if stop >= 0 {
		// Early termination: everything after the member that satisfied the
		// limit is reported as cut off by it, whatever its sub-call was
		// doing when the cancel landed — keeping the statuses (and thus the
		// Partial bit) deterministic across timings and pushdown modes.
		for j := stop + 1; j < n; j++ {
			statuses[j] = MemberStatus{Member: plan.Members[j].D.Name, Ref: plan.Members[j].D.ISIRef,
				ErrClass: "limit", Err: "limit satisfied"}
		}
	}
	for i := range colNames {
		if colNames[i] != "" && statuses[i].OK() {
			merged.Columns = []string{"source", colNames[i]}
			break
		}
	}
	return &mergeOutcome{
		merged:    merged,
		statuses:  statuses,
		stop:      stop,
		rowsMoved: rowsMoved.Load(),
		fallbacks: fallbacks.Load(),
	}
}

// runMember executes one member's fragment and streams its compensated,
// projected rows into the merge. On a capability rejection of a pushed
// clause (the descriptor's engine claim was stale) it retries once with the
// bare fragment and full coordinator-side compensation.
func (s *Session) runMember(ctx context.Context, plan *queryPlan, i int, st *MemberStatus,
	out chan<- []idl.Any, colNames []string, rowsMoved, fallbacks *atomic.Int64) {
	mp := &plan.Members[i]
	mctx, msp := trace.StartSpan(ctx, "query.member:"+mp.D.Name)
	msp.SetAttr("engine", mp.D.Engine)
	msp.SetAttrInt("pushed", mp.Exec.Pushed)
	msp.SetAttrInt("compensated", len(mp.Exec.Residual))
	if mp.Exec.LimitPushed {
		msp.SetAttr("limit", "pushed")
	}
	if mt := s.p.memberTimeout(); mt > 0 {
		var cancel context.CancelFunc
		mctx, cancel = context.WithTimeout(mctx, mt)
		defer cancel()
	}
	mctx, cs := orb.WithCallStats(mctx)
	start := time.Now()
	var err error
	defer func() {
		st.Latency = time.Since(start)
		st.Attempts = int(cs.Attempts.Load())
		if err != nil {
			st.ErrClass = classifyErr(err)
			st.Err = err.Error()
			s.tracef("data", "member %s failed (%s): %v", mp.D.Name, st.ErrClass, err)
		} else {
			st.ErrClass, st.Err = "", ""
		}
		msp.End(err)
	}()
	conn, err := s.p.openSource(s, mp.D)
	if err != nil {
		return
	}
	defer conn.Close()
	ex := &mp.Exec
	var res *gateway.Result
	res, err = conn.Query(mctx, ex.Native)
	if err != nil && (ex.Pushed > 0 || ex.LimitPushed) && isCapabilityRejection(err) && mctx.Err() == nil {
		s.tracef("data", "member %s rejected pushed fragment (%v); retrying with full compensation", mp.D.Name, err)
		msp.SetAttr("fallback", "bare")
		fallbacks.Add(1)
		ex = &mp.Bare
		res, err = conn.Query(mctx, ex.Native)
	}
	if err != nil {
		err = fmt.Errorf("query: %s: %w", mp.D.Name, err)
		return
	}
	rowsMoved.Add(int64(len(res.Rows)))
	if len(res.Columns) > 0 {
		colNames[i] = res.Columns[0]
	} else {
		colNames[i] = mp.Fn.ResultColumn
	}
	name := idl.String(mp.D.Name)
	for _, row := range res.Rows {
		if len(row) == 0 {
			continue
		}
		if len(ex.Residual) > 0 && !residualMatch(row, ex) {
			continue
		}
		select {
		case out <- []idl.Any{name, row[0]}:
		case <-ctx.Done():
			// The query itself succeeded; the merge just stopped taking
			// rows (limit satisfied downstream). Not a member failure.
			return
		}
	}
}
