package query

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"

	"repro/internal/codb"
	"repro/internal/gateway"
	"repro/internal/mdcache"
	"repro/internal/wtl"
)

// This file is the federated query planner. A coalition function query is
// decomposed into one fragment per exporting member; each fragment ships the
// predicate conjuncts (and, when safe, the statement's LIMIT) that the
// member's advertised engine can evaluate, and records the rest as residual
// work the coordinator compensates for over the fetched rows. Pushdown-on
// and pushdown-off plans select exactly the same rows — the pushdown axis
// only moves where predicates are evaluated — which the differential suite
// in internal/simtest checks across engines, seeds and fault schedules.

// fragmentExec is one renderable execution of a member fragment: the native
// query shipped to the engine plus whatever the coordinator must still do to
// the rows that come back.
type fragmentExec struct {
	Native      string          // rendered native query
	OQL         bool            // object-family rendering (drives residual semantics)
	Frag        wtl.Fragment    // source fragment, kept so a semi-join key set can re-render it
	Residual    []wtl.Condition // conjuncts compensated at the coordinator
	ResidualIdx []int           // fetch-column index of each residual conjunct
	NCols       int             // fetched columns (result column + residual columns)
	Pushed      int             // conjuncts shipped inside the fragment
	LimitPushed bool            // fragment carries the statement's LIMIT
	InPushed    bool            // fragment carries a semi-join IN key set
}

// memberPlan is one member's slice of a coalition plan: the capability-gated
// execution, and the bare full-compensation fallback used when the engine
// rejects a pushed clause its descriptor claimed it could evaluate.
type memberPlan struct {
	D    *codb.SourceDescriptor
	Fn   *codb.ExportedFunction
	Exec fragmentExec
	Bare fragmentExec
	// InListOK records, at plan time, whether the member's advertised engine
	// accepts a literal IN list — the gate for shipping a semi-join key set
	// into this member's fragment. Key sets are runtime data (they come from
	// the build side's rows), so the rendered IN fragment itself is never
	// cached; only this capability verdict is.
	InListOK bool
}

// queryPlan is a decomposed coalition function query. Plans are cached in
// the metadata cache (they derive purely from co-database metadata and the
// statement text) and shared across sessions, so they are read-only after
// construction.
type queryPlan struct {
	Coalition   string
	Function    string
	Limit       int
	Pushdown    bool
	Fingerprint uint64
	Members     []memberPlan
}

// oqlFamily reports whether a descriptor's fragments render as OQL,
// mirroring WrapperFor's wrapper-name-then-engine fallback.
func oqlFamily(d *codb.SourceDescriptor) bool {
	switch d.Wrapper {
	case "WebTassiliObjectStore", "WebTassiliOntos":
		return true
	case "WebTassiliOracle", "WebTassiliMSQL", "WebTassiliDB2", "WebTassiliSybase":
		return false
	}
	switch d.Engine {
	case "ObjectStore", "Ontos":
		return true
	}
	return false
}

// pushableCond decides whether one conjunct ships inside the fragment under
// a capability profile. The rule errs residual: a conjunct stays at the
// coordinator unless the engine advertises the operator AND the literal
// renders to something every target lexer reads back as the same value.
// Keeping the doubtful cases residual in BOTH modes is what makes
// pushdown-on and pushdown-off agree — a clause that one mode pushes into a
// syntax error and the other silently filters would diverge.
func pushableCond(c wtl.Condition, caps gateway.Capabilities) bool {
	if !caps.Predicates {
		return false
	}
	if c.Op == "LIKE" {
		// An unquoted pattern would render as a bare word; keep it local.
		return caps.Like && c.IsStr
	}
	if c.IsStr {
		return true
	}
	return numericLiteral(c.Value)
}

// numericLiteral reports whether a bare WebTassili literal renders as a
// number both dialect families' lexers accept (digits with at most one
// interior dot — no signs, no exponents; the OQL lexer takes nothing wider).
func numericLiteral(s string) bool {
	dot := false
	for i := 0; i < len(s); i++ {
		if s[i] == '.' && !dot && i > 0 && i < len(s)-1 {
			dot = true
			continue
		}
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// buildFragmentExec splits resolved conjuncts into pushed and residual under
// a capability profile and renders the member's native fragment. Residual
// conjuncts widen the projection so the coordinator has the columns it needs
// to compensate; the LIMIT is pushed only when nothing is residual (a local
// filter after a pushed LIMIT would under-fetch).
func buildFragmentExec(d *codb.SourceDescriptor, fn *codb.ExportedFunction, conds []wtl.Condition, limit int, caps gateway.Capabilities) fragmentExec {
	var pushed, residual []wtl.Condition
	for _, c := range conds {
		if pushableCond(c, caps) {
			pushed = append(pushed, c)
		} else {
			residual = append(residual, c)
		}
	}
	cols := []string{fn.ResultColumn}
	idx := make([]int, len(residual))
	for i, c := range residual {
		at := -1
		for j, col := range cols {
			if strings.EqualFold(col, c.Column) {
				at = j
				break
			}
		}
		if at < 0 {
			cols = append(cols, c.Column)
			at = len(cols) - 1
		}
		idx[i] = at
	}
	frag := wtl.Fragment{Table: fn.Table, Columns: cols, Conds: pushed}
	if limit > 0 && caps.Limit && len(residual) == 0 {
		frag.Limit = limit
	}
	oql := oqlFamily(d)
	native := frag.SQL()
	if oql {
		native = frag.OQL()
	}
	return fragmentExec{
		Native:      native,
		OQL:         oql,
		Frag:        frag,
		Residual:    residual,
		ResidualIdx: idx,
		NCols:       len(cols),
		Pushed:      len(pushed),
		LimitPushed: frag.Limit > 0,
	}
}

// withInKeys re-renders an execution with a semi-join key restriction. The
// fragment copy shares the cached plan's condition slices (read-only) and
// only adds the IN conjunct, so cached plans stay immutable while key sets
// vary per statement.
func (ex *fragmentExec) withInKeys(column string, keys []wtl.KeyLiteral) *fragmentExec {
	out := *ex
	frag := ex.Frag
	frag.In = &wtl.InClause{Column: column, Keys: keys}
	out.Frag = frag
	if ex.OQL {
		out.Native = frag.OQL()
	} else {
		out.Native = frag.SQL()
	}
	out.InPushed = true
	return &out
}

// buildMemberPlan plans one member. With pushdown off the capability profile
// is zero, so Exec is already the bare fragment.
func buildMemberPlan(d *codb.SourceDescriptor, fn *codb.ExportedFunction, q *wtl.FuncQuery, pushdown bool) (memberPlan, error) {
	conds, err := resolveConds(fn, q.Preds)
	if err != nil {
		return memberPlan{}, err
	}
	var caps gateway.Capabilities
	if pushdown {
		caps = gateway.CapsFor(d.Engine)
	}
	mp := memberPlan{D: d, Fn: fn, InListOK: caps.InList}
	mp.Exec = buildFragmentExec(d, fn, conds, q.Limit, caps)
	if mp.Exec.Pushed == 0 && !mp.Exec.LimitPushed {
		mp.Bare = mp.Exec
	} else {
		mp.Bare = buildFragmentExec(d, fn, conds, 0, gateway.Capabilities{})
	}
	return mp, nil
}

// exportedFunction finds a function in a descriptor's exported interface.
func exportedFunction(d *codb.SourceDescriptor, name string) *codb.ExportedFunction {
	for i := range d.Interface {
		if f, ok := d.Interface[i].Function(name); ok {
			return f
		}
	}
	return nil
}

// buildCoalitionPlan decomposes the query over the members that export the
// function, in member order (so plan errors surface deterministically).
func buildCoalitionPlan(q *wtl.FuncQuery, members []*codb.SourceDescriptor, pushdown bool, fp uint64) (*queryPlan, error) {
	plan := &queryPlan{
		Coalition:   q.Source,
		Function:    q.Function,
		Limit:       q.Limit,
		Pushdown:    pushdown,
		Fingerprint: fp,
	}
	for _, d := range members {
		fn := exportedFunction(d, q.Function)
		if fn == nil {
			continue // members without the function do not participate
		}
		mp, err := buildMemberPlan(d, fn, q, pushdown)
		if err != nil {
			return nil, fmt.Errorf("query: %s: %w", d.Name, err)
		}
		plan.Members = append(plan.Members, mp)
	}
	if len(plan.Members) == 0 {
		return nil, fmt.Errorf("query: no member of coalition %s exports function %s", q.Source, q.Function)
	}
	return plan, nil
}

// planFingerprint keys a plan by the statement's rendered text and the
// pushdown mode — everything else a plan depends on (membership, exported
// interfaces) is covered by the metadata cache's versioning.
func planFingerprint(q *wtl.FuncQuery, pushdown bool) uint64 {
	h := fnv.New64a()
	io.WriteString(h, q.String())
	io.WriteString(h, "|pushdown=")
	io.WriteString(h, strconv.FormatBool(pushdown))
	return h.Sum64()
}

// cachedPlan builds (or replays) the coalition plan through the metadata
// cache, so repeat statements skip both the member-list fetch and the
// per-member capability split.
func (p *Processor) cachedPlan(ctx context.Context, entry *codb.Client, q *wtl.FuncQuery, pushdown bool) (*queryPlan, mdcache.Outcome, error) {
	fp := planFingerprint(q, pushdown)
	key := "plan|" + p.srcKey(entry) + "|" + strings.ToLower(q.Source) + "|" + strconv.FormatUint(fp, 16)
	v, out, err := p.cacheGet(ctx, entry, key, func(ctx context.Context) (any, error) {
		members, _, err := p.cachedInstances(ctx, entry, q.Source)
		if err != nil {
			return nil, err
		}
		return buildCoalitionPlan(q, members, pushdown, fp)
	})
	if err != nil || v == nil {
		return nil, out, err
	}
	return v.(*queryPlan), out, nil
}
