package query_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/codb"
	"repro/internal/core"
	"repro/internal/oodb"
	"repro/internal/orb"
)

// planFixtureRows is how many rows each planner-fixture node holds.
const planFixtureRows = 6

// planFederation builds an in-process coalition "C" of nodes all exporting
// V(R.K) over a table r with planFixtureRows rows each. Engines cycle
// Oracle → mSQL → ObjectStore so the plan mixes full-pushdown, partial
// (no LIKE) and OQL members. Node i's rows are ('r<i><j>', i*1000+j).
func planFederation(tb testing.TB, nodes int, nc func(i int, c *core.NodeConfig)) (*core.Federation, []*core.Node) {
	tb.Helper()
	f, err := core.NewFederation()
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(f.Shutdown)
	engines := []string{core.EngineOracle, core.EngineMSQL, core.EngineObjectStore}
	iface := []codb.ExportedType{{
		Name: "R",
		Functions: []codb.ExportedFunction{{
			Name: "V", Returns: "int",
			Table: "r", ResultColumn: "v", ArgColumn: "k",
		}},
	}}
	var built []*core.Node
	var names []string
	for i := 0; i < nodes; i++ {
		cfg := core.NodeConfig{
			Name:            fmt.Sprintf("S%d", i),
			Engine:          engines[i%len(engines)],
			InformationType: "records",
			Interface:       iface,
		}
		if core.IsRelational(cfg.Engine) {
			var b strings.Builder
			b.WriteString("CREATE TABLE r (k VARCHAR(16) PRIMARY KEY, v INT);\n")
			for j := 0; j < planFixtureRows; j++ {
				fmt.Fprintf(&b, "INSERT INTO r VALUES ('r%d%d', %d);\n", i, j, i*1000+j)
			}
			cfg.Schema = b.String()
		} else {
			i := i
			cfg.SeedObjects = func(db *oodb.DB) error {
				if _, err := db.DefineClass("r", "",
					oodb.Attribute{Name: "k", Type: oodb.AttrString},
					oodb.Attribute{Name: "v", Type: oodb.AttrInt}); err != nil {
					return err
				}
				for j := 0; j < planFixtureRows; j++ {
					if _, err := db.NewObject("r", map[string]any{
						"k": fmt.Sprintf("r%d%d", i, j), "v": int64(i*1000 + j),
					}); err != nil {
						return err
					}
				}
				return nil
			}
		}
		if nc != nil {
			nc(i, &cfg)
		}
		n, err := f.AddNode(orb.VisiBroker, cfg)
		if err != nil {
			tb.Fatal(err)
		}
		n.Processor.SetFanOut(1) // serial fan-out: deterministic row movement
		built = append(built, n)
		names = append(names, cfg.Name)
	}
	if err := f.DefineCoalition("C", "", "planner fixture", names...); err != nil {
		tb.Fatal(err)
	}
	return f, built
}

func TestCoalitionTopKEarlyTermination(t *testing.T) {
	_, nodes := planFederation(t, 3, nil)
	s := nodes[0].NewSession()
	ctx := context.Background()

	full, err := s.Execute(ctx, `V(R.K) On Coalition C;`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(full.Result.Rows); got != 3*planFixtureRows {
		t.Fatalf("full scan rows = %d", got)
	}
	topK, err := s.Execute(ctx, `V(R.K) On Coalition C Limit 4;`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topK.Result.Rows); got != 4 {
		t.Fatalf("Limit 4 rows = %d", got)
	}
	// Member order is deterministic: the first 4 rows all come from S0.
	for _, row := range topK.Result.Rows {
		if row[0].Str != "S0" {
			t.Fatalf("limit rows out of member order: %+v", topK.Result.Rows)
		}
	}
	if topK.RowsMoved >= full.RowsMoved {
		t.Fatalf("top-K moved %d rows, full moved %d", topK.RowsMoved, full.RowsMoved)
	}
	if topK.Partial {
		t.Fatalf("limit cut-off flagged partial: %+v", topK.Members)
	}
	seenLimit := 0
	for _, m := range topK.Members {
		if m.ErrClass == "limit" {
			seenLimit++
		}
	}
	if seenLimit != 2 {
		t.Fatalf("members after the satisfied limit = %d, statuses %+v", seenLimit, topK.Members)
	}
	if st := nodes[0].Processor.PlannerStats(); st.EarlyTerminations == 0 || st.LimitPushed == 0 {
		t.Fatalf("planner stats missed the top-K run: %+v", st)
	}
}

func TestCoalitionFallbackOnAdvertisedCapability(t *testing.T) {
	// S1 runs mSQL (no LIKE) but advertises Oracle: the planner pushes the
	// LIKE, the engine rejects it mid-query, and the member retries on the
	// bare fragment — the answer must still include S1's matching rows.
	_, nodes := planFederation(t, 3, func(i int, c *core.NodeConfig) {
		if i == 1 {
			c.AdvertiseEngine = core.EngineOracle
		}
	})
	s := nodes[0].NewSession()
	resp, err := s.Execute(context.Background(), `V(R.K, (R.K LIKE "r1%")) On Coalition C;`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp.Result.Rows); got != planFixtureRows {
		t.Fatalf("rows = %d (%+v)", got, resp.Result.Rows)
	}
	for _, row := range resp.Result.Rows {
		if row[0].Str != "S1" {
			t.Fatalf("unexpected source in rows: %+v", resp.Result.Rows)
		}
	}
	if resp.Partial {
		t.Fatalf("fallback flagged partial: %+v", resp.Members)
	}
	if st := nodes[0].Processor.PlannerStats(); st.Fallbacks == 0 {
		t.Fatalf("no fallback recorded: %+v", st)
	}
}

func TestSetPushdownRuntimeToggle(t *testing.T) {
	_, nodes := planFederation(t, 3, nil)
	s := nodes[0].NewSession()
	ctx := context.Background()
	stmt := `V(R.K, (R.V >= 1000)) On Coalition C;`

	on, err := s.Execute(ctx, stmt)
	if err != nil {
		t.Fatal(err)
	}
	nodes[0].Processor.SetPushdown(false)
	off, err := s.Execute(ctx, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(on.Result.Rows) != len(off.Result.Rows) || len(on.Result.Rows) != 2*planFixtureRows {
		t.Fatalf("modes disagree: on=%d off=%d rows", len(on.Result.Rows), len(off.Result.Rows))
	}
	// Pushdown-on ships the predicate, so S0's non-matching rows never move.
	if on.RowsMoved >= off.RowsMoved {
		t.Fatalf("pushdown moved %d rows, compensation moved %d", on.RowsMoved, off.RowsMoved)
	}
}

func TestSingleSourceCompensation(t *testing.T) {
	// A direct (non-coalition) query against the mSQL member: LIKE cannot be
	// pushed, so the wrapper widens the projection, the coordinator filters,
	// and the caller still sees the single-column shape.
	_, nodes := planFederation(t, 3, nil)
	s := nodes[1].NewSession()
	resp, err := s.Execute(context.Background(), `V(R.K, (R.K LIKE "r10%")) On S1;`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(resp.Translated, "LIKE") {
		t.Fatalf("LIKE pushed to mSQL: %q", resp.Translated)
	}
	if len(resp.Result.Rows) != 1 || len(resp.Result.Rows[0]) != 1 {
		t.Fatalf("compensated rows = %+v", resp.Result.Rows)
	}
	if resp.Result.Rows[0][0].Int != 1000 {
		t.Fatalf("row = %+v", resp.Result.Rows[0])
	}
}

// BenchmarkFederatedPushdown measures a selective federated predicate with
// pushdown on vs off over the same coalition. The off mode pays to move every
// row to the coordinator; the on mode ships the predicate.
func BenchmarkFederatedPushdown(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"on", true}, {"off", false}} {
		b.Run(mode.name, func(b *testing.B) {
			_, nodes := planFederation(b, 3, nil)
			nodes[0].Processor.SetPushdown(mode.on)
			s := nodes[0].NewSession()
			ctx := context.Background()
			stmt := `V(R.K, (R.V >= 2000)) On Coalition C;`
			b.ResetTimer()
			var moved int64
			for i := 0; i < b.N; i++ {
				resp, err := s.Execute(ctx, stmt)
				if err != nil {
					b.Fatal(err)
				}
				if len(resp.Result.Rows) != planFixtureRows {
					b.Fatalf("rows = %d", len(resp.Result.Rows))
				}
				moved += int64(resp.RowsMoved)
			}
			b.ReportMetric(float64(moved)/float64(b.N), "rows-moved/op")
		})
	}
}

// BenchmarkFederatedTopK measures LIMIT early termination against the full
// scan — and asserts, in the benchmark itself, that the top-K run moves
// strictly fewer member rows than the full fan-out.
func BenchmarkFederatedTopK(b *testing.B) {
	_, nodes := planFederation(b, 3, nil)
	s := nodes[0].NewSession()
	ctx := context.Background()

	full, err := s.Execute(ctx, `V(R.K) On Coalition C;`)
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range []struct {
		name, stmt string
		rows       int
	}{
		{"full", `V(R.K) On Coalition C;`, 3 * planFixtureRows},
		{"limit4", `V(R.K) On Coalition C Limit 4;`, 4},
	} {
		b.Run(bench.name, func(b *testing.B) {
			var moved int64
			for i := 0; i < b.N; i++ {
				resp, err := s.Execute(ctx, bench.stmt)
				if err != nil {
					b.Fatal(err)
				}
				if len(resp.Result.Rows) != bench.rows {
					b.Fatalf("rows = %d, want %d", len(resp.Result.Rows), bench.rows)
				}
				if bench.rows < 3*planFixtureRows && resp.RowsMoved >= full.RowsMoved {
					b.Fatalf("top-K moved %d rows, full scan moved %d — early termination bought nothing",
						resp.RowsMoved, full.RowsMoved)
				}
				moved += int64(resp.RowsMoved)
			}
			b.ReportMetric(float64(moved)/float64(b.N), "rows-moved/op")
		})
	}
}
