package query

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/codb"
	"repro/internal/gateway"
	"repro/internal/idl"
	"repro/internal/orb"
	"repro/internal/wtl"
)

func relDesc(engine string) *codb.SourceDescriptor {
	return &codb.SourceDescriptor{Name: "D", Engine: engine, Wrapper: "WebTassili" + engine}
}

var planFn = &codb.ExportedFunction{
	Name: "V", Returns: "int",
	Table: "r", ResultColumn: "v", ArgColumn: "k",
}

func TestNumericLiteral(t *testing.T) {
	ok := []string{"0", "7", "19980101", "3.14", "10.5"}
	bad := []string{"", ".", "3.", ".5", "1.2.3", "-1", "+1", "1e5", "abc", "3a", "true"}
	for _, s := range ok {
		if !numericLiteral(s) {
			t.Errorf("numericLiteral(%q) = false", s)
		}
	}
	for _, s := range bad {
		if numericLiteral(s) {
			t.Errorf("numericLiteral(%q) = true", s)
		}
	}
}

func TestPushableCond(t *testing.T) {
	full := gateway.Capabilities{Predicates: true, Like: true, Limit: true}
	noLike := gateway.Capabilities{Predicates: true}
	cases := []struct {
		c    wtl.Condition
		caps gateway.Capabilities
		want bool
	}{
		{wtl.Condition{Column: "k", Op: "=", Value: "a", IsStr: true}, full, true},
		{wtl.Condition{Column: "v", Op: ">=", Value: "2000"}, full, true},
		{wtl.Condition{Column: "k", Op: "LIKE", Value: "k%", IsStr: true}, full, true},
		// mSQL-shaped profile: LIKE stays home even when quoted.
		{wtl.Condition{Column: "k", Op: "LIKE", Value: "k%", IsStr: true}, noLike, false},
		// Unquoted LIKE pattern would render as a bare word: never pushed.
		{wtl.Condition{Column: "k", Op: "LIKE", Value: "k%"}, full, false},
		// Bare words and exotic numerics would be fragment syntax errors.
		{wtl.Condition{Column: "k", Op: "=", Value: "abc"}, full, false},
		{wtl.Condition{Column: "v", Op: "=", Value: "1e5"}, full, false},
		{wtl.Condition{Column: "v", Op: "=", Value: "-1"}, full, false},
		// Zero profile (unknown engine, or pushdown off): nothing ships.
		{wtl.Condition{Column: "k", Op: "=", Value: "a", IsStr: true}, gateway.Capabilities{}, false},
	}
	for _, tc := range cases {
		if got := pushableCond(tc.c, tc.caps); got != tc.want {
			t.Errorf("pushableCond(%+v, %+v) = %v, want %v", tc.c, tc.caps, got, tc.want)
		}
	}
}

func TestBuildFragmentExecPerEngine(t *testing.T) {
	q := &wtl.FuncQuery{
		Function: "V", ArgCol: "R.K",
		Preds: []wtl.Condition{
			{Column: "R.K", Op: "LIKE", Value: "k%", IsStr: true},
			{Column: "R.V", Op: ">", Value: "100"},
		},
		Source: "c", Limit: 5,
	}

	// Oracle: both conjuncts push, LIMIT pushes (nothing residual).
	mp, err := buildMemberPlan(relDesc("Oracle"), planFn, q, true)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Exec.Pushed != 2 || len(mp.Exec.Residual) != 0 || !mp.Exec.LimitPushed {
		t.Fatalf("Oracle exec = %+v", mp.Exec)
	}
	if want := "SELECT a.v FROM r a WHERE a.K LIKE 'k%' AND a.V > 100 LIMIT 5"; mp.Exec.Native != want {
		t.Errorf("Oracle fragment = %q, want %q", mp.Exec.Native, want)
	}
	// The bare fallback pushes nothing and widens the projection for both
	// residual conjuncts.
	if mp.Bare.Pushed != 0 || mp.Bare.LimitPushed || len(mp.Bare.Residual) != 2 || mp.Bare.NCols != 2 {
		t.Fatalf("Oracle bare = %+v", mp.Bare)
	}
	if want := "SELECT a.v, a.K FROM r a"; mp.Bare.Native != want {
		t.Errorf("bare fragment = %q, want %q", mp.Bare.Native, want)
	}

	// mSQL: no LIKE, so that conjunct is residual — and the residual blocks
	// the LIMIT even though the dialect's profile would otherwise carry it.
	mp, err = buildMemberPlan(relDesc("mSQL"), planFn, q, true)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Exec.Pushed != 1 || len(mp.Exec.Residual) != 1 || mp.Exec.LimitPushed {
		t.Fatalf("mSQL exec = %+v", mp.Exec)
	}
	if !strings.Contains(mp.Exec.Native, "a.V > 100") || strings.Contains(mp.Exec.Native, "LIKE") {
		t.Errorf("mSQL fragment = %q", mp.Exec.Native)
	}

	// ObjectStore: OQL family, predicates and LIKE push, no LIMIT in OQL.
	mp, err = buildMemberPlan(relDesc("ObjectStore"), planFn, q, true)
	if err != nil {
		t.Fatal(err)
	}
	if !mp.Exec.OQL || mp.Exec.Pushed != 2 || mp.Exec.LimitPushed {
		t.Fatalf("ObjectStore exec = %+v", mp.Exec)
	}
	if want := "SELECT v FROM r WHERE K LIKE 'k%' AND V > 100"; mp.Exec.Native != want {
		t.Errorf("OQL fragment = %q, want %q", mp.Exec.Native, want)
	}

	// Pushdown off: Exec IS the bare fragment (shared, not rebuilt).
	mp, err = buildMemberPlan(relDesc("Oracle"), planFn, q, false)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Exec.Pushed != 0 || mp.Exec.LimitPushed || mp.Exec.Native != mp.Bare.Native {
		t.Fatalf("pushdown-off exec = %+v", mp.Exec)
	}
}

func TestResidualMatchFollowsEngineSemantics(t *testing.T) {
	str := func(s string) idl.Any { return idl.Any{Kind: idl.KindString, Str: s} }
	num := func(n int64) idl.Any { return idl.Any{Kind: idl.KindLong, Int: n} }
	like := wtl.Condition{Column: "k", Op: "LIKE", Value: "k0%", IsStr: true}
	eqNum := wtl.Condition{Column: "v", Op: "=", Value: "3"}

	rel := &fragmentExec{Residual: []wtl.Condition{like}, ResidualIdx: []int{1}, NCols: 2}
	if !residualMatch([]idl.Any{num(7), str("k01")}, rel) {
		t.Error("relational LIKE residual missed a matching row")
	}
	if residualMatch([]idl.Any{num(7), str("zz")}, rel) {
		t.Error("relational LIKE residual matched a non-matching row")
	}

	// The relational engine compares mismatched kinds through their rendered
	// strings (INT 3 = '3'); the OQL engine calls that a non-match. The
	// compensator must reproduce whichever engine the fragment ran on.
	relEq := &fragmentExec{Residual: []wtl.Condition{eqNum}, ResidualIdx: []int{0}, NCols: 1}
	if !residualMatch([]idl.Any{num(3)}, relEq) {
		t.Error("relational numeric equality residual missed")
	}
	ooEq := &fragmentExec{OQL: true, Residual: []wtl.Condition{eqNum}, ResidualIdx: []int{0}, NCols: 1}
	if !residualMatch([]idl.Any{num(3)}, ooEq) {
		t.Error("OQL numeric equality residual missed")
	}
	if residualMatch([]idl.Any{str("3")}, ooEq) {
		t.Error("OQL residual matched across kinds; the engine would not")
	}
	if !residualMatch([]idl.Any{str("3")}, relEq) {
		t.Error("relational residual must match across kinds like relational.Compare")
	}

	// A residual column missing from the row (short row) is a non-match, not
	// a panic.
	if residualMatch([]idl.Any{num(7)}, rel) {
		t.Error("short row matched")
	}
}

func TestCondMatchOpMatrix(t *testing.T) {
	num := func(n int64) idl.Any { return idl.Any{Kind: idl.KindLong, Int: n} }
	dbl := func(f float64) idl.Any { return idl.Any{Kind: idl.KindDouble, Float: f} }
	boolean := func(b bool) idl.Any { return idl.Any{Kind: idl.KindBool, Bool: b} }
	cond := func(op, val string) wtl.Condition { return wtl.Condition{Column: "v", Op: op, Value: val} }

	cases := []struct {
		oql  bool
		v    idl.Any
		c    wtl.Condition
		want bool
	}{
		// Every comparison operator, both families, integer literals.
		{false, num(3), cond("=", "3"), true},
		{false, num(3), cond("<>", "3"), false},
		{false, num(2), cond("<", "3"), true},
		{false, num(3), cond("<=", "3"), true},
		{false, num(4), cond(">", "3"), true},
		{false, num(3), cond(">=", "4"), false},
		{true, num(3), cond("=", "3"), true},
		{true, num(3), cond("<>", "4"), true},
		{true, num(2), cond("<", "3"), true},
		{true, num(3), cond("<=", "2"), false},
		{true, num(4), cond(">", "3"), true},
		{true, num(4), cond(">=", "4"), true},
		// Float literals against float values (both families type "2.5" as a
		// float because of the dot).
		{false, dbl(2.5), cond("=", "2.5"), true},
		{false, dbl(2.5), cond(">", "2.4"), true},
		{true, dbl(2.5), cond("=", "2.5"), true},
		{true, dbl(2.5), cond("<", "2.4"), false},
		// Mixed numeric kinds compare numerically in the relational family.
		{false, num(3), cond("=", "3.0"), true},
		// Bool literals.
		{false, boolean(true), cond("=", "true"), true},
		{true, boolean(true), cond("=", "true"), true},
		{true, boolean(false), cond("<>", "true"), true},
		// A NULL (KindVoid/absent) never satisfies a relational WHERE.
		{false, idl.Any{}, cond("=", "0"), false},
		// Bare word literal: OQL cannot type it — no match; relational types
		// it as text deterministically.
		{true, num(3), cond("=", "abc"), false},
		// Unknown operator is a non-match, not a panic.
		{false, num(3), cond("~", "3"), false},
	}
	for _, tc := range cases {
		if got := condMatch(tc.oql, tc.v, tc.c); got != tc.want {
			t.Errorf("condMatch(oql=%v, %+v, %+v) = %v, want %v", tc.oql, tc.v, tc.c, got, tc.want)
		}
	}
}

func TestPlanFingerprintDistinguishesModeAndText(t *testing.T) {
	q1, err := wtl.Parse(`V(R.K, (R.K = "a")) On Coalition c;`)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := wtl.Parse(`V(R.K, (R.K = "a")) On Coalition c Limit 3;`)
	if err != nil {
		t.Fatal(err)
	}
	a := planFingerprint(q1.(*wtl.FuncQuery), true)
	b := planFingerprint(q1.(*wtl.FuncQuery), false)
	c := planFingerprint(q2.(*wtl.FuncQuery), true)
	if a == b || a == c || b == c {
		t.Errorf("fingerprints collide: on=%x off=%x limit=%x", a, b, c)
	}
	if again := planFingerprint(q1.(*wtl.FuncQuery), true); again != a {
		t.Errorf("fingerprint unstable: %x then %x", a, again)
	}
}

func TestIsCapabilityRejection(t *testing.T) {
	if isCapabilityRejection(nil) {
		t.Error("nil error classified as rejection")
	}
	for _, msg := range []string{
		"relational: mSQL does not support LIKE (use RLIKE/CLIKE)",
		`oodb: unexpected "LIMIT" after query`,
	} {
		if !isCapabilityRejection(errors.New(msg)) {
			t.Errorf("engine rejection not recognised: %q", msg)
		}
	}
	if isCapabilityRejection(errors.New("gateway: no source named X")) {
		t.Error("unrelated error classified as rejection")
	}
	// Transport failures are never capability rejections, whatever their
	// detail text says.
	se := &orb.SystemException{Name: "COMM_FAILURE", Detail: "peer does not support frobnication, unexpected EOF"}
	if isCapabilityRejection(se) {
		t.Error("SystemException classified as rejection")
	}
	if isCapabilityRejection(fmt.Errorf("call failed: %w", se)) {
		t.Error("wrapped SystemException classified as rejection")
	}
}
