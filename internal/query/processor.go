package query

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/codb"
	"repro/internal/gateway"
	"repro/internal/idl"
	"repro/internal/orb"
	"repro/internal/trace"
	"repro/internal/wtl"
)

// Lead is one discovery result offered to the user for selection, with the
// provenance information WebFINDIT uses to educate the user ("the system
// prompts the user to select the most interesting leads").
type Lead struct {
	Coalition string
	Score     float64
	Via       string // "local", "link:<name>", "peer:<database>"
	CoDBRef   string // co-database able to expand this lead ("" = local)
}

// Response is the outcome of one WebTassili statement. Text always carries
// a human-readable rendering; the typed fields carry the structured payload
// of the statement kind that produced it.
type Response struct {
	Stmt       wtl.Stmt
	Text       string
	Leads      []Lead
	Names      []string
	Sources    []*codb.SourceDescriptor
	Descriptor *codb.SourceDescriptor
	DocURL     string
	DocHTML    string
	Result     *gateway.Result
	Translated string // native query produced by the wrapper
}

// Config wires a query processor to its node.
type Config struct {
	ORB  *orb.ORB
	Home string // home database name (users are users of a member database)
	// HomeDescriptor is advertised by Join Coalition statements.
	HomeDescriptor *codb.SourceDescriptor
	// Local is the client of the node's own co-database servant.
	Local *codb.Client
	// LocalCoDB, when the co-database is in-process, enables maintenance
	// statements (Create Coalition / Create Service Link) that the remote
	// interface intentionally restricts.
	LocalCoDB *codb.CoDatabase
	// Gateway opens DSN connections for sources without an ISI reference.
	Gateway *gateway.Manager
	// FanOut bounds the worker pool used to contact coalition members in
	// parallel (peer discovery, coalition query decomposition, membership
	// maintenance). 0 selects the default width (2×GOMAXPROCS, min 8);
	// 1 forces the serial pre-parallel behaviour.
	FanOut int
}

// Processor is the query layer of one WebFINDIT node.
type Processor struct {
	cfg Config
}

// New creates a processor; ORB, Home and Local are required.
func New(cfg Config) (*Processor, error) {
	if cfg.ORB == nil || cfg.Local == nil || cfg.Home == "" {
		return nil, fmt.Errorf("query: Config needs ORB, Local and Home")
	}
	return &Processor{cfg: cfg}, nil
}

// SetFanOut adjusts the member fan-out width (see Config.FanOut). It must
// not be called concurrently with running sessions; benchmarks use it to
// compare serial and parallel decomposition.
func (p *Processor) SetFanOut(n int) { p.cfg.FanOut = n }

// Session is one user's interactive context: the coalition they are
// connected to and the source they last selected. Sessions are not safe for
// concurrent use by multiple callers, but statements internally fan out to
// coalition members in parallel, so the trace buffer is mutex-protected.
type Session struct {
	p *Processor

	// Coalition is the currently connected coalition ("" before Connect).
	Coalition string
	// Source is the currently selected information source.
	Source string

	codbClient *codb.Client // co-database answering for the current coalition
	traceMu    sync.Mutex
	trace      []string
}

// NewSession opens a session rooted at the node's local co-database.
func (p *Processor) NewSession() *Session {
	return &Session{p: p, codbClient: p.cfg.Local}
}

// Trace returns the accumulated layer trace (query, communication,
// meta-data, data) and clears it.
func (s *Session) Trace() []string {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	t := s.trace
	s.trace = nil
	return t
}

func (s *Session) tracef(layer, format string, args ...any) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	s.trace = append(s.trace, layer+" layer: "+fmt.Sprintf(format, args...))
}

// current returns the co-database client serving the session's context.
func (s *Session) current() *codb.Client {
	if s.codbClient != nil {
		return s.codbClient
	}
	return s.p.cfg.Local
}

// Execute parses and runs one WebTassili statement.
func (s *Session) Execute(src string) (*Response, error) {
	return s.ExecuteCtx(context.Background(), src)
}

// ExecuteCtx is Execute under a caller context: every ORB invocation the
// statement triggers — metadata lookups, peer probes, coalition fan-out,
// gateway/ISI calls — joins the caller's trace.
func (s *Session) ExecuteCtx(ctx context.Context, src string) (*Response, error) {
	stmt, err := wtl.Parse(src)
	if err != nil {
		return nil, err
	}
	s.tracef("query", "parsed %T", stmt)
	return s.ExecuteStmtCtx(ctx, stmt)
}

// ExecuteStmt runs one parsed statement.
func (s *Session) ExecuteStmt(stmt wtl.Stmt) (*Response, error) {
	return s.ExecuteStmtCtx(context.Background(), stmt)
}

// ExecuteStmtCtx runs one parsed statement under a caller context. The whole
// statement runs inside a "query:<StmtType>" span; every stage below parents
// onto it.
func (s *Session) ExecuteStmtCtx(ctx context.Context, stmt wtl.Stmt) (*Response, error) {
	ctx, sp := trace.StartSpan(ctx, "query:"+strings.TrimPrefix(fmt.Sprintf("%T", stmt), "*wtl."))
	resp, err := s.execStmt(ctx, stmt)
	sp.End(err)
	return resp, err
}

func (s *Session) execStmt(ctx context.Context, stmt wtl.Stmt) (*Response, error) {
	switch q := stmt.(type) {
	case *wtl.FindCoalitions:
		return s.execFind(ctx, q)
	case *wtl.Connect:
		return s.execConnect(ctx, q)
	case *wtl.DisplayCoalitions:
		return s.execCoalitions(q)
	case *wtl.DisplayLinks:
		return s.execLinks(q)
	case *wtl.DisplaySubClasses:
		return s.execSubClasses(q)
	case *wtl.DisplayInstances:
		return s.execInstances(ctx, q)
	case *wtl.DisplayDocument:
		return s.execDocument(q)
	case *wtl.DisplayAccessInfo:
		return s.execAccessInfo(ctx, q)
	case *wtl.DisplayInterface:
		return s.execInterface(ctx, q)
	case *wtl.SearchType:
		return s.execSearchType(ctx, q)
	case *wtl.FuncQuery:
		return s.execFuncQuery(ctx, q)
	case *wtl.NativeQuery:
		return s.execNativeQuery(ctx, q)
	case *wtl.CreateCoalition:
		return s.execCreateCoalition(q)
	case *wtl.CreateLink:
		return s.execCreateLink(q)
	case *wtl.JoinCoalition:
		return s.execJoin(ctx, q)
	case *wtl.LeaveCoalition:
		return s.execLeave(ctx, q)
	}
	return nil, fmt.Errorf("query: unsupported statement %T", stmt)
}

// ---- Discovery (the paper's resolution algorithm) ----

// execFind implements the three-stage resolution of §2: local coalitions
// first, then local service links, then the coalitions/links known to the
// other members of the local coalitions.
func (s *Session) execFind(ctx context.Context, q *wtl.FindCoalitions) (*Response, error) {
	leads, err := s.p.resolveTopic(ctx, s, q.Topic)
	if err != nil {
		return nil, err
	}
	resp := &Response{Stmt: q, Leads: leads}
	if len(leads) == 0 {
		resp.Text = fmt.Sprintf("No coalitions found for information %q.", q.Topic)
		return resp, nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Coalitions offering information %q:\n", q.Topic)
	for _, l := range leads {
		fmt.Fprintf(&b, "  - %s (score %.2f, via %s)\n", l.Coalition, l.Score, l.Via)
	}
	resp.Text = strings.TrimRight(b.String(), "\n")
	return resp, nil
}

// fullScore reports whether any lead matches every query token — the
// condition under which a resolution stage "answers the query" and no
// further escalation is needed.
func fullScore(leads []Lead) bool {
	for _, l := range leads {
		if l.Score >= 1.0 {
			return true
		}
	}
	return false
}

// resolveTopic runs the resolution algorithm and returns leads. Stages
// escalate (local coalitions, then local service links, then coalition
// peers) until some stage produces a full match; weaker partial matches from
// earlier stages are kept as additional leads for the user to inspect. Each
// stage runs in its own span, and stage 3's fan-out opens a span per peer
// probed, so the trace shows where discovery time goes.
func (p *Processor) resolveTopic(ctx context.Context, s *Session, topic string) ([]Lead, error) {
	local := p.cfg.Local
	var leads []Lead

	// Stage 1: coalitions in the local co-database.
	s.tracef("communication", "invoke find_coalitions(%q) on local co-database", topic)
	st1Ctx, st1 := trace.StartSpan(ctx, "query.stage:local-coalitions")
	matches, err := local.FindCoalitionsCtx(st1Ctx, topic)
	st1.End(err)
	if err != nil {
		return nil, fmt.Errorf("query: local co-database: %w", err)
	}
	s.tracef("meta-data", "local co-database scored %d coalition(s)", len(matches))
	leads = append(leads, leadsFrom(matches, "")...)
	if fullScore(leads) {
		return sortLeads(leads), nil
	}

	// Stage 2: service links known locally.
	s.tracef("communication", "invoke find_links(%q) on local co-database", topic)
	st2Ctx, st2 := trace.StartSpan(ctx, "query.stage:local-links")
	links, err := local.FindLinksCtx(st2Ctx, topic)
	st2.End(err)
	if err != nil {
		return nil, fmt.Errorf("query: local co-database links: %w", err)
	}
	s.tracef("meta-data", "local co-database scored %d service link(s)", len(links))
	leads = append(leads, leadsFrom(links, "")...)
	if fullScore(leads) {
		return sortLeads(leads), nil
	}

	// Stage 3: ask the other members of the local coalitions whether they
	// know a coalition or a service link for this topic. The member list is
	// assembled serially from local metadata (deterministic order,
	// deduplicated by co-database reference); the peers themselves are then
	// probed in parallel, so stage latency tracks the slowest peer instead
	// of the sum of all peers. Results are merged back in member order,
	// keeping lead ordering identical to the serial algorithm.
	st3Ctx, st3 := trace.StartSpan(ctx, "query.stage:coalition-peers")
	defer st3.End(nil)
	memberOf, err := local.MemberOf()
	if err != nil {
		return nil, err
	}
	type peerProbe struct {
		name  string
		ref   string
		peer  *codb.Client
		coals []codb.Match
		links []codb.Match
	}
	var probes []*peerProbe
	probed := map[string]bool{}
	for _, coalition := range memberOf {
		members, err := local.InstancesCtx(st3Ctx, coalition)
		if err != nil {
			continue
		}
		for _, m := range members {
			if strings.EqualFold(m.Name, p.cfg.Home) || m.CoDBRef == "" || probed[m.CoDBRef] {
				continue
			}
			peer, err := p.codbByRef(m.CoDBRef)
			if err != nil {
				continue
			}
			probed[m.CoDBRef] = true
			s.tracef("communication", "invoke find_coalitions(%q) on peer co-database of %s", topic, m.Name)
			s.tracef("communication", "invoke find_links(%q) on peer co-database of %s", topic, m.Name)
			probes = append(probes, &peerProbe{name: m.Name, ref: m.CoDBRef, peer: peer})
		}
	}
	fanOut(len(probes), p.cfg.FanOut, func(i int) {
		pr := probes[i]
		probeCtx, psp := trace.StartSpan(st3Ctx, "query.probe:"+pr.name)
		if pm, err := pr.peer.FindCoalitionsCtx(probeCtx, topic); err == nil {
			pr.coals = pm
		}
		if pl, err := pr.peer.FindLinksCtx(probeCtx, topic); err == nil {
			pr.links = pl
		}
		psp.End(nil)
	})
	out := leads
	seen := map[string]bool{}
	for _, l := range out {
		seen["c:"+strings.ToLower(l.Coalition)] = true
	}
	for _, pr := range probes {
		for _, match := range pr.coals {
			key := "c:" + strings.ToLower(match.Coalition)
			if !seen[key] {
				seen[key] = true
				out = append(out, Lead{Coalition: match.Coalition, Score: match.Score,
					Via: "peer:" + pr.name, CoDBRef: pr.ref})
			}
		}
		for _, match := range pr.links {
			key := "l:" + strings.ToLower(match.Coalition)
			if !seen[key] {
				seen[key] = true
				ref := match.CoDBRef
				if ref == "" {
					ref = pr.ref
				}
				out = append(out, Lead{Coalition: match.Coalition, Score: match.Score,
					Via: "peer:" + pr.name + "/" + match.Via, CoDBRef: ref})
			}
		}
	}
	s.tracef("meta-data", "coalition peers contributed %d lead(s)", len(out)-len(leads))
	return sortLeads(out), nil
}

// sortLeads orders leads by descending score, then name, for stable output.
func sortLeads(leads []Lead) []Lead {
	sort.SliceStable(leads, func(i, j int) bool {
		if leads[i].Score != leads[j].Score {
			return leads[i].Score > leads[j].Score
		}
		return leads[i].Coalition < leads[j].Coalition
	})
	return leads
}

func leadsFrom(matches []codb.Match, defaultRef string) []Lead {
	out := make([]Lead, len(matches))
	for i, m := range matches {
		ref := m.CoDBRef
		if ref == "" {
			ref = defaultRef
		}
		out[i] = Lead{Coalition: m.Coalition, Score: m.Score, Via: m.Via, CoDBRef: ref}
	}
	return out
}

// codbByRef opens a co-database client from a stringified IOR.
func (p *Processor) codbByRef(ref string) (*codb.Client, error) {
	objRef, err := p.cfg.ORB.ResolveString(ref)
	if err != nil {
		return nil, err
	}
	return codb.NewClient(objRef), nil
}

// ---- Connection and browsing ----

// execConnect provides a point of entry for a coalition: the session's
// subsequent Display queries run against the co-database that knows it.
func (s *Session) execConnect(ctx context.Context, q *wtl.Connect) (*Response, error) {
	client, err := s.p.coalitionEntry(ctx, s, q.Coalition)
	if err != nil {
		return nil, err
	}
	s.Coalition = q.Coalition
	s.codbClient = client
	return &Response{Stmt: q, Text: fmt.Sprintf("Connected to coalition %s.", q.Coalition)}, nil
}

// coalitionEntry finds a co-database that knows the coalition: locally,
// through a service link, or through a coalition peer.
func (p *Processor) coalitionEntry(ctx context.Context, s *Session, coalition string) (*codb.Client, error) {
	local := p.cfg.Local
	if hasCoalition(local, coalition) {
		s.tracef("meta-data", "coalition %s found in local co-database", coalition)
		return local, nil
	}
	// A service link naming the coalition as target may carry a reference.
	links, err := local.Links()
	if err == nil {
		for _, l := range links {
			if strings.EqualFold(l.To, coalition) && l.CoDBRef != "" {
				if peer, err := p.codbByRef(l.CoDBRef); err == nil && hasCoalition(peer, coalition) {
					s.tracef("communication", "entering coalition %s through service link %s", coalition, l.Name)
					return peer, nil
				}
			}
		}
	}
	// Ask coalition peers.
	memberOf, _ := local.MemberOf()
	for _, c := range memberOf {
		members, err := local.InstancesCtx(ctx, c)
		if err != nil {
			continue
		}
		for _, m := range members {
			if strings.EqualFold(m.Name, p.cfg.Home) || m.CoDBRef == "" {
				continue
			}
			peer, err := p.codbByRef(m.CoDBRef)
			if err != nil {
				continue
			}
			if hasCoalition(peer, coalition) {
				s.tracef("communication", "entering coalition %s through peer %s", coalition, m.Name)
				return peer, nil
			}
			// One more hop: the peer's links may carry the reference.
			plinks, err := peer.Links()
			if err != nil {
				continue
			}
			for _, l := range plinks {
				if strings.EqualFold(l.To, coalition) && l.CoDBRef != "" {
					if far, err := p.codbByRef(l.CoDBRef); err == nil && hasCoalition(far, coalition) {
						s.tracef("communication", "entering coalition %s through peer %s link %s",
							coalition, m.Name, l.Name)
						return far, nil
					}
				}
			}
		}
	}
	return nil, fmt.Errorf("query: no entry point found for coalition %s", coalition)
}

func hasCoalition(c *codb.Client, coalition string) bool {
	names, err := c.Coalitions()
	if err != nil {
		return false
	}
	for _, n := range names {
		if strings.EqualFold(n, coalition) {
			return true
		}
	}
	return false
}

// execCoalitions lists the coalitions of the session's current co-database.
func (s *Session) execCoalitions(q *wtl.DisplayCoalitions) (*Response, error) {
	s.tracef("communication", "invoke coalitions()")
	names, err := s.current().Coalitions()
	if err != nil {
		return nil, err
	}
	text := "No coalitions known here."
	if len(names) > 0 {
		text = "Known coalitions: " + strings.Join(names, ", ")
	}
	return &Response{Stmt: q, Names: names, Text: text}, nil
}

// execLinks lists the service links of the session's current co-database.
func (s *Session) execLinks(q *wtl.DisplayLinks) (*Response, error) {
	s.tracef("communication", "invoke links()")
	links, err := s.current().Links()
	if err != nil {
		return nil, err
	}
	if len(links) == 0 {
		return &Response{Stmt: q, Text: "No service links known here."}, nil
	}
	var b strings.Builder
	b.WriteString("Known service links:")
	var names []string
	for _, l := range links {
		names = append(names, l.Name)
		fmt.Fprintf(&b, "\n  %s: %s %q -> %s %q (%s)",
			l.Name, l.FromKind, l.From, l.ToKind, l.To, l.InfoType)
	}
	return &Response{Stmt: q, Names: names, Text: b.String()}, nil
}

func (s *Session) execSubClasses(q *wtl.DisplaySubClasses) (*Response, error) {
	s.tracef("communication", "invoke subclasses(%q)", q.Class)
	subs, err := s.current().SubCoalitions(q.Class, true)
	if err != nil {
		return nil, err
	}
	text := fmt.Sprintf("Class %s has no subclasses.", q.Class)
	if len(subs) > 0 {
		text = fmt.Sprintf("SubClasses of %s: %s", q.Class, strings.Join(subs, ", "))
	}
	return &Response{Stmt: q, Names: subs, Text: text}, nil
}

func (s *Session) execInstances(ctx context.Context, q *wtl.DisplayInstances) (*Response, error) {
	s.tracef("communication", "invoke instances(%q)", q.Class)
	members, err := s.current().InstancesCtx(ctx, q.Class)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(members))
	for i, m := range members {
		names[i] = m.Name
	}
	text := fmt.Sprintf("Class %s has no instances.", q.Class)
	if len(names) > 0 {
		text = fmt.Sprintf("Instances of %s:\n  %s", q.Class, strings.Join(names, "\n  "))
	}
	return &Response{Stmt: q, Sources: members, Names: names, Text: text}, nil
}

func (s *Session) execDocument(q *wtl.DisplayDocument) (*Response, error) {
	s.tracef("communication", "invoke document(%q)", q.Instance)
	url, html, err := s.current().Document(q.Instance)
	if err != nil {
		return nil, err
	}
	s.Source = q.Instance
	text := fmt.Sprintf("Documentation of %s: %s", q.Instance, url)
	return &Response{Stmt: q, DocURL: url, DocHTML: html, Text: text}, nil
}

func (s *Session) execAccessInfo(ctx context.Context, q *wtl.DisplayAccessInfo) (*Response, error) {
	s.tracef("communication", "invoke access_info(%q)", q.Instance)
	d, err := s.current().AccessInfoCtx(ctx, q.Instance)
	if err != nil {
		return nil, err
	}
	s.Source = d.Name
	var b strings.Builder
	fmt.Fprintf(&b, "The database %s is located at %q and exports the following type(s):\n",
		d.Name, d.Location)
	for _, t := range d.Interface {
		b.WriteString(t.Declaration())
		b.WriteByte('\n')
	}
	return &Response{Stmt: q, Descriptor: d, Text: strings.TrimRight(b.String(), "\n")}, nil
}

func (s *Session) execInterface(ctx context.Context, q *wtl.DisplayInterface) (*Response, error) {
	s.tracef("communication", "invoke access_info(%q)", q.Instance)
	d, err := s.current().AccessInfoCtx(ctx, q.Instance)
	if err != nil {
		return nil, err
	}
	s.Source = d.Name
	return &Response{
		Stmt:    q,
		Names:   d.InterfaceNames(),
		Text:    fmt.Sprintf("Interface of %s: %s", d.Name, strings.Join(d.InterfaceNames(), ", ")),
		Sources: []*codb.SourceDescriptor{d},
	}, nil
}

// matchesStructure checks that an exported type declares every attribute a
// structural search requires (by qualified or bare name; type must match
// when both sides give one).
func matchesStructure(et *codb.ExportedType, wants []wtl.Member) bool {
	for _, w := range wants {
		found := false
		for _, a := range et.Attributes {
			if !attrNameMatches(a.Name, w.Name) {
				continue
			}
			if w.Type != "" && a.Type != "" && !strings.EqualFold(a.Type, w.Type) {
				continue
			}
			found = true
			break
		}
		if !found {
			return false
		}
	}
	return true
}

// attrNameMatches compares attribute names, letting a bare name match the
// column part of a qualified one.
func attrNameMatches(have, want string) bool {
	if strings.EqualFold(have, want) {
		return true
	}
	hBase := have
	if _, c, ok := strings.Cut(have, "."); ok {
		hBase = c
	}
	wBase := want
	if _, c, ok := strings.Cut(want, "."); ok {
		wBase = c
	}
	return strings.EqualFold(hBase, wBase)
}

func (s *Session) execSearchType(ctx context.Context, q *wtl.SearchType) (*Response, error) {
	client := s.current()
	coalitions, err := client.Coalitions()
	if err != nil {
		return nil, err
	}
	var hits []*codb.SourceDescriptor
	seen := map[string]bool{}
	for _, c := range coalitions {
		members, err := client.InstancesCtx(ctx, c)
		if err != nil {
			continue
		}
		for _, m := range members {
			if seen[strings.ToLower(m.Name)] {
				continue
			}
			et, ok := m.Type(q.TypeName)
			if !ok {
				continue
			}
			if len(q.Structure) > 0 && !matchesStructure(et, q.Structure) {
				continue
			}
			seen[strings.ToLower(m.Name)] = true
			hits = append(hits, m)
		}
	}
	names := make([]string, len(hits))
	for i, h := range hits {
		names[i] = h.Name
	}
	text := fmt.Sprintf("No sources export type %s.", q.TypeName)
	if len(hits) > 0 {
		text = fmt.Sprintf("Sources exporting type %s: %s", q.TypeName, strings.Join(names, ", "))
	}
	return &Response{Stmt: q, Sources: hits, Names: names, Text: text}, nil
}

// ---- Data access ----

// lookupSource finds a descriptor in the current context, falling back to
// the local co-database.
func (s *Session) lookupSource(ctx context.Context, name string) (*codb.SourceDescriptor, error) {
	if name == "" {
		name = s.Source
	}
	if name == "" {
		return nil, fmt.Errorf("query: no source selected; name one with On or Display Access Information first")
	}
	if d, err := s.current().AccessInfoCtx(ctx, name); err == nil {
		return d, nil
	}
	d, err := s.p.cfg.Local.AccessInfoCtx(ctx, name)
	if err != nil {
		return nil, fmt.Errorf("query: source %s not found in current context: %w", name, err)
	}
	return d, nil
}

// openSource opens a gateway connection to the descriptor's database:
// through its ISI servant when it advertises one, else through a DSN.
func (p *Processor) openSource(s *Session, d *codb.SourceDescriptor) (gateway.Conn, error) {
	if d.ISIRef != "" {
		ref, err := p.cfg.ORB.ResolveString(d.ISIRef)
		if err != nil {
			return nil, fmt.Errorf("query: source %s advertises a bad ISI reference: %w", d.Name, err)
		}
		s.tracef("communication", "connecting to ISI of %s at %s", d.Name, ref.IOR().Addr())
		return gateway.NewRemoteConn(ref), nil
	}
	if d.DSN != "" && p.cfg.Gateway != nil {
		s.tracef("communication", "opening gateway DSN %s", d.DSN)
		return p.cfg.Gateway.Open(d.DSN)
	}
	return nil, fmt.Errorf("query: source %s advertises no access path", d.Name)
}

func (s *Session) execFuncQuery(ctx context.Context, q *wtl.FuncQuery) (*Response, error) {
	if q.OnCoalition {
		return s.execCoalitionFuncQuery(ctx, q)
	}
	d, err := s.lookupSource(ctx, q.Source)
	if err != nil {
		return nil, err
	}
	var fn *codb.ExportedFunction
	for i := range d.Interface {
		if f, ok := d.Interface[i].Function(q.Function); ok {
			fn = f
			break
		}
	}
	if fn == nil {
		return nil, fmt.Errorf("query: source %s exports no function %s", d.Name, q.Function)
	}
	w := WrapperFor(d)
	native, err := w.Translate(fn, q.Preds)
	if err != nil {
		return nil, err
	}
	s.tracef("query", "wrapper %s translated %s to: %s", w.Name(), q.Function, native)
	conn, err := s.p.openSource(s, d)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	s.tracef("data", "executing on %s (%s): %s", d.Name, d.Engine, native)
	res, err := gateway.QueryContext(ctx, conn, native)
	if err != nil {
		return nil, fmt.Errorf("query: %s: %w", d.Name, err)
	}
	s.Source = d.Name
	return &Response{Stmt: q, Result: res, Translated: native, Descriptor: d, Text: res.Format()}, nil
}

// execCoalitionFuncQuery decomposes a typed query over every member of a
// coalition that exports the function, merging the result sets with a
// leading "source" column — the paper's query decomposition across a
// cluster of databases sharing a topic. Translation runs serially (so
// translation errors surface in member order), then the per-member
// sub-queries execute in parallel through a bounded worker pool; rows are
// merged back in member order, so the merged result is deterministic and
// end-to-end latency tracks the slowest member rather than the member count.
func (s *Session) execCoalitionFuncQuery(ctx context.Context, q *wtl.FuncQuery) (*Response, error) {
	entry, err := s.p.coalitionEntry(ctx, s, q.Source)
	if err != nil {
		return nil, err
	}
	members, err := entry.InstancesCtx(ctx, q.Source)
	if err != nil {
		return nil, err
	}
	type subQuery struct {
		d      *codb.SourceDescriptor
		native string
	}
	var parts []subQuery
	for _, d := range members {
		var fn *codb.ExportedFunction
		for i := range d.Interface {
			if f, ok := d.Interface[i].Function(q.Function); ok {
				fn = f
				break
			}
		}
		if fn == nil {
			continue // members without the function do not participate
		}
		w := WrapperFor(d)
		native, err := w.Translate(fn, q.Preds)
		if err != nil {
			return nil, fmt.Errorf("query: %s: %w", d.Name, err)
		}
		s.tracef("data", "decomposed query on %s (%s): %s", d.Name, d.Engine, native)
		parts = append(parts, subQuery{d: d, native: native})
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("query: no member of coalition %s exports function %s", q.Source, q.Function)
	}
	results := make([]*gateway.Result, len(parts))
	errs := make([]error, len(parts))
	fanOut(len(parts), s.p.cfg.FanOut, func(i int) {
		pt := parts[i]
		// One span per coalition member, so the fan-out's critical path —
		// the slowest member — is visible in the trace.
		mctx, msp := trace.StartSpan(ctx, "query.member:"+pt.d.Name)
		msp.SetAttr("engine", pt.d.Engine)
		defer func() { msp.End(errs[i]) }()
		conn, err := s.p.openSource(s, pt.d)
		if err != nil {
			errs[i] = err
			return
		}
		res, err := gateway.QueryContext(mctx, conn, pt.native)
		conn.Close()
		if err != nil {
			errs[i] = fmt.Errorf("query: %s: %w", pt.d.Name, err)
			return
		}
		results[i] = res
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := &gateway.Result{}
	var translations []string
	for i, pt := range parts {
		res := results[i]
		translations = append(translations, pt.d.Name+": "+pt.native)
		if len(merged.Columns) == 0 {
			merged.Columns = append([]string{"source"}, res.Columns...)
		}
		for _, row := range res.Rows {
			merged.Rows = append(merged.Rows, append([]idl.Any{idl.String(pt.d.Name)}, row...))
		}
	}
	return &Response{
		Stmt:       q,
		Result:     merged,
		Translated: strings.Join(translations, "\n"),
		Text:       merged.Format(),
	}, nil
}

func (s *Session) execNativeQuery(ctx context.Context, q *wtl.NativeQuery) (*Response, error) {
	d, err := s.lookupSource(ctx, q.Source)
	if err != nil {
		return nil, err
	}
	conn, err := s.p.openSource(s, d)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	s.tracef("data", "executing on %s (%s): %s", d.Name, d.Engine, q.Text)
	res, err := gateway.QueryContext(ctx, conn, q.Text)
	if err != nil {
		return nil, fmt.Errorf("query: %s: %w", d.Name, err)
	}
	s.Source = d.Name
	return &Response{Stmt: q, Result: res, Translated: q.Text, Descriptor: d, Text: res.Format()}, nil
}

// ---- Information-space maintenance ----

// maintenanceCoDB requires an in-process co-database for schema changes.
func (s *Session) maintenanceCoDB() (*codb.CoDatabase, error) {
	if s.p.cfg.LocalCoDB == nil {
		return nil, fmt.Errorf("query: information-space maintenance requires the node's own co-database")
	}
	return s.p.cfg.LocalCoDB, nil
}

func (s *Session) execCreateCoalition(q *wtl.CreateCoalition) (*Response, error) {
	cd, err := s.maintenanceCoDB()
	if err != nil {
		return nil, err
	}
	if err := cd.DefineCoalition(q.Name, q.Parent, q.Description); err != nil {
		return nil, err
	}
	return &Response{Stmt: q, Text: fmt.Sprintf("Coalition %s created.", q.Name)}, nil
}

func (s *Session) execCreateLink(q *wtl.CreateLink) (*Response, error) {
	cd, err := s.maintenanceCoDB()
	if err != nil {
		return nil, err
	}
	if err := cd.AddLink(&codb.ServiceLink{
		Name:     q.Name,
		FromKind: q.FromKind,
		From:     q.From,
		ToKind:   q.ToKind,
		To:       q.To,
		InfoType: q.InfoType,
	}); err != nil {
		return nil, err
	}
	return &Response{Stmt: q, Text: fmt.Sprintf("Service link %s created.", q.Name)}, nil
}

// memberCoDBs opens the co-database clients of a coalition's members as
// known to the entry client, deduplicated by reference. The clients are
// resolved through a bounded worker pool and returned in member order.
func (p *Processor) memberCoDBs(ctx context.Context, entry *codb.Client, coalition string) ([]*codb.Client, error) {
	members, err := entry.InstancesCtx(ctx, coalition)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var refs []string
	for _, m := range members {
		if m.CoDBRef == "" || seen[m.CoDBRef] {
			continue
		}
		seen[m.CoDBRef] = true
		refs = append(refs, m.CoDBRef)
	}
	clients := make([]*codb.Client, len(refs))
	fanOut(len(refs), p.cfg.FanOut, func(i int) {
		if c, err := p.codbByRef(refs[i]); err == nil {
			clients[i] = c
		}
	})
	out := make([]*codb.Client, 0, len(clients))
	for _, c := range clients {
		if c != nil {
			out = append(out, c)
		}
	}
	return out, nil
}

// execJoin advertises the home database into a coalition: every current
// member's co-database learns the newcomer, and — when this node owns its
// co-database — the coalition is replicated locally with all its members, so
// the newcomer is a full participant ("individual sites join and leave these
// clusters at their own discretion").
func (s *Session) execJoin(ctx context.Context, q *wtl.JoinCoalition) (*Response, error) {
	home := s.p.cfg.HomeDescriptor
	if home == nil {
		return nil, fmt.Errorf("query: node has no home descriptor to advertise")
	}
	entry, err := s.p.coalitionEntry(ctx, s, q.Coalition)
	if err != nil {
		return nil, err
	}
	members, err := entry.InstancesCtx(ctx, q.Coalition)
	if err != nil {
		return nil, err
	}
	for _, m := range members {
		if strings.EqualFold(m.Name, s.p.cfg.Home) {
			return nil, fmt.Errorf("query: %s is already a member of %s", s.p.cfg.Home, q.Coalition)
		}
	}
	peers, err := s.p.memberCoDBs(ctx, entry, q.Coalition)
	if err != nil {
		return nil, err
	}
	// Advertise into every member co-database in parallel. Unlike the serial
	// loop — which stopped at the first failure, leaving only the peers
	// before it advertised — the fan-out reaches every peer before errors
	// are checked, so on failure the successful advertisements are rolled
	// back (best effort) and a failed join leaves no peer knowing the
	// newcomer.
	advErrs := make([]error, len(peers))
	fanOut(len(peers), s.p.cfg.FanOut, func(i int) {
		s.tracef("communication", "advertising %s into a member co-database", s.p.cfg.Home)
		advErrs[i] = peers[i].AdvertiseCtx(ctx, q.Coalition, home)
	})
	var joinErr error
	for _, err := range advErrs {
		if err != nil {
			joinErr = err // report the first error in member order
			break
		}
	}
	if joinErr != nil {
		fanOut(len(peers), s.p.cfg.FanOut, func(i int) {
			if advErrs[i] == nil {
				peers[i].RemoveMemberCtx(ctx, q.Coalition, s.p.cfg.Home)
			}
		})
		return nil, joinErr
	}
	// Local replication.
	if cd := s.p.cfg.LocalCoDB; cd != nil {
		if !cd.HasCoalition(q.Coalition) {
			desc, syns, _ := entry.CoalitionInfo(q.Coalition)
			if err := cd.DefineCoalition(q.Coalition, "", desc, syns...); err != nil {
				return nil, err
			}
		}
		for _, m := range members {
			if err := cd.AddMember(q.Coalition, m); err != nil && !strings.Contains(err.Error(), "already a member") {
				return nil, err
			}
		}
		if err := cd.AddMember(q.Coalition, home); err != nil && !strings.Contains(err.Error(), "already a member") {
			return nil, err
		}
	}
	return &Response{Stmt: q,
		Text: fmt.Sprintf("%s joined coalition %s.", s.p.cfg.Home, q.Coalition)}, nil
}

// execLeave withdraws the home database from a coalition everywhere it is
// known: every member's co-database, and the local copy.
func (s *Session) execLeave(ctx context.Context, q *wtl.LeaveCoalition) (*Response, error) {
	entry, err := s.p.coalitionEntry(ctx, s, q.Coalition)
	if err != nil {
		return nil, err
	}
	peers, err := s.p.memberCoDBs(ctx, entry, q.Coalition)
	if err != nil {
		return nil, err
	}
	removedAt := make([]bool, len(peers))
	fanOut(len(peers), s.p.cfg.FanOut, func(i int) {
		if err := peers[i].RemoveMemberCtx(ctx, q.Coalition, s.p.cfg.Home); err == nil {
			removedAt[i] = true
		}
	})
	removed := false
	for _, ok := range removedAt {
		removed = removed || ok
	}
	if !removed {
		return nil, fmt.Errorf("query: %s is not a member of %s", s.p.cfg.Home, q.Coalition)
	}
	return &Response{Stmt: q,
		Text: fmt.Sprintf("%s left coalition %s.", s.p.cfg.Home, q.Coalition)}, nil
}
