package query

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codb"
	"repro/internal/gateway"
	"repro/internal/mdcache"
	"repro/internal/orb"
	"repro/internal/trace"
	"repro/internal/wtl"
)

// Lead is one discovery result offered to the user for selection, with the
// provenance information WebFINDIT uses to educate the user ("the system
// prompts the user to select the most interesting leads").
type Lead struct {
	Coalition string
	Score     float64
	Via       string // "local", "link:<name>", "peer:<database>"
	CoDBRef   string // co-database able to expand this lead ("" = local)
}

// Response is the outcome of one WebTassili statement. Text always carries
// a human-readable rendering; the typed fields carry the structured payload
// of the statement kind that produced it.
type Response struct {
	Stmt       wtl.Stmt
	Text       string
	Leads      []Lead
	Names      []string
	Sources    []*codb.SourceDescriptor
	Descriptor *codb.SourceDescriptor
	DocURL     string
	DocHTML    string
	Result     *gateway.Result
	Translated string // native query produced by the wrapper
	// RowsMoved counts the rows fetched from data sources to answer the
	// statement, before coordinator-side compensation and merging — the
	// cost pushdown and top-K early termination exist to shrink.
	RowsMoved int

	// Members reports the per-member outcome of every sub-call the statement
	// fanned out (coalition query decomposition, discovery peer probes) —
	// healthy and failed members alike, in member order.
	Members []MemberStatus
	// Partial is true when some fanned-out member failed or was skipped but
	// enough members answered for the statement to return a degraded result.
	Partial bool
}

// MemberStatus is the outcome of one coalition member's (or discovery
// peer's) sub-call within a statement.
type MemberStatus struct {
	Member   string        // member database name
	Ref      string        // reference contacted (ISI or co-database; "" = local)
	Attempts int           // transport attempts, transparent retries included
	Latency  time.Duration // wall-clock time this member's sub-call took
	ErrClass string        // "", "timeout", "comm", "breaker", "system", "user", "skipped", "limit"
	Err      string        // error message ("" on success)
	// Cached is true when the sub-call was answered from the metadata cache
	// (a hit, or coalesced onto another caller's in-flight fetch) without
	// its own probe fan-out.
	Cached bool
	// Stale is true when the member was unreachable (down, circuit-broken)
	// and an expired cache entry was served as the degraded answer.
	Stale bool
}

// OK reports whether the member answered.
func (m MemberStatus) OK() bool { return m.ErrClass == "" }

// classifyErr buckets a member failure for MemberStatus.ErrClass.
func classifyErr(err error) string {
	if err == nil {
		return ""
	}
	var se *orb.SystemException
	if errors.As(err, &se) {
		switch se.Name {
		case orb.ExcTransient:
			return "breaker"
		case orb.ExcCommFailure:
			if strings.Contains(se.Detail, "timed out") || strings.Contains(se.Detail, "context") {
				return "timeout"
			}
			return "comm"
		default:
			return "system"
		}
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return "timeout"
	}
	return "user"
}

// Config wires a query processor to its node.
type Config struct {
	ORB  *orb.ORB
	Home string // home database name (users are users of a member database)
	// HomeDescriptor is advertised by Join Coalition statements.
	HomeDescriptor *codb.SourceDescriptor
	// Local is the client of the node's own co-database servant.
	Local *codb.Client
	// LocalCoDB, when the co-database is in-process, enables maintenance
	// statements (Create Coalition / Create Service Link) that the remote
	// interface intentionally restricts.
	LocalCoDB *codb.CoDatabase
	// Gateway opens DSN connections for sources without an ISI reference.
	Gateway *gateway.Manager
	// FanOut bounds the worker pool used to contact coalition members in
	// parallel (peer discovery, coalition query decomposition, membership
	// maintenance). 0 selects the default width (2×GOMAXPROCS, min 8);
	// 1 forces the serial pre-parallel behaviour.
	FanOut int
	// MinMembers is the quorum for coalition query decomposition: the
	// statement succeeds (possibly partially) when at least this many members
	// answer, and fails otherwise. 0 means 1 — any surviving member yields a
	// partial result.
	MinMembers int
	// MemberTimeout bounds each member's sub-call (and each discovery peer
	// probe) so one slow member cannot hold the whole fan-out. 0 leaves only
	// the caller's context deadline and the ORB's CallTimeout.
	MemberTimeout time.Duration
	// Cache, when set, caches federation metadata (coalition member lists,
	// source descriptors, peer probe results) across statements and
	// sessions. Data queries are never cached. nil disables caching.
	Cache *mdcache.Cache
	// DisablePushdown turns predicate/limit pushdown off: every member runs
	// the bare fragment and the coordinator compensates for all predicates
	// locally. Both modes return identical answers (the differential tests
	// in internal/simtest run the same workload both ways); pushdown only
	// moves where predicates are evaluated and how many rows cross the wire.
	DisablePushdown bool
	// MergeBufRows bounds each member's streaming-merge channel: how many
	// rows a member may run ahead of the coordinator before backpressure.
	// It is also the cursor batch size member sub-queries fetch with, so
	// coordinator buffering for a coalition scan is bounded by
	// members x 2 x MergeBufRows rows regardless of result size.
	// 0 selects the default (64).
	MergeBufRows int
	// DisableStreaming turns the cursor protocol off for member sub-queries:
	// every member materializes its whole fragment result in one round trip,
	// as before the protocol existed. Both modes return identical answers
	// (the differential tests in internal/simtest run the same workload both
	// ways); streaming only changes how many rows are in flight at once.
	DisableStreaming bool
	// DisableSemiJoin turns semi-join key pushdown off: join statements still
	// execute (the coordinator always applies the exact key filter), but no
	// key set is shipped to probe members and no Bloom filter is built. Both
	// modes return identical answers (the differential tests in
	// internal/simtest run the same workload both ways); the pushdown only
	// changes how many probe-side rows cross the wire.
	DisableSemiJoin bool
	// SemiJoinKeyLimit is the largest build-side key set pushed to probe
	// members as a literal IN list; above it the coordinator compresses the
	// set into a Bloom prefilter instead. 0 selects the default (64).
	SemiJoinKeyLimit int
	// SemiJoinBloomBits sizes the Bloom prefilter, in bits per build-side
	// key (~1% false positives at 10; false positives cost only wasted row
	// transfer, never wrong answers). 0 selects the default (10).
	SemiJoinBloomBits int
	// SubCoalitionSize is the coalition membership size above which stage-3
	// discovery routes through sub-coalition representatives instead of
	// probing every member directly: coalitions larger than this shard into
	// windows of at most this many members, and one relay_probe call per
	// shard replaces the per-member fan-out. Coalitions at or below the
	// threshold keep the flat fan-out (the paper's small-coalition model is
	// untouched). 0 selects the default (32); negative disables hierarchical
	// routing entirely. Both modes return identical answers — the
	// differential tests in internal/simtest run the same workload both ways;
	// routing only changes how many RPCs the coordinator itself issues.
	SubCoalitionSize int
	// Alive reports whether a peer node is believed reachable — the gossip
	// layer's failure detector, consulted by representative election so a
	// partitioned representative is skipped instead of timed out against.
	// nil treats every peer as alive.
	Alive func(node string) bool
}

// PlannerStats counts federated-planner and streaming-merge activity.
// Fields are cumulative since the processor was created; read them through
// Processor.PlannerStats.
type PlannerStats struct {
	Plans                int64 // coalition plans executed (cache hits included)
	PlanCacheHits        int64 // plans served from the metadata cache
	FragmentsPushed      int64 // predicate conjuncts shipped inside fragments
	FragmentsCompensated int64 // conjuncts evaluated at the coordinator
	LimitPushed          int64 // fragments that carried the statement LIMIT
	EarlyTerminations    int64 // fan-outs cancelled once the LIMIT was satisfied
	Fallbacks            int64 // bare-fragment retries after a pushdown rejection
	RowsMoved            int64 // rows fetched from members, pre-compensation
	RowsDelivered        int64 // rows returned to callers after merge/limit
	PeakMergeBuffered    int64 // most rows ever held in merge channels at once
	SemiJoins            int64 // coalition statements carrying a SemiJoin clause
	KeysPushed           int64 // build-side keys shipped to probe members in IN lists
	BloomPushed          int64 // semi-joins whose key set compressed to a Bloom filter
	ProbeRowsPruned      int64 // probe rows discarded by the coordinator key filter
	SemiJoinFallbacks    int64 // bare-fragment retries of rejected IN pushes
	RelayShards          int64 // sub-coalition shards routed through a representative
	RelayedProbes        int64 // member probes answered via a representative relay
	RelayFailovers       int64 // relay attempts abandoned for the next candidate
	RelayDirectFallbacks int64 // shards probed directly after every relay candidate failed
}

// plannerCounters is the processor's live (atomic) form of PlannerStats.
type plannerCounters struct {
	plans, planCacheHits                  atomic.Int64
	fragmentsPushed, fragmentsCompensated atomic.Int64
	limitPushed, earlyTerminations        atomic.Int64
	fallbacks, rowsMoved, rowsDelivered   atomic.Int64
	peakMergeBuffered                     atomic.Int64
	semiJoins, keysPushed, bloomPushed    atomic.Int64
	probeRowsPruned, semiJoinFallbacks    atomic.Int64
	relayShards, relayedProbes            atomic.Int64
	relayFailovers, relayDirectFallbacks  atomic.Int64
}

// raisePeak lifts the peak-merge-buffered gauge to v if it is higher than the
// recorded high-water mark.
func (c *plannerCounters) raisePeak(v int64) {
	for {
		p := c.peakMergeBuffered.Load()
		if v <= p || c.peakMergeBuffered.CompareAndSwap(p, v) {
			return
		}
	}
}

// Processor is the query layer of one WebFINDIT node.
type Processor struct {
	cfg Config

	// The fan-out and degradation policy are runtime-tunable (SetFanOut,
	// SetMemberPolicy) while sessions execute concurrently, so they live in
	// atomics rather than in cfg.
	fanOutN    atomic.Int32
	minMembers atomic.Int32
	memberTO   atomic.Int64 // nanoseconds
	// Pushdown, merge buffering and cursor streaming are likewise
	// runtime-tunable (SetPushdown, SetStreaming; differential tests flip
	// modes on live processors).
	pushdownOff atomic.Bool
	streamOff   atomic.Bool
	mergeBuf    atomic.Int32
	// Semi-join pushdown mode and thresholds (SetSemiJoin; the differential
	// tests flip the mode on live processors like the other axes).
	semijoinOff atomic.Bool
	sjKeyLimit  atomic.Int32
	sjBloomBits atomic.Int32
	// Hierarchical-routing threshold (SetSubCoalitionSize; the differential
	// tests flip it on live processors like the other axes). Stored with the
	// Config encoding: 0 = default, negative = disabled.
	subcoalN atomic.Int32

	stats plannerCounters

	// Memoized co-database clients keyed by stringified IOR, so the hot
	// discovery paths do not re-parse IORs and re-build clients on every
	// statement. Clients are stateless handles; sharing them is safe.
	clientMu sync.Mutex
	clients  map[string]*codb.Client

	// Memoized cache-key prefixes (srcKey) per canonical client: rendering
	// an IOR address hex-encodes the object key, which profiling shows is
	// the top allocator on a fully cached discovery, so it is paid once per
	// client instead of once per lookup.
	srcKeys sync.Map // *codb.Client -> string
}

// New creates a processor; ORB, Home and Local are required.
func New(cfg Config) (*Processor, error) {
	if cfg.ORB == nil || cfg.Local == nil || cfg.Home == "" {
		return nil, fmt.Errorf("query: Config needs ORB, Local and Home")
	}
	p := &Processor{cfg: cfg, clients: make(map[string]*codb.Client)}
	p.fanOutN.Store(int32(cfg.FanOut))
	p.minMembers.Store(int32(cfg.MinMembers))
	p.memberTO.Store(int64(cfg.MemberTimeout))
	p.pushdownOff.Store(cfg.DisablePushdown)
	p.streamOff.Store(cfg.DisableStreaming)
	p.mergeBuf.Store(int32(cfg.MergeBufRows))
	p.semijoinOff.Store(cfg.DisableSemiJoin)
	p.sjKeyLimit.Store(int32(cfg.SemiJoinKeyLimit))
	p.sjBloomBits.Store(int32(cfg.SemiJoinBloomBits))
	p.subcoalN.Store(int32(cfg.SubCoalitionSize))
	return p, nil
}

// SetSubCoalitionSize adjusts the hierarchical-routing threshold at runtime
// (see Config.SubCoalitionSize). Safe to call concurrently with running
// sessions; in-flight statements keep the mode they started under.
func (p *Processor) SetSubCoalitionSize(n int) { p.subcoalN.Store(int32(n)) }

// subCoalitionSize returns the effective shard size: 0 when hierarchical
// routing is disabled.
func (p *Processor) subCoalitionSize() int {
	n := p.subcoalN.Load()
	if n < 0 {
		return 0
	}
	if n == 0 {
		return 32
	}
	return int(n)
}

// alive consults the gossip failure detector; without one every peer is
// presumed reachable.
func (p *Processor) alive(node string) bool {
	if p.cfg.Alive == nil {
		return true
	}
	return p.cfg.Alive(node)
}

// SetStreaming flips the member-side cursor protocol at runtime (see
// Config.DisableStreaming). Safe to call concurrently with running sessions;
// in-flight statements keep the mode they started under.
func (p *Processor) SetStreaming(on bool) { p.streamOff.Store(!on) }

// streamingOn reports the current member-transport mode.
func (p *Processor) streamingOn() bool { return !p.streamOff.Load() }

// SetPushdown flips predicate/limit pushdown at runtime (see
// Config.DisablePushdown). Safe to call concurrently with running sessions;
// in-flight statements keep the mode they planned under.
func (p *Processor) SetPushdown(on bool) { p.pushdownOff.Store(!on) }

// SetSemiJoin flips semi-join key pushdown at runtime (see
// Config.DisableSemiJoin). Safe to call concurrently with running sessions;
// in-flight statements keep the mode they started under.
func (p *Processor) SetSemiJoin(on bool) { p.semijoinOff.Store(!on) }

// semiJoinOn reports the current semi-join pushdown mode.
func (p *Processor) semiJoinOn() bool { return !p.semijoinOff.Load() }

// semiJoinKeyLimit returns the exact-push/Bloom crossover key count.
func (p *Processor) semiJoinKeyLimit() int {
	if n := p.sjKeyLimit.Load(); n > 0 {
		return int(n)
	}
	return 64
}

// semiJoinBloomBits returns the Bloom prefilter size in bits per key.
func (p *Processor) semiJoinBloomBits() int {
	if n := p.sjBloomBits.Load(); n > 0 {
		return int(n)
	}
	return 10
}

// PlannerStats snapshots the planner and streaming-merge counters.
func (p *Processor) PlannerStats() PlannerStats {
	return PlannerStats{
		Plans:                p.stats.plans.Load(),
		PlanCacheHits:        p.stats.planCacheHits.Load(),
		FragmentsPushed:      p.stats.fragmentsPushed.Load(),
		FragmentsCompensated: p.stats.fragmentsCompensated.Load(),
		LimitPushed:          p.stats.limitPushed.Load(),
		EarlyTerminations:    p.stats.earlyTerminations.Load(),
		Fallbacks:            p.stats.fallbacks.Load(),
		RowsMoved:            p.stats.rowsMoved.Load(),
		RowsDelivered:        p.stats.rowsDelivered.Load(),
		PeakMergeBuffered:    p.stats.peakMergeBuffered.Load(),
		SemiJoins:            p.stats.semiJoins.Load(),
		KeysPushed:           p.stats.keysPushed.Load(),
		BloomPushed:          p.stats.bloomPushed.Load(),
		ProbeRowsPruned:      p.stats.probeRowsPruned.Load(),
		SemiJoinFallbacks:    p.stats.semiJoinFallbacks.Load(),
		RelayShards:          p.stats.relayShards.Load(),
		RelayedProbes:        p.stats.relayedProbes.Load(),
		RelayFailovers:       p.stats.relayFailovers.Load(),
		RelayDirectFallbacks: p.stats.relayDirectFallbacks.Load(),
	}
}

// pushdownOn reports the current pushdown mode.
func (p *Processor) pushdownOn() bool { return !p.pushdownOff.Load() }

// mergeBufRows returns the per-member streaming-merge channel capacity.
func (p *Processor) mergeBufRows() int {
	if n := p.mergeBuf.Load(); n > 0 {
		return int(n)
	}
	return 64
}

// SetFanOut adjusts the member fan-out width (see Config.FanOut). It is safe
// to call concurrently with running sessions; in-flight statements may use
// either width. Benchmarks use it to compare serial and parallel
// decomposition.
func (p *Processor) SetFanOut(n int) { p.fanOutN.Store(int32(n)) }

// SetMemberPolicy adjusts the degradation policy (see Config.MinMembers and
// Config.MemberTimeout). It is safe to call concurrently with running
// sessions; in-flight statements may observe either policy.
func (p *Processor) SetMemberPolicy(minMembers int, memberTimeout time.Duration) {
	p.minMembers.Store(int32(minMembers))
	p.memberTO.Store(int64(memberTimeout))
}

func (p *Processor) fanOutWidth() int             { return int(p.fanOutN.Load()) }
func (p *Processor) minMembersQuorum() int        { return int(p.minMembers.Load()) }
func (p *Processor) memberTimeout() time.Duration { return time.Duration(p.memberTO.Load()) }

// Session is one user's interactive context: the coalition they are
// connected to and the source they last selected. Sessions are not safe for
// concurrent use by multiple callers, but statements internally fan out to
// coalition members in parallel, so the trace buffer is mutex-protected.
type Session struct {
	p *Processor

	// Coalition is the currently connected coalition ("" before Connect).
	Coalition string
	// Source is the currently selected information source.
	Source string

	codbClient *codb.Client // co-database answering for the current coalition
	traceMu    sync.Mutex
	trace      []TraceEvent
	stmtStart  time.Time // start of the running statement (guards under traceMu)
}

// NewSession opens a session rooted at the node's local co-database.
func (p *Processor) NewSession() *Session {
	return &Session{p: p, codbClient: p.cfg.Local}
}

// TraceEvent is one entry of a session's layer trace: which layer spoke,
// what it did, and how far into the statement it happened.
type TraceEvent struct {
	Layer   string // "query", "communication", "meta-data", "data"
	Msg     string
	Elapsed time.Duration // time since the statement started
}

// String renders the event in the classic "<layer> layer: <msg>" form the
// browser UI and the shell print.
func (e TraceEvent) String() string { return e.Layer + " layer: " + e.Msg }

// Trace returns the accumulated layer trace (query, communication,
// meta-data, data) and clears it.
func (s *Session) Trace() []TraceEvent {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	t := s.trace
	s.trace = nil
	return t
}

func (s *Session) tracef(layer, format string, args ...any) {
	s.traceMsg(layer, fmt.Sprintf(format, args...))
}

// traceMsg appends a preformatted trace line. Hot paths that repeat fixed
// messages (cache-served discovery stages) use it to skip fmt formatting.
func (s *Session) traceMsg(layer, msg string) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	var elapsed time.Duration
	if !s.stmtStart.IsZero() {
		elapsed = time.Since(s.stmtStart)
	}
	if s.trace == nil {
		// Trace() hands the buffer to the caller, so every statement starts
		// from nil; size the fresh buffer for a typical statement instead of
		// growing it append by append.
		s.trace = make([]TraceEvent, 0, 16)
	}
	s.trace = append(s.trace, TraceEvent{Layer: layer, Msg: msg, Elapsed: elapsed})
}

// markStmtStart anchors TraceEvent.Elapsed for the statement about to run.
func (s *Session) markStmtStart() {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	s.stmtStart = time.Now()
}

// current returns the co-database client serving the session's context.
func (s *Session) current() *codb.Client {
	if s.codbClient != nil {
		return s.codbClient
	}
	return s.p.cfg.Local
}

// Execute parses and runs one WebTassili statement. Every ORB invocation the
// statement triggers — metadata lookups, peer probes, coalition fan-out,
// gateway/ISI calls — joins the caller's trace, and the context's deadline
// and cancellation bound the statement.
func (s *Session) Execute(ctx context.Context, src string) (*Response, error) {
	s.markStmtStart()
	stmt, err := wtl.Parse(src)
	if err != nil {
		return nil, err
	}
	s.tracef("query", "parsed %T", stmt)
	return s.execTimed(ctx, stmt)
}

// ExecuteStmt runs one parsed statement under a caller context. The whole
// statement runs inside a "query:<StmtType>" span; every stage below parents
// onto it.
func (s *Session) ExecuteStmt(ctx context.Context, stmt wtl.Stmt) (*Response, error) {
	s.markStmtStart()
	return s.execTimed(ctx, stmt)
}

func (s *Session) execTimed(ctx context.Context, stmt wtl.Stmt) (*Response, error) {
	ctx, sp := trace.StartSpan(ctx, stmtSpanName(stmt))
	resp, err := s.execStmt(ctx, stmt)
	sp.End(err)
	return resp, err
}

// stmtSpanName maps a statement to its span name without reflection or
// formatting (execTimed runs per statement, so this is on the hot path).
func stmtSpanName(stmt wtl.Stmt) string {
	switch stmt.(type) {
	case *wtl.FindCoalitions:
		return "query:FindCoalitions"
	case *wtl.Connect:
		return "query:Connect"
	case *wtl.DisplayCoalitions:
		return "query:DisplayCoalitions"
	case *wtl.DisplayLinks:
		return "query:DisplayLinks"
	case *wtl.DisplaySubClasses:
		return "query:DisplaySubClasses"
	case *wtl.DisplayInstances:
		return "query:DisplayInstances"
	case *wtl.DisplayDocument:
		return "query:DisplayDocument"
	case *wtl.DisplayAccessInfo:
		return "query:DisplayAccessInfo"
	case *wtl.DisplayInterface:
		return "query:DisplayInterface"
	case *wtl.SearchType:
		return "query:SearchType"
	case *wtl.FuncQuery:
		return "query:FuncQuery"
	case *wtl.NativeQuery:
		return "query:NativeQuery"
	case *wtl.CreateCoalition:
		return "query:CreateCoalition"
	case *wtl.CreateLink:
		return "query:CreateLink"
	case *wtl.JoinCoalition:
		return "query:JoinCoalition"
	case *wtl.LeaveCoalition:
		return "query:LeaveCoalition"
	}
	return "query:" + strings.TrimPrefix(fmt.Sprintf("%T", stmt), "*wtl.")
}

func (s *Session) execStmt(ctx context.Context, stmt wtl.Stmt) (*Response, error) {
	switch q := stmt.(type) {
	case *wtl.FindCoalitions:
		return s.execFind(ctx, q)
	case *wtl.Connect:
		return s.execConnect(ctx, q)
	case *wtl.DisplayCoalitions:
		return s.execCoalitions(ctx, q)
	case *wtl.DisplayLinks:
		return s.execLinks(ctx, q)
	case *wtl.DisplaySubClasses:
		return s.execSubClasses(ctx, q)
	case *wtl.DisplayInstances:
		return s.execInstances(ctx, q)
	case *wtl.DisplayDocument:
		return s.execDocument(ctx, q)
	case *wtl.DisplayAccessInfo:
		return s.execAccessInfo(ctx, q)
	case *wtl.DisplayInterface:
		return s.execInterface(ctx, q)
	case *wtl.SearchType:
		return s.execSearchType(ctx, q)
	case *wtl.FuncQuery:
		return s.execFuncQuery(ctx, q)
	case *wtl.NativeQuery:
		return s.execNativeQuery(ctx, q)
	case *wtl.CreateCoalition:
		return s.execCreateCoalition(q)
	case *wtl.CreateLink:
		return s.execCreateLink(q)
	case *wtl.JoinCoalition:
		return s.execJoin(ctx, q)
	case *wtl.LeaveCoalition:
		return s.execLeave(ctx, q)
	}
	return nil, fmt.Errorf("query: unsupported statement %T", stmt)
}

// ---- Discovery (the paper's resolution algorithm) ----

// execFind implements the three-stage resolution of §2: local coalitions
// first, then local service links, then the coalitions/links known to the
// other members of the local coalitions.
func (s *Session) execFind(ctx context.Context, q *wtl.FindCoalitions) (*Response, error) {
	leads, probes, err := s.p.resolveTopic(ctx, s, q.Topic)
	if err != nil {
		return nil, err
	}
	resp := &Response{Stmt: q, Leads: leads, Members: probes}
	for _, m := range probes {
		// A stale-served probe answered, but from an expired cache entry:
		// the result is usable yet degraded, so it is flagged partial too.
		if !m.OK() || m.Stale {
			resp.Partial = true
		}
	}
	if len(leads) == 0 {
		resp.Text = fmt.Sprintf("No coalitions found for information %q.", q.Topic)
		return resp, nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Coalitions offering information %q:\n", q.Topic)
	for _, l := range leads {
		fmt.Fprintf(&b, "  - %s (score %.2f, via %s)\n", l.Coalition, l.Score, l.Via)
	}
	resp.Text = strings.TrimRight(b.String(), "\n")
	return resp, nil
}

// fullScore reports whether any lead matches every query token — the
// condition under which a resolution stage "answers the query" and no
// further escalation is needed.
func fullScore(leads []Lead) bool {
	for _, l := range leads {
		if l.Score >= 1.0 {
			return true
		}
	}
	return false
}

// resolveTopic runs the resolution algorithm and returns leads plus the
// per-peer outcome of the stage-3 probes. Stages escalate (local coalitions,
// then local service links, then coalition peers) until some stage produces
// a full match; weaker partial matches from earlier stages are kept as
// additional leads for the user to inspect. Each stage runs in its own span,
// and stage 3's fan-out opens a span per peer probed, so the trace shows
// where discovery time goes. An unreachable or slow peer does not fail the
// statement: its status records the error class and discovery degrades to
// the peers that answered.
func (p *Processor) resolveTopic(ctx context.Context, s *Session, topic string) ([]Lead, []MemberStatus, error) {
	local := p.cfg.Local
	var leads []Lead

	// Stage 1: coalitions in the local co-database. The communication line is
	// written after the lookup so it reflects what actually happened: a
	// cache-served stage performs no invocation, and its fixed trace line
	// skips fmt formatting on the repeat-discovery hot path.
	st1Ctx, st1 := trace.StartSpan(ctx, "query.stage:local-coalitions")
	matches, out1, err := p.cachedFindCoalitions(st1Ctx, local, topic)
	st1.SetAttr("cache", out1.String())
	st1.End(err)
	if err != nil {
		return nil, nil, fmt.Errorf("query: local co-database: %w", err)
	}
	if out1.Served() {
		s.traceMsg("communication", "find_coalitions answered by the metadata cache (local co-database)")
	} else {
		s.tracef("communication", "invoke find_coalitions(%q) on local co-database", topic)
	}
	s.traceMsg("meta-data", "local co-database scored "+strconv.Itoa(len(matches))+" coalition(s)")
	leads = append(leads, leadsFrom(matches, "")...)
	if fullScore(leads) {
		return sortLeads(leads), nil, nil
	}

	// Stage 2: service links known locally.
	st2Ctx, st2 := trace.StartSpan(ctx, "query.stage:local-links")
	links, out2, err := p.cachedFindLinks(st2Ctx, local, topic)
	st2.SetAttr("cache", out2.String())
	st2.End(err)
	if err != nil {
		return nil, nil, fmt.Errorf("query: local co-database links: %w", err)
	}
	if out2.Served() {
		s.traceMsg("communication", "find_links answered by the metadata cache (local co-database)")
	} else {
		s.tracef("communication", "invoke find_links(%q) on local co-database", topic)
	}
	s.traceMsg("meta-data", "local co-database scored "+strconv.Itoa(len(links))+" service link(s)")
	leads = append(leads, leadsFrom(links, "")...)
	if fullScore(leads) {
		return sortLeads(leads), nil, nil
	}

	// Stage 3: ask the other members of the local coalitions whether they
	// know a coalition or a service link for this topic. The member list is
	// assembled serially from local metadata (deterministic order,
	// deduplicated by co-database reference); the peers themselves are then
	// probed in parallel, so stage latency tracks the slowest peer instead
	// of the sum of all peers. Results are merged back in member order,
	// keeping lead ordering identical to the serial algorithm.
	st3Ctx, st3 := trace.StartSpan(ctx, "query.stage:coalition-peers")
	defer st3.End(nil)
	groups, _, err := p.cachedPeerGroups(st3Ctx, local)
	if err != nil {
		return nil, nil, err
	}
	// Flatten the groups into the flat target list (the order both routing
	// modes share), remembering which group each target entered through so
	// hierarchical routing can shard per coalition.
	var targets []peerTarget
	var groupOf []int
	for gi, g := range groups {
		for _, tgt := range g.Members {
			targets = append(targets, tgt)
			groupOf = append(groupOf, gi)
		}
	}
	probes := make([]peerProbe, len(targets))
	for i, tgt := range targets {
		probes[i] = peerProbe{name: tgt.Name, ref: tgt.Ref, peer: tgt.Peer}
	}
	statuses := make([]MemberStatus, len(probes))
	// Fast path: fresh cached probes are answered inline, skipping the
	// per-peer goroutine, span and call-stats scaffolding entirely; only the
	// peers without a fresh entry join the fan-out below.
	var pending []int
	for i := range probes {
		pr := &probes[i]
		if res, ok := p.peekProbe(pr.peer, topic); ok {
			pr.coals, pr.links = res.Coals, res.Links
			statuses[i] = MemberStatus{Member: pr.name, Ref: pr.ref, Cached: true}
			continue
		}
		statuses[i] = MemberStatus{Member: pr.name, Ref: pr.ref,
			ErrClass: "skipped", Err: "not dispatched"}
		s.tracef("communication", "invoke find_coalitions(%q) on peer co-database of %s", topic, pr.name)
		s.tracef("communication", "invoke find_links(%q) on peer co-database of %s", topic, pr.name)
		pending = append(pending, i)
	}
	if cachedN := len(probes) - len(pending); cachedN > 0 {
		s.traceMsg("communication", "peer probes answered by the metadata cache: "+
			strconv.Itoa(cachedN)+" of "+strconv.Itoa(len(probes)))
	}
	// Hierarchical routing: shards of large coalitions are probed through an
	// elected representative; whatever it cannot cover (small coalitions,
	// shards whose every relay candidate failed) stays in pending and takes
	// the flat fan-out below.
	if size := p.subCoalitionSize(); size > 0 && len(pending) > 0 {
		pending = p.relayRoute(st3Ctx, s, topic, size, groupOf, probes, statuses, pending)
	}
	fanOutCtx(st3Ctx, len(pending), p.fanOutWidth(), func(j int) {
		pr := &probes[pending[j]]
		st := &statuses[pending[j]]
		probeCtx, psp := trace.StartSpan(st3Ctx, "query.probe:"+pr.name)
		if mt := p.memberTimeout(); mt > 0 {
			var cancel context.CancelFunc
			probeCtx, cancel = context.WithTimeout(probeCtx, mt)
			defer cancel()
		}
		probeCtx, cs := orb.WithCallStats(probeCtx)
		start := time.Now()
		res, out, perr := p.cachedProbe(probeCtx, pr.peer, topic)
		st.Latency = time.Since(start)
		st.Attempts = int(cs.Attempts.Load())
		st.Cached = out.Served() || out == mdcache.Coalesced
		st.Stale = out == mdcache.Stale
		psp.SetAttr("cache", out.String())
		if perr != nil {
			st.ErrClass = classifyErr(perr)
			st.Err = perr.Error()
			s.tracef("communication", "peer co-database of %s failed (%s): %v", pr.name, st.ErrClass, perr)
		} else {
			pr.coals, pr.links = res.Coals, res.Links
			st.ErrClass, st.Err = "", ""
			if st.Stale {
				s.tracef("communication", "peer co-database of %s unavailable; serving stale cached probe", pr.name)
			}
		}
		psp.End(perr)
	})
	out := leads
	seen := map[string]bool{}
	for _, l := range out {
		seen["c:"+strings.ToLower(l.Coalition)] = true
	}
	for i := range probes {
		pr := &probes[i]
		for _, match := range pr.coals {
			key := "c:" + strings.ToLower(match.Coalition)
			if !seen[key] {
				seen[key] = true
				out = append(out, Lead{Coalition: match.Coalition, Score: match.Score,
					Via: "peer:" + pr.name, CoDBRef: pr.ref})
			}
		}
		for _, match := range pr.links {
			key := "l:" + strings.ToLower(match.Coalition)
			if !seen[key] {
				seen[key] = true
				ref := match.CoDBRef
				if ref == "" {
					ref = pr.ref
				}
				out = append(out, Lead{Coalition: match.Coalition, Score: match.Score,
					Via: "peer:" + pr.name + "/" + match.Via, CoDBRef: ref})
			}
		}
	}
	s.tracef("meta-data", "coalition peers contributed %d lead(s)", len(out)-len(leads))
	return sortLeads(out), statuses, nil
}

// sortLeads orders leads by descending score, then name, for stable output.
func sortLeads(leads []Lead) []Lead {
	sort.SliceStable(leads, func(i, j int) bool {
		if leads[i].Score != leads[j].Score {
			return leads[i].Score > leads[j].Score
		}
		return leads[i].Coalition < leads[j].Coalition
	})
	return leads
}

func leadsFrom(matches []codb.Match, defaultRef string) []Lead {
	out := make([]Lead, len(matches))
	for i, m := range matches {
		ref := m.CoDBRef
		if ref == "" {
			ref = defaultRef
		}
		out[i] = Lead{Coalition: m.Coalition, Score: m.Score, Via: m.Via, CoDBRef: ref}
	}
	return out
}

// codbByRef opens a co-database client from a stringified IOR, memoizing the
// parsed client so repeated discovery over the same peers costs a map lookup
// instead of an IOR parse per statement.
func (p *Processor) codbByRef(ref string) (*codb.Client, error) {
	p.clientMu.Lock()
	if c, ok := p.clients[ref]; ok {
		p.clientMu.Unlock()
		return c, nil
	}
	p.clientMu.Unlock()
	objRef, err := p.cfg.ORB.ResolveString(ref)
	if err != nil {
		return nil, err
	}
	c := codb.NewClient(objRef)
	p.clientMu.Lock()
	if prev, ok := p.clients[ref]; ok {
		c = prev // another goroutine won the race; keep one canonical client
	} else {
		p.clients[ref] = c
	}
	p.clientMu.Unlock()
	return c, nil
}

// ---- Connection and browsing ----

// execConnect provides a point of entry for a coalition: the session's
// subsequent Display queries run against the co-database that knows it.
func (s *Session) execConnect(ctx context.Context, q *wtl.Connect) (*Response, error) {
	client, err := s.p.coalitionEntry(ctx, s, q.Coalition)
	if err != nil {
		return nil, err
	}
	s.Coalition = q.Coalition
	s.codbClient = client
	return &Response{Stmt: q, Text: fmt.Sprintf("Connected to coalition %s.", q.Coalition)}, nil
}

// coalitionEntry finds a co-database that knows the coalition: locally,
// through a service link, or through a coalition peer.
func (p *Processor) coalitionEntry(ctx context.Context, s *Session, coalition string) (*codb.Client, error) {
	local := p.cfg.Local
	if p.hasCoalition(ctx, local, coalition) {
		s.tracef("meta-data", "coalition %s found in local co-database", coalition)
		return local, nil
	}
	// A service link naming the coalition as target may carry a reference.
	links, _, err := p.cachedLinks(ctx, local)
	if err == nil {
		for _, l := range links {
			if strings.EqualFold(l.To, coalition) && l.CoDBRef != "" {
				if peer, err := p.codbByRef(l.CoDBRef); err == nil && p.hasCoalition(ctx, peer, coalition) {
					s.tracef("communication", "entering coalition %s through service link %s", coalition, l.Name)
					return peer, nil
				}
			}
		}
	}
	// Ask coalition peers.
	memberOf, _, _ := p.cachedMemberOf(ctx, local)
	for _, c := range memberOf {
		members, _, err := p.cachedInstances(ctx, local, c)
		if err != nil {
			continue
		}
		for _, m := range members {
			if strings.EqualFold(m.Name, p.cfg.Home) || m.CoDBRef == "" {
				continue
			}
			peer, err := p.codbByRef(m.CoDBRef)
			if err != nil {
				continue
			}
			if p.hasCoalition(ctx, peer, coalition) {
				s.tracef("communication", "entering coalition %s through peer %s", coalition, m.Name)
				return peer, nil
			}
			// One more hop: the peer's links may carry the reference.
			plinks, _, err := p.cachedLinks(ctx, peer)
			if err != nil {
				continue
			}
			for _, l := range plinks {
				if strings.EqualFold(l.To, coalition) && l.CoDBRef != "" {
					if far, err := p.codbByRef(l.CoDBRef); err == nil && p.hasCoalition(ctx, far, coalition) {
						s.tracef("communication", "entering coalition %s through peer %s link %s",
							coalition, m.Name, l.Name)
						return far, nil
					}
				}
			}
		}
	}
	return nil, fmt.Errorf("query: no entry point found for coalition %s", coalition)
}

func (p *Processor) hasCoalition(ctx context.Context, c *codb.Client, coalition string) bool {
	names, _, err := p.cachedCoalitions(ctx, c)
	if err != nil {
		return false
	}
	for _, n := range names {
		if strings.EqualFold(n, coalition) {
			return true
		}
	}
	return false
}

// execCoalitions lists the coalitions of the session's current co-database.
func (s *Session) execCoalitions(ctx context.Context, q *wtl.DisplayCoalitions) (*Response, error) {
	s.tracef("communication", "invoke coalitions()")
	names, err := s.current().Coalitions(ctx)
	if err != nil {
		return nil, err
	}
	text := "No coalitions known here."
	if len(names) > 0 {
		text = "Known coalitions: " + strings.Join(names, ", ")
	}
	return &Response{Stmt: q, Names: names, Text: text}, nil
}

// execLinks lists the service links of the session's current co-database.
func (s *Session) execLinks(ctx context.Context, q *wtl.DisplayLinks) (*Response, error) {
	s.tracef("communication", "invoke links()")
	links, err := s.current().Links(ctx)
	if err != nil {
		return nil, err
	}
	if len(links) == 0 {
		return &Response{Stmt: q, Text: "No service links known here."}, nil
	}
	var b strings.Builder
	b.WriteString("Known service links:")
	var names []string
	for _, l := range links {
		names = append(names, l.Name)
		fmt.Fprintf(&b, "\n  %s: %s %q -> %s %q (%s)",
			l.Name, l.FromKind, l.From, l.ToKind, l.To, l.InfoType)
	}
	return &Response{Stmt: q, Names: names, Text: b.String()}, nil
}

func (s *Session) execSubClasses(ctx context.Context, q *wtl.DisplaySubClasses) (*Response, error) {
	s.tracef("communication", "invoke subclasses(%q)", q.Class)
	subs, err := s.current().SubCoalitions(ctx, q.Class, true)
	if err != nil {
		return nil, err
	}
	text := fmt.Sprintf("Class %s has no subclasses.", q.Class)
	if len(subs) > 0 {
		text = fmt.Sprintf("SubClasses of %s: %s", q.Class, strings.Join(subs, ", "))
	}
	return &Response{Stmt: q, Names: subs, Text: text}, nil
}

func (s *Session) execInstances(ctx context.Context, q *wtl.DisplayInstances) (*Response, error) {
	s.tracef("communication", "invoke instances(%q)", q.Class)
	members, err := s.current().Instances(ctx, q.Class)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(members))
	for i, m := range members {
		names[i] = m.Name
	}
	text := fmt.Sprintf("Class %s has no instances.", q.Class)
	if len(names) > 0 {
		text = fmt.Sprintf("Instances of %s:\n  %s", q.Class, strings.Join(names, "\n  "))
	}
	return &Response{Stmt: q, Sources: members, Names: names, Text: text}, nil
}

func (s *Session) execDocument(ctx context.Context, q *wtl.DisplayDocument) (*Response, error) {
	s.tracef("communication", "invoke document(%q)", q.Instance)
	url, html, err := s.current().Document(ctx, q.Instance)
	if err != nil {
		return nil, err
	}
	s.Source = q.Instance
	text := fmt.Sprintf("Documentation of %s: %s", q.Instance, url)
	return &Response{Stmt: q, DocURL: url, DocHTML: html, Text: text}, nil
}

func (s *Session) execAccessInfo(ctx context.Context, q *wtl.DisplayAccessInfo) (*Response, error) {
	s.tracef("communication", "invoke access_info(%q)", q.Instance)
	d, err := s.current().AccessInfo(ctx, q.Instance)
	if err != nil {
		return nil, err
	}
	s.Source = d.Name
	var b strings.Builder
	fmt.Fprintf(&b, "The database %s is located at %q and exports the following type(s):\n",
		d.Name, d.Location)
	for _, t := range d.Interface {
		b.WriteString(t.Declaration())
		b.WriteByte('\n')
	}
	return &Response{Stmt: q, Descriptor: d, Text: strings.TrimRight(b.String(), "\n")}, nil
}

func (s *Session) execInterface(ctx context.Context, q *wtl.DisplayInterface) (*Response, error) {
	s.tracef("communication", "invoke access_info(%q)", q.Instance)
	d, err := s.current().AccessInfo(ctx, q.Instance)
	if err != nil {
		return nil, err
	}
	s.Source = d.Name
	return &Response{
		Stmt:    q,
		Names:   d.InterfaceNames(),
		Text:    fmt.Sprintf("Interface of %s: %s", d.Name, strings.Join(d.InterfaceNames(), ", ")),
		Sources: []*codb.SourceDescriptor{d},
	}, nil
}

// matchesStructure checks that an exported type declares every attribute a
// structural search requires (by qualified or bare name; type must match
// when both sides give one).
func matchesStructure(et *codb.ExportedType, wants []wtl.Member) bool {
	for _, w := range wants {
		found := false
		for _, a := range et.Attributes {
			if !attrNameMatches(a.Name, w.Name) {
				continue
			}
			if w.Type != "" && a.Type != "" && !strings.EqualFold(a.Type, w.Type) {
				continue
			}
			found = true
			break
		}
		if !found {
			return false
		}
	}
	return true
}

// attrNameMatches compares attribute names, letting a bare name match the
// column part of a qualified one.
func attrNameMatches(have, want string) bool {
	if strings.EqualFold(have, want) {
		return true
	}
	hBase := have
	if _, c, ok := strings.Cut(have, "."); ok {
		hBase = c
	}
	wBase := want
	if _, c, ok := strings.Cut(want, "."); ok {
		wBase = c
	}
	return strings.EqualFold(hBase, wBase)
}

func (s *Session) execSearchType(ctx context.Context, q *wtl.SearchType) (*Response, error) {
	client := s.current()
	coalitions, err := client.Coalitions(ctx)
	if err != nil {
		return nil, err
	}
	var hits []*codb.SourceDescriptor
	seen := map[string]bool{}
	for _, c := range coalitions {
		members, err := client.Instances(ctx, c)
		if err != nil {
			continue
		}
		for _, m := range members {
			if seen[strings.ToLower(m.Name)] {
				continue
			}
			et, ok := m.Type(q.TypeName)
			if !ok {
				continue
			}
			if len(q.Structure) > 0 && !matchesStructure(et, q.Structure) {
				continue
			}
			seen[strings.ToLower(m.Name)] = true
			hits = append(hits, m)
		}
	}
	names := make([]string, len(hits))
	for i, h := range hits {
		names[i] = h.Name
	}
	text := fmt.Sprintf("No sources export type %s.", q.TypeName)
	if len(hits) > 0 {
		text = fmt.Sprintf("Sources exporting type %s: %s", q.TypeName, strings.Join(names, ", "))
	}
	return &Response{Stmt: q, Sources: hits, Names: names, Text: text}, nil
}

// ---- Data access ----

// lookupSource finds a descriptor in the current context, falling back to
// the local co-database.
func (s *Session) lookupSource(ctx context.Context, name string) (*codb.SourceDescriptor, error) {
	if name == "" {
		name = s.Source
	}
	if name == "" {
		return nil, fmt.Errorf("query: no source selected; name one with On or Display Access Information first")
	}
	if d, _, err := s.p.cachedAccessInfo(ctx, s.current(), name); err == nil {
		return d, nil
	}
	d, _, err := s.p.cachedAccessInfo(ctx, s.p.cfg.Local, name)
	if err != nil {
		return nil, fmt.Errorf("query: source %s not found in current context: %w", name, err)
	}
	return d, nil
}

// openSource opens a gateway connection to the descriptor's database:
// through its ISI servant when it advertises one, else through a DSN.
func (p *Processor) openSource(s *Session, d *codb.SourceDescriptor) (gateway.Conn, error) {
	if d.ISIRef != "" {
		ref, err := p.cfg.ORB.ResolveString(d.ISIRef)
		if err != nil {
			return nil, fmt.Errorf("query: source %s advertises a bad ISI reference: %w", d.Name, err)
		}
		s.tracef("communication", "connecting to ISI of %s at %s", d.Name, ref.IOR().Addr())
		return gateway.NewRemoteConn(ref), nil
	}
	if d.DSN != "" && p.cfg.Gateway != nil {
		s.tracef("communication", "opening gateway DSN %s", d.DSN)
		return p.cfg.Gateway.Open(d.DSN)
	}
	return nil, fmt.Errorf("query: source %s advertises no access path", d.Name)
}

func (s *Session) execFuncQuery(ctx context.Context, q *wtl.FuncQuery) (*Response, error) {
	if q.OnCoalition {
		return s.execCoalitionFuncQuery(ctx, q)
	}
	if q.Join != nil {
		// The parser enforces this; the guard covers programmatic statements.
		return nil, fmt.Errorf("query: SemiJoin requires the outer query to target a coalition")
	}
	d, err := s.lookupSource(ctx, q.Source)
	if err != nil {
		return nil, err
	}
	fn := exportedFunction(d, q.Function)
	if fn == nil {
		return nil, fmt.Errorf("query: source %s exports no function %s", d.Name, q.Function)
	}
	mp, err := buildMemberPlan(d, fn, q, s.p.pushdownOn())
	if err != nil {
		return nil, err
	}
	ex := &mp.Exec
	s.tracef("query", "wrapper %s translated %s to: %s", WrapperFor(d).Name(), q.Function, ex.Native)
	conn, err := s.p.openSource(s, d)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	s.tracef("data", "executing on %s (%s): %s", d.Name, d.Engine, ex.Native)
	s.p.stats.plans.Add(1)
	s.p.stats.fragmentsPushed.Add(int64(ex.Pushed))
	s.p.stats.fragmentsCompensated.Add(int64(len(ex.Residual)))
	if ex.LimitPushed {
		s.p.stats.limitPushed.Add(1)
	}
	res, err := conn.Query(ctx, ex.Native)
	if err != nil && (ex.Pushed > 0 || ex.LimitPushed) && isCapabilityRejection(err) {
		s.tracef("data", "source %s rejected pushed fragment (%v); retrying with full compensation", d.Name, err)
		s.p.stats.fallbacks.Add(1)
		ex = &mp.Bare
		res, err = conn.Query(ctx, ex.Native)
	}
	if err != nil {
		return nil, fmt.Errorf("query: %s: %w", d.Name, err)
	}
	s.p.stats.rowsMoved.Add(int64(len(res.Rows)))
	rowsMoved := len(res.Rows)
	res = compensateSingle(res, ex, fn, q.Limit)
	s.p.stats.rowsDelivered.Add(int64(len(res.Rows)))
	s.Source = d.Name
	return &Response{Stmt: q, Result: res, Translated: ex.Native, Descriptor: d,
		RowsMoved: rowsMoved, Text: res.Format()}, nil
}

// compensateSingle applies a fragment's residual conjuncts, narrows the
// projection back to the result column, and enforces a LIMIT the engine did
// not, for the single-source execution path. When the fragment was fully
// pushed the engine result passes through untouched.
func compensateSingle(res *gateway.Result, ex *fragmentExec, fn *codb.ExportedFunction, limit int) *gateway.Result {
	if len(ex.Residual) == 0 && ex.NCols <= 1 && (limit <= 0 || ex.LimitPushed) {
		return res
	}
	out := &gateway.Result{}
	if len(res.Columns) > 0 {
		out.Columns = res.Columns[:1]
	} else {
		out.Columns = []string{fn.ResultColumn}
	}
	for _, row := range res.Rows {
		if len(row) == 0 {
			continue
		}
		if len(ex.Residual) > 0 && !residualMatch(row, ex) {
			continue
		}
		out.Rows = append(out.Rows, row[:1])
		if limit > 0 && len(out.Rows) >= limit {
			break
		}
	}
	return out
}

// execCoalitionFuncQuery decomposes a typed query over every member of a
// coalition that exports the function, merging the result sets with a
// leading "source" column — the paper's query decomposition across a
// cluster of databases sharing a topic. The planner (plan.go) splits each
// member's predicates into pushed and compensated halves by the member's
// capability profile; the streaming merge (merge.go) consumes the members'
// rows in member order through bounded channels, so the merged result is
// deterministic and a statement LIMIT can cancel the remaining fan-out the
// moment it is satisfied.
//
// The fan-out degrades gracefully: a member that is unreachable, slow past
// its deadline, or circuit-broken does not abort the statement. Every
// member's outcome — attempts, latency, error class — lands in
// Response.Members; Response.Partial marks real degradation (members cut
// off by a satisfied LIMIT report ErrClass "limit" and do not count). The
// statement only fails when fewer than Config.MinMembers members answer and
// the LIMIT was not satisfied.
func (s *Session) execCoalitionFuncQuery(ctx context.Context, q *wtl.FuncQuery) (*Response, error) {
	rows, err := s.streamCoalition(ctx, q)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	return rows.drainResponse(ctx)
}

func (s *Session) execNativeQuery(ctx context.Context, q *wtl.NativeQuery) (*Response, error) {
	d, err := s.lookupSource(ctx, q.Source)
	if err != nil {
		return nil, err
	}
	conn, err := s.p.openSource(s, d)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	s.tracef("data", "executing on %s (%s): %s", d.Name, d.Engine, q.Text)
	res, err := conn.Query(ctx, q.Text)
	if err != nil {
		return nil, fmt.Errorf("query: %s: %w", d.Name, err)
	}
	s.Source = d.Name
	return &Response{Stmt: q, Result: res, Translated: q.Text, Descriptor: d, Text: res.Format()}, nil
}

// ---- Information-space maintenance ----

// maintenanceCoDB requires an in-process co-database for schema changes.
func (s *Session) maintenanceCoDB() (*codb.CoDatabase, error) {
	if s.p.cfg.LocalCoDB == nil {
		return nil, fmt.Errorf("query: information-space maintenance requires the node's own co-database")
	}
	return s.p.cfg.LocalCoDB, nil
}

func (s *Session) execCreateCoalition(q *wtl.CreateCoalition) (*Response, error) {
	cd, err := s.maintenanceCoDB()
	if err != nil {
		return nil, err
	}
	if err := cd.DefineCoalition(q.Name, q.Parent, q.Description); err != nil {
		return nil, err
	}
	s.p.invalidateCache()
	return &Response{Stmt: q, Text: fmt.Sprintf("Coalition %s created.", q.Name)}, nil
}

func (s *Session) execCreateLink(q *wtl.CreateLink) (*Response, error) {
	cd, err := s.maintenanceCoDB()
	if err != nil {
		return nil, err
	}
	if err := cd.AddLink(&codb.ServiceLink{
		Name:     q.Name,
		FromKind: q.FromKind,
		From:     q.From,
		ToKind:   q.ToKind,
		To:       q.To,
		InfoType: q.InfoType,
	}); err != nil {
		return nil, err
	}
	s.p.invalidateCache()
	return &Response{Stmt: q, Text: fmt.Sprintf("Service link %s created.", q.Name)}, nil
}

// memberCoDBs opens the co-database clients of a coalition's members as
// known to the entry client, deduplicated by reference. The clients are
// resolved through a bounded worker pool and returned in member order.
func (p *Processor) memberCoDBs(ctx context.Context, entry *codb.Client, coalition string) ([]*codb.Client, error) {
	members, _, err := p.cachedInstances(ctx, entry, coalition)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var refs []string
	for _, m := range members {
		if m.CoDBRef == "" || seen[m.CoDBRef] {
			continue
		}
		seen[m.CoDBRef] = true
		refs = append(refs, m.CoDBRef)
	}
	clients := make([]*codb.Client, len(refs))
	fanOut(len(refs), p.fanOutWidth(), func(i int) {
		if c, err := p.codbByRef(refs[i]); err == nil {
			clients[i] = c
		}
	})
	out := make([]*codb.Client, 0, len(clients))
	for _, c := range clients {
		if c != nil {
			out = append(out, c)
		}
	}
	return out, nil
}

// execJoin advertises the home database into a coalition: every current
// member's co-database learns the newcomer, and — when this node owns its
// co-database — the coalition is replicated locally with all its members, so
// the newcomer is a full participant ("individual sites join and leave these
// clusters at their own discretion").
func (s *Session) execJoin(ctx context.Context, q *wtl.JoinCoalition) (*Response, error) {
	home := s.p.cfg.HomeDescriptor
	if home == nil {
		return nil, fmt.Errorf("query: node has no home descriptor to advertise")
	}
	entry, err := s.p.coalitionEntry(ctx, s, q.Coalition)
	if err != nil {
		return nil, err
	}
	members, _, err := s.p.cachedInstances(ctx, entry, q.Coalition)
	if err != nil {
		return nil, err
	}
	for _, m := range members {
		if strings.EqualFold(m.Name, s.p.cfg.Home) {
			return nil, fmt.Errorf("query: %s is already a member of %s", s.p.cfg.Home, q.Coalition)
		}
	}
	peers, err := s.p.memberCoDBs(ctx, entry, q.Coalition)
	if err != nil {
		return nil, err
	}
	// Advertise into every member co-database in parallel. Unlike the serial
	// loop — which stopped at the first failure, leaving only the peers
	// before it advertised — the fan-out reaches every peer before errors
	// are checked, so on failure the successful advertisements are rolled
	// back (best effort) and a failed join leaves no peer knowing the
	// newcomer.
	advErrs := make([]error, len(peers))
	fanOut(len(peers), s.p.fanOutWidth(), func(i int) {
		s.tracef("communication", "advertising %s into a member co-database", s.p.cfg.Home)
		advErrs[i] = peers[i].Advertise(ctx, q.Coalition, home)
	})
	var joinErr error
	for _, err := range advErrs {
		if err != nil {
			joinErr = err // report the first error in member order
			break
		}
	}
	if joinErr != nil {
		fanOut(len(peers), s.p.fanOutWidth(), func(i int) {
			if advErrs[i] == nil {
				peers[i].RemoveMember(ctx, q.Coalition, s.p.cfg.Home)
			}
		})
		return nil, joinErr
	}
	// Local replication.
	if cd := s.p.cfg.LocalCoDB; cd != nil {
		if !cd.HasCoalition(q.Coalition) {
			desc, syns, _ := entry.CoalitionInfo(ctx, q.Coalition)
			if err := cd.DefineCoalition(q.Coalition, "", desc, syns...); err != nil {
				return nil, err
			}
		}
		for _, m := range members {
			if err := cd.AddMember(q.Coalition, m); err != nil && !strings.Contains(err.Error(), "already a member") {
				return nil, err
			}
		}
		if err := cd.AddMember(q.Coalition, home); err != nil && !strings.Contains(err.Error(), "already a member") {
			return nil, err
		}
	}
	// The membership everyone cached just changed; drop it eagerly so the
	// join is observable before TTL/version convergence.
	s.p.invalidateCache()
	return &Response{Stmt: q,
		Text: fmt.Sprintf("%s joined coalition %s.", s.p.cfg.Home, q.Coalition)}, nil
}

// execLeave withdraws the home database from a coalition everywhere it is
// known: every member's co-database, and the local copy.
func (s *Session) execLeave(ctx context.Context, q *wtl.LeaveCoalition) (*Response, error) {
	entry, err := s.p.coalitionEntry(ctx, s, q.Coalition)
	if err != nil {
		return nil, err
	}
	peers, err := s.p.memberCoDBs(ctx, entry, q.Coalition)
	if err != nil {
		return nil, err
	}
	removedAt := make([]bool, len(peers))
	fanOut(len(peers), s.p.fanOutWidth(), func(i int) {
		if err := peers[i].RemoveMember(ctx, q.Coalition, s.p.cfg.Home); err == nil {
			removedAt[i] = true
		}
	})
	removed := false
	for _, ok := range removedAt {
		removed = removed || ok
	}
	if !removed {
		return nil, fmt.Errorf("query: %s is not a member of %s", s.p.cfg.Home, q.Coalition)
	}
	s.p.invalidateCache()
	return &Response{Stmt: q,
		Text: fmt.Sprintf("%s left coalition %s.", s.p.cfg.Home, q.Coalition)}, nil
}
