package query

import (
	"strconv"
	"strings"

	"repro/internal/idl"
	"repro/internal/oodb"
	"repro/internal/relational"
	"repro/internal/wtl"
)

// Residual predicate compensation. A conjunct the planner kept at the
// coordinator must select exactly the rows the engine would have selected
// had the conjunct been pushed — otherwise pushdown-on and pushdown-off
// answers diverge. The two engine families disagree on mixed-kind
// comparisons (the relational engines fall back to rendered-string
// comparison across kinds; the object engines treat a kind mismatch as
// no-match), so compensation is routed through each family's own comparison
// kernel (relational.Compare/MatchLike, oodb.MatchCond) rather than a
// private approximation of either.

// residualMatch applies a fragment's compensated conjuncts to one fetched
// row.
func residualMatch(row []idl.Any, ex *fragmentExec) bool {
	for i, c := range ex.Residual {
		at := ex.ResidualIdx[i]
		if at >= len(row) {
			return false
		}
		if !condMatch(ex.OQL, row[at], c) {
			return false
		}
	}
	return true
}

// condMatch evaluates one conjunct against one value under the semantics of
// the family the row came from.
func condMatch(oql bool, v idl.Any, c wtl.Condition) bool {
	if oql {
		lit, ok := oqlLiteral(c)
		if !ok {
			return false
		}
		return oodb.MatchCond(anyToOO(v), c.Op, lit)
	}
	lv := anyToRel(v)
	rv := relLiteral(c)
	if lv.IsNull() || rv.IsNull() {
		return false // SQL three-valued logic: NULL never satisfies WHERE
	}
	if c.Op == "LIKE" {
		return relational.MatchLike(lv.String(), rv.String())
	}
	cmp := relational.Compare(lv, rv)
	switch c.Op {
	case "=":
		return cmp == 0
	case "<>":
		return cmp != 0
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	case ">=":
		return cmp >= 0
	}
	return false
}

// relLiteral types a WebTassili literal the way the relational lexer would
// have typed it inside a rendered fragment.
func relLiteral(c wtl.Condition) relational.Value {
	if c.IsStr {
		return relational.TextValue(c.Value)
	}
	if !strings.Contains(c.Value, ".") {
		if n, err := strconv.ParseInt(c.Value, 10, 64); err == nil {
			return relational.IntValue(n)
		}
	}
	if f, err := strconv.ParseFloat(c.Value, 64); err == nil {
		return relational.FloatValue(f)
	}
	switch strings.ToLower(c.Value) {
	case "true":
		return relational.BoolValue(true)
	case "false":
		return relational.BoolValue(false)
	}
	// Bare words are never pushed (pushableCond), so this typing is only a
	// residual-side definition; Text keeps it deterministic in both modes.
	return relational.TextValue(c.Value)
}

// oqlLiteral types a WebTassili literal the way the OQL parser would have.
func oqlLiteral(c wtl.Condition) (any, bool) {
	if c.IsStr {
		return c.Value, true
	}
	if strings.Contains(c.Value, ".") {
		f, err := strconv.ParseFloat(c.Value, 64)
		return f, err == nil
	}
	if n, err := strconv.ParseInt(c.Value, 10, 64); err == nil {
		return n, true
	}
	switch strings.ToLower(c.Value) {
	case "true":
		return true, true
	case "false":
		return false, true
	}
	return nil, false
}

// anyToRel inverts the gateway's relational-to-Any conversion.
func anyToRel(v idl.Any) relational.Value {
	switch v.Kind {
	case idl.KindBool:
		return relational.BoolValue(v.Bool)
	case idl.KindShort, idl.KindUShort, idl.KindLong, idl.KindULong, idl.KindLongLong, idl.KindULongLong, idl.KindOctet:
		return relational.IntValue(v.Int)
	case idl.KindFloat, idl.KindDouble:
		return relational.FloatValue(v.Float)
	case idl.KindString:
		return relational.TextValue(v.Str)
	}
	return relational.NullValue()
}

// anyToOO inverts the gateway's object-to-Any conversion.
func anyToOO(v idl.Any) any {
	switch v.Kind {
	case idl.KindString:
		return v.Str
	case idl.KindShort, idl.KindUShort, idl.KindLong, idl.KindULong, idl.KindLongLong, idl.KindULongLong, idl.KindOctet:
		return v.Int
	case idl.KindFloat, idl.KindDouble:
		return v.Float
	case idl.KindBool:
		return v.Bool
	}
	return nil
}
