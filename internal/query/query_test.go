package query_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/codb"
	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/query"
	"repro/internal/wtl"
)

func TestWrapperSQLTranslation(t *testing.T) {
	fn := &codb.ExportedFunction{
		Name: "Funding", Returns: "real",
		Table: "ResearchProjects", ResultColumn: "Funding", ArgColumn: "Title",
	}
	d := &codb.SourceDescriptor{Wrapper: "WebTassiliOracle", Engine: "Oracle"}
	w := query.WrapperFor(d)
	if w.Name() != "WebTassiliOracle" {
		t.Errorf("wrapper = %s", w.Name())
	}
	sql, err := w.Translate(fn, []wtl.Condition{
		{Column: "ResearchProjects.Title", Op: "=", Value: "AIDS and drugs", IsStr: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's exact translation (§2.3).
	want := "SELECT a.Funding FROM ResearchProjects a WHERE a.Title = 'AIDS and drugs'"
	if sql != want {
		t.Errorf("sql = %q, want %q", sql, want)
	}
	// No predicate.
	sql, err = w.Translate(fn, nil)
	if err != nil || sql != "SELECT a.Funding FROM ResearchProjects a" {
		t.Errorf("no-predicate sql = %q, %v", sql, err)
	}
	// Multiple conjuncts, numeric literal, unqualified column.
	sql, err = w.Translate(fn, []wtl.Condition{
		{Column: "Title", Op: "LIKE", Value: "AIDS%", IsStr: true},
		{Column: "ResearchProjects.Funding", Op: ">", Value: "100000"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sql != "SELECT a.Funding FROM ResearchProjects a WHERE a.Title LIKE 'AIDS%' AND a.Funding > 100000" {
		t.Errorf("sql = %q", sql)
	}
	// Quote escaping.
	sql, err = w.Translate(fn, []wtl.Condition{
		{Column: "Title", Op: "=", Value: "O'Brien's study", IsStr: true},
	})
	if err != nil || !strings.Contains(sql, "'O''Brien''s study'") {
		t.Errorf("escaped sql = %q, %v", sql, err)
	}
	// Mismatched qualifier.
	if _, err := w.Translate(fn, []wtl.Condition{
		{Column: "OtherTable.Title", Op: "=", Value: "x", IsStr: true},
	}); err == nil {
		t.Error("mismatched qualifier accepted")
	}
}

func TestWrapperQualifierNormalisation(t *testing.T) {
	fn := &codb.ExportedFunction{Table: "research_projects", ResultColumn: "funding"}
	w := query.WrapperFor(&codb.SourceDescriptor{Engine: "Oracle"})
	sql, err := w.Translate(fn, []wtl.Condition{
		{Column: "ResearchProjects.Title", Op: "=", Value: "x", IsStr: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "a.Title = 'x'") {
		t.Errorf("sql = %q", sql)
	}
}

func TestWrapperOQLTranslation(t *testing.T) {
	fn := &codb.ExportedFunction{Table: "Callout", ResultColumn: "Hospital"}
	d := &codb.SourceDescriptor{Engine: "Ontos"}
	w := query.WrapperFor(d)
	if w.Name() != "WebTassiliOntos" {
		t.Errorf("wrapper = %s", w.Name())
	}
	q, err := w.Translate(fn, []wtl.Condition{
		{Column: "Callout.Suburb", Op: "=", Value: "Herston", IsStr: true},
	})
	if err != nil || q != "SELECT Hospital FROM Callout WHERE Suburb = 'Herston'" {
		t.Errorf("oql = %q, %v", q, err)
	}
}

func TestWrapperFallbackByEngine(t *testing.T) {
	w := query.WrapperFor(&codb.SourceDescriptor{Wrapper: "SomethingCustom", Engine: "DB2"})
	if _, ok := w.(interface{ Name() string }); !ok || w.Name() != "WebTassiliDB2" {
		t.Errorf("fallback wrapper = %s", w.Name())
	}
	w = query.WrapperFor(&codb.SourceDescriptor{Wrapper: "WebTassiliObjectStore"})
	if w.Name() != "WebTassiliObjectStore" {
		t.Errorf("objectstore wrapper = %s", w.Name())
	}
}

func TestNewProcessorValidation(t *testing.T) {
	if _, err := query.New(query.Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

// twoNodeFixture wires two nodes sharing a coalition for processor tests.
func twoNodeFixture(t *testing.T) (*core.Federation, *core.Node, *core.Node) {
	t.Helper()
	f, err := core.NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Shutdown)
	a, err := f.AddNode(orb.VisiBroker, core.NodeConfig{
		Name: "Alpha", Engine: core.EngineOracle,
		InformationType: "alpha records",
		Schema: `CREATE TABLE r (k VARCHAR(16) PRIMARY KEY, v INT);
			INSERT INTO r VALUES ('a', 1), ('b', 2);`,
		Interface: []codb.ExportedType{{
			Name: "R",
			Functions: []codb.ExportedFunction{{
				Name: "V", Returns: "int",
				Table: "r", ResultColumn: "v", ArgColumn: "k",
			}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.AddNode(orb.Orbix, core.NodeConfig{
		Name: "Beta", Engine: core.EngineDB2,
		InformationType: "beta records",
		Schema:          "CREATE TABLE s (x INT); INSERT INTO s VALUES (42);",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.DefineCoalition("Records", "", "shared records", "Alpha", "Beta"); err != nil {
		t.Fatal(err)
	}
	return f, a, b
}

func TestSessionStateAndSourceSelection(t *testing.T) {
	_, a, _ := twoNodeFixture(t)
	s := a.NewSession()
	// No source selected yet: function query without On fails.
	if _, err := s.Execute(context.Background(), `V(R.K, (R.K = "a"));`); err == nil {
		t.Error("function query without source accepted")
	}
	// Select the source via access info; subsequent queries use it.
	if _, err := s.Execute(context.Background(), "Display Access Information of Instance Alpha;"); err != nil {
		t.Fatal(err)
	}
	if s.Source != "Alpha" {
		t.Fatalf("session source = %q", s.Source)
	}
	resp, err := s.Execute(context.Background(), `V(R.K, (R.K = "b"));`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Rows[0][0].Int != 2 {
		t.Errorf("V(b) = %v", resp.Result.Rows[0][0])
	}
	// Display Document also selects the source.
	s2 := a.NewSession()
	if _, err := s2.Execute(context.Background(), "Display Documentation of Instance Beta;"); err != nil {
		t.Fatal(err)
	}
	if s2.Source != "Beta" {
		t.Errorf("source after document = %q", s2.Source)
	}
}

func TestDisplayInterface(t *testing.T) {
	_, a, _ := twoNodeFixture(t)
	s := a.NewSession()
	resp, err := s.Execute(context.Background(), "Display Interface of Instance Alpha;")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Names) != 1 || resp.Names[0] != "R" {
		t.Errorf("interface = %v", resp.Names)
	}
}

func TestCrossNodeFunctionQuery(t *testing.T) {
	_, _, b := twoNodeFixture(t)
	// From Beta, query Alpha's exported function: descriptor comes from the
	// shared coalition; data crosses the wire via Alpha's ISI.
	s := b.NewSession()
	resp, err := s.Execute(context.Background(), `V(R.K, (R.K = "a")) On Alpha;`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Rows[0][0].Int != 1 {
		t.Errorf("cross-node V(a) = %v", resp.Result.Rows[0][0])
	}
	if resp.Descriptor.Engine != core.EngineOracle {
		t.Errorf("descriptor engine = %s", resp.Descriptor.Engine)
	}
}

func TestTraceAccumulationAndReset(t *testing.T) {
	_, a, _ := twoNodeFixture(t)
	s := a.NewSession()
	if _, err := s.Execute(context.Background(), "Find Coalitions With Information alpha records;"); err != nil {
		t.Fatal(err)
	}
	first := s.Trace()
	if len(first) == 0 {
		t.Fatal("no trace")
	}
	if again := s.Trace(); len(again) != 0 {
		t.Errorf("trace not cleared: %v", again)
	}
}

func TestResponseTextRendering(t *testing.T) {
	_, a, _ := twoNodeFixture(t)
	s := a.NewSession()
	resp, err := s.Execute(context.Background(), "Find Coalitions With Information alpha records;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "Records") || !strings.Contains(resp.Text, "score") {
		t.Errorf("find text: %s", resp.Text)
	}
	resp, err = s.Execute(context.Background(), "Find Coalitions With Information zebra xylophone;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "No coalitions found") {
		t.Errorf("miss text: %s", resp.Text)
	}
	resp, err = s.Execute(context.Background(), "Display Instances of Class Records;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "Alpha") || !strings.Contains(resp.Text, "Beta") {
		t.Errorf("instances text: %s", resp.Text)
	}
}

func TestMaintenanceRequiresLocalCoDB(t *testing.T) {
	// A processor configured without LocalCoDB (e.g. a pure client) rejects
	// maintenance statements.
	f, a, _ := twoNodeFixture(t)
	_ = f
	p, err := query.New(query.Config{
		ORB:   a.Config.ORB,
		Home:  "Client",
		Local: codb.NewClient(a.Config.ORB.Resolve(a.CoDBIOR)),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewSession()
	if _, err := s.Execute(context.Background(), `Create Coalition X Description "d";`); err == nil {
		t.Error("maintenance without LocalCoDB accepted")
	}
	if _, err := s.Execute(context.Background(), "Join Coalition Records;"); err == nil {
		t.Error("join without home descriptor accepted")
	}
}

func TestExecuteParseError(t *testing.T) {
	_, a, _ := twoNodeFixture(t)
	s := a.NewSession()
	if _, err := s.Execute(context.Background(), "Frobnicate the database;"); err == nil {
		t.Error("nonsense statement accepted")
	}
}

func TestConnectAndBrowseInPackage(t *testing.T) {
	_, a, b := twoNodeFixture(t)
	s := a.NewSession()
	if _, err := s.Execute(context.Background(), "Connect To Coalition Records;"); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Execute(context.Background(), "Display Coalitions;")
	if err != nil || len(resp.Names) != 1 || resp.Names[0] != "Records" {
		t.Errorf("coalitions = %v, %v", resp.Names, err)
	}
	resp, err = s.Execute(context.Background(), "Display SubClasses of Class Records;")
	if err != nil || len(resp.Names) != 0 {
		t.Errorf("subclasses = %v, %v", resp.Names, err)
	}
	resp, err = s.Execute(context.Background(), "Display Service Links;")
	if err != nil || len(resp.Names) != 0 {
		t.Errorf("links = %v, %v", resp.Names, err)
	}
	// Connect from the other node too (its local co-database has it).
	s2 := b.NewSession()
	if _, err := s2.Execute(context.Background(), "Connect To Coalition Records;"); err != nil {
		t.Fatal(err)
	}
}

func TestSearchTypeInPackage(t *testing.T) {
	_, a, _ := twoNodeFixture(t)
	s := a.NewSession()
	resp, err := s.Execute(context.Background(), "Search Type R;")
	if err != nil || len(resp.Sources) != 1 || resp.Sources[0].Name != "Alpha" {
		t.Fatalf("search = %v, %v", resp.Names, err)
	}
	resp, err = s.Execute(context.Background(), "Search Type Missing;")
	if err != nil || len(resp.Sources) != 0 {
		t.Errorf("miss search = %v, %v", resp.Names, err)
	}
}

func TestCoalitionFanOutInPackage(t *testing.T) {
	_, a, _ := twoNodeFixture(t)
	s := a.NewSession()
	resp, err := s.Execute(context.Background(), `V(R.K, (R.K = "a")) On Coalition Records;`)
	if err != nil {
		t.Fatal(err)
	}
	// Only Alpha exports V; Beta is skipped silently.
	if len(resp.Result.Rows) != 1 || resp.Result.Rows[0][0].Str != "Alpha" {
		t.Errorf("fan-out rows = %+v", resp.Result.Rows)
	}
	if _, err := s.Execute(context.Background(), `V(R.K) On Coalition NoSuchCoalition;`); err == nil {
		t.Error("fan-out over unknown coalition accepted")
	}
}

func TestNativeQueryInPackage(t *testing.T) {
	_, a, _ := twoNodeFixture(t)
	s := a.NewSession()
	resp, err := s.Execute(context.Background(), `Query Beta Using Native "SELECT x FROM s";`)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rows) != 1 || resp.Result.Rows[0][0].Int != 42 {
		t.Errorf("rows = %+v", resp.Result.Rows)
	}
	// Engine errors propagate with the source name.
	_, err = s.Execute(context.Background(), `Query Beta Using Native "SELECT nope FROM s";`)
	if err == nil || !strings.Contains(err.Error(), "Beta") {
		t.Errorf("error = %v", err)
	}
}

func TestCreateLinkAndDisplay(t *testing.T) {
	_, a, _ := twoNodeFixture(t)
	s := a.NewSession()
	if _, err := s.Execute(context.Background(), `Create Service Link A_to_B From Database Alpha To Database Beta Information "beta records";`); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Execute(context.Background(), "Display Links;")
	if err != nil || len(resp.Names) != 1 || resp.Names[0] != "A_to_B" {
		t.Errorf("links = %v, %v", resp.Names, err)
	}
	if _, err := s.Execute(context.Background(), `Create Service Link A_to_B From Database Alpha To Database Beta;`); err == nil {
		t.Error("duplicate link accepted")
	}
}

func TestJoinLeaveInPackage(t *testing.T) {
	f, a, _ := twoNodeFixture(t)
	// A third node joins Records via WebTassili after learning of it by link.
	c, err := f.AddNode(orb.OrbixWeb, core.NodeConfig{
		Name: "Gamma", Engine: core.EngineSybase,
		InformationType: "gamma records",
		Schema:          "CREATE TABLE g (x INT);",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddLink(core.LinkSpec{Name: "G_to_Records", FromKind: "database",
		From: "Gamma", ToKind: "coalition", To: "Records", InfoType: "records"}); err != nil {
		t.Fatal(err)
	}
	s := c.NewSession()
	if _, err := s.Execute(context.Background(), "Join Coalition Records;"); err != nil {
		t.Fatal(err)
	}
	members, _ := a.CoDB.Members("Records")
	if len(members) != 3 {
		t.Fatalf("members after join = %d", len(members))
	}
	// Gamma replicated the coalition locally.
	if !c.CoDB.HasCoalition("Records") {
		t.Error("join did not replicate locally")
	}
	if _, err := s.Execute(context.Background(), "Join Coalition Records;"); err == nil {
		t.Error("double join accepted")
	}
	if _, err := s.Execute(context.Background(), "Leave Coalition Records;"); err != nil {
		t.Fatal(err)
	}
	members, _ = a.CoDB.Members("Records")
	if len(members) != 2 {
		t.Errorf("members after leave = %d", len(members))
	}
	if _, err := s.Execute(context.Background(), "Leave Coalition NoSuch;"); err == nil {
		t.Error("leave unknown coalition accepted")
	}
}
