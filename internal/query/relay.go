package query

import (
	"context"
	"time"

	"repro/internal/codb"
	"repro/internal/gossip"
	"repro/internal/mdcache"
	"repro/internal/trace"
)

// This file is the two-level discovery tier. Flat stage-3 discovery probes
// every coalition peer directly, which costs the coordinator O(members) RPCs
// per resolve; at hundreds of members that fan-out is the scalability wall
// the paper's coalition model hits. Hierarchical routing shards each large
// coalition into sub-coalitions of SubCoalitionSize members, elects the
// first live member of each shard as its representative (liveness comes from
// the gossip failure detector), and sends the representative one relay_probe
// carrying the whole shard. The representative probes its shard — with its
// own metadata cache and fan-out — and returns one result per member, which
// the coordinator merges positionally. Every member is still probed exactly
// once, so the answer (leads, Partial, MemberStatus) is identical to flat
// fan-out — the differential suite in internal/simtest asserts it — but the
// coordinator's own RPC count drops from O(members) to O(members/shard).

// peerProbe is one stage-3 target's in-flight state: identity plus whatever
// matches its probe (direct or relayed) produced.
type peerProbe struct {
	name  string
	ref   string
	peer  *codb.Client
	coals []codb.Match
	links []codb.Match
}

// relayRoute routes the pending probes of large coalitions through shard
// representatives. It fills probes/statuses for every member a relay
// answered and returns the indices still pending — small-coalition members,
// plus shards whose every relay candidate failed (those fall back to the
// coordinator's direct fan-out, so no member is ever silently dropped).
func (p *Processor) relayRoute(ctx context.Context, s *Session, topic string, size int, groupOf []int, probes []peerProbe, statuses []MemberStatus, pending []int) []int {
	// Partition the pending indices by the coalition group they entered
	// through, preserving flat order within each group.
	byGroup := map[int][]int{}
	var groupOrder []int
	for _, idx := range pending {
		gi := groupOf[idx]
		if _, ok := byGroup[gi]; !ok {
			groupOrder = append(groupOrder, gi)
		}
		byGroup[gi] = append(byGroup[gi], idx)
	}

	var direct []int // indices the flat fan-out must still probe
	var shards [][]int
	for _, gi := range groupOrder {
		members := byGroup[gi]
		if len(members) <= size {
			// Small coalition: the paper's flat model, untouched.
			direct = append(direct, members...)
			continue
		}
		for start := 0; start < len(members); start += size {
			end := start + size
			if end > len(members) {
				end = len(members)
			}
			shards = append(shards, members[start:end])
		}
	}
	if len(shards) == 0 {
		return direct
	}

	// Shards relay concurrently; each shard's relay chain runs serially
	// (representative, then failover candidates).
	failed := make([][]int, len(shards))
	fanOutCtx(ctx, len(shards), p.fanOutWidth(), func(si int) {
		shard := shards[si]
		if !p.relayShard(ctx, s, topic, shard, probes, statuses) {
			failed[si] = shard
		}
	})
	for _, shard := range failed {
		if len(shard) > 0 {
			p.stats.relayDirectFallbacks.Add(1)
			direct = append(direct, shard...)
		}
	}
	return direct
}

// relayShard probes one shard through its representative, trying each live
// member as the relay before giving up. Reports whether any relay answered.
func (p *Processor) relayShard(ctx context.Context, s *Session, topic string, shard []int, probes []peerProbe, statuses []MemberStatus) bool {
	p.stats.relayShards.Add(1)
	targets := make([]codb.RelayTarget, len(shard))
	for k, idx := range shard {
		targets[k] = codb.RelayTarget{Name: probes[idx].name, Ref: probes[idx].ref}
	}
	// Election: live members first (in shard order), suspected ones after —
	// a partitioned representative is skipped, not timed out against, but
	// still gets its chance once every live candidate has failed.
	var order []int
	for _, idx := range shard {
		if p.alive(probes[idx].name) {
			order = append(order, idx)
		}
	}
	for _, idx := range shard {
		if !p.alive(probes[idx].name) {
			order = append(order, idx)
		}
	}
	for _, idx := range order {
		rep := &probes[idx]
		relayCtx, sp := trace.StartSpan(ctx, "query.relay:"+rep.name)
		if mt := p.memberTimeout(); mt > 0 {
			// The relay covers a whole shard of member probes, so its budget
			// scales with the shard instead of a single member's timeout.
			var cancel context.CancelFunc
			relayCtx, cancel = context.WithTimeout(relayCtx, mt*time.Duration(len(shard)))
			defer cancel()
		}
		results, err := rep.peer.RelayProbe(relayCtx, topic, targets)
		if err == nil && len(results) != len(targets) {
			err = errRelayShape
		}
		sp.End(err)
		if err != nil {
			// BAD_OPERATION lands here too: a representative that predates
			// the relay protocol is treated like a dead one.
			p.stats.relayFailovers.Add(1)
			s.tracef("communication", "relay via representative %s failed (%s): %v",
				rep.name, classifyErr(err), err)
			continue
		}
		s.tracef("communication", "relay probe of %d member(s) answered by representative %s", len(shard), rep.name)
		for k, ridx := range shard {
			r := results[k]
			st := &statuses[ridx]
			st.ErrClass, st.Err = r.ErrClass, r.Err
			st.Stale = r.Stale
			if r.ErrClass == "" {
				probes[ridx].coals, probes[ridx].links = r.Coals, r.Links
				p.stats.relayedProbes.Add(1)
			}
		}
		return true
	}
	s.tracef("communication", "every relay candidate failed for a %d-member shard; probing directly", len(shard))
	return false
}

// errRelayShape flags a relay reply whose result count does not match the
// shard — treated as a failed relay, never as member answers.
var errRelayShape = &relayShapeError{}

type relayShapeError struct{}

func (*relayShapeError) Error() string { return "query: relay reply does not match shard" }

// RelayProbe is the representative side of relay_probe: probe the given
// members for topic on the coordinator's behalf and return one result per
// member, in order. It reuses the same cached probe path the representative's
// own discovery uses, so relayed probes populate (and are answered by) its
// metadata cache, and failures classify exactly as the coordinator's direct
// probe would classify them. Wired into the co-database servant through
// codb.ServantOptions.Relay.
func (p *Processor) RelayProbe(ctx context.Context, topic string, members []codb.RelayTarget) []codb.RelayResult {
	results := make([]codb.RelayResult, len(members))
	fanOutCtx(ctx, len(members), p.fanOutWidth(), func(i int) {
		m := members[i]
		results[i].Name = m.Name
		client, err := p.codbByRef(m.Ref)
		if err != nil {
			results[i].ErrClass, results[i].Err = classifyErr(err), err.Error()
			return
		}
		probeCtx, sp := trace.StartSpan(ctx, "query.relayprobe:"+m.Name)
		if mt := p.memberTimeout(); mt > 0 {
			var cancel context.CancelFunc
			probeCtx, cancel = context.WithTimeout(probeCtx, mt)
			defer cancel()
		}
		res, out, perr := p.cachedProbe(probeCtx, client, topic)
		sp.SetAttr("cache", out.String())
		sp.End(perr)
		if perr != nil {
			results[i].ErrClass, results[i].Err = classifyErr(perr), perr.Error()
			return
		}
		results[i].Coals, results[i].Links = res.Coals, res.Links
		results[i].Stale = out == mdcache.Stale
	})
	return results
}

// gossipInvalidatePrefixes are the cache-key families holding one peer's
// answers; a gossip delta proving the peer's metadata moved drops them all.
var gossipInvalidatePrefixes = []string{
	"probe|", "findc|", "findl|", "coalitions|", "memberof|", "instances|", "links|", "access|",
}

// GossipApplied is the gossip agent's OnApply hook: record each applied
// entry in the metadata cache under its version stamp (merge-by-version, so
// a replayed delta can never regress the cached view — the invariant the
// simulation checkers assert) and invalidate every cached answer previously
// fetched from that peer, since the version bump proves them stale.
func (p *Processor) GossipApplied(entries []gossip.Entry) {
	for _, e := range entries {
		if !p.cfg.Cache.MergeVersioned("gossip|"+e.Node, e, e.Version) {
			continue
		}
		if e.CoDBRef == "" {
			continue
		}
		client, err := p.codbByRef(e.CoDBRef)
		if err != nil {
			continue
		}
		src := p.srcKey(client)
		for _, prefix := range gossipInvalidatePrefixes {
			p.cfg.Cache.InvalidatePrefix(prefix + src)
		}
	}
}
