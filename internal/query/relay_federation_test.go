package query_test

import (
	"context"
	"testing"

	"repro/internal/gossip"
)

// TestHierarchicalDiscoveryEquivalence builds the planner fixture twice and
// sweeps an unknown topic once with hierarchical routing (shard size 2: the
// four peers relay through two representatives) and once flat. The member
// accounting must be identical, and the planner stats must prove the
// hierarchical run actually relayed while the flat run never did.
func TestHierarchicalDiscoveryEquivalence(t *testing.T) {
	_, hier := planFederation(t, 5, nil)
	_, flat := planFederation(t, 5, nil)
	hier[0].Processor.SetSubCoalitionSize(2)
	flat[0].Processor.SetSubCoalitionSize(-1)
	ctx := context.Background()

	rh, err := hier[0].NewSession().Execute(ctx, "Find Coalitions With Information nothinganyoneknows;")
	if err != nil {
		t.Fatal(err)
	}
	rf, err := flat[0].NewSession().Execute(ctx, "Find Coalitions With Information nothinganyoneknows;")
	if err != nil {
		t.Fatal(err)
	}
	if len(rh.Members) != 4 || len(rf.Members) != 4 {
		t.Fatalf("sweeps probed %d / %d members, want 4", len(rh.Members), len(rf.Members))
	}
	for i := range rh.Members {
		h, f := rh.Members[i], rf.Members[i]
		if h.Member != f.Member || h.ErrClass != f.ErrClass || h.Stale != f.Stale {
			t.Fatalf("member %d diverges: hier %+v flat %+v", i, h, f)
		}
	}
	if rh.Partial != rf.Partial || len(rh.Leads) != len(rf.Leads) {
		t.Fatalf("verdicts diverge: hier partial=%v leads=%d, flat partial=%v leads=%d",
			rh.Partial, len(rh.Leads), rf.Partial, len(rf.Leads))
	}
	sh := hier[0].Processor.PlannerStats()
	if sh.RelayShards != 2 || sh.RelayedProbes != 4 || sh.RelayFailovers != 0 {
		t.Fatalf("hierarchical stats: %+v", sh)
	}
	if sf := flat[0].Processor.PlannerStats(); sf.RelayShards != 0 || sf.RelayedProbes != 0 {
		t.Fatalf("flat run relayed: %+v", sf)
	}
}

// TestHierarchicalRelayFailover closes the first shard's representative:
// the relay must fail over to the next shard member in-line, the dead node
// must be accounted like any failed member, and every other member must
// still be probed exactly once.
func TestHierarchicalRelayFailover(t *testing.T) {
	_, nodes := planFederation(t, 5, nil)
	nodes[0].Processor.SetSubCoalitionSize(2)
	ctx := context.Background()

	// S1 is the first member of shard [S1 S2] — the elected representative
	// while the failure detector has nothing against it.
	if err := nodes[1].Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := nodes[0].NewSession().Execute(ctx, "Find Coalitions With Information nothinganyoneknows;")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Partial {
		t.Fatalf("sweep with a dead member not partial: %+v", resp.Members)
	}
	healthy := 0
	for _, m := range resp.Members {
		switch m.Member {
		case "S1":
			if m.ErrClass == "" {
				t.Fatalf("dead member answered: %+v", m)
			}
		default:
			if m.ErrClass != "" {
				t.Fatalf("healthy member failed: %+v", m)
			}
			healthy++
		}
	}
	if healthy != 3 {
		t.Fatalf("%d healthy members, want 3: %+v", healthy, resp.Members)
	}
	st := nodes[0].Processor.PlannerStats()
	if st.RelayShards != 2 || st.RelayFailovers == 0 {
		t.Fatalf("failover not recorded: %+v", st)
	}
}

// TestGossipAppliedInvalidation drives the gossip OnApply hook directly: an
// applied entry must land in the metadata cache under its version stamp, a
// replayed older entry must be refused by the merge-by-version rule, and
// unresolvable co-database references must be skipped without damage.
func TestGossipAppliedInvalidation(t *testing.T) {
	_, nodes := planFederation(t, 3, nil)
	p := nodes[0].Processor
	cache := nodes[0].MDCache

	ref := nodes[1].Descriptor.CoDBRef
	p.GossipApplied([]gossip.Entry{
		{Node: "S1", Version: 40, CoDBRef: ref, Coalitions: []string{"C"}},
		{Node: "S2", Version: 7}, // no ref: merged, nothing to invalidate
		{Node: "SX", Version: 1, CoDBRef: "not-a-reference"},
	})
	merges := cache.Stats.Merges.Load()
	if merges != 3 {
		t.Fatalf("merges = %d, want 3", merges)
	}
	if _, ver, ok := cache.PeekVersioned("gossip|S1"); !ok || ver != 40 {
		t.Fatalf("gossip|S1 = v%d ok=%v, want v40", ver, ok)
	}

	// A stale replay must bounce off the version stamp.
	p.GossipApplied([]gossip.Entry{{Node: "S1", Version: 39, CoDBRef: ref}})
	if rejects := cache.Stats.MergeRejects.Load(); rejects != 1 {
		t.Fatalf("merge rejects = %d, want 1", rejects)
	}
	if _, ver, _ := cache.PeekVersioned("gossip|S1"); ver != 40 {
		t.Fatalf("stale replay moved the version to %d", ver)
	}
}
