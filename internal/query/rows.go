package query

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"strings"

	"repro/internal/gateway"
	"repro/internal/idl"
	"repro/internal/mdcache"
	"repro/internal/trace"
	"repro/internal/wtl"
)

// Row is one merged result row. Coalition function queries yield
// [source, value] rows; other statements yield their result's native shape.
type Row []idl.Any

// Rows is a pull-based iterator over a statement's result, in the shape of
// database/sql: Next advances, Scan unpacks the current row, Err reports
// what stopped the iteration, Close releases everything behind it. For
// coalition function queries the rows stream from the members through
// server-side cursors as the caller iterates — the coordinator never holds
// more than the merge window (MergeBufRows rows per member) — so Close must
// always be called: it cancels outstanding member sub-calls and closes their
// cursors. Other statement kinds materialize as they always did and iterate
// in memory. Not safe for concurrent use.
type Rows struct {
	sess *Session
	stmt wtl.Stmt
	sp   *trace.Span // statement span, ended at Close (streaming path only)

	// Streaming backing (coalition function queries).
	ms   *mergeStream
	plan *queryPlan

	// Semi-join build side (already drained when the Rows is handed out).
	buildStatuses []MemberStatus
	buildMoved    int64
	buildDegraded int

	// Materialized backing (every other statement kind).
	resp *Response
	pos  int

	cols      []string
	cur       Row
	err       error
	delivered int64
	finished  bool // stream fully terminated, stats flushed
	closed    bool
}

// Stream parses and runs one WebTassili statement, returning its result as
// a pull-based row iterator. Coalition function queries execute as a
// streaming merge: member rows cross the wire in MergeBufRows batches, each
// next batch fetched only after the caller has drained the previous window,
// so arbitrarily large scans run in bounded coordinator memory. Every other
// statement kind materializes exactly as Execute does and is served from
// memory. The context governs the whole life of the stream, not just the
// opening round trips.
func (s *Session) Stream(ctx context.Context, src string) (*Rows, error) {
	s.markStmtStart()
	stmt, err := wtl.Parse(src)
	if err != nil {
		return nil, err
	}
	s.tracef("query", "parsed %T", stmt)
	if q, ok := stmt.(*wtl.FuncQuery); ok && q.OnCoalition {
		ctx, sp := trace.StartSpan(ctx, stmtSpanName(stmt))
		rows, err := s.streamCoalition(ctx, q)
		if err != nil {
			sp.End(err)
			return nil, err
		}
		rows.sp = sp
		return rows, nil
	}
	resp, err := s.execTimed(ctx, stmt)
	if err != nil {
		return nil, err
	}
	r := &Rows{sess: s, stmt: stmt, resp: resp}
	if resp.Result != nil {
		r.cols = resp.Result.Columns
	}
	return r, nil
}

// streamCoalition plans a coalition function query and opens its merge
// stream. The caller owns the returned Rows (drain it or Close it).
// Statements with a SemiJoin clause route through the two-sided planner.
func (s *Session) streamCoalition(ctx context.Context, q *wtl.FuncQuery) (*Rows, error) {
	if q.Join != nil {
		return s.streamSemiJoin(ctx, q)
	}
	plan, err := s.resolveCoalitionPlan(ctx, q)
	if err != nil {
		return nil, err
	}
	return &Rows{sess: s, stmt: q, plan: plan, ms: s.newMergeStream(ctx, plan)}, nil
}

// resolveCoalitionPlan builds (or replays) one coalition plan and counts the
// planner stats its decomposition contributes. Semi-join statements resolve
// two of these — one per side.
func (s *Session) resolveCoalitionPlan(ctx context.Context, q *wtl.FuncQuery) (*queryPlan, error) {
	entry, err := s.p.coalitionEntry(ctx, s, q.Source)
	if err != nil {
		return nil, err
	}
	plan, out, err := s.p.cachedPlan(ctx, entry, q, s.p.pushdownOn())
	if err != nil {
		return nil, err
	}
	s.p.stats.plans.Add(1)
	if out == mdcache.Hit || out == mdcache.Coalesced {
		s.p.stats.planCacheHits.Add(1)
	}
	for i := range plan.Members {
		mp := &plan.Members[i]
		s.tracef("data", "decomposed query on %s (%s): %s", mp.D.Name, mp.D.Engine, mp.Exec.Native)
		s.p.stats.fragmentsPushed.Add(int64(mp.Exec.Pushed))
		s.p.stats.fragmentsCompensated.Add(int64(len(mp.Exec.Residual)))
		if mp.Exec.LimitPushed {
			s.p.stats.limitPushed.Add(1)
		}
	}
	return plan, nil
}

// Columns names the result columns. For the streaming path the merge learns
// the result column from the first member that answers, so Columns is
// reliable after the first Next (or after the iteration ends).
func (r *Rows) Columns() []string { return r.cols }

// Next advances to the next row, reporting false when the iteration ends —
// exhaustion, a satisfied LIMIT, or a terminal error (see Err).
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.ms != nil {
		row, m, ok := r.ms.Next()
		if !ok {
			r.finishStream(true)
			return false
		}
		r.delivered++
		if r.cols == nil && r.ms.colNames[m] != "" {
			r.cols = []string{"source", r.ms.colNames[m]}
		}
		r.cur = Row(row)
		return true
	}
	if r.resp == nil || r.resp.Result == nil || r.pos >= len(r.resp.Result.Rows) {
		return false
	}
	r.cur = Row(r.resp.Result.Rows[r.pos])
	r.pos++
	return true
}

// Scan unpacks the current row into dest, one destination per column:
// *string, *int, *int64, *float64, *bool, or *idl.Any.
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return errors.New("query: Scan called without a successful Next")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("query: Scan got %d destinations for %d columns", len(dest), len(r.cur))
	}
	for i, d := range dest {
		v := r.cur[i]
		switch p := d.(type) {
		case *string:
			if v.Kind == idl.KindString {
				*p = v.Str
			} else {
				*p = v.String()
			}
		case *int64:
			*p = v.Int
		case *int:
			*p = int(v.Int)
		case *float64:
			if v.Kind == idl.KindFloat || v.Kind == idl.KindDouble {
				*p = v.Float
			} else {
				*p = float64(v.Int)
			}
		case *bool:
			*p = v.Bool
		case *idl.Any:
			*p = v
		default:
			return fmt.Errorf("query: Scan does not support destination type %T", d)
		}
	}
	return nil
}

// Err reports the error that terminated the iteration, if any: for coalition
// queries that is the quorum failure Execute would have returned. nil while
// rows are still flowing.
func (r *Rows) Err() error { return r.err }

// Members reports the per-member outcome of the fan-out behind the rows —
// for a semi-join, the probe side's statuses followed by the build side's.
// Stable once the iteration has ended (Next returned false, or Close).
func (r *Rows) Members() []MemberStatus {
	if r.ms != nil {
		if len(r.buildStatuses) > 0 {
			out := make([]MemberStatus, 0, len(r.ms.statuses)+len(r.buildStatuses))
			out = append(out, r.ms.statuses...)
			return append(out, r.buildStatuses...)
		}
		return r.ms.statuses
	}
	if r.resp != nil {
		return r.resp.Members
	}
	return nil
}

// Partial reports whether some member failed while enough answered for the
// result to stand, degraded. Stable once the iteration has ended.
func (r *Rows) Partial() bool {
	if r.ms != nil {
		_, degraded, _ := r.tally()
		return degraded > 0 || r.buildDegraded > 0
	}
	return r.resp != nil && r.resp.Partial
}

// All returns a range-over-func view of the remaining rows, closing the
// stream when the loop ends (normally or by break). Check Err after the
// loop. Each yielded Row is only valid for that iteration.
func (r *Rows) All() iter.Seq2[int, Row] {
	return func(yield func(int, Row) bool) {
		defer r.Close()
		for i := 0; r.Next(); i++ {
			if !yield(i, r.cur) {
				return
			}
		}
	}
}

// Close releases the stream: outstanding member sub-calls are cancelled and
// their server-side cursors closed. Idempotent; always safe to defer.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.ms != nil && !r.finished {
		// Abandoned mid-stream: release the fan-out but skip the quorum
		// verdict — the caller walked away before the answer was complete.
		r.finishStream(false)
	}
	if r.sp != nil {
		r.sp.End(r.err)
	}
	return nil
}

// tally buckets the member statuses; valid once the merge stream is closed.
func (r *Rows) tally() (answered, degraded int, firstErr error) {
	for i := range r.ms.statuses {
		st := &r.ms.statuses[i]
		switch {
		case st.OK():
			answered++
		case st.ErrClass == "limit":
			// Cut off by a satisfied LIMIT: not an answer, not degradation.
		default:
			degraded++
			if firstErr == nil {
				firstErr = errors.New(st.Err)
			}
		}
	}
	return answered, degraded, firstErr
}

// finishStream terminates the merge, flushes planner stats once, and (when
// evaluate is set) applies the quorum policy to r.err.
func (r *Rows) finishStream(evaluate bool) {
	if r.finished {
		return
	}
	r.finished = true
	ms := r.ms
	ms.Close()
	if r.cols == nil {
		r.cols = ms.mergedColumns()
	}
	s := r.sess
	s.p.stats.rowsMoved.Add(ms.rowsMoved.Load())
	s.p.stats.fallbacks.Add(ms.fallbacks.Load())
	s.p.stats.probeRowsPruned.Add(ms.probePruned.Load())
	s.p.stats.semiJoinFallbacks.Add(ms.sjFallbacks.Load())
	s.p.stats.rowsDelivered.Add(r.delivered)
	s.p.stats.raisePeak(ms.peakInflight.Load())
	if ms.stop >= 0 {
		s.p.stats.earlyTerminations.Add(1)
	}
	if !evaluate {
		return
	}
	answered, _, firstErr := r.tally()
	quorum := s.p.minMembersQuorum()
	if quorum <= 0 {
		quorum = 1
	}
	if ms.stop < 0 && answered < quorum {
		if firstErr == nil {
			firstErr = errors.New("no member answered")
		}
		q, _ := r.stmt.(*wtl.FuncQuery)
		source := ""
		if q != nil {
			source = q.Source
		}
		r.err = fmt.Errorf("query: coalition %s: %d of %d member(s) answered, need %d: %w",
			source, answered, len(r.plan.Members), quorum, firstErr)
	}
}

// drainResponse consumes the whole stream and rebuilds the materialized
// Response shape — Execute's coalition path is exactly this drain, so the
// streamed and materialized answers are identical by construction. Rows
// delivered by a member that failed mid-stream are dropped by provenance
// (a materialized merge never sees a failed member's rows).
func (r *Rows) drainResponse(ctx context.Context) (*Response, error) {
	if r.ms == nil {
		return r.resp, nil
	}
	s, ms, q := r.sess, r.ms, r.stmt.(*wtl.FuncQuery)
	merged := &gateway.Result{}
	var memberOf []int
	for {
		row, m, ok := ms.Next()
		if !ok {
			break
		}
		merged.Rows = append(merged.Rows, row)
		memberOf = append(memberOf, m)
	}
	r.finished = true
	r.closed = true
	ms.Close()
	dropped := false
	for i := range ms.statuses {
		if !ms.statuses[i].OK() && ms.delivered[i] > 0 {
			dropped = true
		}
	}
	if dropped {
		kept := merged.Rows[:0]
		for k, row := range merged.Rows {
			if ms.statuses[memberOf[k]].OK() {
				kept = append(kept, row)
			}
		}
		merged.Rows = kept
	}
	merged.Columns = ms.mergedColumns()

	s.p.stats.rowsMoved.Add(ms.rowsMoved.Load())
	s.p.stats.fallbacks.Add(ms.fallbacks.Load())
	s.p.stats.probeRowsPruned.Add(ms.probePruned.Load())
	s.p.stats.semiJoinFallbacks.Add(ms.sjFallbacks.Load())
	s.p.stats.raisePeak(ms.peakInflight.Load())
	if ms.stop >= 0 {
		s.p.stats.earlyTerminations.Add(1)
	}
	answered, degraded, firstErr := r.tally()
	quorum := s.p.minMembersQuorum()
	if quorum <= 0 {
		quorum = 1
	}
	if ms.stop < 0 && answered < quorum {
		if firstErr == nil {
			firstErr = ctx.Err()
		}
		return nil, fmt.Errorf("query: coalition %s: %d of %d member(s) answered, need %d: %w",
			q.Source, answered, len(r.plan.Members), quorum, firstErr)
	}
	s.p.stats.rowsDelivered.Add(int64(len(merged.Rows)))
	translations := make([]string, len(r.plan.Members))
	for i := range r.plan.Members {
		translations[i] = r.plan.Members[i].D.Name + ": " + r.plan.Members[i].Exec.Native
	}
	partial := degraded > 0 || r.buildDegraded > 0
	text := merged.Format()
	if partial {
		text += fmt.Sprintf("(partial result: %d of %d member(s) answered)\n", answered, len(r.plan.Members))
	}
	members := ms.statuses
	if len(r.buildStatuses) > 0 {
		members = make([]MemberStatus, 0, len(ms.statuses)+len(r.buildStatuses))
		members = append(members, ms.statuses...)
		members = append(members, r.buildStatuses...)
	}
	return &Response{
		Stmt:       q,
		Result:     merged,
		Translated: strings.Join(translations, "\n"),
		Text:       text,
		Members:    members,
		Partial:    partial,
		RowsMoved:  int(ms.rowsMoved.Load() + r.buildMoved),
	}, nil
}
