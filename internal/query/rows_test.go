package query_test

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/idl"
	"repro/internal/query"
)

// drainRows pulls every row out of a stream, returning the materialized rows.
func drainRows(t *testing.T, rows *query.Rows) []query.Row {
	t.Helper()
	var out []query.Row
	for rows.Next() {
		var src string
		var v idl.Any
		if err := rows.Scan(&src, &v); err != nil {
			t.Fatal(err)
		}
		out = append(out, query.Row{idl.String(src), v})
	}
	return out
}

func TestStreamMatchesExecute(t *testing.T) {
	_, nodes := planFederation(t, 3, nil)
	s := nodes[0].NewSession()
	ctx := context.Background()

	exec, err := s.Execute(ctx, `V(R.K) On Coalition C;`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.Stream(ctx, `V(R.K) On Coalition C;`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	streamed := drainRows(t, rows)
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(exec.Result.Rows) {
		t.Fatalf("streamed %d rows, Execute returned %d", len(streamed), len(exec.Result.Rows))
	}
	for i, row := range streamed {
		if !reflect.DeepEqual([]idl.Any(row), exec.Result.Rows[i]) {
			t.Fatalf("row %d: streamed %+v, materialized %+v", i, row, exec.Result.Rows[i])
		}
	}
	if !reflect.DeepEqual(rows.Columns(), exec.Result.Columns) {
		t.Fatalf("columns: streamed %v, materialized %v", rows.Columns(), exec.Result.Columns)
	}
	if rows.Partial() != exec.Partial {
		t.Fatalf("partial: streamed %v, materialized %v", rows.Partial(), exec.Partial)
	}
	sm, em := rows.Members(), exec.Members
	if len(sm) != len(em) {
		t.Fatalf("members: streamed %d, materialized %d", len(sm), len(em))
	}
	for i := range sm {
		if sm[i].Member != em[i].Member || sm[i].ErrClass != em[i].ErrClass {
			t.Fatalf("member %d: streamed %+v, materialized %+v", i, sm[i], em[i])
		}
	}
}

func TestStreamWithLimit(t *testing.T) {
	_, nodes := planFederation(t, 3, nil)
	s := nodes[0].NewSession()

	rows, err := s.Stream(context.Background(), `V(R.K) On Coalition C Limit 4;`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	streamed := drainRows(t, rows)
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 4 {
		t.Fatalf("Limit 4 streamed %d rows", len(streamed))
	}
	for _, row := range streamed {
		if row[0].Str != "S0" {
			t.Fatalf("limit rows out of member order: %+v", streamed)
		}
	}
	if rows.Partial() {
		t.Fatalf("limit cut-off flagged partial: %+v", rows.Members())
	}
	if st := nodes[0].Processor.PlannerStats(); st.EarlyTerminations == 0 {
		t.Fatalf("stream's satisfied limit not counted: %+v", st)
	}
}

func TestStreamAllEarlyBreak(t *testing.T) {
	// A 2-row merge window (< planFixtureRows) makes the members hold real
	// server-side cursors open mid-stream, so the open-count assertions below
	// actually exercise cursor release.
	_, nodes := planFederation(t, 3, func(i int, c *core.NodeConfig) {
		c.MergeBufRows = 2
	})
	s := nodes[0].NewSession()

	rows, err := s.Stream(context.Background(), `V(R.K) On Coalition C;`)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	for i, row := range rows.All() {
		if len(row) != 2 {
			t.Fatalf("row %d has %d columns", i, len(row))
		}
		got++
		if got == 2 {
			break
		}
	}
	if got != 2 {
		t.Fatalf("broke after %d rows", got)
	}
	// All closed the stream when the loop broke: abandoning mid-stream is not
	// an error, and further Next calls report exhaustion.
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Fatal("Next succeeded after the stream was closed")
	}
	// Every member's server-side cursor is released.
	for _, n := range nodes {
		if open := n.ISICursors().OpenCount(); open != 0 {
			t.Fatalf("node %s still holds %d open cursor(s)", n.Config.Name, open)
		}
	}
}

func TestStreamNonCoalitionMaterialized(t *testing.T) {
	_, nodes := planFederation(t, 2, nil)
	s := nodes[0].NewSession()

	// A single-source function query is not a coalition fan-out, so Stream
	// serves it from the materialized Execute path.
	rows, err := s.Stream(context.Background(), `V(R.K) On S1;`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if len(rows.Columns()) == 0 {
		t.Fatal("materialized stream has no columns")
	}
	var got int
	for rows.Next() {
		got++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if got != planFixtureRows {
		t.Fatalf("single-source stream returned %d rows, want %d", got, planFixtureRows)
	}
}

func TestRowsScanTypes(t *testing.T) {
	_, nodes := planFederation(t, 1, nil)
	s := nodes[0].NewSession()

	rows, err := s.Stream(context.Background(), `V(R.K) On Coalition C Limit 1;`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	var src string
	var v64 int64
	if err := rows.Scan(&src, &v64); err != nil {
		t.Fatal(err)
	}
	if src != "S0" || v64 != 0 {
		t.Fatalf("scanned (%q, %d)", src, v64)
	}
	var vi int
	var vf float64
	if err := rows.Scan(&src, &vi); err != nil {
		t.Fatal(err)
	}
	if err := rows.Scan(&src, &vf); err != nil {
		t.Fatal(err)
	}
	var va idl.Any
	if err := rows.Scan(&src, &va); err != nil {
		t.Fatal(err)
	}
	if va.Kind != idl.KindLongLong || va.Int != int64(vi) || vf != float64(vi) {
		t.Fatalf("scan disagreement: any=%+v int=%d float=%g", va, vi, vf)
	}
	if err := rows.Scan(&src); err == nil {
		t.Fatal("Scan with the wrong destination count succeeded")
	}
	var bad struct{}
	if err := rows.Scan(&src, &bad); err == nil {
		t.Fatal("Scan into an unsupported type succeeded")
	}
}

func TestStreamingToggleParity(t *testing.T) {
	_, nodes := planFederation(t, 3, nil)
	s := nodes[0].NewSession()
	ctx := context.Background()

	streamed, err := s.Execute(ctx, `V(R.K) On Coalition C;`)
	if err != nil {
		t.Fatal(err)
	}
	nodes[0].Processor.SetStreaming(false)
	defer nodes[0].Processor.SetStreaming(true)
	materialized, err := s.Execute(ctx, `V(R.K) On Coalition C;`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed.Result, materialized.Result) {
		t.Fatalf("results differ across transports:\nstreamed: %+v\nmaterialized: %+v",
			streamed.Result, materialized.Result)
	}
	if streamed.Partial != materialized.Partial {
		t.Fatalf("partial bit differs across transports")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func TestStreamCancelReleasesEverything(t *testing.T) {
	_, nodes := planFederation(t, 3, func(i int, c *core.NodeConfig) {
		c.MergeBufRows = 2
	})
	s := nodes[0].NewSession()
	cursorsOpen := func() int {
		open := 0
		for _, n := range nodes {
			open += n.ISICursors().OpenCount()
		}
		return open
	}

	// Let one full stream settle the lazily-built plumbing (memoized clients,
	// parser pools) before taking the goroutine baseline.
	warm, err := s.Stream(context.Background(), `V(R.K) On Coalition C;`)
	if err != nil {
		t.Fatal(err)
	}
	for warm.Next() {
	}
	warm.Close()
	baseline := runtime.NumGoroutine()

	// Cancelling the statement context mid-stream must tear the fan-out down:
	// member sub-calls unwind, server-side cursors close, goroutines exit.
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := s.Stream(ctx, `V(R.K) On Coalition C;`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	rows.Close()
	if !waitFor(t, 2*time.Second, func() bool { return cursorsOpen() == 0 }) {
		t.Fatalf("ctx cancel left %d cursor(s) open", cursorsOpen())
	}

	// Close alone (no cancel) must release everything too.
	rows, err = s.Stream(context.Background(), `V(R.K) On Coalition C;`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	rows.Close()
	if !waitFor(t, 2*time.Second, func() bool { return cursorsOpen() == 0 }) {
		t.Fatalf("Close left %d cursor(s) open", cursorsOpen())
	}
	if !waitFor(t, 2*time.Second, func() bool { return runtime.NumGoroutine() <= baseline }) {
		t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
	}
}

func TestStreamBoundsCoordinatorBuffering(t *testing.T) {
	const members, bufRows = 3, 4
	_, nodes := planFederation(t, members, func(i int, c *core.NodeConfig) {
		c.MergeBufRows = bufRows
	})
	s := nodes[0].NewSession()

	resp, err := s.Execute(context.Background(), `V(R.K) On Coalition C;`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp.Result.Rows); got != members*planFixtureRows {
		t.Fatalf("full scan rows = %d", got)
	}
	st := nodes[0].Processor.PlannerStats()
	if st.PeakMergeBuffered == 0 {
		t.Fatal("peak merge buffer gauge never moved")
	}
	if st.PeakMergeBuffered > members*bufRows {
		t.Fatalf("peak merge buffer %d exceeds members x MergeBufRows = %d",
			st.PeakMergeBuffered, members*bufRows)
	}
}
