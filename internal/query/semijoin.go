package query

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/gateway"
	"repro/internal/idl"
	"repro/internal/wtl"
)

// Federated semi-join execution. A `SemiJoin` clause restricts a coalition
// function query's answer to the rows whose result value also appears among
// a second coalition query's results — the paper's cross-member correlation,
// planned SkyQuery-style so only join keys (never whole rows) cross the
// coordinator twice:
//
//  1. The planner orders the two sides by estimated predicate selectivity
//     and executes the build side first, collecting its distinct key set.
//  2. Small key sets (<= semijoin_key_limit) are pushed to probe members as
//     a literal IN conjunct, rendered through each member's capability
//     profile; members whose engine has no IN list (mSQL, the OQL engines)
//     are filtered at the coordinator instead, and a member that rejects a
//     pushed IN at run time (metadata drift) falls back to its bare
//     fragment exactly like any other capability rejection.
//  3. Large key sets skip the engine push and compress into a Bloom filter
//     the coordinator tests probe rows against per fragment batch; Bloom
//     hits are always confirmed against the exact key set, so false
//     positives never reach the caller.
//
// With the semi-join knob off the same pipeline runs with zero pushdown —
// every probe row crosses the wire and the exact coordinator filter does all
// the work — which is what the differential suite in internal/simtest
// compares against: identical rows, Partial bit and member statuses, fewer
// probe-side rows moved.

// estimatedSelectivity scores a predicate list by shape alone — equality
// binds hardest, LIKE moderately, ranges weakest — so both execution modes
// (and both sides of the differential suite) orient the join identically
// without consulting any data statistics.
func estimatedSelectivity(preds []wtl.Condition) float64 {
	sel := 1.0
	for _, c := range preds {
		switch c.Op {
		case "=":
			sel *= 0.1
		case "LIKE":
			sel *= 0.3
		default:
			sel *= 0.5
		}
	}
	return sel
}

// canonicalKey renders a result value as the string the semi-join keys on.
// All numeric kinds normalize into one space (5, 5.0 and long(5) are the
// same key, matching the engines' cross-kind numeric comparisons); NULL has
// no key — SQL three-valued logic says NULL matches nothing, engine-side IN
// and coordinator filter alike.
func canonicalKey(v idl.Any) (string, bool) {
	switch v.Kind {
	case idl.KindString:
		return "s:" + v.Str, true
	case idl.KindBool:
		if v.Bool {
			return "b:1", true
		}
		return "b:0", true
	case idl.KindOctet, idl.KindShort, idl.KindUShort, idl.KindLong,
		idl.KindULong, idl.KindLongLong, idl.KindULongLong:
		return "n:" + strconv.FormatInt(v.Int, 10), true
	case idl.KindFloat, idl.KindDouble:
		if v.Float == math.Trunc(v.Float) && math.Abs(v.Float) < 1e15 {
			return "n:" + strconv.FormatInt(int64(v.Float), 10), true
		}
		return "n:" + strconv.FormatFloat(v.Float, 'g', -1, 64), true
	}
	return "", false // NULL and aggregate kinds are never join keys
}

// semiJoinFilter is the coordinator-side key test applied to every probe row
// (merge.go applies it after residual compensation, before the merge
// window). The exact set is always consulted, so the answer is exact whether
// or not the Bloom prefilter or an engine-side IN push also ran.
type semiJoinFilter struct {
	exact map[string]struct{}
	bloom *bloomFilter // optional prefilter for large key sets
}

func (f *semiJoinFilter) admit(v idl.Any) bool {
	key, ok := canonicalKey(v)
	if !ok {
		return false
	}
	if f.bloom != nil && !f.bloom.MayContain(key) {
		return false
	}
	_, hit := f.exact[key]
	return hit
}

// keyLiterals renders a key set as IN-list literals, sorted by canonical key
// so the rendered fragment is deterministic. Only strings and integers ship;
// a set containing any other kind (floats, booleans) reports not-pushable
// and stays a coordinator-side filter — the conservative choice, mirroring
// pushableCond, because a literal one engine reads back differently than the
// coordinator compares would break on/off equivalence.
func keyLiterals(keys map[string]idl.Any) ([]wtl.KeyLiteral, bool) {
	canon := make([]string, 0, len(keys))
	for k := range keys {
		canon = append(canon, k)
	}
	sort.Strings(canon)
	lits := make([]wtl.KeyLiteral, len(canon))
	for i, k := range canon {
		v := keys[k]
		switch v.Kind {
		case idl.KindString:
			lits[i] = wtl.KeyLiteral{Text: v.Str, IsStr: true}
		case idl.KindOctet, idl.KindShort, idl.KindUShort, idl.KindLong,
			idl.KindULong, idl.KindLongLong, idl.KindULongLong:
			lits[i] = wtl.KeyLiteral{Text: strconv.FormatInt(v.Int, 10)}
		default:
			return nil, false
		}
	}
	return lits, true
}

// semiJoinPushdown decides how the build side's key set reaches the probe
// side: engine-side IN lists for capable members below the key limit, a
// coordinator Bloom prefilter above it, or nothing but the exact filter when
// the knob is off or the keys are unpushable. The returned filter is never
// nil — exactness never depends on the pushdown mode.
func (s *Session) semiJoinPushdown(plan *queryPlan, keys map[string]idl.Any) (*semiJoinFilter, []*fragmentExec) {
	filter := &semiJoinFilter{exact: make(map[string]struct{}, len(keys))}
	for k := range keys {
		filter.exact[k] = struct{}{}
	}
	if !s.p.semiJoinOn() || len(keys) == 0 {
		return filter, nil
	}
	if len(keys) > s.p.semiJoinKeyLimit() {
		bf := newBloomFilter(len(keys), s.p.semiJoinBloomBits())
		for k := range filter.exact {
			bf.Add(k)
		}
		filter.bloom = bf
		s.p.stats.bloomPushed.Add(1)
		return filter, nil
	}
	lits, pushable := keyLiterals(keys)
	if !pushable {
		return filter, nil
	}
	var overrides []*fragmentExec
	for i := range plan.Members {
		mp := &plan.Members[i]
		if !mp.InListOK {
			continue
		}
		if overrides == nil {
			overrides = make([]*fragmentExec, len(plan.Members))
		}
		overrides[i] = mp.Exec.withInKeys(mp.Fn.ResultColumn, lits)
		s.p.stats.keysPushed.Add(int64(len(lits)))
		s.tracef("data", "semi-join pushed %d key(s) to %s: %s", len(lits), mp.D.Name, overrides[i].Native)
	}
	return filter, overrides
}

// sideResult is one fully drained side of a semi-join: its distinct key set,
// per-member outcome, and (when kept) its merged rows.
type sideResult struct {
	rows     [][]idl.Any        // delivered [source, value] rows of OK members
	keys     map[string]idl.Any // canonical key -> representative value
	statuses []MemberStatus
	cols     []string
	moved    int64
	degraded int
}

// drainSide executes one side of the join to completion through the
// streaming merge (filter and overrides apply when the side is a probe) and
// enforces the member quorum — a side that cannot answer fails the whole
// statement, exactly as the same query would fail standalone. Rows delivered
// by a member that later failed are dropped by provenance, so the key set is
// as deterministic as a materialized merge's answer.
func (s *Session) drainSide(ctx context.Context, plan *queryPlan, filter *semiJoinFilter, overrides []*fragmentExec, keepRows bool) (*sideResult, error) {
	ms := s.newMergeStreamFiltered(ctx, plan, 0, filter, overrides)
	var rows [][]idl.Any
	var memberOf []int
	for {
		row, m, ok := ms.Next()
		if !ok {
			break
		}
		rows = append(rows, row)
		memberOf = append(memberOf, m)
	}
	ms.Close()
	p := s.p
	p.stats.rowsMoved.Add(ms.rowsMoved.Load())
	p.stats.fallbacks.Add(ms.fallbacks.Load())
	p.stats.probeRowsPruned.Add(ms.probePruned.Load())
	p.stats.semiJoinFallbacks.Add(ms.sjFallbacks.Load())
	p.stats.raisePeak(ms.peakInflight.Load())
	res := &sideResult{statuses: ms.statuses, cols: ms.mergedColumns(), moved: ms.rowsMoved.Load()}
	answered := 0
	var firstErr error
	for i := range ms.statuses {
		if ms.statuses[i].OK() {
			answered++
		} else {
			res.degraded++
			if firstErr == nil {
				firstErr = errors.New(ms.statuses[i].Err)
			}
		}
	}
	quorum := p.minMembersQuorum()
	if quorum <= 0 {
		quorum = 1
	}
	if answered < quorum {
		if firstErr == nil {
			firstErr = errors.New("no member answered")
		}
		return nil, fmt.Errorf("query: coalition %s: %d of %d member(s) answered, need %d: %w",
			plan.Coalition, answered, len(plan.Members), quorum, firstErr)
	}
	res.keys = make(map[string]idl.Any)
	for k, row := range rows {
		if !ms.statuses[memberOf[k]].OK() {
			continue
		}
		if key, ok := canonicalKey(row[1]); ok {
			if _, dup := res.keys[key]; !dup {
				res.keys[key] = row[1]
			}
		}
		if keepRows {
			res.rows = append(res.rows, row)
		}
	}
	return res, nil
}

// streamSemiJoin plans and runs a coalition semi-join. The usual
// orientation — the join clause is the more selective side — executes the
// clause as the build and returns a live stream over the outer side, so the
// probe composes with Session.Stream, LIMIT early termination and mid-stream
// member death like any other coalition query. When the outer side estimates
// more selective, the sides swap: the outer materializes first (the swap
// exists to move fewer rows overall, and an outer LIMIT cannot be applied
// until the join filter has run), the clause side is probed with the outer's
// keys, and the outer rows whose keys survive are served materialized.
func (s *Session) streamSemiJoin(ctx context.Context, q *wtl.FuncQuery) (*Rows, error) {
	j := q.Join
	s.p.stats.semiJoins.Add(1)

	outerQ := *q
	outerQ.Join = nil
	outerQ.Limit = 0
	innerQ := &wtl.FuncQuery{Function: j.Function, ArgCol: j.ArgCol,
		Preds: j.Preds, Source: j.Source, OnCoalition: true}
	outerPlan, err := s.resolveCoalitionPlan(ctx, &outerQ)
	if err != nil {
		return nil, err
	}
	innerPlan, err := s.resolveCoalitionPlan(ctx, innerQ)
	if err != nil {
		return nil, err
	}

	if estimatedSelectivity(q.Preds) < estimatedSelectivity(j.Preds) {
		return s.semiJoinSwapped(ctx, q, outerPlan, innerPlan)
	}

	build, err := s.drainSide(ctx, innerPlan, nil, nil, false)
	if err != nil {
		return nil, fmt.Errorf("query: semi-join build side: %w", err)
	}
	s.tracef("query", "semi-join build side %s yielded %d distinct key(s)", j.Source, len(build.keys))
	filter, overrides := s.semiJoinPushdown(outerPlan, build.keys)
	ms := s.newMergeStreamFiltered(ctx, outerPlan, q.Limit, filter, overrides)
	return &Rows{sess: s, stmt: q, plan: outerPlan, ms: ms,
		buildStatuses: build.statuses, buildMoved: build.moved, buildDegraded: build.degraded}, nil
}

// semiJoinSwapped is the reversed orientation: outer builds, the join clause
// side probes, and the answer is the outer's materialized rows filtered by
// the keys that survived the probe.
func (s *Session) semiJoinSwapped(ctx context.Context, q *wtl.FuncQuery, outerPlan, innerPlan *queryPlan) (*Rows, error) {
	outer, err := s.drainSide(ctx, outerPlan, nil, nil, true)
	if err != nil {
		return nil, fmt.Errorf("query: semi-join build side: %w", err)
	}
	s.tracef("query", "semi-join (swapped) build side %s yielded %d distinct key(s)", q.Source, len(outer.keys))
	filter, overrides := s.semiJoinPushdown(innerPlan, outer.keys)
	inner, err := s.drainSide(ctx, innerPlan, filter, overrides, false)
	if err != nil {
		return nil, err
	}
	// inner.keys is already the intersection: the filter admitted only inner
	// rows whose key the outer produced.
	merged := &gateway.Result{Columns: outer.cols}
	for _, row := range outer.rows {
		key, ok := canonicalKey(row[1])
		if !ok {
			continue
		}
		if _, hit := inner.keys[key]; !hit {
			continue
		}
		merged.Rows = append(merged.Rows, row)
		if q.Limit > 0 && len(merged.Rows) >= q.Limit {
			break
		}
	}
	s.p.stats.rowsDelivered.Add(int64(len(merged.Rows)))

	members := make([]MemberStatus, 0, len(outer.statuses)+len(inner.statuses))
	members = append(members, outer.statuses...)
	members = append(members, inner.statuses...)
	translations := make([]string, len(outerPlan.Members))
	for i := range outerPlan.Members {
		translations[i] = outerPlan.Members[i].D.Name + ": " + outerPlan.Members[i].Exec.Native
	}
	answered := len(outer.statuses) - outer.degraded
	partial := outer.degraded+inner.degraded > 0
	text := merged.Format()
	if partial {
		text += fmt.Sprintf("(partial result: %d of %d member(s) answered)\n",
			answered, len(outer.statuses))
	}
	resp := &Response{
		Stmt:       q,
		Result:     merged,
		Translated: strings.Join(translations, "\n"),
		Text:       text,
		Members:    members,
		Partial:    partial,
		RowsMoved:  int(outer.moved + inner.moved),
	}
	return &Rows{sess: s, stmt: q, resp: resp, cols: merged.Columns}, nil
}
