package query_test

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/codb"
	"repro/internal/core"
)

// codbFunctionK is V's inverse (string keys out, int values in), added where
// a test needs string-typed join keys.
func codbFunctionK() codb.ExportedFunction {
	return codb.ExportedFunction{Name: "K", Returns: "string",
		Table: "r", ResultColumn: "k", ArgColumn: "v"}
}

// The semi-join fixture reuses planFederation: S0 (Oracle), S1 (mSQL),
// S2 (ObjectStore), each with rows ('r<i><j>', i*1000+j) for j=0..5. The
// build side below selects S2's values, so the probe's IN push returns
// nothing from S0 (capable engine), mSQL and ObjectStore fall back to the
// coordinator filter, and the answer is exactly S2's six rows.
const semiJoinStmt = `V(R.K) On Coalition C SemiJoin V(R.V, (R.V >= 2000)) On Coalition C;`

func TestFederatedSemiJoin(t *testing.T) {
	_, nodes := planFederation(t, 3, nil)
	s := nodes[0].NewSession()

	resp, err := s.Execute(context.Background(), semiJoinStmt)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp.Result.Rows); got != planFixtureRows {
		t.Fatalf("semi-join rows = %d, want %d: %+v", got, planFixtureRows, resp.Result.Rows)
	}
	for j, row := range resp.Result.Rows {
		if row[0].Str != "S2" || row[1].Int != int64(2000+j) {
			t.Fatalf("row %d = %+v, want [S2 %d]", j, row, 2000+j)
		}
	}
	if resp.Partial {
		t.Fatalf("healthy semi-join flagged partial: %+v", resp.Members)
	}
	// Probe statuses (3 members) followed by build statuses (3 members).
	if len(resp.Members) != 6 {
		t.Fatalf("members = %d, want probe+build = 6: %+v", len(resp.Members), resp.Members)
	}
	st := nodes[0].Processor.PlannerStats()
	if st.SemiJoins != 1 {
		t.Fatalf("SemiJoins = %d", st.SemiJoins)
	}
	// Only S0 (Oracle) takes the IN list: six build keys pushed once.
	if st.KeysPushed != 6 {
		t.Fatalf("KeysPushed = %d, want 6", st.KeysPushed)
	}
	// S1's six rows are pruned at the coordinator; S2's all match.
	if st.ProbeRowsPruned != 6 {
		t.Fatalf("ProbeRowsPruned = %d, want 6", st.ProbeRowsPruned)
	}
	if st.BloomPushed != 0 || st.SemiJoinFallbacks != 0 {
		t.Fatalf("unexpected bloom/fallback activity: %+v", st)
	}
}

func TestSemiJoinRuntimeToggle(t *testing.T) {
	_, nodes := planFederation(t, 3, nil)
	s := nodes[0].NewSession()
	ctx := context.Background()

	on, err := s.Execute(ctx, semiJoinStmt)
	if err != nil {
		t.Fatal(err)
	}
	nodes[0].Processor.SetSemiJoin(false)
	off, err := s.Execute(ctx, semiJoinStmt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(on.Result, off.Result) {
		t.Fatalf("modes disagree:\non:  %+v\noff: %+v", on.Result, off.Result)
	}
	// With the pushdown on, S0's engine evaluates the IN list and its six
	// non-matching rows never move.
	if on.RowsMoved >= off.RowsMoved {
		t.Fatalf("semi-join pushdown moved %d rows, filter-only moved %d", on.RowsMoved, off.RowsMoved)
	}
	st := nodes[0].Processor.PlannerStats()
	if st.KeysPushed != 6 {
		t.Fatalf("off-mode changed KeysPushed: %d", st.KeysPushed)
	}
}

func TestSemiJoinSwappedOrientation(t *testing.T) {
	_, nodes := planFederation(t, 3, nil)
	s := nodes[0].NewSession()

	// The outer side carries the equality (estimated more selective than the
	// unpredicated join clause), so the planner swaps: the outer builds, the
	// clause side probes with key 2000, and only S2's matching row survives.
	resp, err := s.Execute(context.Background(),
		`V(R.K, (R.K = "r20")) On Coalition C SemiJoin V(R.V) On Coalition C;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rows) != 1 {
		t.Fatalf("swapped semi-join rows = %+v", resp.Result.Rows)
	}
	if row := resp.Result.Rows[0]; row[0].Str != "S2" || row[1].Int != 2000 {
		t.Fatalf("row = %+v, want [S2 2000]", row)
	}
	if resp.Partial {
		t.Fatalf("healthy swapped semi-join flagged partial: %+v", resp.Members)
	}
	if len(resp.Members) != 6 {
		t.Fatalf("members = %d, want both sides: %+v", len(resp.Members), resp.Members)
	}
}

func TestSemiJoinStringKeys(t *testing.T) {
	// Key on the k column through a string-returning join: every member's
	// build fragment yields its own keys, and the quoted IN list must round
	// trip through the engines that accept it.
	_, nodes := planFederation(t, 3, func(i int, c *core.NodeConfig) {
		for ti := range c.Interface {
			if c.Interface[ti].Name != "R" {
				continue
			}
			c.Interface[ti].Functions = append(c.Interface[ti].Functions,
				codbFunctionK())
		}
	})
	s := nodes[0].NewSession()
	resp, err := s.Execute(context.Background(),
		`K(R.V) On Coalition C SemiJoin K(R.V, (R.V >= 1000 AND R.V < 1002)) On Coalition C;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rows) != 2 {
		t.Fatalf("string-keyed semi-join rows = %+v", resp.Result.Rows)
	}
	for j, row := range resp.Result.Rows {
		if row[0].Str != "S1" || row[1].Str != map[int]string{0: "r10", 1: "r11"}[j] {
			t.Fatalf("row %d = %+v", j, row)
		}
	}
}

func TestSemiJoinPlanCache(t *testing.T) {
	_, nodes := planFederation(t, 3, nil)
	s := nodes[0].NewSession()
	ctx := context.Background()

	if _, err := s.Execute(ctx, semiJoinStmt); err != nil {
		t.Fatal(err)
	}
	first := nodes[0].Processor.PlannerStats()
	if first.Plans != 2 {
		t.Fatalf("semi-join planned %d sides, want 2", first.Plans)
	}
	// Repeat statement: both sides replay from the metadata cache.
	if _, err := s.Execute(ctx, semiJoinStmt); err != nil {
		t.Fatal(err)
	}
	second := nodes[0].Processor.PlannerStats()
	if second.PlanCacheHits-first.PlanCacheHits != 2 {
		t.Fatalf("repeat semi-join hit the plan cache %d times, want 2",
			second.PlanCacheHits-first.PlanCacheHits)
	}
	// A co-database schema change (membership churn) bumps the version the
	// cache verifies against: the next statement re-plans both sides.
	if err := nodes[0].CoDB.DefineCoalition("Unrelated", "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(ctx, semiJoinStmt); err != nil {
		t.Fatal(err)
	}
	third := nodes[0].Processor.PlannerStats()
	if third.PlanCacheHits != second.PlanCacheHits {
		t.Fatalf("stale semi-join plans served from cache after a version bump (hits %d -> %d)",
			second.PlanCacheHits, third.PlanCacheHits)
	}
	if third.Plans-second.Plans != 2 {
		t.Fatalf("invalidated semi-join re-planned %d sides, want 2", third.Plans-second.Plans)
	}
}

// TestSemiJoinAbortReleasesEverything covers the leak contract: a semi-join
// abandoned mid-probe — by context cancel, by Rows.Close, or failed on the
// build side — must release every member cursor and fan-out goroutine on
// both sides.
func TestSemiJoinAbortReleasesEverything(t *testing.T) {
	_, nodes := planFederation(t, 3, func(i int, c *core.NodeConfig) {
		c.MergeBufRows = 2
	})
	s := nodes[0].NewSession()
	cursorsOpen := func() int {
		open := 0
		for _, n := range nodes {
			open += n.ISICursors().OpenCount()
		}
		return open
	}
	// A build side matching everything keeps every probe row admissible, so
	// the 2-row merge window leaves real cursors open mid-probe.
	stmt := `V(R.K) On Coalition C SemiJoin V(R.V, (R.V >= 0)) On Coalition C;`

	// Warm up the lazily-built plumbing before taking the goroutine baseline.
	warm, err := s.Stream(context.Background(), stmt)
	if err != nil {
		t.Fatal(err)
	}
	for warm.Next() {
	}
	warm.Close()
	baseline := runtime.NumGoroutine()

	// Context cancel mid-probe.
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := s.Stream(ctx, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	rows.Close()
	if !waitFor(t, 2*time.Second, func() bool { return cursorsOpen() == 0 }) {
		t.Fatalf("ctx cancel left %d cursor(s) open", cursorsOpen())
	}

	// Rows.Close mid-probe, no cancel.
	rows, err = s.Stream(context.Background(), stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	rows.Close()
	if !waitFor(t, 2*time.Second, func() bool { return cursorsOpen() == 0 }) {
		t.Fatalf("Close left %d cursor(s) open", cursorsOpen())
	}

	// Build-side failure: an unreachable quorum fails the statement before
	// the probe starts, and the build fan-out must still unwind cleanly.
	nodes[0].Processor.SetMemberPolicy(4, 0)
	if _, err := s.Stream(context.Background(), stmt); err == nil {
		t.Fatal("semi-join succeeded with an unreachable build quorum")
	}
	nodes[0].Processor.SetMemberPolicy(1, 0)
	if !waitFor(t, 2*time.Second, func() bool { return cursorsOpen() == 0 }) {
		t.Fatalf("build-side failure left %d cursor(s) open", cursorsOpen())
	}
	if !waitFor(t, 2*time.Second, func() bool { return runtime.NumGoroutine() <= baseline }) {
		t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
	}
}

// BenchmarkFederatedSemiJoin measures a selective federated semi-join with
// key pushdown on vs off over an all-Oracle coalition (every member takes
// the IN list) — and asserts, in the benchmark itself, that the pushdown
// moves at least 2x fewer probe-side rows.
func BenchmarkFederatedSemiJoin(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"on", true}, {"off", false}} {
		b.Run(mode.name, func(b *testing.B) {
			// All-Oracle: every member takes the IN list. The fixture seeded
			// by advertised engine before this hook runs, so re-seed S2 (an
			// ObjectStore slot) relationally.
			_, nodes := planFederation(b, 3, func(i int, c *core.NodeConfig) {
				c.Engine = core.EngineOracle
				c.SeedObjects = nil
				var sb strings.Builder
				sb.WriteString("CREATE TABLE r (k VARCHAR(16) PRIMARY KEY, v INT);\n")
				for j := 0; j < planFixtureRows; j++ {
					fmt.Fprintf(&sb, "INSERT INTO r VALUES ('r%d%d', %d);\n", i, j, i*1000+j)
				}
				c.Schema = sb.String()
			})
			nodes[0].Processor.SetSemiJoin(mode.on)
			s := nodes[0].NewSession()
			ctx := context.Background()

			// The build side alone moves this many rows in either mode; the
			// statement's RowsMoved beyond it is probe-side traffic.
			build, err := s.Execute(ctx, `V(R.V, (R.V >= 2000)) On Coalition C;`)
			if err != nil {
				b.Fatal(err)
			}
			offProbe := int64(3 * planFixtureRows) // filter-only mode scans every member whole

			b.ResetTimer()
			var moved int64
			for i := 0; i < b.N; i++ {
				resp, err := s.Execute(ctx, semiJoinStmt)
				if err != nil {
					b.Fatal(err)
				}
				if len(resp.Result.Rows) != planFixtureRows {
					b.Fatalf("rows = %d", len(resp.Result.Rows))
				}
				probe := int64(resp.RowsMoved - build.RowsMoved)
				if mode.on && probe*2 > offProbe {
					b.Fatalf("semi-join pushdown moved %d probe rows, filter-only moves %d — less than the 2x win",
						probe, offProbe)
				}
				moved += probe
			}
			b.ReportMetric(float64(moved)/float64(b.N), "probe-rows-moved/op")
		})
	}
}
