package query_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/oodb"
)

// streamBenchRows is the per-node row count for the streaming benchmark:
// large enough that a materialized member reply is thousands of rows while
// the streamed merge holds at most members x MergeBufRows.
const streamBenchRows = 2000

// streamFederation is the planner fixture widened to streamBenchRows rows per
// node: node i's row j is ('x<i>-<j>', j), so a scan-filter on V touches
// every row.
func streamFederation(tb testing.TB, members, bufRows int) []*core.Node {
	tb.Helper()
	_, nodes := planFederation(tb, members, func(i int, c *core.NodeConfig) {
		c.MergeBufRows = bufRows
		if core.IsRelational(c.Engine) {
			var b strings.Builder
			b.WriteString("CREATE TABLE r (k VARCHAR(16) PRIMARY KEY, v INT);\n")
			for j := 0; j < streamBenchRows; j++ {
				fmt.Fprintf(&b, "INSERT INTO r VALUES ('x%d-%d', %d);\n", i, j, j)
			}
			c.Schema = b.String()
			return
		}
		c.SeedObjects = func(db *oodb.DB) error {
			if _, err := db.DefineClass("r", "",
				oodb.Attribute{Name: "k", Type: oodb.AttrString},
				oodb.Attribute{Name: "v", Type: oodb.AttrInt}); err != nil {
				return err
			}
			for j := 0; j < streamBenchRows; j++ {
				if _, err := db.NewObject("r", map[string]any{
					"k": fmt.Sprintf("x%d-%d", i, j), "v": int64(j),
				}); err != nil {
					return err
				}
			}
			return nil
		}
	})
	return nodes
}

// BenchmarkFederatedStreaming measures a large scan-filter federated query
// with the member cursor protocol on (rows page across the wire in
// MergeBufRows batches) vs off (each member materializes its whole result in
// one reply). Reported per mode: p99 statement latency, rows moved per
// fetch round trip, and the coordinator's peak merge buffer — which the
// cursor mode must keep bounded by members x MergeBufRows regardless of scan
// size (asserted here).
func BenchmarkFederatedStreaming(b *testing.B) {
	const members, bufRows = 3, 64
	for _, mode := range []struct {
		name string
		on   bool
	}{{"cursor", true}, {"materialized", false}} {
		b.Run(mode.name, func(b *testing.B) {
			nodes := streamFederation(b, members, bufRows)
			nodes[0].Processor.SetStreaming(mode.on)
			s := nodes[0].NewSession()
			ctx := context.Background()
			stmt := `V(R.V, (R.V >= 0)) On Coalition C;`
			fetchesBefore := int64(0)
			for _, n := range nodes {
				fetchesBefore += n.CursorStats().Fetches
			}
			b.ReportAllocs()
			b.ResetTimer()
			var moved int64
			lat := make([]time.Duration, 0, b.N)
			for i := 0; i < b.N; i++ {
				start := time.Now()
				resp, err := s.Execute(ctx, stmt)
				lat = append(lat, time.Since(start))
				if err != nil {
					b.Fatal(err)
				}
				if len(resp.Result.Rows) != members*streamBenchRows {
					b.Fatalf("rows = %d, want %d", len(resp.Result.Rows), members*streamBenchRows)
				}
				moved += int64(resp.RowsMoved)
			}
			b.StopTimer()
			b.ReportMetric(float64(moved)/float64(b.N), "rows-moved/op")
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			p99 := lat[len(lat)*99/100]
			b.ReportMetric(float64(p99.Microseconds())/1000, "p99-ms")
			var fetches int64
			for _, n := range nodes {
				fetches += n.CursorStats().Fetches
			}
			if d := fetches - fetchesBefore; d > 0 {
				b.ReportMetric(float64(moved)/float64(d), "rows/fetch")
			}
			peak := nodes[0].Processor.PlannerStats().PeakMergeBuffered
			b.ReportMetric(float64(peak), "peak-merge-rows")
			if mode.on && peak > members*bufRows {
				b.Fatalf("streamed coordinator buffered %d rows, bound is members x MergeBufRows = %d",
					peak, members*bufRows)
			}
		})
	}
}
