// Package query implements the WebFINDIT query layer: the query processor
// that checks WebTassili statements, instantiates an execution plan, runs
// the paper's two-level resolution algorithm over co-databases (local
// coalitions, then service links, then coalition peers), and translates
// typed data queries through wrappers into the native language of the
// target database.
package query

import (
	"fmt"
	"strings"

	"repro/internal/codb"
	"repro/internal/wtl"
)

// Wrapper translates an exported-function invocation into the native query
// language of one engine family. The paper names these programs
// ("WebTassiliOracle" is "the wrapper needed to access data in the Oracle
// database using a WebTassili query").
type Wrapper interface {
	Name() string
	Translate(fn *codb.ExportedFunction, preds []wtl.Condition) (string, error)
}

// sqlWrapper translates to the SQL dialect family, producing the paper's
// exact shape:
//
//	SELECT a.Funding FROM ResearchProjects a WHERE a.Title = 'AIDS and drugs'
type sqlWrapper struct{ name string }

func (w *sqlWrapper) Name() string { return w.name }

func (w *sqlWrapper) Translate(fn *codb.ExportedFunction, preds []wtl.Condition) (string, error) {
	conds, err := resolveConds(fn, preds)
	if err != nil {
		return "", err
	}
	frag := wtl.Fragment{Table: fn.Table, Columns: []string{fn.ResultColumn}, Conds: conds}
	return frag.SQL(), nil
}

// oqlWrapper translates to the object engines' OQL-lite.
type oqlWrapper struct{ name string }

func (w *oqlWrapper) Name() string { return w.name }

func (w *oqlWrapper) Translate(fn *codb.ExportedFunction, preds []wtl.Condition) (string, error) {
	conds, err := resolveConds(fn, preds)
	if err != nil {
		return "", err
	}
	frag := wtl.Fragment{Table: fn.Table, Columns: []string{fn.ResultColumn}, Conds: conds}
	return frag.OQL(), nil
}

// resolveConds resolves every predicate's possibly qualified column against
// the exported function's table, yielding fragment-ready conditions with
// bare column names. The planner and both wrappers share this step so a
// mismatched qualifier is rejected identically everywhere.
func resolveConds(fn *codb.ExportedFunction, preds []wtl.Condition) ([]wtl.Condition, error) {
	if len(preds) == 0 {
		return nil, nil
	}
	out := make([]wtl.Condition, len(preds))
	for i, p := range preds {
		col, err := columnFor(fn, p.Column)
		if err != nil {
			return nil, err
		}
		p.Column = col
		out[i] = p
	}
	return out, nil
}

// columnFor resolves a possibly qualified predicate column against the
// function's table, so "ResearchProjects.Title" becomes "Title" and a
// mismatched qualifier is rejected. Qualifiers name the *exported type*
// ("ResearchProjects"), which may differ from the physical relation
// ("research_projects") only in case and underscores.
func columnFor(fn *codb.ExportedFunction, col string) (string, error) {
	if table, c, ok := strings.Cut(col, "."); ok {
		if normalizeRel(table) != normalizeRel(fn.Table) {
			return "", fmt.Errorf("query: predicate column %s does not belong to %s", col, fn.Table)
		}
		return c, nil
	}
	return col, nil
}

// normalizeRel folds case and underscores so logical exported-type names
// match the physical relations they export.
func normalizeRel(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), "_", "")
}

// WrapperFor picks the wrapper a descriptor advertises. Unknown wrapper
// names fall back by engine family, which is how the prototype degrades
// when a site advertises a wrapper this node does not ship.
func WrapperFor(d *codb.SourceDescriptor) Wrapper {
	switch d.Wrapper {
	case "WebTassiliOracle", "WebTassiliMSQL", "WebTassiliDB2", "WebTassiliSybase":
		return &sqlWrapper{name: d.Wrapper}
	case "WebTassiliObjectStore", "WebTassiliOntos":
		return &oqlWrapper{name: d.Wrapper}
	}
	switch d.Engine {
	case "ObjectStore", "Ontos":
		return &oqlWrapper{name: "WebTassili" + d.Engine}
	default:
		return &sqlWrapper{name: "WebTassili" + d.Engine}
	}
}
