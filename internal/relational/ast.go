package relational

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any parsed SQL expression.
type Expr interface {
	expr()
	String() string
}

// ---- Expressions ----

// Literal is a constant value.
type Literal struct{ Val Value }

func (*Literal) expr() {}
func (l *Literal) String() string {
	if !l.Val.Null && (l.Val.Kind == TypeText || l.Val.Kind == TypeDate) {
		return "'" + strings.ReplaceAll(l.Val.Str, "'", "''") + "'"
	}
	return l.Val.String()
}

// ColRef is a (possibly qualified) column reference.
type ColRef struct {
	Table string // optional qualifier
	Name  string
}

func (*ColRef) expr() {}
func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Binary is a binary operation. Op is one of the operator literals
// ("+", "-", "*", "/", "%", "||", "=", "<>", "<", "<=", ">", ">=",
// "AND", "OR", "LIKE").
type Binary struct {
	Op   string
	L, R Expr
}

func (*Binary) expr() {}
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// Unary is a unary operation: "-" or "NOT".
type Unary struct {
	Op string
	X  Expr
}

func (*Unary) expr()            {}
func (u *Unary) String() string { return u.Op + " " + u.X.String() }

// IsNull tests nullity; Negate selects IS NOT NULL.
type IsNull struct {
	X      Expr
	Negate bool
}

func (*IsNull) expr() {}
func (n *IsNull) String() string {
	if n.Negate {
		return n.X.String() + " IS NOT NULL"
	}
	return n.X.String() + " IS NULL"
}

// InList tests membership in a literal list.
type InList struct {
	X      Expr
	List   []Expr
	Negate bool
}

func (*InList) expr() {}
func (in *InList) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	not := ""
	if in.Negate {
		not = " NOT"
	}
	return in.X.String() + not + " IN (" + strings.Join(parts, ", ") + ")"
}

// Between tests a range inclusively.
type Between struct {
	X, Lo, Hi Expr
	Negate    bool
}

func (*Between) expr() {}
func (b *Between) String() string {
	not := ""
	if b.Negate {
		not = " NOT"
	}
	return b.X.String() + not + " BETWEEN " + b.Lo.String() + " AND " + b.Hi.String()
}

// FuncCall is a scalar or aggregate function call. Star marks COUNT(*).
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*FuncCall) expr() {}
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, e := range f.Args {
		parts[i] = e.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return f.Name + "(" + d + strings.Join(parts, ", ") + ")"
}

// aggregateFuncs is the set of aggregate function names.
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregate reports whether the call is an aggregate.
func (f *FuncCall) IsAggregate() bool { return aggregateFuncs[f.Name] }

// hasAggregate reports whether an expression tree contains an aggregate call.
func hasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncCall:
		if x.IsAggregate() {
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case *Binary:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *Unary:
		return hasAggregate(x.X)
	case *IsNull:
		return hasAggregate(x.X)
	case *InList:
		if hasAggregate(x.X) {
			return true
		}
		for _, a := range x.List {
			if hasAggregate(a) {
				return true
			}
		}
	case *Between:
		return hasAggregate(x.X) || hasAggregate(x.Lo) || hasAggregate(x.Hi)
	}
	return false
}

// hasInList reports whether an expression tree contains a literal IN list.
func hasInList(e Expr) bool {
	switch x := e.(type) {
	case *InList:
		return true
	case *Binary:
		return hasInList(x.L) || hasInList(x.R)
	case *Unary:
		return hasInList(x.X)
	case *IsNull:
		return hasInList(x.X)
	case *FuncCall:
		for _, a := range x.Args {
			if hasInList(a) {
				return true
			}
		}
	case *Between:
		return hasInList(x.X) || hasInList(x.Lo) || hasInList(x.Hi)
	}
	return false
}

// hasLike reports whether an expression tree contains a LIKE comparison.
func hasLike(e Expr) bool {
	switch x := e.(type) {
	case *Binary:
		return x.Op == "LIKE" || hasLike(x.L) || hasLike(x.R)
	case *Unary:
		return hasLike(x.X)
	case *IsNull:
		return hasLike(x.X)
	case *FuncCall:
		for _, a := range x.Args {
			if hasLike(a) {
				return true
			}
		}
	case *InList:
		if hasLike(x.X) {
			return true
		}
		for _, a := range x.List {
			if hasLike(a) {
				return true
			}
		}
	case *Between:
		return hasLike(x.X) || hasLike(x.Lo) || hasLike(x.Hi)
	}
	return false
}

// ---- Statements ----

// SelectItem is one projection: an expression with an optional alias, or a
// star (optionally table-qualified).
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	Table string // qualifier for t.*
}

// TableRef is one FROM-clause table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name rows from this table are qualified with.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is one JOIN step after the first FROM table.
type JoinClause struct {
	Kind  string // "INNER", "LEFT", "CROSS"
	Table TableRef
	On    Expr // nil for CROSS
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT, possibly the head of a UNION chain.
// ORDER BY / LIMIT / OFFSET on the head apply to the combined result.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef   // first table, plus comma-joined tables
	Joins    []JoinClause // explicit JOIN clauses
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 = none
	Offset   int

	Union    *SelectStmt // next arm of a UNION chain (nil = none)
	UnionAll bool        // keep duplicates when combining with Union
}

func (*SelectStmt) stmt() {}

// Subquery is a parenthesised SELECT used inside an expression, as in
// `x IN (SELECT ...)` or `EXISTS (SELECT ...)`. Exists selects the EXISTS
// form; Negate applies to either form. Subqueries are evaluated once per
// statement (no correlation).
type Subquery struct {
	X      Expr // nil for EXISTS
	Select *SelectStmt
	Exists bool
	Negate bool
}

func (*Subquery) expr() {}
func (s *Subquery) String() string {
	not := ""
	if s.Negate {
		not = "NOT "
	}
	if s.Exists {
		return not + "EXISTS (subquery)"
	}
	return s.X.String() + " " + not + "IN (subquery)"
}

// InsertStmt is a parsed INSERT.
type InsertStmt struct {
	Table   string
	Columns []string    // empty = all, in declaration order
	Rows    [][]Expr    // VALUES lists
	Query   *SelectStmt // INSERT INTO ... SELECT
}

func (*InsertStmt) stmt() {}

// UpdateStmt is a parsed UPDATE.
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one column assignment.
type SetClause struct {
	Column string
	Value  Expr
}

func (*UpdateStmt) stmt() {}

// DeleteStmt is a parsed DELETE.
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// CreateTableStmt is a parsed CREATE TABLE.
type CreateTableStmt struct {
	IfNotExists bool
	Schema      Schema
}

func (*CreateTableStmt) stmt() {}

// DropTableStmt is a parsed DROP TABLE.
type DropTableStmt struct {
	IfExists bool
	Table    string
}

func (*DropTableStmt) stmt() {}

// CreateIndexStmt is a parsed CREATE INDEX.
type CreateIndexStmt struct {
	Name   string
	Table  string
	Column string
	Unique bool
}

func (*CreateIndexStmt) stmt() {}

// DropIndexStmt is a parsed DROP INDEX.
type DropIndexStmt struct{ Name string }

func (*DropIndexStmt) stmt() {}

// ExplainStmt is `EXPLAIN SELECT ...`: it returns the execution plan as
// rows of text instead of running the query.
type ExplainStmt struct{ Query *SelectStmt }

func (*ExplainStmt) stmt() {}

// BeginStmt / CommitStmt / RollbackStmt control transactions.
type BeginStmt struct{}

func (*BeginStmt) stmt() {}

// CommitStmt commits the open transaction.
type CommitStmt struct{}

func (*CommitStmt) stmt() {}

// RollbackStmt aborts the open transaction.
type RollbackStmt struct{}

func (*RollbackStmt) stmt() {}

// describeStmt renders a one-word statement kind for errors and tracing.
func describeStmt(s Statement) string {
	switch s.(type) {
	case *SelectStmt:
		return "SELECT"
	case *InsertStmt:
		return "INSERT"
	case *UpdateStmt:
		return "UPDATE"
	case *DeleteStmt:
		return "DELETE"
	case *CreateTableStmt:
		return "CREATE TABLE"
	case *DropTableStmt:
		return "DROP TABLE"
	case *CreateIndexStmt:
		return "CREATE INDEX"
	case *DropIndexStmt:
		return "DROP INDEX"
	case *BeginStmt:
		return "BEGIN"
	case *CommitStmt:
		return "COMMIT"
	case *RollbackStmt:
		return "ROLLBACK"
	case *ExplainStmt:
		return "EXPLAIN"
	}
	return fmt.Sprintf("%T", s)
}
