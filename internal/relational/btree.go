package relational

// btree is an in-memory B-tree mapping index keys (Values, ordered by
// Compare) to sets of row IDs. It backs ordered (range-capable) secondary
// indexes and primary keys. Duplicate keys are allowed; each key holds the
// list of row IDs carrying it.

const btreeDegree = 32 // max children per internal node

type btreeItem struct {
	key  Value
	rows []int64
}

type btreeNode struct {
	items    []btreeItem
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return len(n.children) == 0 }

// btree is the tree root plus element count.
type btree struct {
	root *btreeNode
	keys int // distinct keys
	rows int // total row entries
}

func newBTree() *btree {
	return &btree{root: &btreeNode{}}
}

// search returns the position of key in items and whether it was found.
func search(items []btreeItem, key Value) (int, bool) {
	lo, hi := 0, len(items)
	for lo < hi {
		mid := (lo + hi) / 2
		switch Compare(items[mid].key, key) {
		case -1:
			lo = mid + 1
		case 1:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// Insert adds rowID under key.
func (t *btree) Insert(key Value, rowID int64) {
	if len(t.root.items) >= 2*btreeDegree-1 {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.root.splitChild(0)
	}
	t.insertNonFull(t.root, key, rowID)
	t.rows++
}

func (t *btree) insertNonFull(n *btreeNode, key Value, rowID int64) {
	for {
		i, found := search(n.items, key)
		if found {
			n.items[i].rows = append(n.items[i].rows, rowID)
			return
		}
		if n.leaf() {
			n.items = append(n.items, btreeItem{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = btreeItem{key: key, rows: []int64{rowID}}
			t.keys++
			return
		}
		if len(n.children[i].items) >= 2*btreeDegree-1 {
			n.splitChild(i)
			switch Compare(n.items[i].key, key) {
			case -1:
				i++
			case 0:
				n.items[i].rows = append(n.items[i].rows, rowID)
				return
			}
		}
		n = n.children[i]
	}
}

// splitChild splits the full child at index i, promoting its median item.
func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	mid := btreeDegree - 1
	median := child.items[mid]
	right := &btreeNode{
		items: append([]btreeItem(nil), child.items[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]

	n.items = append(n.items, btreeItem{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Lookup returns the row IDs stored under key (nil if none). The returned
// slice must not be modified.
func (t *btree) Lookup(key Value) []int64 {
	n := t.root
	for {
		i, found := search(n.items, key)
		if found {
			return n.items[i].rows
		}
		if n.leaf() {
			return nil
		}
		n = n.children[i]
	}
}

// Delete removes rowID from under key. When the key's row list empties, the
// key is removed via full rebalancing-free tombstone compaction: the tree
// keeps the key with an empty row list and periodically rebuilds. To keep
// behaviour predictable we rebuild when tombstoned keys exceed half the
// keys.
func (t *btree) Delete(key Value, rowID int64) bool {
	n := t.root
	for {
		i, found := search(n.items, key)
		if found {
			rows := n.items[i].rows
			for j, id := range rows {
				if id == rowID {
					n.items[i].rows = append(rows[:j], rows[j+1:]...)
					t.rows--
					if len(n.items[i].rows) == 0 {
						t.keys--
					}
					t.maybeCompact()
					return true
				}
			}
			return false
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
}

// maybeCompact rebuilds the tree when tombstones dominate.
func (t *btree) maybeCompact() {
	live := t.keys
	total := t.countItems(t.root)
	if total >= 16 && live*2 < total {
		items := make([]btreeItem, 0, live)
		t.ascend(t.root, func(it btreeItem) bool {
			if len(it.rows) > 0 {
				items = append(items, it)
			}
			return true
		})
		nt := newBTree()
		for _, it := range items {
			for _, id := range it.rows {
				nt.Insert(it.key, id)
			}
		}
		t.root = nt.root
		t.keys = nt.keys
		t.rows = nt.rows
	}
}

func (t *btree) countItems(n *btreeNode) int {
	total := len(n.items)
	for _, c := range n.children {
		total += t.countItems(c)
	}
	return total
}

// Ascend visits all live items in key order; fn returns false to stop.
func (t *btree) Ascend(fn func(key Value, rows []int64) bool) {
	t.ascend(t.root, func(it btreeItem) bool {
		if len(it.rows) == 0 {
			return true
		}
		return fn(it.key, it.rows)
	})
}

func (t *btree) ascend(n *btreeNode, fn func(btreeItem) bool) bool {
	for i, it := range n.items {
		if !n.leaf() {
			if !t.ascend(n.children[i], fn) {
				return false
			}
		}
		if !fn(it) {
			return false
		}
	}
	if !n.leaf() {
		return t.ascend(n.children[len(n.items)], fn)
	}
	return true
}

// Range visits live items with lo <= key <= hi (nil bounds are open); the
// inclusive flags control boundary handling. fn returns false to stop.
func (t *btree) Range(lo, hi *Value, loIncl, hiIncl bool, fn func(key Value, rows []int64) bool) {
	t.Ascend(func(key Value, rows []int64) bool {
		if lo != nil {
			c := Compare(key, *lo)
			if c < 0 || (c == 0 && !loIncl) {
				return true
			}
		}
		if hi != nil {
			c := Compare(key, *hi)
			if c > 0 || (c == 0 && !hiIncl) {
				return false
			}
		}
		return fn(key, rows)
	})
}

// Len reports the number of live row entries in the tree.
func (t *btree) Len() int { return t.rows }

// Keys reports the number of distinct live keys.
func (t *btree) Keys() int { return t.keys }

// depth reports the tree height (for invariant tests).
func (t *btree) depth() int {
	d := 1
	for n := t.root; !n.leaf(); n = n.children[0] {
		d++
	}
	return d
}

// checkInvariants verifies B-tree structural invariants; used by property
// tests. It returns an error description or "" when valid.
func (t *btree) checkInvariants() string {
	var prev *Value
	ok := ""
	depth := -1
	var walk func(n *btreeNode, d int) bool
	walk = func(n *btreeNode, d int) bool {
		if n != t.root && len(n.items) < btreeDegree-1 {
			// Our insert-only splitting keeps nodes at least half full except
			// the root; tombstone compaction rebuilds preserve this.
			if len(n.items) == 0 {
				ok = "empty non-root node"
				return false
			}
		}
		if n.leaf() {
			if depth == -1 {
				depth = d
			} else if depth != d {
				ok = "leaves at different depths"
				return false
			}
		} else if len(n.children) != len(n.items)+1 {
			ok = "child count mismatch"
			return false
		}
		for i, it := range n.items {
			if !n.leaf() && !walk(n.children[i], d+1) {
				return false
			}
			if prev != nil && Compare(*prev, it.key) >= 0 {
				ok = "keys out of order"
				return false
			}
			k := it.key
			prev = &k
		}
		if !n.leaf() {
			return walk(n.children[len(n.items)], d+1)
		}
		return true
	}
	walk(t.root, 0)
	return ok
}
