package relational

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeInsertLookup(t *testing.T) {
	bt := newBTree()
	for i := int64(0); i < 1000; i++ {
		bt.Insert(IntValue(i%100), i)
	}
	if bt.Len() != 1000 {
		t.Fatalf("Len = %d", bt.Len())
	}
	if bt.Keys() != 100 {
		t.Fatalf("Keys = %d", bt.Keys())
	}
	rows := bt.Lookup(IntValue(7))
	if len(rows) != 10 {
		t.Fatalf("Lookup(7) returned %d rows", len(rows))
	}
	for _, id := range rows {
		if id%100 != 7 {
			t.Errorf("wrong row %d under key 7", id)
		}
	}
	if got := bt.Lookup(IntValue(12345)); got != nil {
		t.Errorf("Lookup(missing) = %v", got)
	}
}

func TestBTreeOrderedAscend(t *testing.T) {
	bt := newBTree()
	perm := rand.New(rand.NewSource(42)).Perm(500)
	for i, p := range perm {
		bt.Insert(IntValue(int64(p)), int64(i))
	}
	var keys []int64
	bt.Ascend(func(k Value, rows []int64) bool {
		keys = append(keys, k.Int)
		return true
	})
	if len(keys) != 500 {
		t.Fatalf("visited %d keys", len(keys))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("Ascend out of order")
	}
	if msg := bt.checkInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
}

func TestBTreeRange(t *testing.T) {
	bt := newBTree()
	for i := int64(0); i < 100; i++ {
		bt.Insert(IntValue(i), i)
	}
	lo, hi := IntValue(10), IntValue(20)
	var got []int64
	bt.Range(&lo, &hi, true, true, func(k Value, rows []int64) bool {
		got = append(got, k.Int)
		return true
	})
	if len(got) != 11 || got[0] != 10 || got[10] != 20 {
		t.Fatalf("inclusive range = %v", got)
	}
	got = nil
	bt.Range(&lo, &hi, false, false, func(k Value, rows []int64) bool {
		got = append(got, k.Int)
		return true
	})
	if len(got) != 9 || got[0] != 11 || got[8] != 19 {
		t.Fatalf("exclusive range = %v", got)
	}
	got = nil
	bt.Range(&lo, nil, true, true, func(k Value, rows []int64) bool {
		got = append(got, k.Int)
		return true
	})
	if len(got) != 90 {
		t.Fatalf("open-ended range visited %d", len(got))
	}
}

func TestBTreeDeleteAndCompaction(t *testing.T) {
	bt := newBTree()
	for i := int64(0); i < 1000; i++ {
		bt.Insert(IntValue(i), i)
	}
	for i := int64(0); i < 900; i++ {
		if !bt.Delete(IntValue(i), i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if bt.Len() != 100 || bt.Keys() != 100 {
		t.Fatalf("after deletes: len=%d keys=%d", bt.Len(), bt.Keys())
	}
	for i := int64(900); i < 1000; i++ {
		if rows := bt.Lookup(IntValue(i)); len(rows) != 1 || rows[0] != i {
			t.Fatalf("Lookup(%d) = %v after compaction", i, rows)
		}
	}
	if bt.Delete(IntValue(5), 5) {
		t.Error("double delete succeeded")
	}
	if bt.Delete(IntValue(950), 999) {
		t.Error("delete with wrong rowID succeeded")
	}
	if msg := bt.checkInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
}

func TestBTreeMixedKeyTypes(t *testing.T) {
	bt := newBTree()
	bt.Insert(TextValue("beta"), 1)
	bt.Insert(TextValue("alpha"), 2)
	bt.Insert(NullValue(), 3)
	var order []string
	bt.Ascend(func(k Value, rows []int64) bool {
		order = append(order, k.String())
		return true
	})
	// NULL sorts first.
	if len(order) != 3 || order[0] != "NULL" || order[1] != "alpha" {
		t.Fatalf("order = %v", order)
	}
}

// TestBTreeQuickInvariants is a property test: any sequence of inserts and
// deletes preserves structural invariants and agrees with a reference map.
func TestBTreeQuickInvariants(t *testing.T) {
	f := func(ops []int16) bool {
		bt := newBTree()
		ref := make(map[int64]map[int64]int) // key -> rowID -> count
		nextRow := int64(0)
		for _, op := range ops {
			key := int64(op % 64)
			if key < 0 {
				key = -key
			}
			if op >= 0 { // insert
				nextRow++
				bt.Insert(IntValue(key), nextRow)
				if ref[key] == nil {
					ref[key] = make(map[int64]int)
				}
				ref[key][nextRow]++
			} else { // delete an arbitrary existing row under key, if any
				var victim int64 = -1
				for id := range ref[key] {
					victim = id
					break
				}
				if victim >= 0 {
					if !bt.Delete(IntValue(key), victim) {
						return false
					}
					delete(ref[key], victim)
					if len(ref[key]) == 0 {
						delete(ref, key)
					}
				}
			}
		}
		if msg := bt.checkInvariants(); msg != "" {
			t.Logf("invariant: %s", msg)
			return false
		}
		total := 0
		for key, rows := range ref {
			got := bt.Lookup(IntValue(key))
			if len(got) != len(rows) {
				t.Logf("key %d: got %d rows, want %d", key, len(got), len(rows))
				return false
			}
			total += len(rows)
		}
		return bt.Len() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeKeyInjective checks that distinct value tuples encode to
// distinct keys (the property GROUP BY and hash joins rely on).
func TestEncodeKeyInjective(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		k1 := encodeKey([]Value{IntValue(a), TextValue(s1)})
		k2 := encodeKey([]Value{IntValue(b), TextValue(s2)})
		if a == b && s1 == s2 {
			return k1 == k2
		}
		// Strings containing the separator could collide in theory; the
		// encoding prefixes each component with its kind and uses a length
		// implicit terminator. Verify no false equality for simple values.
		if k1 == k2 {
			return a == b && s1 == s2
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueCompareProperties(t *testing.T) {
	// Compare must be antisymmetric and transitive-ish over ints.
	f := func(a, b int64) bool {
		va, vb := IntValue(a), IntValue(b)
		c1, c2 := Compare(va, vb), Compare(vb, va)
		return c1 == -c2 && (c1 == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// NULL sorts before everything and equals itself.
	if Compare(NullValue(), NullValue()) != 0 {
		t.Error("NULL != NULL in ordering")
	}
	if Compare(NullValue(), IntValue(-1<<62)) != -1 {
		t.Error("NULL does not sort first")
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(TextValue("42"), TypeInt)
	if err != nil || v.Int != 42 {
		t.Errorf("text->int: %v %v", v, err)
	}
	v, err = Coerce(IntValue(3), TypeFloat)
	if err != nil || v.Float != 3 {
		t.Errorf("int->float: %v %v", v, err)
	}
	v, err = Coerce(FloatValue(3.9), TypeInt)
	if err != nil || v.Int != 3 {
		t.Errorf("float->int: %v %v", v, err)
	}
	if _, err = Coerce(TextValue("not a date"), TypeDate); err == nil {
		t.Error("bad date coerced")
	}
	v, err = Coerce(NullValue(), TypeInt)
	if err != nil || !v.Null {
		t.Errorf("null coercion: %v %v", v, err)
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "x%", false},
		{"hello", "%x%", false},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%%%", true},
		{"a%b", "a%b", true}, // literal via wildcard
		{"medical research", "%research", true},
	}
	for _, c := range cases {
		if got := matchLike(c.s, c.p); got != c.want {
			t.Errorf("LIKE(%q, %q) = %t, want %t", c.s, c.p, got, c.want)
		}
	}
}
